// Package httpapi defines the JSON wire types of the cabd serving layer
// (cmd/cabd-serve). Both the server (internal/server) and the public Go
// client (cabd/client) speak these shapes, so a struct here is the
// protocol contract: request options, detection results, streaming
// ingest summaries and the interactive labeling-session lifecycle.
//
// All endpoints exchange JSON. Detection subtypes and point labels use
// the paper's vocabulary as lowercase strings: "normal",
// "single-anomaly", "collective-anomaly", "change-point".
package httpapi

import "fmt"

// Label strings, the wire form of cabd.Label.
const (
	LabelNormal            = "normal"
	LabelSingleAnomaly     = "single-anomaly"
	LabelCollectiveAnomaly = "collective-anomaly"
	LabelChangePoint       = "change-point"
)

// Labels lists every valid wire label.
var Labels = []string{LabelNormal, LabelSingleAnomaly, LabelCollectiveAnomaly, LabelChangePoint}

// ValidLabel reports whether s is one of the wire labels.
func ValidLabel(s string) bool {
	for _, l := range Labels {
		if s == l {
			return true
		}
	}
	return false
}

// DetectOptions are the per-request knobs of the detection endpoints.
// Zero-valued fields keep the server's configured defaults.
type DetectOptions struct {
	// Sanitize selects the input policy: "interpolate", "drop" or
	// "reject".
	Sanitize string `json:"sanitize,omitempty"`
	// Strategy selects the neighborhood computation: "binary-inn",
	// "linear-inn", "mutualset-inn" or "fixed-knn".
	Strategy string `json:"strategy,omitempty"`
	// Confidence is the active-learning termination confidence γ in
	// (0, 1].
	Confidence float64 `json:"confidence,omitempty"`
	// MaxQueries caps oracle interactions per session.
	MaxQueries int `json:"max_queries,omitempty"`
	// Seed drives the run's stochastic components for reproducibility.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS is the per-request detection deadline in milliseconds,
	// clamped to the server's maximum. Nearing it arms the detector's
	// graceful degradation to FixedKNN. Ignored by sessions (a parked
	// human labeler is not a timeout; idle eviction bounds session
	// lifetime instead).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DetectRequest is the body of POST /v1/detect.
type DetectRequest struct {
	Series  []float64      `json:"series"`
	Options *DetectOptions `json:"options,omitempty"`
}

// MultiDetectRequest is the body of POST /v1/detect/multi: one
// d-channel series as d equal-length value slices over the same clock.
// A bad value in any channel is sanitized across the whole time step so
// the channels stay aligned.
type MultiDetectRequest struct {
	Channels [][]float64    `json:"channels"`
	Options  *DetectOptions `json:"options,omitempty"`
}

// BatchDetectRequest is the body of POST /v1/detect/batch.
type BatchDetectRequest struct {
	SeriesSet [][]float64    `json:"series_set"`
	Options   *DetectOptions `json:"options,omitempty"`
}

// Detection is one reported anomaly or change point.
type Detection struct {
	Index      int     `json:"index"`
	Subtype    string  `json:"subtype"`
	Confidence float64 `json:"confidence"`
	// Degraded marks streamed detections whose confirming analysis ran
	// under graceful degradation (candidate flood or deadline pressure).
	Degraded bool `json:"degraded,omitempty"`
}

// SanitizeInfo mirrors the sanitize report attached to every result.
type SanitizeInfo struct {
	Policy   string `json:"policy"`
	N        int    `json:"n"`
	NaNs     int    `json:"nans,omitempty"`
	Infs     int    `json:"infs,omitempty"`
	Extremes int    `json:"extremes,omitempty"`
	Repaired []int  `json:"repaired,omitempty"`
	Dropped  []int  `json:"dropped,omitempty"`
	Constant bool   `json:"constant,omitempty"`
	TooShort bool   `json:"too_short,omitempty"`
}

// DetectResponse is one detection result on the wire.
type DetectResponse struct {
	Anomalies    []Detection `json:"anomalies"`
	ChangePoints []Detection `json:"change_points"`
	Queries      int         `json:"queries,omitempty"`
	// Strategy is the neighborhood strategy actually used; Degraded and
	// DegradeReason report a FixedKNN fallback under deadline pressure
	// or candidate explosion.
	Strategy      string             `json:"strategy"`
	Degraded      bool               `json:"degraded,omitempty"`
	DegradeReason string             `json:"degrade_reason,omitempty"`
	Sanitize      *SanitizeInfo      `json:"sanitize,omitempty"`
	StageSeconds  map[string]float64 `json:"stage_seconds,omitempty"`
}

// BatchDetectResponse is the body of a batch detection reply. Results
// and Errors align with the request's series_set; Errors[i] is "" when
// series i succeeded.
type BatchDetectResponse struct {
	Results []DetectResponse `json:"results"`
	Errors  []string         `json:"errors"`
}

// StreamIngestResponse summarizes one NDJSON ingest request against
// POST /v1/stream/{id} (or the final DELETE flush).
type StreamIngestResponse struct {
	ID string `json:"id"`
	// Accepted is the number of observations parsed from this request's
	// body; Total and Bad are the stream's lifetime counters.
	Accepted   int         `json:"accepted"`
	Total      int         `json:"total"`
	Bad        int         `json:"bad"`
	Detections []Detection `json:"detections"`
	// Flushed is set on the DELETE reply: the stream was flushed with no
	// trailing margin and evicted.
	Flushed bool `json:"flushed,omitempty"`
}

// SessionRequest is the body of POST /v1/sessions. The server runs the
// full active-learning pipeline over Series; labels are pulled from the
// pending endpoint and posted back until every candidate clears the
// configured confidence γ.
type SessionRequest struct {
	Series  []float64      `json:"series"`
	Options *DetectOptions `json:"options,omitempty"`
	// AutoLabel answers queries server-side from Truth (ground-truth
	// labels, one wire label per point) instead of parking on a human —
	// the load-testing oracle mode.
	AutoLabel bool     `json:"auto_label,omitempty"`
	Truth     []string `json:"truth,omitempty"`
}

// Session states.
const (
	StateRunning       = "running"
	StateAwaitingLabel = "awaiting_label"
	StateDone          = "done"
	StateFailed        = "failed"
	StateCancelled     = "cancelled"
)

// PendingCandidate is the uncertainty-sampled point the session is
// currently asking the user to label.
type PendingCandidate struct {
	// Index is the point's position in the submitted series (original
	// layout, even under the drop sanitize policy).
	Index int `json:"index"`
	// Value is the submitted observation at Index, echoed for context.
	Value float64 `json:"value"`
}

// SessionStatus is the session resource returned by the session
// endpoints.
type SessionStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Queries int    `json:"queries"`
	// Pending is non-nil while State is "awaiting_label".
	Pending *PendingCandidate `json:"pending,omitempty"`
	// Result is non-nil once State is "done".
	Result *DetectResponse `json:"result,omitempty"`
	// Error explains a "failed" session.
	Error string `json:"error,omitempty"`
}

// SessionList is the body of GET /v1/sessions.
type SessionList struct {
	Sessions []SessionStatus `json:"sessions"`
}

// LabelRequest is the body of POST /v1/sessions/{id}/labels. Index must
// match the pending candidate.
type LabelRequest struct {
	Index int    `json:"index"`
	Label string `json:"label"`
}

// ForwardedDetection is one detection forwarded by a collector agent
// (cmd/cabd-agent). Key is the idempotency key — agents derive it from
// agent/stream/index, so an at-least-once redelivery after a crash or a
// spill-buffer replay deduplicates server-side instead of double
// counting.
type ForwardedDetection struct {
	Key        string  `json:"key"`
	Stream     string  `json:"stream"`
	Index      int     `json:"index"`
	Subtype    string  `json:"subtype"`
	Confidence float64 `json:"confidence"`
}

// IngestRequest is the body of POST /v1/ingest: one forwarded batch
// from the named agent.
type IngestRequest struct {
	Agent      string               `json:"agent"`
	Detections []ForwardedDetection `json:"detections"`
}

// IngestResponse acknowledges a forwarded batch. Accepted counts the
// batch's new detections; Duplicates counts redeliveries the server
// already held (expected under at-least-once forwarding, not an error).
type IngestResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	// Total is the server's lifetime count of unique accepted
	// detections, across restarts when checkpointing is enabled.
	Total int64 `json:"total"`
}

// IngestStats is the body of GET /v1/ingest: the server-side view of
// everything collectors have forwarded, for loss accounting.
type IngestStats struct {
	Total      int64 `json:"total"`
	Duplicates int64 `json:"duplicates"`
	// ByStream maps stream name to its unique detection count, sorted
	// on the wire by the JSON object's key order (maps marshal sorted).
	ByStream map[string]int64 `json:"by_stream,omitempty"`
	// ByAgent maps agent name to its unique detection count — the
	// per-collector view a load test uses to prove zero loss.
	ByAgent map[string]int64 `json:"by_agent,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds accompanies 429 backpressure replies and mirrors
	// the Retry-After header.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// Error implements error so a decoded ErrorResponse can travel as one.
func (e *ErrorResponse) Err(status int) error {
	return &StatusError{Status: status, Message: e.Error, RetryAfterSeconds: e.RetryAfterSeconds}
}

// StatusError is a non-2xx reply surfaced by the client.
type StatusError struct {
	Status            int
	Message           string
	RetryAfterSeconds int
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("cabd server: HTTP %d: %s", e.Status, e.Message)
}

// IsSaturated reports whether the error is a 429 backpressure shed.
func (e *StatusError) IsSaturated() bool { return e.Status == 429 }
