package cabd

import "cabd/internal/repair"

// RepairOptions configures Repair.
type RepairOptions struct {
	// Order is the AR order of the repair model (default 3).
	Order int
}

// Repair fixes the detected errors of a series with the Iterative Minimum
// Repairing algorithm (Section V-G of the paper): the anomalies of res
// become the dirty set; known maps indices the user has verified to their
// true values (typically the points labeled during DetectInteractive —
// the paper shows this pairing cuts repair RMS about fourfold versus
// unguided labeling). Change points are events and stay untouched. The
// input slice is not modified; the repaired copy is returned.
func Repair(values []float64, res *Result, known map[int]float64, opts RepairOptions) []float64 {
	return repair.IMR(values, known, res.AnomalyIndices(), repair.IMRConfig{
		Order: opts.Order,
	})
}

// RepairSpeedConstrained fixes a series under a maximum rise/fall speed
// per step (the SCREEN algorithm): every repaired point stays within
// [prev+minSpeed, prev+maxSpeed]. Use when physics bounds the signal
// (tank levels, temperatures) and no detector output is available.
func RepairSpeedConstrained(values []float64, maxSpeed, minSpeed float64) []float64 {
	return repair.Screen(values, repair.ScreenConfig{SMax: maxSpeed, SMin: minSpeed})
}
