package cabd

import (
	"runtime"
	"sync"
)

// DetectBatch runs unsupervised detection over many independent series in
// parallel (the Detector is stateless and safe to share). Results align
// with the input order. Typical use: the 50-series Yahoo-style suites the
// paper evaluates on.
func (d *Detector) DetectBatch(seriesSet [][]float64) []*Result {
	out := make([]*Result, len(seriesSet))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seriesSet) {
		workers = len(seriesSet)
	}
	if workers < 1 {
		return out
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(seriesSet))
	for i := range seriesSet {
		ch <- i
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = d.Detect(seriesSet[i])
			}
		}()
	}
	wg.Wait()
	return out
}
