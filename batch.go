package cabd

import (
	"context"
	"runtime"
	"sync"
)

// DetectBatch runs unsupervised detection over many independent series in
// parallel (the Detector is stateless and safe to share). Results align
// with the input order. Typical use: the 50-series Yahoo-style suites the
// paper evaluates on.
//
// Each series is sanitized and panic-isolated independently: a hostile or
// crashing series yields an empty Result at its position while the rest
// of the batch completes. Use DetectBatchCtx for the per-series errors.
func (d *Detector) DetectBatch(seriesSet [][]float64) []*Result {
	out, _ := d.DetectBatchCtx(context.Background(), seriesSet)
	return out
}

// DetectBatchCtx is DetectBatch with cancellation and per-series error
// reporting. The two returned slices align with the input: errs[i] is
// nil when series i succeeded, a sanitization error (ErrEmpty,
// ErrTooShort, ...) when its input was rejected, a *PanicError when its
// detection crashed, or ctx.Err() for series not yet finished when the
// context was cancelled. A failing series never takes down the pool —
// the remaining series keep draining. Results are always non-nil, empty
// on failure.
func (d *Detector) DetectBatchCtx(ctx context.Context, seriesSet [][]float64) (results []*Result, errs []error) {
	out := make([]*Result, len(seriesSet))
	errout := make([]error, len(seriesSet))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seriesSet) {
		workers = len(seriesSet)
	}
	if workers < 1 {
		return out, errout
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(seriesSet))
	for i := range seriesSet {
		ch <- i
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				if err := ctx.Err(); err != nil {
					out[i], errout[i] = &Result{}, err
					continue
				}
				res, err := d.DetectCtx(ctx, seriesSet[i])
				if pe, ok := err.(*PanicError); ok {
					pe.Series = i
				}
				if res == nil {
					res = &Result{}
				}
				out[i], errout[i] = res, err
			}
		}()
	}
	wg.Wait()
	return out, errout
}
