package cabd

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"

	"cabd/internal/obs"
)

// DetectBatch runs unsupervised detection over many independent series in
// parallel (the Detector is stateless and safe to share). Results align
// with the input order. Typical use: the 50-series Yahoo-style suites the
// paper evaluates on.
//
// Each series is sanitized and panic-isolated independently: a hostile or
// crashing series yields an empty Result at its position while the rest
// of the batch completes. Use DetectBatchCtx for the per-series errors.
func (d *Detector) DetectBatch(seriesSet [][]float64) []*Result {
	out, _ := d.DetectBatchCtx(context.Background(), seriesSet)
	return out
}

// DetectBatchCtx is DetectBatch with cancellation and per-series error
// reporting. The two returned slices align with the input: errs[i] is
// nil when series i succeeded, a sanitization error (ErrEmpty,
// ErrTooShort, ...) when its input was rejected, a *PanicError when its
// detection crashed, or ctx.Err() for series not yet finished when the
// context was cancelled. A failing series never takes down the pool —
// the remaining series keep draining — and every position is filled:
// results[i] is always non-nil (empty on failure) and a crashed series
// always carries its *PanicError rather than a nil hole.
func (d *Detector) DetectBatchCtx(ctx context.Context, seriesSet [][]float64) (results []*Result, errs []error) {
	return batchDetect(ctx, d.inner.Options().Obs, len(seriesSet),
		func(ctx context.Context, i int) (*Result, error) {
			return d.DetectCtx(ctx, seriesSet[i])
		})
}

// batchDetect is the shared worker pool behind Detector.DetectBatchCtx
// and MultiDetector.DetectBatchCtx: one(i) detects series i, and every
// item is wrapped in its own recover so a panic that escapes the
// per-series pipeline (e.g. inside sanitization, outside safeRun's reach)
// fails only that item instead of killing the worker and leaving nil
// holes in both slices. The recorder — nil-safe — gets a batch_series
// span per item (closed on success, error and panic alike), in-flight
// gauge movement, and series/failure counters.
func batchDetect(ctx context.Context, rec *obs.Recorder, n int,
	one func(ctx context.Context, i int) (*Result, error)) ([]*Result, []error) {
	out := make([]*Result, n)
	errout := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return out, errout
	}
	var wg sync.WaitGroup
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				batchOne(ctx, rec, i, out, errout, one)
			}
		}()
	}
	wg.Wait()
	// Defense in depth: no current path leaves a hole (batchOne fills its
	// slot even on panic), but an empty Result beats a nil dereference if
	// one ever slips through.
	for i := range out {
		if out[i] == nil {
			out[i] = &Result{}
		}
	}
	return out, errout
}

// batchOne runs a single batch item with panic isolation and span
// bookkeeping. The deferred block runs on every exit path — success,
// context cancellation, or panic — so the per-series wall time and the
// failure counters are recorded unconditionally.
func batchOne(ctx context.Context, rec *obs.Recorder, i int,
	out []*Result, errout []error, one func(ctx context.Context, i int) (*Result, error)) {
	rec.AddGauge(obs.GaugeBatchInFlight, 1)
	sp := rec.StartStage(obs.StageBatchSeries)
	defer func() {
		if p := recover(); p != nil {
			out[i] = &Result{}
			errout[i] = &PanicError{Series: i, Value: p, Stack: debug.Stack()}
			rec.Add(obs.CounterPanicsContained, 1)
		}
		sp.End()
		rec.AddGauge(obs.GaugeBatchInFlight, -1)
		rec.Add(obs.CounterBatchSeries, 1)
		if errout[i] != nil {
			rec.Add(obs.CounterBatchFailures, 1)
		}
	}()
	if err := ctx.Err(); err != nil {
		out[i], errout[i] = &Result{}, err
		return
	}
	res, err := one(ctx, i)
	if pe, ok := err.(*PanicError); ok {
		pe.Series = i
	}
	if res == nil {
		res = &Result{}
	}
	out[i], errout[i] = res, err
}
