module cabd

go 1.22
