package cabd

import (
	"context"

	"cabd/internal/core"
	"cabd/internal/multi"
	"cabd/internal/obs"
	"cabd/internal/sanitize"
	"cabd/internal/series"
)

// MultiDetector detects anomalies and change points in multi-dimensional
// time series — d synchronized value streams over the same clock (e.g.
// several sensors of one machine). The INN neighborhood is computed in
// the joint (time, value_1..value_d) space; everything else matches the
// univariate Detector.
type MultiDetector struct {
	inner *multi.Detector
}

// NewMulti returns a multivariate detector with the given options.
func NewMulti(opts Options) *MultiDetector {
	return &MultiDetector{inner: multi.NewDetector(opts)}
}

// Detect runs the unsupervised pipeline over dims: a slice of d value
// series, all the same length. Input is sanitized first under
// Options.Sanitize — under SanitizeDrop a bad value in any dimension
// removes that whole time step so the dimensions stay aligned. Hostile
// input that cannot be detected on yields an empty Result whose Sanitize
// report says why; use DetectCtx for the error-returning form.
func (d *MultiDetector) Detect(dims [][]float64) *Result {
	res, _ := d.DetectCtx(context.Background(), dims)
	return res
}

// DetectInteractive runs the active-learning pipeline; label receives the
// time index of each queried point and returns its class.
func (d *MultiDetector) DetectInteractive(dims [][]float64, label func(i int) Label) *Result {
	res, _ := d.DetectInteractiveCtx(context.Background(), dims, label)
	return res
}

// DetectCtx is Detect with sanitization surfaced and cancellation: the
// context is checked at stage boundaries and inside the neighborhood
// loop, and a cancelled context returns ctx.Err() promptly. Panics in
// the pipeline surface as *PanicError instead of crashing the process.
func (d *MultiDetector) DetectCtx(ctx context.Context, dims [][]float64) (*Result, error) {
	return d.detectCtx(ctx, dims, nil)
}

// DetectInteractiveCtx is DetectInteractive with sanitization and
// cancellation. Under SanitizeDrop the labeler still receives time
// indices in the caller's original layout.
func (d *MultiDetector) DetectInteractiveCtx(ctx context.Context, dims [][]float64, label func(i int) Label) (*Result, error) {
	return d.detectCtx(ctx, dims, label)
}

func (d *MultiDetector) detectCtx(ctx context.Context, dims [][]float64, label func(i int) Label) (*Result, error) {
	opts := d.inner.Options()
	t := opts.Obs.NewTrace()
	var clean [][]float64
	var index []int
	var rep *SanitizeReport
	var sanErr error
	t.Do(obs.StageSanitize, func() {
		clean, index, rep, sanErr = sanitize.Multi(dims, sanitizeConfig(opts))
	})
	if sanErr != nil {
		return &Result{Sanitize: rep, Stages: t.Timings()}, sanErr
	}
	var o core.Labeler
	if label != nil {
		o = multiLabeler(func(i int) Label {
			if index != nil {
				i = index[i]
			}
			return label(i)
		})
	}
	s := multi.NewSeries("series", clean)
	cres, err := safeRun(func() (*core.Result, error) {
		if o != nil {
			return d.inner.DetectActiveCtx(ctx, s, o)
		}
		return d.inner.DetectCtx(ctx, s)
	})
	if err != nil {
		if _, ok := err.(*PanicError); ok {
			opts.Obs.Add(obs.CounterPanicsContained, 1)
		}
		return &Result{Sanitize: rep, Stages: t.Timings()}, err
	}
	out := convert(cres)
	out.Stages.Merge(t.Timings())
	out.Sanitize = rep
	remap(out, index)
	return out, nil
}

// DetectBatch runs unsupervised multivariate detection over many
// independent series in parallel, with the same per-series sanitization
// and panic isolation as Detector.DetectBatch.
func (d *MultiDetector) DetectBatch(sets [][][]float64) []*Result {
	out, _ := d.DetectBatchCtx(context.Background(), sets)
	return out
}

// DetectBatchCtx is DetectBatch with cancellation and per-series errors;
// the slices align with the input and a failing series never takes down
// the worker pool. Every position is filled — results[i] is always
// non-nil and a crashed series carries its *PanicError.
func (d *MultiDetector) DetectBatchCtx(ctx context.Context, sets [][][]float64) (results []*Result, errs []error) {
	return batchDetect(ctx, d.inner.Options().Obs, len(sets),
		func(ctx context.Context, i int) (*Result, error) {
			return d.DetectCtx(ctx, sets[i])
		})
}

type multiLabeler func(i int) Label

func (f multiLabeler) Label(i int) series.Label { return series.Label(f(i)) }

var _ core.Labeler = multiLabeler(nil)
