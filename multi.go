package cabd

import (
	"cabd/internal/core"
	"cabd/internal/multi"
	"cabd/internal/series"
)

// MultiDetector detects anomalies and change points in multi-dimensional
// time series — d synchronized value streams over the same clock (e.g.
// several sensors of one machine). The INN neighborhood is computed in
// the joint (time, value_1..value_d) space; everything else matches the
// univariate Detector.
type MultiDetector struct {
	inner *multi.Detector
}

// NewMulti returns a multivariate detector with the given options.
func NewMulti(opts Options) *MultiDetector {
	return &MultiDetector{inner: multi.NewDetector(opts)}
}

// Detect runs the unsupervised pipeline over dims: a slice of d value
// series, all the same length.
func (d *MultiDetector) Detect(dims [][]float64) *Result {
	return convert(d.inner.Detect(multi.NewSeries("series", dims)))
}

// DetectInteractive runs the active-learning pipeline; label receives the
// time index of each queried point and returns its class.
func (d *MultiDetector) DetectInteractive(dims [][]float64, label func(i int) Label) *Result {
	s := multi.NewSeries("series", dims)
	return convert(d.inner.DetectActive(s, multiLabeler(label)))
}

type multiLabeler func(i int) Label

func (f multiLabeler) Label(i int) series.Label { return series.Label(f(i)) }

var _ core.Labeler = multiLabeler(nil)
