// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V). Each experiment is a pure function from a Scale
// (dataset sizes, so benchmarks can run reduced workloads while
// cmd/cabd-bench runs the paper-sized ones) to structured rows, plus a
// printer that emits the same rows/series the paper reports. The
// per-experiment index lives in DESIGN.md; measured-vs-paper numbers are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"

	"cabd/internal/core"
	"cabd/internal/eval"
	"cabd/internal/oracle"
	"cabd/internal/series"
	"cabd/internal/synth"
)

// Scale fixes the dataset sizes of a run. Zero values select the reduced
// benchmark scale; Full() selects the paper's sizes.
type Scale struct {
	SynthN     int // per synthetic relation (paper: 20000)
	SynthCount int // relations in the suite (paper: 25)
	YahooN     int // per Yahoo-like series (paper: 1500-20000)
	YahooCount int // Yahoo-like series (paper: 50)
	KPIN       int // KPI-like length (paper: ~100000)
	KPICount   int // KPI-like series
	IoTN       int // IoT tank length (paper: 3100 over 2 sensors)
}

func (s Scale) defaults() Scale {
	if s.SynthN <= 0 {
		s.SynthN = 2000
	}
	if s.SynthCount <= 0 {
		s.SynthCount = 5
	}
	if s.YahooN <= 0 {
		s.YahooN = 1500
	}
	if s.YahooCount <= 0 {
		s.YahooCount = 5
	}
	if s.KPIN <= 0 {
		s.KPIN = 5000
	}
	if s.KPICount <= 0 {
		s.KPICount = 2
	}
	if s.IoTN <= 0 {
		s.IoTN = 1550
	}
	return s
}

// Full returns the paper-scale configuration.
func Full() Scale {
	return Scale{SynthN: 20000, SynthCount: 25, YahooN: 1500, YahooCount: 50,
		KPIN: 100000, KPICount: 5, IoTN: 1550}
}

// Dataset is one evaluation series with its family name.
type Dataset struct {
	Family string
	S      *series.Series
}

// SynthSuite returns the scaled 25-relation synthetic suite (1%..20%
// anomaly + change-point density ramp).
func (s Scale) SynthSuite() []Dataset {
	s = s.defaults()
	all := synth.Suite(s.SynthN)
	if s.SynthCount < len(all) {
		// Keep the density ramp: subsample evenly.
		var keep []*series.Series
		for i := 0; i < s.SynthCount; i++ {
			keep = append(keep, all[i*len(all)/s.SynthCount])
		}
		all = keep
	}
	out := make([]Dataset, len(all))
	for i, ds := range all {
		out[i] = Dataset{Family: "Synthetic", S: ds}
	}
	return out
}

// YahooSuite returns the scaled Yahoo-like series set.
func (s Scale) YahooSuite() []Dataset {
	s = s.defaults()
	out := make([]Dataset, s.YahooCount)
	for i := range out {
		out[i] = Dataset{Family: "Yahoo", S: synth.YahooLike(int64(100+i), s.YahooN)}
	}
	return out
}

// KPISuite returns the scaled KPI-like series set.
func (s Scale) KPISuite() []Dataset {
	s = s.defaults()
	out := make([]Dataset, s.KPICount)
	for i := range out {
		out[i] = Dataset{Family: "KPI", S: synth.KPILike(int64(200+i), s.KPIN)}
	}
	return out
}

// IoTSuite returns the two tank-sensor series.
func (s Scale) IoTSuite() []Dataset {
	s = s.defaults()
	return []Dataset{
		{Family: "IoT", S: synth.IoTTank(300, s.IoTN)},
		{Family: "IoT", S: synth.IoTTank(301, s.IoTN)},
	}
}

// MatchTol is the +-index tolerance used when matching detections to
// ground truth throughout the experiments.
const MatchTol = 2

// runPair runs CABD on one series without and with active learning and
// returns the two results plus the oracle query count.
func runPair(s *series.Series, opts core.Options) (unsup, al *core.Result) {
	det := core.NewDetector(opts)
	unsup = det.Detect(s)
	al = det.DetectActive(s, oracle.New(s))
	return unsup, al
}

// apF and cpF score a result against the series ground truth.
func apF(r *core.Result, s *series.Series) eval.PRF {
	return eval.Match(r.AnomalyIndices(), s.AnomalyIndices(), MatchTol)
}

func cpF(r *core.Result, s *series.Series) eval.PRF {
	return eval.Match(r.ChangePointIndices(), s.ChangePointIndices(), MatchTol)
}

// labelFrac returns the fraction of points with the given predicate.
func labelFrac(s *series.Series, pred func(series.Label) bool) float64 {
	if s.Len() == 0 {
		return 0
	}
	c := 0
	for _, l := range s.Labels {
		if pred(l) {
			c++
		}
	}
	return float64(c) / float64(s.Len())
}

// fprintf is a helper that ignores write errors (experiment printers
// write to stdout or a buffer).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
