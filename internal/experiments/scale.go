package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"

	"cabd/internal/core"
	"cabd/internal/synth"
)

// ScalePoint is one cell of the raw-speed scaling sweep: the optimized
// pipeline (SoA feature matrix, parallel forest training, tree-major
// batch inference) against the sequential row-major oracle, at one
// (series length, GOMAXPROCS, candidate threshold) setting.
type ScalePoint struct {
	N     int `json:"n"`
	Procs int `json:"procs"` // requested GOMAXPROCS
	// Cores is the effective parallelism, min(Procs, NumCPU): requesting
	// 8 procs on a 1-core container still runs one goroutine at a time,
	// and regression tolerances are keyed by this number, not Procs.
	Cores         int     `json:"cores"`
	CandZ         float64 `json:"cand_z"` // candidate threshold (lower => more candidates)
	Cands         int     `json:"cands"`  // candidates the fast run scored
	OracleSeconds float64 `json:"oracle_seconds"`
	FastSeconds   float64 `json:"fast_seconds"`
	Speedup       float64 `json:"speedup"`
	// Equal is the differential verdict: the fast run's detections
	// (strategy, degradation, candidate indices, classes, confidences)
	// are bit-identical to the sequential oracle's.
	Equal bool `json:"equal"`
}

// scaleFingerprint serializes the deterministic detection surface of a
// run for the sweep's differential check. Confidences are included at
// full bit precision: the batch inference paths promise bit-identity,
// not approximate agreement.
func scaleFingerprint(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy=%s degraded=%v\n", res.Strategy, res.Degraded)
	for i := range res.Candidates {
		c := &res.Candidates[i]
		fmt.Fprintf(&b, "%d %d %b\n", c.Index, c.Class, c.Confidence)
	}
	return b.String()
}

// scaleReps is how many times each configuration is timed; the reported
// second count is the minimum (the least-perturbed run), which keeps the
// bench-guard comparison stable on 20ms-scale measurements.
const scaleReps = 3

// ScaleSweep measures wall time of the optimized detection pass against
// the Options.SeqOracle reference across series lengths, GOMAXPROCS
// settings and candidate thresholds. The oracle is timed once per
// (n, candZ) — it is single-threaded by construction, so proc settings
// cannot change it — and every fast run is differentially compared
// against its detections. Each timing is the minimum of scaleReps runs.
// GOMAXPROCS is restored before returning.
func ScaleSweep(sizes, procs []int, candZs []float64) []ScalePoint {
	if len(sizes) == 0 {
		sizes = []int{2000}
	}
	if len(procs) == 0 {
		procs = []int{1, 2, 8}
	}
	if len(candZs) == 0 {
		candZs = []float64{3, 2}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var out []ScalePoint
	for _, n := range sizes {
		s := synth.YahooLike(42, n)
		for _, z := range candZs {
			var oracleRes *core.Result
			oracleSec := 0.0
			for r := 0; r < scaleReps; r++ {
				t0 := clk.Now()
				oracleRes = core.NewDetector(core.Options{CandidateZ: z, SeqOracle: true}).Detect(s)
				if sec := clk.Now().Sub(t0).Seconds(); r == 0 || sec < oracleSec {
					oracleSec = sec
				}
			}
			want := scaleFingerprint(oracleRes)
			for _, p := range procs {
				runtime.GOMAXPROCS(p)
				var res *core.Result
				fastSec := 0.0
				for r := 0; r < scaleReps; r++ {
					t0 := clk.Now()
					res = core.NewDetector(core.Options{CandidateZ: z}).Detect(s)
					if sec := clk.Now().Sub(t0).Seconds(); r == 0 || sec < fastSec {
						fastSec = sec
					}
				}
				runtime.GOMAXPROCS(prev)
				pt := ScalePoint{
					N:             n,
					Procs:         p,
					Cores:         effectiveCores(p),
					CandZ:         z,
					Cands:         len(res.Candidates),
					OracleSeconds: oracleSec,
					FastSeconds:   fastSec,
					Equal:         scaleFingerprint(res) == want,
				}
				if fastSec > 0 {
					pt.Speedup = oracleSec / fastSec
				}
				out = append(out, pt)
			}
		}
	}
	return out
}

// effectiveCores clamps a GOMAXPROCS request to the hardware.
func effectiveCores(procs int) int {
	if ncpu := runtime.NumCPU(); procs > ncpu {
		return ncpu
	}
	return procs
}

// PrintScale renders the scaling sweep.
func PrintScale(w io.Writer, pts []ScalePoint) {
	fprintf(w, "Raw-speed scaling: optimized pass vs sequential row-major oracle\n")
	fprintf(w, "%8s %6s %6s %7s %7s %11s %11s %9s %6s\n",
		"n", "procs", "cores", "cand_z", "cands", "oracle_s", "fast_s", "speedup", "equal")
	for _, p := range pts {
		fprintf(w, "%8d %6d %6d %7.1f %7d %11.4f %11.4f %8.2fx %6v\n",
			p.N, p.Procs, p.Cores, p.CandZ, p.Cands, p.OracleSeconds, p.FastSeconds, p.Speedup, p.Equal)
	}
}
