package experiments

import (
	"io"

	"cabd/internal/baselines/knncad"
	"cabd/internal/baselines/numenta"
	"cabd/internal/core"
	"cabd/internal/eval"
	"cabd/internal/oracle"
)

// Fig1Row summarizes one algorithm's detections on the Figure 1 IoT tank
// example: anomaly and change-point quality plus whether the water-
// filling events were preserved (not flagged as errors).
type Fig1Row struct {
	Algorithm       string
	APF             float64
	CPF             float64
	EventsPreserved bool // no ground-truth change point flagged as anomaly
}

// Fig1 reproduces the Figure 1 comparison on the tank-level series:
// Numenta and KNN-CAD confuse events with errors (or miss the errors);
// CABD detects and separates both.
func Fig1(sc Scale) []Fig1Row {
	sc = sc.defaults()
	s := sc.IoTSuite()[0].S
	cpTruth := map[int]bool{}
	for _, c := range s.ChangePointIndices() {
		for off := -MatchTol; off <= MatchTol; off++ {
			cpTruth[c+off] = true
		}
	}
	// A detection near a change point only counts as "confusing the
	// event with an error" when there is no genuine error there: the
	// generator can legally place a sensor error right next to a refill
	// (the paper's own hard corner case).
	anomTruth := map[int]bool{}
	for _, a := range s.AnomalyIndices() {
		for off := -MatchTol; off <= MatchTol; off++ {
			anomTruth[a+off] = true
		}
	}
	preserved := func(anoms []int) bool {
		for _, a := range anoms {
			if cpTruth[a] && !anomTruth[a] {
				return false
			}
		}
		return true
	}
	var rows []Fig1Row
	res := core.NewDetector(core.Options{}).DetectActive(s, oracle.New(s))
	rows = append(rows, Fig1Row{
		Algorithm:       "CABD",
		APF:             apF(res, s).F1,
		CPF:             cpF(res, s).F1,
		EventsPreserved: preserved(res.AnomalyIndices()),
	})
	num := numenta.New(numenta.Config{}).Detect(s)
	rows = append(rows, Fig1Row{
		Algorithm:       "Numenta",
		APF:             eval.Match(num, s.AnomalyIndices(), MatchTol).F1,
		EventsPreserved: preserved(num),
	})
	kc := knncad.New(knncad.Config{}).Detect(s)
	rows = append(rows, Fig1Row{
		Algorithm:       "KNN-CAD",
		APF:             eval.Match(kc, s.AnomalyIndices(), MatchTol).F1,
		EventsPreserved: preserved(kc),
	})
	return rows
}

// PrintFig1 renders the example comparison.
func PrintFig1(w io.Writer, rows []Fig1Row) {
	fprintf(w, "Figure 1: IoT tank example — error detection vs event preservation\n")
	for _, r := range rows {
		ev := "confuses events with errors"
		if r.EventsPreserved {
			ev = "events preserved"
		}
		cp := ""
		if r.CPF > 0 {
			cp = fprintfS(" CP F=%s", pct(r.CPF))
		}
		fprintf(w, "  %-8s anomaly F=%s%s — %s\n", r.Algorithm, pct(r.APF), cp, ev)
	}
}
