package streambench

import (
	"strings"
	"testing"
)

// TestStreamBenchSmoke runs the whole benchmark at tiny scale: the
// differential oracle must hold at every window, every leg must move
// points, and the registry leg must finish clean.
func TestStreamBenchSmoke(t *testing.T) {
	res := StreamBench(StreamBenchConfig{
		Windows:   []int{32, 64},
		HopsPer:   8,
		Streams:   8,
		PerStream: 96,
		Registry:  6,
		Conc:      2,
	})
	if len(res.Cost) != 2 {
		t.Fatalf("cost rows = %d, want 2", len(res.Cost))
	}
	for _, c := range res.Cost {
		if !c.Equal {
			t.Errorf("window %d: incremental and full-rerun detections differ", c.Window)
		}
		if c.Detections == 0 {
			t.Errorf("window %d: chaos stream produced no detections", c.Window)
		}
	}
	if res.Scale.Detections == 0 {
		t.Error("scale leg produced no detections")
	}
	if res.Registry.Errors != 0 {
		t.Errorf("registry leg had %d errors", res.Registry.Errors)
	}
	if want := 6 * 6 * 16; res.Registry.Points != want {
		t.Errorf("registry leg accepted %d points, want %d", res.Registry.Points, want)
	}
	if res.Registry.Shed != 0 {
		t.Errorf("registry leg shed %d requests below capacity", res.Registry.Shed)
	}

	var sb strings.Builder
	PrintStream(&sb, res)
	for _, frag := range []string{"inc us/pt", "scale:", "registry:"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("rendered benchmark missing %q", frag)
		}
	}
}
