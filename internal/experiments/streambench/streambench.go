// Package streambench measures the streaming detection path: the
// incremental per-hop engine against the full-rerun oracle (cost and
// detection equality), per-point cost flatness over stream position,
// many-stream memory bounds, and the sharded stream registry over
// loopback HTTP. Like servebench it lives beside internal/experiments
// because it imports the cabd facade and internal/server.
package streambench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sync"

	"cabd"
	"cabd/client"
	"cabd/internal/faultgen"
	"cabd/internal/obs"
	"cabd/internal/server"
	"cabd/internal/synth"
)

// clk is the package time source, so the deterministic-clock harness of
// internal/experiments applies to this benchmark too.
var clk obs.Clock = obs.Wall

func fprintf(w io.Writer, format string, args ...interface{}) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// StreamBenchConfig parameterizes the streaming benchmark. Zero-valued
// fields take smoke-scale defaults.
type StreamBenchConfig struct {
	// Windows are the analysis-window sizes of the per-point cost leg
	// (default 64, 128, 256). The incremental engine's per-point cost
	// should stay near-flat across them while the full-rerun engine's
	// grows with the window.
	Windows []int
	// HopsPer sets the cost leg's stream length as Window*HopsPer
	// (default 12), long enough that steady-state hops dominate.
	HopsPer int
	// Streams and PerStream size the many-stream scale leg: Streams
	// live incremental detectors (default 192; -full runs 100000) each
	// fed PerStream observations round-robin (default 96).
	Streams   int
	PerStream int
	// Registry and Conc size the HTTP registry leg: Registry streams
	// (default 48) pushed by Conc concurrent clients (default 8).
	Registry int
	Conc     int
}

func (c StreamBenchConfig) defaults() StreamBenchConfig {
	if len(c.Windows) == 0 {
		c.Windows = []int{64, 128, 256}
	}
	if c.HopsPer <= 0 {
		c.HopsPer = 12
	}
	if c.Streams <= 0 {
		c.Streams = 192
	}
	if c.PerStream <= 0 {
		c.PerStream = 96
	}
	if c.Registry <= 0 {
		c.Registry = 48
	}
	if c.Conc <= 0 {
		c.Conc = 8
	}
	return c
}

// CostRow is one window size of the incremental-versus-full cost leg.
type CostRow struct {
	Window int `json:"window"`
	Points int `json:"points"`
	// IncUsPerPoint and FullUsPerPoint are mean per-point costs in
	// microseconds for the incremental and full-rerun engines.
	IncUsPerPoint  float64 `json:"inc_us_per_point"`
	FullUsPerPoint float64 `json:"full_us_per_point"`
	// IncFirstHalfUs and IncSecondHalfUs split the incremental run by
	// stream position: near-equal halves show per-point work does not
	// grow with stream length.
	IncFirstHalfUs  float64 `json:"inc_first_half_us"`
	IncSecondHalfUs float64 `json:"inc_second_half_us"`
	// Detections counts emitted detections (both engines, which must
	// agree); Equal is the differential-oracle verdict.
	Detections int  `json:"detections"`
	Equal      bool `json:"equal"`
}

// ScaleResult is the many-stream leg: memory and throughput with
// Streams live incremental detectors fed round-robin.
type ScaleResult struct {
	Streams        int     `json:"streams"`
	PerStream      int     `json:"per_stream"`
	Window         int     `json:"window"`
	Hop            int     `json:"hop"`
	BytesPerStream int64   `json:"bytes_per_stream"`
	PointsPerSec   float64 `json:"points_per_sec"`
	Detections     int     `json:"detections"`
}

// RegistryResult is the HTTP leg: concurrent NDJSON ingest through the
// sharded stream registry.
type RegistryResult struct {
	Streams      int     `json:"streams"`
	Concurrency  int     `json:"concurrency"`
	Points       int     `json:"points"`
	PointsPerSec float64 `json:"points_per_sec"`
	Errors       int     `json:"errors"`
	Shed         int64   `json:"shed"`
	Detections   int     `json:"detections"`
}

// StreamResult is the machine-readable streaming benchmark that
// cmd/cabd-bench emits as BENCH_stream.json.
type StreamResult struct {
	Cost     []CostRow      `json:"cost"`
	Scale    ScaleResult    `json:"scale"`
	Registry RegistryResult `json:"registry"`
}

// chaosStream builds a deterministic corrupted test stream: a synthetic
// labeled series run through the fault injector so both engines see
// NaNs, spikes and stuck-at runs on top of real anomalies.
func chaosStream(seed int64, n int) []float64 {
	s := synth.YahooLike(seed, n)
	rng := rand.New(rand.NewSource(seed * 7919))
	vals, _ := faultgen.Chaos(rng, s.Values)
	return vals
}

// StreamBench runs the streaming benchmark.
func StreamBench(cfg StreamBenchConfig) StreamResult {
	cfg = cfg.defaults()
	var res StreamResult
	for _, w := range cfg.Windows {
		res.Cost = append(res.Cost, costLeg(w, w*cfg.HopsPer))
	}
	res.Scale = scaleLeg(cfg.Streams, cfg.PerStream)
	res.Registry = registryLeg(cfg.Registry, cfg.Conc)
	return res
}

// costLeg pushes the same corrupted stream through the incremental and
// full-rerun engines and times both. The two detection sequences must
// be identical — the full rerun is the incremental engine's oracle.
func costLeg(window, points int) CostRow {
	row := CostRow{Window: window, Points: points}
	vals := chaosStream(11, points)
	mk := func(e cabd.StreamEngine) *cabd.StreamDetector {
		return cabd.NewStream(cabd.StreamConfig{
			Window:  window,
			Hop:     window / 8,
			Margin:  window / 16,
			Engine:  e,
			Options: cabd.Options{Seed: 42},
		})
	}

	inc := mk(cabd.StreamEngineIncremental)
	var incDets []cabd.StreamDetection
	half := len(vals) / 2
	t0 := clk.Now()
	for _, v := range vals[:half] {
		incDets = append(incDets, inc.Push(v)...)
	}
	t1 := clk.Now()
	for _, v := range vals[half:] {
		incDets = append(incDets, inc.Push(v)...)
	}
	t2 := clk.Now()
	incDets = append(incDets, inc.Flush()...)
	row.IncFirstHalfUs = t1.Sub(t0).Seconds() * 1e6 / float64(half)
	row.IncSecondHalfUs = t2.Sub(t1).Seconds() * 1e6 / float64(len(vals)-half)
	row.IncUsPerPoint = t2.Sub(t0).Seconds() * 1e6 / float64(len(vals))

	full := mk(cabd.StreamEngineFull)
	var fullDets []cabd.StreamDetection
	f0 := clk.Now()
	for _, v := range vals {
		fullDets = append(fullDets, full.Push(v)...)
	}
	f1 := clk.Now()
	fullDets = append(fullDets, full.Flush()...)
	row.FullUsPerPoint = f1.Sub(f0).Seconds() * 1e6 / float64(len(vals))

	row.Detections = len(incDets)
	row.Equal = reflect.DeepEqual(incDets, fullDets)
	return row
}

// scaleLeg holds Streams live incremental detectors and feeds them
// round-robin — the worst interleaving for cache locality and the honest
// shape of a many-stream deployment. Heap growth is measured across the
// whole leg and amortized per stream.
func scaleLeg(streams, perStream int) ScaleResult {
	const window, hop = 64, 32
	res := ScaleResult{Streams: streams, PerStream: perStream, Window: window, Hop: hop}
	base := chaosStream(5, perStream)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	dets := make([]*cabd.StreamDetector, streams)
	for i := range dets {
		dets[i] = cabd.NewStream(cabd.StreamConfig{
			Window:  window,
			Hop:     hop,
			Margin:  hop / 4,
			Options: cabd.Options{Seed: 42},
		})
	}
	t0 := clk.Now()
	for p := 0; p < perStream; p++ {
		// The chaos injector may drop observations, so cycle the base; a
		// planted spike every 23rd point guarantees detectable errors.
		v := base[p%len(base)]
		if p%23 == 11 {
			v += 60
		}
		for s, d := range dets {
			// A small per-stream offset keeps the streams distinct without
			// changing their shape (the pipeline is affine-invariant).
			res.Detections += len(d.Push(v + float64(s%7)))
		}
	}
	for _, d := range dets {
		res.Detections += len(d.Flush())
	}
	elapsed := clk.Now().Sub(t0).Seconds()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 0 {
		res.BytesPerStream = grew / int64(streams)
	}
	runtime.KeepAlive(dets)
	if elapsed > 0 {
		res.PointsPerSec = float64(streams*perStream) / elapsed
	}
	return res
}

// registryLeg drives the sharded stream registry over loopback HTTP:
// Conc clients push NDJSON batches into Registry distinct streams, then
// close them all.
func registryLeg(streams, conc int) RegistryResult {
	res := RegistryResult{Streams: streams, Concurrency: conc}
	srv, _ := server.New(server.Config{MaxStreams: streams + 8, JanitorEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	cl := client.New(ts.URL)

	const batches, batch = 6, 16
	// Clean values only: JSON has no NaN/Inf literal, so corrupted
	// observations cannot travel on this wire — bad-value handling is
	// covered by the in-process legs and the server's own tests.
	vals := synth.YahooLike(3, batches*batch).Values
	var mu sync.Mutex
	var wg sync.WaitGroup
	t0 := clk.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := c; s < streams; s += conc {
				id := fmt.Sprintf("tenant-%d/stream-%d", c, s)
				for b := 0; b < batches; b++ {
					out, err := cl.StreamPush(context.Background(), id, vals[b*batch:(b+1)*batch])
					mu.Lock()
					if err != nil {
						res.Errors++
					} else {
						res.Points += out.Accepted
						res.Detections += len(out.Detections)
					}
					mu.Unlock()
				}
				out, err := cl.StreamClose(context.Background(), id)
				mu.Lock()
				if err != nil {
					res.Errors++
				} else {
					res.Detections += len(out.Detections)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if elapsed := clk.Now().Sub(t0).Seconds(); elapsed > 0 {
		res.PointsPerSec = float64(res.Points) / elapsed
	}
	res.Shed = srv.Recorder().Snapshot().Counters[obs.CounterHTTPShed.String()]
	return res
}

// PrintStream renders the streaming benchmark.
func PrintStream(w io.Writer, r StreamResult) {
	fprintf(w, "Streaming benchmark: incremental engine vs full rerun\n")
	fprintf(w, "%8s %8s %12s %12s %10s %10s %6s %6s\n",
		"window", "points", "inc us/pt", "full us/pt", "1st-half", "2nd-half", "dets", "equal")
	for _, c := range r.Cost {
		fprintf(w, "%8d %8d %12.2f %12.2f %10.2f %10.2f %6d %6v\n",
			c.Window, c.Points, c.IncUsPerPoint, c.FullUsPerPoint,
			c.IncFirstHalfUs, c.IncSecondHalfUs, c.Detections, c.Equal)
	}
	fprintf(w, "scale: %d streams x %d points (window %d hop %d): %.0f pts/s, %d B/stream, %d detections\n",
		r.Scale.Streams, r.Scale.PerStream, r.Scale.Window, r.Scale.Hop,
		r.Scale.PointsPerSec, r.Scale.BytesPerStream, r.Scale.Detections)
	fprintf(w, "registry: %d streams x %d clients over HTTP: %d points at %.0f pts/s, %d errors, %d shed, %d detections\n",
		r.Registry.Streams, r.Registry.Concurrency, r.Registry.Points,
		r.Registry.PointsPerSec, r.Registry.Errors, r.Registry.Shed, r.Registry.Detections)
}

// WriteStreamJSON writes the streaming benchmark to path as indented
// JSON.
func WriteStreamJSON(path string, r StreamResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
