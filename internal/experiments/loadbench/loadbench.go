// Package loadbench measures the collector fleet end to end: N
// cabd-agent instances × M streams each forwarding into one cabd-serve,
// with a mid-run server crash/restart in the middle of the stream. It
// proves the at-least-once pipeline loses nothing — the server's final
// unique detection count equals an offline reference detector run over
// the same values — and probes the serving layer's shed point with an
// escalating concurrent burst. Like servebench it lives beside (not
// inside) internal/experiments because it imports internal/server.
package loadbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cabd"
	"cabd/client"
	"cabd/httpapi"
	"cabd/internal/agent"
	"cabd/internal/obs"
	"cabd/internal/server"
	"cabd/internal/synth"
)

// clk is the package time source; the deterministic-clock test harness
// applies here the same way it does in internal/experiments.
var clk obs.Clock = obs.Wall

func fprintf(w io.Writer, format string, args ...interface{}) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// LoadConfig parameterizes the load experiment. Zero-valued fields take
// defaults.
type LoadConfig struct {
	// Agents × Streams is the fleet shape (defaults 3 × 3); Values is
	// the per-stream series length (default 900).
	Agents  int
	Streams int
	Values  int
	// RampMax bounds the shed-point probe: concurrent detect bursts
	// double from 1 up to RampMax (default 32).
	RampMax int
}

func (c LoadConfig) defaults() LoadConfig {
	if c.Agents <= 0 {
		c.Agents = 3
	}
	if c.Streams <= 0 {
		c.Streams = 3
	}
	if c.Values <= 0 {
		c.Values = 900
	}
	if c.RampMax <= 0 {
		c.RampMax = 32
	}
	return c
}

// ShedProbe is one rung of the shed-point ramp: Burst concurrent detect
// calls against a one-worker/one-slot server, and how many were shed.
type ShedProbe struct {
	Burst             int `json:"burst"`
	Shed              int `json:"shed"`
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

// LoadResult is the machine-readable load experiment that cmd/cabd-bench
// emits as BENCH_load.json.
type LoadResult struct {
	Agents  int `json:"agents"`
	Streams int `json:"streams"`
	Values  int `json:"values"`

	// Reference is the offline detector's count over the same values —
	// the ground truth. Ingested is the server's unique count after the
	// crash/restart cycle; Lost = Reference − Ingested must be zero.
	Reference  int64 `json:"reference"`
	Ingested   int64 `json:"ingested"`
	Duplicates int64 `json:"duplicates"`
	Lost       int64 `json:"lost"`
	ZeroLoss   bool  `json:"zero_loss"`

	// Spilled / Replayed sum the fleet's outage traffic: detections
	// parked on disk while the server was down, then drained.
	Spilled  int64 `json:"spilled"`
	Replayed int64 `json:"replayed"`

	Seconds float64 `json:"seconds"`

	// ShedPoint is the smallest probed burst that saw a 429 (0 when the
	// ramp never saturated); Ramp records every rung.
	ShedPoint int         `json:"shed_point"`
	Ramp      []ShedProbe `json:"ramp"`
}

// streamVals generates the per-(agent, stream) series deterministically.
func streamVals(cfg LoadConfig, ag, st int) []float64 {
	return synth.YahooLike(int64(1+ag*cfg.Streams+st), cfg.Values).Values
}

// agentConfig builds one collector's config over its own directories.
func agentConfig(name, serverURL, srcDir, stateDir string) agent.Config {
	c := agent.Default()
	c.Name = name
	c.Server = serverURL
	c.SourceDir = srcDir
	c.StateDir = stateDir
	c.Backoff = client.Backoff{Base: time.Millisecond, Jitter: -1, Seed: 1}
	c.MaxAttempts = 2
	c.Window = 64
	c.Hop = 8
	c.Margin = 4
	c.Seed = 5
	// The experiment drives PollOnce directly; retry pauses collapse so
	// the outage leg doesn't wait out real backoff.
	c.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	return c
}

// LoadBench runs the experiment. Temporary state lives under a scratch
// directory and is removed on return.
func LoadBench(cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.defaults()
	res := LoadResult{Agents: cfg.Agents, Streams: cfg.Streams, Values: cfg.Values}
	start := clk.Now()

	scratch, err := os.MkdirTemp("", "cabd-loadbench-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(scratch)

	// --- zero-loss leg: fleet vs a crash/restart cycle ---
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	addr := ln.Addr().String()
	ckptDir := filepath.Join(scratch, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		return res, err
	}
	boot := func(ln net.Listener) (*server.Server, *http.Server, error) {
		srv, err := server.New(server.Config{CheckpointDir: ckptDir, JanitorEvery: -1})
		if err != nil {
			return nil, nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return srv, hs, nil
	}
	srv, hs, err := boot(ln)
	if err != nil {
		return res, err
	}

	agents := make([]*agent.Agent, cfg.Agents)
	srcDirs := make([]string, cfg.Agents)
	for i := range agents {
		srcDirs[i] = filepath.Join(scratch, fmt.Sprintf("a%d-src", i))
		stateDir := filepath.Join(scratch, fmt.Sprintf("a%d-state", i))
		if err := os.MkdirAll(srcDirs[i], 0o755); err != nil {
			return res, err
		}
		a, err := agent.New(agentConfig(fmt.Sprintf("a%d", i), "http://"+addr, srcDirs[i], stateDir))
		if err != nil {
			return res, err
		}
		agents[i] = a
	}

	// writeChunk appends values[from:to] of every stream to its source
	// file; pollAll drives every collector through one concurrent cycle.
	writeChunk := func(from, to int) error {
		for i := range agents {
			for st := 0; st < cfg.Streams; st++ {
				path := filepath.Join(srcDirs[i], fmt.Sprintf("s%02d.csv", st))
				f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					return err
				}
				for _, v := range streamVals(cfg, i, st)[from:to] {
					if _, err := fmt.Fprintf(f, "%g\n", v); err != nil {
						f.Close()
						return err
					}
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	pollAll := func() {
		var wg sync.WaitGroup
		for _, a := range agents {
			wg.Add(1)
			go func(a *agent.Agent) {
				defer wg.Done()
				_ = a.PollOnce(context.Background())
			}(a)
		}
		wg.Wait()
	}

	third := cfg.Values / 3
	// Phase 1: healthy fleet.
	if err := writeChunk(0, third); err != nil {
		return res, err
	}
	pollAll()
	// Phase 2: server crashes mid-run; this cycle's detections spill.
	_ = hs.Close()
	srv.Close()
	if err := writeChunk(third, 2*third); err != nil {
		return res, err
	}
	pollAll()
	// Phase 3: restart on the same address from the checkpoint dir, then
	// the rest of the stream — the spill replays in order first.
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return res, fmt.Errorf("relisten %s: %w", addr, err)
	}
	srv2, hs2, err := boot(ln2)
	if err != nil {
		return res, err
	}
	if err := writeChunk(2*third, cfg.Values); err != nil {
		return res, err
	}
	pollAll()
	pollAll() // one extra cycle drains anything a racing phase left behind

	stats, err := client.New("http://" + addr).IngestStats(context.Background())
	if err != nil {
		return res, err
	}
	_ = hs2.Close()
	srv2.Close()

	for i := range agents {
		rec := agents[i].Recorder()
		res.Spilled += rec.Count(obs.CounterAgentSpilled)
		res.Replayed += rec.Count(obs.CounterAgentReplayed)
	}
	for i := range agents {
		for st := 0; st < cfg.Streams; st++ {
			det := cabd.NewStream(cabd.StreamConfig{
				Window: 64, Hop: 8, Margin: 4, Options: cabd.Options{Seed: 5},
			})
			for _, v := range streamVals(cfg, i, st) {
				res.Reference += int64(len(det.Push(v)))
			}
		}
	}
	res.Ingested = stats.Total
	res.Duplicates = stats.Duplicates
	res.Lost = res.Reference - res.Ingested
	res.ZeroLoss = res.Lost == 0

	// --- shed-point leg: escalate concurrency until the server sheds ---
	tiny, err := server.New(server.Config{Workers: 1, QueueDepth: 1, JanitorEvery: -1})
	if err != nil {
		return res, err
	}
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tiny.Close()
		return res, err
	}
	ths := &http.Server{Handler: tiny.Handler()}
	go func() { _ = ths.Serve(tln) }()
	tcl := client.New("http://" + tln.Addr().String())
	burstVals := synth.YahooLike(42, 4000).Values
	for burst := 1; burst <= cfg.RampMax; burst *= 2 {
		probe := ShedProbe{Burst: burst}
		gate := make(chan struct{})
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-gate
				_, err := tcl.Detect(context.Background(), burstVals, nil)
				if serr, ok := err.(*httpapi.StatusError); ok && serr.IsSaturated() {
					mu.Lock()
					probe.Shed++
					if serr.RetryAfterSeconds > probe.RetryAfterSeconds {
						probe.RetryAfterSeconds = serr.RetryAfterSeconds
					}
					mu.Unlock()
				}
			}()
		}
		close(gate)
		wg.Wait()
		res.Ramp = append(res.Ramp, probe)
		if probe.Shed > 0 {
			res.ShedPoint = burst
			break
		}
	}
	_ = ths.Close()
	tiny.Close()

	res.Seconds = clk.Now().Sub(start).Seconds()
	return res, nil
}

// PrintLoad renders the load experiment.
func PrintLoad(w io.Writer, r LoadResult) {
	fprintf(w, "Load experiment: %d agents x %d streams x %d values, mid-run server restart\n",
		r.Agents, r.Streams, r.Values)
	fprintf(w, "loss accounting: reference %d, ingested %d (+%d duplicate redeliveries), lost %d, zero_loss=%v\n",
		r.Reference, r.Ingested, r.Duplicates, r.Lost, r.ZeroLoss)
	fprintf(w, "outage traffic: %d detections spilled to disk, %d replayed after reconnect\n",
		r.Spilled, r.Replayed)
	if r.ShedPoint > 0 {
		fprintf(w, "shed point: burst %d saturated a workers=1 queue=1 server (ramp:", r.ShedPoint)
	} else {
		fprintf(w, "shed point: not reached by the ramp (ramp:")
	}
	for _, p := range r.Ramp {
		fprintf(w, " %d/%d", p.Shed, p.Burst)
	}
	fprintf(w, " shed/burst)\n")
	fprintf(w, "completed in %.2fs\n", r.Seconds)
}

// WriteLoadJSON writes the load experiment to path as indented JSON.
func WriteLoadJSON(path string, r LoadResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
