package loadbench

import (
	"strings"
	"testing"
)

// TestLoadBenchTiny runs the whole experiment at a small scale: the
// fleet must lose nothing across the mid-run restart, the outage must
// actually exercise the spill path, and the ramp must find a shed point.
func TestLoadBenchTiny(t *testing.T) {
	res, err := LoadBench(LoadConfig{Agents: 2, Streams: 2, Values: 900, RampMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reference == 0 {
		t.Fatal("reference run produced no detections; the experiment proves nothing")
	}
	if !res.ZeroLoss || res.Lost != 0 {
		t.Fatalf("lost %d of %d detections across the restart", res.Lost, res.Reference)
	}
	if res.Spilled == 0 || res.Replayed == 0 {
		t.Fatalf("outage did not exercise the spill path: spilled %d replayed %d", res.Spilled, res.Replayed)
	}
	if res.ShedPoint == 0 {
		t.Fatalf("ramp to %d never saturated the one-worker server: %+v", 32, res.Ramp)
	}

	var b strings.Builder
	PrintLoad(&b, res)
	for _, want := range []string{"zero_loss=true", "shed point", "spilled"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("rendered output missing %q:\n%s", want, b.String())
		}
	}
}
