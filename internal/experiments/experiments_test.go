package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny is a reduced scale so the whole experiment suite runs in seconds.
var tiny = Scale{SynthN: 800, SynthCount: 2, YahooN: 800, YahooCount: 2,
	KPIN: 1500, KPICount: 1, IoTN: 800}

func TestTable1ShapeAndStory(t *testing.T) {
	rows := Table1(tiny)
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.ALAPF < r.UnsupAPF-0.05 {
			t.Errorf("%s: AL degraded anomaly F: %v -> %v", r.Dataset, r.UnsupAPF, r.ALAPF)
		}
		if r.Queries <= 0 {
			t.Errorf("%s: no oracle queries recorded", r.Dataset)
		}
		if r.AnPct <= 0 {
			t.Errorf("%s: anomaly density missing", r.Dataset)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "IoT") {
		t.Error("printed table missing IoT row")
	}
}

func TestFig5BNFPositive(t *testing.T) {
	pts := Fig5(tiny)
	if len(pts) != tiny.SynthCount {
		t.Fatalf("Fig5 points = %d", len(pts))
	}
	for _, p := range pts {
		if p.BNF < 0 || p.BNF > 1 {
			t.Errorf("BNF out of range: %+v", p)
		}
		if p.Total == 0 {
			t.Errorf("dataset without abnormal points: %+v", p)
		}
	}
	// The benefit must be substantial at the densest setting (many
	// anomalies recognized per label).
	if last := pts[len(pts)-1]; last.BNF < 0.3 {
		t.Errorf("dense-dataset BNF = %v, want >= 0.3 (grows with scale)", last.BNF)
	}
}

func TestFig6QueriesGrowWithConfidence(t *testing.T) {
	sc := Scale{SynthN: 800, SynthCount: 1, YahooN: 400, YahooCount: 1,
		KPIN: 800, KPICount: 1, IoTN: 400}
	pts := Fig6(sc)
	if len(pts) != 4*6 {
		t.Fatalf("Fig6 points = %d, want 24", len(pts))
	}
	// Within each density, queries at γ=0.95 >= queries at γ=0.5.
	byDensity := map[float64][]Fig6Point{}
	for _, p := range pts {
		byDensity[p.AnomalyPct] = append(byDensity[p.AnomalyPct], p)
	}
	for d, ps := range byDensity {
		if ps[len(ps)-1].Queries < ps[0].Queries {
			t.Errorf("density %v: queries decreased with confidence: %d -> %d",
				d, ps[0].Queries, ps[len(ps)-1].Queries)
		}
	}
}

func TestFig7CABDWins(t *testing.T) {
	rows := Fig7(tiny)
	best := map[string]CompareRow{}
	var cabd = map[string]float64{}
	for _, r := range rows {
		if r.Algorithm == "CABD" {
			cabd[r.Family] = r.F1
			continue
		}
		if b, ok := best[r.Family]; !ok || r.F1 > b.F1 {
			best[r.Family] = r
		}
	}
	// The paper's claim: CABD beats every unsupervised baseline on every
	// family. On the synthetic substitutes one decomposition-based
	// baseline (S-H-ESD) is stronger than on the paper's real data —
	// injected value-spikes in a decomposable seasonal signal are its
	// best case (see EXPERIMENTS.md) — so the assertion is a margin rule:
	// CABD never loses a family by more than 0.1 and wins most of them.
	wins := 0
	for fam, b := range best {
		if cabd[fam] >= b.F1 {
			wins++
		}
		if cabd[fam]+0.1 < b.F1 {
			t.Errorf("%s: baseline %s (%.2f) beats CABD (%.2f) by > 0.1",
				fam, b.Algorithm, b.F1, cabd[fam])
		}
	}
	if wins < 3 {
		t.Errorf("CABD wins only %d/4 families", wins)
	}
}

func TestFig8CABDALWins(t *testing.T) {
	rows := Fig8(tiny)
	var cabd = map[string]float64{}
	best := map[string]CompareRow{}
	for _, r := range rows {
		if r.Algorithm == "CABD+AL" {
			cabd[r.Family] = r.F1
			continue
		}
		if b, ok := best[r.Family]; !ok || r.F1 > b.F1 {
			best[r.Family] = r
		}
	}
	wins := 0
	for fam, b := range best {
		if cabd[fam] >= b.F1 {
			wins++
		} else {
			t.Logf("%s: %s (%.2f) above CABD+AL (%.2f)", fam, b.Algorithm, b.F1, cabd[fam])
		}
	}
	// Paper: CABD wins everywhere with one exception; require >= 3 of 4.
	if wins < 3 {
		t.Errorf("CABD+AL wins only %d/4 families", wins)
	}
}

func TestFig9ALBeatsBruteForcedBaselines(t *testing.T) {
	rows := Fig9(tiny)
	var alF, bestBase map[string]float64 = map[string]float64{}, map[string]float64{}
	for _, r := range rows {
		switch r.Algorithm {
		case "CABD w/ AL":
			alF[r.Family] = r.F1
		case "PELT", "BinSeg", "BottomUp":
			if r.F1 > bestBase[r.Family] {
				bestBase[r.Family] = r.F1
			}
		}
	}
	for fam, f := range alF {
		if f+0.1 < bestBase[fam] {
			t.Errorf("%s: best baseline %.2f beats CABD w/AL %.2f by >0.1",
				fam, bestBase[fam], f)
		}
	}
}

func TestFig11RuntimeShape(t *testing.T) {
	pts := Fig11([]int{1000, 2000})
	byAlgo := map[string][]Fig11Point{}
	for _, p := range pts {
		if p.Seconds < 0 {
			t.Errorf("negative runtime: %+v", p)
		}
		byAlgo[p.Algorithm] = append(byAlgo[p.Algorithm], p)
	}
	opt := byAlgo["CABD (optimized)"]
	unopt := byAlgo["CABD (no opt)"]
	if len(opt) != 2 || len(unopt) != 2 {
		t.Fatalf("missing CABD runtime rows: %v", byAlgo)
	}
	// The optimized variant must not be slower than the unoptimized one
	// at the largest size (Figure 11's headline).
	if opt[1].Seconds > unopt[1].Seconds*1.2 {
		t.Errorf("optimized CABD (%.3fs) slower than unoptimized (%.3fs)",
			opt[1].Seconds, unopt[1].Seconds)
	}
}

func TestFig12INNBeatsKNN(t *testing.T) {
	rows := Fig12(Scale{SynthN: 800, SynthCount: 1, YahooN: 800, YahooCount: 1,
		KPIN: 800, KPICount: 1, IoTN: 400})
	f := map[string]float64{}
	for _, r := range rows {
		f[r.Variant+"/"+r.Family+"/"+r.Task] = r.ALF
	}
	for _, fam := range []string{"Yahoo", "Synthetic"} {
		if f["CABD-INN/"+fam+"/anomaly"] < f["CABD-KNN/"+fam+"/anomaly"] {
			t.Errorf("%s: KNN variant beats INN on anomalies (%.2f vs %.2f)",
				fam, f["CABD-KNN/"+fam+"/anomaly"], f["CABD-INN/"+fam+"/anomaly"])
		}
	}
}

func TestFig13AllScoresBest(t *testing.T) {
	rows := Fig13(Scale{SynthN: 400, SynthCount: 1, YahooN: 800, YahooCount: 2,
		KPIN: 1500, KPICount: 1, IoTN: 400})
	byFam := map[string]map[string]float64{}
	for _, r := range rows {
		if byFam[r.Family] == nil {
			byFam[r.Family] = map[string]float64{}
		}
		byFam[r.Family][r.Scores] = r.ALF
	}
	for fam, fs := range byFam {
		for _, single := range []string{"MAG", "COR", "VAR"} {
			if fs["ALL"]+0.05 < fs[single] {
				t.Errorf("%s: single score %s (%.2f) beats ALL (%.2f)",
					fam, single, fs[single], fs["ALL"])
			}
		}
	}
}

func TestFig14CABDImprovesRepair(t *testing.T) {
	rows := Fig14(Scale{SynthN: 800, SynthCount: 3, YahooN: 400, YahooCount: 1,
		KPIN: 800, KPICount: 1, IoTN: 400})
	betterCount := 0
	for _, r := range rows {
		if r.RMSCABD < r.RMSBefore {
			betterCount++
		}
		if r.Labels <= 0 {
			t.Errorf("%s: no labels spent", r.Dataset)
		}
	}
	if betterCount < 2 {
		t.Errorf("CABD-guided repair improved only %d/3 datasets", betterCount)
	}
	// Guided must beat random on average (the Figure 14 headline).
	var g, rn float64
	for _, r := range rows {
		g += r.RMSCABD
		rn += r.RMSRandom
	}
	if g >= rn {
		t.Errorf("guided repair RMS %.3f not better than random %.3f", g, rn)
	}
}

func TestFig1EventPreservation(t *testing.T) {
	rows := Fig1(Scale{IoTN: 800})
	if len(rows) != 3 {
		t.Fatalf("Fig1 rows = %d", len(rows))
	}
	if rows[0].Algorithm != "CABD" || !rows[0].EventsPreserved {
		t.Errorf("CABD must preserve events: %+v", rows[0])
	}
	if rows[0].APF < 0.8 {
		t.Errorf("CABD Fig1 anomaly F = %v", rows[0].APF)
	}
}

func TestFig3ClusterSummary(t *testing.T) {
	clusters := Fig3(tiny)
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	total := 0
	for _, c := range clusters {
		total += c.Size
	}
	if total == 0 {
		t.Error("clusters are empty")
	}
}

func TestTable2Traces(t *testing.T) {
	traces := Table2(Scale{SynthN: 400, SynthCount: 1, YahooN: 800, YahooCount: 3,
		KPIN: 800, KPICount: 1, IoTN: 800})
	if len(traces) != 5 {
		t.Fatalf("Table2 traces = %d, want 5", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Rounds) == 0 {
			t.Errorf("%s: no rounds", tr.Dataset)
			continue
		}
		final := tr.Rounds[len(tr.Rounds)-1]
		first := tr.Rounds[0]
		if final.Accuracy+0.05 < first.Accuracy {
			t.Errorf("%s: accuracy degraded %.2f -> %.2f",
				tr.Dataset, first.Accuracy, final.Accuracy)
		}
	}
}

func TestPrinters(t *testing.T) {
	var buf bytes.Buffer
	PrintFig5(&buf, Fig5(Scale{SynthN: 400, SynthCount: 1, YahooN: 400,
		YahooCount: 1, KPIN: 800, KPICount: 1, IoTN: 400}))
	PrintFig3(&buf, Fig3(Scale{SynthN: 400, SynthCount: 1, YahooN: 400,
		YahooCount: 1, KPIN: 800, KPICount: 1, IoTN: 400}))
	if buf.Len() == 0 {
		t.Error("printers produced no output")
	}
}

func TestMultiExtension(t *testing.T) {
	rows := MultiExtension(Scale{SynthN: 1200, SynthCount: 1, YahooN: 400,
		YahooCount: 1, KPIN: 800, KPICount: 1, IoTN: 400})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byD := map[int]map[string]float64{}
	for _, r := range rows {
		if byD[r.Dims] == nil {
			byD[r.Dims] = map[string]float64{}
		}
		byD[r.Dims][r.Variant] = r.APF
	}
	// The joint detector must match the union's quality...
	for _, d := range []int{2, 3, 5} {
		if byD[d]["joint"]+0.1 < byD[d]["per-dimension"] {
			t.Errorf("joint (%.2f) below per-dimension union (%.2f) at d=%d",
				byD[d]["joint"], byD[d]["per-dimension"], d)
		}
	}
	// ...while consuming fewer labels at the highest dimensionality
	// (one AL loop instead of five).
	var jq, pq int
	for _, r := range rows {
		if r.Dims == 5 {
			if r.Variant == "joint" {
				jq = r.Queries
			} else {
				pq = r.Queries
			}
		}
	}
	if jq > pq {
		t.Errorf("joint labels (%d) exceed per-dimension total (%d) at d=5", jq, pq)
	}
	var buf bytes.Buffer
	PrintMultiExtension(&buf, rows)
	if buf.Len() == 0 {
		t.Error("printer empty")
	}
}
