package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cabd/internal/faultgen"
	"cabd/internal/scenario"
	"cabd/internal/synth"
)

// tinyScenarioConfig is one fault kind at both channel counts on a
// short carrier — enough to drive every algorithm end to end in
// seconds.
func tinyScenarioConfig() ScenarioConfig {
	return ScenarioConfig{Grid: scenario.Grid{
		Kinds:      []faultgen.Kind{faultgen.KindExtreme},
		Families:   []synth.Family{synth.FamilyFlat},
		Channels:   []int{1, 3},
		Severities: []scenario.Severity{scenario.Mild},
		N:          300,
	}}
}

func TestScenarioBenchShape(t *testing.T) {
	res := ScenarioBench(tinyScenarioConfig())
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (d=1 and d=3)", len(res.Cells))
	}
	// CABD + 7 unsupervised + 8 supervised + PELT = 17 algorithms, in
	// the same order on every cell and in the summary.
	const algos = 17
	if len(res.Summary) != algos {
		t.Fatalf("summary has %d algorithms, want %d", len(res.Summary), algos)
	}
	for _, c := range res.Cells {
		if len(c.Scores) != algos {
			t.Errorf("cell %s has %d scores, want %d", c.Cell, len(c.Scores), algos)
		}
		if c.Scores[0].Algorithm != "CABD" {
			t.Errorf("cell %s first algorithm = %s, want CABD", c.Cell, c.Scores[0].Algorithm)
		}
		if !c.OracleEqual {
			t.Errorf("cell %s diverged from the sequential oracle", c.Cell)
		}
		if c.Truth == 0 {
			t.Errorf("cell %s has no ground truth", c.Cell)
		}
	}
	if len(res.OracleDivergences) != 0 {
		t.Errorf("oracle divergences: %v", res.OracleDivergences)
	}
	// Isolated extreme spikes on a flat carrier are CABD's home turf:
	// it must land at least one true positive per cell.
	for _, c := range res.Cells {
		if c.Scores[0].TP == 0 {
			t.Errorf("cell %s: CABD found no true onset (dets=%d)", c.Cell, c.Scores[0].Detections)
		}
	}
}

func TestScenarioBenchDeterministic(t *testing.T) {
	a := ScenarioBench(tinyScenarioConfig())
	b := ScenarioBench(tinyScenarioConfig())
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Error("two runs of the same grid differ")
	}
}

func TestScenariosJSONAndPrint(t *testing.T) {
	res := ScenarioBench(tinyScenarioConfig())
	path := filepath.Join(t.TempDir(), "scen.json")
	if err := WriteScenariosJSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ScenarioBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written JSON does not parse: %v", err)
	}
	if len(back.Cells) != len(res.Cells) {
		t.Errorf("round-trip lost cells: %d != %d", len(back.Cells), len(res.Cells))
	}
	var buf bytes.Buffer
	PrintScenarios(&buf, res)
	out := buf.String()
	for _, want := range []string{"CABD", "PELT", "extreme/flat/d1/mild", "oracle=ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}
