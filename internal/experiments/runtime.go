package experiments

import (
	"io"
	"time"

	"cabd/internal/baselines/common"
	"cabd/internal/baselines/donut"
	"cabd/internal/baselines/knncad"
	"cabd/internal/baselines/luminol"
	"cabd/internal/baselines/numenta"
	"cabd/internal/baselines/twitteresd"
	"cabd/internal/core"
	"cabd/internal/synth"
)

// Fig11Point is one (algorithm, size) runtime measurement of Figure 11.
type Fig11Point struct {
	Algorithm string
	N         int
	Seconds   float64
}

// Fig11Sizes is the data-size sweep of the runtime study (paper: up to
// 20k points).
var Fig11Sizes = []int{2000, 5000, 10000, 20000}

// Fig11 reproduces Figure 11: runtime versus data size for CABD with and
// without the INN optimizations, and the baseline detectors. Labeling
// time is excluded (runs are unsupervised). Sizes can be overridden for
// quick benchmark runs.
func Fig11(sizes []int) []Fig11Point {
	if len(sizes) == 0 {
		sizes = Fig11Sizes
	}
	var out []Fig11Point
	for _, n := range sizes {
		s := synth.YahooLike(42, n)
		timeIt := func(name string, f func()) {
			start := time.Now()
			f()
			out = append(out, Fig11Point{name, n, time.Since(start).Seconds()})
		}
		timeIt("CABD (optimized)", func() {
			core.NewDetector(core.Options{Strategy: core.BinaryINN}).Detect(s)
		})
		timeIt("CABD (no opt)", func() {
			core.NewDetector(core.Options{Strategy: core.MutualSetINN}).Detect(s)
		})
		dets := []common.Detector{
			luminol.New(luminol.Config{}),
			twitteresd.New(twitteresd.Config{}),
			knncad.New(knncad.Config{}),
			numenta.New(numenta.Config{}),
		}
		for _, det := range dets {
			d := det
			timeIt(d.Name(), func() { d.Detect(s) })
		}
		// DONUT is the slow deep-model row; keep its training modest so
		// the sweep finishes, the ordering is what matters.
		timeIt("DONUT", func() {
			donut.New(donut.Config{Epochs: 5}).Detect(s)
		})
	}
	return out
}

// PrintFig11 renders the runtime sweep.
func PrintFig11(w io.Writer, pts []Fig11Point) {
	fprintf(w, "Figure 11: runtime (seconds) vs data size\n")
	fprintf(w, "%-18s %8s %10s\n", "algorithm", "n", "seconds")
	for _, p := range pts {
		fprintf(w, "%-18s %8d %10.3f\n", p.Algorithm, p.N, p.Seconds)
	}
}
