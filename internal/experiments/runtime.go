package experiments

import (
	"encoding/json"
	"io"
	"os"

	"cabd/internal/baselines/common"
	"cabd/internal/baselines/donut"
	"cabd/internal/baselines/knncad"
	"cabd/internal/baselines/luminol"
	"cabd/internal/baselines/numenta"
	"cabd/internal/baselines/twitteresd"
	"cabd/internal/core"
	"cabd/internal/inn"
	"cabd/internal/obs"
	"cabd/internal/synth"
)

// clk is the package's time source for every runtime measurement.
// Production keeps the wall clock (these sweeps measure real hardware);
// tests swap in an obs.FakeClock so measured durations are exact and the
// printers/tables can be asserted deterministically.
var clk obs.Clock = obs.Wall

// Fig11Point is one (algorithm, size) runtime measurement of Figure 11.
type Fig11Point struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Seconds   float64 `json:"seconds"`
}

// Fig11Sizes is the data-size sweep of the runtime study (paper: up to
// 20k points).
var Fig11Sizes = []int{2000, 5000, 10000, 20000}

// Fig11 reproduces Figure 11: runtime versus data size for CABD with and
// without the INN optimizations, and the baseline detectors. Labeling
// time is excluded (runs are unsupervised). Sizes can be overridden for
// quick benchmark runs.
func Fig11(sizes []int) []Fig11Point {
	if len(sizes) == 0 {
		sizes = Fig11Sizes
	}
	var out []Fig11Point
	for _, n := range sizes {
		s := synth.YahooLike(42, n)
		timeIt := func(name string, f func()) {
			start := clk.Now()
			f()
			out = append(out, Fig11Point{name, n, clk.Now().Sub(start).Seconds()})
		}
		timeIt("CABD (optimized)", func() {
			core.NewDetector(core.Options{Strategy: core.BinaryINN}).Detect(s)
		})
		timeIt("CABD (no opt)", func() {
			core.NewDetector(core.Options{Strategy: core.MutualSetINN}).Detect(s)
		})
		dets := []common.Detector{
			luminol.New(luminol.Config{}),
			twitteresd.New(twitteresd.Config{}),
			knncad.New(knncad.Config{}),
			numenta.New(numenta.Config{}),
		}
		for _, det := range dets {
			d := det
			timeIt(d.Name(), func() { d.Detect(s) })
		}
		// DONUT is the slow deep-model row; keep its training modest so
		// the sweep finishes, the ordering is what matters.
		timeIt("DONUT", func() {
			donut.New(donut.Config{Epochs: 5}).Detect(s)
		})
	}
	return out
}

// PrintFig11 renders the runtime sweep.
func PrintFig11(w io.Writer, pts []Fig11Point) {
	fprintf(w, "Figure 11: runtime (seconds) vs data size\n")
	fprintf(w, "%-18s %8s %10s\n", "algorithm", "n", "seconds")
	for _, p := range pts {
		fprintf(w, "%-18s %8d %10.3f\n", p.Algorithm, p.N, p.Seconds)
	}
}

// INNEngineRow is one (strategy, engine, size) cell of the probe-engine
// runtime comparison: the legacy full-k-NN membership probe versus the
// rank-query engine, averaged per neighborhood query.
type INNEngineRow struct {
	Strategy string  `json:"strategy"`
	Engine   string  `json:"engine"`
	N        int     `json:"n"`
	NsPerOp  float64 `json:"ns_per_op"`
	Speedup  float64 `json:"speedup,omitempty"` // legacy ns / this ns; 0 on legacy rows
}

// innEngineProbes caps the per-cell query count so the legacy MutualSet
// sweep (milliseconds per query at 5k points) stays tractable.
const innEngineProbes = 500

// INNEngines measures the INN probe engines head to head on the Fig. 11
// synthetic workload: per data size, each neighborhood strategy runs the
// same strided query set under the legacy engine and the rank engine.
func INNEngines(sizes []int) []INNEngineRow {
	if len(sizes) == 0 {
		sizes = []int{2000}
	}
	strategies := []struct {
		name string
		call func(c *inn.Computer, i, tlim int) []int
	}{
		{"Minimal", func(c *inn.Computer, i, tlim int) []int { return c.Minimal(i, tlim) }},
		{"Binary", func(c *inn.Computer, i, tlim int) []int { return c.Binary(i, tlim) }},
		{"MutualSet", func(c *inn.Computer, i, tlim int) []int { return c.MutualSet(i, tlim) }},
	}
	var out []INNEngineRow
	for _, n := range sizes {
		base := inn.FromSeries(synth.YahooLike(42, n))
		tlim := base.RangeLimit(0)
		probes := innEngineProbes
		if probes > n {
			probes = n
		}
		stride := n / probes
		for _, st := range strategies {
			var legacyNs float64
			for _, eng := range []struct {
				name string
				c    *inn.Computer
			}{
				{"legacy", base.WithLegacyProbes(true)},
				{"rank", base.WithLegacyProbes(false)},
			} {
				start := clk.Now()
				for p := 0; p < probes; p++ {
					st.call(eng.c, p*stride, tlim)
				}
				ns := float64(clk.Now().Sub(start).Nanoseconds()) / float64(probes)
				row := INNEngineRow{Strategy: st.name, Engine: eng.name, N: n, NsPerOp: ns}
				if eng.name == "legacy" {
					legacyNs = ns
				} else if ns > 0 {
					row.Speedup = legacyNs / ns
				}
				out = append(out, row)
			}
		}
	}
	return out
}

// PrintINNEngines renders the probe-engine comparison.
func PrintINNEngines(w io.Writer, rows []INNEngineRow) {
	fprintf(w, "INN probe engines: legacy k-NN probes vs rank queries (ns per neighborhood)\n")
	fprintf(w, "%-10s %-8s %8s %12s %9s\n", "strategy", "engine", "n", "ns/op", "speedup")
	for _, r := range rows {
		sp := ""
		if r.Speedup > 0 {
			sp = fprintfS("%8.1fx", r.Speedup)
		}
		fprintf(w, "%-10s %-8s %8d %12.0f %9s\n", r.Strategy, r.Engine, r.N, r.NsPerOp, sp)
	}
}

// StageRow is one per-stage runtime share of an instrumented CABD run
// (the where-does-the-time-go breakdown Figure 11 cannot show, since its
// baseline rows have no recorder).
type StageRow struct {
	N       int     `json:"n"`
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Frac    float64 `json:"frac"` // share of the run's stage-sum total
}

// StageProfile runs the optimized detector with an obs recorder attached
// on the Fig. 11 synthetic workload and reports per-stage wall time and
// share, per data size. The second return is the recorder's cumulative
// state across the whole sweep (counters, degrade reasons, histograms)
// for merging into the runtime snapshot.
func StageProfile(sizes []int) ([]StageRow, *obs.Snapshot) {
	if len(sizes) == 0 {
		sizes = []int{2000}
	}
	rec := obs.New()
	var out []StageRow
	for _, n := range sizes {
		s := synth.YahooLike(42, n)
		res := core.NewDetector(core.Options{Obs: rec}).Detect(s)
		total := res.Stages.Total().Seconds()
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			d := res.Stages.Get(st)
			if d <= 0 {
				continue
			}
			row := StageRow{N: n, Stage: st.String(), Seconds: d.Seconds()}
			if total > 0 {
				row.Frac = d.Seconds() / total
			}
			out = append(out, row)
		}
	}
	snap := rec.Snapshot()
	return out, &snap
}

// PrintStageProfile renders the stage breakdown.
func PrintStageProfile(w io.Writer, rows []StageRow) {
	fprintf(w, "Pipeline stage profile: per-stage wall time (obs recorder)\n")
	fprintf(w, "%8s %-12s %10s %7s\n", "n", "stage", "seconds", "share")
	for _, r := range rows {
		fprintf(w, "%8d %-12s %10.4f %6.1f%%\n", r.N, r.Stage, r.Seconds, 100*r.Frac)
	}
}

// RuntimeSnapshot aggregates the machine-readable runtime results that
// cmd/cabd-bench emits as BENCH_runtime.json.
type RuntimeSnapshot struct {
	Fig11  []Fig11Point   `json:"fig11,omitempty"`
	INN    []INNEngineRow `json:"inn_engines,omitempty"`
	Stages []StageRow     `json:"stage_profile,omitempty"`
	// Scale is the raw-speed scaling sweep (optimized pass vs the
	// sequential row-major oracle); scripts/bench_guard diffs these rows
	// against checked-in tolerances.
	Scale []ScalePoint `json:"scale,omitempty"`
	// Obs is the metrics-recorder snapshot of the stage-profile sweep,
	// merged in under -metrics.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Empty reports whether the snapshot holds no measurements.
func (s RuntimeSnapshot) Empty() bool {
	return len(s.Fig11) == 0 && len(s.INN) == 0 && len(s.Stages) == 0 &&
		len(s.Scale) == 0 && s.Obs == nil
}

// WriteRuntimeJSON writes the snapshot to path as indented JSON.
func WriteRuntimeJSON(path string, snap RuntimeSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
