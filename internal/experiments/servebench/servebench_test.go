package servebench

import (
	"testing"
	"time"

	"cabd/internal/obs"
)

// withFakeClock swaps the package time source for a stepping FakeClock
// and restores it when the test ends, mirroring the harness in
// internal/experiments. Tests using it must not run in parallel.
func withFakeClock(t *testing.T, step time.Duration) *obs.FakeClock {
	t.Helper()
	fc := obs.NewFakeClock(time.Time{})
	fc.SetStep(step)
	old := clk
	clk = fc
	t.Cleanup(func() { clk = old })
	return fc
}

// TestServeBenchFakeClockExact: at Concurrency 1 every detect round trip
// brackets exactly one Now pair, so under a stepping clock every latency
// quantile is exactly one step, the throughput leg's total is exactly
// its Now-call count, and the session leg is one bracketing pair —
// proof the serving benchmark reads no hidden wall clock.
func TestServeBenchFakeClockExact(t *testing.T) {
	step := 10 * time.Millisecond
	withFakeClock(t, step)
	res := ServeBench(ServeConfig{Requests: 4, Concurrency: 1, N: 64, Burst: 2})
	if res.Errors != 0 {
		t.Fatalf("throughput leg had %d errors", res.Errors)
	}
	stepMs := step.Seconds() * 1e3
	for _, q := range []struct {
		name string
		got  float64
	}{{"p50", res.P50Ms}, {"p90", res.P90Ms}, {"p99", res.P99Ms}} {
		if q.got != stepMs {
			t.Errorf("%s = %vms, want exactly %vms (one clock step)", q.name, q.got, stepMs)
		}
	}
	// One start call, two calls per request, one end call: the total span
	// covers exactly 2*Requests+1 steps.
	if want := (2*4 + 1) * step.Seconds(); res.Seconds != want {
		t.Errorf("throughput leg total %vs, want exactly %vs", res.Seconds, want)
	}
	// The session leg brackets the whole run with a single Now pair; its
	// polling sleeps never touch the package clock.
	if res.Session.Seconds != step.Seconds() {
		t.Errorf("session leg %vs, want exactly one step %vs", res.Session.Seconds, step.Seconds())
	}
	if !res.Session.Converged {
		t.Errorf("auto-labeled session did not converge: min confidence %v < gamma %v",
			res.Session.MinConfidence, res.Session.Gamma)
	}
}
