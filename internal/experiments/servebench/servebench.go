// Package servebench measures the HTTP serving layer end to end. It
// lives beside (not inside) internal/experiments because it imports
// internal/server, which imports the cabd facade — folding it into
// experiments would close an import cycle through the facade's own
// bench_test.go.
package servebench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"cabd/client"
	"cabd/httpapi"
	"cabd/internal/obs"
	"cabd/internal/server"
	"cabd/internal/synth"
)

// clk is the package time source; the serving benchmark reads time only
// through it so the deterministic-clock test harness applies here the
// same way it does in internal/experiments.
var clk obs.Clock = obs.Wall

// fprintf writes best-effort formatted output (bench rendering ignores
// writer errors, matching internal/experiments).
func fprintf(w io.Writer, format string, args ...interface{}) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// ServeConfig parameterizes the serving benchmark. Zero-valued fields
// take defaults.
type ServeConfig struct {
	// Requests is the detect-call count of the throughput leg (default
	// 64), spread over Concurrency client goroutines (default 8).
	Requests    int
	Concurrency int
	// N is the length of the synthetic series each request carries
	// (default 512).
	N int
	// Burst is the concurrent-request count of the saturation leg, fired
	// at a one-worker/one-slot server so most of it must shed (default
	// 16).
	Burst int
	// Confidence is the session leg's termination confidence γ (default
	// 0.8, the library default).
	Confidence float64
}

func (c ServeConfig) defaults() ServeConfig {
	if c.Requests <= 0 {
		c.Requests = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.N <= 0 {
		c.N = 512
	}
	if c.Burst <= 0 {
		c.Burst = 16
	}
	if c.Confidence <= 0 {
		c.Confidence = 0.8
	}
	return c
}

// ServeSaturation is the backpressure leg of the serving benchmark: a
// burst against a deliberately tiny server, reporting how much load was
// shed with 429 + Retry-After.
type ServeSaturation struct {
	Burst int `json:"burst"`
	// Shed counts client-observed 429 replies; ShedCounter is the
	// server's own http_shed_total, which also covers queue-full
	// admissions inside accepted requests.
	Shed        int   `json:"shed"`
	ShedCounter int64 `json:"shed_counter"`
	// RetryAfterSeconds is the largest backoff hint observed.
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

// ServeSession is the interactive leg: one auto-labeled session (the
// oracle answers from synthetic ground truth) run to convergence.
type ServeSession struct {
	N       int     `json:"n"`
	Queries int     `json:"queries"`
	Gamma   float64 `json:"gamma"`
	// MinConfidence is the smallest detection confidence in the final
	// result; Converged reports MinConfidence >= Gamma (vacuously true
	// with no detections).
	MinConfidence float64 `json:"min_confidence"`
	Converged     bool    `json:"converged"`
	Seconds       float64 `json:"seconds"`
}

// ServeResult is the machine-readable serving benchmark that
// cmd/cabd-bench emits as BENCH_serve.json.
type ServeResult struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	N           int     `json:"n"`
	Errors      int     `json:"errors"`
	Seconds     float64 `json:"seconds"`
	ReqPerSec   float64 `json:"req_per_sec"`
	// Latency quantiles of the detect round trips, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`

	Saturation ServeSaturation `json:"saturation"`
	Session    ServeSession    `json:"session"`
}

// ServeBench measures the HTTP serving layer end to end over a loopback
// listener: detect-call throughput and latency quantiles, backpressure
// shedding at saturation, and one auto-labeled interactive session run
// to convergence. All timings read the package clock, so the
// deterministic-clock harness applies to this benchmark too.
func ServeBench(cfg ServeConfig) ServeResult {
	cfg = cfg.defaults()
	res := ServeResult{Requests: cfg.Requests, Concurrency: cfg.Concurrency, N: cfg.N}

	// --- throughput leg ---
	srv, _ := server.New(server.Config{JanitorEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	cl := client.New(ts.URL)
	vals := synth.YahooLike(42, cfg.N).Values

	lats := make([]float64, cfg.Requests)
	errs := make([]error, cfg.Requests)
	start := clk.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < cfg.Requests; i += cfg.Concurrency {
				t0 := clk.Now()
				_, err := cl.Detect(context.Background(), vals, nil)
				lats[i] = clk.Now().Sub(t0).Seconds() * 1e3
				errs[i] = err
			}
		}(w)
	}
	wg.Wait()
	res.Seconds = clk.Now().Sub(start).Seconds()
	for _, err := range errs {
		if err != nil {
			res.Errors++
		}
	}
	if res.Seconds > 0 {
		res.ReqPerSec = float64(cfg.Requests) / res.Seconds
	}
	sort.Float64s(lats)
	res.P50Ms = quantile(lats, 0.50)
	res.P90Ms = quantile(lats, 0.90)
	res.P99Ms = quantile(lats, 0.99)
	ts.Close()
	srv.Close()

	// --- saturation leg: one worker, one queue slot, Burst callers ---
	tiny, _ := server.New(server.Config{Workers: 1, QueueDepth: 1, JanitorEvery: -1})
	tts := httptest.NewServer(tiny.Handler())
	tcl := client.New(tts.URL)
	sat := ServeSaturation{Burst: cfg.Burst}
	// A longer series per request widens the in-flight window so the
	// burst genuinely overlaps; the gate releases every caller at once.
	satVals := vals
	if cfg.N < 4000 {
		satVals = synth.YahooLike(42, 4000).Values
	}
	gate := make(chan struct{})
	var satMu sync.Mutex
	var satWG sync.WaitGroup
	for i := 0; i < cfg.Burst; i++ {
		satWG.Add(1)
		go func() {
			defer satWG.Done()
			<-gate
			_, err := tcl.Detect(context.Background(), satVals, nil)
			if serr, ok := err.(*httpapi.StatusError); ok && serr.IsSaturated() {
				satMu.Lock()
				sat.Shed++
				if serr.RetryAfterSeconds > sat.RetryAfterSeconds {
					sat.RetryAfterSeconds = serr.RetryAfterSeconds
				}
				satMu.Unlock()
			}
		}()
	}
	close(gate)
	satWG.Wait()
	snap := tiny.Recorder().Snapshot()
	sat.ShedCounter = snap.Counters[obs.CounterHTTPShed.String()]
	res.Saturation = sat
	tts.Close()
	tiny.Close()

	// --- session leg: auto-labeled active learning to convergence ---
	ssrv, _ := server.New(server.Config{JanitorEvery: -1})
	sts := httptest.NewServer(ssrv.Handler())
	scl := client.New(sts.URL)
	s := synth.YahooLike(7, cfg.N)
	truth := make([]string, s.Len())
	for i, l := range s.Labels {
		truth[i] = l.String()
	}
	sess := ServeSession{N: cfg.N, Gamma: cfg.Confidence, MinConfidence: 1}
	t0 := clk.Now()
	st, err := scl.CreateSession(context.Background(), httpapi.SessionRequest{
		Series:    s.Values,
		Options:   &httpapi.DetectOptions{Confidence: cfg.Confidence},
		AutoLabel: true,
		Truth:     truth,
	})
	for err == nil && st.State != httpapi.StateDone && st.State != httpapi.StateFailed {
		time.Sleep(5 * time.Millisecond)
		st, err = scl.Session(context.Background(), st.ID)
	}
	sess.Seconds = clk.Now().Sub(t0).Seconds()
	if err == nil && st.State == httpapi.StateDone && st.Result != nil {
		sess.Queries = st.Queries
		for _, d := range append(st.Result.Anomalies, st.Result.ChangePoints...) {
			if d.Confidence < sess.MinConfidence {
				sess.MinConfidence = d.Confidence
			}
		}
		sess.Converged = sess.MinConfidence >= cfg.Confidence
	}
	res.Session = sess
	sts.Close()
	ssrv.Close()
	return res
}

// quantile reads the q-th quantile from sorted xs (nearest rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs)) + 0.5)
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// PrintServe renders the serving benchmark.
func PrintServe(w io.Writer, r ServeResult) {
	fprintf(w, "Serving benchmark: cabd-serve over loopback HTTP\n")
	fprintf(w, "detect: %d requests x %d clients, n=%d: %.1f req/s (p50 %.1fms p90 %.1fms p99 %.1fms, %d errors)\n",
		r.Requests, r.Concurrency, r.N, r.ReqPerSec, r.P50Ms, r.P90Ms, r.P99Ms, r.Errors)
	fprintf(w, "saturation: burst %d at workers=1 queue=1: %d shed (server counter %d), Retry-After <= %ds\n",
		r.Saturation.Burst, r.Saturation.Shed, r.Saturation.ShedCounter, r.Saturation.RetryAfterSeconds)
	fprintf(w, "session: n=%d auto-labeled, %d queries, min confidence %.3f vs gamma %.2f, converged=%v (%.2fs)\n",
		r.Session.N, r.Session.Queries, r.Session.MinConfidence, r.Session.Gamma, r.Session.Converged, r.Session.Seconds)
}

// WriteServeJSON writes the serving benchmark to path as indented JSON.
func WriteServeJSON(path string, r ServeResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
