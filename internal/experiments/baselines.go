package experiments

import (
	"fmt"
	"io"
	"sort"

	"cabd/internal/baselines/bocpd"
	"cabd/internal/baselines/common"
	"cabd/internal/baselines/contextose"
	"cabd/internal/baselines/donut"
	"cabd/internal/baselines/fbag"
	"cabd/internal/baselines/hbos"
	"cabd/internal/baselines/iforest"
	"cabd/internal/baselines/knncad"
	"cabd/internal/baselines/luminol"
	"cabd/internal/baselines/mcd"
	"cabd/internal/baselines/numenta"
	"cabd/internal/baselines/relent"
	"cabd/internal/baselines/spot"
	"cabd/internal/baselines/sr"
	"cabd/internal/baselines/twitteresd"
	"cabd/internal/changepoint"
	"cabd/internal/core"
	"cabd/internal/eval"
	"cabd/internal/oracle"
	"cabd/internal/series"
)

// CompareRow is one (algorithm, dataset family) cell of Figures 7/8:
// the anomaly-detection F-score averaged over the family.
type CompareRow struct {
	Algorithm string
	Family    string
	F1        float64
}

// unsupervisedDetectors returns the Figure 7 competitor set with their
// default (parameter-free or NAB-default) configurations.
func unsupervisedDetectors() []common.Detector {
	return []common.Detector{
		numenta.New(numenta.Config{}),
		twitteresd.New(twitteresd.Config{}),
		luminol.New(luminol.Config{}),
		knncad.New(knncad.Config{}),
		contextose.New(contextose.Config{}),
		relent.New(relent.Config{}),
		bocpd.New(bocpd.Config{}),
	}
}

// supervisedDetectors returns the Figure 8 competitor set. The
// "supervision" these methods receive in the paper is training on
// annotated data; the equivalent here is handing each its true
// contamination rate, the dataset-specific parameter CABD avoids.
func supervisedDetectors(contamination float64) []common.Detector {
	return []common.Detector{
		fbag.New(fbag.Config{Contamination: contamination}),
		hbos.New(hbos.Config{Contamination: contamination}),
		iforest.New(iforest.Config{Contamination: contamination}),
		mcd.New(mcd.Config{Contamination: contamination}),
		spot.New(spot.Config{Q: contamination / 10}),
		spot.New(spot.Config{Q: contamination / 10, Depth: 20}),
		donut.New(donut.Config{Epochs: 15, Contamination: contamination}),
		sr.New(sr.Config{Contamination: contamination}),
	}
}

// datasetFamilies returns the four evaluation families.
func datasetFamilies(sc Scale) map[string][]Dataset {
	return map[string][]Dataset{
		"Synthetic": sc.SynthSuite(),
		"Yahoo":     sc.YahooSuite(),
		"KPI":       sc.KPISuite(),
		"IoT":       sc.IoTSuite(),
	}
}

// familyOrder fixes the print order.
var familyOrder = []string{"Synthetic", "Yahoo", "KPI", "IoT"}

// Fig7 reproduces Figure 7: CABD (unsupervised) versus the unsupervised
// anomaly-detection baselines on all dataset families.
func Fig7(sc Scale) []CompareRow {
	sc = sc.defaults()
	var rows []CompareRow
	for _, fam := range familyOrder {
		sets := datasetFamilies(sc)[fam]
		// CABD unsupervised.
		var cabdF float64
		for _, ds := range sets {
			res := core.NewDetector(core.Options{}).Detect(ds.S)
			cabdF += apF(res, ds.S).F1
		}
		rows = append(rows, CompareRow{"CABD", fam, cabdF / float64(len(sets))})
		for _, det := range unsupervisedDetectors() {
			var f float64
			for _, ds := range sets {
				got := det.Detect(ds.S)
				f += eval.Match(got, ds.S.AnomalyIndices(), MatchTol).F1
			}
			rows = append(rows, CompareRow{det.Name(), fam, f / float64(len(sets))})
		}
	}
	return rows
}

// Fig8 reproduces Figure 8: CABD with active learning versus the
// supervised baselines (each given the true contamination).
func Fig8(sc Scale) []CompareRow {
	sc = sc.defaults()
	var rows []CompareRow
	for _, fam := range familyOrder {
		sets := datasetFamilies(sc)[fam]
		var cabdF float64
		for _, ds := range sets {
			res := core.NewDetector(core.Options{}).DetectActive(ds.S, oracle.New(ds.S))
			cabdF += apF(res, ds.S).F1
		}
		rows = append(rows, CompareRow{"CABD+AL", fam, cabdF / float64(len(sets))})
		// Average contamination of the family.
		var cont float64
		for _, ds := range sets {
			cont += labelFrac(ds.S, series.Label.IsAnomaly)
		}
		cont /= float64(len(sets))
		if cont <= 0 {
			cont = 0.01
		}
		for _, det := range supervisedDetectors(cont) {
			var f float64
			for _, ds := range sets {
				got := det.Detect(ds.S)
				f += eval.Match(got, ds.S.AnomalyIndices(), MatchTol).F1
			}
			rows = append(rows, CompareRow{det.Name(), fam, f / float64(len(sets))})
		}
	}
	return rows
}

// PrintCompare renders a Figure 7/8 style comparison.
func PrintCompare(w io.Writer, title string, rows []CompareRow) {
	fprintf(w, "%s\n", title)
	byFam := map[string][]CompareRow{}
	for _, r := range rows {
		byFam[r.Family] = append(byFam[r.Family], r)
	}
	for _, fam := range familyOrder {
		rs := byFam[fam]
		if len(rs) == 0 {
			continue
		}
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].F1 > rs[b].F1 })
		fprintf(w, "  %s:\n", fam)
		for _, r := range rs {
			fprintf(w, "    %-12s F=%s\n", r.Algorithm, pct(r.F1))
		}
	}
}

// Fig9Row is one (algorithm, family) change-point detection cell of
// Figure 9. The baselines get their penalty brute-forced from 0 to 100,
// the paper's protocol.
type Fig9Row struct {
	Algorithm string
	Family    string
	F1        float64
	BestPen   float64
}

// Fig9 reproduces Figure 9: change-point detection quality on the IoT and
// synthetic families.
func Fig9(sc Scale) []Fig9Row {
	sc = sc.defaults()
	fams := map[string][]Dataset{
		"Synthetic": sc.SynthSuite(),
		"IoT":       sc.IoTSuite(),
	}
	var rows []Fig9Row
	for _, fam := range []string{"Synthetic", "IoT"} {
		sets := fams[fam]
		var cabdU, cabdA float64
		for _, ds := range sets {
			unsup, al := runPair(ds.S, core.Options{})
			cabdU += cpF(unsup, ds.S).F1
			cabdA += cpF(al, ds.S).F1
		}
		n := float64(len(sets))
		rows = append(rows,
			Fig9Row{"CABD w/o AL", fam, cabdU / n, 0},
			Fig9Row{"CABD w/ AL", fam, cabdA / n, 0})
		algos := map[string]func([]float64, float64) []int{
			"PELT":     func(xs []float64, pen float64) []int { return changepoint.PELT(xs, pen) },
			"BinSeg":   func(xs []float64, pen float64) []int { return changepoint.BinSeg(xs, pen, 2) },
			"BottomUp": func(xs []float64, pen float64) []int { return changepoint.BottomUp(xs, pen, 2) },
		}
		for _, name := range []string{"PELT", "BinSeg", "BottomUp"} {
			algo := algos[name]
			var f, penAvg float64
			for _, ds := range sets {
				truth := ds.S.ChangePointIndices()
				pen, _, q := changepoint.BestPenalty(
					func(p float64) []int { return algo(ds.S.Values, p) },
					func(cps []int) float64 { return eval.Match(cps, truth, MatchTol).F1 },
					1, 100, 3)
				f += q
				penAvg += pen
			}
			rows = append(rows, Fig9Row{name, fam, f / n, penAvg / n})
		}
	}
	return rows
}

// PrintFig9 renders the Figure 9 comparison.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fprintf(w, "Figure 9: change point detection quality (baseline penalties brute-forced)\n")
	for _, r := range rows {
		pen := ""
		if r.BestPen > 0 {
			pen = fprintfS(" (best pen %.0f)", r.BestPen)
		}
		fprintf(w, "  %-10s %-12s F=%s%s\n", r.Family, r.Algorithm, pct(r.F1), pen)
	}
}

// Fig10Row is one cell of Figure 10: CABD versus the HBOS+PELT
// combination on the joint anomaly+change detection task.
type Fig10Row struct {
	Algorithm string
	Family    string
	F1        float64
}

// Fig10 reproduces Figure 10: the union of anomaly and change-point
// detections scored against the union of both ground truths.
func Fig10(sc Scale) []Fig10Row {
	sc = sc.defaults()
	fams := map[string][]Dataset{
		"Synthetic": sc.SynthSuite(),
		"IoT":       sc.IoTSuite(),
	}
	var rows []Fig10Row
	for _, fam := range []string{"Synthetic", "IoT"} {
		sets := fams[fam]
		n := float64(len(sets))
		var cabdU, cabdA, combo float64
		for _, ds := range sets {
			truth := append(append([]int{}, ds.S.AnomalyIndices()...),
				ds.S.ChangePointIndices()...)
			unsup, al := runPair(ds.S, core.Options{})
			joint := func(r *core.Result) []int {
				return append(append([]int{}, r.AnomalyIndices()...),
					r.ChangePointIndices()...)
			}
			cabdU += eval.Match(joint(unsup), truth, MatchTol).F1
			cabdA += eval.Match(joint(al), truth, MatchTol).F1

			// Combined baseline: HBOS anomalies + PELT change points
			// with brute-forced penalty.
			cont := labelFrac(ds.S, series.Label.IsAnomaly)
			if cont <= 0 {
				cont = 0.01
			}
			anoms := hbos.New(hbos.Config{Contamination: cont}).Detect(ds.S)
			_, cps, _ := changepoint.BestPenalty(
				func(p float64) []int { return changepoint.PELT(ds.S.Values, p) },
				func(cps []int) float64 {
					return eval.Match(cps, ds.S.ChangePointIndices(), MatchTol).F1
				},
				1, 100, 3)
			combo += eval.Match(append(append([]int{}, anoms...), cps...), truth, MatchTol).F1
		}
		rows = append(rows,
			Fig10Row{"CABD w/o AL", fam, cabdU / n},
			Fig10Row{"CABD w/ AL", fam, cabdA / n},
			Fig10Row{"HBOS+PELT", fam, combo / n})
	}
	return rows
}

// PrintFig10 renders the Figure 10 comparison.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fprintf(w, "Figure 10: CABD vs combined baseline (HBOS + PELT), joint detection\n")
	for _, r := range rows {
		fprintf(w, "  %-10s %-12s F=%s\n", r.Family, r.Algorithm, pct(r.F1))
	}
}

func fprintfS(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
