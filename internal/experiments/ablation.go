package experiments

import (
	"io"
	"math/rand"

	"cabd/internal/core"
)

// Fig12Row is one cell of Figure 12: CABD with INN versus CABD with a
// fixed-k KNN neighborhood (k brute-forced), with and without AL.
type Fig12Row struct {
	Variant string // "CABD-INN" or "CABD-KNN"
	Family  string
	Task    string // "anomaly" or "change"
	UnsupF  float64
	ALF     float64
	BestK   int // brute-forced k for the KNN variant
}

// fig12KGrid is the brute-force grid for the KNN ablation's k (the paper
// searches 0..data size; the grid covers the same decades).
var fig12KGrid = []int{3, 5, 10, 20, 50, 100}

// Fig12 reproduces Figure 12 on the Yahoo-like and synthetic families.
func Fig12(sc Scale) []Fig12Row {
	sc = sc.defaults()
	fams := map[string][]Dataset{
		"Yahoo":     sc.YahooSuite(),
		"Synthetic": sc.SynthSuite(),
	}
	var rows []Fig12Row
	for _, fam := range []string{"Yahoo", "Synthetic"} {
		sets := fams[fam]
		n := float64(len(sets))
		// INN variant.
		var apU, apA, cpU, cpA float64
		for _, ds := range sets {
			unsup, al := runPair(ds.S, core.Options{})
			apU += apF(unsup, ds.S).F1
			apA += apF(al, ds.S).F1
			cpU += cpF(unsup, ds.S).F1
			cpA += cpF(al, ds.S).F1
		}
		rows = append(rows,
			Fig12Row{"CABD-INN", fam, "anomaly", apU / n, apA / n, 0},
			Fig12Row{"CABD-INN", fam, "change", cpU / n, cpA / n, 0})
		// KNN variant: best k by brute force on the unsupervised F.
		bestK, bestF := fig12KGrid[0], -1.0
		for _, k := range fig12KGrid {
			var f float64
			for _, ds := range sets {
				res := core.NewDetector(core.Options{Strategy: core.FixedKNN, KNNK: k}).Detect(ds.S)
				f += apF(res, ds.S).F1
			}
			if f > bestF {
				bestF, bestK = f, k
			}
		}
		var kApU, kApA, kCpU, kCpA float64
		for _, ds := range sets {
			unsup, al := runPair(ds.S, core.Options{Strategy: core.FixedKNN, KNNK: bestK})
			kApU += apF(unsup, ds.S).F1
			kApA += apF(al, ds.S).F1
			kCpU += cpF(unsup, ds.S).F1
			kCpA += cpF(al, ds.S).F1
		}
		rows = append(rows,
			Fig12Row{"CABD-KNN", fam, "anomaly", kApU / n, kApA / n, bestK},
			Fig12Row{"CABD-KNN", fam, "change", kCpU / n, kCpA / n, bestK})
	}
	return rows
}

// PrintFig12 renders the INN/KNN ablation.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fprintf(w, "Figure 12: INN vs KNN neighborhoods, with and without active learning\n")
	for _, r := range rows {
		k := ""
		if r.BestK > 0 {
			k = fprintfS(" (best k=%d)", r.BestK)
		}
		fprintf(w, "  %-10s %-9s %-8s w/o AL F=%s  w/ AL F=%s%s\n",
			r.Family, r.Variant, r.Task, pct(r.UnsupF), pct(r.ALF), k)
	}
}

// Fig13Row is one cell of Figure 13: anomaly detection quality with a
// single INN score enabled versus the full metric.
type Fig13Row struct {
	Scores string // "MAG", "COR", "VAR" or "ALL"
	Family string
	UnsupF float64
	ALF    float64
}

// Fig13 reproduces Figure 13 on the KPI-like and Yahoo-like families.
func Fig13(sc Scale) []Fig13Row {
	sc = sc.defaults()
	fams := map[string][]Dataset{
		"KPI":   sc.KPISuite(),
		"Yahoo": sc.YahooSuite(),
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"MAG", core.Options{DisableCorrelation: true, DisableVariance: true}},
		{"COR", core.Options{DisableMagnitude: true, DisableVariance: true}},
		{"VAR", core.Options{DisableMagnitude: true, DisableCorrelation: true}},
		{"ALL", core.Options{}},
	}
	var rows []Fig13Row
	for _, fam := range []string{"KPI", "Yahoo"} {
		sets := fams[fam]
		n := float64(len(sets))
		for _, v := range variants {
			var fu, fa float64
			for _, ds := range sets {
				unsup, al := runPair(ds.S, v.opts)
				fu += apF(unsup, ds.S).F1
				fa += apF(al, ds.S).F1
			}
			rows = append(rows, Fig13Row{v.name, fam, fu / n, fa / n})
		}
	}
	return rows
}

// PrintFig13 renders the score ablation.
func PrintFig13(w io.Writer, rows []Fig13Row) {
	fprintf(w, "Figure 13: influence of the Magnitude/Correlation/Variance scores\n")
	for _, r := range rows {
		fprintf(w, "  %-7s %-4s w/o AL F=%s  w/ AL F=%s\n",
			r.Family, r.Scores, pct(r.UnsupF), pct(r.ALF))
	}
}

// Fig3Cluster summarizes one GMM cluster of the candidate score space
// (Figure 3): its size and mean scores, plus the label the bootstrap
// rules would assign.
type Fig3Cluster struct {
	Cluster   int
	Size      int
	Magnitude float64
	Variance  float64
}

// Fig3 reproduces the Figure 3 clustering study on one synthetic dataset:
// GMM clusters over the candidate score vectors.
func Fig3(sc Scale) []Fig3Cluster {
	sc = sc.defaults()
	ds := sc.SynthSuite()[0]
	res := core.NewDetector(core.Options{}).Detect(ds.S)
	assign, means := core.ClusterScores(res.Candidates, core.Options{}, newRand(7))
	if assign == nil {
		return nil
	}
	out := make([]Fig3Cluster, len(means))
	for c := range means {
		out[c] = Fig3Cluster{Cluster: c, Magnitude: means[c][0], Variance: means[c][2]}
	}
	for _, a := range assign {
		out[a].Size++
	}
	return out
}

// PrintFig3 renders the cluster summary.
func PrintFig3(w io.Writer, clusters []Fig3Cluster) {
	fprintf(w, "Figure 3: GMM clustering of candidate scores (magnitude vs variance)\n")
	for _, c := range clusters {
		fprintf(w, "  cluster %d: size=%-4d mean MS=%.4f mean VS=%.3f\n",
			c.Cluster, c.Size, c.Magnitude, c.Variance)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
