package experiments

import (
	"testing"
	"time"

	"cabd/internal/obs"
)

// withFakeClock swaps the package time source for a stepping FakeClock
// and restores it when the test ends. Tests using it must not run in
// parallel with each other.
func withFakeClock(t *testing.T, step time.Duration) *obs.FakeClock {
	t.Helper()
	fc := obs.NewFakeClock(time.Time{})
	fc.SetStep(step)
	old := clk
	clk = fc
	t.Cleanup(func() { clk = old })
	return fc
}

// TestFig11FakeClockExact: every Fig. 11 measurement brackets its
// algorithm with exactly two Now calls, so under a stepping clock every
// reported runtime is exactly one step — proof the sweep has no hidden
// wall-clock reads.
func TestFig11FakeClockExact(t *testing.T) {
	step := 250 * time.Millisecond
	withFakeClock(t, step)
	pts := Fig11([]int{64})
	if len(pts) < 4 {
		t.Fatalf("Fig11 returned %d points, want the full algorithm roster", len(pts))
	}
	for _, p := range pts {
		if p.Seconds != step.Seconds() {
			t.Errorf("%s at n=%d: %v s, want exactly %v", p.Algorithm, p.N, p.Seconds, step.Seconds())
		}
	}
}

// TestINNEnginesFakeClockExact: each engine cell is one span over
// `probes` calls, so ns/op is exactly step/probes, and identical legacy
// and rank spans make every speedup exactly 1.
func TestINNEnginesFakeClockExact(t *testing.T) {
	withFakeClock(t, 64*time.Microsecond) // 64 probes at n=64 -> exactly 1000 ns/op
	rows := INNEngines([]int{64})
	if len(rows) != 6 {
		t.Fatalf("INNEngines returned %d rows, want 3 strategies x 2 engines", len(rows))
	}
	for _, r := range rows {
		if r.NsPerOp != 1000 {
			t.Errorf("%s/%s: %v ns/op, want exactly 1000", r.Strategy, r.Engine, r.NsPerOp)
		}
		if r.Engine == "rank" && r.Speedup != 1 {
			t.Errorf("%s/rank: speedup %v, want exactly 1 under equal fake spans", r.Strategy, r.Speedup)
		}
	}
}

// TestScaleSweepFakeClockExact: every scale measurement brackets one
// detection with exactly two Now calls per rep, so under a stepping
// clock each rep reads one step, the min-of-reps is one step, and every
// speedup is exactly 1. It also requires every cell's differential
// verdict to hold: the optimized pass must match the sequential oracle
// on this workload at every proc setting.
func TestScaleSweepFakeClockExact(t *testing.T) {
	step := 125 * time.Millisecond
	withFakeClock(t, step)
	pts := ScaleSweep([]int{400}, []int{1, 2}, []float64{3})
	if len(pts) != 2 {
		t.Fatalf("ScaleSweep returned %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.OracleSeconds != step.Seconds() || p.FastSeconds != step.Seconds() {
			t.Errorf("n=%d procs=%d: oracle %v fast %v, want exactly %v each",
				p.N, p.Procs, p.OracleSeconds, p.FastSeconds, step.Seconds())
		}
		if p.Speedup != 1 {
			t.Errorf("n=%d procs=%d: speedup %v, want exactly 1 under equal fake spans", p.N, p.Procs, p.Speedup)
		}
		if !p.Equal {
			t.Errorf("n=%d procs=%d: detections diverged from the sequential oracle", p.N, p.Procs)
		}
		if p.Cands <= 0 {
			t.Errorf("n=%d procs=%d: no candidates scored", p.N, p.Procs)
		}
		if p.Cores < 1 || p.Cores > p.Procs {
			t.Errorf("n=%d procs=%d: effective cores %d out of range", p.N, p.Procs, p.Cores)
		}
	}
}

// TestChaosFakeClockExact: each chaos cell times the guarded detection
// with one Now pair, so Elapsed is exactly one step for every row that
// reached detection.
func TestChaosFakeClockExact(t *testing.T) {
	step := 30 * time.Millisecond
	withFakeClock(t, step)
	rows := Chaos(tiny)
	if len(rows) == 0 {
		t.Fatal("Chaos returned no rows")
	}
	timed := 0
	for _, r := range rows {
		switch r.Elapsed {
		case step:
			timed++
		case 0: // sanitize rejected the faulted series before detection
		default:
			t.Errorf("%s/%s: elapsed %v, want exactly %v", r.Fault, r.Family, r.Elapsed, step)
		}
	}
	if timed == 0 {
		t.Fatal("no chaos row reached the timed detection path")
	}
}
