package experiments

import (
	"fmt"
	"io"

	"cabd/internal/core"
	"cabd/internal/eval"
	"cabd/internal/oracle"
	"cabd/internal/series"
	"cabd/internal/synth"
)

// Table1Row is one dataset row of Table I: detection quality with and
// without active learning plus the number of oracle queries.
type Table1Row struct {
	Dataset   string
	AnPct     float64 // % of anomalous points
	CPPct     float64 // % of change points
	UnsupAPF  float64 // anomaly F-score without AL
	UnsupCPF  float64 // change F-score without AL (NaN-free: 0 when no CPs)
	ALAPF     float64 // anomaly F-score with AL
	ALCPF     float64 // change F-score with AL
	Queries   float64 // average oracle queries
	HasChange bool    // dataset family carries change points
}

// Table1 reproduces Table I over the four dataset families.
func Table1(sc Scale) []Table1Row {
	sc = sc.defaults()
	families := [][]Dataset{sc.SynthSuite(), sc.YahooSuite(), sc.KPISuite(), sc.IoTSuite()}
	names := []string{"Synthetic", "Yahoo", "KPI", "IoT"}
	rows := make([]Table1Row, 0, 4)
	for fi, fam := range families {
		row := Table1Row{Dataset: names[fi]}
		for _, ds := range fam {
			unsup, al := runPair(ds.S, core.Options{})
			row.AnPct += 100 * labelFrac(ds.S, series.Label.IsAnomaly)
			row.CPPct += 100 * labelFrac(ds.S, func(l series.Label) bool { return l == series.ChangePoint })
			row.UnsupAPF += apF(unsup, ds.S).F1
			row.ALAPF += apF(al, ds.S).F1
			if len(ds.S.ChangePointIndices()) > 0 {
				row.HasChange = true
				row.UnsupCPF += cpF(unsup, ds.S).F1
				row.ALCPF += cpF(al, ds.S).F1
			}
			row.Queries += float64(al.Queries)
		}
		n := float64(len(fam))
		row.AnPct /= n
		row.CPPct /= n
		row.UnsupAPF /= n
		row.UnsupCPF /= n
		row.ALAPF /= n
		row.ALCPF /= n
		row.Queries /= n
		rows = append(rows, row)
	}
	return rows
}

// PrintTable1 renders Table I in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table I: CABD quality for Anomaly (AP) and Change Point (CP) prediction\n")
	fprintf(w, "%-10s %6s %6s | %8s %8s | %8s %8s | %8s\n",
		"Dataset", "%An", "%CP", "AP w/o", "CP w/o", "AP w/AL", "CP w/AL", "queries")
	for _, r := range rows {
		cpU, cpA := "-", "-"
		if r.HasChange {
			cpU = pct(r.UnsupCPF)
			cpA = pct(r.ALCPF)
		}
		fprintf(w, "%-10s %6.1f %6.1f | %8s %8s | %8s %8s | %8.1f\n",
			r.Dataset, r.AnPct, r.CPPct, pct(r.UnsupAPF), cpU,
			pct(r.ALAPF), cpA, r.Queries)
	}
}

func pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

// Fig5Point is one point of Figure 5: BNF versus abnormal density.
type Fig5Point struct {
	Dataset     string
	AbnormalPct float64
	BNF         float64
	Queries     int
	Total       int
}

// Fig5 reproduces Figure 5: the benefit function across the synthetic
// suite's density ramp.
func Fig5(sc Scale) []Fig5Point {
	sc = sc.defaults()
	var out []Fig5Point
	for _, ds := range sc.SynthSuite() {
		det := core.NewDetector(core.Options{})
		res := det.DetectActive(ds.S, oracle.New(ds.S))
		total := len(ds.S.AnomalyIndices()) + len(ds.S.ChangePointIndices())
		out = append(out, Fig5Point{
			Dataset:     ds.S.Name,
			AbnormalPct: 100 * labelFrac(ds.S, func(l series.Label) bool { return l != series.Normal }),
			BNF:         eval.BNF(res.Queries, total),
			Queries:     res.Queries,
			Total:       total,
		})
	}
	return out
}

// PrintFig5 renders the Figure 5 series.
func PrintFig5(w io.Writer, pts []Fig5Point) {
	fprintf(w, "Figure 5: BNF with increasing anomaly and change points\n")
	fprintf(w, "%-8s %10s %8s %8s %8s\n", "dataset", "abnormal%", "queries", "total", "BNF")
	for _, p := range pts {
		fprintf(w, "%-8s %10.1f %8d %8d %8.2f\n",
			p.Dataset, p.AbnormalPct, p.Queries, p.Total, p.BNF)
	}
}

// Fig6Point is one point of Figure 6: quality and query count as the
// required confidence γ varies, for several anomaly densities.
type Fig6Point struct {
	AnomalyPct float64
	Confidence float64
	APF        float64
	CPF        float64
	Queries    int
}

// Fig6 reproduces Figures 6(a)-(c).
func Fig6(sc Scale) []Fig6Point {
	sc = sc.defaults()
	var out []Fig6Point
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.20} {
		s := synth.Generate(synth.Config{
			N: sc.SynthN, Seed: 500 + int64(frac*1000),
			SingleFrac:     frac * 0.25,
			CollectiveFrac: frac * 0.45,
			ChangeFrac:     frac * 0.30,
			TrendSlope:     8.0 / float64(sc.SynthN),
		})
		for _, gamma := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
			det := core.NewDetector(core.Options{Confidence: gamma})
			res := det.DetectActive(s, oracle.New(s))
			out = append(out, Fig6Point{
				AnomalyPct: 100 * frac,
				Confidence: gamma,
				APF:        apF(res, s).F1,
				CPF:        cpF(res, s).F1,
				Queries:    res.Queries,
			})
		}
	}
	return out
}

// PrintFig6 renders the Figure 6 series.
func PrintFig6(w io.Writer, pts []Fig6Point) {
	fprintf(w, "Figure 6: detection quality and #queries vs desired confidence\n")
	fprintf(w, "%10s %6s | %8s %8s %8s\n", "abnormal%", "conf", "AP F", "CP F", "queries")
	for _, p := range pts {
		fprintf(w, "%10.0f %6.2f | %8s %8s %8d\n",
			p.AnomalyPct, p.Confidence, pct(p.APF), pct(p.CPF), p.Queries)
	}
}

// Table2Trace is the active-learning accuracy/confidence trace of one
// dataset (Table II).
type Table2Trace struct {
	Dataset string
	Rounds  []Table2Round
}

// Table2Round is one user-interaction round.
type Table2Round struct {
	Round      int
	Accuracy   float64
	Confidence float64
}

// Table2 reproduces Table II: per-round accuracy (Jaccard of predictions
// vs ground truth) and model confidence for five datasets.
func Table2(sc Scale) []Table2Trace {
	sc = sc.defaults()
	sets := []Dataset{}
	ys := sc.YahooSuite()
	if len(ys) > 3 {
		ys = ys[:3]
	}
	sets = append(sets, ys...)
	io2 := sc.IoTSuite()
	sets = append(sets, io2...)
	var out []Table2Trace
	for _, ds := range sets {
		det := core.NewDetector(core.Options{})
		res := det.DetectActive(ds.S, oracle.New(ds.S))
		truth := append(append([]int{}, ds.S.AnomalyIndices()...), ds.S.ChangePointIndices()...)
		tr := Table2Trace{Dataset: ds.S.Name}
		for _, snap := range res.Rounds {
			pred := append(append([]int{}, snap.Anomalies...), snap.ChangePoints...)
			tr.Rounds = append(tr.Rounds, Table2Round{
				Round:      snap.Round,
				Accuracy:   eval.Accuracy(pred, truth, MatchTol),
				Confidence: snap.MinConfidence,
			})
		}
		out = append(out, tr)
	}
	return out
}

// PrintTable2 renders the Table II traces.
func PrintTable2(w io.Writer, traces []Table2Trace) {
	fprintf(w, "Table II: accuracy | confidence per active-learning round\n")
	for _, tr := range traces {
		fprintf(w, "%s:\n", tr.Dataset)
		for _, r := range tr.Rounds {
			fprintf(w, "  round %2d: acc=%.2f conf=%.2f\n", r.Round, r.Accuracy, r.Confidence)
		}
	}
}
