package experiments

import (
	"io"
	"math/rand"

	"cabd/internal/core"
	"cabd/internal/oracle"
	"cabd/internal/repair"
	"cabd/internal/stats"
)

// Fig14Row is one dataset row of Figure 14: repair RMS error for IMR with
// CABD-guided labeling versus IMR with random label placement (same
// budget), plus the dirty RMS before any repair.
type Fig14Row struct {
	Dataset   string
	RMSBefore float64
	RMSCABD   float64 // IMR guided by CABD detections + AL labels
	RMSRandom float64 // IMR with the same label budget placed at random
	Labels    int     // label budget (CABD's AL queries)
}

// Fig14 reproduces Figure 14 over the synthetic suite: the detected
// anomalies become IMR's dirty set and the actively-queried points its
// trusted labels; the control run spends the same budget on uniformly
// random labels with no dirty-set knowledge (every unlabeled point is a
// repair candidate), the paper's "original IMR based on random value
// selections".
func Fig14(sc Scale) []Fig14Row {
	sc = sc.defaults()
	var rows []Fig14Row
	for di, ds := range sc.SynthSuite() {
		s := ds.S
		det := core.NewDetector(core.Options{})
		o := oracle.New(s)
		res := det.DetectActive(s, o)

		// CABD-guided: labels = the AL-queried points' true values;
		// dirty = detected anomalies (change points are events, not
		// errors — they are preserved, the paper's core requirement).
		known := map[int]float64{}
		for _, qi := range o.QueriedIndices() {
			known[qi] = s.Truth[qi]
		}
		guided := repair.IMR(s.Values, known, res.AnomalyIndices(), repair.IMRConfig{})

		// Random control with the same budget.
		rng := rand.New(rand.NewSource(int64(900 + di)))
		randomKnown := map[int]float64{}
		for len(randomKnown) < len(known) {
			i := rng.Intn(s.Len())
			randomKnown[i] = s.Truth[i]
		}
		allIdx := make([]int, s.Len())
		for i := range allIdx {
			allIdx[i] = i
		}
		random := repair.IMR(s.Values, randomKnown, allIdx, repair.IMRConfig{})

		rows = append(rows, Fig14Row{
			Dataset:   s.Name,
			RMSBefore: stats.RMS(s.Values, s.Truth),
			RMSCABD:   stats.RMS(guided, s.Truth),
			RMSRandom: stats.RMS(random, s.Truth),
			Labels:    len(known),
		})
	}
	return rows
}

// PrintFig14 renders the repair comparison.
func PrintFig14(w io.Writer, rows []Fig14Row) {
	fprintf(w, "Figure 14: RMS repair error, IMR with vs without CABD labeling\n")
	fprintf(w, "%-8s %10s %12s %12s %8s\n", "dataset", "dirty RMS", "IMR+CABD", "IMR random", "labels")
	for _, r := range rows {
		fprintf(w, "%-8s %10.3f %12.3f %12.3f %8d\n",
			r.Dataset, r.RMSBefore, r.RMSCABD, r.RMSRandom, r.Labels)
	}
}
