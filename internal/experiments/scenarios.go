package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"cabd/internal/changepoint"
	"cabd/internal/core"
	"cabd/internal/eval"
	"cabd/internal/multi"
	"cabd/internal/sanitize"
	"cabd/internal/scenario"
	"cabd/internal/series"
	"cabd/internal/synth"
)

// ScenarioTol is the onset-matching tolerance of the taxonomy
// benchmark: a detection within +-5 points of a fault onset counts.
// Wider than MatchTol because several fault families (drift, seasonal
// swing) corrupt gradually, so the first detectable point sits a few
// steps past the labeled onset.
const ScenarioTol = 5

// ScenarioScore is one algorithm's quality on one taxonomy cell.
type ScenarioScore struct {
	Algorithm  string  `json:"algorithm"`
	Precision  float64 `json:"precision"`
	Recall     float64 `json:"recall"`
	F1         float64 `json:"f1"`
	TP         int     `json:"tp"`
	FP         int     `json:"fp"`
	FN         int     `json:"fn"`
	Detections int     `json:"detections"`
}

// ScenarioCellResult is one cell of the fault-taxonomy grid with every
// algorithm scored against the cell's fault-onset ground truth.
type ScenarioCellResult struct {
	Cell     string `json:"cell"`
	Kind     string `json:"kind"`
	Family   string `json:"family"`
	Channels int    `json:"channels"`
	Severity string `json:"severity"`
	N        int    `json:"n"`
	Truth    int    `json:"truth"`
	// OracleEqual reports whether the parallel multivariate CABD run was
	// bit-identical (indices, subtypes, confidences) to the sequential
	// row-major oracle on this cell.
	OracleEqual bool            `json:"oracle_equal"`
	Scores      []ScenarioScore `json:"scores"`
}

// ScenarioBenchResult is the full taxonomy-grid benchmark: per-cell
// scores plus a per-algorithm summary averaged over the grid.
type ScenarioBenchResult struct {
	Tol               int                  `json:"tol"`
	Cells             []ScenarioCellResult `json:"cells"`
	Summary           []ScenarioScore      `json:"summary"`
	OracleDivergences []string             `json:"oracle_divergences,omitempty"`
}

// ScenarioConfig parameterizes the taxonomy benchmark. The zero value
// takes the standard grid via defaults().
type ScenarioConfig struct {
	Grid scenario.Grid
	Tol  int
}

func (c ScenarioConfig) defaults() ScenarioConfig {
	if len(c.Grid.Families) == 0 {
		// Two families by default: the flat carrier (the easy reference)
		// and the seasonal carrier (the paper's event-bearing shape).
		// -full widens to every family.
		c.Grid.Families = []synth.Family{synth.FamilyFlat, synth.FamilySeasonal}
	}
	if c.Grid.N <= 0 {
		c.Grid.N = 800
	}
	if c.Tol <= 0 {
		c.Tol = ScenarioTol
	}
	return c
}

// ScenarioSmokeConfig is the CI smoke configuration: every fault kind
// and both channel counts (the acceptance axes), one family, one
// severity, short series. Runs in seconds.
func ScenarioSmokeConfig() ScenarioConfig {
	return ScenarioConfig{Grid: scenario.Grid{
		Families:   []synth.Family{synth.FamilyFlat},
		Severities: []scenario.Severity{scenario.Mild},
		N:          500,
	}}
}

// ScenarioFullConfig is the paper-scale configuration: every family,
// both severities, long series.
func ScenarioFullConfig() ScenarioConfig {
	return ScenarioConfig{Grid: scenario.Grid{
		Families: synth.Families(),
		N:        1200,
	}}
}

// ScenarioBench drives CABD (the joint multivariate detector) and every
// baseline across the fault-taxonomy grid. Univariate baselines handle
// d-channel cells per channel with detections unioned — the classic
// adaptation the joint detector competes against. The supervised
// baselines receive the cell's true contamination; PELT receives its
// brute-forced best penalty (the Fig9 protocol). Every cell also replays
// CABD against the sequential row-major oracle and records divergence.
func ScenarioBench(cfg ScenarioConfig) ScenarioBenchResult {
	cfg = cfg.defaults()
	scens := cfg.Grid.Generate()
	res := ScenarioBenchResult{Tol: cfg.Tol}
	sums := map[string]*ScenarioScore{}
	var order []string
	record := func(cell *ScenarioCellResult, name string, got []int, truth []int) {
		m := eval.Match(got, truth, cfg.Tol)
		cell.Scores = append(cell.Scores, ScenarioScore{
			Algorithm: name,
			Precision: m.Precision, Recall: m.Recall, F1: m.F1,
			TP: m.TP, FP: m.FP, FN: m.FN,
			Detections: len(got),
		})
		if _, ok := sums[name]; !ok {
			sums[name] = &ScenarioScore{Algorithm: name}
			order = append(order, name)
		}
		s := sums[name]
		s.Precision += m.Precision
		s.Recall += m.Recall
		s.F1 += m.F1
		s.TP += m.TP
		s.FP += m.FP
		s.FN += m.FN
		s.Detections += len(got)
	}
	for _, sc := range scens {
		cell := ScenarioCellResult{
			Cell:     sc.Cell.Name(),
			Kind:     string(sc.Cell.Kind),
			Family:   string(sc.Cell.Family),
			Channels: sc.Cell.Channels,
			Severity: sc.Cell.Severity.Name,
			N:        len(sc.Dims[0]),
			Truth:    len(sc.Truth),
		}
		// The same sanitize pass the cabd facade runs: bad values (NaN
		// runs, hostile floats) repaired by interpolation across whole
		// time steps, with the report kept. The default policy preserves
		// length, so detection indices stay in scenario coordinates.
		repaired, _, srep, serr := sanitize.Multi(sc.Dims, sanitize.Config{})
		if serr != nil {
			repaired, srep = sc.Dims, nil
		}
		ms := multi.NewSeries(sc.Name, repaired)
		par := multi.NewDetector(core.Options{}).Detect(ms)
		seq := multi.NewDetector(core.Options{SeqOracle: true}).Detect(ms)
		cell.OracleEqual = sameDetections(par, seq)
		if !cell.OracleEqual {
			res.OracleDivergences = append(res.OracleDivergences, cell.Cell)
		}
		// CABD's answer is the whole pipeline's: detector verdicts plus
		// what the sanitize stage intercepted — for the pipeline,
		// repairing a corrupted stretch IS detecting it. Contiguous
		// repairs collapse to onsets like the truth does.
		cabdGot := unionInts(par.AnomalyIndices(), par.ChangePointIndices())
		if srep != nil {
			cabdGot = unionInts(cabdGot, scenario.Onsets(srep.Repaired))
			cabdGot = unionInts(cabdGot, scenario.Onsets(srep.Dropped))
		}
		record(&cell, "CABD", cabdGot, sc.Truth)
		cont := float64(len(sc.Truth)) / float64(len(sc.Dims[0]))
		if cont < 0.01 {
			cont = 0.01
		}
		dets := append(unsupervisedDetectors(), supervisedDetectors(cont)...)
		for _, det := range dets {
			var got []int
			for k, vals := range repaired {
				got = unionInts(got, det.Detect(series.New(fmt.Sprintf("%s/c%d", sc.Name, k), vals)))
			}
			record(&cell, det.Name(), got, sc.Truth)
		}
		record(&cell, "PELT", peltUnion(repaired, sc.Truth, cfg.Tol), sc.Truth)
		res.Cells = append(res.Cells, cell)
	}
	n := float64(len(scens))
	for _, name := range order {
		s := sums[name]
		if n > 0 {
			s.Precision /= n
			s.Recall /= n
			s.F1 /= n
		}
		res.Summary = append(res.Summary, *s)
	}
	return res
}

// peltUnion runs PELT per channel at its brute-forced best penalty
// (the Fig9 protocol: the baseline gets the parameter CABD never sees)
// and unions the change points across channels.
func peltUnion(dims [][]float64, truth []int, tol int) []int {
	var got []int
	for _, vals := range dims {
		vals := vals
		_, cps, _ := changepoint.BestPenalty(
			func(p float64) []int { return changepoint.PELT(vals, p) },
			func(cps []int) float64 { return eval.Match(cps, truth, tol).F1 },
			1, 100, 3)
		got = unionInts(got, cps)
	}
	return got
}

// sameDetections reports whether two detection results are
// bit-identical: same strategy, same anomalies and change points down to
// the exact confidence bits.
func sameDetections(a, b *core.Result) bool {
	if a.Strategy != b.Strategy || len(a.Anomalies) != len(b.Anomalies) ||
		len(a.ChangePoints) != len(b.ChangePoints) {
		return false
	}
	for i := range a.Anomalies {
		x, y := a.Anomalies[i], b.Anomalies[i]
		if x.Index != y.Index || x.Subtype != y.Subtype ||
			fmt.Sprintf("%b", x.Confidence) != fmt.Sprintf("%b", y.Confidence) {
			return false
		}
	}
	for i := range a.ChangePoints {
		x, y := a.ChangePoints[i], b.ChangePoints[i]
		if x.Index != y.Index || x.Subtype != y.Subtype ||
			fmt.Sprintf("%b", x.Confidence) != fmt.Sprintf("%b", y.Confidence) {
			return false
		}
	}
	return true
}

// unionInts merges two sorted-or-not index slices into one sorted,
// deduplicated slice.
func unionInts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i > 0 && v == out[j-1] {
			continue
		}
		out[j] = v
		j++
	}
	return out[:j]
}

// PrintScenarios renders the taxonomy benchmark: the per-algorithm
// summary, the per-cell CABD line, and any oracle divergence.
func PrintScenarios(w io.Writer, res ScenarioBenchResult) {
	fprintf(w, "Scenarios: fault-taxonomy grid (tol=%d, %d cells)\n", res.Tol, len(res.Cells))
	fprintf(w, "  %-12s %7s %7s %7s %6s\n", "algorithm", "P", "R", "F", "dets")
	for _, s := range res.Summary {
		fprintf(w, "  %-12s %7s %7s %7s %6d\n", s.Algorithm, pct(s.Precision), pct(s.Recall), pct(s.F1), s.Detections)
	}
	fprintf(w, "  per-cell CABD:\n")
	for _, c := range res.Cells {
		var cabd ScenarioScore
		for _, s := range c.Scores {
			if s.Algorithm == "CABD" {
				cabd = s
				break
			}
		}
		oracle := "ok"
		if !c.OracleEqual {
			oracle = "DIVERGED"
		}
		fprintf(w, "    %-32s truth=%-3d F=%s dets=%-3d oracle=%s\n",
			c.Cell, c.Truth, pct(cabd.F1), cabd.Detections, oracle)
	}
	if len(res.OracleDivergences) > 0 {
		fprintf(w, "  ORACLE DIVERGENCES: %v\n", res.OracleDivergences)
	}
}

// WriteScenariosJSON writes the benchmark to path as indented JSON.
func WriteScenariosJSON(path string, res ScenarioBenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
