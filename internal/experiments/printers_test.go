package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrintCompareOrdering(t *testing.T) {
	rows := []CompareRow{
		{"B", "Yahoo", 0.3},
		{"A", "Yahoo", 0.9},
		{"C", "IoT", 0.5},
	}
	var buf bytes.Buffer
	PrintCompare(&buf, "title", rows)
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	// Within a family, rows print best-first.
	ai := strings.Index(out, "A ")
	bi := strings.Index(out, "B ")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("rows not sorted by F: %q", out)
	}
}

func TestPrintFig9AndFig10(t *testing.T) {
	var buf bytes.Buffer
	PrintFig9(&buf, []Fig9Row{
		{"CABD w/ AL", "IoT", 1.0, 0},
		{"PELT", "IoT", 0.2, 98},
	})
	if !strings.Contains(buf.String(), "best pen 98") {
		t.Errorf("missing penalty annotation: %q", buf.String())
	}
	buf.Reset()
	PrintFig10(&buf, []Fig10Row{{"HBOS+PELT", "Synthetic", 0.42}})
	if !strings.Contains(buf.String(), "42.0") {
		t.Errorf("missing F value: %q", buf.String())
	}
}

func TestPrintFig11(t *testing.T) {
	var buf bytes.Buffer
	PrintFig11(&buf, []Fig11Point{{"CABD (optimized)", 2000, 0.123}})
	if !strings.Contains(buf.String(), "0.123") {
		t.Errorf("missing runtime: %q", buf.String())
	}
}

func TestPrintFig12AndFig13(t *testing.T) {
	var buf bytes.Buffer
	PrintFig12(&buf, []Fig12Row{
		{"CABD-KNN", "Yahoo", "anomaly", 0.3, 0.5, 7},
	})
	if !strings.Contains(buf.String(), "best k=7") {
		t.Errorf("missing k annotation: %q", buf.String())
	}
	buf.Reset()
	PrintFig13(&buf, []Fig13Row{{"VAR", "KPI", 0.8, 0.9}})
	if !strings.Contains(buf.String(), "VAR") {
		t.Errorf("missing variant: %q", buf.String())
	}
}

func TestPrintFig14AndFig1(t *testing.T) {
	var buf bytes.Buffer
	PrintFig14(&buf, []Fig14Row{{"ds-1", 2.0, 0.5, 1.9, 40}})
	if !strings.Contains(buf.String(), "ds-1") {
		t.Errorf("missing dataset: %q", buf.String())
	}
	buf.Reset()
	PrintFig1(&buf, []Fig1Row{
		{"CABD", 1, 1, true},
		{"KNN-CAD", 0.2, 0, false},
	})
	out := buf.String()
	if !strings.Contains(out, "events preserved") ||
		!strings.Contains(out, "confuses events with errors") {
		t.Errorf("missing preservation verdicts: %q", out)
	}
}

func TestPrintTable2Format(t *testing.T) {
	var buf bytes.Buffer
	PrintTable2(&buf, []Table2Trace{{
		Dataset: "x",
		Rounds:  []Table2Round{{Round: 0, Accuracy: 0.5, Confidence: 0.4}},
	}})
	if !strings.Contains(buf.String(), "acc=0.50 conf=0.40") {
		t.Errorf("trace format: %q", buf.String())
	}
}

func TestPrintFig6Format(t *testing.T) {
	var buf bytes.Buffer
	PrintFig6(&buf, []Fig6Point{{AnomalyPct: 5, Confidence: 0.8, APF: 0.9, CPF: 0.7, Queries: 12}})
	if !strings.Contains(buf.String(), "12") {
		t.Errorf("fig6 format: %q", buf.String())
	}
}
