package experiments

import (
	"io"
	"math"
	"math/rand"
	"sort"

	"cabd/internal/core"
	"cabd/internal/eval"
	"cabd/internal/multi"
	"cabd/internal/series"
)

// MultiRow is one cell of the multivariate-extension study (the paper's
// future-work direction, DESIGN.md §4): joint-space detection versus
// running the univariate detector per dimension and unioning. Both reach
// comparable F on these generators; the extension's measurable win is
// label efficiency — one active-learning loop instead of d of them.
type MultiRow struct {
	Variant string // "joint" or "per-dimension"
	Dims    int
	APF     float64
	Queries int // oracle labels consumed (AL runs)
}

// multiDataset builds a d-dimensional correlated series with shared-load
// faults, one single-dimension glitch per dimension, and ground truth.
func multiDataset(seed int64, n, d int) *multi.Series {
	rng := rand.New(rand.NewSource(seed))
	base := make([]float64, n)
	ar := 0.0
	for i := range base {
		ar = 0.75*ar + rng.NormFloat64()*0.1
		base[i] = 2*math.Sin(2*math.Pi*float64(i)/180) + ar
	}
	dims := make([][]float64, d)
	for k := range dims {
		dim := make([]float64, n)
		for i := range dim {
			dim[i] = base[i]*(0.5+0.5*float64(k)) + rng.NormFloat64()*0.08
		}
		dims[k] = dim
	}
	s := multi.NewSeries("multi-exp", dims)
	s.Labels = make([]series.Label, n)
	// Cross-dimension faults: weaker per dimension than a univariate
	// detector needs, strong in the joint space.
	for _, p := range []int{n / 6, n / 2, 5 * n / 6} {
		for k := range dims {
			dims[k][p] += 6
		}
		s.Labels[p] = series.SingleAnomaly
	}
	// One strong single-dimension glitch per dimension.
	for k := range dims {
		p := n/4 + k*n/(4*d)
		dims[k][p] += 15
		s.Labels[p] = series.SingleAnomaly
	}
	return s
}

// MultiExtension compares joint multivariate detection against the
// per-dimension union at d = 2, 3, 5.
func MultiExtension(sc Scale) []MultiRow {
	sc = sc.defaults()
	n := sc.SynthN
	var rows []MultiRow
	for _, d := range []int{2, 3, 5} {
		s := multiDataset(int64(700+d), n, d)
		truth := s.AnomalyIndices()

		joint := multi.NewDetector(core.Options{}).DetectActive(s, multiLabeler{s})
		rows = append(rows, MultiRow{"joint", d,
			eval.Match(joint.AnomalyIndices(), truth, MatchTol).F1, joint.Queries})

		// Per-dimension union: d independent detectors, each running its
		// own active-learning loop against the same oracle.
		set := map[int]bool{}
		queries := 0
		for k := 0; k < d; k++ {
			us := series.New("dim", s.Dims[k])
			us.Labels = s.Labels
			uni := core.NewDetector(core.Options{}).DetectActive(us, uniLabeler{s})
			queries += uni.Queries
			for _, i := range uni.AnomalyIndices() {
				set[i] = true
			}
		}
		var union []int
		for i := range set {
			union = append(union, i)
		}
		sort.Ints(union)
		rows = append(rows, MultiRow{"per-dimension", d,
			eval.Match(union, truth, MatchTol).F1, queries})
	}
	return rows
}

type multiLabeler struct{ s *multi.Series }

func (m multiLabeler) Label(i int) series.Label { return m.s.LabelAt(i) }

type uniLabeler struct{ s *multi.Series }

func (u uniLabeler) Label(i int) series.Label { return u.s.LabelAt(i) }

// PrintMultiExtension renders the comparison.
func PrintMultiExtension(w io.Writer, rows []MultiRow) {
	fprintf(w, "Multivariate extension: joint-space INN vs per-dimension union (with AL)\n")
	for _, r := range rows {
		fprintf(w, "  d=%d %-14s F=%s labels=%d\n", r.Dims, r.Variant, pct(r.APF), r.Queries)
	}
}
