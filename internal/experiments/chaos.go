package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"cabd/internal/core"
	"cabd/internal/faultgen"
	"cabd/internal/sanitize"
	"cabd/internal/series"
)

// ChaosRow is one (fault family, dataset family) cell of the robustness
// sweep: how the hardened pipeline behaved on input corrupted by that
// fault family.
type ChaosRow struct {
	Fault    string
	Family   string
	Bad      int           // bad values sanitization intercepted
	Repaired int           // points synthesized by interpolation
	Anoms    int           // anomalies detected after repair
	CleanRef int           // anomalies detected on the clean original
	Degraded bool          // FixedKNN downgrade triggered
	Panicked bool          // pipeline panic (must stay false)
	Elapsed  time.Duration // detection wall time
}

// Chaos runs the fault-injection robustness sweep: every fault family is
// injected into one series per dataset family, the result sanitized
// under the default (interpolate) policy, and the detection pipeline run
// with panic isolation. It is the cmd-level face of the
// internal/faultgen test harness.
func Chaos(sc Scale) []ChaosRow {
	suites := [][]Dataset{sc.SynthSuite()[:1], sc.YahooSuite()[:1], sc.IoTSuite()[:1]}
	det := core.NewDetector(core.Options{})
	var rows []ChaosRow
	for _, suite := range suites {
		ds := suite[0]
		cleanRef := len(det.Detect(ds.S).Anomalies)
		for _, kind := range faultgen.Kinds() {
			rng := rand.New(rand.NewSource(int64(len(rows) + 1)))
			dirty, _ := faultgen.Inject(rng, ds.S.Values, kind)
			row := ChaosRow{Fault: string(kind), Family: ds.Family, CleanRef: cleanRef}
			clean, _, rep, err := sanitize.Series(dirty, sanitize.Config{})
			if err != nil {
				rows = append(rows, row)
				continue
			}
			row.Bad = rep.Bad()
			row.Repaired = len(rep.Repaired)
			t0 := clk.Now()
			func() {
				defer func() {
					//cabd:lint-ignore recoverwrap the chaos harness only records that a panic escaped; the pipeline's own *PanicError isolation is the thing under test
					if p := recover(); p != nil {
						row.Panicked = true
					}
				}()
				res, derr := det.DetectCtx(context.Background(), series.New("chaos", clean))
				if derr == nil {
					row.Anoms = len(res.Anomalies)
					row.Degraded = res.Degraded
				}
			}()
			row.Elapsed = clk.Now().Sub(t0)
			rows = append(rows, row)
		}
	}
	return rows
}

// PrintChaos renders the robustness sweep.
func PrintChaos(w io.Writer, rows []ChaosRow) {
	fmt.Fprintln(w, "Chaos: fault-injection robustness (sanitize=interpolate)")
	fmt.Fprintf(w, "%-10s %-10s %6s %9s %7s %7s %9s %9s %10s\n",
		"family", "fault", "bad", "repaired", "anoms", "clean", "degraded", "panicked", "elapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %6d %9d %7d %7d %9v %9v %10s\n",
			r.Family, r.Fault, r.Bad, r.Repaired, r.Anoms, r.CleanRef,
			r.Degraded, r.Panicked, r.Elapsed.Round(time.Millisecond))
	}
}
