package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cabd/internal/faultgen"
	"cabd/internal/obs"
)

// goldenSnapshot builds a fully deterministic RuntimeSnapshot: the obs
// part comes from direct Observe/Add calls (no clock), so the serialized
// bytes are stable across machines and runs.
func goldenSnapshot() RuntimeSnapshot {
	rec := obs.New()
	rec.Add(obs.CounterCandidates, 12)
	rec.Add(obs.CounterOracleQueries, 4)
	rec.Degraded("candidate count 5000 exceeds bound 4096")
	rec.SetGauge(obs.GaugeStreamWindow, 256)
	rec.Observe(obs.StageINNScore, 5*time.Millisecond)
	rec.Observe(obs.StageINNScore, 20*time.Millisecond)
	rec.Observe(obs.StageSanitize, 3*time.Microsecond)
	snap := rec.Snapshot()
	return RuntimeSnapshot{
		Fig11:  []Fig11Point{{Algorithm: "CABD (optimized)", N: 2000, Seconds: 0.125}},
		INN:    []INNEngineRow{{Strategy: "Binary", Engine: "rank", N: 2000, NsPerOp: 1500, Speedup: 8.5}},
		Stages: []StageRow{{N: 2000, Stage: "inn_score", Seconds: 0.025, Frac: 0.5}},
		Scale: []ScalePoint{{N: 2000, Procs: 8, Cores: 8, CandZ: 3, Cands: 160,
			OracleSeconds: 0.2, FastSeconds: 0.025, Speedup: 8, Equal: true}},
		Obs: &snap,
	}
}

// TestRuntimeSnapshotGolden pins the exact on-disk shape of
// BENCH_runtime.json — counters, degrade-reason labels, cumulative
// histogram buckets — against a checked-in golden file, then round-trips
// the bytes back through json.Unmarshal and requires structural equality.
func TestRuntimeSnapshotGolden(t *testing.T) {
	snap := goldenSnapshot()
	path := filepath.Join(t.TempDir(), "runtime.json")
	if err := WriteRuntimeJSON(path, snap); err != nil {
		t.Fatalf("WriteRuntimeJSON: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "runtime_snapshot.golden.json")
	if os.Getenv("CABD_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with CABD_UPDATE_GOLDEN=1 go test -run TestRuntimeSnapshotGolden): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("snapshot JSON drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}

	var back RuntimeSnapshot
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, snap) {
		t.Errorf("round trip lost data:\ngot  %+v\nwant %+v", back, snap)
	}
	if back.Empty() {
		t.Error("round-tripped snapshot reads as empty")
	}
	if (RuntimeSnapshot{}).Empty() != true {
		t.Error("zero snapshot must be Empty")
	}
}

// TestStageProfileShape runs the instrumented sweep at a small size and
// checks the rows are internally consistent: known stage names, fractions
// in [0,1] summing to ~1 per size, and a recorder snapshot whose counters
// agree with the sweep.
func TestStageProfileShape(t *testing.T) {
	rows, snap := StageProfile([]int{800})
	if len(rows) == 0 {
		t.Fatal("no stage rows")
	}
	valid := map[string]bool{}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		valid[s.String()] = true
	}
	fracSum := 0.0
	seen := map[string]bool{}
	for _, r := range rows {
		if r.N != 800 {
			t.Errorf("unexpected size %d", r.N)
		}
		if !valid[r.Stage] {
			t.Errorf("unknown stage %q", r.Stage)
		}
		if r.Seconds < 0 || r.Frac < 0 || r.Frac > 1 {
			t.Errorf("out-of-range row %+v", r)
		}
		fracSum += r.Frac
		seen[r.Stage] = true
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Errorf("stage fractions sum to %v, want 1", fracSum)
	}
	if !seen["inn_score"] || !seen["classify"] {
		t.Errorf("core stages missing from profile: %v", seen)
	}
	if snap == nil {
		t.Fatal("nil recorder snapshot")
	}
	if snap.Counters["candidates_total"] <= 0 {
		t.Errorf("sweep recorded no candidates: %v", snap.Counters)
	}
	hasINN := false
	for _, st := range snap.Stages {
		if st.Stage == "inn_score" && st.Count > 0 {
			hasINN = true
		}
	}
	if !hasINN {
		t.Error("recorder snapshot missing inn_score histogram")
	}
}

// TestChaosSweepContainsFaults verifies the fault-injection sweep covers
// every (family, fault) cell, never lets a panic escape, and actually
// intercepts bad values for the NaN/Inf fault families.
func TestChaosSweepContainsFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is seconds-long")
	}
	rows := Chaos(tiny)
	wantRows := 3 * len(faultgen.Kinds())
	if len(rows) != wantRows {
		t.Fatalf("chaos rows = %d, want %d", len(rows), wantRows)
	}
	families := map[string]bool{}
	anyBad := false
	for _, r := range rows {
		families[r.Family] = true
		if r.Panicked {
			t.Errorf("%s/%s: pipeline panicked", r.Family, r.Fault)
		}
		if r.Bad > 0 {
			anyBad = true
		}
		if r.Elapsed < 0 {
			t.Errorf("%s/%s: negative elapsed", r.Family, r.Fault)
		}
	}
	if len(families) != 3 {
		t.Errorf("families covered = %v, want 3", families)
	}
	if !anyBad {
		t.Error("no fault family produced intercepted bad values")
	}
}

// TestMultiDatasetGroundTruth pins the synthetic multivariate generator:
// equal-length dimensions, exactly 3 cross-dimension faults plus one
// single-dimension glitch per dimension, and labels that sit on actual
// injected deviations.
func TestMultiDatasetGroundTruth(t *testing.T) {
	n, d := 600, 3
	s := multiDataset(42, n, d)
	if s.D() != d || s.Len() != n {
		t.Fatalf("shape = %dx%d, want %dx%d", s.D(), s.Len(), d, n)
	}
	for k, dim := range s.Dims {
		if len(dim) != n {
			t.Errorf("dim %d length %d", k, len(dim))
		}
	}
	anoms := s.AnomalyIndices()
	if len(anoms) != 3+d {
		t.Fatalf("labeled anomalies = %d, want %d", len(anoms), 3+d)
	}
	// Cross-dimension faults bump every dimension at n/6, n/2, 5n/6.
	for _, p := range []int{n / 6, n / 2, 5 * n / 6} {
		if s.LabelAt(p) == 0 {
			t.Errorf("shared fault at %d unlabeled", p)
		}
	}
	// Labeled points must deviate visibly in at least one dimension
	// relative to their neighbors.
	for _, p := range anoms {
		if p == 0 || p == n-1 {
			continue
		}
		dev := 0.0
		for _, dim := range s.Dims {
			local := math.Abs(dim[p] - (dim[p-1]+dim[p+1])/2)
			if local > dev {
				dev = local
			}
		}
		if dev < 1 {
			t.Errorf("labeled point %d shows no injected deviation (max %v)", p, dev)
		}
	}
}
