// Package faultgen injects the failure modes real deployments feed a
// detector — missing values, stuck sensors, corrupted floats, dropped
// samples — into clean series. It is the chaos half of the robustness
// harness: internal/synth builds a series with known ground truth,
// faultgen corrupts it, and the fault-injection tests assert that every
// entry point survives with bounded quality deviation. All injectors are
// driven by a caller-supplied RNG, so runs are reproducible, and they
// never modify their input.
package faultgen

import (
	"math"
	"math/rand"
)

// Kind names one fault family, for reports and CLI selection.
type Kind string

// Fault families.
const (
	// KindNaNRun replaces runs of points with NaN (transmission loss).
	KindNaNRun Kind = "nan"
	// KindFlatline holds the sensor at a constant value (stuck sensor).
	KindFlatline Kind = "flatline"
	// KindExtreme corrupts single points with ±Inf, NaN and huge finite
	// magnitudes (bit corruption, unit blowups).
	KindExtreme Kind = "extreme"
	// KindDropout removes whole chunks of samples, shortening the series
	// (gaps in an equally spaced feed).
	KindDropout Kind = "dropout"
)

// Kinds lists every fault family.
func Kinds() []Kind { return []Kind{KindNaNRun, KindFlatline, KindExtreme, KindDropout} }

// Report says what one injector did.
type Report struct {
	Kind Kind
	// Indices are the corrupted positions in the returned slice (for
	// KindDropout: the positions, in the original slice, of the removed
	// samples).
	Indices []int
}

// NaNRuns returns a copy of values with `runs` runs of NaN of length
// 1..maxLen at random positions.
func NaNRuns(rng *rand.Rand, values []float64, runs, maxLen int) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindNaNRun}
	for r := 0; r < runs && len(out) > 0; r++ {
		length := 1 + rng.Intn(maxInt(maxLen, 1))
		start := rng.Intn(len(out))
		for i := start; i < start+length && i < len(out); i++ {
			if !math.IsNaN(out[i]) {
				rep.Indices = append(rep.Indices, i)
			}
			out[i] = math.NaN()
		}
	}
	return out, rep
}

// Flatlines returns a copy of values with `runs` stuck-sensor segments of
// length 2..maxLen: every point in a segment repeats the value at its
// start, as a frozen transducer would report.
func Flatlines(rng *rand.Rand, values []float64, runs, maxLen int) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindFlatline}
	for r := 0; r < runs && len(out) > 1; r++ {
		length := 2 + rng.Intn(maxInt(maxLen-1, 1))
		start := rng.Intn(len(out))
		held := out[start]
		for i := start + 1; i < start+length && i < len(out); i++ {
			out[i] = held
			rep.Indices = append(rep.Indices, i)
		}
	}
	return out, rep
}

// extremes is the corruption menu of KindExtreme: the values a flipped
// exponent bit, an uninitialized read or a unit mix-up produce.
var extremes = []float64{
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.MaxFloat64, -math.MaxFloat64, 1e300, -1e300,
	math.SmallestNonzeroFloat64,
}

// Extremes returns a copy of values with `count` single points replaced
// by hostile floats.
func Extremes(rng *rand.Rand, values []float64, count int) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindExtreme}
	for c := 0; c < count && len(out) > 0; c++ {
		i := rng.Intn(len(out))
		out[i] = extremes[rng.Intn(len(extremes))]
		rep.Indices = append(rep.Indices, i)
	}
	return out, rep
}

// Dropout removes `chunks` chunks of 1..maxLen consecutive samples,
// returning the shortened series — the shape a lossy, equally spaced feed
// degrades into. Report.Indices lists the removed original positions.
func Dropout(rng *rand.Rand, values []float64, chunks, maxLen int) ([]float64, Report) {
	rep := Report{Kind: KindDropout}
	if len(values) == 0 {
		return nil, rep
	}
	drop := make([]bool, len(values))
	for c := 0; c < chunks; c++ {
		length := 1 + rng.Intn(maxInt(maxLen, 1))
		start := rng.Intn(len(values))
		for i := start; i < start+length && i < len(values); i++ {
			drop[i] = true
		}
	}
	out := make([]float64, 0, len(values))
	for i, v := range values {
		if drop[i] {
			rep.Indices = append(rep.Indices, i)
			continue
		}
		out = append(out, v)
	}
	return out, rep
}

// Inject applies one fault family at a severity scaled to the series
// length (about 2% of points per family).
func Inject(rng *rand.Rand, values []float64, kind Kind) ([]float64, Report) {
	n := len(values)
	budget := maxInt(n/50, 2)
	switch kind {
	case KindNaNRun:
		return NaNRuns(rng, values, maxInt(budget/4, 1), 8)
	case KindFlatline:
		return Flatlines(rng, values, maxInt(budget/8, 1), 16)
	case KindExtreme:
		return Extremes(rng, values, budget)
	case KindDropout:
		return Dropout(rng, values, maxInt(budget/4, 1), 8)
	default:
		return clone(values), Report{Kind: kind}
	}
}

// Chaos applies every fault family in sequence (dropout last, so the
// index bookkeeping of the earlier reports stays meaningful for the
// pre-dropout layout) and returns the corrupted series with all reports.
func Chaos(rng *rand.Rand, values []float64) ([]float64, []Report) {
	var reports []Report
	out := clone(values)
	for _, kind := range []Kind{KindFlatline, KindExtreme, KindNaNRun, KindDropout} {
		var rep Report
		out, rep = Inject(rng, out, kind)
		reports = append(reports, rep)
	}
	return out, reports
}

func clone(values []float64) []float64 {
	return append([]float64(nil), values...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
