// Package faultgen injects the failure modes real deployments feed a
// detector — missing values, stuck sensors, corrupted floats, dropped
// samples — into clean series. It is the chaos half of the robustness
// harness: internal/synth builds a series with known ground truth,
// faultgen corrupts it, and the fault-injection tests assert that every
// entry point survives with bounded quality deviation. All injectors are
// driven by a caller-supplied RNG, so runs are reproducible, and they
// never modify their input.
package faultgen

import (
	"math"
	"math/rand"
)

// Kind names one fault family, for reports and CLI selection.
type Kind string

// Fault families. The first four are the original chaos harness; the
// last four extend the taxonomy to the slow/structural failure modes of
// the Blázquez-García et al. survey (drifts, outages, level shifts,
// seasonal excursions) that real telemetry exhibits and the paper never
// injects.
const (
	// KindNaNRun replaces runs of points with NaN (transmission loss).
	KindNaNRun Kind = "nan"
	// KindFlatline holds the sensor at a constant value (stuck sensor).
	KindFlatline Kind = "flatline"
	// KindExtreme corrupts single points with ±Inf, NaN and huge finite
	// magnitudes (bit corruption, unit blowups).
	KindExtreme Kind = "extreme"
	// KindDropout removes whole chunks of samples, shortening the series
	// (gaps in an equally spaced feed).
	KindDropout Kind = "dropout"
	// KindDrift ramps the value away linearly over a stretch and holds
	// the reached offset (sensor calibration drift).
	KindDrift Kind = "drift"
	// KindGap blanks one long contiguous stretch to NaN — a feed outage,
	// the missing-timestamp shape of an equally spaced store.
	KindGap Kind = "gap"
	// KindLevelShift adds an abrupt persistent offset from one position
	// onward (a spurious step that is an error, not an event).
	KindLevelShift Kind = "levelshift"
	// KindSeasonalSwing superimposes a transient oscillation burst — an
	// out-of-season amplitude excursion.
	KindSeasonalSwing Kind = "seasonalswing"
)

// Kinds lists every fault family.
func Kinds() []Kind {
	return []Kind{KindNaNRun, KindFlatline, KindExtreme, KindDropout,
		KindDrift, KindGap, KindLevelShift, KindSeasonalSwing}
}

// Report says what one injector did.
type Report struct {
	Kind Kind
	// Indices are the corrupted positions in the returned slice (for
	// KindDropout: the positions, in the original slice, of the removed
	// samples).
	Indices []int
}

// NaNRuns returns a copy of values with `runs` runs of NaN of length
// 1..maxLen at random positions.
func NaNRuns(rng *rand.Rand, values []float64, runs, maxLen int) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindNaNRun}
	for r := 0; r < runs && len(out) > 0; r++ {
		length := 1 + rng.Intn(max(maxLen, 1))
		start := rng.Intn(len(out))
		for i := start; i < start+length && i < len(out); i++ {
			if !math.IsNaN(out[i]) {
				rep.Indices = append(rep.Indices, i)
			}
			out[i] = math.NaN()
		}
	}
	return out, rep
}

// Flatlines returns a copy of values with `runs` stuck-sensor segments of
// length 2..maxLen: every point in a segment repeats the value at its
// start, as a frozen transducer would report.
func Flatlines(rng *rand.Rand, values []float64, runs, maxLen int) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindFlatline}
	for r := 0; r < runs && len(out) > 1; r++ {
		length := 2 + rng.Intn(max(maxLen-1, 1))
		start := rng.Intn(len(out))
		held := out[start]
		for i := start + 1; i < start+length && i < len(out); i++ {
			out[i] = held
			rep.Indices = append(rep.Indices, i)
		}
	}
	return out, rep
}

// extremes is the corruption menu of KindExtreme: the values a flipped
// exponent bit, an uninitialized read or a unit mix-up produce.
var extremes = []float64{
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.MaxFloat64, -math.MaxFloat64, 1e300, -1e300,
	math.SmallestNonzeroFloat64,
}

// Extremes returns a copy of values with `count` single points replaced
// by hostile floats.
func Extremes(rng *rand.Rand, values []float64, count int) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindExtreme}
	for c := 0; c < count && len(out) > 0; c++ {
		i := rng.Intn(len(out))
		out[i] = extremes[rng.Intn(len(extremes))]
		rep.Indices = append(rep.Indices, i)
	}
	return out, rep
}

// Dropout removes `chunks` chunks of 1..maxLen consecutive samples,
// returning the shortened series — the shape a lossy, equally spaced feed
// degrades into. Report.Indices lists the removed original positions.
func Dropout(rng *rand.Rand, values []float64, chunks, maxLen int) ([]float64, Report) {
	rep := Report{Kind: KindDropout}
	if len(values) == 0 {
		return nil, rep
	}
	drop := make([]bool, len(values))
	for c := 0; c < chunks; c++ {
		length := 1 + rng.Intn(max(maxLen, 1))
		start := rng.Intn(len(values))
		for i := start; i < start+length && i < len(values); i++ {
			drop[i] = true
		}
	}
	out := make([]float64, 0, len(values))
	for i, v := range values {
		if drop[i] {
			rep.Indices = append(rep.Indices, i)
			continue
		}
		out = append(out, v)
	}
	return out, rep
}

// Drifts adds `runs` slow linear ramps: over a stretch of 8..maxLen
// points the value drifts away linearly until the deviation reaches
// about scale robust standard deviations, then the reached offset holds
// for the rest of the series — a transducer losing its calibration.
// Report.Indices lists the ramp positions (where the deviation grows).
func Drifts(rng *rand.Rand, values []float64, runs, maxLen int, scale float64) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindDrift}
	sd := robustScale(out)
	for r := 0; r < runs && len(out) > 8; r++ {
		length := 8 + rng.Intn(max(maxLen-7, 1))
		start := rng.Intn(len(out))
		total := (scale + scale*rng.Float64()) * sd
		if rng.Intn(2) == 0 {
			total = -total
		}
		end := min(start+length, len(out))
		for i := start; i < end; i++ {
			out[i] += total * float64(i-start+1) / float64(length)
			rep.Indices = append(rep.Indices, i)
		}
		// The drifted sensor stays miscalibrated past the ramp.
		for i := end; i < len(out); i++ {
			out[i] += total * float64(end-start) / float64(length)
		}
	}
	return out, rep
}

// Gaps blanks `runs` long stretches of maxLen/2..maxLen points to NaN —
// feed outages, an order of magnitude longer than the scattered
// transmission-loss runs of KindNaNRun.
func Gaps(rng *rand.Rand, values []float64, runs, maxLen int) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindGap}
	if maxLen < 4 {
		maxLen = 4
	}
	for r := 0; r < runs && len(out) > 0; r++ {
		length := maxLen/2 + rng.Intn(max(maxLen-maxLen/2, 1))
		start := rng.Intn(len(out))
		for i := start; i < start+length && i < len(out); i++ {
			if !math.IsNaN(out[i]) {
				rep.Indices = append(rep.Indices, i)
			}
			out[i] = math.NaN()
		}
	}
	return out, rep
}

// LevelShifts adds `shifts` abrupt persistent offsets of about scale
// robust standard deviations, each from a random onset onward. Unlike a
// change point — an event to preserve — these are spurious steps (a
// re-zeroed sensor, a unit change upstream). Report.Indices lists the
// onset positions only; everything after an onset is offset.
func LevelShifts(rng *rand.Rand, values []float64, shifts int, scale float64) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindLevelShift}
	sd := robustScale(out)
	for r := 0; r < shifts && len(out) > 2; r++ {
		pos := 1 + rng.Intn(len(out)-1)
		delta := (scale + scale*rng.Float64()) * sd
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		for i := pos; i < len(out); i++ {
			out[i] += delta
		}
		rep.Indices = append(rep.Indices, pos)
	}
	return out, rep
}

// SeasonalSwings superimposes `runs` transient oscillation bursts of
// 16..maxLen points: a sinusoid of about scale robust standard
// deviations, faded in and out by a raised-cosine envelope so the burst
// has no artificial edges — an out-of-season amplitude excursion.
func SeasonalSwings(rng *rand.Rand, values []float64, runs, maxLen int, scale float64) ([]float64, Report) {
	out := clone(values)
	rep := Report{Kind: KindSeasonalSwing}
	sd := robustScale(out)
	for r := 0; r < runs && len(out) > 16; r++ {
		length := 16 + rng.Intn(max(maxLen-15, 1))
		start := rng.Intn(len(out))
		period := float64(8 + rng.Intn(max(length/2-8, 1)))
		amp := (scale + scale*rng.Float64()) * sd
		end := min(start+length, len(out))
		for i := start; i < end; i++ {
			t := float64(i - start)
			envelope := 0.5 - 0.5*math.Cos(2*math.Pi*t/float64(length-1))
			delta := amp * envelope * math.Sin(2*math.Pi*t/period)
			next := out[i] + delta
			//cabd:lint-ignore floateq exact equality is the contract: an index is reported corrupted only when the float addition actually changes the stored value (envelope edges and sinusoid zero crossings produce deltas that vanish in the addition)
			if next == out[i] {
				continue
			}
			out[i] = next
			rep.Indices = append(rep.Indices, i)
		}
	}
	return out, rep
}

// Inject applies one fault family at a severity scaled to the series
// length (about 2% of points per family).
func Inject(rng *rand.Rand, values []float64, kind Kind) ([]float64, Report) {
	n := len(values)
	budget := max(n/50, 2)
	switch kind {
	case KindNaNRun:
		return NaNRuns(rng, values, max(budget/4, 1), 8)
	case KindFlatline:
		return Flatlines(rng, values, max(budget/8, 1), 16)
	case KindExtreme:
		return Extremes(rng, values, budget)
	case KindDropout:
		return Dropout(rng, values, max(budget/4, 1), 8)
	case KindDrift:
		return Drifts(rng, values, max(budget/16, 1), 64, 4)
	case KindGap:
		return Gaps(rng, values, max(budget/16, 1), 32)
	case KindLevelShift:
		return LevelShifts(rng, values, max(budget/16, 1), 4)
	case KindSeasonalSwing:
		return SeasonalSwings(rng, values, max(budget/16, 1), 64, 3)
	default:
		return clone(values), Report{Kind: kind}
	}
}

// Chaos applies every fault family in sequence (gap second to last and
// dropout last, so the index bookkeeping of the earlier reports stays
// meaningful for the pre-dropout layout) and returns the corrupted
// series with all reports.
func Chaos(rng *rand.Rand, values []float64) ([]float64, []Report) {
	var reports []Report
	out := clone(values)
	for _, kind := range []Kind{KindFlatline, KindExtreme, KindNaNRun,
		KindDrift, KindLevelShift, KindSeasonalSwing, KindGap, KindDropout} {
		var rep Report
		out, rep = Inject(rng, out, kind)
		reports = append(reports, rep)
	}
	return out, reports
}

func clone(values []float64) []float64 {
	return append([]float64(nil), values...)
}

// robustScale estimates the spread of the finite values (for sizing
// drift/shift/swing magnitudes); hostile input already full of NaN runs
// or flatlines must not zero the injected deviation, so the floor is 1.
func robustScale(values []float64) float64 {
	var mean, m2 float64
	n := 0
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		n++
		d := v - mean
		mean += d / float64(n)
		m2 += d * (v - mean)
	}
	if n < 2 {
		return 1
	}
	sd := math.Sqrt(m2 / float64(n))
	if sd == 0 || math.IsNaN(sd) || math.IsInf(sd, 0) {
		return 1
	}
	return sd
}
