// The fault-injection harness of the robustness layer: synthetic series
// with known ground truth are corrupted by every fault family, pushed
// through sanitization and then through CABD (core, multivariate and
// streaming) and the full baseline suite. The assertions are the
// robustness contract: nothing panics, all output indices are sorted and
// in range, and detection quality on repaired input stays within a
// bounded deviation of the clean run.
package faultgen_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cabd/internal/baselines/bocpd"
	"cabd/internal/baselines/common"
	"cabd/internal/baselines/contextose"
	"cabd/internal/baselines/donut"
	"cabd/internal/baselines/fbag"
	"cabd/internal/baselines/hbos"
	"cabd/internal/baselines/iforest"
	"cabd/internal/baselines/knncad"
	"cabd/internal/baselines/luminol"
	"cabd/internal/baselines/mcd"
	"cabd/internal/baselines/numenta"
	"cabd/internal/baselines/relent"
	"cabd/internal/baselines/spot"
	"cabd/internal/baselines/sr"
	"cabd/internal/baselines/twitteresd"
	"cabd/internal/changepoint"
	"cabd/internal/core"
	"cabd/internal/faultgen"
	"cabd/internal/multi"
	"cabd/internal/sanitize"
	"cabd/internal/series"
	"cabd/internal/stream"
	"cabd/internal/synth"
)

// suite returns every baseline detector under its default configuration.
func suite() []common.Detector {
	return []common.Detector{
		bocpd.New(bocpd.Config{}),
		contextose.New(contextose.Config{}),
		donut.New(donut.Config{}),
		fbag.New(fbag.Config{}),
		hbos.New(hbos.Config{}),
		iforest.New(iforest.Config{}),
		knncad.New(knncad.Config{}),
		luminol.New(luminol.Config{}),
		mcd.New(mcd.Config{}),
		numenta.New(numenta.Config{}),
		relent.New(relent.Config{}),
		spot.New(spot.Config{}),
		sr.New(sr.Config{}),
		twitteresd.New(twitteresd.Config{}),
	}
}

func cleanSeries(seed int64, n int) *series.Series {
	return synth.Generate(synth.Config{
		N: n, Seed: seed,
		SingleFrac: 0.01, CollectiveFrac: 0.02, ChangeFrac: 0.005,
	})
}

// corrupt builds the faulted variant for one fault family.
func corrupt(t *testing.T, vals []float64, kind faultgen.Kind, seed int64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out, rep := faultgen.Inject(rng, vals, kind)
	if len(rep.Indices) == 0 {
		t.Fatalf("%s injector corrupted nothing", kind)
	}
	return out
}

// checkIndices asserts the detection-output contract.
func checkIndices(t *testing.T, who string, idx []int, n int) {
	t.Helper()
	if !sort.IntsAreSorted(idx) {
		t.Errorf("%s: indices not sorted", who)
	}
	for _, i := range idx {
		if i < 0 || i >= n {
			t.Errorf("%s: index %d out of range [0, %d)", who, i, n)
			return
		}
	}
}

// run calls f, converting a panic into a test failure instead of a crash.
func run(t *testing.T, who string, f func()) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Errorf("%s panicked: %v", who, p)
		}
	}()
	f()
}

// TestCABDSurvivesEveryFaultFamily pushes every fault family through
// sanitization and the core detector.
func TestCABDSurvivesEveryFaultFamily(t *testing.T) {
	s := cleanSeries(11, 2000)
	det := core.NewDetector(core.Options{})
	for _, kind := range faultgen.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			dirty := corrupt(t, s.Values, kind, 101)
			clean, _, rep, err := sanitize.Series(dirty, sanitize.Config{})
			if err != nil {
				t.Fatalf("sanitize: %v", err)
			}
			// Only the bad-value families (NaN runs, hostile floats, feed
			// outages) leave something for sanitize to repair; the finite
			// families (flatline, drift, levelshift, seasonalswing) and
			// dropout pass through value-clean.
			switch kind {
			case faultgen.KindNaNRun, faultgen.KindExtreme, faultgen.KindGap:
				if rep.Bad() == 0 {
					t.Fatalf("sanitize found nothing to repair after %s", kind)
				}
			}
			var res *core.Result
			run(t, "core.Detect", func() {
				res = det.Detect(series.New("chaos", clean))
			})
			if res == nil {
				return
			}
			checkIndices(t, "anomalies", res.AnomalyIndices(), len(clean))
			checkIndices(t, "changepoints", res.ChangePointIndices(), len(clean))
			if got, bound := len(res.Anomalies), len(clean)/4; got > bound {
				t.Errorf("%s: detection flood: %d anomalies > %d", kind, got, bound)
			}
		})
	}
}

// TestBoundedQualityDeviation compares the clean run against the
// chaos-corrupted, sanitized run: repair must keep the detector usable,
// not merely alive. The bounds are deliberately loose — chaos injects
// real signal damage — but they fail on collapse (nothing found) and on
// explosion (candidate flood).
func TestBoundedQualityDeviation(t *testing.T) {
	s := cleanSeries(17, 3000)
	det := core.NewDetector(core.Options{})
	base := det.Detect(s)
	if len(base.Anomalies) == 0 {
		t.Fatal("clean run found no anomalies; fixture is broken")
	}

	rng := rand.New(rand.NewSource(23))
	dirty, _ := faultgen.Chaos(rng, s.Values)
	clean, _, _, err := sanitize.Series(dirty, sanitize.Config{})
	if err != nil {
		t.Fatalf("sanitize after chaos: %v", err)
	}
	res := det.Detect(series.New("chaos", clean))
	if len(res.Anomalies) == 0 {
		t.Error("chaos run collapsed to zero detections")
	}
	if lo, hi := len(base.Anomalies)/4, 6*len(base.Anomalies)+60; len(res.Anomalies) < lo || len(res.Anomalies) > hi {
		t.Errorf("chaos run found %d anomalies, clean found %d — outside [%d, %d]",
			len(res.Anomalies), len(base.Anomalies), lo, hi)
	}
}

// TestBaselinesSurviveChaos drives the full baseline suite (14 anomaly
// detectors + the PELT and BinSeg change-point searches) over sanitized
// chaos input.
func TestBaselinesSurviveChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline sweep is slow")
	}
	s := cleanSeries(29, 1200)
	rng := rand.New(rand.NewSource(31))
	dirty, _ := faultgen.Chaos(rng, s.Values)
	clean, _, _, err := sanitize.Series(dirty, sanitize.Config{})
	if err != nil {
		t.Fatalf("sanitize: %v", err)
	}
	cs := series.New("chaos", clean)
	for _, det := range suite() {
		det := det
		t.Run(det.Name(), func(t *testing.T) {
			var idx []int
			run(t, det.Name(), func() { idx = det.Detect(cs) })
			checkIndices(t, det.Name(), idx, len(clean))
		})
	}
	t.Run("PELT", func(t *testing.T) {
		var cps []int
		run(t, "PELT", func() { cps = changepoint.PELT(clean, 10) })
		checkIndices(t, "PELT", cps, len(clean)+1)
	})
	t.Run("BinSeg", func(t *testing.T) {
		var cps []int
		run(t, "BinSeg", func() { cps = changepoint.BinSeg(clean, 10, 2) })
		checkIndices(t, "BinSeg", cps, len(clean)+1)
	})
}

// TestMultiSurvivesChaos corrupts each dimension independently.
func TestMultiSurvivesChaos(t *testing.T) {
	s := cleanSeries(37, 1500)
	dims := [][]float64{s.Values, make([]float64, len(s.Values))}
	for i, v := range s.Values {
		dims[1][i] = -0.5 * v
	}
	rng := rand.New(rand.NewSource(41))
	dims[0], _ = faultgen.Inject(rng, dims[0], faultgen.KindNaNRun)
	dims[1], _ = faultgen.Inject(rng, dims[1], faultgen.KindExtreme)
	clean, _, _, err := sanitize.Multi(dims, sanitize.Config{})
	if err != nil {
		t.Fatalf("sanitize.Multi: %v", err)
	}
	det := multi.NewDetector(core.Options{})
	var res *core.Result
	run(t, "multi.Detect", func() {
		res = det.Detect(multi.NewSeries("chaos", clean))
	})
	if res != nil {
		checkIndices(t, "multi anomalies", res.AnomalyIndices(), len(clean[0]))
	}
}

// TestStreamSurvivesChaos pushes raw (unsanitized) chaos output through
// the streaming detector — Push's own bad-value interception is the
// sanitizer there.
func TestStreamSurvivesChaos(t *testing.T) {
	s := cleanSeries(43, 2500)
	rng := rand.New(rand.NewSource(47))
	dirty, _ := faultgen.Chaos(rng, s.Values)
	d := stream.New(stream.Config{Window: 600, Hop: 100})
	run(t, "stream.Push", func() {
		for _, v := range dirty {
			for _, det := range d.Push(v) {
				if det.Index < 0 || det.Index >= len(dirty) {
					t.Fatalf("stream index %d out of range", det.Index)
				}
			}
		}
		d.Flush()
	})
	if d.Bad() == 0 {
		t.Error("stream intercepted no bad values; chaos fixture is broken")
	}
}

// TestInjectorsAreReproducible guards the seeded determinism contract.
func TestInjectorsAreReproducible(t *testing.T) {
	base := cleanSeries(53, 500).Values
	for _, kind := range faultgen.Kinds() {
		a, ra := faultgen.Inject(rand.New(rand.NewSource(59)), base, kind)
		b, rb := faultgen.Inject(rand.New(rand.NewSource(59)), base, kind)
		if fmt.Sprint(ra.Indices) != fmt.Sprint(rb.Indices) || len(a) != len(b) {
			t.Errorf("%s: same seed produced different faults", kind)
		}
	}
}
