// Exhaustive golden-report coverage of Inject: every kind in Kinds()
// must be wired through the Inject switch and reproduce a pinned report
// shape under a fixed seed. Adding a kind without wiring it (the
// default branch returns an empty report) fails here.
package faultgen_test

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/faultgen"
)

// injectGolden pins, per kind, the output length and the report summary
// (corruption count, first and last corrupted index) for seed 7 over the
// fixture below. Regenerate by logging the actual values if an injector
// legitimately changes.
var injectGolden = map[faultgen.Kind]struct {
	outLen, count, first, last int
}{
	faultgen.KindNaNRun:        {outLen: 400, count: 13, first: 270, last: 68},
	faultgen.KindFlatline:      {outLen: 400, count: 12, first: 271, last: 282},
	faultgen.KindExtreme:       {outLen: 400, count: 8, first: 286, last: 391},
	faultgen.KindDropout:       {outLen: 387, count: 13, first: 63, last: 276},
	faultgen.KindDrift:         {outLen: 400, count: 37, first: 270, last: 306},
	faultgen.KindGap:           {outLen: 400, count: 30, first: 270, last: 299},
	faultgen.KindLevelShift:    {outLen: 400, count: 1, first: 315, last: 315},
	faultgen.KindSeasonalSwing: {outLen: 400, count: 46, first: 271, last: 317},
}

func injectFixture() []float64 {
	base := make([]float64, 400)
	for i := range base {
		base[i] = math.Sin(2*math.Pi*float64(i)/40) + 0.01*float64(i)
	}
	return base
}

// TestInjectGoldenReports table-tests Inject over every kind against the
// pinned report summaries.
func TestInjectGoldenReports(t *testing.T) {
	base := injectFixture()
	if len(injectGolden) != len(faultgen.Kinds()) {
		t.Fatalf("golden table has %d kinds, Kinds() has %d — add the new kind's golden entry",
			len(injectGolden), len(faultgen.Kinds()))
	}
	for _, kind := range faultgen.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			want, ok := injectGolden[kind]
			if !ok {
				t.Fatalf("no golden entry for kind %q", kind)
			}
			out, rep := faultgen.Inject(rand.New(rand.NewSource(7)), base, kind)
			if rep.Kind != kind {
				t.Errorf("report kind = %q, want %q", rep.Kind, kind)
			}
			if len(rep.Indices) == 0 {
				t.Fatalf("%s: Inject corrupted nothing — kind not wired through the switch?", kind)
			}
			first, last := rep.Indices[0], rep.Indices[len(rep.Indices)-1]
			got := struct{ outLen, count, first, last int }{len(out), len(rep.Indices), first, last}
			if got != want {
				t.Errorf("%s: report summary %+v, want %+v", kind, got, want)
			}
			// The input must never be modified in place.
			ref := injectFixture()
			for i := range base {
				if base[i] != ref[i] {
					t.Fatalf("%s: Inject modified its input at %d", kind, i)
				}
			}
		})
	}
}

// TestInjectReportedIndicesDiffer asserts every reported index (for the
// value-mutating kinds) actually differs from the clean input — a report
// must not claim corruption it didn't do.
func TestInjectReportedIndicesDiffer(t *testing.T) {
	base := injectFixture()
	for _, kind := range faultgen.Kinds() {
		if kind == faultgen.KindDropout {
			continue // indices name removed positions, not mutated ones
		}
		out, rep := faultgen.Inject(rand.New(rand.NewSource(7)), base, kind)
		for _, i := range rep.Indices {
			if i < 0 || i >= len(out) {
				t.Fatalf("%s: reported index %d out of range", kind, i)
			}
			same := out[i] == base[i] ||
				(math.IsNaN(out[i]) && math.IsNaN(base[i]))
			if same {
				t.Errorf("%s: reported index %d is unchanged", kind, i)
			}
		}
	}
}
