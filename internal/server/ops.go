package server

import "net/http"

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 once draining so a load balancer stops
// routing new work while in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics serves the recorder in the Prometheus text exposition:
// pipeline stage histograms, the http_request latency histogram, queue
// depth, shed/eviction/session counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.rec.WritePrometheus(w)
}
