package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cabd"
	"cabd/httpapi"
	"cabd/internal/ml/forest"
	"cabd/internal/obs"
	"cabd/internal/oracle"
	"cabd/internal/series"
)

// session is one interactive active-learning run — the paper's
// user-driven loop (Algorithm 2 line 5 / Algorithm 4) lifted over HTTP.
// DetectInteractiveCtx runs in a dedicated goroutine; each uncertainty-
// sampled query parks the goroutine on a channel-backed labeler until a
// label arrives via POST .../labels, and the run resumes until every
// candidate clears the configured confidence γ (or the query budget
// runs out).
type session struct {
	id     string
	srv    *Server
	cancel context.CancelFunc
	done   chan struct{}
	// req is the originating request, retained verbatim so the session
	// can be checkpointed and deterministically re-run after a restart.
	req httpapi.SessionRequest
	// created anchors eviction-age logging.
	created time.Time

	mu      sync.Mutex
	state   string
	queries int
	pending *pendingQuery
	result  *httpapi.DetectResponse
	errMsg  string
	last    time.Time
	// labels is every delivered label in delivery order (human sessions);
	// it rides in the checkpoint so a restart can replay them.
	labels []labelRecord
	// replay answers restored queries by index before parking on a
	// human: the pipeline is deterministic under a fixed seed, so it
	// re-asks the same indices in the same order.
	replay map[int]cabd.Label
	// model is the final serialized ensemble, set when the run finishes.
	model *forest.Snapshot
}

// pendingQuery is one parked labeler call: the index the loop wants
// labeled and the channel its answer travels back on.
type pendingQuery struct {
	index  int
	value  float64
	answer chan cabd.Label
}

// sessionTable holds the live sessions.
type sessionTable struct {
	srv  *Server
	mu   sync.Mutex
	m    map[string]*session
	next atomic.Int64
	wg   sync.WaitGroup
}

func newSessionTable(s *Server) *sessionTable {
	return &sessionTable{srv: s, m: map[string]*session{}}
}

// errSessionsFull sheds session creation at the cap.
var errSessionsFull = errors.New("server saturated: session cap reached")

// create registers a new session and spawns its pipeline goroutine.
func (t *sessionTable) create(req httpapi.SessionRequest, opts *detectOptions, truth []series.Label) (*session, error) {
	t.mu.Lock()
	if len(t.m) >= t.srv.cfg.MaxSessions {
		t.mu.Unlock()
		t.srv.rec.Add(obs.CounterHTTPShed, 1)
		return nil, errSessionsFull
	}
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{
		id:      "s" + strconv.FormatInt(t.next.Add(1), 10),
		srv:     t.srv,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   httpapi.StateRunning,
		req:     req,
		created: t.srv.clock.Now(),
		last:    t.srv.clock.Now(),
	}
	t.m[sess.id] = sess
	t.srv.rec.SetGauge(obs.GaugeSessionsActive, int64(len(t.m)))
	t.wg.Add(1)
	t.mu.Unlock()

	t.srv.checkpointSession(sess)
	det := t.srv.detectorFor(opts)
	go func() {
		defer t.wg.Done()
		sess.run(ctx, det, req.Series, truth)
	}()
	return sess, nil
}

// lookup returns the session for id, or nil.
func (t *sessionTable) lookup(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

// remove drops id from the table.
func (t *sessionTable) remove(id string) {
	t.mu.Lock()
	delete(t.m, id)
	t.srv.rec.SetGauge(obs.GaugeSessionsActive, int64(len(t.m)))
	t.mu.Unlock()
}

// evictIdle cancels and reclaims sessions idle past ttl — wedged
// awaiting-label sessions included — in deterministic id order. An
// evicted session's checkpoint is dropped too: idle reclamation is a
// deliberate end, not a crash, so a restart must not resurrect it.
func (t *sessionTable) evictIdle(now time.Time, ttl time.Duration) {
	t.mu.Lock()
	var expired []*session
	for _, sess := range t.m {
		sess.mu.Lock()
		idle := now.Sub(sess.last) > ttl
		sess.mu.Unlock()
		if idle {
			expired = append(expired, sess)
		}
	}
	sort.Slice(expired, func(a, b int) bool { return expired[a].id < expired[b].id })
	for _, sess := range expired {
		delete(t.m, sess.id)
		t.srv.rec.Add(obs.CounterIdleEvictions, 1)
	}
	t.srv.rec.SetGauge(obs.GaugeSessionsActive, int64(len(t.m)))
	t.mu.Unlock()
	// Cancel outside the table lock: each cancel wakes a parked labeler
	// that might be racing a status call.
	for _, sess := range expired {
		age := now.Sub(sess.created)
		sess.mu.Lock()
		idleFor := now.Sub(sess.last)
		sess.mu.Unlock()
		t.srv.logf("cabd-serve: session %s evicted after idle timeout (age %s, idle %s)",
			sess.id, age, idleFor)
		sess.markCancelled("evicted after idle timeout")
		t.srv.dropSessionCheckpoint(sess.id)
	}
}

// cancelAll cancels every live session (drain path).
func (t *sessionTable) cancelAll() {
	t.mu.Lock()
	var all []*session
	for _, sess := range t.m {
		all = append(all, sess)
	}
	t.m = map[string]*session{}
	t.srv.rec.SetGauge(obs.GaugeSessionsActive, 0)
	t.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	for _, sess := range all {
		sess.markCancelled("server draining")
	}
}

// wait blocks until every session goroutine has exited.
func (t *sessionTable) wait() { t.wg.Wait() }

// run executes the interactive pipeline. With ground truth the oracle
// answers queries inline (load-testing mode); otherwise each query
// first consults the replay map (labels restored from a checkpoint —
// the deterministic pipeline re-asks the same indices, so a restored
// session fast-forwards through them) and only then parks on the
// channel labeler until a client posts the label.
func (s *session) run(ctx context.Context, det *cabd.Detector, vals []float64, truth []series.Label) {
	var label func(i int) cabd.Label
	if truth != nil {
		orc := oracle.New(&series.Series{Name: "session", Values: vals, Labels: truth})
		label = func(i int) cabd.Label {
			s.noteQuery()
			return cabd.Label(orc.Label(i))
		}
	} else {
		label = func(i int) cabd.Label {
			if lbl, ok := s.replayLabel(i); ok {
				return lbl
			}
			return s.await(ctx, vals, i)
		}
	}
	res, err := det.DetectInteractiveCtx(ctx, vals, label)

	s.mu.Lock()
	s.pending = nil
	s.last = s.srv.clock.Now()
	cancelled := s.state == httpapi.StateCancelled
	switch {
	case cancelled:
		// Keep the cancellation verdict even if the pipeline returned.
	case err != nil:
		s.state = httpapi.StateFailed
		s.errMsg = err.Error()
	default:
		s.state = httpapi.StateDone
		s.result = toWire(res)
		s.queries = res.Queries
		if res.Model != nil {
			s.model = res.Model.Snapshot()
		}
	}
	s.mu.Unlock()
	// Persist the terminal verdict (result + serialized model), but not
	// a cancellation: drain cancels every session and must leave the
	// last pre-drain checkpoint for the restart to resume from, while
	// deliberate cancels drop the file at their call site.
	if !cancelled {
		s.srv.checkpointSession(s)
	}
	close(s.done)
}

// replayLabel answers a restored query from the checkpoint's recorded
// labels, if present.
func (s *session) replayLabel(i int) (cabd.Label, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lbl, ok := s.replay[i]
	if !ok {
		return 0, false
	}
	s.queries++
	s.last = s.srv.clock.Now()
	return lbl, true
}

// await parks the pipeline on one uncertainty-sampled query until its
// label arrives (or the session is cancelled — the Normal returned then
// is discarded, because the loop's next ctx check aborts the run).
func (s *session) await(ctx context.Context, vals []float64, i int) cabd.Label {
	pq := &pendingQuery{index: i, answer: make(chan cabd.Label, 1)}
	if i >= 0 && i < len(vals) {
		pq.value = vals[i]
	}
	s.mu.Lock()
	s.pending = pq
	s.state = httpapi.StateAwaitingLabel
	s.last = s.srv.clock.Now()
	s.mu.Unlock()
	select {
	case lbl := <-pq.answer:
		s.mu.Lock()
		s.pending = nil
		s.state = httpapi.StateRunning
		s.queries++
		s.last = s.srv.clock.Now()
		s.mu.Unlock()
		return lbl
	case <-ctx.Done():
		return cabd.Normal
	}
}

// noteQuery bumps the query counter for the auto-label oracle path.
func (s *session) noteQuery() {
	s.mu.Lock()
	s.queries++
	s.last = s.srv.clock.Now()
	s.mu.Unlock()
}

// markCancelled cancels the pipeline and records the verdict.
func (s *session) markCancelled(reason string) {
	s.mu.Lock()
	if s.state != httpapi.StateDone && s.state != httpapi.StateFailed {
		s.state = httpapi.StateCancelled
		s.errMsg = reason
		s.pending = nil
	}
	s.mu.Unlock()
	s.cancel()
}

// touch refreshes the idle clock on client reads.
func (s *session) touch() {
	s.mu.Lock()
	s.last = s.srv.clock.Now()
	s.mu.Unlock()
}

// status snapshots the session resource.
func (s *session) status() httpapi.SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := httpapi.SessionStatus{
		ID:      s.id,
		State:   s.state,
		Queries: s.queries,
		Result:  s.result,
		Error:   s.errMsg,
	}
	if s.pending != nil {
		st.Pending = &httpapi.PendingCandidate{Index: s.pending.index, Value: s.pending.value}
	}
	return st
}

// deliver hands a posted label to the parked labeler. It fails when no
// query is pending or the index does not match the pending candidate.
func (s *session) deliver(index int, lbl cabd.Label) error {
	s.mu.Lock()
	if s.state != httpapi.StateAwaitingLabel || s.pending == nil {
		state := s.state
		s.mu.Unlock()
		return fmt.Errorf("session %s has no pending query (state %s)", s.id, state)
	}
	if index != s.pending.index {
		pending := s.pending.index
		s.mu.Unlock()
		return fmt.Errorf("label is for index %d but the pending query is index %d", index, pending)
	}
	// Claim the pending query under the lock, send outside it: clearing
	// s.pending guarantees exactly one sender, and the answer channel is
	// buffered, so the send below can never park.
	answer := s.pending.answer
	s.pending = nil
	s.state = httpapi.StateRunning
	s.labels = append(s.labels, labelRecord{Index: index, Label: lbl.String()})
	s.last = s.srv.clock.Now()
	s.mu.Unlock()
	answer <- lbl
	return nil
}

// --- handlers ---

// handleSessionCreate boots one interactive labeling session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req httpapi.SessionRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	opts, err := parseOptions(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var truth []series.Label
	if req.AutoLabel {
		truth, err = parseTruth(req.Truth, len(req.Series))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	sess, err := s.sessions.create(req, opts, truth)
	if err != nil {
		s.writeShed(w, err.Error())
		return
	}
	s.writeJSON(w, http.StatusCreated, sess.status())
}

// handleSessionList lists every live session, sorted by id.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.sessions.mu.Lock()
	all := make([]*session, 0, len(s.sessions.m))
	for _, sess := range s.sessions.m {
		all = append(all, sess)
	}
	s.sessions.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	out := httpapi.SessionList{Sessions: make([]httpapi.SessionStatus, 0, len(all))}
	for _, sess := range all {
		out.Sessions = append(out.Sessions, sess.status())
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleSessionGet returns the session resource (result included once
// done).
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.lookup(r.PathValue("id"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, "session not found")
		return
	}
	sess.touch()
	s.writeJSON(w, http.StatusOK, sess.status())
}

// handleSessionPending surfaces the uncertainty-sampled candidate the
// loop is parked on (204 when none: still computing, or finished).
func (s *Server) handleSessionPending(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.lookup(r.PathValue("id"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, "session not found")
		return
	}
	sess.touch()
	s.writeJSON(w, http.StatusOK, sess.status())
}

// handleSessionLabel posts one label into the session, resuming the
// parked pipeline.
func (s *Server) handleSessionLabel(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.lookup(r.PathValue("id"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, "session not found")
		return
	}
	var req httpapi.LabelRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	lbl, err := parseLabel(req.Label)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := sess.deliver(req.Index, lbl); err != nil {
		s.writeError(w, http.StatusConflict, err.Error())
		return
	}
	s.rec.Add(obs.CounterSessionLabels, 1)
	// Persist the grown label set so a crash after this acknowledgment
	// never asks the user to repeat a label they already gave.
	s.checkpointSession(sess)
	s.writeJSON(w, http.StatusOK, sess.status())
}

// handleSessionCancel cancels and removes the session.
func (s *Server) handleSessionCancel(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.lookup(r.PathValue("id"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, "session not found")
		return
	}
	s.sessions.remove(sess.id)
	sess.markCancelled("cancelled by client")
	s.dropSessionCheckpoint(sess.id)
	s.writeJSON(w, http.StatusOK, sess.status())
}
