package server

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"cabd/internal/obs"
)

// registryServer builds a Server (janitor off) for direct registry
// tests and tears it down with the test.
func registryServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.JanitorEvery = -1
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewWithClock(obs.NewFakeClock(time.Unix(0, 0)))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestShardMappingDeterministic: the consistent-hash ring maps every id
// to the same shard across independently built registries.
func TestShardMappingDeterministic(t *testing.T) {
	a := registryServer(t, Config{StreamShards: 8})
	b := registryServer(t, Config{StreamShards: 8})
	ids := []string{"s", "acme/one", "acme/two", "zeta/17", "a/b/c", ""}
	for i := 0; i < 50; i++ {
		ids = append(ids, strings.Repeat("x", i)+"-stream")
	}
	hit := map[int]bool{}
	for _, id := range ids {
		sa, sb := a.streams.shardFor(id), b.streams.shardFor(id)
		if sa.idx != sb.idx {
			t.Fatalf("id %q maps to shard %d and %d across registries", id, sa.idx, sb.idx)
		}
		hit[sa.idx] = true
	}
	if len(hit) < 4 {
		t.Fatalf("56 ids landed on only %d of 8 shards; ring is not spreading", len(hit))
	}
}

func TestTenantOf(t *testing.T) {
	cases := map[string]string{
		"acme/sensor-17": "acme",
		"acme/a/b":       "acme",
		"bare":           "bare",
		"/rooted":        "",
		"":               "",
	}
	for id, want := range cases {
		if got := tenantOf(id); got != want {
			t.Errorf("tenantOf(%q) = %q, want %q", id, got, want)
		}
	}
}

// TestTenantQuota: one tenant saturating its quota sheds without
// touching other tenants or the global cap.
func TestTenantQuota(t *testing.T) {
	s := registryServer(t, Config{MaxStreams: 16, MaxStreamsPerTenant: 2})
	now := s.clock.Now()
	for _, id := range []string{"acme/a", "acme/b"} {
		if _, err := s.streams.push(id, []float64{1}, now); err != nil {
			t.Fatalf("push %s: %v", id, err)
		}
	}
	if _, err := s.streams.push("acme/c", []float64{1}, now); !errors.Is(err, errTenantQuota) {
		t.Fatalf("third acme stream: err=%v, want tenant quota", err)
	}
	if _, err := s.streams.push("other/x", []float64{1}, now); err != nil {
		t.Fatalf("other tenant blocked by acme's quota: %v", err)
	}
	// Closing one frees the slot.
	if _, err := s.streams.close("acme/a"); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := s.streams.push("acme/c", []float64{1}, now); err != nil {
		t.Fatalf("push after freeing quota: %v", err)
	}
}

// TestStreamCapSheds: the global cap sheds creation across shards.
func TestStreamCapSheds(t *testing.T) {
	s := registryServer(t, Config{MaxStreams: 3})
	now := s.clock.Now()
	for _, id := range []string{"a", "b", "c"} {
		if _, err := s.streams.push(id, []float64{1}, now); err != nil {
			t.Fatalf("push %s: %v", id, err)
		}
	}
	if _, err := s.streams.push("d", []float64{1}, now); !errors.Is(err, errStreamsFull) {
		t.Fatalf("over-cap create: err=%v, want streams full", err)
	}
	// Existing streams keep working at the cap.
	if _, err := s.streams.push("a", []float64{2}, now); err != nil {
		t.Fatalf("push to existing stream at cap: %v", err)
	}
}

// TestMailboxSheds: with the shard goroutine wedged and the mailbox
// full, admission sheds immediately instead of queueing.
func TestMailboxSheds(t *testing.T) {
	s := registryServer(t, Config{StreamShards: 1, StreamMailbox: 1})
	sh := s.streams.shards[0]
	block := make(chan struct{})
	running := make(chan struct{})
	go func() { _ = sh.submit(func(*streamShard) { close(running); <-block }, true) }()
	<-running // the shard goroutine is now wedged inside a call
	filled := make(chan struct{})
	go func() { _ = sh.submit(func(*streamShard) {}, true); close(filled) }()
	for len(sh.mailbox) == 0 { // the blocking submit above owns the one slot
		runtime.Gosched()
	}
	if _, err := s.streams.push("x", []float64{1}, s.clock.Now()); !errors.Is(err, errStreamMailboxFull) {
		t.Fatalf("push into full mailbox: err=%v, want mailbox full", err)
	}
	before := s.rec.Count(obs.CounterHTTPShed)
	if before == 0 {
		t.Fatal("mailbox shed not counted")
	}
	close(block)
	<-filled
	if _, err := s.streams.push("x", []float64{1}, s.clock.Now()); err != nil {
		t.Fatalf("push after unwedging: %v", err)
	}
}

// TestShardPanicContained: a panicking call poisons only itself — the
// shard goroutine and its other streams survive, and the panic is
// counted.
func TestShardPanicContained(t *testing.T) {
	s := registryServer(t, Config{StreamShards: 1})
	now := s.clock.Now()
	if _, err := s.streams.push("healthy", []float64{1, 2, 3}, now); err != nil {
		t.Fatalf("setup push: %v", err)
	}
	err := s.streams.shards[0].submit(func(*streamShard) { panic("boom") }, true)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panicking call returned err=%v, want contained panic", err)
	}
	if got := s.rec.Count(obs.CounterPanicsContained); got != 1 {
		t.Fatalf("panics_contained = %d, want 1", got)
	}
	if _, err := s.streams.push("healthy", []float64{4}, now); err != nil {
		t.Fatalf("shard dead after contained panic: %v", err)
	}
}

// TestRegistryEvictIdleDeterministic: idle eviction frees quota and
// counts once per stream.
func TestRegistryEvictIdle(t *testing.T) {
	clk := obs.NewFakeClock(time.Unix(1000, 0))
	s := registryServer(t, Config{Recorder: obs.NewWithClock(clk), MaxStreams: 8})
	now := clk.Now()
	for _, id := range []string{"a", "b", "c"} {
		if _, err := s.streams.push(id, []float64{1}, now); err != nil {
			t.Fatalf("push %s: %v", id, err)
		}
	}
	s.streams.evictIdle(now.Add(11*time.Minute), 10*time.Minute)
	if got := s.rec.Count(obs.CounterIdleEvictions); got != 3 {
		t.Fatalf("idle evictions = %d, want 3", got)
	}
	s.streams.quotaMu.Lock()
	total := s.streams.total
	s.streams.quotaMu.Unlock()
	if total != 0 {
		t.Fatalf("quota total = %d after full eviction", total)
	}
	if _, err := s.streams.close("a"); !errors.Is(err, errStreamNotFound) {
		t.Fatalf("evicted stream still closeable: %v", err)
	}
}
