package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"cabd"
	"cabd/httpapi"
	"cabd/internal/obs"
	"cabd/internal/series"
)

// wrap is the middleware every endpoint runs behind: request counting,
// a whole-request span into the http_request stage histogram, and panic
// containment — a crashing handler answers 500 with a contained
// *cabd.PanicError instead of killing the process.
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.rec.Add(obs.CounterHTTPRequests, 1)
		sp := s.rec.StartStage(obs.StageHTTPRequest)
		defer sp.End()
		defer func() {
			if p := recover(); p != nil {
				pe := &cabd.PanicError{Series: -1, Value: p, Stack: debug.Stack()}
				s.rec.Add(obs.CounterPanicsContained, 1)
				// Best effort: if the handler already wrote, this is a
				// no-op on the status line and the client sees a
				// truncated body, which is the honest signal.
				s.writeError(w, http.StatusInternalServerError, pe.Error())
			}
		}()
		h(w, r)
	}
}

// writeJSON renders v with status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the client's problem past here
}

// writeError renders the uniform error body.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, httpapi.ErrorResponse{Error: msg})
}

// writeShed renders a 429 backpressure reply with Retry-After.
func (s *Server) writeShed(w http.ResponseWriter, msg string) {
	sec := s.pool.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	s.writeJSON(w, http.StatusTooManyRequests,
		httpapi.ErrorResponse{Error: msg, RetryAfterSeconds: sec})
}

// readJSON decodes the request body into v behind a MaxBytesReader cap.
// On failure it has already written the error reply (400, or 413 when
// the cap tripped) and returns false.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// detectOptions is the parsed, validated form of httpapi.DetectOptions.
type detectOptions struct {
	hasSanitize bool
	sanitize    cabd.SanitizePolicy
	hasStrategy bool
	strategy    cabd.Strategy
	confidence  float64
	maxQueries  int
	seed        int64
	timeout     time.Duration
}

// parseOptions validates wire options; a nil wire value is a nil parse.
func parseOptions(o *httpapi.DetectOptions) (*detectOptions, error) {
	if o == nil {
		return nil, nil
	}
	out := &detectOptions{
		confidence: o.Confidence,
		maxQueries: o.MaxQueries,
		seed:       o.Seed,
	}
	if o.Sanitize != "" {
		p, err := cabd.ParseSanitizePolicy(o.Sanitize)
		if err != nil {
			return nil, err
		}
		out.hasSanitize, out.sanitize = true, p
	}
	if o.Strategy != "" {
		st, err := parseStrategy(o.Strategy)
		if err != nil {
			return nil, err
		}
		out.hasStrategy, out.strategy = true, st
	}
	if o.Confidence < 0 || o.Confidence > 1 {
		return nil, fmt.Errorf("confidence %v outside (0, 1]", o.Confidence)
	}
	if o.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d is negative", o.TimeoutMS)
	}
	out.timeout = time.Duration(o.TimeoutMS) * time.Millisecond
	return out, nil
}

// parseStrategy maps the wire strategy names (the String() forms of
// cabd.Strategy) back to values.
func parseStrategy(s string) (cabd.Strategy, error) {
	for _, st := range []cabd.Strategy{cabd.BinaryINN, cabd.LinearINN, cabd.MutualSetINN, cabd.FixedKNN} {
		if s == st.String() {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

// parseLabel maps a wire label to cabd.Label.
func parseLabel(s string) (cabd.Label, error) {
	for _, l := range []cabd.Label{cabd.Normal, cabd.SingleAnomaly, cabd.CollectiveAnomaly, cabd.ChangePoint} {
		if s == l.String() {
			return l, nil
		}
	}
	return 0, fmt.Errorf("unknown label %q (want one of %v)", s, httpapi.Labels)
}

// parseTruth converts a full-length wire label array into ground-truth
// series labels for the auto-label oracle.
func parseTruth(truth []string, n int) ([]series.Label, error) {
	if len(truth) != n {
		return nil, fmt.Errorf("truth has %d labels for %d points", len(truth), n)
	}
	out := make([]series.Label, n)
	for i, s := range truth {
		l, err := parseLabel(s)
		if err != nil {
			return nil, fmt.Errorf("truth[%d]: %v", i, err)
		}
		out[i] = series.Label(l)
	}
	return out, nil
}

// toWire converts a facade Result to its wire form.
func toWire(res *cabd.Result) *httpapi.DetectResponse {
	if res == nil {
		return &httpapi.DetectResponse{}
	}
	out := &httpapi.DetectResponse{
		Queries:       res.Queries,
		Strategy:      res.Strategy.String(),
		Degraded:      res.Degraded,
		DegradeReason: res.DegradeReason,
		StageSeconds:  res.Stages.Seconds(),
	}
	for _, d := range res.Anomalies {
		out.Anomalies = append(out.Anomalies, wireDetection(d))
	}
	for _, d := range res.ChangePoints {
		out.ChangePoints = append(out.ChangePoints, wireDetection(d))
	}
	if res.Sanitize != nil {
		out.Sanitize = &httpapi.SanitizeInfo{
			Policy:   res.Sanitize.Policy.String(),
			N:        res.Sanitize.N,
			NaNs:     res.Sanitize.NaNs,
			Infs:     res.Sanitize.Infs,
			Extremes: res.Sanitize.Extremes,
			Repaired: res.Sanitize.Repaired,
			Dropped:  res.Sanitize.Dropped,
			Constant: res.Sanitize.Constant,
			TooShort: res.Sanitize.TooShort,
		}
	}
	return out
}

func wireDetection(d cabd.Detection) httpapi.Detection {
	return httpapi.Detection{
		Index:      d.Index,
		Subtype:    d.Subtype.String(),
		Confidence: d.Confidence,
	}
}

// errStatus maps a detection error to its HTTP status: sanitization
// rejections are the client's fault (422), cancellations are deadline
// exhaustion (504), contained panics and everything else are 500.
func errStatus(err error) int {
	var pe *cabd.PanicError
	switch {
	case errors.Is(err, cabd.ErrEmpty), errors.Is(err, cabd.ErrTooShort),
		errors.Is(err, cabd.ErrBadValues), errors.Is(err, cabd.ErrAllBad),
		errors.Is(err, cabd.ErrRagged):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}
