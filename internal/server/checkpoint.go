package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cabd"
	"cabd/httpapi"
	"cabd/internal/ml/forest"
	"cabd/internal/obs"
	"cabd/internal/series"
)

// sessionCheckpoint is the on-disk form of one interactive session,
// written to CheckpointDir as session-<id>.json. It records the
// original request plus every label delivered so far — enough for a
// restarted server to re-run the deterministic pipeline (fixed seed,
// same label set) and converge to the same verdict without asking the
// user to repeat themselves. Terminal sessions additionally carry the
// final wire result and the serialized classifier ensemble, so the
// exact model that produced the verdict survives the restart.
type sessionCheckpoint struct {
	ID        string                  `json:"id"`
	Series    []float64               `json:"series"`
	Options   *httpapi.DetectOptions  `json:"options,omitempty"`
	AutoLabel bool                    `json:"auto_label,omitempty"`
	Truth     []string                `json:"truth,omitempty"`
	Labels    []labelRecord           `json:"labels,omitempty"`
	Queries   int                     `json:"queries"`
	State     string                  `json:"state"`
	Result    *httpapi.DetectResponse `json:"result,omitempty"`
	Error     string                  `json:"error,omitempty"`
	Model     *forest.Snapshot        `json:"model,omitempty"`
}

// labelRecord is one delivered label, in delivery order.
type labelRecord struct {
	Index int    `json:"index"`
	Label string `json:"label"`
}

// sessionCheckpointPath names the checkpoint file for a session id.
func sessionCheckpointPath(dir, id string) string {
	return filepath.Join(dir, "session-"+id+".json")
}

// atomicWriteFile writes data to path via a temp file in the same
// directory plus rename, so a crash mid-write leaves either the old
// checkpoint or the new one — never a torn file.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// checkpointSession persists the session's current checkpoint. Best
// effort: a failed write is logged, not fatal — the session keeps
// serving and the next persistence point retries.
func (s *Server) checkpointSession(sess *session) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	cp := sess.snapshotCheckpoint()
	data, err := json.Marshal(cp)
	if err != nil {
		s.logf("cabd-serve: checkpoint session %s: encode: %v", cp.ID, err)
		return
	}
	if err := atomicWriteFile(sessionCheckpointPath(s.cfg.CheckpointDir, cp.ID), data); err != nil {
		s.logf("cabd-serve: checkpoint session %s: %v", cp.ID, err)
	}
}

// dropSessionCheckpoint deletes a session's checkpoint file — the
// session ended on purpose (client cancel, idle eviction), so a restart
// must not resurrect it. Drain deliberately does NOT call this: drained
// sessions are the ones a restart resumes.
func (s *Server) dropSessionCheckpoint(id string) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	if err := os.Remove(sessionCheckpointPath(s.cfg.CheckpointDir, id)); err != nil && !os.IsNotExist(err) {
		s.logf("cabd-serve: drop checkpoint %s: %v", id, err)
	}
}

// snapshotCheckpoint copies the session into its on-disk form.
func (s *session) snapshotCheckpoint() *sessionCheckpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := &sessionCheckpoint{
		ID:        s.id,
		Series:    s.req.Series,
		Options:   s.req.Options,
		AutoLabel: s.req.AutoLabel,
		Truth:     s.req.Truth,
		Labels:    append([]labelRecord(nil), s.labels...),
		Queries:   s.queries,
		State:     s.state,
		Result:    s.result,
		Error:     s.errMsg,
		Model:     s.model,
	}
	// A parked query checkpoints as running: on restore the replayed
	// pipeline re-parks on the same uncertainty-sampled index by itself.
	if cp.State == httpapi.StateAwaitingLabel {
		cp.State = httpapi.StateRunning
	}
	return cp
}

// restore reloads every session checkpoint in dir: terminal sessions
// come back as completed records (result still fetchable), open ones
// re-run the deterministic pipeline with recorded labels replayed by
// index until it either finishes or parks on the first genuinely new
// query. The id counter resumes above the highest restored id so new
// sessions never collide with resurrected ones.
func (t *sessionTable) restore(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "session-*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	var maxID int64
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("restore %s: %w", p, err)
		}
		var cp sessionCheckpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			return fmt.Errorf("restore %s: %w", p, err)
		}
		if cp.ID == "" {
			return fmt.Errorf("restore %s: checkpoint has no session id", p)
		}
		if n, perr := strconv.ParseInt(strings.TrimPrefix(cp.ID, "s"), 10, 64); perr == nil && n > maxID {
			maxID = n
		}
		if err := t.restoreOne(&cp); err != nil {
			return fmt.Errorf("restore %s: %w", p, err)
		}
	}
	if maxID > t.next.Load() {
		t.next.Store(maxID)
	}
	return nil
}

// restoreOne rebuilds a single session from its checkpoint.
func (t *sessionTable) restoreOne(cp *sessionCheckpoint) error {
	opts, err := parseOptions(cp.Options)
	if err != nil {
		return err
	}
	req := httpapi.SessionRequest{
		Series:    cp.Series,
		Options:   cp.Options,
		AutoLabel: cp.AutoLabel,
		Truth:     cp.Truth,
	}
	switch cp.State {
	case httpapi.StateDone, httpapi.StateFailed, httpapi.StateCancelled:
		sess := t.adopt(cp.ID, req)
		sess.mu.Lock()
		sess.state = cp.State
		sess.queries = cp.Queries
		sess.result = cp.Result
		sess.errMsg = cp.Error
		sess.model = cp.Model
		sess.labels = cp.Labels
		sess.mu.Unlock()
		close(sess.done)
		return nil
	default:
		replay := make(map[int]cabd.Label, len(cp.Labels))
		for _, lr := range cp.Labels {
			lbl, err := parseLabel(lr.Label)
			if err != nil {
				return fmt.Errorf("recorded label for index %d: %w", lr.Index, err)
			}
			replay[lr.Index] = lbl
		}
		var truth []series.Label
		if cp.AutoLabel {
			truth, err = parseTruth(cp.Truth, len(cp.Series))
			if err != nil {
				return err
			}
		}
		sess := t.adopt(cp.ID, req)
		sess.mu.Lock()
		sess.labels = cp.Labels
		sess.replay = replay
		sess.mu.Unlock()

		ctx, cancel := context.WithCancel(context.Background())
		sess.cancel = cancel
		det := t.srv.detectorFor(opts)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			sess.run(ctx, det, cp.Series, truth)
		}()
		return nil
	}
}

// adopt registers a restored session shell in the table under its old
// id, bypassing the MaxSessions shed (these sessions were admitted
// before the restart; refusing them now would lose user work).
func (t *sessionTable) adopt(id string, req httpapi.SessionRequest) *session {
	sess := &session{
		id:      id,
		srv:     t.srv,
		cancel:  func() {},
		done:    make(chan struct{}),
		state:   httpapi.StateRunning,
		req:     req,
		created: t.srv.clock.Now(),
		last:    t.srv.clock.Now(),
	}
	t.mu.Lock()
	t.m[id] = sess
	t.srv.rec.SetGauge(obs.GaugeSessionsActive, int64(len(t.m)))
	t.mu.Unlock()
	return sess
}
