// Package server is the HTTP serving layer of cabd: the production
// deployment mode the paper's prototype sketches, exposed as a JSON API
// (see cabd/httpapi for the wire contract and cmd/cabd-serve for the
// binary).
//
// Three request families share one server:
//
//   - one-shot detection (POST /v1/detect, /v1/detect/batch), executed
//     on a bounded worker pool with queue-depth backpressure — a full
//     queue sheds load with 429 + Retry-After instead of queueing
//     unboundedly;
//   - streaming ingest (POST /v1/stream/{id}, NDJSON observations),
//     backed by per-id StreamDetector instances with idle eviction;
//   - interactive labeling sessions (/v1/sessions...), the paper's
//     user-driven active-learning loop over HTTP: the pipeline runs in
//     a server-side goroutine, parks on a channel-backed labeler, and
//     surfaces the uncertainty-sampled candidate it wants labeled until
//     every candidate clears the confidence γ.
//
// All time is read through the injectable obs.Clock of the server's
// recorder, so handler tests pin latencies, evictions and deadline
// degradation with a FakeClock instead of sleeping.
package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"cabd"
	"cabd/internal/obs"
)

// Config parameterizes a Server. Zero-valued fields take defaults.
type Config struct {
	// Options is the base detector configuration; per-request options
	// overlay it. Options.Obs is overwritten with the server's recorder.
	Options cabd.Options

	// Workers is the detection worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the number of detection requests parked behind
	// busy workers; a full queue sheds with 429 (default 64).
	QueueDepth int
	// MaxBodyBytes caps every request body (default 8 MiB).
	MaxBodyBytes int64

	// DefaultTimeout is the per-request detection deadline when the
	// request does not set one (default 30s). MaxTimeout clamps
	// client-supplied deadlines (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// MaxSessions / MaxStreams cap the live interactive sessions and
	// streaming detectors; at the cap, creation sheds with 429
	// (defaults 64 and 256).
	MaxSessions int
	MaxStreams  int
	// MaxStreamsPerTenant additionally caps the streams of one tenant —
	// the stream-id prefix before the first '/' ("acme/sensor-17" →
	// "acme"), or the whole id for unscoped names. Zero disables the
	// per-tenant quota.
	MaxStreamsPerTenant int
	// StreamShards is the number of stream-registry shards: stream ids
	// map onto shards by consistent hashing, and each shard runs its
	// streams on a dedicated goroutine behind a bounded mailbox (default
	// 8). StreamMailbox is that mailbox's depth (default 32); a full
	// mailbox sheds the request with 429.
	StreamShards  int
	StreamMailbox int
	// StreamEngine selects the per-hop analysis engine of streaming
	// detectors (default incremental); StreamHopTimeout bounds one
	// streaming analysis (zero: unbounded).
	StreamEngine     cabd.StreamEngine
	StreamHopTimeout time.Duration
	// SessionTTL / StreamTTL are the idle-eviction horizons: a session
	// or stream untouched for longer is reclaimed by the janitor
	// (default 10m each).
	SessionTTL time.Duration
	StreamTTL  time.Duration
	// JanitorEvery is the eviction sweep period (default 30s; negative
	// disables the background janitor — tests drive sweeps directly).
	JanitorEvery time.Duration

	// CheckpointDir, when non-empty, makes the server crash-safe: the
	// ingest store journals accepted detections there (NDJSON, replayed
	// on startup) and every interactive session checkpoints its request,
	// delivered labels and terminal result there (session-<id>.json,
	// atomic writes). New restores both on boot, so a restarted server
	// resumes active-learning sessions — the deterministic pipeline
	// replays recorded labels and converges to the same verdict — and
	// still deduplicates agent redeliveries from before the crash.
	CheckpointDir string
	// Logf receives operational log lines (evictions with session age,
	// checkpoint failures). Nil discards them.
	Logf func(format string, args ...any)

	// Recorder receives the server's metrics (request spans into the
	// http_request stage histogram, queue depth, shed/eviction/label
	// counters) on top of the detection pipeline's own instrumentation.
	// Nil installs a fresh wall-clock recorder; inject one built on an
	// obs.FakeClock to pin timings in tests.
	Recorder *obs.Recorder
	// ExpvarName, when non-empty, publishes the recorder's snapshot
	// under this name in the process-wide expvar registry (served at
	// /debug/vars). Publishing is best-effort: a duplicate name is
	// ignored so many servers can share a process.
	ExpvarName string
}

func (c Config) defaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 256
	}
	if c.StreamShards <= 0 {
		c.StreamShards = 8
	}
	if c.StreamMailbox <= 0 {
		c.StreamMailbox = 32
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.StreamTTL <= 0 {
		c.StreamTTL = 10 * time.Minute
	}
	if c.JanitorEvery == 0 {
		c.JanitorEvery = 30 * time.Second
	}
	if c.Recorder == nil {
		c.Recorder = obs.New()
	}
	return c
}

// Server is one serving instance: a worker pool, a stream table, a
// session table and the HTTP handler tree over them.
type Server struct {
	cfg   Config
	rec   *obs.Recorder
	clock obs.Clock
	pool  *pool
	mux   *http.ServeMux

	streams  *streamRegistry
	sessions *sessionTable
	ingest   *ingestStore

	mu       sync.Mutex
	draining bool

	janitorStop chan struct{}
	janitorWG   sync.WaitGroup
}

// New returns a ready-to-serve Server. With a CheckpointDir it first
// restores persisted state — the ingest journal and every checkpointed
// session — and fails rather than serve over state it could not read.
// Call Close (or Drain) when done to release the worker pool and the
// janitor.
func New(cfg Config) (*Server, error) {
	cfg = cfg.defaults()
	s := &Server{
		cfg:   cfg,
		rec:   cfg.Recorder,
		clock: cfg.Recorder.Clock(),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.rec)
	s.streams = newStreamRegistry(s)
	s.sessions = newSessionTable(s)
	ing, err := newIngestStore(cfg.CheckpointDir)
	if err != nil {
		s.streams.closeAll()
		s.pool.close()
		return nil, err
	}
	s.ingest = ing
	if cfg.CheckpointDir != "" {
		if err := s.sessions.restore(cfg.CheckpointDir); err != nil {
			s.ingest.close()
			s.streams.closeAll()
			s.pool.close()
			return nil, err
		}
	}
	s.mux = s.routes()
	if cfg.ExpvarName != "" {
		// Best effort: a second server reusing the name keeps serving,
		// just without its own expvar entry.
		_ = s.rec.PublishExpvar(cfg.ExpvarName)
	}
	if cfg.JanitorEvery > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorWG.Add(1)
		go s.janitor(cfg.JanitorEvery)
	}
	return s, nil
}

// logf forwards to the configured operational logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Recorder returns the server's metrics recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Handler returns the server's HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// routes builds the endpoint table. Every handler runs behind wrap
// (request counter, latency span, panic containment).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", s.wrap(s.handleDetect))
	mux.HandleFunc("POST /v1/detect/batch", s.wrap(s.handleDetectBatch))
	mux.HandleFunc("POST /v1/detect/multi", s.wrap(s.handleDetectMulti))
	mux.HandleFunc("POST /v1/stream/{id}", s.wrap(s.handleStreamPush))
	mux.HandleFunc("DELETE /v1/stream/{id}", s.wrap(s.handleStreamClose))
	mux.HandleFunc("POST /v1/sessions", s.wrap(s.handleSessionCreate))
	mux.HandleFunc("GET /v1/sessions", s.wrap(s.handleSessionList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.wrap(s.handleSessionGet))
	mux.HandleFunc("GET /v1/sessions/{id}/pending", s.wrap(s.handleSessionPending))
	mux.HandleFunc("POST /v1/sessions/{id}/labels", s.wrap(s.handleSessionLabel))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.wrap(s.handleSessionCancel))
	mux.HandleFunc("POST /v1/ingest", s.wrap(s.handleIngest))
	mux.HandleFunc("GET /v1/ingest", s.wrap(s.handleIngestStats))
	mux.HandleFunc("GET /healthz", s.wrap(s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.wrap(s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.wrap(s.handleMetrics))
	mux.Handle("GET /debug/vars", http.DefaultServeMux)
	return mux
}

// Draining reports whether the server has begun shutting down; /readyz
// answers 503 and new work is refused while it is set.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) setDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain gracefully shuts the server down: mark not-ready, cancel every
// live session, flush-close every stream, stop the janitor, and wait —
// bounded by ctx — for the worker pool and session goroutines to
// finish. The HTTP listener must already have stopped accepting (e.g.
// http.Server.Shutdown) so no new work races the drain.
func (s *Server) Drain(ctx context.Context) error {
	s.setDraining()
	if s.janitorStop != nil {
		close(s.janitorStop)
		s.janitorWG.Wait()
		s.janitorStop = nil
	}
	s.sessions.cancelAll()
	s.streams.closeAll()
	done := make(chan struct{})
	go func() {
		s.sessions.wait()
		s.pool.close()
		s.ingest.close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Drain with no deadline, for tests and defer.
func (s *Server) Close() { _ = s.Drain(context.Background()) }

// janitor periodically evicts idle streams and sessions. The ticker's
// period is wall time (a janitor owns its cadence like a main package
// owns its process), but idleness itself is judged against the
// injectable clock, so eviction tests advance a FakeClock and call
// sweep directly instead of sleeping.
func (s *Server) janitor(every time.Duration) {
	defer s.janitorWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sweep()
		case <-s.janitorStop:
			return
		}
	}
}

// sweep evicts every stream and session idle past its TTL.
func (s *Server) sweep() {
	now := s.clock.Now()
	s.streams.evictIdle(now, s.cfg.StreamTTL)
	s.sessions.evictIdle(now, s.cfg.SessionTTL)
}

// optionsFor resolves the per-request option set: base options overlaid
// with the request's DetectOptions, recorder always attached.
func (s *Server) optionsFor(o *detectOptions) cabd.Options {
	opts := s.cfg.Options
	opts.Obs = s.rec
	if o != nil {
		if o.hasSanitize {
			opts.Sanitize = o.sanitize
		}
		if o.hasStrategy {
			opts.Strategy = o.strategy
		}
		if o.confidence > 0 {
			opts.Confidence = o.confidence
		}
		if o.maxQueries > 0 {
			opts.MaxQueries = o.maxQueries
		}
		if o.seed != 0 {
			opts.Seed = o.seed
		}
	}
	return opts
}

// detectorFor builds the per-request univariate detector.
func (s *Server) detectorFor(o *detectOptions) *cabd.Detector {
	return cabd.New(s.optionsFor(o))
}

// multiDetectorFor builds the per-request multivariate detector.
func (s *Server) multiDetectorFor(o *detectOptions) *cabd.MultiDetector {
	return cabd.NewMulti(s.optionsFor(o))
}

// requestContext derives the detection context: the request deadline is
// computed on the server's clock (so FakeClock tests steer the
// detector's deadline-degradation pilot deterministically) and clamped
// to MaxTimeout.
func (s *Server) requestContext(r *http.Request, o *detectOptions) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if o != nil && o.timeout > 0 {
		timeout = o.timeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return context.WithDeadline(r.Context(), s.clock.Now().Add(timeout))
}
