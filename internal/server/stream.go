package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"cabd"
	"cabd/httpapi"
)

// streamObservation is one NDJSON ingest line: either a bare number or
// {"v": number}.
type streamObservation struct {
	V *float64 `json:"v"`
}

// handleStreamPush ingests NDJSON observations into the stream named by
// the path id, creating it on first use, and answers with the
// detections confirmed during this request. The body is parsed as a
// sequence of JSON values (newline-delimited or whitespace-separated),
// capped by MaxBytesReader; parsing happens on the request goroutine so
// only the detector work crosses into the owning shard.
func (s *Server) handleStreamPush(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	id := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	dec := json.NewDecoder(body)
	var values []float64
	for line := 0; ; line++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("observation %d: invalid JSON: %v", line, err))
			return
		}
		v, err := parseObservation(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("observation %d: %v", line, err))
			return
		}
		values = append(values, v)
	}

	res, err := s.streams.push(id, values, s.clock.Now())
	if err != nil {
		s.writeStreamError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, httpapi.StreamIngestResponse{
		ID:         id,
		Accepted:   res.accepted,
		Total:      res.total,
		Bad:        res.bad,
		Detections: wireStreamDetections(res.dets),
	})
}

// handleStreamClose flushes the stream (final analysis with no trailing
// margin), returns the remaining detections and evicts it.
func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.streams.close(id)
	if err != nil {
		if errors.Is(err, errStreamNotFound) {
			s.writeError(w, http.StatusNotFound, fmt.Sprintf("stream %q not found", id))
			return
		}
		s.writeStreamError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, httpapi.StreamIngestResponse{
		ID:         id,
		Total:      res.total,
		Bad:        res.bad,
		Detections: wireStreamDetections(res.dets),
		Flushed:    true,
	})
}

// writeStreamError maps registry errors to HTTP: capacity and mailbox
// saturation shed with 429, a stopped shard means the server is
// draining, anything else (a contained shard panic) is a 500.
func (s *Server) writeStreamError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errStreamsFull), errors.Is(err, errStreamMailboxFull),
		errors.Is(err, errTenantQuota):
		s.writeShed(w, err.Error())
	case errors.Is(err, errShardStopped):
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		s.writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// parseObservation accepts a bare JSON number or {"v": number}.
func parseObservation(raw json.RawMessage) (float64, error) {
	var v float64
	if err := json.Unmarshal(raw, &v); err == nil {
		return v, nil
	}
	var obj streamObservation
	if err := json.Unmarshal(raw, &obj); err != nil || obj.V == nil {
		return 0, fmt.Errorf("want a number or {\"v\": number}, got %s", raw)
	}
	return *obj.V, nil
}

func wireStreamDetections(dets []cabd.StreamDetection) []httpapi.Detection {
	out := make([]httpapi.Detection, 0, len(dets))
	for _, d := range dets {
		out = append(out, httpapi.Detection{
			Index:      d.Index,
			Subtype:    d.Subtype.String(),
			Confidence: d.Confidence,
			Degraded:   d.Degraded,
		})
	}
	return out
}
