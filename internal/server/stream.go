package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"cabd"
	"cabd/httpapi"
	"cabd/internal/obs"
)

// streamEntry is one live streaming detector. Its mutex serializes
// pushes (cabd.StreamDetector is not safe for concurrent use); the
// table's mutex only guards the map.
type streamEntry struct {
	id      string
	srv     *Server
	created time.Time

	mu   sync.Mutex
	det  *cabd.StreamDetector
	last time.Time
}

// streamTable holds the live streams keyed by caller-chosen id.
type streamTable struct {
	srv *Server
	mu  sync.Mutex
	m   map[string]*streamEntry
}

func newStreamTable(s *Server) *streamTable {
	return &streamTable{srv: s, m: map[string]*streamEntry{}}
}

// errStreamsFull sheds stream creation at the cap.
var errStreamsFull = errors.New("server saturated: stream cap reached")

// getOrCreate returns the stream for id, creating it on first use.
func (t *streamTable) getOrCreate(id string) (*streamEntry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[id]; ok {
		return e, nil
	}
	if len(t.m) >= t.srv.cfg.MaxStreams {
		t.srv.rec.Add(obs.CounterHTTPShed, 1)
		return nil, errStreamsFull
	}
	opts := t.srv.cfg.Options
	opts.Obs = t.srv.rec
	e := &streamEntry{
		id:      id,
		srv:     t.srv,
		created: t.srv.clock.Now(),
		det:     cabd.NewStream(cabd.StreamConfig{BadValue: opts.Sanitize, Options: opts}),
		last:    t.srv.clock.Now(),
	}
	t.m[id] = e
	t.srv.rec.SetGauge(obs.GaugeStreamsActive, int64(len(t.m)))
	return e, nil
}

// lookup returns the stream for id, or nil.
func (t *streamTable) lookup(id string) *streamEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

// remove drops id from the table.
func (t *streamTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, id)
	t.srv.rec.SetGauge(obs.GaugeStreamsActive, int64(len(t.m)))
}

// evictIdle reclaims streams idle past ttl, in deterministic id order.
func (t *streamTable) evictIdle(now time.Time, ttl time.Duration) {
	t.mu.Lock()
	var expired []*streamEntry
	for _, e := range t.m {
		e.mu.Lock()
		idle := now.Sub(e.last) > ttl
		e.mu.Unlock()
		if idle {
			expired = append(expired, e)
		}
	}
	sort.Slice(expired, func(a, b int) bool { return expired[a].id < expired[b].id })
	for _, e := range expired {
		delete(t.m, e.id)
		t.srv.rec.Add(obs.CounterIdleEvictions, 1)
	}
	t.srv.rec.SetGauge(obs.GaugeStreamsActive, int64(len(t.m)))
	t.mu.Unlock()
	for _, e := range expired {
		e.mu.Lock()
		idleFor := now.Sub(e.last)
		e.mu.Unlock()
		t.srv.logf("cabd-serve: stream %s evicted after idle timeout (age %s, idle %s)",
			e.id, now.Sub(e.created), idleFor)
	}
}

// closeAll empties the table (drain path; in-flight pushes finish on
// their own entry references).
func (t *streamTable) closeAll() {
	t.mu.Lock()
	t.m = map[string]*streamEntry{}
	t.srv.rec.SetGauge(obs.GaugeStreamsActive, 0)
	t.mu.Unlock()
}

// streamObservation is one NDJSON ingest line: either a bare number or
// {"v": number}.
type streamObservation struct {
	V *float64 `json:"v"`
}

// handleStreamPush ingests NDJSON observations into the stream named by
// the path id, creating it on first use, and answers with the
// detections confirmed during this request. The body is parsed as a
// sequence of JSON values (newline-delimited or whitespace-separated),
// capped by MaxBytesReader.
func (s *Server) handleStreamPush(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	id := r.PathValue("id")
	e, err := s.streams.getOrCreate(id)
	if err != nil {
		s.writeShed(w, err.Error())
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	dec := json.NewDecoder(body)
	var values []float64
	for line := 0; ; line++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("observation %d: invalid JSON: %v", line, err))
			return
		}
		v, err := parseObservation(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("observation %d: %v", line, err))
			return
		}
		values = append(values, v)
	}

	e.mu.Lock()
	var dets []cabd.StreamDetection
	for _, v := range values {
		dets = append(dets, e.det.Push(v)...)
	}
	e.last = s.clock.Now()
	total, bad := e.det.Total(), e.det.Bad()
	e.mu.Unlock()

	s.writeJSON(w, http.StatusOK, httpapi.StreamIngestResponse{
		ID:         id,
		Accepted:   len(values),
		Total:      total,
		Bad:        bad,
		Detections: wireStreamDetections(dets),
	})
}

// handleStreamClose flushes the stream (final analysis with no trailing
// margin), returns the remaining detections and evicts it.
func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e := s.streams.lookup(id)
	if e == nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("stream %q not found", id))
		return
	}
	s.streams.remove(id)
	e.mu.Lock()
	dets := e.det.Flush()
	total, bad := e.det.Total(), e.det.Bad()
	e.mu.Unlock()
	s.writeJSON(w, http.StatusOK, httpapi.StreamIngestResponse{
		ID:         id,
		Total:      total,
		Bad:        bad,
		Detections: wireStreamDetections(dets),
		Flushed:    true,
	})
}

// parseObservation accepts a bare JSON number or {"v": number}.
func parseObservation(raw json.RawMessage) (float64, error) {
	var v float64
	if err := json.Unmarshal(raw, &v); err == nil {
		return v, nil
	}
	var obj streamObservation
	if err := json.Unmarshal(raw, &obj); err != nil || obj.V == nil {
		return 0, fmt.Errorf("want a number or {\"v\": number}, got %s", raw)
	}
	return *obj.V, nil
}

func wireStreamDetections(dets []cabd.StreamDetection) []httpapi.Detection {
	out := make([]httpapi.Detection, 0, len(dets))
	for _, d := range dets {
		out = append(out, httpapi.Detection{
			Index:      d.Index,
			Subtype:    d.Subtype.String(),
			Confidence: d.Confidence,
		})
	}
	return out
}
