package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"cabd/httpapi"
	"cabd/internal/obs"
)

// ingestStore holds every detection forwarded by collector agents
// (POST /v1/ingest), deduplicated by idempotency key — the server half
// of the at-least-once contract: agents may redeliver after crashes,
// ambiguous failures and spill-buffer replays, and the store counts
// each unique detection exactly once.
//
// With a checkpoint directory configured the store is durable: accepted
// detections append to an NDJSON journal that is replayed on startup,
// so a restart loses nothing and still recognizes redeliveries from
// before the crash.
type ingestStore struct {
	mu       sync.Mutex
	seen     map[string]struct{}
	byStream map[string]int64
	byAgent  map[string]int64
	total    int64
	dups     int64
	journal  *os.File // nil when checkpointing is disabled
}

// ingestJournalName is the journal file under Config.CheckpointDir.
const ingestJournalName = "ingest.ndjson"

// journalEntry is one journal line: the wire detection plus its agent.
type journalEntry struct {
	Agent string `json:"agent,omitempty"`
	httpapi.ForwardedDetection
}

// newIngestStore builds the store, replaying the journal when dir is
// non-empty. Replay errors are fatal to New — serving with silently
// truncated loss accounting would defeat the store's purpose — except
// for a trailing partial line, the expected shape of a crash mid-write,
// which is dropped (its batch was never acknowledged, so the agent will
// redeliver it).
func newIngestStore(dir string) (*ingestStore, error) {
	st := &ingestStore{
		seen:     map[string]struct{}{},
		byStream: map[string]int64{},
		byAgent:  map[string]int64{},
	}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest journal dir: %w", err)
	}
	path := filepath.Join(dir, ingestJournalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest journal: %w", err)
	}
	if err := st.replay(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("ingest journal %s: %w", path, err)
	}
	// Append past the last complete line (replay truncated any partial
	// tail).
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("ingest journal %s: %w", path, err)
	}
	st.journal = f
	return st, nil
}

// replay loads the journal into the dedup index, truncating a partial
// trailing line left by a crash mid-append.
func (st *ingestStore) replay(f *os.File) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var complete int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			complete += 1
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A malformed line can only be the torn tail of a crashed
			// append; anything before it parsed cleanly. Truncate here
			// and move on — the unacknowledged batch will be redelivered.
			break
		}
		if e.Key != "" {
			if _, dup := st.seen[e.Key]; !dup {
				st.seen[e.Key] = struct{}{}
				st.byStream[e.Stream]++
				st.byAgent[e.Agent]++
				st.total++
			}
		}
		complete += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return err
	}
	return f.Truncate(complete)
}

// add records a forwarded batch, returning the accepted/duplicate
// split. Journal appends are synced before acknowledging, so an
// acknowledged detection survives a crash.
func (st *ingestStore) add(agent string, dets []httpapi.ForwardedDetection) (accepted, dups int, total int64, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var buf []byte
	fresh := make([]httpapi.ForwardedDetection, 0, len(dets))
	for _, d := range dets {
		if _, dup := st.seen[d.Key]; dup {
			dups++
			continue
		}
		line, merr := json.Marshal(journalEntry{Agent: agent, ForwardedDetection: d})
		if merr != nil {
			return 0, 0, st.total, fmt.Errorf("encode journal entry: %w", merr)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		fresh = append(fresh, d)
	}
	if st.journal != nil && len(buf) > 0 {
		if _, werr := st.journal.Write(buf); werr != nil {
			return 0, 0, st.total, fmt.Errorf("append journal: %w", werr)
		}
		if serr := st.journal.Sync(); serr != nil {
			return 0, 0, st.total, fmt.Errorf("sync journal: %w", serr)
		}
	}
	// Index only after the journal write stuck: an acknowledged key must
	// be durable, an unacknowledged one must stay redeliverable.
	for _, d := range fresh {
		st.seen[d.Key] = struct{}{}
		st.byStream[d.Stream]++
		st.byAgent[agent]++
		st.total++
		accepted++
	}
	st.dups += int64(dups)
	return accepted, dups, st.total, nil
}

// stats snapshots the store for GET /v1/ingest.
func (st *ingestStore) stats() httpapi.IngestStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := httpapi.IngestStats{Total: st.total, Duplicates: st.dups}
	if len(st.byStream) > 0 {
		out.ByStream = make(map[string]int64, len(st.byStream))
		for k, v := range st.byStream {
			out.ByStream[k] = v
		}
	}
	if len(st.byAgent) > 0 {
		out.ByAgent = make(map[string]int64, len(st.byAgent))
		for k, v := range st.byAgent {
			out.ByAgent[k] = v
		}
	}
	return out
}

// close releases the journal handle (drain path).
func (st *ingestStore) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal != nil {
		_ = st.journal.Sync()
		_ = st.journal.Close()
		st.journal = nil
	}
}

// handleIngest accepts one forwarded batch from a collector agent.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req httpapi.IngestRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	for i, d := range req.Detections {
		if d.Key == "" {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("detections[%d] is missing its idempotency key", i))
			return
		}
	}
	accepted, dups, total, err := s.ingest.add(req.Agent, req.Detections)
	if err != nil {
		// Journal write failure: the batch is not durable, so refuse it
		// retryably rather than acknowledging possible loss.
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.rec.Add(obs.CounterIngestAccepted, int64(accepted))
	s.rec.Add(obs.CounterIngestDuplicates, int64(dups))
	s.writeJSON(w, http.StatusOK, httpapi.IngestResponse{
		Accepted: accepted, Duplicates: dups, Total: total,
	})
}

// handleIngestStats serves the loss-accounting view.
func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.ingest.stats())
}
