package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"cabd"
	"cabd/internal/obs"
)

// The sharded stream registry. The old streamTable serialized every
// stream operation behind one table mutex plus one mutex per entry —
// under many concurrent streams the table lock was the bottleneck and a
// slow push held an entry lock across a full analysis. Here stream IDs
// map onto a fixed set of shards through a consistent-hash ring; each
// shard owns its streams outright and runs them on a dedicated goroutine
// fed by a bounded mailbox. No entry is ever locked: mutual exclusion is
// ownership. A full mailbox sheds the request with 429 instead of
// queueing unboundedly, matching the worker pool's admission discipline.
var (
	errStreamsFull       = errors.New("server saturated: stream cap reached")
	errStreamMailboxFull = errors.New("server saturated: stream shard mailbox full")
	errTenantQuota       = errors.New("tenant stream quota reached")
	errShardStopped      = errors.New("stream shard stopped")
)

// streamEntry is one live streaming detector, owned exclusively by its
// shard's goroutine — no mutex, by construction.
type streamEntry struct {
	id      string
	tenant  string
	created time.Time
	last    time.Time
	det     *cabd.StreamDetector
}

// shardCall is one unit of mailbox work. The shard goroutine runs fn and
// closes done; a panic inside fn is contained per call (the shard and
// its other streams survive) and surfaces through *pe.
type shardCall struct {
	fn   func(*streamShard)
	done chan struct{}
	pe   **cabd.PanicError
}

// streamShard owns a partition of the stream space.
type streamShard struct {
	idx     int
	reg     *streamRegistry
	mailbox chan shardCall
	stop    chan struct{} // closed by the registry to end the goroutine
	dead    chan struct{} // closed by the goroutine once it exits
	streams map[string]*streamEntry
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	h     uint32
	shard int
}

// ringVnodes is the virtual-node multiplicity per shard — enough to
// spread IDs evenly at small shard counts.
const ringVnodes = 64

// streamRegistry is the sharded stream table.
type streamRegistry struct {
	srv    *Server
	shards []*streamShard
	ring   []ringPoint
	wg     sync.WaitGroup

	// Capacity accounting is global (the caps are server-wide), so it
	// lives outside the shards under its own mutex. Shards only touch it
	// on create/remove, never per observation.
	quotaMu sync.Mutex
	total   int
	tenants map[string]int

	stopOnce sync.Once
}

func newStreamRegistry(s *Server) *streamRegistry {
	r := &streamRegistry{srv: s, tenants: map[string]int{}}
	n := s.cfg.StreamShards
	for i := 0; i < n; i++ {
		sh := &streamShard{
			idx:     i,
			reg:     r,
			mailbox: make(chan shardCall, s.cfg.StreamMailbox),
			stop:    make(chan struct{}),
			dead:    make(chan struct{}),
			streams: map[string]*streamEntry{},
		}
		r.shards = append(r.shards, sh)
		for v := 0; v < ringVnodes; v++ {
			r.ring = append(r.ring, ringPoint{hashID(fmt.Sprintf("shard-%d-vnode-%d", i, v)), i})
		}
		r.wg.Add(1)
		go sh.loop()
	}
	sort.Slice(r.ring, func(a, b int) bool {
		if r.ring[a].h != r.ring[b].h {
			return r.ring[a].h < r.ring[b].h
		}
		return r.ring[a].shard < r.ring[b].shard
	})
	return r
}

func hashID(id string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return h.Sum32()
}

// shardFor maps a stream ID onto the ring: the first virtual node at or
// clockwise-after the ID's hash owns it.
func (r *streamRegistry) shardFor(id string) *streamShard {
	h := hashID(id)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].h >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.shards[r.ring[i].shard]
}

// tenantOf derives the quota key: the ID prefix before the first '/'
// ("acme/sensor-17" → "acme"), or the whole ID for unscoped names.
func tenantOf(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '/' {
			return id[:i]
		}
	}
	return id
}

// loop is the shard goroutine: it services mailbox calls until stopped,
// then drains what was already admitted so no caller is left waiting.
func (sh *streamShard) loop() {
	defer sh.reg.wg.Done()
	defer close(sh.dead)
	for {
		select {
		case c := <-sh.mailbox:
			sh.handle(c)
		case <-sh.stop:
			for {
				select {
				case c := <-sh.mailbox:
					sh.handle(c)
				default:
					return
				}
			}
		}
	}
}

// handle runs one call with per-call panic containment: a crashing
// detector poisons its own call, not the shard or its other streams.
func (sh *streamShard) handle(c shardCall) {
	defer close(c.done)
	defer func() {
		if p := recover(); p != nil {
			sh.reg.srv.rec.Add(obs.CounterPanicsContained, 1)
			*c.pe = &cabd.PanicError{Series: -1, Value: p, Stack: debug.Stack()}
		}
	}()
	c.fn(sh)
}

// submit parks fn in the shard's mailbox and waits for it to run.
// blocking selects admission semantics: handlers use false (full mailbox
// sheds immediately), registry-internal sweeps use true (they must not
// be starved by a busy mailbox, and the consumer is guaranteed live
// until the registry stops).
func (sh *streamShard) submit(fn func(*streamShard), blocking bool) error {
	var pe *cabd.PanicError
	c := shardCall{fn: fn, done: make(chan struct{}), pe: &pe}
	if blocking {
		select {
		case sh.mailbox <- c:
		case <-sh.dead:
			return errShardStopped
		}
	} else {
		select {
		case sh.mailbox <- c:
		default:
			sh.reg.srv.rec.Add(obs.CounterHTTPShed, 1)
			return errStreamMailboxFull
		}
	}
	select {
	case <-c.done:
	case <-sh.dead:
		// The shard exited; its drain pass services everything already
		// admitted, so done is either closed or never will be.
		select {
		case <-c.done:
		default:
			return errShardStopped
		}
	}
	if pe != nil {
		return pe
	}
	return nil
}

// reserve claims one stream slot for tenant against the global and
// per-tenant caps.
func (r *streamRegistry) reserve(tenant string) error {
	r.quotaMu.Lock()
	defer r.quotaMu.Unlock()
	if r.total >= r.srv.cfg.MaxStreams {
		return errStreamsFull
	}
	if q := r.srv.cfg.MaxStreamsPerTenant; q > 0 && r.tenants[tenant] >= q {
		return fmt.Errorf("%w: tenant %q at %d streams", errTenantQuota, tenant, q)
	}
	r.total++
	r.tenants[tenant]++
	r.srv.rec.SetGauge(obs.GaugeStreamsActive, int64(r.total))
	return nil
}

// release returns count slots for tenant.
func (r *streamRegistry) release(tenant string, count int) {
	if count == 0 {
		return
	}
	r.quotaMu.Lock()
	defer r.quotaMu.Unlock()
	r.total -= count
	if r.tenants[tenant] -= count; r.tenants[tenant] <= 0 {
		delete(r.tenants, tenant)
	}
	r.srv.rec.SetGauge(obs.GaugeStreamsActive, int64(r.total))
}

// pushResult is the outcome of one ingest batch.
type pushResult struct {
	accepted   int
	total, bad int
	dets       []cabd.StreamDetection
}

// push feeds values into stream id (creating it on first use) on the
// owning shard.
func (r *streamRegistry) push(id string, values []float64, now time.Time) (pushResult, error) {
	var out pushResult
	var failed error
	err := r.shardFor(id).submit(func(sh *streamShard) {
		e := sh.streams[id]
		if e == nil {
			tenant := tenantOf(id)
			if err := r.reserve(tenant); err != nil {
				// Both capacity refusals answer 429, so both count as sheds.
				if errors.Is(err, errStreamsFull) || errors.Is(err, errTenantQuota) {
					r.srv.rec.Add(obs.CounterHTTPShed, 1)
				}
				failed = err
				return
			}
			opts := r.srv.cfg.Options
			opts.Obs = r.srv.rec
			e = &streamEntry{
				id:      id,
				tenant:  tenant,
				created: now,
				det: cabd.NewStream(cabd.StreamConfig{
					BadValue:   opts.Sanitize,
					Engine:     r.srv.cfg.StreamEngine,
					HopTimeout: r.srv.cfg.StreamHopTimeout,
					Options:    opts,
				}),
			}
			sh.streams[id] = e
		}
		for _, v := range values {
			out.dets = append(out.dets, e.det.Push(v)...)
		}
		e.last = now
		out.accepted = len(values)
		out.total, out.bad = e.det.Total(), e.det.Bad()
	}, false)
	if err != nil {
		return out, err
	}
	return out, failed
}

// errStreamNotFound distinguishes a missing stream from shed/stop.
var errStreamNotFound = errors.New("stream not found")

// close flushes stream id (final analysis, no trailing margin), removes
// it and returns the tail detections.
func (r *streamRegistry) close(id string) (pushResult, error) {
	var out pushResult
	var failed error
	err := r.shardFor(id).submit(func(sh *streamShard) {
		e := sh.streams[id]
		if e == nil {
			failed = errStreamNotFound
			return
		}
		delete(sh.streams, id)
		r.release(e.tenant, 1)
		out.dets = e.det.Flush()
		out.total, out.bad = e.det.Total(), e.det.Bad()
	}, false)
	if err != nil {
		return out, err
	}
	return out, failed
}

// evictIdle reclaims streams idle past ttl. Shards sweep in index order
// and evictions inside a shard run in id order, so logs and counters are
// deterministic for a given state.
func (r *streamRegistry) evictIdle(now time.Time, ttl time.Duration) {
	for _, sh := range r.shards {
		_ = sh.submit(func(sh *streamShard) {
			var expired []*streamEntry
			for _, e := range sh.streams {
				if now.Sub(e.last) > ttl {
					expired = append(expired, e)
				}
			}
			sort.Slice(expired, func(a, b int) bool { return expired[a].id < expired[b].id })
			for _, e := range expired {
				delete(sh.streams, e.id)
				r.release(e.tenant, 1)
				r.srv.rec.Add(obs.CounterIdleEvictions, 1)
				r.srv.logf("cabd-serve: stream %s evicted after idle timeout (age %s, idle %s)",
					e.id, now.Sub(e.created), now.Sub(e.last))
			}
		}, true)
	}
}

// closeAll empties every shard and stops the shard goroutines (drain
// path). The registry is unusable afterwards.
func (r *streamRegistry) closeAll() {
	for _, sh := range r.shards {
		_ = sh.submit(func(sh *streamShard) {
			var ids []string
			for id := range sh.streams {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				r.release(sh.streams[id].tenant, 1)
			}
			sh.streams = map[string]*streamEntry{}
		}, true)
	}
	// Idempotent: a deferred Close after an explicit Drain re-runs the
	// (now trivially empty) clearing pass but stops the shards once.
	r.stopOnce.Do(func() {
		for _, sh := range r.shards {
			close(sh.stop)
		}
		r.wg.Wait()
	})
	r.srv.rec.SetGauge(obs.GaugeStreamsActive, 0)
}
