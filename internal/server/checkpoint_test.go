package server_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cabd/httpapi"
	"cabd/internal/obs"
	"cabd/internal/server"
	"cabd/internal/synth"
)

// ingestBatch builds n forwarded detections for one agent/stream pair.
func ingestBatch(agent, stream string, n, from int) httpapi.IngestRequest {
	req := httpapi.IngestRequest{Agent: agent}
	for i := 0; i < n; i++ {
		idx := from + i
		req.Detections = append(req.Detections, httpapi.ForwardedDetection{
			Key:        fmt.Sprintf("%s/%s/%d", agent, stream, idx),
			Stream:     stream,
			Index:      idx,
			Subtype:    httpapi.LabelSingleAnomaly,
			Confidence: 0.9,
		})
	}
	return req
}

// TestIngestDedupAcrossRestart is the server half of the at-least-once
// contract: duplicates are absorbed within a run AND across a restart
// replaying the NDJSON journal, so an agent may redeliver freely
// without ever double counting a detection.
func TestIngestDedupAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv, _, cl := newTestServer(t, server.Config{CheckpointDir: dir})
	batch := ingestBatch("a1", "cpu", 5, 0)
	resp, err := cl.Ingest(ctx, batch)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if resp.Accepted != 5 || resp.Duplicates != 0 || resp.Total != 5 {
		t.Fatalf("first batch: %+v, want 5 accepted / 0 dup / total 5", resp)
	}
	// Full redelivery of an acknowledged batch: all duplicates.
	resp, err = cl.Ingest(ctx, batch)
	if err != nil {
		t.Fatalf("redeliver: %v", err)
	}
	if resp.Accepted != 0 || resp.Duplicates != 5 || resp.Total != 5 {
		t.Fatalf("redelivery: %+v, want 0 accepted / 5 dup / total 5", resp)
	}
	srv.Close()

	// Restart on the same directory, with a torn tail appended to the
	// journal — the shape a crash mid-append leaves behind.
	jp := filepath.Join(dir, "ingest.ndjson")
	f, err := os.OpenFile(jp, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn/cpu/99","str`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, cl2 := newTestServer(t, server.Config{CheckpointDir: dir})
	resp, err = cl2.Ingest(ctx, batch)
	if err != nil {
		t.Fatalf("ingest after restart: %v", err)
	}
	if resp.Accepted != 0 || resp.Duplicates != 5 || resp.Total != 5 {
		t.Fatalf("post-restart redelivery: %+v, want 0 accepted / 5 dup / total 5", resp)
	}
	// The torn key was never acknowledged, so its redelivery is fresh.
	resp, err = cl2.Ingest(ctx, httpapi.IngestRequest{Agent: "torn", Detections: []httpapi.ForwardedDetection{
		{Key: "torn/cpu/99", Stream: "cpu", Index: 99, Subtype: httpapi.LabelSingleAnomaly, Confidence: 0.5},
	}})
	if err != nil {
		t.Fatalf("redeliver torn detection: %v", err)
	}
	if resp.Accepted != 1 || resp.Total != 6 {
		t.Fatalf("torn redelivery: %+v, want 1 accepted / total 6", resp)
	}

	stats, err := cl2.IngestStats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Total != 6 || stats.ByStream["cpu"] != 6 {
		t.Fatalf("stats after restart: %+v, want total 6 all on cpu", stats)
	}
	if stats.ByAgent["a1"] != 5 || stats.ByAgent["torn"] != 1 {
		t.Fatalf("per-agent stats: %+v", stats.ByAgent)
	}
}

// TestIngestValidation: a detection without its idempotency key is a
// client error — accepting it would make dedup meaningless.
func TestIngestValidation(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	_, err := cl.Ingest(context.Background(), httpapi.IngestRequest{
		Agent:      "a1",
		Detections: []httpapi.ForwardedDetection{{Stream: "cpu", Index: 3}},
	})
	serr, ok := err.(*httpapi.StatusError)
	if !ok || serr.Status != 400 {
		t.Fatalf("keyless detection: %v, want HTTP 400", err)
	}
}

// TestSessionCrashRecoveryConvergence is the restart contract for the
// interactive loop: kill the server mid-session (after some labels),
// boot a fresh one on the same checkpoint directory, and the restored
// session — replaying the recorded labels through the deterministic
// pipeline — converges to exactly the verdict of an uninterrupted run.
// FakeClock recorders make the runs time-invariant, so the comparison
// is exact (stage timings included).
func TestSessionCrashRecoveryConvergence(t *testing.T) {
	s := synth.YahooLike(11, 400)
	req := httpapi.SessionRequest{
		Series:  s.Values,
		Options: &httpapi.DetectOptions{Confidence: 0.85, Seed: 7},
	}
	answer := func(index int) string { return s.Labels[index].String() }
	ctx := context.Background()

	// Uninterrupted baseline.
	_, _, blCl := newTestServer(t, server.Config{
		Recorder: obs.NewWithClock(obs.NewFakeClock(time.Time{})),
	})
	baseline, err := blCl.RunSession(ctx, req, func(index int, _ float64) string {
		return answer(index)
	}, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("baseline RunSession: %v", err)
	}
	if baseline.State != httpapi.StateDone {
		t.Fatalf("baseline state %q (error %q)", baseline.State, baseline.Error)
	}
	if baseline.Queries < 3 {
		t.Fatalf("baseline converged after %d queries; the crash test needs at least 3", baseline.Queries)
	}

	// Interrupted run: answer exactly 2 labels, then drain ("crash").
	// Drain keeps checkpoint files — that is the point.
	dir := t.TempDir()
	srv1, ts1, cl1 := newTestServer(t, server.Config{
		CheckpointDir: dir,
		Recorder:      obs.NewWithClock(obs.NewFakeClock(time.Time{})),
	})
	st, err := cl1.CreateSession(ctx, req)
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	id := st.ID
	for answered := 0; answered < 2; {
		st, err = cl1.Pending(ctx, id)
		if err != nil {
			t.Fatalf("pending: %v", err)
		}
		if st.State != httpapi.StateAwaitingLabel {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if _, err := cl1.PostLabel(ctx, id, st.Pending.Index, answer(st.Pending.Index)); err != nil {
			t.Fatalf("label %d: %v", st.Pending.Index, err)
		}
		answered++
	}
	ts1.Close()
	srv1.Close()

	// Restart on the same directory and finish the session under its
	// original id.
	_, _, cl2 := newTestServer(t, server.Config{
		CheckpointDir: dir,
		Recorder:      obs.NewWithClock(obs.NewFakeClock(time.Time{})),
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("restored session did not converge in time")
		}
		st, err = cl2.Session(ctx, id)
		if err != nil {
			t.Fatalf("restored session lookup: %v", err)
		}
		if st.State == httpapi.StateDone {
			break
		}
		if st.State == httpapi.StateFailed || st.State == httpapi.StateCancelled {
			t.Fatalf("restored session ended %q: %s", st.State, st.Error)
		}
		if st.State == httpapi.StateAwaitingLabel && st.Pending != nil {
			if _, err := cl2.PostLabel(ctx, id, st.Pending.Index, answer(st.Pending.Index)); err != nil {
				t.Fatalf("label %d after restart: %v", st.Pending.Index, err)
			}
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}

	if st.Queries != baseline.Queries {
		t.Fatalf("restored session used %d queries, baseline %d", st.Queries, baseline.Queries)
	}
	if !reflect.DeepEqual(st.Result, baseline.Result) {
		t.Fatalf("restored verdict diverged from the uninterrupted run:\ngot  %+v\nwant %+v", st.Result, baseline.Result)
	}
}

// TestSessionCheckpointLifecycle pins when checkpoint files exist: a
// live session has one, a completed auto-label session keeps one (with
// result and model), a client cancel drops it, and a restart resurrects
// the terminal record without colliding with new session ids.
func TestSessionCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := synth.YahooLike(3, 300)
	truth := make([]string, s.Len())
	for i, l := range s.Labels {
		truth[i] = l.String()
	}
	req := httpapi.SessionRequest{
		Series:    s.Values,
		Options:   &httpapi.DetectOptions{Confidence: 0.85, Seed: 3},
		AutoLabel: true,
		Truth:     truth,
	}

	srv1, ts1, cl1 := newTestServer(t, server.Config{CheckpointDir: dir})
	st, err := cl1.CreateSession(ctx, req)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	cpPath := filepath.Join(dir, "session-"+st.ID+".json")
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("live session has no checkpoint: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != httpapi.StateDone {
		if time.Now().After(deadline) {
			t.Fatal("auto-label session did not finish")
		}
		if st.State == httpapi.StateFailed {
			t.Fatalf("session failed: %s", st.Error)
		}
		time.Sleep(2 * time.Millisecond)
		if st, err = cl1.Session(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	done := st
	ts1.Close()
	srv1.Close()

	// Restart: the finished session is still addressable with the same
	// result, and a brand-new session does not reuse its id.
	srv2, ts2, cl2 := newTestServer(t, server.Config{CheckpointDir: dir})
	got, err := cl2.Session(ctx, done.ID)
	if err != nil {
		t.Fatalf("restored terminal session: %v", err)
	}
	if got.State != httpapi.StateDone || !reflect.DeepEqual(got.Result, done.Result) {
		t.Fatalf("restored terminal session diverged:\ngot  %+v\nwant %+v", got, done)
	}
	fresh, err := cl2.CreateSession(ctx, httpapi.SessionRequest{Series: s.Values, AutoLabel: true, Truth: truth})
	if err != nil {
		t.Fatalf("fresh session after restore: %v", err)
	}
	if fresh.ID == done.ID {
		t.Fatalf("fresh session reused restored id %s", fresh.ID)
	}
	// Client cancel is deliberate: the checkpoint goes with it.
	if err := cl2.CancelSession(ctx, done.ID); err != nil {
		t.Fatalf("cancel restored session: %v", err)
	}
	if _, err := os.Stat(cpPath); !os.IsNotExist(err) {
		t.Fatalf("cancelled session left its checkpoint behind (stat err %v)", err)
	}
	ts2.Close()
	srv2.Close()
}

// TestSessionEvictionDropsCheckpoint: the janitor reclaiming an idle
// session deletes its checkpoint — idle death is deliberate, so a
// restart must not resurrect the session.
func TestSessionEvictionDropsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	clk := obs.NewFakeClock(time.Time{})
	rec := obs.NewWithClock(clk)
	var evictions []string
	srv, _, cl := newTestServer(t, server.Config{
		CheckpointDir: dir,
		Recorder:      rec,
		SessionTTL:    time.Minute,
		Logf:          func(format string, args ...any) { evictions = append(evictions, fmt.Sprintf(format, args...)) },
	})
	st, err := cl.CreateSession(context.Background(), httpapi.SessionRequest{
		Series: synth.YahooLike(5, 300).Values,
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	cpPath := filepath.Join(dir, "session-"+st.ID+".json")
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("live session has no checkpoint: %v", err)
	}
	clk.Advance(2 * time.Minute)
	srv.Sweep()
	if _, err := os.Stat(cpPath); !os.IsNotExist(err) {
		t.Fatalf("evicted session left its checkpoint behind (stat err %v)", err)
	}
	if len(evictions) == 0 {
		t.Fatal("eviction produced no log line")
	}
}
