package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"cabd/client"
	"cabd/httpapi"
	"cabd/internal/obs"
	"cabd/internal/server"
	"cabd/internal/synth"
)

// newTestServer boots one serving instance over a loopback listener with
// the background janitor disabled (tests drive sweeps directly).
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	cfg.JanitorEvery = -1
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, client.New(ts.URL)
}

// TestSessionLifecycleE2E drives the paper's interactive loop over real
// HTTP: create a session, poll the uncertainty-sampled pending
// candidate, answer from ground truth, and repeat until the run
// converges with every detection at or above the configured γ.
func TestSessionLifecycleE2E(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	s := synth.YahooLike(11, 400)
	gamma := 0.85

	labeled := 0
	st, err := cl.RunSession(context.Background(), httpapi.SessionRequest{
		Series:  s.Values,
		Options: &httpapi.DetectOptions{Confidence: gamma},
	}, func(index int, value float64) string {
		labeled++
		if index < 0 || index >= s.Len() {
			t.Fatalf("pending index %d outside the submitted series", index)
		}
		if value != s.Values[index] {
			t.Fatalf("pending value %v != series[%d] = %v", value, index, s.Values[index])
		}
		return s.Labels[index].String()
	}, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	if st.State != httpapi.StateDone {
		t.Fatalf("final state %q (error %q), want done", st.State, st.Error)
	}
	if st.Result == nil {
		t.Fatal("done session carries no result")
	}
	if labeled == 0 || st.Queries != labeled {
		t.Fatalf("labels posted %d, session reports %d queries", labeled, st.Queries)
	}
	if st.Queries < 3 {
		t.Fatalf("session converged after %d queries, want the minimum exploration of 3", st.Queries)
	}
	for _, d := range append(st.Result.Anomalies, st.Result.ChangePoints...) {
		if d.Confidence < gamma {
			t.Errorf("detection at %d has confidence %v below gamma %v", d.Index, d.Confidence, gamma)
		}
	}
	// The done session stays addressable until evicted or cancelled.
	again, err := cl.Session(context.Background(), st.ID)
	if err != nil || again.State != httpapi.StateDone {
		t.Fatalf("re-fetch of done session: %+v, %v", again, err)
	}
	if err := cl.CancelSession(context.Background(), st.ID); err != nil {
		t.Fatalf("cancel done session: %v", err)
	}
	if _, err := cl.Session(context.Background(), st.ID); err == nil {
		t.Fatal("cancelled session still addressable")
	}
}

// TestSessionLabelConflicts pins the 409 paths: labeling a session with
// no pending query and labeling the wrong index.
func TestSessionLabelConflicts(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	s := synth.YahooLike(11, 400)
	st, err := cl.CreateSession(context.Background(), httpapi.SessionRequest{Series: s.Values})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.State != httpapi.StateAwaitingLabel {
		if time.Now().After(deadline) {
			t.Fatalf("session never reached awaiting_label (state %s)", st.State)
		}
		time.Sleep(2 * time.Millisecond)
		if st, err = cl.Pending(context.Background(), st.ID); err != nil {
			t.Fatalf("pending: %v", err)
		}
	}
	wrong := st.Pending.Index + 1
	if _, err := cl.PostLabel(context.Background(), st.ID, wrong, httpapi.LabelNormal); err == nil {
		t.Fatal("labeling the wrong index succeeded")
	} else if serr, ok := err.(*httpapi.StatusError); !ok || serr.Status != http.StatusConflict {
		t.Fatalf("wrong-index label error = %v, want 409", err)
	}
	if _, err := cl.PostLabel(context.Background(), st.ID, st.Pending.Index, "bogus"); err == nil {
		t.Fatal("posting an unknown label succeeded")
	}
}

// TestSaturationShedsWith429 fills a one-worker, one-slot server with a
// concurrent burst and requires real shedding: 429 replies carrying a
// Retry-After header, and the shed visible in /metrics alongside the
// queue-depth gauge.
func TestSaturationShedsWith429(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})
	vals := synth.YahooLike(42, 4000).Values
	body, err := json.Marshal(httpapi.DetectRequest{Series: vals})
	if err != nil {
		t.Fatal(err)
	}

	const burst = 12
	type reply struct {
		status     int
		retryAfter string
	}
	replies := make([]reply, burst)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("burst request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			replies[i] = reply{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	close(gate)
	wg.Wait()

	var ok, shed int
	for i, r := range replies {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Errorf("429 reply %d has no Retry-After header", i)
			} else if sec, err := strconv.Atoi(r.retryAfter); err != nil || sec < 1 {
				t.Errorf("429 reply %d Retry-After = %q, want an integer >= 1", i, r.retryAfter)
			}
		default:
			t.Errorf("burst reply %d: unexpected status %d", i, r.status)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst of %d: %d ok, %d shed; want both admission and shedding", burst, ok, shed)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	shedRE := regexp.MustCompile(`(?m)^cabd_http_shed_total (\d+)$`)
	m := shedRE.FindSubmatch(metrics)
	if m == nil {
		t.Fatal("/metrics has no cabd_http_shed_total sample")
	}
	if n, _ := strconv.Atoi(string(m[1])); n < shed {
		t.Errorf("cabd_http_shed_total = %s, want >= %d client-observed sheds", m[1], shed)
	}
	if !regexp.MustCompile(`(?m)^cabd_queue_depth \d+$`).Match(metrics) {
		t.Error("/metrics has no cabd_queue_depth gauge")
	}
}

// TestConcurrentHammer mixes every request family against one shared
// server; run under -race it proves the tables, pool and recorder are
// safe for concurrent use.
func TestConcurrentHammer(t *testing.T) {
	_, ts, cl := newTestServer(t, server.Config{Workers: 2, QueueDepth: 32})
	s := synth.YahooLike(13, 256)
	truth := make([]string, s.Len())
	for i, l := range s.Labels {
		truth[i] = l.String()
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch w % 3 {
				case 0:
					if _, err := cl.Detect(ctx, s.Values, nil); err != nil {
						if serr, ok := err.(*httpapi.StatusError); !ok || !serr.IsSaturated() {
							t.Errorf("worker %d detect: %v", w, err)
						}
					}
				case 1:
					id := fmt.Sprintf("h%d", w)
					if _, err := cl.StreamPush(ctx, id, s.Values[:64]); err != nil {
						t.Errorf("worker %d stream: %v", w, err)
					}
				case 2:
					st, err := cl.CreateSession(ctx, httpapi.SessionRequest{
						Series: s.Values, AutoLabel: true, Truth: truth,
					})
					if err != nil {
						if serr, ok := err.(*httpapi.StatusError); !ok || !serr.IsSaturated() {
							t.Errorf("worker %d session: %v", w, err)
						}
						continue
					}
					for {
						st, err = cl.Session(ctx, st.ID)
						if err != nil || st.State == httpapi.StateDone || st.State == httpapi.StateFailed {
							break
						}
						time.Sleep(time.Millisecond)
					}
					if err != nil {
						t.Errorf("worker %d poll: %v", w, err)
					}
				}
				if _, err := http.Get(ts.URL + "/metrics"); err != nil {
					t.Errorf("worker %d metrics: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestIdleEvictionFakeClock proves the janitor's sweep fires on the
// injected clock alone: a parked session and a live stream both idle
// past their TTLs are reclaimed the moment the fake clock crosses the
// horizon, with the evictions counted.
func TestIdleEvictionFakeClock(t *testing.T) {
	clk := obs.NewFakeClock(time.Time{})
	rec := obs.NewWithClock(clk)
	srv, _, cl := newTestServer(t, server.Config{
		Recorder:   rec,
		SessionTTL: time.Minute,
		StreamTTL:  time.Minute,
	})
	ctx := context.Background()
	s := synth.YahooLike(11, 400)

	if _, err := cl.StreamPush(ctx, "evictme", s.Values[:64]); err != nil {
		t.Fatalf("stream push: %v", err)
	}
	st, err := cl.CreateSession(ctx, httpapi.SessionRequest{Series: s.Values})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	// Not idle yet: a sweep at the TTL boundary must keep both.
	clk.Advance(time.Minute)
	srv.Sweep()
	if _, err := cl.Session(ctx, st.ID); err != nil {
		t.Fatalf("session evicted before its TTL elapsed: %v", err)
	}

	// The status poll above touched the session's idle clock, so cross
	// the horizon from that touch, not from creation.
	clk.Advance(2 * time.Minute)
	srv.Sweep()
	if _, err := cl.Session(ctx, st.ID); err == nil {
		t.Fatal("idle session survived the sweep")
	}
	if _, err := cl.StreamClose(ctx, "evictme"); err == nil {
		t.Fatal("idle stream survived the sweep")
	}
	snap := rec.Snapshot()
	if got := snap.Counters[obs.CounterIdleEvictions.String()]; got != 2 {
		t.Fatalf("idle_evictions_total = %d, want 2 (one stream, one session)", got)
	}
	if snap.Gauges[obs.GaugeSessionsActive.String()] != 0 || snap.Gauges[obs.GaugeStreamsActive.String()] != 0 {
		t.Fatalf("active gauges not zeroed after eviction: %v", snap.Gauges)
	}
}

// TestDeadlineDegradationFakeClock pins the serving layer's graceful
// degradation: the request deadline is computed on the injected clock,
// so a stepping clock that burns the budget before the scoring pilot
// forces the fixed-knn fallback deterministically — no sleeps, and the
// real context timer (an hour out) never fires.
func TestDeadlineDegradationFakeClock(t *testing.T) {
	clk := obs.NewFakeClock(time.Now().Add(time.Hour))
	clk.SetStep(40 * time.Millisecond)
	rec := obs.NewWithClock(clk)
	_, _, cl := newTestServer(t, server.Config{Recorder: rec})

	vals := synth.YahooLike(42, 900).Values
	res, err := cl.Detect(context.Background(), vals, &httpapi.DetectOptions{TimeoutMS: 200})
	if err != nil {
		t.Fatalf("detect under fake deadline pressure: %v", err)
	}
	if !res.Degraded {
		t.Fatal("detection kept its strategy with the fake clock past the deadline budget")
	}
	if res.Strategy != "fixed-knn" {
		t.Fatalf("degraded strategy = %q, want fixed-knn", res.Strategy)
	}
	if res.DegradeReason == "" {
		t.Fatal("degraded result carries no reason")
	}
}

// TestExactRequestLatencyFakeClock: the request span brackets a handler
// with exactly one Now pair, so with a stepping clock the http_request
// histogram records exactly one step — the serving layer reads no
// hidden wall clock on the hot path.
func TestExactRequestLatencyFakeClock(t *testing.T) {
	clk := obs.NewFakeClock(time.Time{})
	clk.SetStep(5 * time.Millisecond)
	rec := obs.NewWithClock(clk)
	_, ts, _ := newTestServer(t, server.Config{Recorder: rec})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	snap := rec.Snapshot()
	for _, st := range snap.Stages {
		if st.Stage != obs.StageHTTPRequest.String() {
			continue
		}
		if st.Count != 1 || st.TotalSeconds != 0.005 {
			t.Fatalf("http_request histogram = %d obs, %vs total; want exactly 1 obs of 0.005s",
				st.Count, st.TotalSeconds)
		}
		return
	}
	t.Fatal("no http_request stage in the recorder snapshot")
}

// TestDrainRefusesNewWork: once draining, readiness flips and every
// ingress family answers 503.
func TestDrainRefusesNewWork(t *testing.T) {
	srv, err := server.New(server.Config{JanitorEvery: -1})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	if _, err := cl.Detect(ctx, []float64{1, 2, 3}, nil); err == nil {
		t.Fatal("detect admitted while draining")
	}
	if _, err := cl.CreateSession(ctx, httpapi.SessionRequest{Series: []float64{1, 2, 3}}); err == nil {
		t.Fatal("session admitted while draining")
	}
	if _, err := cl.StreamPush(ctx, "x", []float64{1}); err == nil {
		t.Fatal("stream push admitted while draining")
	}
}

// TestStreamLifecycle covers ingest shapes ({"v":x} and bare numbers),
// lifetime counters and the flush-on-close reply.
func TestStreamLifecycle(t *testing.T) {
	_, ts, cl := newTestServer(t, server.Config{})
	ctx := context.Background()
	vals := synth.YahooLike(17, 512).Values

	r1, err := cl.StreamPush(ctx, "s", vals[:300])
	if err != nil {
		t.Fatalf("push 1: %v", err)
	}
	if r1.Accepted != 300 || r1.Total != 300 {
		t.Fatalf("push 1 accounting: %+v", r1)
	}
	// The object form ingests identically to bare numbers.
	body := bytes.NewBufferString(`{"v": 1.5}` + "\n" + `2.5` + "\n")
	resp, err := http.Post(ts.URL+"/v1/stream/s", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	var r2 httpapi.StreamIngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&r2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r2.Accepted != 2 || r2.Total != 302 {
		t.Fatalf("push 2 accounting: %+v", r2)
	}
	r3, err := cl.StreamClose(ctx, "s")
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if !r3.Flushed || r3.Total != 302 {
		t.Fatalf("close reply: %+v", r3)
	}
	if _, err := cl.StreamClose(ctx, "s"); err == nil {
		t.Fatal("closing a closed stream succeeded")
	}
}

// TestRequestValidation pins the client-fault statuses: malformed JSON,
// oversized bodies, bad options and unknown routes.
func TestRequestValidation(t *testing.T) {
	_, ts, cl := newTestServer(t, server.Config{MaxBodyBytes: 1024})
	ctx := context.Background()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := post("/v1/detect", "{not json"); got != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", got)
	}
	big := make([]float64, 1024)
	if _, err := cl.Detect(ctx, big, nil); err == nil {
		t.Error("oversized body accepted")
	} else if serr, ok := err.(*httpapi.StatusError); !ok || serr.Status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body error = %v, want 413", err)
	}
	if _, err := cl.Detect(ctx, []float64{1, 2, 3}, &httpapi.DetectOptions{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := cl.Detect(ctx, []float64{1, 2}, nil); err == nil {
		t.Error("too-short series accepted")
	} else if serr, ok := err.(*httpapi.StatusError); !ok || serr.Status != http.StatusUnprocessableEntity {
		t.Errorf("too-short series error = %v, want 422", err)
	}
	if _, err := cl.Session(ctx, "nosuch"); err == nil {
		t.Error("missing session lookup succeeded")
	}
}
