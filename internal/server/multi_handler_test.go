package server_test

import (
	"context"
	"net/http"
	"testing"

	"cabd/httpapi"
	"cabd/internal/server"
	"cabd/internal/synth"
)

// TestDetectMultiE2E drives POST /v1/detect/multi through the public
// client: a correlated 3-channel series with a cross-channel spike must
// come back with a detection at the spike and index bookkeeping in the
// submitted layout.
func TestDetectMultiE2E(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	dims := synth.CorrelatedDims(synth.FamilyFlat, 7, 900, 3, 0.8)
	for k := range dims {
		dims[k][450] += 25
	}
	res, err := cl.DetectMulti(context.Background(), dims, nil)
	if err != nil {
		t.Fatalf("DetectMulti: %v", err)
	}
	found := false
	for _, d := range res.Anomalies {
		if d.Index >= 448 && d.Index <= 452 {
			found = true
		}
		if d.Index < 0 || d.Index >= 900 {
			t.Fatalf("detection index %d outside the submitted channels", d.Index)
		}
	}
	if !found {
		t.Errorf("cross-channel spike at 450 not detected: %+v", res.Anomalies)
	}
	if res.Strategy == "" {
		t.Error("reply carries no strategy")
	}
}

// TestDetectMultiSanitizes: corrupted values in one channel (huge
// finite magnitudes — JSON cannot carry NaN) are repaired under the
// default policy and reported in the sanitize info.
func TestDetectMultiSanitizes(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	dims := synth.CorrelatedDims(synth.FamilyFlat, 9, 600, 2, 0.8)
	dims[1][100] = 1e300
	dims[1][101] = -1e300
	res, err := cl.DetectMulti(context.Background(), dims, nil)
	if err != nil {
		t.Fatalf("DetectMulti with extremes: %v", err)
	}
	if res.Sanitize == nil || res.Sanitize.Extremes != 2 {
		t.Errorf("sanitize info = %+v, want 2 extremes reported", res.Sanitize)
	}
}

// TestDetectMultiValidation pins the 400 paths: empty channel set,
// ragged channels, bad options.
func TestDetectMultiValidation(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	if _, err := cl.DetectMulti(context.Background(), nil, nil); err == nil {
		t.Error("empty channels accepted")
	} else if serr, ok := err.(*httpapi.StatusError); !ok || serr.Status != http.StatusBadRequest {
		t.Errorf("empty channels error = %v, want 400", err)
	}
	ragged := [][]float64{make([]float64, 100), make([]float64, 99)}
	if _, err := cl.DetectMulti(context.Background(), ragged, nil); err == nil {
		t.Error("ragged channels accepted")
	}
	dims := [][]float64{make([]float64, 100)}
	if _, err := cl.DetectMulti(context.Background(), dims, &httpapi.DetectOptions{Strategy: "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	} else if serr, ok := err.(*httpapi.StatusError); !ok || serr.Status != http.StatusBadRequest {
		t.Errorf("bogus strategy error = %v, want 400", err)
	}
}
