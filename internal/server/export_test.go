package server

// Sweep exposes the janitor's idle-eviction pass so deterministic-clock
// tests drive it directly instead of sleeping through ticker periods.
func (s *Server) Sweep() { s.sweep() }
