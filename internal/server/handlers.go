package server

import (
	"net/http"

	"cabd"
	"cabd/httpapi"
)

// handleDetect runs one unsupervised detection on the worker pool.
// The request deadline (options.timeout_ms, clamped) bounds the run and
// arms the detector's graceful degradation; a full queue sheds with
// 429 + Retry-After.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req httpapi.DetectRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	opts, err := parseOptions(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, opts)
	defer cancel()
	det := s.detectorFor(opts)
	var res *cabd.Result
	var detErr error
	if perr := s.pool.run(func() {
		res, detErr = det.DetectCtx(ctx, req.Series)
	}); perr != nil {
		s.writeShed(w, perr.Error())
		return
	}
	if detErr != nil {
		s.writeError(w, errStatus(detErr), detErr.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, toWire(res))
}

// handleDetectMulti runs one unsupervised multivariate detection: the
// request carries d equal-length channels, the detector runs the joint
// d-channel pipeline (cross-channel correlation feature, collective
// merging), and the reply is the shared DetectResponse shape with time
// indices into the submitted channels.
func (s *Server) handleDetectMulti(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req httpapi.MultiDetectRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Channels) == 0 {
		s.writeError(w, http.StatusBadRequest, "channels is empty")
		return
	}
	opts, err := parseOptions(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, opts)
	defer cancel()
	det := s.multiDetectorFor(opts)
	var res *cabd.Result
	var detErr error
	if perr := s.pool.run(func() {
		res, detErr = det.DetectCtx(ctx, req.Channels)
	}); perr != nil {
		s.writeShed(w, perr.Error())
		return
	}
	if detErr != nil {
		s.writeError(w, errStatus(detErr), detErr.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, toWire(res))
}

// handleDetectBatch runs a whole series set through DetectBatchCtx as a
// single pool job (the batch fans out over its own internal workers;
// admission control here is per request, so one giant batch cannot
// starve the queue accounting).
func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req httpapi.BatchDetectRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	opts, err := parseOptions(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, opts)
	defer cancel()
	det := s.detectorFor(opts)
	var results []*cabd.Result
	var errs []error
	if perr := s.pool.run(func() {
		results, errs = det.DetectBatchCtx(ctx, req.SeriesSet)
	}); perr != nil {
		s.writeShed(w, perr.Error())
		return
	}
	out := httpapi.BatchDetectResponse{
		Results: make([]httpapi.DetectResponse, len(results)),
		Errors:  make([]string, len(results)),
	}
	for i, res := range results {
		out.Results[i] = *toWire(res)
		if i < len(errs) && errs[i] != nil {
			out.Errors[i] = errs[i].Error()
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}
