package server

import (
	"errors"
	"sync"

	"cabd/internal/obs"
)

// errSaturated is the backpressure signal: the queue behind the workers
// is full and the request must be shed (429 + Retry-After) rather than
// parked unboundedly.
var errSaturated = errors.New("server saturated: worker queue full")

// pool is the bounded detection worker pool. Admission is a single
// non-blocking channel send: either the job fits in the queue or the
// caller sheds it immediately — there is no unbounded buffering layer
// anywhere between the listener and the workers.
type pool struct {
	rec      *obs.Recorder
	workers  int
	jobs     chan func()
	done     chan struct{}
	stopOnce sync.Once
}

func newPool(workers, depth int, rec *obs.Recorder) *pool {
	p := &pool{
		rec:     rec,
		workers: workers,
		jobs:    make(chan func(), depth),
		done:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	for job := range p.jobs {
		p.rec.SetGauge(obs.GaugeQueueDepth, int64(len(p.jobs)))
		job()
	}
	p.done <- struct{}{}
}

// trySubmit enqueues job if the queue has room, reporting whether it was
// admitted. A shed is counted on the recorder.
func (p *pool) trySubmit(job func()) bool {
	select {
	case p.jobs <- job:
		p.rec.SetGauge(obs.GaugeQueueDepth, int64(len(p.jobs)))
		return true
	default:
		p.rec.Add(obs.CounterHTTPShed, 1)
		return false
	}
}

// run executes f on the pool and waits for it to finish. It returns
// errSaturated when the queue is full. Cancellation is f's own job: the
// detection context passed into f makes it return promptly, so waiting
// on completion here cannot wedge.
func (p *pool) run(f func()) error {
	fin := make(chan struct{})
	if !p.trySubmit(func() {
		defer close(fin)
		f()
	}) {
		return errSaturated
	}
	<-fin
	return nil
}

// close drains the queue and waits for every worker to exit. Admission
// (trySubmit) must have stopped before calling it. Idempotent, so a
// deferred Close after an explicit Drain (the restart tests' shape) is
// harmless.
func (p *pool) close() {
	p.stopOnce.Do(func() {
		close(p.jobs)
		for i := 0; i < p.workers; i++ {
			<-p.done
		}
		p.rec.SetGauge(obs.GaugeQueueDepth, 0)
	})
}

// retryAfterSeconds estimates how long a shed client should back off:
// one queue's worth of work per worker, floored at one second. The
// estimate is deliberately coarse — its job is to spread retries, not
// to predict latency.
func (p *pool) retryAfterSeconds() int {
	depth := len(p.jobs)
	if p.workers <= 0 {
		return 1
	}
	sec := depth / p.workers
	if sec < 1 {
		sec = 1
	}
	return sec
}
