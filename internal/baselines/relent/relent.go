// Package relent implements the multinomial relative-entropy detector of
// Wang et al. [39]: values are discretized into bins; for each window the
// KL divergence (times 2n, asymptotically chi-square) between the
// window's bin distribution and the long-run distribution is tested
// against a chi-square quantile. A Figure 7 baseline.
package relent

import (
	"math"
	"sort"

	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes the test.
type Config struct {
	Bins       int     // value bins (default 5)
	Window     int     // test window (default 48)
	Confidence float64 // chi-square confidence (default 0.999)
}

func (c *Config) defaults() {
	if c.Bins <= 0 {
		c.Bins = 5
	}
	if c.Window <= 0 {
		c.Window = 48
	}
	if c.Confidence <= 0 {
		c.Confidence = 0.999
	}
}

// Detector is the relative-entropy baseline.
type Detector struct {
	cfg Config
}

// New returns a relative-entropy detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "RelEntropy" }

// Detect discretizes the series, slides a window and flags every point of
// windows whose scaled KL divergence from the global distribution exceeds
// the chi-square critical value.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	w := d.cfg.Window
	if n < 2*w {
		return nil
	}
	bins := d.cfg.Bins
	// Discretize by global quantiles so every bin has mass.
	edges := make([]float64, bins-1)
	for i := 1; i < bins; i++ {
		edges[i-1] = stats.Quantile(s.Values, float64(i)/float64(bins))
	}
	sym := make([]int, n)
	for i, v := range s.Values {
		b := 0
		for b < len(edges) && v > edges[b] {
			b++
		}
		sym[i] = b
	}
	// Global distribution.
	global := make([]float64, bins)
	for _, b := range sym {
		global[b]++
	}
	for i := range global {
		global[i] = (global[i] + 0.5) / (float64(n) + 0.5*float64(bins))
	}
	crit := stats.ChiSquareQuantile(d.cfg.Confidence, float64(bins-1))

	flagged := map[int]bool{}
	counts := make([]float64, bins)
	for start := 0; start+w <= n; start += w / 2 {
		for i := range counts {
			counts[i] = 0
		}
		for i := start; i < start+w; i++ {
			counts[sym[i]]++
		}
		var kl float64
		for b := 0; b < bins; b++ {
			if counts[b] == 0 {
				continue
			}
			p := counts[b] / float64(w)
			kl += counts[b] * math.Log(p/global[b])
		}
		if 2*kl > crit {
			// Flag the most deviant points of the window: those in the
			// rarest global bins.
			for i := start; i < start+w; i++ {
				if global[sym[i]] < 1.5/float64(bins) {
					flagged[i] = true
				}
			}
		}
	}
	out := make([]int, 0, len(flagged))
	for i := range flagged {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
