package relent

import (
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestFlagsDistributionShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	// A burst of extreme values: the window's bin distribution diverges.
	for i := 500; i < 520; i++ {
		vals[i] = 8
	}
	got := New(Config{}).Detect(series.New("x", vals))
	hits := 0
	for _, i := range got {
		if i >= 500 && i < 520 {
			hits++
		}
	}
	if hits < 5 {
		t.Errorf("burst coverage %d/20: %v", hits, got)
	}
}

func TestQuietOnStationaryData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	got := New(Config{}).Detect(series.New("x", vals))
	if len(got) > 100 {
		t.Errorf("stationary data produced %d detections", len(got))
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 10))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
	if got := New(Config{}).Detect(series.New("x", make([]float64, 200))); len(got) != 0 {
		t.Errorf("constant series flagged %d", len(got))
	}
}
