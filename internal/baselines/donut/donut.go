// Package donut implements the DONUT baseline (Xu et al. [40]): a
// variational autoencoder over sliding windows of a seasonal KPI; the
// negative reconstruction probability of each window scores its last
// point. This reproduction uses the plain Gaussian VAE of internal/ml/nn
// (DONUT's missing-data ELBO modifications are orthogonal to the paper's
// comparison — see DESIGN.md). The paper singles out DONUT's abnormal-
// data-percentage parameter as dataset specific and its training cost as
// the slowest row of Figure 11.
package donut

import (
	"math/rand"

	"cabd/internal/baselines/common"
	"cabd/internal/ml/nn"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes DONUT.
type Config struct {
	Window        int     // sliding window (default 32)
	Hidden        int     // encoder/decoder hidden units (default 24)
	Latent        int     // latent dimensions (default 4)
	Epochs        int     // training epochs (default 30)
	Samples       int     // MC samples for scoring (default 8)
	Seed          int64   // default 1
	Contamination float64 // flagged fraction; <= 0 uses the robust-z rule
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Hidden <= 0 {
		c.Hidden = 24
	}
	if c.Latent <= 0 {
		c.Latent = 4
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.Samples <= 0 {
		c.Samples = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Detector is the DONUT baseline.
type Detector struct {
	cfg Config
}

// New returns a DONUT detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "DONUT" }

// Detect trains the VAE on all windows of the standardized series and
// scores each point by the reconstruction NLL of the window ending at it.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	w := d.cfg.Window
	if n < 2*w {
		return nil
	}
	xs := stats.Standardize(s.Values)
	wins := common.Windows(xs, w)
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	v := nn.NewVAE(w, d.cfg.Hidden, d.cfg.Latent, rng)
	v.Train(wins, nn.TrainConfig{Epochs: d.cfg.Epochs}, rng)
	winScores := make([]float64, len(wins))
	for i, win := range wins {
		winScores[i] = v.ReconstructionNLL(win, d.cfg.Samples, rng)
	}
	scores := common.LastPointWindowScores(winScores, n, w)
	// Points before the first full window share the first window's score
	// context only through zero; leave them unflagged (DONUT cannot
	// score them either).
	return common.Threshold(scores, d.cfg.Contamination)
}
