package donut

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestReconstructionFlagsAnomalies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 900)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/75) + rng.NormFloat64()*0.1
	}
	spikes := []int{400, 650}
	for _, p := range spikes {
		vals[p] += 8
	}
	got := New(Config{Epochs: 15, Contamination: 0.01}).Detect(series.New("x", vals))
	hits := 0
	for _, p := range spikes {
		for _, i := range got {
			if i >= p && i <= p+3 {
				hits++
				break
			}
		}
	}
	if hits < 1 {
		t.Errorf("no spike reconstructed poorly enough: %v", got)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = math.Sin(float64(i)/10) + rng.NormFloat64()*0.05
	}
	s := series.New("x", vals)
	a := New(Config{Epochs: 3, Seed: 5}).Detect(s)
	b := New(Config{Epochs: 3, Seed: 5}).Detect(s)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic output")
		}
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 20))); got != nil {
		t.Errorf("short input: %v", got)
	}
}
