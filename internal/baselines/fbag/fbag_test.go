package fbag

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestEnsembleFindsPatternOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 900)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/90) + rng.NormFloat64()*0.2
	}
	for i := 450; i < 456; i++ {
		vals[i] += 10
	}
	got := New(Config{Contamination: 0.02}).Detect(series.New("x", vals))
	hits := 0
	for _, i := range got {
		if i >= 445 && i <= 460 {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("outlier window coverage %d: %v", hits, got)
	}
}

func TestSubsamplingBoundsWork(t *testing.T) {
	// A long series must be strided so LOF stays tractable, without
	// panics and with indices in range.
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 8000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	vals[4000] = 20
	got := New(Config{MaxPoints: 1000, Rounds: 4, Contamination: 0.005}).
		Detect(series.New("x", vals))
	for _, i := range got {
		if i < 0 || i >= 8000 {
			t.Fatalf("index out of range: %d", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	s := series.New("x", vals)
	a := New(Config{Rounds: 3, Seed: 7}).Detect(s)
	b := New(Config{Rounds: 3, Seed: 7}).Detect(s)
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic output")
		}
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 4))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}
