// Package fbag implements Feature Bagging for outlier detection (Lazarevic
// & Kumar [23]), a Figure 8 baseline: an ensemble of LOF detectors, each
// over a random feature subset of a sliding-window embedding, with scores
// combined by averaging.
package fbag

import (
	"math/rand"

	"cabd/internal/baselines/common"
	"cabd/internal/baselines/lof"
	"cabd/internal/series"
)

// Config parameterizes Feature Bagging.
type Config struct {
	Window        int     // embedding window (default 6)
	Rounds        int     // ensemble size (default 10)
	K             int     // LOF neighbors (default 10)
	Seed          int64   // default 1
	Contamination float64 // flagged fraction; <= 0 uses the robust-z rule
	MaxPoints     int     // subsample cap to bound the O(n^2) LOF (default 3000)
}

// Detector is the Feature Bagging baseline.
type Detector struct {
	cfg Config
}

// New returns a Feature Bagging detector.
func New(cfg Config) *Detector {
	if cfg.Window <= 0 {
		cfg.Window = 6
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 10
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 3000
	}
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "F-Bag" }

// Detect embeds the series into windows, runs LOF on random feature
// subsets and averages the ensemble scores per point.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	w := d.cfg.Window
	if n < w+1 {
		return nil
	}
	wins := common.Windows(s.Values, w)
	// Stride the windows so LOF's O(m^2) stays bounded on long series.
	stride := 1
	for len(wins)/stride > d.cfg.MaxPoints {
		stride++
	}
	sub := make([][]float64, 0, len(wins)/stride+1)
	subIdx := make([]int, 0, cap(sub))
	for i := 0; i < len(wins); i += stride {
		sub = append(sub, wins[i])
		subIdx = append(subIdx, i)
	}
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	acc := make([]float64, len(sub))
	for r := 0; r < d.cfg.Rounds; r++ {
		// Random subset of floor(w/2)..w-1 features, per the paper.
		nd := w/2 + rng.Intn(w-w/2)
		if nd < 1 {
			nd = 1
		}
		dims := rng.Perm(w)[:nd]
		for i, v := range lof.Scores(sub, d.cfg.K, dims) {
			acc[i] += v
		}
	}
	for i := range acc {
		acc[i] /= float64(d.cfg.Rounds)
	}
	// Spread subsampled window scores back to points.
	winScores := make([]float64, len(wins))
	for i, wi := range subIdx {
		winScores[wi] = acc[i]
	}
	scores := common.SpreadWindowScores(winScores, n, w)
	return common.Threshold(scores, d.cfg.Contamination)
}
