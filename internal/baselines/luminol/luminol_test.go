package luminol

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestDefaultDetectorFindsSpikes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	ar := 0.0
	for i := range vals {
		ar = 0.6*ar + rng.NormFloat64()*0.2
		vals[i] = ar + math.Sin(2*math.Pi*float64(i)/90)
	}
	spikes := []int{251, 502, 777}
	for _, p := range spikes {
		vals[p] += 12
	}
	got := New(Config{}).Detect(series.New("x", vals))
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	hits := 0
	for _, p := range spikes {
		if found[p] || found[p+1] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("only %d/3 spikes detected: %v", hits, got)
	}
}

func TestBitmapOption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 600)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.1
	}
	vals[300] = 10
	// With the bitmap component enabled the detector must still run and
	// flag the spike region.
	got := New(Config{UseBitmap: true}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i >= 299 && i <= 302 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("bitmap-enabled run missed the spike: %v", got)
	}
}

func TestBitmapHelperNormalized(t *testing.T) {
	bm := bitmap("abab", 2, 2)
	var total float64
	for _, v := range bm {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("bitmap mass = %v", total)
	}
	// "ab" appears twice, "ba" once.
	if bm[0*2+1] <= bm[1*2+0] {
		t.Errorf("chunk frequencies wrong: %v", bm)
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 5))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
	if got := New(Config{}).Detect(series.New("x", make([]float64, 100))); len(got) != 0 {
		t.Errorf("constant series flagged %d", len(got))
	}
}
