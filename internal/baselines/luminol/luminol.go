// Package luminol implements LinkedIn Luminol's default anomaly detector:
// the average of an exponential-moving-average deviation score and a
// derivative deviation score (the library's DefaultDetector), with the
// SAX-bitmap detector available as an option. A Figure 7 baseline; the
// paper measures Luminol as the fastest competitor (Figure 11), which the
// two O(n) passes reproduce.
package luminol

import (
	"math"

	"cabd/internal/baselines/common"
	"cabd/internal/sax"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes the detector.
type Config struct {
	SmoothingFactor float64 // EMA alpha (default 0.2, the library default)
	UseBitmap       bool    // add the SAX-bitmap component
	ChunkSize       int     // bitmap chunk length (default 2)
	Alphabet        int     // bitmap SAX alphabet (default 4)
	Lag             int     // bitmap window (default 50)
	Contamination   float64 // flagged fraction; <= 0 uses the robust-z rule
}

func (c *Config) defaults() {
	if c.SmoothingFactor <= 0 {
		c.SmoothingFactor = 0.2
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 2
	}
	if c.Alphabet <= 0 {
		c.Alphabet = 4
	}
	if c.Lag <= 0 {
		c.Lag = 50
	}
}

// Detector is the Luminol baseline.
type Detector struct {
	cfg Config
}

// New returns a Luminol detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "Luminol" }

// Detect averages the component scores and thresholds them.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	if n < 10 {
		return nil
	}
	xs := stats.Standardize(s.Values)
	ema := d.expAvgScores(xs)
	deriv := d.derivativeScores(xs)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = (normScore(ema, i) + normScore(deriv, i)) / 2
	}
	if d.cfg.UseBitmap {
		bm := d.bitmapScores(xs)
		for i := range scores {
			scores[i] = (2*scores[i] + normScore(bm, i)) / 3
		}
	}
	return common.Threshold(scores, d.cfg.Contamination)
}

func normScore(scores []float64, i int) float64 {
	m := stats.Max(scores)
	if m <= 0 {
		return 0
	}
	return scores[i] / m
}

// expAvgScores is Luminol's ExpAvgDetector: |x - EMA(x)|.
func (d *Detector) expAvgScores(xs []float64) []float64 {
	out := make([]float64, len(xs))
	ema := xs[0]
	a := d.cfg.SmoothingFactor
	for i, v := range xs {
		out[i] = math.Abs(v - ema)
		ema = a*v + (1-a)*ema
	}
	return out
}

// derivativeScores is Luminol's DerivativeDetector: |dx - EMA(dx)|.
func (d *Detector) derivativeScores(xs []float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	a := d.cfg.SmoothingFactor
	var ema float64
	for i := 1; i < n; i++ {
		dv := math.Abs(xs[i] - xs[i-1])
		out[i] = math.Abs(dv - ema)
		ema = a*dv + (1-a)*ema
	}
	return out
}

// bitmapScores is the optional SAX-bitmap detector: distance between
// chunk-frequency bitmaps of the lagging and leading windows.
func (d *Detector) bitmapScores(xs []float64) []float64 {
	n := len(xs)
	lag := d.cfg.Lag
	if n < 2*lag+d.cfg.ChunkSize {
		lag = n / 4
	}
	out := make([]float64, n)
	if lag < d.cfg.ChunkSize+1 {
		return out
	}
	word := sax.Symbolize(xs, d.cfg.Alphabet)
	for i := lag; i < n-lag; i++ {
		lead := bitmap(word[i-lag:i], d.cfg.ChunkSize, d.cfg.Alphabet)
		trail := bitmap(word[i:i+lag], d.cfg.ChunkSize, d.cfg.Alphabet)
		out[i] = dist(lead, trail)
	}
	return out
}

// bitmap counts the normalized frequencies of each chunk (substring of
// length cs) in w, indexed densely over the alphabet^cs space.
func bitmap(w string, cs, alphabet int) []float64 {
	size := 1
	for i := 0; i < cs; i++ {
		size *= alphabet
	}
	bm := make([]float64, size)
	total := 0
	for i := 0; i+cs <= len(w); i++ {
		key := 0
		for j := 0; j < cs; j++ {
			key = key*alphabet + int(w[i+j]-'a')
		}
		if key >= 0 && key < size {
			bm[key]++
			total++
		}
	}
	if total > 0 {
		for i := range bm {
			bm[i] /= float64(total)
		}
	}
	return bm
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
