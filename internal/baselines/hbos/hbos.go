// Package hbos implements the Histogram-Based Outlier Score of Goldstein
// and Dengel [15], one of the supervised-family baselines of Figure 8 and
// half of the combined HBOS+PELT baseline of Figure 10. Each feature gets
// an equal-width histogram; a point's score is the sum of the negative log
// densities of its feature values.
package hbos

import (
	"math"

	"cabd/internal/baselines/common"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes HBOS.
type Config struct {
	Bins          int     // histogram bins (default: sqrt(n))
	Window        int     // embedding window (default 3: value, diff, curvature context)
	Contamination float64 // flagged fraction; <= 0 uses the robust-z rule
}

// Detector is the HBOS baseline.
type Detector struct {
	cfg Config
}

// New returns an HBOS detector.
func New(cfg Config) *Detector { return &Detector{cfg: cfg} }

// Name implements common.Detector.
func (d *Detector) Name() string { return "HBOS" }

// Detect scores each point by the summed negative log histogram density
// of its embedding features and thresholds the scores.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	if n == 0 {
		return nil
	}
	w := d.cfg.Window
	if w <= 0 {
		w = 3
	}
	if w > n {
		w = n
	}
	bins := d.cfg.Bins
	if bins <= 0 {
		bins = int(math.Sqrt(float64(n)))
		if bins < 5 {
			bins = 5
		}
	}
	// Features per point: the window of raw values ending at the point
	// plus its first difference.
	feats := buildFeatures(s.Values, w)
	nf := len(feats)
	scores := make([]float64, n)
	for f := 0; f < nf; f++ {
		col := feats[f]
		counts, edges := stats.Histogram(col, bins)
		width := edges[1] - edges[0]
		total := float64(len(col))
		for i, v := range col {
			density := histDensity(v, counts, edges, width, total)
			scores[i] += -math.Log(density + 1e-12)
		}
	}
	return common.Threshold(scores, d.cfg.Contamination)
}

// buildFeatures returns per-point feature columns: lagged values within
// the window and the first difference.
func buildFeatures(xs []float64, w int) [][]float64 {
	n := len(xs)
	cols := make([][]float64, 0, w+1)
	for lag := 0; lag < w; lag++ {
		col := make([]float64, n)
		for i := range col {
			j := i - lag
			if j < 0 {
				j = 0
			}
			col[i] = xs[j]
		}
		cols = append(cols, col)
	}
	diff := make([]float64, n)
	for i := 1; i < n; i++ {
		diff[i] = xs[i] - xs[i-1]
	}
	cols = append(cols, diff)
	return cols
}

func histDensity(v float64, counts []int, edges []float64, width, total float64) float64 {
	if width <= 0 || total == 0 {
		return 1
	}
	b := int((v - edges[0]) / width)
	if b < 0 {
		b = 0
	}
	if b >= len(counts) {
		b = len(counts) - 1
	}
	return float64(counts[b]) / total
}
