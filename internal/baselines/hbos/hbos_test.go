package hbos

import (
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func noisy(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	return vals
}

func TestFindsValueOutliers(t *testing.T) {
	vals := noisy(1, 1000)
	vals[400] = 30
	vals[700] = -25
	got := New(Config{}).Detect(series.New("x", vals))
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	if !found[400] || !found[700] {
		t.Errorf("outliers missed: %v", got)
	}
}

func TestContaminationControlsCount(t *testing.T) {
	vals := noisy(2, 1000)
	got := New(Config{Contamination: 0.05}).Detect(series.New("x", vals))
	if len(got) < 40 || len(got) > 60 {
		t.Errorf("contamination 5%% flagged %d points, want ~50", len(got))
	}
}

func TestRareValueScoresHigher(t *testing.T) {
	// Scores are internal; verify indirectly — with contamination 1/n,
	// the single most anomalous point must be the planted one.
	vals := noisy(3, 500)
	vals[123] = 50
	got := New(Config{Contamination: 1.0 / 500}).Detect(series.New("x", vals))
	// The lag/diff features implicate both the spike and its successor;
	// either is a correct top-1.
	if len(got) != 1 || (got[0] != 123 && got[0] != 124) {
		t.Errorf("top-1 detection = %v, want [123] or [124]", got)
	}
}

func TestDegenerate(t *testing.T) {
	d := New(Config{})
	if got := d.Detect(series.New("x", nil)); got != nil {
		t.Errorf("nil input: %v", got)
	}
	// Constant series: no point is special.
	got := d.Detect(series.New("x", make([]float64, 200)))
	if len(got) != 0 {
		t.Errorf("constant series flagged %d points", len(got))
	}
}

func TestCustomBins(t *testing.T) {
	vals := noisy(4, 600)
	vals[300] = 40
	got := New(Config{Bins: 10}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i == 300 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("custom-bin run missed the outlier: %v", got)
	}
}
