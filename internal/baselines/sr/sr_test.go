package sr

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestSaliencyPeaksAtSpike(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1200)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/100) + rng.NormFloat64()*0.2
	}
	spikes := []int{401, 702, 993}
	for _, p := range spikes {
		vals[p] += 10
	}
	got := New(Config{}).Detect(series.New("x", vals))
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	hits := 0
	for _, p := range spikes {
		if found[p] || found[p+1] || found[p-1] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("only %d/3 spikes salient: %v", hits, got)
	}
}

func TestEstimateNext(t *testing.T) {
	// A linear ramp extends linearly.
	win := []float64{1, 2, 3, 4, 5}
	if got := estimateNext(win, 3); math.Abs(got-6) > 1e-9 {
		t.Errorf("ramp extension = %v, want 6", got)
	}
	// A constant window extends constantly.
	flat := []float64{3, 3, 3, 3}
	if got := estimateNext(flat, 3); got != 3 {
		t.Errorf("flat extension = %v, want 3", got)
	}
	if got := estimateNext([]float64{7}, 5); got != 7 {
		t.Errorf("singleton extension = %v", got)
	}
}

func TestSaliencyHelperShape(t *testing.T) {
	xs := make([]float64, 64)
	xs[32] = 5
	sal := saliency(xs, 3)
	if len(sal) != 64 {
		t.Fatalf("saliency length = %d", len(sal))
	}
	// The impulse must be the most salient point.
	best := 0
	for i, v := range sal {
		if v > sal[best] {
			best = i
		}
	}
	if best != 32 {
		t.Errorf("max saliency at %d, want 32", best)
	}
}

func TestQuietOnSmoothData(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / 125)
	}
	got := New(Config{}).Detect(series.New("x", vals))
	if len(got) > 10 {
		t.Errorf("smooth series produced %d detections", len(got))
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 4))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}
