// Package sr implements the Spectral Residual saliency detector — the SR
// half of Microsoft's SR-CNN [32]. Each point is scored from a preceding
// window extended by estimated points (the paper's boundary trick): the
// window's log-amplitude spectrum has its local average removed, the
// residual transforms back to a saliency map, and the scored point's
// relative saliency is the anomaly score. The paper quotes SR-CNN's
// published KPI number because no code was available; this package
// provides the runnable SR detector for that Figure 8 slot (DESIGN.md
// substitution 3).
package sr

import (
	"math"
	"math/cmplx"

	"cabd/internal/baselines/common"
	"cabd/internal/ml/fft"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes the detector.
type Config struct {
	Window        int     // analysis window before each point (default 120)
	Extend        int     // estimated extension points (default 5)
	AvgWindow     int     // log-spectrum smoothing window (default 3)
	Gradient      int     // points used for the extension slope (default 5)
	Contamination float64 // flagged fraction; <= 0 uses the robust-z rule
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 120
	}
	if c.Extend <= 0 {
		c.Extend = 5
	}
	if c.AvgWindow <= 0 {
		c.AvgWindow = 3
	}
	if c.Gradient <= 0 {
		c.Gradient = 5
	}
}

// Detector is the Spectral Residual baseline.
type Detector struct {
	cfg Config
}

// New returns an SR detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "SR" }

// Detect slides the SR transform over the series and thresholds each
// point's relative saliency.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	w := d.cfg.Window
	if n < w+2 {
		if n < 16 {
			return nil
		}
		w = n / 2
	}
	xs := stats.Standardize(s.Values)
	scores := make([]float64, n)
	ext := d.cfg.Extend
	buf := make([]float64, 0, w+ext)
	for i := w; i < n; i++ {
		// Window ending at (and including) point i, extended by the
		// paper's estimated points so i is not the FFT boundary.
		win := xs[i-w+1 : i+1]
		buf = buf[:0]
		buf = append(buf, win...)
		est := estimateNext(win, d.cfg.Gradient)
		for e := 0; e < ext; e++ {
			buf = append(buf, est)
		}
		sal := saliency(buf, d.cfg.AvgWindow)
		// Relative saliency of the scored point vs the window average.
		target := sal[len(win)-1]
		mean := stats.Mean(sal[:len(win)])
		if mean < 1e-9 {
			mean = 1e-9
		}
		scores[i] = (target - mean) / mean
	}
	return common.Threshold(scores, d.cfg.Contamination)
}

// estimateNext is the SR paper's extension value: the last point plus the
// mean gradient of the preceding g points.
func estimateNext(win []float64, g int) float64 {
	n := len(win)
	if g >= n {
		g = n - 1
	}
	if g < 1 {
		return win[n-1]
	}
	var grad float64
	for j := 1; j <= g; j++ {
		grad += (win[n-1] - win[n-1-j]) / float64(j)
	}
	grad /= float64(g)
	return win[n-1] + grad
}

// saliency computes the spectral-residual saliency map of xs.
func saliency(xs []float64, avgW int) []float64 {
	buf := fft.PadPow2(xs)
	// PadPow2 guarantees a power-of-two length; the checked transform is
	// belt and braces so no input length can ever panic this path.
	if err := fft.TransformChecked(buf); err != nil {
		return make([]float64, len(xs))
	}
	m := len(buf)
	logAmp := make([]float64, m)
	phase := make([]float64, m)
	for i, v := range buf {
		logAmp[i] = math.Log(cmplx.Abs(v) + 1e-12)
		phase[i] = cmplx.Phase(v)
	}
	avg := movingAvg(logAmp, avgW)
	for i := range buf {
		buf[i] = cmplx.Rect(math.Exp(logAmp[i]-avg[i]), phase[i])
	}
	if err := fft.InverseChecked(buf); err != nil {
		return make([]float64, len(xs))
	}
	out := make([]float64, len(xs))
	for i := range out {
		out[i] = cmplx.Abs(buf[i])
	}
	return out
}

func movingAvg(xs []float64, w int) []float64 {
	n := len(xs)
	out := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += xs[i]
		if i >= w {
			sum -= xs[i-w]
		}
		span := w
		if i+1 < w {
			span = i + 1
		}
		out[i] = sum / float64(span)
	}
	return out
}
