package contextose

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestNovelContextFlagged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1200)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/60) + rng.NormFloat64()*0.15
	}
	// A never-before-seen shape: a steep ramp.
	for i := 800; i < 816; i++ {
		vals[i] += float64(i-800) * 1.2
	}
	got := New(Config{}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i >= 800 && i <= 835 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("novel context not flagged: %v", got)
	}
}

func TestRepeatedContextLearned(t *testing.T) {
	// The same unusual shape repeated many times becomes a known
	// context: later occurrences score lower than the first.
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 1600)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.1
	}
	for rep := 0; rep < 8; rep++ {
		start := 150 + rep*180
		for j := 0; j < 10; j++ {
			vals[start+j] = 5
		}
	}
	got := New(Config{Contamination: 0.02}).Detect(series.New("x", vals))
	early, late := 0, 0
	for _, i := range got {
		if i < 400 {
			early++
		}
		if i > 1200 {
			late++
		}
	}
	if late > early {
		t.Errorf("later repeats flagged more (%d) than early ones (%d)", late, early)
	}
}

func TestSignatureDistance(t *testing.T) {
	a := sig([]float64{0, 0, 0, 0})
	b := sig([]float64{0, 0, 5, 5})
	if sigDist(a, a) != 0 {
		t.Error("self distance nonzero")
	}
	if sigDist(a, b) <= 0 {
		t.Error("distinct signatures at zero distance")
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 10))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}
