// Package contextose implements a contextual anomaly detector in the
// style of ContextOSE (the "Contextual Anomaly Detector - Open Source
// Edition" run by the Numenta Benchmark, cited as a Figure 7 baseline):
// each window is summarized by a small statistical signature (mean, span,
// end-slope); a point is anomalous when its window's signature has no
// close match among the previously observed contexts.
package contextose

import (
	"math"

	"cabd/internal/baselines/common"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes the detector.
type Config struct {
	Window        int     // context length (default 16)
	MaxContexts   int     // context memory (default 400)
	Contamination float64 // flagged fraction; <= 0 uses the robust-z rule
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MaxContexts <= 0 {
		c.MaxContexts = 400
	}
}

// Detector is the ContextOSE-style baseline.
type Detector struct {
	cfg Config
}

// New returns a contextual detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "ContextOSE" }

type signature [4]float64

func sig(win []float64) signature {
	n := len(win)
	half := n / 2
	return signature{
		stats.Mean(win),
		stats.Max(win) - stats.Min(win),
		win[n-1] - win[0],
		stats.Mean(win[half:]) - stats.Mean(win[:half]),
	}
}

func sigDist(a, b signature) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Detect streams over the standardized series: each point is scored by
// the distance from its context signature to the nearest remembered
// context (novel contexts score high), then the context is learned.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	w := d.cfg.Window
	if n < 2*w {
		return nil
	}
	xs := stats.Standardize(s.Values)
	var memory []signature
	scores := make([]float64, n)
	for i := w; i < n; i++ {
		cur := sig(xs[i-w : i])
		if len(memory) > 0 {
			best := math.Inf(1)
			for _, m := range memory {
				if ds := sigDist(cur, m); ds < best {
					best = ds
				}
			}
			scores[i] = best
		}
		memory = append(memory, cur)
		if len(memory) > d.cfg.MaxContexts {
			memory = memory[1:]
		}
	}
	return common.Threshold(scores, d.cfg.Contamination)
}
