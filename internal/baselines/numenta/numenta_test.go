package numenta

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestFlagsPredictionBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1500)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/80) + rng.NormFloat64()*0.1
	}
	spikes := []int{701, 1103}
	for _, p := range spikes {
		vals[p] += 10
	}
	got := New(Config{}).Detect(series.New("x", vals))
	for _, p := range spikes {
		ok := false
		for _, i := range got {
			if i >= p-2 && i <= p+10 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("spike %d missed: %v", p, got)
		}
	}
}

func TestFiresOnLevelShift(t *testing.T) {
	// The paper's Figure 1 point: Numenta confuses change points with
	// anomalies — a fresh level shift must raise the anomaly likelihood.
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 1200)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.2
		if i >= 800 {
			vals[i] += 6
		}
	}
	got := New(Config{}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i >= 798 && i <= 815 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("level shift not flagged (should be confused as anomaly): %v", got)
	}
}

func TestSparseAlarms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	got := New(Config{}).Detect(series.New("x", vals))
	if len(got) > 30 {
		t.Errorf("noise produced %d alarms at the default threshold", len(got))
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 10))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}
