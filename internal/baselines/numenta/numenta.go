// Package numenta implements an anomaly-likelihood detector in the style
// of Numenta/NAB [22]. The full Hierarchical Temporal Memory model is
// thousands of lines of cortical-learning machinery orthogonal to this
// paper's claims; per DESIGN.md the substitution keeps the two layers the
// comparison actually exercises: (1) a streaming predictor whose
// prediction error spikes on unexpected values, and (2) Numenta's anomaly
// likelihood post-processing — the tail probability of the short-term
// mean error under the long-term error distribution. The resulting
// detector behaves like the paper's Numenta row: it fires on fresh level
// shifts (change points confused as anomalies) and struggles with
// in-distribution collective errors.
package numenta

import (
	"math"
	"sort"

	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes the detector.
type Config struct {
	ShortWindow int     // short-term error average (default 10)
	LongWindow  int     // long-term error distribution (default 400)
	Threshold   float64 // likelihood needed to flag (default 0.999)
	LR          float64 // online AR predictor learning rate (default 0.05)
	Order       int     // AR order (default 5)
}

func (c *Config) defaults() {
	if c.ShortWindow <= 0 {
		c.ShortWindow = 10
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 400
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.999
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Order <= 0 {
		c.Order = 5
	}
}

// Detector is the Numenta-style baseline.
type Detector struct {
	cfg Config
}

// New returns an anomaly-likelihood detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "Numenta" }

// Detect runs the online predictor, computes raw anomaly scores from the
// normalized prediction error and flags points whose anomaly likelihood
// exceeds the threshold.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	p := d.cfg.Order
	if n < p+2*d.cfg.ShortWindow {
		return nil
	}
	xs := stats.Standardize(s.Values)
	w := make([]float64, p) // AR weights, LMS-adapted
	raw := make([]float64, n)
	for i := p; i < n; i++ {
		var pred float64
		for j := 0; j < p; j++ {
			pred += w[j] * xs[i-1-j]
		}
		err := xs[i] - pred
		raw[i] = math.Abs(err)
		// Normalized LMS update.
		var norm float64
		for j := 0; j < p; j++ {
			norm += xs[i-1-j] * xs[i-1-j]
		}
		if norm < 1e-6 {
			norm = 1e-6
		}
		for j := 0; j < p; j++ {
			w[j] += d.cfg.LR * err * xs[i-1-j] / norm
		}
	}
	// Anomaly likelihood: Q(short-term mean | long-term distribution).
	var out []int
	for i := p; i < n; i++ {
		llo := i - d.cfg.LongWindow
		if llo < p {
			llo = p
		}
		long := raw[llo : i+1]
		slo := i - d.cfg.ShortWindow + 1
		if slo < p {
			slo = p
		}
		short := raw[slo : i+1]
		mu := stats.Mean(long)
		sd := stats.Std(long)
		if sd < 1e-9 {
			sd = 1e-9
		}
		lik := stats.NormalCDF((stats.Mean(short) - mu) / sd)
		if i >= p+d.cfg.ShortWindow && lik >= d.cfg.Threshold {
			// Attribute the alarm to the largest raw error inside the
			// short window (the likelihood stays elevated for several
			// steps after the offending observation).
			best, bi := -1.0, i
			for j := slo; j <= i; j++ {
				if raw[j] > best {
					best, bi = raw[j], j
				}
			}
			out = append(out, bi)
		}
	}
	out = dedupSorted(out)
	return out
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, v := range xs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
