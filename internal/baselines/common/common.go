// Package common provides the shared plumbing of the baseline detectors
// compared against CABD in Section V-D: sliding-window embeddings,
// score-to-detection thresholding and the Detector interface the
// experiment harness drives.
package common

import (
	"sort"

	"cabd/internal/series"
	"cabd/internal/stats"
)

// Detector is the minimal contract every baseline satisfies: map a series
// to the indices it flags as anomalous.
type Detector interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Detect returns the flagged indices, sorted ascending.
	Detect(s *series.Series) []int
}

// Windows embeds xs into overlapping windows of length w with stride 1:
// row i covers xs[i : i+w]. Returns nil when w is out of range.
func Windows(xs []float64, w int) [][]float64 {
	n := len(xs)
	if w <= 0 || w > n {
		return nil
	}
	out := make([][]float64, n-w+1)
	for i := range out {
		out[i] = xs[i : i+w]
	}
	return out
}

// Threshold converts per-point anomaly scores (higher = more anomalous)
// into detections. With contamination > 0 the top contamination fraction
// is flagged (the "percentage of abnormal data" parameter of SPOT/DSPOT/
// DONUT the paper calls dataset specific); otherwise a robust z-test at 6
// MADs (~4 sigma under normality) flags the outliers of the score
// distribution itself.
func Threshold(scores []float64, contamination float64) []int {
	n := len(scores)
	if n == 0 {
		return nil
	}
	var out []int
	if contamination > 0 {
		k := int(contamination * float64(n))
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		out = append(out, idx[:k]...)
		sort.Ints(out)
		return out
	}
	rz := stats.RobustZ(scores)
	for i, z := range rz {
		if z > 6 && scores[i] > stats.Median(scores) {
			out = append(out, i)
		}
	}
	return out
}

// SpreadWindowScores assigns window scores back to point scores: each
// point receives the maximum score among the windows containing it. w is
// the window length used to build the scores.
func SpreadWindowScores(winScores []float64, n, w int) []float64 {
	out := make([]float64, n)
	for wi, s := range winScores {
		for j := wi; j < wi+w && j < n; j++ {
			if s > out[j] {
				out[j] = s
			}
		}
	}
	return out
}

// LastPointWindowScores assigns each window score to the window's last
// point (streaming detectors score the newest observation). Points before
// the first complete window score 0.
func LastPointWindowScores(winScores []float64, n, w int) []float64 {
	out := make([]float64, n)
	for wi, s := range winScores {
		p := wi + w - 1
		if p < n {
			out[p] = s
		}
	}
	return out
}
