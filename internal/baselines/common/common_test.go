package common

import (
	"math/rand"
	"testing"
)

func TestWindows(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	w := Windows(xs, 3)
	if len(w) != 3 || w[0][0] != 1 || w[2][2] != 5 {
		t.Errorf("Windows = %v", w)
	}
	if Windows(xs, 6) != nil || Windows(xs, 0) != nil {
		t.Error("degenerate windows should be nil")
	}
}

func TestThresholdContamination(t *testing.T) {
	scores := []float64{0, 1, 9, 2, 8, 1}
	got := Threshold(scores, 2.0/6.0)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("Threshold = %v, want [2 4]", got)
	}
	// Contamination so small it still flags one point.
	got = Threshold(scores, 1e-9)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("tiny contamination = %v", got)
	}
}

func TestThresholdRobustZ(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 200)
	for i := range scores {
		scores[i] = rng.NormFloat64() * 0.1
	}
	scores[50] = 10
	scores[120] = 12
	got := Threshold(scores, 0)
	if len(got) != 2 || got[0] != 50 || got[1] != 120 {
		t.Errorf("robust-z threshold = %v, want [50 120]", got)
	}
	if Threshold(nil, 0) != nil {
		t.Error("empty scores should be nil")
	}
}

func TestSpreadWindowScores(t *testing.T) {
	// Two windows of length 3 over 4 points.
	win := []float64{1, 5}
	got := SpreadWindowScores(win, 4, 3)
	want := []float64{1, 5, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spread[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLastPointWindowScores(t *testing.T) {
	win := []float64{1, 5}
	got := LastPointWindowScores(win, 4, 3)
	want := []float64{0, 0, 1, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lastpoint[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
