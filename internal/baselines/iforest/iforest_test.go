package iforest

import (
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func base(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	ar := 0.0
	for i := range vals {
		ar = 0.5*ar + rng.NormFloat64()*0.3
		vals[i] = ar
	}
	return vals
}

func TestIsolatesOutliers(t *testing.T) {
	vals := base(1, 1000)
	vals[250] = 20
	vals[750] = -18
	got := New(Config{Contamination: 0.005}).Detect(series.New("x", vals))
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	if !found[250] || !found[750] {
		t.Errorf("outliers missed: %v", got)
	}
}

func TestDiffFeatureCatchesJumps(t *testing.T) {
	// A point whose VALUE is ordinary but whose jump is extreme: the
	// (value, diff) embedding must catch it.
	vals := base(2, 800)
	vals[400] = vals[399] + 15
	vals[401] = vals[399] // jump back
	got := New(Config{Contamination: 0.005}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i >= 399 && i <= 401 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("jump not isolated: %v", got)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	vals := base(3, 600)
	vals[300] = 25
	a := New(Config{Seed: 9}).Detect(series.New("x", vals))
	b := New(Config{Seed: 9}).Detect(series.New("x", vals))
	if len(a) != len(b) {
		t.Fatalf("counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSampleSizeSmallerThanN(t *testing.T) {
	vals := base(4, 100)
	vals[50] = 30
	got := New(Config{SampleSize: 64, Trees: 50, Contamination: 0.01}).
		Detect(series.New("x", vals))
	if len(got) == 0 || got[0] != 50 {
		t.Errorf("small-sample forest missed the spike: %v", got)
	}
}

func TestAvgPathLength(t *testing.T) {
	if avgPathLength(1) != 0 {
		t.Error("c(1) should be 0")
	}
	// c(n) grows with n, slower than linearly.
	c256, c512 := avgPathLength(256), avgPathLength(512)
	if c512 <= c256 || c512 > 2*c256 {
		t.Errorf("c(256)=%v c(512)=%v", c256, c512)
	}
}

func TestDegenerate(t *testing.T) {
	d := New(Config{})
	if got := d.Detect(series.New("x", nil)); got != nil {
		t.Errorf("nil input: %v", got)
	}
	if got := d.Detect(series.New("x", make([]float64, 50))); len(got) != 0 {
		t.Errorf("constant input flagged %d", len(got))
	}
}
