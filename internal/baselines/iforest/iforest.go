// Package iforest implements Isolation Forest (Liu, Ting, Zhou [27]),
// a supervised-family baseline of Figure 8. Points are embedded as
// (value, first difference) pairs; anomalies isolate in few random splits.
package iforest

import (
	"math"
	"math/rand"

	"cabd/internal/baselines/common"
	"cabd/internal/series"
)

// Config parameterizes the forest.
type Config struct {
	Trees         int     // default 100
	SampleSize    int     // sub-sample per tree (default 256)
	Seed          int64   // default 1
	Contamination float64 // flagged fraction; <= 0 uses the robust-z rule
}

// Detector is the Isolation Forest baseline.
type Detector struct {
	cfg Config
}

// New returns an Isolation Forest detector.
func New(cfg Config) *Detector {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 256
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "IF" }

type itree struct {
	feature     int
	split       float64
	size        int // leaf size (external node)
	left, right *itree
}

// Detect embeds each point as (value, diff), grows the forest and scores
// by the standard 2^(-E[h]/c(n)) path-length statistic.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	if n == 0 {
		return nil
	}
	data := make([][2]float64, n)
	for i, v := range s.Values {
		diff := 0.0
		if i > 0 {
			diff = v - s.Values[i-1]
		}
		data[i] = [2]float64{v, diff}
	}
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	sample := d.cfg.SampleSize
	if sample > n {
		sample = n
	}
	maxDepth := int(math.Ceil(math.Log2(float64(sample)))) + 1
	trees := make([]*itree, d.cfg.Trees)
	idx := make([]int, sample)
	for t := range trees {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		trees[t] = build(data, append([]int(nil), idx...), 0, maxDepth, rng)
	}
	cn := avgPathLength(sample)
	scores := make([]float64, n)
	for i, p := range data {
		var h float64
		for _, tr := range trees {
			h += pathLength(tr, p, 0)
		}
		h /= float64(len(trees))
		scores[i] = math.Pow(2, -h/cn)
	}
	return common.Threshold(scores, d.cfg.Contamination)
}

func build(data [][2]float64, idx []int, depth, maxDepth int, rng *rand.Rand) *itree {
	if depth >= maxDepth || len(idx) <= 1 {
		return &itree{size: len(idx)}
	}
	f := rng.Intn(2)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		v := data[i][f]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return &itree{size: len(idx)}
	}
	split := lo + rng.Float64()*(hi-lo)
	var li, ri []int
	for _, i := range idx {
		if data[i][f] < split {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &itree{
		feature: f, split: split,
		left:  build(data, li, depth+1, maxDepth, rng),
		right: build(data, ri, depth+1, maxDepth, rng),
	}
}

func pathLength(t *itree, p [2]float64, depth int) float64 {
	if t.left == nil {
		return float64(depth) + avgPathLength(t.size)
	}
	if p[t.feature] < t.split {
		return pathLength(t.left, p, depth+1)
	}
	return pathLength(t.right, p, depth+1)
}

// avgPathLength is c(n), the average unsuccessful BST search length.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}
