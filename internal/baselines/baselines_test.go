// Package baselines_test exercises the whole baseline suite against a
// common battery of synthetic scenarios: every detector must find gross
// spike anomalies with usable recall, survive degenerate inputs, and run
// deterministically. Per-algorithm behaviours are tested in each package;
// this file guards the shared Detector contract.
package baselines_test

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/baselines/bocpd"
	"cabd/internal/baselines/common"
	"cabd/internal/baselines/contextose"
	"cabd/internal/baselines/donut"
	"cabd/internal/baselines/fbag"
	"cabd/internal/baselines/hbos"
	"cabd/internal/baselines/iforest"
	"cabd/internal/baselines/knncad"
	"cabd/internal/baselines/luminol"
	"cabd/internal/baselines/mcd"
	"cabd/internal/baselines/numenta"
	"cabd/internal/baselines/relent"
	"cabd/internal/baselines/spot"
	"cabd/internal/baselines/sr"
	"cabd/internal/baselines/twitteresd"
	"cabd/internal/eval"
	"cabd/internal/series"
)

// spikySeries builds a smooth seasonal series with strong spikes.
func spikySeries(seed int64, n int, spikes []int) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	ar := 0.0
	for i := range vals {
		ar = 0.6*ar + rng.NormFloat64()*0.2
		vals[i] = ar + 2*math.Sin(2*math.Pi*float64(i)/100)
	}
	s := series.New("spiky", vals)
	labels := s.EnsureLabels()
	for _, p := range spikes {
		vals[p] += 15
		labels[p] = series.SingleAnomaly
	}
	return s
}

func allDetectors() []common.Detector {
	return []common.Detector{
		hbos.New(hbos.Config{}),
		iforest.New(iforest.Config{}),
		fbag.New(fbag.Config{}),
		mcd.New(mcd.Config{}),
		spot.New(spot.Config{Q: 1e-3}),
		spot.New(spot.Config{Q: 1e-3, Depth: 20}),
		knncad.New(knncad.Config{}),
		luminol.New(luminol.Config{}),
		twitteresd.New(twitteresd.Config{}),
		relent.New(relent.Config{}),
		bocpd.New(bocpd.Config{}),
		numenta.New(numenta.Config{}),
		contextose.New(contextose.Config{}),
		sr.New(sr.Config{}),
		donut.New(donut.Config{Epochs: 8}),
	}
}

// minRecall is the per-detector floor on gross 15-sigma spikes. The weak
// detectors (whose poor quality is part of the paper's Figure 7 story)
// only need to hit some of the spikes; point-precise algorithms must hit
// most. SPOT skips its calibration prefix, so the first spike is exempt
// for the streaming family.
var minRecall = map[string]float64{
	"HBOS": 0.75, "IF": 0.75, "F-Bag": 0.5, "MCD": 0.75,
	"SPOT": 0.5, "DSPOT": 0.5, "KNN-CAD": 0.25, "Luminol": 0.25,
	"Twitter-AD": 0.75, "RelEntropy": 0.25,
	"Numenta": 0.25, "ContextOSE": 0.25, "SR": 0.5, "DONUT": 0.25,
}

func TestDetectorsFindGrossSpikes(t *testing.T) {
	// Irregular positions: equally spaced spikes would alias with the
	// seasonal-period estimation of the decomposition-based detectors.
	spikes := []int{293, 608, 921, 1177}
	s := spikySeries(1, 1500, spikes)
	for _, det := range allDetectors() {
		if det.Name() == "BOCPD" {
			continue // change-point semantics: see TestBOCPDFindsLevelShift
		}
		got := det.Detect(s)
		m := eval.Match(got, spikes, 3)
		if m.Recall < minRecall[det.Name()] {
			t.Errorf("%s: recall = %v on gross spikes, want >= %v (found %d points)",
				det.Name(), m.Recall, minRecall[det.Name()], len(got))
		}
	}
}

// TestBOCPDFindsLevelShift checks BOCPD's native change-point semantics:
// a persistent level shift collapses the run-length posterior within a
// few observations.
func TestBOCPDFindsLevelShift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 600)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.3
		if i >= 300 {
			vals[i] += 6
		}
	}
	got := bocpd.New(bocpd.Config{}).Detect(series.New("shift", vals))
	ok := false
	for _, i := range got {
		if i >= 298 && i <= 305 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("BOCPD missed the level shift at 300: %v", got)
	}
}

func TestDetectorsSortedOutput(t *testing.T) {
	s := spikySeries(2, 1000, []int{250, 750})
	for _, det := range allDetectors() {
		got := det.Detect(s)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Errorf("%s: output not sorted", det.Name())
			}
		}
		for _, idx := range got {
			if idx < 0 || idx >= s.Len() {
				t.Errorf("%s: index %d out of range", det.Name(), idx)
			}
		}
	}
}

func TestDetectorsDegenerateInputs(t *testing.T) {
	for _, det := range allDetectors() {
		for _, vals := range [][]float64{nil, {1}, {1, 2, 3},
			make([]float64, 100)} {
			// Must not panic; flat series should flag little or nothing.
			got := det.Detect(series.New("d", vals))
			if len(vals) <= 3 && len(got) > len(vals) {
				t.Errorf("%s: tiny input produced %d detections", det.Name(), len(got))
			}
		}
	}
}

func TestDetectorsDeterministic(t *testing.T) {
	s := spikySeries(3, 800, []int{400})
	for _, det := range allDetectors() {
		a := det.Detect(s)
		b := det.Detect(s)
		if len(a) != len(b) {
			t.Errorf("%s: nondeterministic count %d vs %d", det.Name(), len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: nondeterministic output", det.Name())
				break
			}
		}
	}
}
