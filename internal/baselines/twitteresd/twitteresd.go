// Package twitteresd implements Twitter's Seasonal Hybrid ESD anomaly
// detection (Vallis, Hochenbaum, Kejariwal [37]): a seasonal-median
// decomposition removes period structure, then the Generalized Extreme
// Studentized Deviate test with robust (median/MAD) statistics flags up
// to MaxAnoms outliers. A Figure 7 baseline.
package twitteresd

import (
	"math"
	"sort"

	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes S-H-ESD.
type Config struct {
	Period   int     // seasonality period; 0 = auto-estimate
	MaxAnoms float64 // max fraction of anomalies (default 0.02)
	Alpha    float64 // test significance (default 0.05)
}

func (c *Config) defaults() {
	if c.MaxAnoms <= 0 {
		c.MaxAnoms = 0.02
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
}

// Detector is the Twitter-AD baseline.
type Detector struct {
	cfg Config
}

// New returns an S-H-ESD detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "Twitter-AD" }

// Detect removes the seasonal median profile and the overall median, then
// runs generalized ESD on the residuals.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	if n < 20 {
		return nil
	}
	period := d.cfg.Period
	if period <= 0 {
		period = estimatePeriod(s.Values)
	}
	resid := deseasonalize(s.Values, period)
	maxK := int(d.cfg.MaxAnoms * float64(n))
	if maxK < 1 {
		maxK = 1
	}
	idx := esd(resid, maxK, d.cfg.Alpha)
	sort.Ints(idx)
	return idx
}

// estimatePeriod picks the lag (in [4, n/3]) with maximal autocorrelation.
func estimatePeriod(xs []float64) int {
	n := len(xs)
	maxLag := n / 3
	if maxLag > 400 {
		maxLag = 400
	}
	z := stats.Standardize(xs)
	best, bestLag := -1.0, 24
	for lag := 4; lag <= maxLag; lag++ {
		var c float64
		for i := lag; i < n; i++ {
			c += z[i] * z[i-lag]
		}
		c /= float64(n - lag)
		if c > best {
			best, bestLag = c, lag
		}
	}
	return bestLag
}

// deseasonalize subtracts the per-phase median and the global median.
func deseasonalize(xs []float64, period int) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if period < 2 || period >= n {
		med := stats.Median(xs)
		for i, v := range xs {
			out[i] = v - med
		}
		return out
	}
	phase := make([][]float64, period)
	for i, v := range xs {
		phase[i%period] = append(phase[i%period], v)
	}
	med := make([]float64, period)
	for p := range phase {
		med[p] = stats.Median(phase[p])
	}
	for i, v := range xs {
		out[i] = v - med[i%period]
	}
	global := stats.Median(out)
	for i := range out {
		out[i] -= global
	}
	return out
}

// esd runs the hybrid (median/MAD) Generalized ESD test for up to maxK
// outliers at significance alpha.
func esd(xs []float64, maxK int, alpha float64) []int {
	n := len(xs)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := n
	var flagged []int
	var pending []int
	lastSignificant := 0
	for k := 1; k <= maxK && remaining > 2; k++ {
		med, mad := robustStats(xs, active)
		if mad == 0 {
			break
		}
		// Most extreme remaining point.
		best, bi := -1.0, -1
		for i := range xs {
			if !active[i] {
				continue
			}
			r := math.Abs(xs[i]-med) / mad
			if r > best {
				best, bi = r, i
			}
		}
		if bi < 0 {
			break
		}
		active[bi] = false
		remaining--
		pending = append(pending, bi)
		// Critical value lambda_k.
		nf := float64(remaining + 1)
		p := 1 - alpha/(2*nf)
		tq := stats.StudentTQuantile(p, nf-2)
		lambda := (nf - 1) * tq / math.Sqrt((nf-2+tq*tq)*nf)
		if best > lambda {
			lastSignificant = len(pending)
		}
	}
	flagged = append(flagged, pending[:lastSignificant]...)
	return flagged
}

func robustStats(xs []float64, active []bool) (med, mad float64) {
	vals := make([]float64, 0, len(xs))
	for i, v := range xs {
		if active[i] {
			vals = append(vals, v)
		}
	}
	med = stats.Median(vals)
	dev := make([]float64, len(vals))
	for i, v := range vals {
		dev[i] = math.Abs(v - med)
	}
	mad = stats.Median(dev)
	return med, mad
}
