package twitteresd

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestFindsSpikesInSeasonalData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1200)
	for i := range vals {
		vals[i] = 3*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*0.3
	}
	spikes := []int{301, 633, 997}
	for _, p := range spikes {
		vals[p] += 10
	}
	got := New(Config{Period: 48}).Detect(series.New("x", vals))
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	for _, p := range spikes {
		if !found[p] {
			t.Errorf("spike %d missed: %v", p, got)
		}
	}
}

func TestAutoPeriodEstimation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/73) + rng.NormFloat64()*0.2
	}
	p := estimatePeriod(vals)
	// Autocorrelation peaks at the period or a multiple.
	if p%73 > 3 && 73-(p%73) > 3 {
		t.Errorf("estimated period %d, want ~73k", p)
	}
}

func TestMaxAnomsCapsDetections(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	got := New(Config{MaxAnoms: 0.005}).Detect(series.New("x", vals))
	if len(got) > 5 {
		t.Errorf("MaxAnoms 0.5%% produced %d detections", len(got))
	}
}

func TestESDStopsWithoutOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	resid := make([]float64, 500)
	for i := range resid {
		resid[i] = rng.NormFloat64()
	}
	got := esd(resid, 25, 0.05)
	if len(got) > 6 {
		t.Errorf("clean residuals produced %d ESD detections", len(got))
	}
}

func TestDeseasonalizeRemovesProfile(t *testing.T) {
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = []float64{5, -3, 1}[i%3]
	}
	resid := deseasonalize(vals, 3)
	for i, r := range resid {
		if math.Abs(r) > 1e-9 {
			t.Fatalf("residual[%d] = %v, want 0", i, r)
		}
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 10))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}
