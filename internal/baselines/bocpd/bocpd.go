// Package bocpd implements Bayesian Online Changepoint Detection (Adams &
// MacKay [3]) with a Normal-Gamma conjugate observation model and constant
// hazard. The run-length posterior is maintained online; a collapse of
// the expected run length flags a change. A Figure 7 baseline (the paper
// runs it with the Numenta Benchmark settings as an anomaly detector).
package bocpd

import (
	"math"
	"sort"

	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes BOCPD.
type Config struct {
	Hazard float64 // constant hazard rate 1/lambda (default 1/250)
	// MinRun is the MAP run length a hypothesis must have reached
	// before its collapse counts as a change (default 15).
	MinRun int
	MaxRun int // run-length truncation (default 500)
}

func (c *Config) defaults() {
	if c.Hazard <= 0 {
		c.Hazard = 1.0 / 250
	}
	if c.MinRun <= 0 {
		c.MinRun = 15
	}
	if c.MaxRun <= 0 {
		c.MaxRun = 500
	}
}

// Detector is the BOCPD baseline.
type Detector struct {
	cfg Config
}

// New returns a BOCPD detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "BOCPD" }

// normalGamma tracks the sufficient statistics of one run hypothesis.
type normalGamma struct {
	mu, kappa, alpha, beta float64
}

func prior(scale float64) normalGamma {
	return normalGamma{mu: 0, kappa: 1, alpha: 1, beta: scale}
}

// predLogPDF is the Student-t posterior predictive log density.
func (ng normalGamma) predLogPDF(x float64) float64 {
	df := 2 * ng.alpha
	scale2 := ng.beta * (ng.kappa + 1) / (ng.alpha * ng.kappa)
	z := (x - ng.mu) * (x - ng.mu) / scale2
	// log Student-t via lgamma.
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	return lg1 - lg2 - 0.5*math.Log(df*math.Pi*scale2) -
		(df+1)/2*math.Log(1+z/df)
}

// update returns the posterior after observing x.
func (ng normalGamma) update(x float64) normalGamma {
	return normalGamma{
		mu:    (ng.kappa*ng.mu + x) / (ng.kappa + 1),
		kappa: ng.kappa + 1,
		alpha: ng.alpha + 0.5,
		beta:  ng.beta + ng.kappa*(x-ng.mu)*(x-ng.mu)/(2*(ng.kappa+1)),
	}
}

// Detect runs the message-passing recursion and flags a change when the
// maximum-a-posteriori run length collapses: under the Adams-MacKay
// recursion the normalized P(r_t = 0) identically equals the hazard (both
// branches share the same predictive factor), so the detectable signature
// is the posterior mass jumping from a long run to a short one on the
// following observations. The flagged index is the inferred changepoint
// t - r*.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	if n < 10 {
		return nil
	}
	xs := stats.Standardize(s.Values)
	h := d.cfg.Hazard

	runProb := []float64{1}
	models := []normalGamma{prior(1)}
	flagged := map[int]bool{}
	prevMAP := 0
	pendingCollapse := -1
	for t, x := range xs {
		k := len(runProb)
		pred := make([]float64, k)
		for r := 0; r < k; r++ {
			pred[r] = math.Exp(models[r].predLogPDF(x))
		}
		// Growth and changepoint probabilities.
		newProb := make([]float64, k+1)
		var cp float64
		for r := 0; r < k; r++ {
			joint := runProb[r] * pred[r]
			newProb[r+1] = joint * (1 - h)
			cp += joint * h
		}
		newProb[0] = cp
		// Normalize.
		var total float64
		for _, p := range newProb {
			total += p
		}
		if total <= 0 {
			newProb = []float64{1}
			models = []normalGamma{prior(1)}
			runProb = newProb
			continue
		}
		for i := range newProb {
			newProb[i] /= total
		}
		// Update models: run 0 restarts from the prior; run r+1 extends
		// model r with x.
		newModels := make([]normalGamma, k+1)
		newModels[0] = prior(1)
		for r := 0; r < k; r++ {
			newModels[r+1] = models[r].update(x)
		}
		// Truncate.
		if len(newProb) > d.cfg.MaxRun {
			newProb = newProb[:d.cfg.MaxRun]
			newModels = newModels[:d.cfg.MaxRun]
			var tt float64
			for _, p := range newProb {
				tt += p
			}
			for i := range newProb {
				newProb[i] /= tt
			}
		}
		runProb, models = newProb, newModels
		// MAP run length.
		rstar, best := 0, -1.0
		for r, p := range runProb {
			if p > best {
				best, rstar = p, r
			}
		}
		// A collapse is flagged only when it persists for a second
		// observation: a single noisy point briefly wins the short-run
		// hypothesis and immediately loses it again.
		if pendingCollapse >= 0 {
			if rstar <= 5 {
				cpAt := pendingCollapse
				if cpAt >= 0 {
					flagged[cpAt] = true
				}
			}
			pendingCollapse = -1
		} else if prevMAP >= d.cfg.MinRun && rstar <= 3 {
			pendingCollapse = t - rstar
		}
		prevMAP = rstar
	}
	out := make([]int, 0, len(flagged))
	for i := range flagged {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
