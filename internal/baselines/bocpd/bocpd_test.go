package bocpd

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestDetectsMultipleShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 900)
	levels := []float64{0, 5, -3}
	for i := range vals {
		vals[i] = levels[i/300] + rng.NormFloat64()*0.4
	}
	got := New(Config{}).Detect(series.New("x", vals))
	for _, truth := range []int{300, 600} {
		ok := false
		for _, i := range got {
			if i >= truth-3 && i <= truth+5 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("shift at %d missed: %v", truth, got)
		}
	}
}

func TestQuietOnStationaryData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	got := New(Config{}).Detect(series.New("x", vals))
	if len(got) > 5 {
		t.Errorf("stationary noise produced %d change points", len(got))
	}
}

func TestVarianceShift(t *testing.T) {
	// The Normal-Gamma model tracks variance too: a volatility change
	// is a change point.
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 800)
	for i := range vals {
		sd := 0.2
		if i >= 400 {
			sd = 3
		}
		vals[i] = rng.NormFloat64() * sd
	}
	got := New(Config{}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i >= 395 && i <= 420 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("variance shift missed: %v", got)
	}
}

func TestPredictivePDFIntegratesToOne(t *testing.T) {
	ng := prior(1)
	ng = ng.update(0.5)
	ng = ng.update(-0.2)
	var mass float64
	for x := -50.0; x <= 50; x += 0.01 {
		mass += math.Exp(ng.predLogPDF(x)) * 0.01
	}
	if math.Abs(mass-1) > 0.01 {
		t.Errorf("posterior predictive mass = %v", mass)
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 5))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}
