// Package spot implements SPOT and DSPOT (Siffer et al. [33]): streaming
// anomaly detection via extreme value theory. Excesses over an initial
// high quantile are fitted with a Generalized Pareto Distribution using
// Grimshaw's maximum-likelihood trick; the fitted tail yields a dynamic
// decision threshold z_q for a target risk q. DSPOT adds a drift
// correction (local mean removal) so the bound follows non-stationary
// streams. Both are Figure 8 baselines; the paper calls out their "q" as
// one of the dataset-specific parameters CABD avoids.
package spot

import (
	"math"
	"sort"

	"cabd/internal/series"
	"cabd/internal/stats"
)

// Config parameterizes SPOT.
type Config struct {
	Q         float64 // target risk (default 1e-4)
	InitFrac  float64 // calibration fraction (default 0.2, at least 50 pts)
	InitLevel float64 // initial threshold quantile (default 0.98)
	Depth     int     // DSPOT drift window (0 = plain SPOT)
	TwoSided  bool    // detect both tails (default behaviour of Detect)
}

func (c *Config) defaults() {
	if c.Q <= 0 {
		c.Q = 1e-4
	}
	if c.InitFrac <= 0 {
		c.InitFrac = 0.2
	}
	if c.InitLevel <= 0 {
		c.InitLevel = 0.98
	}
}

// Detector is the SPOT/DSPOT baseline.
type Detector struct {
	cfg Config
}

// New returns a SPOT detector (Depth = 0) or DSPOT (Depth > 0).
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string {
	if d.cfg.Depth > 0 {
		return "DSPOT"
	}
	return "SPOT"
}

// Detect runs the streaming POT procedure on both tails and returns the
// union of flagged indices.
func (d *Detector) Detect(s *series.Series) []int {
	up := d.tail(s.Values)
	neg := make([]float64, s.Len())
	for i, v := range s.Values {
		neg[i] = -v
	}
	down := d.tail(neg)
	set := map[int]bool{}
	for _, i := range up {
		set[i] = true
	}
	for _, i := range down {
		set[i] = true
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// tail runs one-sided SPOT/DSPOT on xs (upper tail).
func (d *Detector) tail(xs []float64) []int {
	n := len(xs)
	init := int(d.cfg.InitFrac * float64(n))
	if init < 50 {
		init = 50
	}
	if init >= n {
		return nil
	}
	depth := d.cfg.Depth
	// Drift correction: work on x_i - mean(last depth values).
	drift := func(i int) float64 {
		if depth <= 0 {
			return 0
		}
		lo := i - depth
		if lo < 0 {
			lo = 0
		}
		if lo == i {
			return 0
		}
		return stats.Mean(xs[lo:i])
	}
	calib := make([]float64, init)
	for i := 0; i < init; i++ {
		calib[i] = xs[i] - drift(i)
	}
	u := stats.Quantile(calib, d.cfg.InitLevel)
	var peaks []float64
	for _, v := range calib {
		if v > u {
			peaks = append(peaks, v-u)
		}
	}
	total := init
	zq := threshold(u, peaks, total, d.cfg.Q)
	var out []int
	for i := init; i < n; i++ {
		v := xs[i] - drift(i)
		switch {
		case v > zq:
			out = append(out, i)
		case v > u:
			peaks = append(peaks, v-u)
			total++
			zq = threshold(u, peaks, total, d.cfg.Q)
		default:
			total++
		}
	}
	return out
}

// threshold computes z_q from the GPD fit of the peaks.
func threshold(u float64, peaks []float64, total int, q float64) float64 {
	if len(peaks) == 0 {
		return u
	}
	gamma, sigma := Grimshaw(peaks)
	r := q * float64(total) / float64(len(peaks))
	if gamma != 0 {
		return u + sigma/gamma*(math.Pow(r, -gamma)-1)
	}
	return u - sigma*math.Log(r)
}

// Grimshaw fits a Generalized Pareto Distribution to the positive
// excesses ys by Grimshaw's reduction of the 2-parameter MLE to a 1-D
// root search, returning (gamma, sigma). The exponential fit (gamma = 0)
// is used when it has the best likelihood or no root exists.
func Grimshaw(ys []float64) (gamma, sigma float64) {
	n := len(ys)
	if n == 0 {
		return 0, 1
	}
	mean := stats.Mean(ys)
	if mean <= 0 {
		return 0, 1e-9
	}
	ymax := stats.Max(ys)
	ymin := stats.Min(ys)
	// Candidate tau ranges per the SPOT reference implementation.
	eps := 1e-8 / mean
	lo := -1/ymax + eps
	a := 2 * (mean - ymin) / (mean * ymin)
	b := 2 * (mean - ymin) / (ymin * ymin)
	if a <= 0 {
		a = eps
	}
	if b <= a {
		b = a + 1
	}

	uv := func(tau float64) (u, v float64) {
		for _, y := range ys {
			t := 1 + tau*y
			u += 1 / t
			v += math.Log(t)
		}
		u /= float64(n)
		v = 1 + v/float64(n)
		return u, v
	}
	f := func(tau float64) float64 {
		u, v := uv(tau)
		return u*v - 1
	}
	var roots []float64
	for _, rg := range [][2]float64{{lo, -eps}, {eps, a}, {a, b}} {
		roots = append(roots, bisectRoots(f, rg[0], rg[1], 24)...)
	}
	// Evaluate candidates (plus the exponential fit) by log-likelihood.
	bestLL := math.Inf(-1)
	gamma, sigma = 0, mean // exponential fit
	bestLL = expLL(ys, mean)
	for _, tau := range roots {
		_, v := uv(tau)
		g := v - 1
		if g == 0 || tau == 0 {
			continue
		}
		sg := g / tau
		if sg <= 0 {
			continue
		}
		ll := gpdLL(ys, g, sg)
		if ll > bestLL {
			bestLL, gamma, sigma = ll, g, sg
		}
	}
	return gamma, sigma
}

// bisectRoots scans [lo, hi] on a grid and bisects each sign change.
func bisectRoots(f func(float64) float64, lo, hi float64, grid int) []float64 {
	if hi <= lo {
		return nil
	}
	var roots []float64
	step := (hi - lo) / float64(grid)
	prevX := lo
	prevF := f(lo)
	for i := 1; i <= grid; i++ {
		x := lo + float64(i)*step
		fx := f(x)
		if prevF == 0 {
			roots = append(roots, prevX)
		} else if prevF*fx < 0 {
			a, b := prevX, x
			fa := prevF
			for it := 0; it < 60; it++ {
				m := (a + b) / 2
				fm := f(m)
				if fa*fm <= 0 {
					b = m
				} else {
					a, fa = m, fm
				}
			}
			roots = append(roots, (a+b)/2)
		}
		prevX, prevF = x, fx
	}
	return roots
}

func gpdLL(ys []float64, g, s float64) float64 {
	n := float64(len(ys))
	ll := -n * math.Log(s)
	for _, y := range ys {
		t := 1 + g*y/s
		if t <= 0 {
			return math.Inf(-1)
		}
		ll -= (1 + 1/g) * math.Log(t)
	}
	return ll
}

func expLL(ys []float64, mean float64) float64 {
	n := float64(len(ys))
	return -n*math.Log(mean) - n
}
