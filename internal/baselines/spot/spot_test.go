package spot

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestGrimshawExponential(t *testing.T) {
	// Exponential excesses are GPD with gamma = 0, sigma = mean.
	rng := rand.New(rand.NewSource(1))
	ys := make([]float64, 5000)
	for i := range ys {
		ys[i] = rng.ExpFloat64() * 2.5
	}
	gamma, sigma := Grimshaw(ys)
	if math.Abs(gamma) > 0.1 {
		t.Errorf("gamma = %v, want ~0", gamma)
	}
	if math.Abs(sigma-2.5) > 0.3 {
		t.Errorf("sigma = %v, want ~2.5", sigma)
	}
}

func TestGrimshawParetoTail(t *testing.T) {
	// Pareto-type excesses: Y = sigma/gamma * ((1-U)^-gamma - 1) is GPD.
	rng := rand.New(rand.NewSource(2))
	gammaTrue, sigmaTrue := 0.3, 1.5
	ys := make([]float64, 8000)
	for i := range ys {
		u := rng.Float64()
		ys[i] = sigmaTrue / gammaTrue * (math.Pow(1-u, -gammaTrue) - 1)
	}
	gamma, sigma := Grimshaw(ys)
	if math.Abs(gamma-gammaTrue) > 0.12 {
		t.Errorf("gamma = %v, want ~%v", gamma, gammaTrue)
	}
	if math.Abs(sigma-sigmaTrue) > 0.3 {
		t.Errorf("sigma = %v, want ~%v", sigma, sigmaTrue)
	}
}

func TestGrimshawDegenerate(t *testing.T) {
	if g, s := Grimshaw(nil); g != 0 || s != 1 {
		t.Errorf("empty excesses: %v %v", g, s)
	}
	g, s := Grimshaw([]float64{1, 1, 1, 1})
	if math.IsNaN(g) || math.IsNaN(s) || s <= 0 {
		t.Errorf("constant excesses: %v %v", g, s)
	}
}

func TestSPOTFlagsExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	spikes := []int{800, 1200, 1600}
	for _, p := range spikes {
		vals[p] = 12
	}
	got := New(Config{Q: 1e-3}).Detect(series.New("x", vals))
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	for _, p := range spikes {
		if !found[p] {
			t.Errorf("spike at %d not flagged: %v", p, got)
		}
	}
	// False-alarm control: the target risk must roughly hold.
	if len(got) > 40 {
		t.Errorf("flagged %d points at q=1e-3 over 2000", len(got))
	}
}

func TestSPOTTwoSided(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	vals[1000] = -12 // lower-tail anomaly
	got := New(Config{Q: 1e-3}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i == 1000 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("lower-tail spike not flagged: %v", got)
	}
}

func TestDSPOTFollowsDrift(t *testing.T) {
	// A slow upward drift must not flood DSPOT with alarms; a genuine
	// spike on top of the drift must still fire.
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = float64(i)*0.01 + rng.NormFloat64()
	}
	vals[2500] += 12
	det := New(Config{Q: 1e-3, Depth: 30})
	got := det.Detect(series.New("x", vals))
	if len(got) > 60 {
		t.Errorf("DSPOT flooded by drift: %d alarms", len(got))
	}
	ok := false
	for _, i := range got {
		if i == 2500 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("drifted spike not flagged: %v", got)
	}
}

func TestNames(t *testing.T) {
	if New(Config{}).Name() != "SPOT" {
		t.Error("SPOT name")
	}
	if New(Config{Depth: 10}).Name() != "DSPOT" {
		t.Error("DSPOT name")
	}
}

func TestShortSeries(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 30))); len(got) != 0 {
		t.Errorf("short series flagged %v", got)
	}
}
