package mcd

import (
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestRobustToContamination(t *testing.T) {
	// 10% gross outliers must not drag the covariance estimate: MCD
	// should flag exactly the contaminated region.
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for i := 500; i < 600; i++ {
		vals[i] = 15 + rng.NormFloat64()
	}
	got := New(Config{Contamination: 0.11}).Detect(series.New("x", vals))
	inRegion := 0
	for _, i := range got {
		if i >= 500 && i < 601 {
			inRegion++
		}
	}
	if inRegion < 90 {
		t.Errorf("only %d/%d detections inside the contaminated region", inRegion, len(got))
	}
}

func TestFindsIsolatedOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.5
	}
	vals[250] = 20
	got := New(Config{Contamination: 0.005}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i == 250 || i == 251 { // the diff feature implicates 251 too
			ok = true
		}
	}
	if !ok {
		t.Errorf("isolated outlier missed: %v", got)
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	a := New(Config{Seed: 4}).Detect(series.New("x", vals))
	b := New(Config{Seed: 4}).Detect(series.New("x", vals))
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic output")
		}
	}
}

func TestDegenerate(t *testing.T) {
	d := New(Config{})
	if got := d.Detect(series.New("x", []float64{1, 2})); got != nil {
		t.Errorf("tiny input: %v", got)
	}
	// A constant series has singular covariance; regularization must
	// keep it NaN-free and quiet.
	got := d.Detect(series.New("x", make([]float64, 100)))
	if len(got) != 0 {
		t.Errorf("constant series flagged %d", len(got))
	}
}
