// Package mcd implements Minimum Covariance Determinant outlier detection
// (Hardin & Rocke [16]) via a FastMCD-style C-step iteration: find the
// half-sample whose covariance has minimal determinant, then score points
// by robust Mahalanobis distance. A Figure 8 baseline.
package mcd

import (
	"math/rand"
	"sort"

	"cabd/internal/baselines/common"
	"cabd/internal/ml/linalg"
	"cabd/internal/series"
)

// Config parameterizes MCD.
type Config struct {
	Starts        int     // random initial subsets (default 8)
	CSteps        int     // concentration steps per start (default 10)
	Seed          int64   // default 1
	Contamination float64 // flagged fraction; <= 0 uses the robust-z rule
}

// Detector is the MCD baseline.
type Detector struct {
	cfg Config
}

// New returns an MCD detector.
func New(cfg Config) *Detector {
	if cfg.Starts <= 0 {
		cfg.Starts = 8
	}
	if cfg.CSteps <= 0 {
		cfg.CSteps = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "MCD" }

// Detect embeds each point as (value, diff), finds the minimum-determinant
// half sample and thresholds the robust Mahalanobis distances.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	if n < 4 {
		return nil
	}
	data := make([][]float64, n)
	for i, v := range s.Values {
		diff := 0.0
		if i > 0 {
			diff = v - s.Values[i-1]
		}
		data[i] = []float64{v, diff}
	}
	h := (n + 3) / 2 // half sample
	rng := rand.New(rand.NewSource(d.cfg.Seed))

	bestDet := -1.0
	var bestMu []float64
	var bestL [][]float64
	for start := 0; start < d.cfg.Starts; start++ {
		subset := rng.Perm(n)[:h]
		mu, l, det, ok := fitSubset(data, subset)
		if !ok {
			continue
		}
		for step := 0; step < d.cfg.CSteps; step++ {
			subset = closestH(data, mu, l, h)
			var ok2 bool
			mu, l, det, ok2 = fitSubset(data, subset)
			if !ok2 {
				break
			}
		}
		if l != nil && (bestDet < 0 || det < bestDet) {
			bestDet, bestMu, bestL = det, mu, l
		}
	}
	if bestL == nil {
		return nil
	}
	scores := make([]float64, n)
	for i, row := range data {
		scores[i] = linalg.Mahalanobis2(row, bestMu, bestL)
	}
	return common.Threshold(scores, d.cfg.Contamination)
}

// fitSubset estimates mean/covariance of the subset and factors it.
func fitSubset(data [][]float64, subset []int) (mu []float64, l [][]float64, det float64, ok bool) {
	rows := make([][]float64, len(subset))
	for i, j := range subset {
		rows[i] = data[j]
	}
	mu = linalg.MeanVec(rows)
	cov := linalg.Regularize(linalg.Covariance(rows, mu), 1e-9)
	lch, err := linalg.Cholesky(cov)
	if err != nil {
		return nil, nil, 0, false
	}
	return mu, lch, linalg.CholeskyDet(lch), true
}

// closestH returns the h points with smallest Mahalanobis distance.
func closestH(data [][]float64, mu []float64, l [][]float64, h int) []int {
	n := len(data)
	type id struct {
		i int
		d float64
	}
	ds := make([]id, n)
	for i, row := range data {
		ds[i] = id{i, linalg.Mahalanobis2(row, mu, l)}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	out := make([]int, h)
	for i := 0; i < h; i++ {
		out[i] = ds[i].i
	}
	return out
}
