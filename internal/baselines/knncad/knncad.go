// Package knncad implements KNN-CAD (Burnaev & Ishimtsev [7]):
// conformalized k-nearest-neighbor anomaly detection over caterpillar
// (lag-vector) embeddings. The non-conformity measure of an observation is
// the sum of distances to its k nearest neighbors within a reference
// window; the conformal p-value compares it against a calibration set.
// A Figure 7 baseline; its "window length" is one of the dataset-specific
// parameters the paper criticizes.
package knncad

import (
	"math"
	"sort"

	"cabd/internal/baselines/common"
	"cabd/internal/series"
)

// Config parameterizes KNN-CAD.
type Config struct {
	Lag           int     // caterpillar dimension (default 12)
	Training      int     // reference window size (default 200)
	Calibration   int     // calibration set size (default 100)
	K             int     // neighbors (default 7)
	PValue        float64 // detection p-value (default 0.02; must exceed 1/(Calibration+1))
	Contamination float64 // optional top-k override of the p-value rule
}

func (c *Config) defaults() {
	if c.Lag <= 0 {
		c.Lag = 12
	}
	if c.Training <= 0 {
		c.Training = 200
	}
	if c.Calibration <= 0 {
		c.Calibration = 100
	}
	if c.K <= 0 {
		c.K = 7
	}
	if c.PValue <= 0 {
		c.PValue = 0.02
	}
	if floor := 1.5 / float64(c.Calibration+1); c.PValue < floor {
		c.PValue = floor
	}
}

// Detector is the KNN-CAD baseline.
type Detector struct {
	cfg Config
}

// New returns a KNN-CAD detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements common.Detector.
func (d *Detector) Name() string { return "KNN-CAD" }

// Detect slides over the series: each new lag vector's non-conformity is
// ranked against the calibration scores; a low conformal p-value flags
// the newest point.
func (d *Detector) Detect(s *series.Series) []int {
	n := s.Len()
	lag := d.cfg.Lag
	if n < lag+d.cfg.Training+d.cfg.Calibration+1 {
		// Series too short for the full protocol: shrink windows.
		t := n / 3
		c := n / 4
		if lag >= n/4 {
			lag = n / 4
		}
		if lag < 2 || t < 2*lag || c < 4 {
			return nil
		}
		d2 := *d
		d2.cfg.Lag, d2.cfg.Training, d2.cfg.Calibration = lag, t, c
		return d2.Detect(s)
	}
	wins := common.Windows(s.Values, lag)
	scores := make([]float64, n)
	train := d.cfg.Training
	calib := d.cfg.Calibration

	// One selection heap serves every non-conformity computation of this
	// run (caller-supplied scratch, reused allocation-free).
	scratch := make([]float64, 0, d.cfg.K)

	// Calibration scores over the initial segment.
	calScores := make([]float64, 0, calib)
	for i := train; i < train+calib; i++ {
		calScores = append(calScores, d.ncm(wins, i, i-train, i, scratch))
	}
	sorted := append([]float64(nil), calScores...)
	sort.Float64s(sorted)

	for i := train + calib; i < len(wins); i++ {
		ncm := d.ncm(wins, i, i-train, i, scratch)
		// Conformal p-value: fraction of calibration scores >= ncm.
		pos := sort.SearchFloat64s(sorted, ncm)
		p := float64(len(sorted)-pos+1) / float64(len(sorted)+1)
		point := i + lag - 1
		scores[point] = 1 - p
		// Slide the calibration set.
		old := calScores[0]
		calScores = append(calScores[1:], ncm)
		di := sort.SearchFloat64s(sorted, old)
		if di < len(sorted) {
			sorted = append(sorted[:di], sorted[di+1:]...)
		}
		ins := sort.SearchFloat64s(sorted, ncm)
		sorted = append(sorted, 0)
		copy(sorted[ins+1:], sorted[ins:])
		sorted[ins] = ncm
	}
	if d.cfg.Contamination > 0 {
		return common.Threshold(scores, d.cfg.Contamination)
	}
	var out []int
	for i, sc := range scores {
		if sc >= 1-d.cfg.PValue {
			out = append(out, i)
		}
	}
	return out
}

// ncm is the non-conformity measure: sum of the k smallest distances from
// window qi to the reference windows [lo, hi). The k smallest are selected
// with a size-k max-heap over squared distances in the caller-supplied
// scratch buffer — O(w log k) with no allocation and sqrt only on the k
// survivors, versus the former fresh O(w)-slice full sort per call.
func (d *Detector) ncm(wins [][]float64, qi, lo, hi int, scratch []float64) float64 {
	q := wins[qi]
	k := d.cfg.K
	h := scratch[:0]
	for j := lo; j < hi; j++ {
		if j == qi {
			continue
		}
		dd := sqDist(q, wins[j])
		if len(h) < k {
			h = append(h, dd)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if h[p] >= h[c] {
					break
				}
				h[p], h[c] = h[c], h[p]
				c = p
			}
		} else if dd < h[0] {
			h[0] = dd
			for c := 0; ; {
				l, r, m := 2*c+1, 2*c+2, c
				if l < k && h[l] > h[m] {
					m = l
				}
				if r < k && h[r] > h[m] {
					m = r
				}
				if m == c {
					break
				}
				h[c], h[m] = h[m], h[c]
				c = m
			}
		}
	}
	var sum float64
	for _, dd := range h {
		sum += math.Sqrt(dd)
	}
	return sum
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
