package knncad

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func seasonal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/60) + rng.NormFloat64()*0.2
	}
	return vals
}

func TestFlagsPatternBreak(t *testing.T) {
	vals := seasonal(1, 1500)
	for i := 900; i < 910; i++ {
		vals[i] = 12
	}
	got := New(Config{}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i >= 898 && i <= 922 { // lag vectors smear the alarm right
			ok = true
		}
	}
	if !ok {
		t.Errorf("pattern break not flagged: %v", got)
	}
}

func TestQuietOnRegularSeries(t *testing.T) {
	vals := seasonal(2, 1500)
	got := New(Config{}).Detect(series.New("x", vals))
	// A handful of conformal false alarms is expected at p=0.02, a
	// flood is not.
	if len(got) > 60 {
		t.Errorf("regular series produced %d alarms", len(got))
	}
}

func TestPValueFloorEnforced(t *testing.T) {
	d := New(Config{Calibration: 10, PValue: 0.001})
	if d.cfg.PValue < 1.5/11 {
		t.Errorf("p-value %v below achievable floor", d.cfg.PValue)
	}
}

func TestShortSeriesShrinksProtocol(t *testing.T) {
	vals := seasonal(3, 200)
	vals[150] = 15
	// Must not panic and should usually still work via shrunk windows.
	got := New(Config{}).Detect(series.New("x", vals))
	for _, i := range got {
		if i < 0 || i >= 200 {
			t.Errorf("index out of range: %d", i)
		}
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 10))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}
