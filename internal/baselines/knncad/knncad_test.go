package knncad

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func seasonal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/60) + rng.NormFloat64()*0.2
	}
	return vals
}

func TestFlagsPatternBreak(t *testing.T) {
	vals := seasonal(1, 1500)
	for i := 900; i < 910; i++ {
		vals[i] = 12
	}
	got := New(Config{}).Detect(series.New("x", vals))
	ok := false
	for _, i := range got {
		if i >= 898 && i <= 922 { // lag vectors smear the alarm right
			ok = true
		}
	}
	if !ok {
		t.Errorf("pattern break not flagged: %v", got)
	}
}

func TestQuietOnRegularSeries(t *testing.T) {
	vals := seasonal(2, 1500)
	got := New(Config{}).Detect(series.New("x", vals))
	// A handful of conformal false alarms is expected at p=0.02, a
	// flood is not.
	if len(got) > 60 {
		t.Errorf("regular series produced %d alarms", len(got))
	}
}

func TestPValueFloorEnforced(t *testing.T) {
	d := New(Config{Calibration: 10, PValue: 0.001})
	if d.cfg.PValue < 1.5/11 {
		t.Errorf("p-value %v below achievable floor", d.cfg.PValue)
	}
}

func TestShortSeriesShrinksProtocol(t *testing.T) {
	vals := seasonal(3, 200)
	vals[150] = 15
	// Must not panic and should usually still work via shrunk windows.
	got := New(Config{}).Detect(series.New("x", vals))
	for _, i := range got {
		if i < 0 || i >= 200 {
			t.Errorf("index out of range: %d", i)
		}
	}
}

func TestDegenerate(t *testing.T) {
	if got := New(Config{}).Detect(series.New("x", make([]float64, 10))); got != nil {
		t.Errorf("tiny input: %v", got)
	}
}

// TestNCMMatchesSortReference checks the heap selection against the
// straightforward sort-the-distances definition, including k larger than
// the reference window and duplicate windows (exact distance ties).
func TestNCMMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		w := 3 + rng.Intn(40)
		lag := 2 + rng.Intn(5)
		wins := make([][]float64, w)
		for i := range wins {
			row := make([]float64, lag)
			for j := range row {
				row[j] = float64(rng.Intn(3)) // coarse values: ties abound
			}
			wins[i] = row
		}
		k := 1 + rng.Intn(12)
		d := New(Config{K: k})
		qi := rng.Intn(w)
		scratch := make([]float64, 0, k)
		got := d.ncm(wins, qi, 0, w, scratch)

		var dists []float64
		for j := 0; j < w; j++ {
			if j == qi {
				continue
			}
			var s float64
			for x := range wins[j] {
				dd := wins[j][x] - wins[qi][x]
				s += dd * dd
			}
			dists = append(dists, math.Sqrt(s))
		}
		sortFloats(dists)
		kk := k
		if kk > len(dists) {
			kk = len(dists)
		}
		var want float64
		for i := 0; i < kk; i++ {
			want += dists[i]
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ncm = %v, want %v (w=%d k=%d)", trial, got, want, w, k)
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
