package lof

import (
	"math/rand"
	"testing"
)

func cluster(rng *rand.Rand, cx, cy float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}
	}
	return out
}

func TestOutlierScoresAboveInliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := cluster(rng, 0, 0, 100)
	data = append(data, []float64{8, 8}) // clear outlier
	scores := Scores(data, 10, nil)
	outlier := scores[len(scores)-1]
	for i := 0; i < 100; i++ {
		if scores[i] >= outlier {
			t.Fatalf("inlier %d (%.2f) scores above outlier (%.2f)", i, scores[i], outlier)
		}
	}
	if outlier < 2 {
		t.Errorf("outlier LOF = %v, want >> 1", outlier)
	}
}

func TestInliersNearOne(t *testing.T) {
	// A Gaussian cluster has genuine density variation, so tail points
	// legitimately reach LOF ~3; assert the bulk sits near 1.
	rng := rand.New(rand.NewSource(2))
	data := cluster(rng, 0, 0, 200)
	scores := Scores(data, 15, nil)
	nearOne := 0
	for i, s := range scores {
		if s != s || s < 0 {
			t.Fatalf("invalid LOF[%d] = %v", i, s)
		}
		if s > 0.8 && s < 1.5 {
			nearOne++
		}
	}
	if nearOne < 150 {
		t.Errorf("only %d/200 scores near 1", nearOne)
	}
}

func TestTwoDensityClusters(t *testing.T) {
	// A point at the edge of a sparse cluster should not outscore a
	// genuine between-cluster outlier.
	rng := rand.New(rand.NewSource(3))
	data := append(cluster(rng, 0, 0, 80), cluster(rng, 10, 10, 80)...)
	data = append(data, []float64{5, 5})
	scores := Scores(data, 10, nil)
	mid := scores[len(scores)-1]
	best := 0.0
	for _, s := range scores[:160] {
		if s > best {
			best = s
		}
	}
	if mid <= best {
		t.Errorf("between-cluster point LOF %v not above cluster max %v", mid, best)
	}
}

func TestDimsSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Outlier only in dimension 1.
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	data = append(data, []float64{0, 15})
	onlyDim0 := Scores(data, 10, []int{0})
	onlyDim1 := Scores(data, 10, []int{1})
	last := len(data) - 1
	if onlyDim1[last] < 2 {
		t.Errorf("dim-1 LOF of planted outlier = %v", onlyDim1[last])
	}
	if onlyDim0[last] > 2 {
		t.Errorf("dim-0 LOF should not see the outlier: %v", onlyDim0[last])
	}
}

func TestDegenerate(t *testing.T) {
	if got := Scores(nil, 5, nil); len(got) != 0 {
		t.Error("empty input")
	}
	one := Scores([][]float64{{1, 1}}, 5, nil)
	if len(one) != 1 || one[0] != 1 {
		t.Errorf("singleton LOF = %v, want [1]", one)
	}
	// Duplicate points: infinite density handled without NaN.
	dup := Scores([][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}, 2, nil)
	for i, s := range dup {
		if s != s { // NaN check
			t.Errorf("NaN LOF at %d", i)
		}
	}
}
