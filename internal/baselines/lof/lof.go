// Package lof implements the Local Outlier Factor of Breunig et al. [6]
// over arbitrary-dimensional embeddings. It is the component detector of
// the Feature Bagging baseline [23] and a classic density-based reference
// in its own right.
package lof

import (
	"math"
	"sort"
)

// Scores returns the LOF score of every row of data using k neighbors
// (higher = more outlying; ~1 = inlier). Feature subsets are selected via
// dims (nil = all dimensions). Complexity O(n^2 d) — acceptable at the
// evaluation sizes; LOF is not the runtime-critical baseline.
func Scores(data [][]float64, k int, dims []int) []float64 {
	n := len(data)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		// Single point: trivially an inlier.
		for i := range out {
			out[i] = 1
		}
		return out
	}
	if dims == nil {
		dims = make([]int, len(data[0]))
		for i := range dims {
			dims[i] = i
		}
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for _, f := range dims {
			d := a[f] - b[f]
			s += d * d
		}
		return math.Sqrt(s)
	}
	// k-NN lists and k-distances.
	type nb struct {
		idx int
		d   float64
	}
	neighbors := make([][]nb, n)
	kdist := make([]float64, n)
	for i := 0; i < n; i++ {
		all := make([]nb, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			all = append(all, nb{j, dist(data[i], data[j])})
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		neighbors[i] = all[:k]
		kdist[i] = all[k-1].d
	}
	// Local reachability density.
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for _, m := range neighbors[i] {
			reach := m.d
			if kdist[m.idx] > reach {
				reach = kdist[m.idx]
			}
			sum += reach
		}
		if sum == 0 {
			lrd[i] = math.Inf(1)
		} else {
			lrd[i] = float64(k) / sum
		}
	}
	// LOF = mean neighbor lrd over own lrd.
	for i := 0; i < n; i++ {
		var sum float64
		for _, m := range neighbors[i] {
			if math.IsInf(lrd[i], 1) {
				sum += 1
			} else if math.IsInf(lrd[m.idx], 1) {
				sum += 2 // denser neighbor: mildly outlying
			} else {
				sum += lrd[m.idx] / lrd[i]
			}
		}
		out[i] = sum / float64(k)
	}
	return out
}
