// Package oracle simulates the human annotator of the active-learning loop
// (Section IV). Each query is answered from the ground-truth labels of the
// series, exactly like the paper's experiments; the oracle counts its
// interactions so the benefit function (Equation 14) and the per-round
// traces of Table II can be computed.
package oracle

import "cabd/internal/series"

// Oracle answers point-label queries from ground truth.
type Oracle struct {
	s       *series.Series
	queries []int
}

// New wraps a labeled series. The series must carry ground-truth Labels;
// an unlabeled series answers Normal for every query.
func New(s *series.Series) *Oracle {
	return &Oracle{s: s}
}

// Label returns the ground-truth label of index i and records the query.
func (o *Oracle) Label(i int) series.Label {
	o.queries = append(o.queries, i)
	return o.s.LabelAt(i)
}

// Queries returns the number of labels requested so far.
func (o *Oracle) Queries() int { return len(o.queries) }

// QueriedIndices returns the queried indices in request order.
func (o *Oracle) QueriedIndices() []int {
	return append([]int(nil), o.queries...)
}

// Reset clears the interaction counter.
func (o *Oracle) Reset() { o.queries = o.queries[:0] }
