package oracle

import (
	"testing"

	"cabd/internal/series"
)

func TestOracleAnswersFromGroundTruth(t *testing.T) {
	s := series.New("x", make([]float64, 5))
	s.EnsureLabels()[2] = series.SingleAnomaly
	s.Labels[4] = series.ChangePoint
	o := New(s)
	if got := o.Label(2); got != series.SingleAnomaly {
		t.Errorf("Label(2) = %v", got)
	}
	if got := o.Label(4); got != series.ChangePoint {
		t.Errorf("Label(4) = %v", got)
	}
	if got := o.Label(0); got != series.Normal {
		t.Errorf("Label(0) = %v", got)
	}
	if o.Queries() != 3 {
		t.Errorf("Queries = %d", o.Queries())
	}
	idx := o.QueriedIndices()
	if len(idx) != 3 || idx[0] != 2 || idx[1] != 4 || idx[2] != 0 {
		t.Errorf("QueriedIndices = %v", idx)
	}
}

func TestOracleUnlabeledSeries(t *testing.T) {
	o := New(series.New("x", make([]float64, 3)))
	if got := o.Label(1); got != series.Normal {
		t.Errorf("unlabeled series answered %v", got)
	}
}

func TestOracleReset(t *testing.T) {
	s := series.New("x", make([]float64, 3))
	o := New(s)
	o.Label(0)
	o.Reset()
	if o.Queries() != 0 {
		t.Errorf("Queries after reset = %d", o.Queries())
	}
}

func TestQueriedIndicesIsCopy(t *testing.T) {
	s := series.New("x", make([]float64, 3))
	o := New(s)
	o.Label(1)
	idx := o.QueriedIndices()
	idx[0] = 99
	if o.QueriedIndices()[0] != 1 {
		t.Error("QueriedIndices exposed internal storage")
	}
}
