// Package eval implements the measurement methodology of Section V-A:
// point-wise precision / recall / F-score over detected versus
// ground-truth index sets, the BNF benefit function of active learning
// (Equation 14), the Jaccard-style accuracy of Table II and the RMS
// repair-quality metric of Section V-G.
package eval

import "sort"

// PRF bundles precision, recall and F-score.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	FN        int
}

// Match compares a predicted index set against ground truth with a
// symmetric index tolerance: a prediction is a true positive when a truth
// index lies within tol positions (tol = 0 demands exact point hits, the
// paper's set-intersection definition). Each truth index can satisfy at
// most one prediction and vice versa (greedy nearest matching on sorted
// indices).
func Match(pred, truth []int, tol int) PRF {
	p := dedupSorted(pred)
	g := dedupSorted(truth)
	usedG := make([]bool, len(g))
	tp := 0
	for _, pi := range p {
		// Find the closest unused truth index within tolerance.
		lo := sort.SearchInts(g, pi-tol)
		bestJ, bestD := -1, tol+1
		for j := lo; j < len(g) && g[j] <= pi+tol; j++ {
			if usedG[j] {
				continue
			}
			d := abs(g[j] - pi)
			if d < bestD {
				bestD, bestJ = d, j
			}
		}
		if bestJ >= 0 {
			usedG[bestJ] = true
			tp++
		}
	}
	res := PRF{TP: tp, FP: len(p) - tp, FN: len(g) - tp}
	if len(p) > 0 {
		res.Precision = float64(tp) / float64(len(p))
	}
	if len(g) > 0 {
		res.Recall = float64(tp) / float64(len(g))
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}

// BNF is the benefit function of Equation 14: 1 - annotations/total, the
// saving of interactive labeling relative to labeling every anomaly and
// change point by hand. A zero total yields 0.
func BNF(annotations, total int) float64 {
	if total <= 0 {
		return 0
	}
	b := 1 - float64(annotations)/float64(total)
	if b < 0 {
		return 0
	}
	return b
}

// Accuracy is Table II's measure: correct detections divided by the size
// of the union of predictions and ground truth (predictions that hit truth
// count once; misses on either side inflate the denominator).
func Accuracy(pred, truth []int, tol int) float64 {
	m := Match(pred, truth, tol)
	union := m.TP + m.FP + m.FN
	if union == 0 {
		return 1
	}
	return float64(m.TP) / float64(union)
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	cp := append([]int(nil), xs...)
	sort.Ints(cp)
	out := cp[:1]
	for _, v := range cp[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
