package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatchExact(t *testing.T) {
	m := Match([]int{1, 5, 9}, []int{1, 5, 20}, 0)
	if m.TP != 2 || m.FP != 1 || m.FN != 1 {
		t.Errorf("counts = %+v", m)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 || math.Abs(m.Recall-2.0/3) > 1e-12 {
		t.Errorf("P/R = %v/%v", m.Precision, m.Recall)
	}
	if math.Abs(m.F1-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", m.F1)
	}
}

func TestMatchWithTolerance(t *testing.T) {
	m := Match([]int{10}, []int{12}, 2)
	if m.TP != 1 {
		t.Errorf("tolerant match failed: %+v", m)
	}
	m = Match([]int{10}, []int{13}, 2)
	if m.TP != 0 {
		t.Errorf("out-of-tolerance matched: %+v", m)
	}
}

func TestMatchOneToOne(t *testing.T) {
	// Two predictions near one truth: only one may count.
	m := Match([]int{9, 11}, []int{10}, 2)
	if m.TP != 1 || m.FP != 1 {
		t.Errorf("double-count: %+v", m)
	}
	// One prediction near two truths: one TP, one FN.
	m = Match([]int{10}, []int{9, 11}, 2)
	if m.TP != 1 || m.FN != 1 {
		t.Errorf("truth reuse: %+v", m)
	}
}

func TestMatchEmptySides(t *testing.T) {
	m := Match(nil, []int{1, 2}, 0)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 || m.FN != 2 {
		t.Errorf("empty pred: %+v", m)
	}
	m = Match([]int{1}, nil, 0)
	if m.FP != 1 || m.Recall != 0 {
		t.Errorf("empty truth: %+v", m)
	}
	m = Match(nil, nil, 0)
	if m.F1 != 0 || m.TP != 0 {
		t.Errorf("both empty: %+v", m)
	}
}

func TestMatchDeduplicates(t *testing.T) {
	m := Match([]int{5, 5, 5}, []int{5}, 0)
	if m.TP != 1 || m.FP != 0 {
		t.Errorf("duplicates counted: %+v", m)
	}
}

func TestPerfectDetection(t *testing.T) {
	m := Match([]int{3, 7, 8}, []int{3, 7, 8}, 0)
	if m.F1 != 1 || m.Precision != 1 || m.Recall != 1 {
		t.Errorf("perfect detection: %+v", m)
	}
}

func TestBNF(t *testing.T) {
	if got := BNF(12, 100); math.Abs(got-0.88) > 1e-12 {
		t.Errorf("BNF = %v, want 0.88", got)
	}
	if got := BNF(0, 50); got != 1 {
		t.Errorf("BNF no queries = %v", got)
	}
	if got := BNF(10, 0); got != 0 {
		t.Errorf("BNF zero total = %v", got)
	}
	if got := BNF(200, 100); got != 0 {
		t.Errorf("BNF clamps at 0, got %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2}, []int{1, 2}, 0); got != 1 {
		t.Errorf("perfect accuracy = %v", got)
	}
	// 1 hit, 1 spurious, 1 missed -> 1/3.
	if got := Accuracy([]int{1, 9}, []int{1, 5}, 0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("accuracy = %v, want 1/3", got)
	}
	if got := Accuracy(nil, nil, 0); got != 1 {
		t.Errorf("vacuous accuracy = %v", got)
	}
}

// Property: F1 is always within [0,1] and symmetric in the tolerance
// sense: swapping pred/truth swaps P and R but preserves F1.
func TestF1SymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var a, b []int
		for i := 0; i < rng.Intn(20); i++ {
			a = append(a, rng.Intn(100))
		}
		for i := 0; i < rng.Intn(20); i++ {
			b = append(b, rng.Intn(100))
		}
		m1 := Match(a, b, 0)
		m2 := Match(b, a, 0)
		if m1.F1 < 0 || m1.F1 > 1 {
			t.Fatalf("F1 out of range: %v", m1.F1)
		}
		if math.Abs(m1.F1-m2.F1) > 1e-12 {
			t.Fatalf("F1 asymmetric: %v vs %v (a=%v b=%v)", m1.F1, m2.F1, a, b)
		}
		if math.Abs(m1.Precision-m2.Recall) > 1e-12 {
			t.Fatalf("P/R swap violated")
		}
	}
}

func TestSegments(t *testing.T) {
	segs := Segments([]int{5, 1, 2, 3, 9, 10})
	want := [][2]int{{1, 3}, {5, 5}, {9, 10}}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
	if Segments(nil) != nil {
		t.Error("empty truth should give nil segments")
	}
}

func TestPointAdjustSegmentCredit(t *testing.T) {
	// One detection inside a 5-point segment credits all 5 points.
	truth := []int{10, 11, 12, 13, 14, 30}
	m := PointAdjust([]int{12}, truth)
	if m.TP != 5 || m.FN != 1 || m.FP != 0 {
		t.Errorf("point-adjust counts = %+v", m)
	}
	// Missing every segment point yields zero recall.
	m = PointAdjust([]int{99}, truth)
	if m.TP != 0 || m.FP != 1 || m.FN != 6 {
		t.Errorf("all-miss counts = %+v", m)
	}
}

func TestPointAdjustMorePermissiveThanMatch(t *testing.T) {
	truth := []int{10, 11, 12, 13, 14}
	pred := []int{12}
	if PointAdjust(pred, truth).F1 <= Match(pred, truth, 0).F1 {
		t.Error("point-adjust should not be stricter than point-wise match")
	}
}

func TestWindowedMatch(t *testing.T) {
	m := WindowedMatch([]int{100}, []int{103}, 5)
	if m.TP != 1 || m.FN != 0 {
		t.Errorf("windowed match = %+v", m)
	}
	// Two alarms for the same window: one TP, no FP.
	m = WindowedMatch([]int{100, 101}, []int{103}, 5)
	if m.TP != 1 || m.FP != 0 {
		t.Errorf("duplicate alarm handling = %+v", m)
	}
	// An alarm far from every window is an FP.
	m = WindowedMatch([]int{500}, []int{103}, 5)
	if m.FP != 1 || m.FN != 1 {
		t.Errorf("far alarm = %+v", m)
	}
}
