package eval

import (
	"math"
	"testing"
)

// TestMatchTieHandling pins the greedy nearest-match tie rules: an
// equidistant prediction claims the lower truth index (first found wins a
// strict-distance comparison), and a later prediction can no longer claim
// a used truth even when it is closer.
func TestMatchTieHandling(t *testing.T) {
	cases := []struct {
		name       string
		pred       []int
		truth      []int
		tol        int
		tp, fp, fn int
	}{
		{"equidistant claims lower index", []int{10}, []int{8, 12}, 2, 1, 0, 1},
		{"greedy order blocks closer later pred", []int{9, 10}, []int{10}, 2, 1, 1, 0},
		{"exact hit beats tolerant hit", []int{10}, []int{10, 11}, 2, 1, 0, 1},
		{"two preds two truths interleaved", []int{9, 12}, []int{10, 11}, 2, 2, 0, 0},
		{"zero tolerance demands exactness", []int{9, 12}, []int{10, 11}, 0, 0, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Match(tc.pred, tc.truth, tc.tol)
			if m.TP != tc.tp || m.FP != tc.fp || m.FN != tc.fn {
				t.Errorf("Match(%v, %v, %d) = TP %d FP %d FN %d, want %d/%d/%d",
					tc.pred, tc.truth, tc.tol, m.TP, m.FP, m.FN, tc.tp, tc.fp, tc.fn)
			}
		})
	}
}

// TestPointAdjustVsStrict drives the same (pred, truth) pairs through the
// strict point-wise protocol and the point-adjust protocol and pins both
// score sets, making the permissiveness gap explicit per scenario.
func TestPointAdjustVsStrict(t *testing.T) {
	cases := []struct {
		name     string
		pred     []int
		truth    []int
		strictF1 float64
		adjF1    float64
	}{
		{
			// One hit inside a 4-point segment: strict credits 1 of 4,
			// adjust credits the whole segment.
			name: "partial segment hit",
			pred: []int{21}, truth: []int{20, 21, 22, 23},
			strictF1: 2 * (1.0 / 1) * (1.0 / 4) / (1.0/1 + 1.0/4),
			adjF1:    1,
		},
		{
			// Hit on one of two segments: adjust recall is segment-sized.
			name: "one of two segments",
			pred: []int{5}, truth: []int{5, 6, 40, 41},
			strictF1: 2 * 1 * 0.25 / 1.25,
			adjF1:    2 * 1 * 0.5 / 1.5,
		},
		{
			// Pure false positive: both protocols give zero.
			name: "all miss",
			pred: []int{99}, truth: []int{1, 2, 3},
			strictF1: 0,
			adjF1:    0,
		},
		{
			// Exact full-segment detection: both protocols are perfect.
			name: "exact cover",
			pred: []int{7, 8, 9}, truth: []int{7, 8, 9},
			strictF1: 1,
			adjF1:    1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			strict := Match(tc.pred, tc.truth, 0)
			adj := PointAdjust(tc.pred, tc.truth)
			if math.Abs(strict.F1-tc.strictF1) > 1e-12 {
				t.Errorf("strict F1 = %v, want %v", strict.F1, tc.strictF1)
			}
			if math.Abs(adj.F1-tc.adjF1) > 1e-12 {
				t.Errorf("point-adjust F1 = %v, want %v", adj.F1, tc.adjF1)
			}
			if adj.F1 < strict.F1-1e-12 {
				t.Errorf("point-adjust (%v) stricter than point-wise (%v)", adj.F1, strict.F1)
			}
		})
	}
}

// TestAllAnomalyTruth exercises the degenerate labeling where every index
// is ground truth: one segment, so a single detection yields full
// point-adjust recall while strict recall stays 1/n.
func TestAllAnomalyTruth(t *testing.T) {
	n := 50
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i
	}
	m := PointAdjust([]int{25}, truth)
	if m.Recall != 1 || m.TP != n || m.FP != 0 {
		t.Errorf("all-anomaly point-adjust = %+v", m)
	}
	s := Match([]int{25}, truth, 0)
	if s.TP != 1 || s.FN != n-1 {
		t.Errorf("all-anomaly strict = %+v", s)
	}
	if got := Accuracy([]int{25}, truth, 0); math.Abs(got-1.0/float64(n)) > 1e-12 {
		t.Errorf("all-anomaly accuracy = %v, want %v", got, 1.0/float64(n))
	}
}

// TestEmptyInputsAcrossProtocols pins the empty-side behavior of every
// protocol: no division-by-zero, no spurious credit.
func TestEmptyInputsAcrossProtocols(t *testing.T) {
	check := func(name string, m PRF, tp, fp, fn int) {
		t.Helper()
		if m.TP != tp || m.FP != fp || m.FN != fn {
			t.Errorf("%s = TP %d FP %d FN %d, want %d/%d/%d", name, m.TP, m.FP, m.FN, tp, fp, fn)
		}
		if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 ||
			m.F1 < 0 || m.F1 > 1 || math.IsNaN(m.F1) {
			t.Errorf("%s scores out of range: %+v", name, m)
		}
	}
	check("PointAdjust(nil, nil)", PointAdjust(nil, nil), 0, 0, 0)
	check("PointAdjust(pred, nil)", PointAdjust([]int{3}, nil), 0, 1, 0)
	check("PointAdjust(nil, truth)", PointAdjust(nil, []int{3, 4}), 0, 0, 2)
	check("WindowedMatch(nil, nil)", WindowedMatch(nil, nil, 3), 0, 0, 0)
	check("WindowedMatch(pred, nil)", WindowedMatch([]int{3}, nil, 3), 0, 1, 0)
	check("WindowedMatch(nil, truth)", WindowedMatch(nil, []int{3}, 3), 0, 0, 1)
}

// TestWindowedMatchZeroWindow verifies that w = 0 degenerates to exact
// matching with NAB's duplicate-alarm suppression.
func TestWindowedMatchZeroWindow(t *testing.T) {
	m := WindowedMatch([]int{5, 5, 6}, []int{5}, 0)
	if m.TP != 1 || m.FP != 1 || m.FN != 0 {
		t.Errorf("zero-window match = %+v", m)
	}
}

// TestPointAdjustDuplicatePredictions verifies duplicate predictions
// collapse before scoring (a repeated alarm is not a repeated FP).
func TestPointAdjustDuplicatePredictions(t *testing.T) {
	m := PointAdjust([]int{99, 99, 99}, []int{1, 2})
	if m.FP != 1 {
		t.Errorf("duplicate FPs counted: %+v", m)
	}
	m = PointAdjust([]int{1, 1}, []int{1, 2})
	if m.TP != 2 || m.FP != 0 {
		t.Errorf("duplicate hits mishandled: %+v", m)
	}
}
