package eval

import "sort"

// Segments groups sorted-or-unsorted truth indices into maximal runs of
// consecutive indices — the collective-anomaly segments of a labeling.
func Segments(truth []int) [][2]int {
	if len(truth) == 0 {
		return nil
	}
	idx := dedupSorted(truth)
	var segs [][2]int
	start, prev := idx[0], idx[0]
	for _, i := range idx[1:] {
		if i == prev+1 {
			prev = i
			continue
		}
		segs = append(segs, [2]int{start, prev})
		start, prev = i, i
	}
	return append(segs, [2]int{start, prev})
}

// PointAdjust scores predictions under the point-adjust protocol of the
// KPI/AIOps competition (also used by the DONUT and SR-CNN evaluations):
// if any point of a true anomaly segment is detected, the entire segment
// counts as detected; false positives remain point-wise. This is more
// permissive than Match and is provided for cross-paper comparability.
func PointAdjust(pred, truth []int) PRF {
	p := dedupSorted(pred)
	segs := Segments(truth)
	inSeg := func(i int) int {
		for si, s := range segs {
			if i >= s[0] && i <= s[1] {
				return si
			}
		}
		return -1
	}
	segHit := make([]bool, len(segs))
	fp := 0
	for _, pi := range p {
		if si := inSeg(pi); si >= 0 {
			segHit[si] = true
		} else {
			fp++
		}
	}
	// Adjusted counts: every point of a hit segment is a TP; every point
	// of a missed segment is an FN.
	tp, fn := 0, 0
	for si, s := range segs {
		size := s[1] - s[0] + 1
		if segHit[si] {
			tp += size
		} else {
			fn += size
		}
	}
	res := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		res.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.Recall = float64(tp) / float64(tp+fn)
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}

// WindowedMatch scores predictions NAB-style: each truth point owns a
// window of +-w positions; a prediction inside any unclaimed window
// claims it (one prediction per window counts), predictions outside all
// windows are false positives.
func WindowedMatch(pred, truth []int, w int) PRF {
	p := dedupSorted(pred)
	g := dedupSorted(truth)
	claimed := make([]bool, len(g))
	tp, fp := 0, 0
	for _, pi := range p {
		lo := sort.SearchInts(g, pi-w)
		hit := false
		for j := lo; j < len(g) && g[j] <= pi+w; j++ {
			if !claimed[j] {
				claimed[j] = true
				hit = true
				break
			}
		}
		if hit {
			tp++
		} else {
			// Inside an already-claimed window: neither TP nor FP
			// (NAB ignores duplicate alarms for the same window).
			dup := false
			for j := lo; j < len(g) && g[j] <= pi+w; j++ {
				dup = true
				break
			}
			if !dup {
				fp++
			}
		}
	}
	fn := 0
	for _, c := range claimed {
		if !c {
			fn++
		}
	}
	res := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		res.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.Recall = float64(tp) / float64(tp+fn)
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}
