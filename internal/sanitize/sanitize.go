// Package sanitize validates and repairs raw time-series input before it
// reaches the detection pipeline. The paper's evaluation assumes clean,
// equally spaced, NaN-free series; real deployments (the IoT water-tank
// motivation of Section I) feed detectors missing values, flatlined
// sensors and corrupted floats. This package is the single choke point
// where hostile input is caught: every public entry point of the cabd
// facade routes its values through Series or Multi and attaches the
// resulting Report to its output.
//
// Three policies are offered. Interpolate (the default) repairs bad
// values by linear interpolation between the nearest finite neighbors —
// detection proceeds on a plausible series and the Report says which
// points were synthesized. Drop removes bad points, compacting the
// series; the returned index map lets callers translate detection
// positions back to the original layout. Reject refuses any series
// containing a bad value, for callers that must not silently repair.
package sanitize

import (
	"errors"
	"fmt"
	"math"

	"cabd/internal/stats"
)

// Policy selects how bad values (NaN, ±Inf, out-of-range magnitudes) are
// handled. The zero value is Interpolate.
type Policy int

const (
	// Interpolate repairs bad values by linear interpolation between the
	// nearest finite neighbors (edge runs take the nearest finite value).
	Interpolate Policy = iota
	// Drop removes bad points, compacting the series.
	Drop
	// Reject returns ErrBadValues when any bad value is present.
	Reject
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Interpolate:
		return "interpolate"
	case Drop:
		return "drop"
	case Reject:
		return "reject"
	default:
		return "unknown"
	}
}

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interpolate", "":
		return Interpolate, nil
	case "drop":
		return Drop, nil
	case "reject":
		return Reject, nil
	default:
		return Interpolate, fmt.Errorf("sanitize: unknown policy %q (want interpolate, drop or reject)", s)
	}
}

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrEmpty reports a nil or zero-length series.
	ErrEmpty = errors.New("sanitize: empty series")
	// ErrTooShort reports a series below the minimum analyzable length.
	ErrTooShort = errors.New("sanitize: series too short")
	// ErrBadValues reports NaN/Inf/out-of-range values under Reject.
	ErrBadValues = errors.New("sanitize: series contains NaN, Inf or out-of-range values")
	// ErrAllBad reports a series with no finite values to anchor repairs.
	ErrAllBad = errors.New("sanitize: series has no finite values")
	// ErrRagged reports multivariate dimensions of unequal length.
	ErrRagged = errors.New("sanitize: dimensions have different lengths")
)

// DefaultMaxAbs is the magnitude beyond which a float is treated as
// corrupted even though it is finite: values above sqrt(MaxFloat64)-ish
// overflow to ±Inf the moment the pipeline squares them (variance,
// Euclidean distances), so they are as hostile as an Inf.
const DefaultMaxAbs = 1e150

// Config parameterizes sanitization. The zero value is usable:
// Interpolate policy, minimum length 4 (the detector's floor), magnitude
// bound DefaultMaxAbs.
type Config struct {
	// Policy selects the bad-value handling. Default Interpolate.
	Policy Policy
	// MinLen is the minimum series length after sanitization; shorter
	// input returns ErrTooShort. Default 4. Negative disables the check.
	MinLen int
	// MaxAbs is the magnitude bound beyond which a finite value counts
	// as corrupted. Default DefaultMaxAbs. Negative disables the bound
	// (±Inf and NaN are always bad).
	MaxAbs float64
}

func (c Config) defaults() Config {
	if c.MinLen == 0 {
		c.MinLen = 4
	}
	if c.MaxAbs == 0 {
		c.MaxAbs = DefaultMaxAbs
	}
	return c
}

// Report describes what sanitization found and repaired in one series.
type Report struct {
	// Policy is the policy that was applied.
	Policy Policy
	// N is the original series length (time steps for multivariate).
	N int
	// NaNs, Infs and Extremes count the bad values by kind (summed over
	// dimensions for multivariate input).
	NaNs, Infs, Extremes int
	// Repaired lists the original indices whose values were synthesized
	// by interpolation, sorted ascending.
	Repaired []int
	// Dropped lists the original indices removed under Drop, sorted.
	Dropped []int
	// Constant is set when the sanitized series has zero spread — the
	// detector will legitimately find nothing (a flatlined sensor).
	Constant bool
	// TooShort is set when the series failed the minimum-length check.
	TooShort bool
}

// Bad returns the total number of bad values found.
func (r *Report) Bad() int { return r.NaNs + r.Infs + r.Extremes }

// Clean reports whether the input needed no intervention at all.
func (r *Report) Clean() bool {
	return r.Bad() == 0 && !r.TooShort && len(r.Dropped) == 0
}

// String summarizes the report for logs.
func (r *Report) String() string {
	return fmt.Sprintf("sanitize(%s): n=%d nan=%d inf=%d extreme=%d repaired=%d dropped=%d constant=%v",
		r.Policy, r.N, r.NaNs, r.Infs, r.Extremes, len(r.Repaired), len(r.Dropped), r.Constant)
}

// Finite reports whether v is a usable observation under the magnitude
// bound maxAbs (<= 0 means only NaN/±Inf are rejected).
func Finite(v, maxAbs float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	return maxAbs <= 0 || math.Abs(v) <= maxAbs
}

// classify increments the report counter matching the bad value v.
func (r *Report) classify(v float64) {
	switch {
	case math.IsNaN(v):
		r.NaNs++
	case math.IsInf(v, 0):
		r.Infs++
	default:
		r.Extremes++
	}
}

// Series sanitizes one univariate series under cfg.
//
// The returned slice is the input itself when no repair was needed, or a
// fresh copy otherwise; the input is never modified. index is non-nil
// only under Drop with at least one removal: index[i] is the original
// position of clean[i], letting callers map detection indices back. The
// Report is always non-nil, even on error.
func Series(values []float64, cfg Config) (clean []float64, index []int, rep *Report, err error) {
	cfg = cfg.defaults()
	rep = &Report{Policy: cfg.Policy, N: len(values)}
	if len(values) == 0 {
		rep.TooShort = true
		return nil, nil, rep, ErrEmpty
	}
	var bad []int
	for i, v := range values {
		if !Finite(v, cfg.MaxAbs) {
			bad = append(bad, i)
			rep.classify(v)
		}
	}
	switch {
	case len(bad) == 0:
		clean = values
	case cfg.Policy == Reject:
		return nil, nil, rep, fmt.Errorf("%w (%d of %d)", ErrBadValues, len(bad), len(values))
	case len(bad) == len(values):
		return nil, nil, rep, ErrAllBad
	case cfg.Policy == Drop:
		clean = make([]float64, 0, len(values)-len(bad))
		index = make([]int, 0, len(values)-len(bad))
		for i, v := range values {
			if Finite(v, cfg.MaxAbs) {
				clean = append(clean, v)
				index = append(index, i)
			}
		}
		rep.Dropped = bad
	default: // Interpolate
		clean = interpolate(values, bad, cfg.MaxAbs)
		rep.Repaired = bad
	}
	if cfg.MinLen > 0 && len(clean) < cfg.MinLen {
		rep.TooShort = true
		return clean, index, rep, fmt.Errorf("%w (%d < %d)", ErrTooShort, len(clean), cfg.MinLen)
	}
	rep.Constant = isConstant(clean)
	return clean, index, rep, nil
}

// Multi sanitizes a multivariate series: dims holds d value slices over
// the same clock. All dimensions must have equal length (ErrRagged). A
// time step is bad when any dimension is bad at that index, so Drop
// removes whole time steps and the index map stays shared across
// dimensions; Interpolate repairs each dimension independently.
func Multi(dims [][]float64, cfg Config) (clean [][]float64, index []int, rep *Report, err error) {
	cfg = cfg.defaults()
	rep = &Report{Policy: cfg.Policy}
	if len(dims) == 0 || len(dims[0]) == 0 {
		rep.TooShort = true
		return nil, nil, rep, ErrEmpty
	}
	n := len(dims[0])
	rep.N = n
	for _, dim := range dims[1:] {
		if len(dim) != n {
			return nil, nil, rep, fmt.Errorf("%w (%d vs %d)", ErrRagged, len(dim), n)
		}
	}
	badStep := make([]bool, n)
	perDim := make([][]int, len(dims))
	total := 0
	for k, dim := range dims {
		for i, v := range dim {
			if !Finite(v, cfg.MaxAbs) {
				perDim[k] = append(perDim[k], i)
				badStep[i] = true
				rep.classify(v)
				total++
			}
		}
	}
	switch {
	case total == 0:
		clean = dims
	case cfg.Policy == Reject:
		return nil, nil, rep, fmt.Errorf("%w (%d values)", ErrBadValues, total)
	case cfg.Policy == Drop:
		for i, b := range badStep {
			if b {
				rep.Dropped = append(rep.Dropped, i)
			} else {
				index = append(index, i)
			}
		}
		if len(index) == 0 {
			return nil, nil, rep, ErrAllBad
		}
		clean = make([][]float64, len(dims))
		for k, dim := range dims {
			kept := make([]float64, 0, len(index))
			for _, i := range index {
				kept = append(kept, dim[i])
			}
			clean[k] = kept
		}
	default: // Interpolate
		clean = make([][]float64, len(dims))
		seen := map[int]bool{}
		for k, dim := range dims {
			if len(perDim[k]) == 0 {
				clean[k] = dim
				continue
			}
			if len(perDim[k]) == len(dim) {
				return nil, nil, rep, ErrAllBad
			}
			clean[k] = interpolate(dim, perDim[k], cfg.MaxAbs)
			for _, i := range perDim[k] {
				if !seen[i] {
					seen[i] = true
					rep.Repaired = append(rep.Repaired, i)
				}
			}
		}
		sortInts(rep.Repaired)
	}
	if cfg.MinLen > 0 && len(clean[0]) < cfg.MinLen {
		rep.TooShort = true
		return clean, index, rep, fmt.Errorf("%w (%d < %d)", ErrTooShort, len(clean[0]), cfg.MinLen)
	}
	rep.Constant = true
	for _, dim := range clean {
		if !isConstant(dim) {
			rep.Constant = false
			break
		}
	}
	return clean, index, rep, nil
}

// interpolate returns a copy of values with every index in bad (sorted
// ascending) replaced by the linear interpolation between the nearest
// finite neighbors; edge runs take the nearest finite value. bad must
// not cover the whole slice.
func interpolate(values []float64, bad []int, maxAbs float64) []float64 {
	out := make([]float64, len(values))
	copy(out, values)
	for s := 0; s < len(bad); {
		e := s
		for e+1 < len(bad) && bad[e+1] == bad[e]+1 {
			e++
		}
		lo, hi := bad[s], bad[e] // maximal contiguous bad run
		left, right := lo-1, hi+1
		switch {
		case left < 0 && right >= len(out):
			// Unreachable: callers guard the all-bad case.
		case left < 0:
			for i := lo; i <= hi; i++ {
				out[i] = out[right]
			}
		case right >= len(out):
			for i := lo; i <= hi; i++ {
				out[i] = out[left]
			}
		default:
			span := float64(right - left)
			for i := lo; i <= hi; i++ {
				t := float64(i-left) / span
				out[i] = out[left]*(1-t) + out[right]*t
			}
		}
		s = e + 1
	}
	return out
}

// isConstant reports whether xs has zero spread.
func isConstant(xs []float64) bool {
	if len(xs) == 0 {
		return true
	}
	for _, v := range xs[1:] {
		// Tolerance 0: a flatlined sensor repeats the identical float, so
		// the spread check is exact by contract.
		if !stats.ApproxEq(v, xs[0], 0) {
			return false
		}
	}
	return true
}

// sortInts is a tiny insertion sort — repaired lists are short and this
// avoids an import for the one call site.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
