package sanitize

import (
	"errors"
	"math"
	"testing"
)

func TestCleanInputPassesThrough(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5}
	clean, index, rep, err := Series(values, Config{})
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	if &clean[0] != &values[0] {
		t.Error("clean input should pass through without copying")
	}
	if index != nil {
		t.Error("identity mapping should be nil")
	}
	if !rep.Clean() {
		t.Errorf("report not clean: %v", rep)
	}
}

func TestInterpolateRepairsRuns(t *testing.T) {
	nan := math.NaN()
	values := []float64{0, nan, nan, 3, math.Inf(1), 5, 1e300}
	clean, index, rep, err := Series(values, Config{})
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	if index != nil {
		t.Error("interpolate keeps the layout; index must be nil")
	}
	want := []float64{0, 1, 2, 3, 4, 5, 5}
	for i, v := range want {
		if math.Abs(clean[i]-v) > 1e-12 {
			t.Errorf("clean[%d] = %v, want %v", i, clean[i], v)
		}
	}
	if rep.NaNs != 2 || rep.Infs != 1 || rep.Extremes != 1 {
		t.Errorf("counts = nan:%d inf:%d extreme:%d, want 2/1/1", rep.NaNs, rep.Infs, rep.Extremes)
	}
	if got := rep.Repaired; len(got) != 4 {
		t.Errorf("Repaired = %v, want 4 entries", got)
	}
	if !math.IsNaN(values[1]) {
		t.Error("input slice was modified")
	}
}

func TestInterpolateEdgeRuns(t *testing.T) {
	nan := math.NaN()
	clean, _, _, err := Series([]float64{nan, nan, 7, 8, nan}, Config{})
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	want := []float64{7, 7, 7, 8, 8}
	for i, v := range want {
		if clean[i] != v {
			t.Errorf("clean[%d] = %v, want %v", i, clean[i], v)
		}
	}
}

func TestDropCompactsAndMaps(t *testing.T) {
	nan := math.NaN()
	values := []float64{10, nan, 12, 13, nan, 15}
	clean, index, rep, err := Series(values, Config{Policy: Drop})
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	wantClean := []float64{10, 12, 13, 15}
	wantIndex := []int{0, 2, 3, 5}
	for i := range wantClean {
		if clean[i] != wantClean[i] || index[i] != wantIndex[i] {
			t.Errorf("kept[%d] = (%v, %d), want (%v, %d)",
				i, clean[i], index[i], wantClean[i], wantIndex[i])
		}
	}
	if len(rep.Dropped) != 2 {
		t.Errorf("Dropped = %v, want 2 entries", rep.Dropped)
	}
}

func TestRejectPolicy(t *testing.T) {
	_, _, rep, err := Series([]float64{1, math.NaN(), 3, 4}, Config{Policy: Reject})
	if !errors.Is(err, ErrBadValues) {
		t.Fatalf("err = %v, want ErrBadValues", err)
	}
	if rep == nil || rep.NaNs != 1 {
		t.Errorf("report should still count the bad values: %v", rep)
	}
}

func TestDegenerateSeries(t *testing.T) {
	if _, _, _, err := Series(nil, Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil input: err = %v, want ErrEmpty", err)
	}
	if _, _, _, err := Series([]float64{1, 2}, Config{}); !errors.Is(err, ErrTooShort) {
		t.Errorf("short input: err = %v, want ErrTooShort", err)
	}
	nan := math.NaN()
	if _, _, _, err := Series([]float64{nan, nan, nan, nan}, Config{}); !errors.Is(err, ErrAllBad) {
		t.Errorf("all-NaN input: err = %v, want ErrAllBad", err)
	}
	_, _, rep, err := Series([]float64{2, 2, 2, 2, 2}, Config{})
	if err != nil || !rep.Constant {
		t.Errorf("constant series: err=%v constant=%v, want nil/true", err, rep.Constant)
	}
}

func TestMulti(t *testing.T) {
	nan := math.NaN()
	dims := [][]float64{
		{1, 2, nan, 4, 5, 6},
		{9, 8, 7, math.Inf(-1), 5, 4},
	}
	clean, index, rep, err := Multi(dims, Config{})
	if err != nil {
		t.Fatalf("Multi: %v", err)
	}
	if index != nil {
		t.Error("interpolate keeps layout")
	}
	if clean[0][2] != 3 || clean[1][3] != 6 {
		t.Errorf("interpolated = %v / %v", clean[0][2], clean[1][3])
	}
	if len(rep.Repaired) != 2 {
		t.Errorf("Repaired = %v, want [2 3]", rep.Repaired)
	}

	clean, index, rep, err = Multi(dims, Config{Policy: Drop})
	if err != nil {
		t.Fatalf("Multi drop: %v", err)
	}
	if len(clean[0]) != 4 || len(clean[1]) != 4 {
		t.Errorf("drop should remove whole time steps: %v", clean)
	}
	wantIndex := []int{0, 1, 4, 5}
	for i, w := range wantIndex {
		if index[i] != w {
			t.Errorf("index = %v, want %v", index, wantIndex)
			break
		}
	}
	if len(rep.Dropped) != 2 {
		t.Errorf("Dropped = %v", rep.Dropped)
	}

	if _, _, _, err := Multi([][]float64{{1, 2}, {1}}, Config{}); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged dims: err = %v, want ErrRagged", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"": Interpolate, "interpolate": Interpolate, "drop": Drop, "reject": Reject} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) should fail")
	}
}

// Regression for the ApproxEq migration: the flatline check stays exact
// (tolerance 0), including for repeated infinities where a naive
// Abs(a-b) comparison would see NaN.
func TestIsConstantExact(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		xs   []float64
		want bool
	}{
		{"empty", nil, true},
		{"flat", []float64{3.5, 3.5, 3.5}, true},
		{"one ulp apart", []float64{1, math.Nextafter(1, 2)}, false},
		{"repeated +Inf", []float64{inf, inf}, true},
		{"NaN is never constant", []float64{math.NaN(), math.NaN()}, false},
	}
	for _, c := range cases {
		if got := isConstant(c.xs); got != c.want {
			t.Errorf("%s: isConstant = %v, want %v", c.name, got, c.want)
		}
	}
}
