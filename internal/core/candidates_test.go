package core

import (
	"math/rand"
	"testing"

	"cabd/internal/series"
)

func TestCandidateEstimationFindsSpike(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.1
	}
	vals[250] = 50
	idx, zs := candidateIndices(series.New("x", vals), 3)
	found := false
	for i, ci := range idx {
		if ci == 250 {
			found = true
			if zs[i] < 10 {
				t.Errorf("spike z-score = %v, want large", zs[i])
			}
		}
	}
	if !found {
		t.Errorf("spike not among candidates: %v", idx)
	}
}

func TestCandidateEstimationAffineSeriesEmpty(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 3 + 0.5*float64(i)
	}
	idx, zs := candidateIndices(series.New("x", vals), 3)
	if len(idx) != 0 || zs != nil {
		t.Errorf("affine series produced candidates: %v", idx)
	}
}

func TestCandidateFloodGuard(t *testing.T) {
	// Mostly-flat data with MAD = 0: every wiggle has infinite robust z.
	// The guard must cap the candidate set at a quarter of the series.
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 400)
	for i := 0; i < 40; i++ {
		vals[rng.Intn(400)] = 1
	}
	idx, zs := candidateIndices(series.New("x", vals), 3)
	if len(idx) > 100 {
		t.Errorf("flood guard failed: %d candidates", len(idx))
	}
	if len(idx) != len(zs) {
		t.Errorf("zscores not parallel: %d vs %d", len(idx), len(zs))
	}
}

func TestCandidatesCoverInjectedFeatures(t *testing.T) {
	// Each injected feature must have a candidate within 2 positions.
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.2
	}
	spots := []int{100, 300, 500, 700, 900}
	for _, p := range spots {
		vals[p] += 30
	}
	idx, _ := candidateIndices(series.New("x", vals), 3)
	set := map[int]bool{}
	for _, ci := range idx {
		set[ci] = true
	}
	for _, p := range spots {
		ok := false
		for off := -2; off <= 2; off++ {
			if set[p+off] {
				ok = true
			}
		}
		if !ok {
			t.Errorf("no candidate near injected spike at %d", p)
		}
	}
}
