package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cabd/internal/series"
)

// TestAffineInvariance: the pipeline standardizes its input (Equation 2),
// so detections must be identical under any positive affine transform of
// the values — the property that makes CABD unit-free (Celsius vs
// Fahrenheit, liters vs gallons).
func TestAffineInvariance(t *testing.T) {
	base := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 600)
		ar := 0.0
		for i := range vals {
			ar = 0.7*ar + rng.NormFloat64()*0.1
			vals[i] = 2*math.Sin(2*math.Pi*float64(i)/90) + ar
		}
		vals[200] += 15
		for i := 400; i < 405; i++ {
			vals[i] -= 12
		}
		return vals
	}
	f := func(seed int64, scaleRaw, shiftRaw float64) bool {
		scale := 0.1 + math.Mod(math.Abs(scaleRaw), 100)
		shift := math.Mod(shiftRaw, 1e4)
		if math.IsNaN(scale) || math.IsNaN(shift) {
			return true
		}
		vals := base(seed%16 + 1)
		transformed := make([]float64, len(vals))
		for i, v := range vals {
			transformed[i] = v*scale + shift
		}
		det := NewDetector(Options{})
		a := det.Detect(series.New("a", vals))
		b := det.Detect(series.New("b", transformed))
		ai, bi := a.AnomalyIndices(), b.AnomalyIndices()
		if len(ai) != len(bi) {
			return false
		}
		for i := range ai {
			if ai[i] != bi[i] {
				return false
			}
		}
		ac, bc := a.ChangePointIndices(), b.ChangePointIndices()
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i] != bc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestTimeReversalFindsSameSpikes: reversing the series must still find
// the (reversed) isolated spikes — the detector has no preferred time
// direction for point errors.
func TestTimeReversalFindsSameSpikes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 600
	vals := make([]float64, n)
	ar := 0.0
	for i := range vals {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/90) + ar
	}
	spikes := []int{150, 430}
	for _, p := range spikes {
		vals[p] += 15
	}
	rev := make([]float64, n)
	for i, v := range vals {
		rev[n-1-i] = v
	}
	det := NewDetector(Options{})
	fw := det.Detect(series.New("f", vals))
	bw := det.Detect(series.New("b", rev))
	found := map[int]bool{}
	for _, i := range bw.AnomalyIndices() {
		found[n-1-i] = true
	}
	for _, p := range spikes {
		if !found[p] {
			t.Errorf("reversed series missed spike at %d", p)
		}
	}
	_ = fw
}
