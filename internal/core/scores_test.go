package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cabd/internal/inn"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// scoreSeries runs candidate estimation and scoring on a raw series.
func scoreSeries(vals []float64, opts Options) []Candidate {
	opts = opts.defaults()
	std := stats.Standardize(vals)
	zs := &series.Series{Name: "t", Values: std}
	idx, zsc := candidateIndices(zs, opts.CandidateZ)
	cands := make([]Candidate, len(idx))
	for i, ci := range idx {
		cands[i] = Candidate{Index: ci, SecondDiffZ: zsc[i]}
	}
	sc := newScorer(std, inn.FromSeries(zs), opts)
	sc.scoreAll(context.Background(), cands)
	return cands
}

func candidateAt(cands []Candidate, idx int) *Candidate {
	for i := range cands {
		if cands[i].Index == idx {
			return &cands[i]
		}
	}
	return nil
}

func noisyBase(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.15
	}
	return vals
}

func TestScoresSingleAnomaly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := noisyBase(rng, 800)
	vals[400] = 25
	c := candidateAt(scoreSeries(vals, Options{}), 400)
	if c == nil {
		t.Fatal("spike is not a candidate")
	}
	if c.Magnitude != 0 {
		t.Errorf("single anomaly MS = %v, want 0 (empty INN)", c.Magnitude)
	}
	if c.Variance < 0.5 {
		t.Errorf("single anomaly VS = %v, want high", c.Variance)
	}
}

func TestScoresCollectiveAnomaly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := noisyBase(rng, 800)
	for i := 400; i < 407; i++ {
		vals[i] = 25 + rng.NormFloat64()*0.1
	}
	c := candidateAt(scoreSeries(vals, Options{}), 400)
	if c == nil {
		t.Fatal("group edge is not a candidate")
	}
	if len(c.INN) < 4 || len(c.INN) > 10 {
		t.Errorf("collective INN size = %d, want ~6", len(c.INN))
	}
	if c.Magnitude <= 0 || c.Magnitude >= 0.05 {
		t.Errorf("collective MS = %v, want in (0, 0.05)", c.Magnitude)
	}
	if c.Variance < 0.5 {
		t.Errorf("collective VS = %v, want high", c.Variance)
	}
}

func TestScoresChangePoint(t *testing.T) {
	// AR-smooth base: a level shift's new segment must be locally
	// connected for its one-sided INN to grow (pure white noise has no
	// mutual temporal neighbors anywhere).
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 800)
	ar := 0.0
	for i := range vals {
		ar = 0.8*ar + rng.NormFloat64()*0.05
		vals[i] = ar
	}
	for i := 400; i < 800; i++ {
		vals[i] += 10
	}
	c := candidateAt(scoreSeries(vals, Options{}), 400)
	if c == nil {
		t.Fatal("level shift is not a candidate")
	}
	if c.Variance >= 0.25 {
		t.Errorf("change point VS = %v, want low", c.Variance)
	}
	if c.Asymmetry < 0.7 {
		t.Errorf("change point asymmetry = %v, want near 1", c.Asymmetry)
	}
	if c.RightExtent < 3 || c.LeftExtent > c.RightExtent/4+1 {
		t.Errorf("change extents L=%d R=%d, want one-sided to the right",
			c.LeftExtent, c.RightExtent)
	}
}

func TestScoresBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := noisyBase(rng, 600)
	vals[100] = 10
	for i := 300; i < 306; i++ {
		vals[i] = -12
	}
	for _, c := range scoreSeries(vals, Options{}) {
		if c.Magnitude < 0 || c.Magnitude > 1 {
			t.Errorf("MS out of range: %v", c.Magnitude)
		}
		if c.Correlation < 0 || c.Correlation > 1 {
			t.Errorf("CS out of range: %v", c.Correlation)
		}
		if c.Variance < 0 || c.Variance > 1 {
			t.Errorf("VS out of range: %v", c.Variance)
		}
		if c.Asymmetry < 0 || c.Asymmetry > 1 {
			t.Errorf("asymmetry out of range: %v", c.Asymmetry)
		}
	}
}

func TestAblationZeroesFeatures(t *testing.T) {
	c := Candidate{Magnitude: 0.3, Correlation: 0.4, Variance: 0.5, Asymmetry: 0.6}
	f := c.features(Options{DisableMagnitude: true, DisableVariance: true})
	if f[0] != 0 || f[1] != 0.4 || f[2] != 0 || f[3] != 0.6 {
		t.Errorf("ablated features = %v", f)
	}
	full := c.features(Options{})
	if full[0] != 0.3 || full[1] != 0.4 || full[2] != 0.5 || full[3] != 0.6 {
		t.Errorf("full features = %v", full)
	}
}

// TestDegradedPilotRescored is the regression test for the mixed-feature
// degradation bug: when the deadline pilot triggers the FixedKNN
// downgrade, the pilot candidates must be re-scored under the degraded
// strategy — every candidate's neighborhood, pilot batch included, must
// carry FixedKNN semantics so the classifier trains on one feature space.
func TestDegradedPilotRescored(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vals := noisyBase(rng, 900)
	for i := 200; i < 206; i++ {
		vals[i] = 18
	}
	vals[500] = -22
	for i := 700; i < 704; i++ {
		vals[i] = 15
	}
	opts := Options{}.defaults() // Strategy = BinaryINN
	std := stats.Standardize(vals)
	zs := &series.Series{Name: "deg", Values: std}
	idx, zsc := candidateIndices(zs, opts.CandidateZ)
	if len(idx) <= 4 {
		t.Fatalf("need more than a pilot's worth of candidates, got %d", len(idx))
	}
	cands := make([]Candidate, len(idx))
	for i, ci := range idx {
		cands[i] = Candidate{Index: ci, SecondDiffZ: zsc[i]}
	}
	comp := inn.FromSeries(zs)
	sc := newScorer(std, comp, opts)
	sc.forceDegrade = true
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	degraded, err := sc.scoreAll(ctx, cands)
	if err != nil {
		t.Fatalf("scoreAll: %v", err)
	}
	if !degraded {
		t.Fatal("forced pilot degradation did not report degraded")
	}
	if sc.resolved != FixedKNN {
		t.Fatalf("resolved strategy = %v, want FixedKNN", sc.resolved)
	}
	// The downgrade decision must never write through to the shared
	// Options value the worker pool reads — the race the resolved field
	// exists to prevent.
	if sc.opts.Strategy != BinaryINN {
		t.Fatalf("degradation mutated shared options (Strategy = %v)", sc.opts.Strategy)
	}
	// Every candidate — pilot positions 0..3 included — must carry the
	// FixedKNN neighborhood, not a leftover Binary-INN one.
	for pos := range cands {
		want := comp.KNN(cands[pos].Index, opts.KNNK)
		if !reflect.DeepEqual(cands[pos].INN, want) {
			t.Errorf("candidate %d (index %d): INN = %v, want FixedKNN %v",
				pos, cands[pos].Index, cands[pos].INN, want)
		}
	}
}

func TestStrategiesAgreeOnCleanGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := noisyBase(rng, 600)
	for i := 300; i < 306; i++ {
		vals[i] = 20
	}
	for _, strat := range []Strategy{BinaryINN, LinearINN} {
		c := candidateAt(scoreSeries(vals, Options{Strategy: strat}), 300)
		if c == nil {
			t.Fatalf("strategy %v: no candidate at group edge", strat)
		}
		if c.Variance < 0.5 {
			t.Errorf("strategy %v: VS = %v", strat, c.Variance)
		}
	}
	// FixedKNN yields a constant-size neighborhood.
	c := candidateAt(scoreSeries(vals, Options{Strategy: FixedKNN, KNNK: 7}), 300)
	if c == nil || len(c.INN) != 7 {
		t.Errorf("FixedKNN neighborhood size = %v, want 7", c)
	}
}
