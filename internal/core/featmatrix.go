package core

import (
	"sync"

	"cabd/internal/ml/forest"
)

// Classifier feature-vector widths: the paper's three INN scores plus
// the asymmetry extension (see Candidate.features) form the base
// layout; Options.XChannelCorr appends the multivariate cross-channel
// decorrelation column.
const (
	baseFeatures = 4
	maxFeatures  = 5
)

// featWidth resolves the active feature-vector width of an option set.
// The width changes the forest's RNG consumption, so it must be a pure
// function of Options — never of the data.
func featWidth(o *Options) int {
	if o.XChannelCorr {
		return maxFeatures
	}
	return baseFeatures
}

// featMatrix is the flat SoA classifier feature matrix: one
// index-aligned []float64 per feature, filled in place by the scoreAll
// workers (worker i writes only row i, so the fill is race-free without
// locks). The forest trains and batch-infers directly over the columns;
// Candidate.features stays as the row-major differential oracle. Only
// the first `width` columns are active; matrix() exposes exactly those.
type featMatrix struct {
	cols  [maxFeatures][]float64
	n     int
	width int
}

// featPool recycles feature-matrix buffers across detection runs so the
// steady-state scoring path keeps its zero-allocation property: a
// long-lived stream re-analyzing every hop reuses the same columns.
var featPool = sync.Pool{New: func() any { return new(featMatrix) }}

// getFeatMatrix returns a zeroed n-row, width-column matrix from the
// pool.
//
//cabd:hotpath
func getFeatMatrix(n, width int) *featMatrix {
	m := featPool.Get().(*featMatrix)
	m.n = n
	m.width = width
	for f := 0; f < width; f++ {
		if cap(m.cols[f]) < n {
			m.cols[f] = make([]float64, n)
			continue
		}
		m.cols[f] = m.cols[f][:n]
		col := m.cols[f]
		for i := range col {
			col[i] = 0
		}
	}
	return m
}

// putFeatMatrix returns m to the pool. The caller must not retain the
// forest.Matrix view past this call.
func putFeatMatrix(m *featMatrix) {
	if m != nil {
		featPool.Put(m)
	}
}

// matrix returns the forest-facing column view over the active width.
func (m *featMatrix) matrix() forest.Matrix {
	return forest.Matrix{Cols: m.cols[:m.width], N: m.n}
}

// fill writes candidate c's feature vector into row i under the
// ablation switches of opts — the SoA mirror of Candidate.features.
// Disabled features keep the zero the matrix was handed out with.
//
//cabd:hotpath
func (m *featMatrix) fill(i int, c *Candidate, opts *Options) {
	if !opts.DisableMagnitude {
		m.cols[0][i] = c.Magnitude
	}
	if !opts.DisableCorrelation {
		m.cols[1][i] = c.Correlation
	}
	if !opts.DisableVariance {
		m.cols[2][i] = c.Variance
	}
	m.cols[3][i] = c.Asymmetry
	if m.width > baseFeatures {
		m.cols[4][i] = c.XCorr
	}
}

// fillFromCandidates populates the whole matrix from already-scored
// candidates — the entry path for EvaluateCandidates callers that hand
// in candidates scored elsewhere (e.g. the multivariate extension).
//
//cabd:hotpath
func (m *featMatrix) fillFromCandidates(cands []Candidate, opts *Options) {
	for i := range cands {
		m.fill(i, &cands[i], opts)
	}
}
