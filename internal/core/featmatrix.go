package core

import (
	"sync"

	"cabd/internal/ml/forest"
)

// numFeatures is the classifier feature-vector width: the paper's three
// INN scores plus the asymmetry extension (see Candidate.features).
const numFeatures = 4

// featMatrix is the flat SoA classifier feature matrix: one
// index-aligned []float64 per feature, filled in place by the scoreAll
// workers (worker i writes only row i, so the fill is race-free without
// locks). The forest trains and batch-infers directly over the columns;
// Candidate.features stays as the row-major differential oracle.
type featMatrix struct {
	cols [numFeatures][]float64
	n    int
}

// featPool recycles feature-matrix buffers across detection runs so the
// steady-state scoring path keeps its zero-allocation property: a
// long-lived stream re-analyzing every hop reuses the same columns.
var featPool = sync.Pool{New: func() any { return new(featMatrix) }}

// getFeatMatrix returns a zeroed n-row matrix from the pool.
//
//cabd:hotpath
func getFeatMatrix(n int) *featMatrix {
	m := featPool.Get().(*featMatrix)
	m.n = n
	for f := range m.cols {
		if cap(m.cols[f]) < n {
			m.cols[f] = make([]float64, n)
			continue
		}
		m.cols[f] = m.cols[f][:n]
		col := m.cols[f]
		for i := range col {
			col[i] = 0
		}
	}
	return m
}

// putFeatMatrix returns m to the pool. The caller must not retain the
// forest.Matrix view past this call.
func putFeatMatrix(m *featMatrix) {
	if m != nil {
		featPool.Put(m)
	}
}

// matrix returns the forest-facing column view.
func (m *featMatrix) matrix() forest.Matrix {
	return forest.Matrix{Cols: m.cols[:], N: m.n}
}

// fill writes candidate c's feature vector into row i under the
// ablation switches of opts — the SoA mirror of Candidate.features.
// Disabled features keep the zero the matrix was handed out with.
//
//cabd:hotpath
func (m *featMatrix) fill(i int, c *Candidate, opts *Options) {
	if !opts.DisableMagnitude {
		m.cols[0][i] = c.Magnitude
	}
	if !opts.DisableCorrelation {
		m.cols[1][i] = c.Correlation
	}
	if !opts.DisableVariance {
		m.cols[2][i] = c.Variance
	}
	m.cols[3][i] = c.Asymmetry
}

// fillFromCandidates populates the whole matrix from already-scored
// candidates — the entry path for EvaluateCandidates callers that hand
// in candidates scored elsewhere (e.g. the multivariate extension).
//
//cabd:hotpath
func (m *featMatrix) fillFromCandidates(cands []Candidate, opts *Options) {
	for i := range cands {
		m.fill(i, &cands[i], opts)
	}
}
