// Package core implements CABD, the Comprehensive Anomaly and change
// point/Break point Detection algorithm of the paper (Section IV):
// candidate estimation from the MAD of the absolute second difference,
// INN-based score computation (Magnitude, Correlation, Variance),
// probabilistic classification bootstrapped by unsupervised GMM
// clustering, and the CAL uncertainty-sampling active-learning loop
// terminated by a user-chosen minimum confidence.
package core

import (
	"cabd/internal/obs"
	"cabd/internal/sanitize"
)

// Strategy selects the neighborhood computation (Section IV
// "Optimizations" and the Figure 12 ablation).
type Strategy int

const (
	// BinaryINN is the optimized default: Algorithm 5's per-side binary
	// search with the 5% range prune.
	BinaryINN Strategy = iota
	// LinearINN is the unoptimized linear per-side scan (Algorithm 1's
	// cost profile) — the "CABD without optimization" curve of Fig. 11.
	LinearINN
	// MutualSetINN is the unconstrained (non-contiguous) mutual
	// neighborhood.
	MutualSetINN
	// FixedKNN replaces INN with a fixed k-nearest-neighbor set — the
	// CABD-KNN ablation of Fig. 12.
	FixedKNN
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case BinaryINN:
		return "binary-inn"
	case LinearINN:
		return "linear-inn"
	case MutualSetINN:
		return "mutualset-inn"
	case FixedKNN:
		return "fixed-knn"
	default:
		return "unknown"
	}
}

// Options configures a Detector. The zero value selects the paper's
// defaults via defaults().
type Options struct {
	// CandidateZ is the robust z-score threshold on the second
	// difference for candidate estimation (Definitions 3-4). Default 3.
	CandidateZ float64
	// RangeFrac is the INN search-range prune as a fraction of the
	// dataset (Section IV Optimizations). Default 0.05.
	RangeFrac float64
	// Strategy selects the neighborhood computation. Default BinaryINN.
	Strategy Strategy
	// KNNK is the fixed k for the FixedKNN ablation. Default 10.
	KNNK int

	// Score ablation switches (Fig. 13). All default to enabled; a
	// disabled score contributes a constant 0 feature.
	DisableMagnitude   bool
	DisableCorrelation bool
	DisableVariance    bool

	// XChannelCorr enables the cross-channel correlation feature as a
	// fifth classifier column (Candidate.XCorr). Only the multivariate
	// detector sets it (for d >= 2 channels); the univariate pipeline
	// keeps the 4-feature layout, so its forest RNG consumption — and
	// therefore its detections — stay bit-identical.
	XChannelCorr bool

	// SAXSegments / SAXAlphabet parameterize the correlation score's
	// symbolic representation (Definitions 6-8). Defaults 3 and 3 (a coarse word space keeps common shapes genuinely frequent).
	SAXSegments int
	SAXAlphabet int

	// Confidence is the user-defined minimum confidence γ terminating
	// active learning (Algorithm 2 line 5). Default 0.8.
	Confidence float64
	// MaxQueries caps oracle interactions per series. Default:
	// max(50, 2% of the series length) — the paper reports exposing
	// about 2% of the dataset to the user on average.
	MaxQueries int
	// LabelWeight is how many times each oracle-provided label is
	// replicated in the training set relative to bootstrap
	// pseudo-labels, letting few true labels steer the classifier.
	// Default 5.
	LabelWeight int

	// Sanitize selects how the facade entry points treat NaN, ±Inf and
	// out-of-range values before detection: repair by interpolation
	// (default), drop the bad points, or reject the series with an
	// error. Internal pipeline stages always receive sanitized data.
	Sanitize sanitize.Policy

	// DegradeCandidates bounds the candidate count before the detector
	// falls back from the configured INN strategy to the cheaper
	// FixedKNN neighborhood (graceful degradation under candidate
	// explosion — e.g. MAD collapse on hostile input). The downgrade is
	// recorded on the Result. Default 4096; negative disables.
	DegradeCandidates int

	// SeqOracle forces the sequential row-major reference paths the
	// optimized pipeline is differentially tested against: one scoring
	// worker, single-goroutine forest training, per-candidate row-major
	// feature vectors and per-row forest inference. Detections are
	// bit-identical to the default batched/parallel paths — that
	// equivalence is what the determinism suite and the `-exp scale`
	// benchmark enforce — just slower. Off by default.
	SeqOracle bool

	// Obs receives pipeline metrics: stage spans, candidate/query/
	// degradation counters, rank-memo statistics. One recorder may be
	// shared across detectors, batch workers and streaming pushes. Nil
	// (the default) disables instrumentation entirely — the nil path
	// reads no clock and allocates nothing.
	Obs *obs.Recorder

	// Trees is the random-forest size. Default 100.
	Trees int
	// Seed drives every stochastic component (forest bagging, GMM
	// seeding) so runs are reproducible. Default 1.
	Seed int64
}

func (o Options) defaults() Options {
	if o.CandidateZ <= 0 {
		o.CandidateZ = 3
	}
	if o.RangeFrac <= 0 {
		o.RangeFrac = 0.05
	}
	if o.KNNK <= 0 {
		o.KNNK = 10
	}
	if o.SAXSegments <= 0 {
		o.SAXSegments = 3
	}
	if o.SAXAlphabet <= 0 {
		o.SAXAlphabet = 3
	}
	if o.Confidence <= 0 {
		o.Confidence = 0.8
	}
	if o.LabelWeight <= 0 {
		o.LabelWeight = 5
	}
	if o.DegradeCandidates == 0 {
		o.DegradeCandidates = 4096
	}
	if o.Trees <= 0 {
		o.Trees = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}
