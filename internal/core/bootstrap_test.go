package core

import (
	"math/rand"
	"testing"
)

func med(cands []Candidate) scoreMedians {
	m := medians(cands)
	m.zHigh = strongZ(cands)
	return m
}

// population builds a realistic candidate mix for rule testing.
func population() []Candidate {
	var cands []Candidate
	rng := rand.New(rand.NewSource(1))
	// Normal noise candidates: low everything, z near threshold.
	for i := 0; i < 40; i++ {
		cands = append(cands, Candidate{
			Index: i * 10, Magnitude: 0.002, Correlation: 0.3 + 0.1*rng.Float64(),
			Variance: 0.05 * rng.Float64(), SecondDiffZ: 3.5 + rng.Float64(),
		})
	}
	return cands
}

func TestRuleClassSingleAnomaly(t *testing.T) {
	cands := population()
	m := med(cands)
	c := Candidate{Magnitude: 0, Correlation: 0.01, Variance: 0.95, SecondDiffZ: 80}
	if got := ruleClass(&c, m); got != ClassAnomaly {
		t.Errorf("textbook single anomaly classified %v", got)
	}
}

func TestRuleClassCollectiveAnomaly(t *testing.T) {
	m := med(population())
	c := Candidate{Magnitude: 0.004, Correlation: 0.02, Variance: 0.6,
		SecondDiffZ: 40, LeftExtent: 0, RightExtent: 7}
	if got := ruleClass(&c, m); got != ClassAnomaly {
		t.Errorf("collective anomaly classified %v", got)
	}
}

func TestRuleClassChangePoint(t *testing.T) {
	m := med(population())
	c := Candidate{Magnitude: 0.03, Correlation: 0.05, Variance: 0.05,
		SecondDiffZ: 60, LeftExtent: 0, RightExtent: 50, Asymmetry: 1}
	if got := ruleClass(&c, m); got != ClassChange {
		t.Errorf("level shift classified %v", got)
	}
}

func TestRuleClassNormalBlip(t *testing.T) {
	m := med(population())
	// One-sided but weak second difference: a noise blip, not a shift.
	c := Candidate{Magnitude: 0.004, Correlation: 0.4, Variance: 0.05,
		SecondDiffZ: 4, LeftExtent: 0, RightExtent: 8}
	if got := ruleClass(&c, m); got != ClassNormal {
		t.Errorf("noise blip classified %v", got)
	}
}

func TestRuleClassSeasonalTurnNotAnomaly(t *testing.T) {
	m := med(population())
	// Moderate variance but weak z and common pattern: a seasonal turn.
	c := Candidate{Magnitude: 0.004, Correlation: 0.5, Variance: 0.4,
		SecondDiffZ: 4, LeftExtent: 3, RightExtent: 3}
	if got := ruleClass(&c, m); got == ClassAnomaly {
		t.Error("seasonal turning point classified as anomaly")
	}
}

func TestRuleClassOversizedPatternNotAnomaly(t *testing.T) {
	m := med(population())
	// Rule 1: a pattern spanning more than 5% of the data is no anomaly.
	c := Candidate{Magnitude: 0.2, Correlation: 0.01, Variance: 0.9, SecondDiffZ: 50}
	if got := ruleClass(&c, m); got == ClassAnomaly {
		t.Error("oversized pattern classified as anomaly")
	}
}

func TestStrongZFloor(t *testing.T) {
	// With few weak candidates, the threshold floors at 6.
	cands := []Candidate{{SecondDiffZ: 1}, {SecondDiffZ: 1.2}}
	if got := strongZ(cands); got != 6 {
		t.Errorf("strongZ floor = %v", got)
	}
	// With the realistic mix, it anchors on the weak quantile, not the
	// (possibly abnormal) majority.
	mixed := population()
	for i := 0; i < 100; i++ {
		mixed = append(mixed, Candidate{SecondDiffZ: 200})
	}
	if got := strongZ(mixed); got > 30 {
		t.Errorf("strongZ dragged up by abnormal majority: %v", got)
	}
}

func TestBootstrapLabelsEmpty(t *testing.T) {
	got := bootstrapLabels(nil, Options{}.defaults(), rand.New(rand.NewSource(1)))
	if len(got) != 0 {
		t.Errorf("empty candidates produced labels: %v", got)
	}
}
