package core

import (
	"math/rand"

	"cabd/internal/ml/gmm"
	"cabd/internal/stats"
)

// bootstrapLabels builds the initial (hypothesis-based) training labels
// for the candidates without any user input (Section IV, "Score
// Evaluation"): the candidates are clustered into up to four groups with a
// Gaussian Mixture over their score vectors, and each cluster receives a
// label from the observed characteristics of Figure 3 and the three
// decision rules:
//
//  1. abnormal points have magnitude score below ~5% (single anomalies
//     have MS = 0);
//  2. abnormal points have a low correlation score (their pattern is
//     rare);
//  3. abnormal points have a high variance score (removing their pattern
//     shrinks the local standard deviation).
//
// Change points and plain normal points both fail rule 3; they are told
// apart by pattern rarity (a level shift's boundary shape is rare) and
// neighborhood size.
func bootstrapLabels(cands []Candidate, opts Options, rng *rand.Rand) []Class {
	_ = opts
	_ = rng
	labels := make([]Class, len(cands))
	if len(cands) == 0 {
		return labels
	}
	med := medians(cands)
	// The change rule grades level shifts against the strength of the
	// candidate population: a genuine shift's second difference towers
	// over the noise blips that share its one-sided hull shape.
	med.zHigh = strongZ(cands)
	for i := range cands {
		labels[i] = ruleClass(&cands[i], med)
	}
	return labels
}

// strongZ returns three times the 10th percentile of the candidates'
// second-difference z-scores (at least 6 — twice the candidate
// threshold). Noise blips cluster just above the candidate threshold and
// anchor the low quantile even when most candidates are genuinely
// abnormal; genuine shifts and spikes sit an order of magnitude higher.
func strongZ(cands []Candidate) float64 {
	zs := make([]float64, len(cands))
	for i := range cands {
		zs[i] = cands[i].SecondDiffZ
	}
	z := 3 * stats.Quantile(zs, 0.10)
	if z < 6 {
		z = 6
	}
	return z
}

// ClusterScores fits the 4-component Gaussian Mixture over the candidate
// score vectors (the unsupervised clustering the paper derives its
// thresholds from; Figure 3) and returns the per-candidate cluster
// assignment alongside the cluster means in (MS, CS, VS) order.
func ClusterScores(cands []Candidate, opts Options, rng *rand.Rand) (assign []int, means [][]float64) {
	if len(cands) == 0 {
		return nil, nil
	}
	feats := make([][]float64, len(cands))
	for i := range cands {
		feats[i] = cands[i].features(opts.defaults())
	}
	model := gmm.Fit(feats, gmm.Config{K: 4, Restarts: 2}, rng)
	if model == nil {
		return nil, nil
	}
	assign = make([]int, len(cands))
	for i, f := range feats {
		assign[i] = model.Assign(f)
	}
	return assign, model.Means
}

// scoreMedians holds the per-score medians over the candidate set, the
// data-derived thresholds the decision rules compare against.
type scoreMedians struct {
	ms, cs, vs float64
	zHigh      float64 // strong second-difference threshold for level shifts
}

func medians(cands []Candidate) scoreMedians {
	ms := make([]float64, len(cands))
	cs := make([]float64, len(cands))
	vs := make([]float64, len(cands))
	for i := range cands {
		ms[i] = cands[i].Magnitude
		cs[i] = cands[i].Correlation
		vs[i] = cands[i].Variance
	}
	return scoreMedians{
		ms: stats.Median(ms),
		cs: stats.Median(cs),
		vs: stats.Median(vs),
	}
}

// ruleClass applies the three hypothesis rules of Section IV as a
// conjunction: an abnormal point has magnitude below the paper's 5% bound
// (rule 1), a correlation score below the population median — its pattern
// is rare (rule 2) — and a variance score high enough that removing its
// pattern shrinks the local standard deviation by at least 25% (rule 3).
// Non-anomalous candidates whose neighborhood is strongly one-sided are
// change points: a level shift's INN grows into the new segment only.
func ruleClass(c *Candidate, med scoreMedians) Class {
	const msBound = 0.05
	const vsBound = 0.25
	// Rule 1-3 conjunction, gated on a strong second difference: a true
	// error deviates sharply from its neighbors by construction, while
	// seasonal turning points pass the variance test with z barely above
	// the candidate threshold.
	if c.Variance >= vsBound && c.Magnitude < msBound &&
		c.Correlation <= med.cs && c.SecondDiffZ >= med.zHigh {
		return ClassAnomaly
	}
	lo, hi := c.LeftExtent, c.RightExtent
	if lo > hi {
		lo, hi = hi, lo
	}
	if c.Variance < vsBound && hi >= 3 && lo*4 <= hi && c.SecondDiffZ >= med.zHigh {
		return ClassChange
	}
	return ClassNormal
}
