package core

import (
	"cabd/internal/ml/forest"
	"cabd/internal/obs"
	"cabd/internal/series"
)

// Class is the 3-way classification space of the Score Evaluation step:
// {abnormal point, normal point, change point}.
type Class int

// Classifier output classes. Single and collective anomalies share
// ClassAnomaly; the subtype is recovered from the INN size.
const (
	ClassNormal Class = iota
	ClassAnomaly
	ClassChange
)

// NumClasses is the classifier label-space size.
const NumClasses = 3

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNormal:
		return "normal"
	case ClassAnomaly:
		return "anomaly"
	case ClassChange:
		return "change"
	default:
		return "unknown"
	}
}

// classOfLabel maps a ground-truth label to the classifier space.
func classOfLabel(l series.Label) Class {
	switch {
	case l.IsAnomaly():
		return ClassAnomaly
	case l == series.ChangePoint:
		return ClassChange
	default:
		return ClassNormal
	}
}

// Candidate is one point selected by candidate estimation, with its
// neighborhood and score metric β (Algorithm 3).
type Candidate struct {
	Index int   // position in the series
	INN   []int // neighborhood member indices (sorted, excluding Index)
	// LeftExtent / RightExtent are the per-side spans of the INN hull
	// around Index. A change point's neighborhood grows into the new
	// segment only, so one extent is near zero — the bootstrap rules
	// use this asymmetry to tell level shifts from plain normal points.
	LeftExtent  int
	RightExtent int

	// The three INN scores (Definitions 5, 8, 9).
	Magnitude   float64
	Correlation float64
	Variance    float64
	// Asymmetry is |RightExtent-LeftExtent| / (RightExtent+LeftExtent)
	// in [0,1] (0 for an empty neighborhood). It exposes the
	// one-sidedness of the INN hull to the classifier: a change point's
	// neighborhood grows into the new segment only. See DESIGN.md —
	// this is the reproduction's one extension beyond the paper's three
	// scores, needed because the contiguous-INN geometry folds the
	// asymmetry signal out of the magnitude score.
	Asymmetry float64

	// XCorr is the cross-channel decorrelation score of the multivariate
	// extension: (1 - mean pairwise channel correlation over the local
	// window)/2, in [0,1]. A fault in one channel of a correlated group
	// breaks the local co-movement, so high XCorr is anomaly evidence.
	// Zero (and excluded from the feature vector) unless
	// Options.XChannelCorr is set.
	XCorr float64

	// SecondDiffZ is the robust z-score of the candidate's absolute
	// second difference — how strongly the candidate-estimation step
	// flagged it. Level shifts and spikes score far above noise blips.
	SecondDiffZ float64

	// Classification state.
	Class      Class
	Confidence float64 // confidence weight CW = max class probability
	Queried    bool    // answered by the oracle during active learning
}

// Features returns the classifier feature vector under the ablation
// switches of opts. The asymmetry feature always rides along; the Fig. 13
// ablation toggles only the paper's three scores.
func (c *Candidate) features(o Options) []float64 {
	f := make([]float64, featWidth(&o))
	if !o.DisableMagnitude {
		f[0] = c.Magnitude
	}
	if !o.DisableCorrelation {
		f[1] = c.Correlation
	}
	if !o.DisableVariance {
		f[2] = c.Variance
	}
	f[3] = c.Asymmetry
	if o.XChannelCorr {
		f[4] = c.XCorr
	}
	return f
}

// Detection is one reported anomaly or change point.
type Detection struct {
	Index      int          // series position
	Class      Class        // ClassAnomaly or ClassChange
	Subtype    series.Label // SingleAnomaly / CollectiveAnomaly / ChangePoint
	Confidence float64      // classifier confidence weight
}

// RoundSnapshot captures the detector state after one active-learning
// round (Table II traces).
type RoundSnapshot struct {
	Round         int     // 1-based AL round (0 = unsupervised bootstrap)
	Queries       int     // cumulative oracle queries
	MinConfidence float64 // min CW across candidates
	Anomalies     []int   // anomaly indices predicted at this round
	ChangePoints  []int   // change-point indices predicted at this round
}

// Result is the output of a detection run.
type Result struct {
	// Anomalies and ChangePoints are the final detections, sorted by
	// index.
	Anomalies    []Detection
	ChangePoints []Detection
	// Candidates is the scored candidate set (diagnostics, Fig. 3).
	Candidates []Candidate
	// Queries is the number of oracle interactions (0 when
	// unsupervised).
	Queries int
	// Rounds traces each active-learning round.
	Rounds []RoundSnapshot

	// Model is the last random forest trained by the run — the final
	// classifier state after every active-learning round. The serving
	// layer serializes it (forest.Snapshot) into session checkpoints so
	// a restarted process holds the exact ensemble that produced the
	// verdict. Nil when no classification ran (no candidates).
	Model *forest.Forest

	// Stages is the per-stage wall time of this run, populated only when
	// Options.Obs carries a recorder (the nil-recorder path skips all
	// clock reads).
	Stages obs.StageTimings

	// Strategy is the neighborhood strategy actually used — it differs
	// from the configured one when the run degraded.
	Strategy Strategy
	// Degraded is set when the detector fell back to FixedKNN scoring
	// because the candidate count exceeded Options.DegradeCandidates or
	// the context deadline left too little headroom for full INN
	// computation. DegradeReason says which.
	Degraded      bool
	DegradeReason string
}

// AnomalyIndices returns the detected anomaly positions, sorted.
func (r *Result) AnomalyIndices() []int {
	out := make([]int, len(r.Anomalies))
	for i, d := range r.Anomalies {
		out[i] = d.Index
	}
	return out
}

// ChangePointIndices returns the detected change-point positions, sorted.
func (r *Result) ChangePointIndices() []int {
	out := make([]int, len(r.ChangePoints))
	for i, d := range r.ChangePoints {
		out[i] = d.Index
	}
	return out
}
