package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cabd/internal/inn"
	"cabd/internal/ml/forest"
	"cabd/internal/obs"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// Labeler answers point-label queries during active learning. The
// simulated oracle of internal/oracle implements it; applications supply
// their own (e.g. prompting a human).
type Labeler interface {
	Label(i int) series.Label
}

// Detector runs CABD (Algorithm 2) over series. A Detector is stateless
// across series; it is cheap to construct.
type Detector struct {
	opts Options
}

// NewDetector returns a detector with opts (zero-value fields take the
// paper's defaults).
func NewDetector(opts Options) *Detector {
	return &Detector{opts: opts.defaults()}
}

// Options returns the resolved option set.
func (d *Detector) Options() Options { return d.opts }

// Detect runs the unsupervised pipeline: candidate estimation, score
// computation, GMM-bootstrapped classification. No oracle is consulted.
func (d *Detector) Detect(s *series.Series) *Result {
	res, _ := d.DetectCtx(context.Background(), s)
	return res
}

// DetectActive runs the full interactive pipeline (Algorithm 2 with the
// CAL loop of Algorithm 4): after the unsupervised bootstrap, the most
// uncertain candidates are queried against the labeler until every
// confidence weight exceeds the configured γ or the query budget is
// exhausted.
func (d *Detector) DetectActive(s *series.Series, o Labeler) *Result {
	res, _ := d.DetectActiveCtx(context.Background(), s, o)
	return res
}

// DetectCtx is Detect with cancellation: ctx is checked at every stage
// boundary (candidate estimation, INN scoring, each classifier training
// round) and a cancelled or expired context returns ctx.Err() promptly.
// A context deadline also arms graceful degradation — see Result.Degraded.
func (d *Detector) DetectCtx(ctx context.Context, s *series.Series) (*Result, error) {
	return d.run(ctx, s, nil, nil)
}

// DetectActiveCtx is DetectActive with cancellation; the context is
// additionally checked between active-learning rounds, so a slow human
// labeler cannot wedge a cancelled run.
func (d *Detector) DetectActiveCtx(ctx context.Context, s *series.Series, o Labeler) (*Result, error) {
	return d.run(ctx, s, o, nil)
}

// Env supplies externally maintained pipeline substrates. The batch path
// rebuilds every stage from scratch per series; a streaming caller that
// maintains the same state incrementally across window slides plugs its
// rolling structures in here, and the orchestration, scoring and
// classification code is shared verbatim — the two paths cannot drift
// apart, because they are the same code fed by different substrates.
//
// Every hook is optional (nil falls back to the batch computation), but a
// hook that is supplied must answer exactly as the batch stage would for
// the same series: Candidates like candidateIndices on the raw values,
// Computer like inn.FromSeries over the standardized embedding, Frequency
// like sax.Frequency over the sliding word corpus of the raw values.
type Env struct {
	// Candidates returns the candidate indices and their robust z-scores
	// (what candidateIndices computes from the raw series).
	Candidates func() (idx []int, zscores []float64)
	// Computer answers INN rank probes over the standardized 2-D
	// embedding of the current window.
	Computer *inn.Computer
	// Frequency returns the fraction of length-wlen windows whose SAX
	// word equals word (what sax.Frequency over SlidingWords computes).
	Frequency func(wlen int, word string) float64
}

// DetectEnvCtx is DetectCtx with caller-maintained substrates: candidate
// generation, neighbor search and word-frequency lookups are answered by
// env instead of being recomputed from the series. The streaming engine
// (internal/stream/incremental) is the intended caller.
func (d *Detector) DetectEnvCtx(ctx context.Context, s *series.Series, env *Env) (*Result, error) {
	return d.run(ctx, s, nil, env)
}

func (d *Detector) run(ctx context.Context, s *series.Series, o Labeler, env *Env) (*Result, error) {
	t := d.opts.Obs.NewTrace()
	res := &Result{Strategy: d.opts.Strategy}
	n := s.Len()
	if n < 4 {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Standardization (Equation 2) feeds exactly one consumer: the 2-D
	// embedding the INN distances are measured in. Candidate estimation,
	// SAX words and the variance ratio are affine-invariant, so they run
	// on the raw values — which is what lets a streaming caller maintain
	// them incrementally across window slides (see Env).
	zs := &series.Series{Name: s.Name, Values: stats.Standardize(s.Values)}

	// Step 1: candidate estimation.
	var idx []int
	var zscores []float64
	t.Do(obs.StageCandidates, func() {
		if env != nil && env.Candidates != nil {
			idx, zscores = env.Candidates()
		} else {
			idx, zscores = candidateIndices(s, d.opts.CandidateZ)
		}
	})
	if len(idx) == 0 {
		res.Stages = t.Timings()
		return res, nil
	}
	cands := make([]Candidate, len(idx))
	for i, ci := range idx {
		cands[i] = Candidate{Index: ci, SecondDiffZ: zscores[i]}
	}
	t.Add(obs.CounterCandidates, int64(len(cands)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Graceful degradation 1: a candidate explosion (MAD collapse on
	// hostile input) makes per-candidate INN growth the dominant cost;
	// cap it by switching to the fixed-k neighborhood.
	opts := d.opts
	degradeReason := ""
	if bound := opts.DegradeCandidates; bound > 0 && len(cands) > bound && opts.Strategy != FixedKNN {
		opts.Strategy = FixedKNN
		degradeReason = fmt.Sprintf("candidate count %d exceeds bound %d", len(cands), bound)
	}

	// Step 2: score computation (parallel, Algorithm 3). The scorer may
	// degrade further when the context deadline leaves no headroom.
	comp := (*inn.Computer)(nil)
	if env != nil && env.Computer != nil {
		comp = env.Computer
	} else {
		comp = inn.FromSeries(zs)
	}
	sc := newScorer(s.Values, comp, opts)
	if env != nil && env.Frequency != nil {
		sc.freq = env.Frequency
	}
	// The scorer's SoA feature matrix comes from a pool; hand it back
	// once evaluation no longer reads the columns.
	defer func() { putFeatMatrix(sc.feats) }()
	var deadlineDegraded bool
	var scoreErr error
	t.Do(obs.StageINNScore, func() {
		deadlineDegraded, scoreErr = sc.scoreAll(ctx, cands)
	})
	if hits, misses := sc.memoStats(); hits+misses > 0 {
		t.Add(obs.CounterRankMemoHits, hits)
		t.Add(obs.CounterRankMemoMisses, misses)
	}
	if scoreErr != nil {
		return nil, scoreErr
	}
	if deadlineDegraded && degradeReason == "" {
		degradeReason = "context deadline headroom too small for INN scoring"
	}

	res, err := d.evaluateCtx(ctx, cands, n, o, t, sc.feats)
	if err != nil {
		return nil, err
	}
	res.Strategy = sc.resolved
	res.Degraded = degradeReason != ""
	res.DegradeReason = degradeReason
	if degradeReason != "" {
		d.opts.Obs.Degraded(degradeReason)
	}
	res.Stages = t.Timings()
	return res, nil
}

// EvaluateCandidates runs the Score Evaluation and CAL stages (Algorithm
// 2 lines 4-5, Algorithm 4) over pre-scored candidates and assembles the
// detections: hypothesis bootstrap, probabilistic classification, and —
// when a labeler is supplied — the uncertainty-sampling loop until every
// confidence weight clears γ or the query budget runs out. n is the
// series length (for magnitude-rule bookkeeping and index bounds).
// Exposed so the multivariate extension can feed candidates built from
// its own embedding through the identical evaluation machinery.
func (d *Detector) EvaluateCandidates(cands []Candidate, n int, o Labeler) *Result {
	res, _ := d.EvaluateCandidatesCtx(context.Background(), cands, n, o)
	return res
}

// EvaluateCandidatesCtx is EvaluateCandidates with cancellation checks
// before every random-forest training pass — the expensive inner step —
// and between active-learning rounds.
func (d *Detector) EvaluateCandidatesCtx(ctx context.Context, cands []Candidate, n int, o Labeler) (*Result, error) {
	t := d.opts.Obs.NewTrace()
	res, err := d.evaluateCtx(ctx, cands, n, o, t, nil)
	if err != nil {
		return nil, err
	}
	res.Stages = t.Timings()
	return res, nil
}

// evaluateCtx is the trace-carrying core of EvaluateCandidatesCtx; run()
// passes its own trace so the per-run StageTimings cover the whole
// pipeline, while the exported entry point opens a fresh one. fm is the
// SoA feature matrix the scoring workers filled; a nil fm (candidates
// scored elsewhere, e.g. the multivariate extension) is assembled here
// from the candidates' score fields.
func (d *Detector) evaluateCtx(ctx context.Context, cands []Candidate, n int, o Labeler, t *obs.Trace, fm *featMatrix) (*Result, error) {
	res := &Result{Strategy: d.opts.Strategy}
	if len(cands) == 0 {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fm == nil {
		fm = getFeatMatrix(len(cands), featWidth(&d.opts))
		fm.fillFromCandidates(cands, &d.opts)
		defer putFeatMatrix(fm)
	}
	m := fm.matrix()
	scr := &clsScratch{}
	rng := rand.New(rand.NewSource(d.opts.Seed))

	// Step 3: score evaluation — bootstrap pseudo-labels, then classify.
	var pseudo []Class
	t.Do(obs.StageBootstrap, func() {
		pseudo = bootstrapLabels(cands, d.opts, rng)
	})
	trueLabels := make(map[int]Class) // candidate position -> oracle class
	t.Do(obs.StageClassify, func() {
		res.Model = d.classify(m, cands, pseudo, trueLabels, rng, scr)
	})
	res.Rounds = append(res.Rounds, snapshot(0, 0, cands))

	// Step 4: CAL active learning (Algorithm 4).
	if o != nil {
		budget := d.opts.MaxQueries
		if budget <= 0 {
			budget = n / 50 // ~2% of the series, the paper's average exposure
			if budget < 50 {
				budget = 50
			}
		}
		// Always explore a few labels before trusting the bootstrap:
		// when the hypothesis rules collapse to a single class (dense
		// anomaly regimes pollute the variance score), the ensemble is
		// unanimously — and wrongly — confident, and pure uncertainty
		// sampling would never fire. The paper's runs likewise always
		// consume a handful of queries (Table I: 4-5 on real data).
		minExplore := 3
		if minExplore > budget {
			minExplore = budget
		}
		queries := 0
		agreeStreak := 0
		for queries < budget {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pos := mostUncertain(cands)
			if pos < 0 {
				break
			}
			// Terminate on min(CW) > γ, but only once the model has
			// also been *right* about its last few queried points: a
			// confidently wrong ensemble (dense anomaly regimes) must
			// keep consuming labels until its answers stabilize.
			if cands[pos].Confidence > d.opts.Confidence &&
				queries >= minExplore && agreeStreak >= 3 {
				break
			}
			t.Do(obs.StageALRound, func() {
				predicted := cands[pos].Class
				lbl := o.Label(cands[pos].Index)
				queries++
				t.Add(obs.CounterOracleQueries, 1)
				cands[pos].Queried = true
				truth := classOfLabel(lbl)
				if truth == predicted {
					agreeStreak++
				} else {
					agreeStreak = 0
				}
				trueLabels[pos] = truth
				res.Model = d.classify(m, cands, pseudo, trueLabels, rng, scr)
			})
			res.Rounds = append(res.Rounds, snapshot(queries, queries, cands))
		}
		res.Queries = queries
	}

	res.Candidates = cands
	t.Do(obs.StageAssemble, func() {
		d.assemble(res, n)
	})
	return res, nil
}

// clsScratch carries the classification buffers of one evaluation run.
// The interactive retraining loop calls classify once per
// active-learning round; reusing the label, weight and batch-inference
// buffers across rounds keeps the loop's steady state allocation-free
// outside the forest itself.
type clsScratch struct {
	y      []int
	w      []float64
	counts []float64
	full   []float64   // flat batch full-ensemble distributions
	oob    []float64   // flat batch out-of-bag distributions
	X      [][]float64 // row-major oracle rows (SeqOracle only)
}

// classify trains the random forest on the pseudo-labels overridden by
// oracle answers (true labels carry LabelWeight sampling weight) and
// refreshes every candidate's class and confidence weight. Confidence is
// the out-of-bag probability, so it is not a self-fulfilling echo of the
// candidate's own training label; queried candidates keep their oracle
// label with full confidence. The trained ensemble is returned so the
// run's Result can expose the final model for checkpointing.
//
// The default path trains over the SoA feature matrix with per-tree
// parallelism and classifies all candidates through one tree-major
// batch pass; Options.SeqOracle selects the sequential row-major
// reference path instead, which must produce bit-identical results.
func (d *Detector) classify(m forest.Matrix, cands []Candidate, pseudo []Class, trueLabels map[int]Class, rng *rand.Rand, scr *clsScratch) *forest.Forest {
	n := len(cands)
	if cap(scr.y) < n {
		scr.y = make([]int, n)
		scr.w = make([]float64, n)
	}
	y, w := scr.y[:n], scr.w[:n]
	if scr.counts == nil {
		scr.counts = make([]float64, NumClasses)
	}
	counts := scr.counts
	for c := range counts {
		counts[c] = 0
	}
	for i := range cands {
		if cls, ok := trueLabels[i]; ok {
			y[i] = int(cls)
		} else {
			y[i] = int(pseudo[i])
		}
		counts[y[i]]++
	}
	// Tempered (square-root) class balancing keeps minority classes — a
	// handful of change points among dozens of normal candidates — from
	// being squashed by the majority during bagging, without inflating
	// rare-class false positives; oracle labels are further upweighted.
	for i := range cands {
		w[i] = math.Sqrt(float64(n) / (float64(NumClasses) * counts[y[i]]))
		if _, ok := trueLabels[i]; ok {
			w[i] *= float64(d.opts.LabelWeight)
		}
	}
	cfg := forest.Config{
		Trees:      d.opts.Trees,
		MinLeaf:    3, // soft leaves: boundary candidates keep honest (<1) confidence
		NumClasses: NumClasses,
	}
	if d.opts.SeqOracle {
		return d.classifySeq(cands, y, w, cfg, trueLabels, rng, scr)
	}
	fr := forest.TrainMatrixWeighted(m, y, w, cfg, rng)
	if fr == nil {
		return nil
	}
	scr.full = fr.PredictProbaBatch(m, scr.full)
	scr.oob = fr.PredictProbaOOBBatch(m, scr.oob)
	for i := range cands {
		if cls, ok := trueLabels[i]; ok {
			cands[i].Class = cls
			cands[i].Confidence = 1
			continue
		}
		// Class from the full ensemble; confidence weight from the
		// out-of-bag probability of that class. A candidate that is the
		// lone example of its feature region keeps its hypothesis label
		// but shows near-zero OOB support, making it the first point
		// the active-learning loop asks the user about.
		full := scr.full[i*NumClasses : (i+1)*NumClasses]
		best, bi := -1.0, 0
		for c, p := range full {
			if p > best {
				best, bi = p, c
			}
		}
		cands[i].Class = Class(bi)
		cands[i].Confidence = scr.oob[i*NumClasses+bi]
	}
	return fr
}

// classifySeq is the sequential row-major differential oracle: the
// per-candidate feature rows the SoA columns replaced, single-goroutine
// training, and per-row inference. Kept verbatim so the determinism
// suite and the scale benchmark can prove the optimized path emits
// bit-identical detections.
func (d *Detector) classifySeq(cands []Candidate, y []int, w []float64, cfg forest.Config, trueLabels map[int]Class, rng *rand.Rand, scr *clsScratch) *forest.Forest {
	n := len(cands)
	cfg.Workers = 1
	if len(scr.X) < n {
		scr.X = make([][]float64, n)
	}
	X := scr.X[:n]
	for i := range cands {
		X[i] = cands[i].features(d.opts)
	}
	fr := forest.TrainWeighted(X, y, w, cfg, rng)
	for i := range cands {
		if cls, ok := trueLabels[i]; ok {
			cands[i].Class = cls
			cands[i].Confidence = 1
			continue
		}
		if fr == nil {
			continue
		}
		full := fr.PredictProba(X[i])
		best, bi := -1.0, 0
		for c, p := range full {
			if p > best {
				best, bi = p, c
			}
		}
		oob := fr.PredictProbaOOB(i, X[i])
		cands[i].Class = Class(bi)
		cands[i].Confidence = oob[bi]
	}
	return fr
}

// mostUncertain returns the position of the unqueried candidate with the
// lowest confidence weight (highest uncertainty, Equation 13), or -1.
func mostUncertain(cands []Candidate) int {
	pos, best := -1, 2.0
	for i := range cands {
		if cands[i].Queried {
			continue
		}
		if cands[i].Confidence < best {
			best, pos = cands[i].Confidence, i
		}
	}
	return pos
}

// snapshot records the current predictions for the Table II traces.
func snapshot(round, queries int, cands []Candidate) RoundSnapshot {
	rs := RoundSnapshot{Round: round, Queries: queries, MinConfidence: 1}
	for i := range cands {
		c := &cands[i]
		if !c.Queried && c.Confidence < rs.MinConfidence {
			rs.MinConfidence = c.Confidence
		}
		switch c.Class {
		case ClassAnomaly:
			rs.Anomalies = append(rs.Anomalies, c.Index)
			for _, j := range c.INN {
				rs.Anomalies = append(rs.Anomalies, j)
			}
		case ClassChange:
			rs.ChangePoints = append(rs.ChangePoints, c.Index)
		}
	}
	rs.Anomalies = dedupInts(rs.Anomalies)
	rs.ChangePoints = dedupInts(rs.ChangePoints)
	return rs
}

// assemble expands classified candidates into the final detection lists:
// an anomaly candidate covers itself plus its INN members (a collective
// anomaly's interior points are not candidates themselves — the
// neighborhood carries them); a change-point candidate reports a single
// position, with nearby duplicates suppressed.
func (d *Detector) assemble(res *Result, n int) {
	anom := make(map[int]Detection)
	var changes []Detection
	for i := range res.Candidates {
		c := &res.Candidates[i]
		switch c.Class {
		case ClassAnomaly:
			sub := series.CollectiveAnomaly
			if len(c.INN) == 0 {
				sub = series.SingleAnomaly
			}
			add := func(j int) {
				if j < 0 || j >= n {
					return
				}
				if prev, ok := anom[j]; !ok || c.Confidence > prev.Confidence {
					anom[j] = Detection{Index: j, Class: ClassAnomaly,
						Subtype: sub, Confidence: c.Confidence}
				}
			}
			add(c.Index)
			// Expand to the neighborhood only when the pattern obeys
			// the paper's size rule (an abnormal pattern above 5% of
			// the dataset is not an anomaly) and its removal actually
			// matters locally; oversized or inert neighborhoods
			// contribute just the candidate point.
			if c.Magnitude < 0.05 && c.Variance >= 0.25 {
				for _, j := range c.INN {
					add(j)
				}
			}
		case ClassChange:
			changes = append(changes, Detection{Index: c.Index,
				Class: ClassChange, Subtype: series.ChangePoint,
				Confidence: c.Confidence})
		}
	}
	for _, det := range anom {
		res.Anomalies = append(res.Anomalies, det)
	}
	sort.Slice(res.Anomalies, func(a, b int) bool {
		return res.Anomalies[a].Index < res.Anomalies[b].Index
	})
	// Suppress change points within 2 positions of a stronger one.
	sort.Slice(changes, func(a, b int) bool {
		return changes[a].Confidence > changes[b].Confidence
	})
	taken := map[int]bool{}
	for _, det := range changes {
		blocked := false
		for off := -2; off <= 2; off++ {
			if taken[det.Index+off] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		taken[det.Index] = true
		res.ChangePoints = append(res.ChangePoints, det)
	}
	sort.Slice(res.ChangePoints, func(a, b int) bool {
		return res.ChangePoints[a].Index < res.ChangePoints[b].Index
	})
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, v := range xs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
