package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"cabd/internal/inn"
	"cabd/internal/obs"
	"cabd/internal/sax"
	"cabd/internal/stats"
)

// scorer computes the score metric β (Algorithm 3) for candidates of one
// series. It works on the raw values: every score it computes — SAX words
// (standardized per window), the variance ratio, the INN-derived sizes —
// is invariant under the affine standardization of Equation 2, so only
// the Computer (which measures distances in the standardized embedding)
// ever sees standardized data.
type scorer struct {
	opts     Options
	values   []float64 // raw values
	comp     *inn.Computer
	tlim     int              // pruned search range
	corpus   map[int][]string // sliding SAX words keyed by window length
	corpusMu sync.Mutex

	// resolved is the neighborhood strategy scoring actually ran with.
	// scoreAll fixes it BEFORE the worker pool starts — the deadline
	// pilot's downgrade decision must never mutate shared option state
	// while workers are reading it — and run() reports it on the Result.
	resolved Strategy

	// feats is the flat SoA feature matrix the scoreAll workers fill
	// index-aligned with the candidate slice (worker scoring candidate i
	// writes only row i). The classifier trains and batch-infers over
	// these columns; Candidate.features stays as the row-major oracle.
	feats *featMatrix

	// freq, when set, answers word-frequency lookups instead of the
	// sliding-corpus cache — the streaming engine's rolling corpus hook
	// (core.Env.Frequency). It must be safe for concurrent use: scoreAll
	// workers call it in parallel.
	freq func(wlen int, word string) float64

	// clk times the deadline pilot. It comes from the run's obs recorder
	// (obs.Wall when none is installed), so a FakeClock recorder makes
	// the degradation trigger fully deterministic in tests.
	clk obs.Clock

	// forceDegrade makes the deadline pilot always downgrade, regardless
	// of the timing projection — a deterministic hook for the
	// feature-consistency tests (never set in production paths).
	forceDegrade bool
}

func newScorer(values []float64, comp *inn.Computer, opts Options) *scorer {
	return &scorer{
		opts: opts,
		// Candidates in one series grow overlapping neighborhoods, and a
		// pair's reverse probe is a later candidate's forward probe, so
		// all scoreAll workers share one bounded rank memo.
		comp:     comp.WithRankMemo(0),
		values:   values,
		tlim:     comp.RangeLimit(opts.RangeFrac),
		corpus:   make(map[int][]string),
		clk:      opts.Obs.Clock(),
		resolved: opts.Strategy,
	}
}

// memoStats reports the shared rank memo's cumulative hit/miss counts
// for the observability layer.
func (sc *scorer) memoStats() (hits, misses int64) {
	return sc.comp.MemoStats()
}

// neighborhood returns the INN (or KNN) members of index i under
// strategy. The strategy travels as an argument, not scorer state, so
// the deadline pilot's downgrade can never race the worker pool.
func (sc *scorer) neighborhood(i int, strategy Strategy) []int {
	switch strategy {
	case LinearINN:
		return sc.comp.Minimal(i, sc.tlim)
	case MutualSetINN:
		return sc.comp.MutualSet(i, sc.tlim)
	case FixedKNN:
		return sc.comp.KNN(i, sc.opts.KNNK)
	default:
		return sc.comp.Binary(i, sc.tlim)
	}
}

// hull returns the contiguous index span [lo, hi] covering i and its
// neighborhood (the "pattern" P the correlation and variance scores
// operate on).
func hull(i int, nb []int) (lo, hi int) {
	lo, hi = i, i
	for _, j := range nb {
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	return lo, hi
}

// score fills in the three INN scores of candidate c (Definitions 5, 8,
// 9; see DESIGN.md for the interpretation notes). It runs once per
// candidate inside the scoreAll worker pool and must not allocate: the
// variance score views the pattern's flanks through stats.Std2 instead
// of materializing the cut window.
//
//cabd:hotpath
func (sc *scorer) score(c *Candidate, strategy Strategy) {
	n := len(sc.values)
	c.INN = sc.neighborhood(c.Index, strategy)
	ss := len(c.INN)

	// Magnitude score (Definition 5): INN size over dataset size.
	c.Magnitude = float64(ss) / float64(n)

	lo, hi := hull(c.Index, c.INN)
	c.LeftExtent = c.Index - lo
	c.RightExtent = hi - c.Index
	if ext := c.LeftExtent + c.RightExtent; ext > 0 {
		c.Asymmetry = float64(absInt(c.RightExtent-c.LeftExtent)) / float64(ext)
	}

	// Correlation score (Definition 8): frequency of the pattern's SAX
	// word among all same-length windows of the series. The window is
	// centered on the candidate with a half-width tied to the pattern
	// size (clamped to [3, 12]): centering guarantees the word captures
	// the local shape transition — spike, group boundary or level shift
	// — rather than only the flat interior of a large one-sided hull.
	hw := ss
	if hw < 3 {
		hw = 3
	}
	if hw > 12 {
		hw = 12
	}
	wlo, whi := c.Index-hw, c.Index+hw+1
	if wlo < 0 {
		wlo = 0
	}
	if whi > n {
		whi = n
	}
	wlen := whi - wlo
	if wlen >= 2 && wlen <= n/2 {
		word := sax.Word(sc.values[wlo:whi], sc.opts.SAXSegments, sc.opts.SAXAlphabet)
		if sc.freq != nil {
			c.Correlation = sc.freq(wlen, word)
		} else {
			c.Correlation = sax.Frequency(sc.corpusFor(wlen), word)
		}
	} else {
		// Degenerate or series-scale windows occur everywhere.
		c.Correlation = 1
	}

	// Variance score (Definition 9, oriented as in hypothesis 3 and
	// Fig. 3): the relative drop of the SPa standard deviation when the
	// pattern is removed. SPa is the pattern extended by max(SS, 3)
	// adjacent points on each side.
	pad := ss
	if pad < 3 {
		pad = 3
	}
	slo, shi := lo-pad, hi+pad+1
	if slo < 0 {
		slo = 0
	}
	if shi > n {
		shi = n
	}
	spa := sc.values[slo:shi]
	left, right := sc.values[slo:lo], sc.values[hi+1:shi]
	sdAll := stats.Std(spa)
	if sdAll == 0 || len(left)+len(right) < 2 {
		c.Variance = 0
		return
	}
	vs := 1 - stats.Std2(left, right)/sdAll
	if vs < 0 {
		vs = 0
	}
	if vs > 1 {
		vs = 1
	}
	c.Variance = vs
}

// corpusFor returns the sliding SAX words of the whole series at window
// length w, cached per length. Candidates in the same series often share
// pattern sizes, so the cache hit rate is high.
func (sc *scorer) corpusFor(w int) []string {
	sc.corpusMu.Lock()
	defer sc.corpusMu.Unlock()
	if words, ok := sc.corpus[w]; ok {
		return words
	}
	words := sax.SlidingWords(sc.values, w, sc.opts.SAXSegments, sc.opts.SAXAlphabet)
	sc.corpus[w] = words
	return words
}

// scoreAll computes the metric for every candidate in parallel (the
// paper's Algorithm 3 computes the scores concurrently), checking ctx
// between candidates so cancellation propagates promptly.
//
// Graceful degradation 2: when ctx carries a deadline, a small pilot
// batch is scored first with the configured strategy and its measured
// per-candidate cost projected over the rest; if the projection eats
// more than half the remaining budget, scoring downgrades to the cheap
// FixedKNN neighborhood for the remaining candidates. The return value
// reports whether that happened.
func (sc *scorer) scoreAll(ctx context.Context, cands []Candidate) (degraded bool, err error) {
	sc.resolved = sc.opts.Strategy
	if len(cands) == 0 {
		return false, nil
	}
	sc.feats = getFeatMatrix(len(cands), featWidth(&sc.opts))
	workers := runtime.GOMAXPROCS(0)
	if sc.opts.SeqOracle {
		workers = 1
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	// strategy is resolved completely — pilot measurement, downgrade
	// decision, pilot re-score — before the worker pool starts. Workers
	// receive the final value; nothing they read is written afterwards.
	strategy := sc.opts.Strategy
	start := 0
	if deadline, ok := ctx.Deadline(); ok && strategy != FixedKNN {
		pilot := 4
		if pilot > len(cands) {
			pilot = len(cands)
		}
		t0 := sc.clk.Now()
		for i := 0; i < pilot; i++ {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			sc.score(&cands[i], strategy)
			sc.feats.fill(i, &cands[i], &sc.opts)
		}
		per := sc.clk.Now().Sub(t0) / time.Duration(pilot)
		rounds := (len(cands) - pilot + workers - 1) / workers
		start = pilot
		if projected := per * time.Duration(rounds); projected > deadline.Sub(sc.clk.Now())/2 || sc.forceDegrade {
			strategy = FixedKNN
			degraded = true
			// Re-score the pilot batch under the degraded strategy:
			// keeping its Binary-INN features would hand the classifier a
			// training set with mixed neighborhood semantics (the pilot's
			// Magnitude/extents mean something different from everyone
			// else's), skewing both the hypothesis bootstrap and the
			// confidence weights.
			start = 0
		}
	}
	sc.resolved = strategy
	var wg sync.WaitGroup
	ch := make(chan int, len(cands)-start)
	for i := start; i < len(cands); i++ {
		ch <- i
	}
	close(ch)
	var cancelled sync.Once
	var ctxErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				if e := ctx.Err(); e != nil {
					cancelled.Do(func() { ctxErr = e })
					return
				}
				sc.score(&cands[i], strategy)
				sc.feats.fill(i, &cands[i], &sc.opts)
			}
		}()
	}
	wg.Wait()
	return degraded, ctxErr
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
