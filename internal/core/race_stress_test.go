package core

import (
	"math/rand"
	"sync"
	"testing"

	"cabd/internal/obs"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// stormLabeler is a trivial concurrent-safe oracle: spikes planted every
// 45 points are anomalies, everything else is normal.
type stormLabeler struct{}

func (stormLabeler) Label(i int) series.Label {
	if i >= 60 && i < 660 && (i-60)%45 == 0 {
		return series.SingleAnomaly
	}
	return series.Normal
}

// TestConcurrentDetectSharedRecorder hammers the full pipeline — scoreAll
// worker pools, feature-matrix pool churn, parallel forest training,
// batch classification, the active-learning retrain loop — from many
// goroutines sharing one obs.Recorder. Its job is to give the race
// detector (make race) surface area on everything the raw-speed pass
// made concurrent: the pooled featMatrix handoff, the resolved-strategy
// publication, the per-tree rng fan-out, and the recorder's counters.
// It also cross-checks the differential contract under contention: every
// goroutine's detections must equal the sequential-oracle result.
func TestConcurrentDetectSharedRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	vals := noisyBase(rng, 700)
	for i := 60; i < 660; i += 45 {
		vals[i] = 22 + rng.NormFloat64()
	}
	std := stats.Standardize(vals)
	mk := func(name string) *series.Series {
		return &series.Series{Name: name, Values: std}
	}

	rec := obs.New()
	oracle := stormLabeler{}

	// Sequential-oracle baseline, computed once before the storm.
	base := NewDetector(Options{Seed: 1, SeqOracle: true, Obs: rec}).Detect(mk("base"))

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				d := NewDetector(Options{Seed: 1, Obs: rec})
				var res *Result
				if g%2 == 0 {
					res = d.Detect(mk("storm"))
				} else {
					res = d.DetectActive(mk("storm"), oracle)
				}
				if g%2 == 0 && len(res.Candidates) != len(base.Candidates) {
					errs <- "concurrent run diverged from baseline candidate count"
					return
				}
				if g%2 == 0 {
					for i := range res.Candidates {
						if res.Candidates[i].Class != base.Candidates[i].Class {
							errs <- "concurrent run diverged from sequential-oracle classes"
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
