package core

import (
	"testing"
	"time"

	"cabd/internal/obs"
	"cabd/internal/oracle"
	"cabd/internal/synth"
)

// stepRecorder returns a recorder on an auto-advancing FakeClock: every
// span measured on it lasts exactly step, so stage timings are asserted
// to the nanosecond instead of being bounded with sleeps.
func stepRecorder(step time.Duration) *obs.Recorder {
	clk := obs.NewFakeClock(time.Time{})
	clk.SetStep(step)
	return obs.NewWithClock(clk)
}

// TestUnsupervisedStageTimingsFakeClock pins the exact span structure of
// an unsupervised run: one span each for candidates, inn_score, bootstrap,
// classify and assemble — no sanitize (core is below the facade), no AL
// rounds — and a candidates counter equal to the surviving candidate set.
func TestUnsupervisedStageTimingsFakeClock(t *testing.T) {
	const step = time.Millisecond
	rec := stepRecorder(step)
	s := synth.YahooLike(7, 400)
	res := NewDetector(Options{Seed: 1, Obs: rec}).Detect(s)
	if len(res.Candidates) == 0 {
		t.Fatal("fixture produced no candidates; timing assertions are vacuous")
	}

	timed := []obs.Stage{
		obs.StageCandidates, obs.StageINNScore, obs.StageBootstrap,
		obs.StageClassify, obs.StageAssemble,
	}
	for _, st := range timed {
		if got := res.Stages.Get(st); got != step {
			t.Errorf("Stages.Get(%s) = %v, want exactly %v", st, got, step)
		}
		if got := rec.StageCount(st); got != 1 {
			t.Errorf("recorder span count for %s = %d, want 1", st, got)
		}
		if got := rec.StageTotal(st); got != step {
			t.Errorf("recorder total for %s = %v, want %v", st, got, step)
		}
	}
	for _, st := range []obs.Stage{obs.StageSanitize, obs.StageALRound, obs.StageBatchSeries} {
		if got := res.Stages.Get(st); got != 0 {
			t.Errorf("unexpected %s time %v in unsupervised core run", st, got)
		}
	}
	if got, want := res.Stages.Total(), time.Duration(len(timed))*step; got != want {
		t.Errorf("Stages.Total() = %v, want %v", got, want)
	}
	if got := rec.Count(obs.CounterCandidates); got != int64(len(res.Candidates)) {
		t.Errorf("candidates_total = %d, want %d", got, len(res.Candidates))
	}
	if got := rec.Count(obs.CounterOracleQueries); got != 0 {
		t.Errorf("oracle_queries_total = %d in unsupervised run", got)
	}
}

// TestActiveStageTimingsFakeClock runs the CAL loop against the simulated
// oracle and checks the per-round span accounting: exactly one al_round
// span and one oracle-query count per consumed label, with the total run
// time equal to the five fixed stages plus one step per round.
func TestActiveStageTimingsFakeClock(t *testing.T) {
	const step = time.Millisecond
	rec := stepRecorder(step)
	s := synth.YahooLike(7, 400)
	o := oracle.New(s)
	res := NewDetector(Options{Seed: 1, MaxQueries: 10, Obs: rec}).DetectActive(s, o)
	if res.Queries == 0 {
		t.Fatal("active run consumed no labels; round assertions are vacuous")
	}
	if got := rec.StageCount(obs.StageALRound); got != int64(res.Queries) {
		t.Errorf("al_round span count = %d, want %d", got, res.Queries)
	}
	if got, want := res.Stages.Get(obs.StageALRound), time.Duration(res.Queries)*step; got != want {
		t.Errorf("al_round time = %v, want %v", got, want)
	}
	if got := rec.Count(obs.CounterOracleQueries); got != int64(res.Queries) {
		t.Errorf("oracle_queries_total = %d, want %d", got, res.Queries)
	}
	if o.Queries() != res.Queries {
		t.Errorf("oracle answered %d queries, result reports %d", o.Queries(), res.Queries)
	}
	if got, want := res.Stages.Total(), time.Duration(5+res.Queries)*step; got != want {
		t.Errorf("Stages.Total() = %v, want %v", got, want)
	}
}

// TestNilRecorderProducesNoTimings confirms the zero-overhead contract's
// observable half: without a recorder the result carries empty timings.
func TestNilRecorderProducesNoTimings(t *testing.T) {
	res := NewDetector(Options{Seed: 1}).Detect(synth.YahooLike(7, 400))
	if got := res.Stages.Total(); got != 0 {
		t.Errorf("nil-recorder run reports %v of stage time", got)
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if d := res.Stages.Get(st); d != 0 {
			t.Errorf("nil-recorder run timed %s: %v", st, d)
		}
	}
}
