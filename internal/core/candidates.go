package core

import (
	"sort"

	"cabd/internal/series"
	"cabd/internal/stats"
)

// candidateIndices implements Candidate Estimation (Algorithm 2 line 1):
// a point is a candidate when the robust z-score of its absolute second
// difference ∂ (Equation 4/6) exceeds the threshold — the MAD-based rule
// of Definition 4 read as |∂_i - median(∂)| > z·MAD(∂). This is a global,
// INN-independent analysis of the series. The returned zscores slice is
// parallel to the indices: the strength of each candidate's ∂ deviation,
// which the bootstrap rules reuse to grade level shifts.
//
// The analysis runs on the raw values: the robust z of ∂ is invariant
// under the affine standardization of Equation 2 (both the median offset
// and the MAD scale cancel), so standardizing first buys nothing — and
// skipping it lets the streaming engine maintain the ∂ order statistics
// across window slides, where the per-hop (μ, σ) frame would otherwise
// perturb every stored value.
func candidateIndices(s *series.Series, z float64) (idx []int, zscores []float64) {
	d2 := series.SecondDiff(s.Values)
	rz := stats.RobustZ(d2)
	for i, v := range rz {
		if v > z {
			idx = append(idx, i)
		}
	}
	if idx == nil {
		return nil, nil
	}
	// When MAD collapses to zero on mostly-flat data, RobustZ flags every
	// nonzero deviation as +Inf; guard against candidate floods by
	// falling back to the top deviations only.
	if len(idx) > len(rz)/4 {
		idx = topDeviations(d2, len(rz)/4)
	}
	zscores = make([]float64, len(idx))
	for i, ci := range idx {
		zscores[i] = rz[ci]
	}
	return idx, zscores
}

// topDeviations returns the indices of the k largest second differences,
// sorted by index. Ties are broken toward the smaller index so the
// selected set is a deterministic function of the values — the streaming
// engine reproduces this selection from an order-statistic tree and must
// arrive at the identical set.
func topDeviations(d2 []float64, k int) []int {
	if k < 1 {
		k = 1
	}
	type iv struct {
		i int
		v float64
	}
	items := make([]iv, len(d2))
	for i, v := range d2 {
		items[i] = iv{i, v}
	}
	// Simple sort is fine at these sizes.
	sort.Slice(items, func(a, b int) bool {
		//cabd:lint-ignore floateq deterministic (value, index) selection order needs exact ties to fall through to the index
		if items[a].v != items[b].v {
			return items[a].v > items[b].v
		}
		return items[a].i < items[b].i
	})
	if k > len(items) {
		k = len(items)
	}
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = items[i].i
	}
	sort.Ints(idx)
	return idx
}
