package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cabd/internal/inn"
	"cabd/internal/obs"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// clockScorer builds a scorer whose deadline pilot reads clk, plus the
// candidate set of a spiky series with well more than the 4 pilot
// candidates, so a post-pilot phase always exists.
func clockScorer(t *testing.T, clk obs.Clock) (*scorer, []Candidate) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	vals := noisyBase(rng, 900)
	for i := 80; i < 880; i += 40 {
		vals[i] = 25 + rng.NormFloat64()
	}
	opts := Options{Obs: obs.NewWithClock(clk)}.defaults()
	std := stats.Standardize(vals)
	zs := &series.Series{Name: "t", Values: std}
	idx, zsc := candidateIndices(zs, opts.CandidateZ)
	if len(idx) <= 4 {
		t.Fatalf("fixture yields %d candidates, need >4 for a post-pilot phase", len(idx))
	}
	cands := make([]Candidate, len(idx))
	for i, ci := range idx {
		cands[i] = Candidate{Index: ci, SecondDiffZ: zsc[i]}
	}
	return newScorer(std, inn.FromSeries(zs), opts), cands
}

// TestDeadlinePilotDegradesOnFakeClock pins the degradation trigger with
// exact arithmetic instead of real elapsed time. scoreAll's pilot makes
// exactly three Now calls, so with a 40ms auto-advance step the measured
// per-candidate cost is step/4 = 10ms and the projection is at least one
// round (>= 10ms) for any worker count. Starting the clock 90ms before
// the deadline leaves 90-2*40 = 10ms of budget at the decision point,
// half of which (5ms) is below the projection: the scorer must downgrade
// to FixedKNN, on every machine, on every run.
func TestDeadlinePilotDegradesOnFakeClock(t *testing.T) {
	// The context deadline is far in the real future: only the fake
	// clock's view of the deadline is tight, so ctx itself never fires.
	deadline := time.Now().Add(time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	for run := 0; run < 2; run++ {
		clk := obs.NewFakeClock(deadline.Add(-90 * time.Millisecond))
		clk.SetStep(40 * time.Millisecond)
		sc, cands := clockScorer(t, clk)
		degraded, err := sc.scoreAll(ctx, cands)
		if err != nil {
			t.Fatalf("run %d: scoreAll: %v", run, err)
		}
		if !degraded {
			t.Fatalf("run %d: pilot kept full strategy with a 10ms projection against a 5ms half-budget", run)
		}
		if sc.resolved != FixedKNN {
			t.Fatalf("run %d: resolved strategy = %v, want FixedKNN", run, sc.resolved)
		}
		if sc.opts.Strategy != BinaryINN {
			t.Fatalf("run %d: degradation mutated shared options (Strategy = %v)", run, sc.opts.Strategy)
		}
		for i := range cands {
			if cands[i].Variance < 0 || cands[i].Variance > 1 {
				t.Fatalf("run %d: candidate %d unscored after degradation (VS=%v)", run, i, cands[i].Variance)
			}
		}
	}
}

// TestDeadlinePilotRescoreFakeClock drives the degradation trigger with
// fake time (same 10ms-projection-vs-5ms-budget arithmetic as above) and
// pins the re-score semantics: after a clock-driven downgrade every
// candidate — the four pilot positions included — must carry the
// FixedKNN neighborhood, and every SoA feature-matrix row must equal
// the candidate's row-major feature vector. A pilot row left with its
// Binary-INN features, or a matrix row filled before the re-score,
// would hand the classifier mixed neighborhood semantics.
func TestDeadlinePilotRescoreFakeClock(t *testing.T) {
	deadline := time.Now().Add(time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	clk := obs.NewFakeClock(deadline.Add(-90 * time.Millisecond))
	clk.SetStep(40 * time.Millisecond)
	sc, cands := clockScorer(t, clk)
	degraded, err := sc.scoreAll(ctx, cands)
	if err != nil {
		t.Fatalf("scoreAll: %v", err)
	}
	if !degraded {
		t.Fatal("fake-clock pilot did not degrade")
	}
	for pos := range cands {
		want := sc.comp.KNN(cands[pos].Index, sc.opts.KNNK)
		if !reflect.DeepEqual(cands[pos].INN, want) {
			t.Errorf("candidate %d (index %d): INN = %v, want FixedKNN %v",
				pos, cands[pos].Index, cands[pos].INN, want)
		}
		row := cands[pos].features(sc.opts)
		for f := 0; f < baseFeatures; f++ {
			//cabd:lint-ignore floateq the SoA matrix contract is bit-identity with the row-major oracle
			if sc.feats.cols[f][pos] != row[f] {
				t.Errorf("candidate %d feature %d: matrix %v, row-major %v",
					pos, f, sc.feats.cols[f][pos], row[f])
			}
		}
	}
}

// TestDeadlinePilotKeepsStrategyWithHeadroom is the counterpart: the same
// 10ms/candidate fake cost against an hour of fake budget must not
// degrade, even in the worst single-worker projection.
func TestDeadlinePilotKeepsStrategyWithHeadroom(t *testing.T) {
	deadline := time.Now().Add(2 * time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	clk := obs.NewFakeClock(deadline.Add(-time.Hour))
	clk.SetStep(40 * time.Millisecond)
	sc, cands := clockScorer(t, clk)
	degraded, err := sc.scoreAll(ctx, cands)
	if err != nil {
		t.Fatalf("scoreAll: %v", err)
	}
	if degraded {
		t.Fatal("pilot degraded despite an hour of fake headroom")
	}
	if sc.resolved != BinaryINN {
		t.Fatalf("resolved strategy = %v, want BinaryINN untouched", sc.resolved)
	}
}
