package core

import (
	"math/rand"
	"testing"

	"cabd/internal/eval"
	"cabd/internal/oracle"
	"cabd/internal/series"
	"cabd/internal/synth"
)

// The quality thresholds below are deliberately looser than the paper's
// headline numbers so the suite stays robust to seed drift; the exact
// reproduction lives in the benchmark harness (EXPERIMENTS.md).

func TestDetectUnsupervisedSynthetic(t *testing.T) {
	s := synth.Generate(synth.Config{N: 2000, Seed: 42,
		SingleFrac: 0.01, CollectiveFrac: 0.03, ChangeFrac: 0.01})
	res := NewDetector(Options{}).Detect(s)
	ap := eval.Match(res.AnomalyIndices(), s.AnomalyIndices(), 2)
	if ap.F1 < 0.4 {
		t.Errorf("unsupervised anomaly F = %v, want >= 0.4", ap.F1)
	}
	if res.Queries != 0 {
		t.Errorf("unsupervised run consumed %d queries", res.Queries)
	}
}

func TestActiveLearningImproves(t *testing.T) {
	s := synth.Generate(synth.Config{N: 2000, Seed: 42,
		SingleFrac: 0.01, CollectiveFrac: 0.03, ChangeFrac: 0.01})
	det := NewDetector(Options{})
	unsup := det.Detect(s)
	act := det.DetectActive(s, oracle.New(s))
	fu := eval.Match(unsup.AnomalyIndices(), s.AnomalyIndices(), 2).F1
	fa := eval.Match(act.AnomalyIndices(), s.AnomalyIndices(), 2).F1
	if fa < fu {
		t.Errorf("active learning degraded anomaly F: %v -> %v", fu, fa)
	}
	if fa < 0.8 {
		t.Errorf("active anomaly F = %v, want >= 0.8", fa)
	}
	cu := eval.Match(unsup.ChangePointIndices(), s.ChangePointIndices(), 2).F1
	ca := eval.Match(act.ChangePointIndices(), s.ChangePointIndices(), 2).F1
	if ca < cu {
		t.Errorf("active learning degraded change F: %v -> %v", cu, ca)
	}
	if act.Queries == 0 || act.Queries > 50 {
		t.Errorf("queries = %d, want in (0, 50] (the 2000-point default budget)", act.Queries)
	}
}

func TestIoTScenarioMatchesPaperShape(t *testing.T) {
	// Table I: on the IoT dataset CABD with active learning reaches
	// F-score 100/100 with ~4 annotations. Assert the shape: near-perfect
	// detection with a small query budget.
	s := synth.IoTTank(3, 1550)
	det := NewDetector(Options{})
	res := det.DetectActive(s, oracle.New(s))
	ap := eval.Match(res.AnomalyIndices(), s.AnomalyIndices(), 2)
	cp := eval.Match(res.ChangePointIndices(), s.ChangePointIndices(), 2)
	if ap.F1 < 0.9 {
		t.Errorf("IoT anomaly F = %v, want >= 0.9", ap.F1)
	}
	if cp.F1 < 0.85 {
		t.Errorf("IoT change F = %v, want >= 0.85", cp.F1)
	}
}

func TestYahooScenario(t *testing.T) {
	s := synth.YahooLike(7, 1500)
	res := NewDetector(Options{}).DetectActive(s, oracle.New(s))
	ap := eval.Match(res.AnomalyIndices(), s.AnomalyIndices(), 2)
	if ap.F1 < 0.85 {
		t.Errorf("yahoo-like anomaly F = %v, want >= 0.85", ap.F1)
	}
	if res.Queries > 20 {
		t.Errorf("yahoo-like queries = %d, want few", res.Queries)
	}
}

func TestRoundsTraceMonotone(t *testing.T) {
	s := synth.Generate(synth.Config{N: 1500, Seed: 9,
		SingleFrac: 0.02, CollectiveFrac: 0.02, ChangeFrac: 0.01})
	res := NewDetector(Options{}).DetectActive(s, oracle.New(s))
	if len(res.Rounds) == 0 {
		t.Fatal("no round snapshots recorded")
	}
	if res.Rounds[0].Round != 0 || res.Rounds[0].Queries != 0 {
		t.Errorf("first snapshot = %+v, want unsupervised round 0", res.Rounds[0])
	}
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Queries <= res.Rounds[i-1].Queries {
			t.Errorf("queries not increasing at round %d", i)
		}
		if res.Rounds[i].Round != i {
			t.Errorf("round numbering broken at %d", i)
		}
	}
	last := res.Rounds[len(res.Rounds)-1]
	if res.Queries < last.Queries {
		t.Errorf("result queries %d below last snapshot %d", res.Queries, last.Queries)
	}
}

func TestConfidenceTermination(t *testing.T) {
	// With a very low required confidence, the loop must stop almost
	// immediately; with a high one it must query more.
	s := synth.Generate(synth.Config{N: 1500, Seed: 11,
		SingleFrac: 0.02, CollectiveFrac: 0.02, ChangeFrac: 0.01})
	low := NewDetector(Options{Confidence: 0.05}).DetectActive(s, oracle.New(s))
	high := NewDetector(Options{Confidence: 0.95}).DetectActive(s, oracle.New(s))
	if low.Queries > high.Queries {
		t.Errorf("low-confidence run queried more (%d) than high (%d)",
			low.Queries, high.Queries)
	}
}

func TestResultsSortedAndDeduped(t *testing.T) {
	s := synth.Generate(synth.Config{N: 1500, Seed: 13,
		SingleFrac: 0.02, CollectiveFrac: 0.03, ChangeFrac: 0.02})
	res := NewDetector(Options{}).Detect(s)
	checkSorted := func(name string, idx []int) {
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				t.Errorf("%s not strictly sorted at %d: %v <= %v",
					name, i, idx[i], idx[i-1])
			}
		}
	}
	checkSorted("anomalies", res.AnomalyIndices())
	checkSorted("change points", res.ChangePointIndices())
	// Change points must respect the +-2 suppression window.
	cps := res.ChangePointIndices()
	for i := 1; i < len(cps); i++ {
		if cps[i]-cps[i-1] <= 2 {
			t.Errorf("change points %d and %d within suppression window",
				cps[i-1], cps[i])
		}
	}
	// Confidences are probabilities.
	for _, d := range append(res.Anomalies, res.ChangePoints...) {
		if d.Confidence < 0 || d.Confidence > 1 {
			t.Errorf("confidence out of range: %+v", d)
		}
		if d.Index < 0 || d.Index >= s.Len() {
			t.Errorf("detection index out of range: %+v", d)
		}
	}
}

func TestDegenerateSeries(t *testing.T) {
	det := NewDetector(Options{})
	for _, vals := range [][]float64{nil, {1}, {1, 2}, {1, 2, 3},
		{5, 5, 5, 5, 5, 5, 5, 5}} {
		res := det.Detect(series.New("d", vals))
		if res == nil {
			t.Fatal("nil result")
		}
		if len(vals) < 4 && (len(res.Anomalies) > 0 || len(res.ChangePoints) > 0) {
			t.Errorf("tiny series produced detections: %+v", res)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	s := synth.Generate(synth.Config{N: 1200, Seed: 17,
		SingleFrac: 0.02, ChangeFrac: 0.01})
	a := NewDetector(Options{Seed: 5}).Detect(s)
	b := NewDetector(Options{Seed: 5}).Detect(s)
	ai, bi := a.AnomalyIndices(), b.AnomalyIndices()
	if len(ai) != len(bi) {
		t.Fatalf("different detection counts: %d vs %d", len(ai), len(bi))
	}
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatal("same seed produced different detections")
		}
	}
}

func TestKNNStrategyUnderperformsINN(t *testing.T) {
	// Fig. 12: CABD-KNN is markedly worse than CABD-INN.
	s := synth.Generate(synth.Config{N: 2000, Seed: 42,
		SingleFrac: 0.01, CollectiveFrac: 0.03, ChangeFrac: 0.01})
	innF := eval.Match(NewDetector(Options{}).Detect(s).AnomalyIndices(),
		s.AnomalyIndices(), 2).F1
	knnF := eval.Match(NewDetector(Options{Strategy: FixedKNN}).Detect(s).AnomalyIndices(),
		s.AnomalyIndices(), 2).F1
	if knnF >= innF {
		t.Errorf("KNN strategy (%v) not worse than INN (%v)", knnF, innF)
	}
}

func TestClusterScoresFig3(t *testing.T) {
	rngSeries := synth.Generate(synth.Config{N: 2000, Seed: 42,
		SingleFrac: 0.01, CollectiveFrac: 0.03, ChangeFrac: 0.01})
	res := NewDetector(Options{}).Detect(rngSeries)
	assign, means := ClusterScores(res.Candidates, Options{}, newRand(1))
	if len(assign) != len(res.Candidates) {
		t.Fatalf("assignment length = %d, want %d", len(assign), len(res.Candidates))
	}
	if len(means) == 0 || len(means[0]) != 4 {
		t.Fatalf("cluster means shape wrong: %v", means)
	}
	seen := map[int]bool{}
	for _, a := range assign {
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Errorf("clustering collapsed to %d group(s)", len(seen))
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
