package dataio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadValues exercises the value parser against arbitrary input: it
// must never panic and every accepted value set must be finite in size
// and parse consistently on a second read.
func FuzzReadValues(f *testing.F) {
	f.Add("1.0\n2.0\n3.0\n")
	f.Add("index,value\n0,1.5\n1,2.5\n")
	f.Add("# comment\n\n42\n")
	f.Add("a,b,c\n")
	f.Add("1e308\n-1e308\nNaN\n")
	f.Fuzz(func(t *testing.T, in string) {
		vals, err := ReadValues(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(vals) == 0 {
			t.Fatal("nil error with zero values")
		}
		again, err2 := ReadValues(strings.NewReader(in))
		if err2 != nil || len(again) != len(vals) {
			t.Fatalf("re-parse disagrees: %v / %d vs %d", err2, len(again), len(vals))
		}
	})
}

// FuzzReadLabeled checks the labeled-series parser the same way, plus a
// write/read round-trip of whatever was accepted.
func FuzzReadLabeled(f *testing.F) {
	f.Add("0,1.0,normal,1.0\n1,9.0,single-anomaly,2.0\n")
	f.Add("index,value,label,truth\n0,1,change-point,1\n")
	f.Add("0,x\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadLabeled(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatal("nil error with empty series")
		}
		if len(s.Labels) != s.Len() || len(s.Truth) != s.Len() {
			t.Fatalf("ragged series: %d values, %d labels, %d truth",
				s.Len(), len(s.Labels), len(s.Truth))
		}
		var buf bytes.Buffer
		if err := WriteLabeled(&buf, s); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadLabeled(&buf, "rt")
		if err != nil || rt.Len() != s.Len() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
