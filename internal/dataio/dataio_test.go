package dataio

import (
	"bytes"
	"strings"
	"testing"

	"cabd/internal/series"
)

func TestReadValuesPlain(t *testing.T) {
	in := "1.5\n2.5\n\n# comment\n3.5\n"
	got, err := ReadValues(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, 3.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("values[%d] = %v", i, got[i])
		}
	}
}

func TestReadValuesCSVWithHeader(t *testing.T) {
	in := "index,value,label\n0,10.5,normal\n1,11.5,normal\n"
	got, err := ReadValues(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 10.5 || got[1] != 11.5 {
		t.Errorf("values = %v", got)
	}
}

func TestReadValuesRejectsGarbageMidFile(t *testing.T) {
	in := "1.0\nnot-a-number\n"
	if _, err := ReadValues(strings.NewReader(in)); err == nil {
		t.Error("expected error for garbage after data")
	}
}

func TestReadValuesEmpty(t *testing.T) {
	if _, err := ReadValues(strings.NewReader("# only comments\n")); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestLabeledRoundTrip(t *testing.T) {
	s := series.New("rt", []float64{1, 2, 30, 4})
	s.EnsureLabels()[2] = series.SingleAnomaly
	s.Truth = []float64{1, 2, 3, 4}

	var buf bytes.Buffer
	if err := WriteLabeled(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabeled(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("round-trip length = %d", got.Len())
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Errorf("value[%d] = %v", i, got.Values[i])
		}
		if got.LabelAt(i) != s.LabelAt(i) {
			t.Errorf("label[%d] = %v", i, got.LabelAt(i))
		}
		if got.Truth[i] != s.Truth[i] {
			t.Errorf("truth[%d] = %v", i, got.Truth[i])
		}
	}
}

func TestReadLabeledDegradedColumns(t *testing.T) {
	in := "0,5.0\n1,6.0,change-point\n"
	s, err := ReadLabeled(strings.NewReader(in), "d")
	if err != nil {
		t.Fatal(err)
	}
	if s.LabelAt(0) != series.Normal || s.LabelAt(1) != series.ChangePoint {
		t.Errorf("labels = %v", s.Labels)
	}
	if s.Truth[0] != 5.0 {
		t.Errorf("truth fallback = %v", s.Truth[0])
	}
}

func TestParseLabelUnknownIsNormal(t *testing.T) {
	if parseLabel("weird") != series.Normal {
		t.Error("unknown label should map to normal")
	}
}

func TestReadMulti(t *testing.T) {
	in := "t,temp,vib\n0,60.0,2.0\n1,61.0,2.1\n2,62.0,2.2\n"
	dims, err := ReadMulti(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || len(dims[0]) != 3 {
		t.Fatalf("dims shape = %dx%d", len(dims), len(dims[0]))
	}
	if dims[0][2] != 62.0 || dims[1][0] != 2.0 {
		t.Errorf("dims = %v", dims)
	}
}

func TestReadMultiNoIndexColumn(t *testing.T) {
	in := "5.0,2.0\n6.0,2.1\n"
	dims, err := ReadMulti(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0][0] != 5.0 {
		t.Errorf("dims = %v", dims)
	}
}

func TestReadMultiRaggedRowsRejected(t *testing.T) {
	in := "1,2\n3,4,5\n"
	if _, err := ReadMulti(strings.NewReader(in)); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestWriteMultiRoundTrip(t *testing.T) {
	dims := [][]float64{{1, 2.5, 3}, {-4, 0, 6.125}}
	var buf bytes.Buffer
	if err := WriteMulti(&buf, "pair", dims); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMulti(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 3 {
		t.Fatalf("round-trip shape = %dx%d", len(got), len(got[0]))
	}
	for k := range dims {
		for i := range dims[k] {
			if got[k][i] != dims[k][i] {
				t.Errorf("dims[%d][%d] = %v, want %v", k, i, got[k][i], dims[k][i])
			}
		}
	}
}

func TestWriteMultiRaggedRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMulti(&buf, "bad", [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged channels accepted")
	}
	if err := WriteMulti(&buf, "empty", nil); err == nil {
		t.Error("empty channel set accepted")
	}
}
