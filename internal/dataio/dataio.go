// Package dataio reads and writes the CSV layouts the reproduction's
// tools exchange: plain one-column value lists, and the labeled
// index,value,label,truth layout emitted by cmd/cabd-gen.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cabd/internal/series"
)

// ReadValues parses a value series from r: one value per line, or the
// value column of comma-separated rows (the second field when several
// are present, so cabd-gen output round-trips). Blank lines and lines
// starting with '#' are skipped; header lines before any data are
// tolerated.
func ReadValues(r io.Reader) ([]float64, error) {
	var values []float64
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		raw := strings.TrimSpace(fields[0])
		if len(fields) > 1 {
			raw = strings.TrimSpace(fields[1])
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			if len(values) == 0 {
				continue // header
			}
			return nil, fmt.Errorf("line %d: %q is not a number", lineNo, raw)
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("no numeric values found")
	}
	return values, nil
}

// ReadValuesFile is ReadValues over a file path.
func ReadValuesFile(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	vals, err := ReadValues(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return vals, nil
}

// ReadLabeled parses the full cabd-gen layout (index,value,label,truth)
// into a labeled series. Rows with fewer columns degrade gracefully:
// missing labels default to normal, missing truth to the value.
func ReadLabeled(r io.Reader, name string) (*series.Series, error) {
	s := &series.Series{Name: name}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			if len(s.Values) == 0 {
				continue // header
			}
			return nil, fmt.Errorf("line %d: bad value %q", lineNo, fields[1])
		}
		s.Values = append(s.Values, v)
		label := series.Normal
		if len(fields) >= 3 {
			label = parseLabel(strings.TrimSpace(fields[2]))
		}
		s.Labels = append(s.Labels, label)
		truth := v
		if len(fields) >= 4 {
			if tv, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64); err == nil {
				truth = tv
			}
		}
		s.Truth = append(s.Truth, truth)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Values) == 0 {
		return nil, fmt.Errorf("no rows found")
	}
	return s, nil
}

// WriteLabeled emits the cabd-gen layout for s.
func WriteLabeled(w io.Writer, s *series.Series) error {
	if _, err := fmt.Fprintf(w, "# %s\nindex,value,label,truth\n", s.Name); err != nil {
		return err
	}
	for i, v := range s.Values {
		truth := v
		if s.Truth != nil {
			truth = s.Truth[i]
		}
		if _, err := fmt.Fprintf(w, "%d,%.6f,%s,%.6f\n", i, v, s.LabelAt(i), truth); err != nil {
			return err
		}
	}
	return nil
}

// WriteMulti emits a d-channel series as CSV: one row per time step
// with a leading index column, one value column per channel
// (index,c0,c1,...). The layout round-trips through ReadMulti, which
// detects and drops the index column. Channels must share one length.
func WriteMulti(w io.Writer, name string, dims [][]float64) error {
	if len(dims) == 0 {
		return fmt.Errorf("no channels")
	}
	n := len(dims[0])
	for k, dim := range dims {
		if len(dim) != n {
			return fmt.Errorf("channel %d has %d points, want %d", k, len(dim), n)
		}
	}
	if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("index")
	for k := range dims {
		fmt.Fprintf(&sb, ",c%d", k)
	}
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		sb.Reset()
		fmt.Fprintf(&sb, "%d", i)
		for k := range dims {
			fmt.Fprintf(&sb, ",%.6f", dims[k][i])
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

func parseLabel(s string) series.Label {
	switch s {
	case "single-anomaly":
		return series.SingleAnomaly
	case "collective-anomaly":
		return series.CollectiveAnomaly
	case "change-point":
		return series.ChangePoint
	default:
		return series.Normal
	}
}

// ReadMulti parses a d-dimensional series from r: each row holds d
// comma-separated values (an optional leading integer index column is
// detected and dropped when every row carries one). All rows must agree
// on the column count. Header lines before any data are tolerated.
func ReadMulti(r io.Reader) ([][]float64, error) {
	var rows [][]float64
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, 0, len(fields))
		ok := true
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				ok = false
				break
			}
			row = append(row, v)
		}
		if !ok {
			if len(rows) == 0 {
				continue // header
			}
			return nil, fmt.Errorf("line %d: non-numeric row", lineNo)
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("line %d: %d columns, want %d", lineNo, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no numeric rows found")
	}
	// Drop a leading index column when present: integer-valued and
	// strictly increasing by one.
	if len(rows[0]) > 1 {
		isIndex := true
		for i, row := range rows {
			//cabd:lint-ignore floateq an index column holds exact small integers; any rounding means it is data
			if row[0] != float64(i) && row[0] != float64(i+1) {
				isIndex = false
				break
			}
		}
		if isIndex {
			for i := range rows {
				rows[i] = rows[i][1:]
			}
		}
	}
	// Transpose to dimension-major.
	d := len(rows[0])
	dims := make([][]float64, d)
	for k := range dims {
		dims[k] = make([]float64, len(rows))
		for i, row := range rows {
			dims[k][i] = row[k]
		}
	}
	return dims, nil
}
