package synth

import (
	"math"
	"testing"

	"cabd/internal/series"
	"cabd/internal/stats"
)

func fracOf(s *series.Series, pred func(series.Label) bool) float64 {
	count := 0
	for _, l := range s.Labels {
		if pred(l) {
			count++
		}
	}
	return float64(count) / float64(s.Len())
}

func TestGenerateRespectsFractions(t *testing.T) {
	cfg := Config{
		N: 5000, Seed: 1,
		SingleFrac: 0.02, CollectiveFrac: 0.05, ChangeFrac: 0.01,
	}
	s := Generate(cfg)
	if s.Len() != 5000 {
		t.Fatalf("length = %d", s.Len())
	}
	single := fracOf(s, func(l series.Label) bool { return l == series.SingleAnomaly })
	coll := fracOf(s, func(l series.Label) bool { return l == series.CollectiveAnomaly })
	cp := fracOf(s, func(l series.Label) bool { return l == series.ChangePoint })
	if math.Abs(single-0.02) > 0.008 {
		t.Errorf("single fraction = %v, want ~0.02", single)
	}
	if math.Abs(coll-0.05) > 0.015 {
		t.Errorf("collective fraction = %v, want ~0.05", coll)
	}
	if math.Abs(cp-0.01) > 0.005 {
		t.Errorf("change fraction = %v, want ~0.01", cp)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 1000, Seed: 7, SingleFrac: 0.01, ChangeFrac: 0.01}
	a, b := Generate(cfg), Generate(cfg)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] || a.Labels[i] != b.Labels[i] {
			t.Fatal("same config produced different data")
		}
	}
}

func TestTruthExcludesErrorsIncludesEvents(t *testing.T) {
	cfg := Config{N: 3000, Seed: 3, SingleFrac: 0.02, CollectiveFrac: 0.02, ChangeFrac: 0.01}
	s := Generate(cfg)
	if len(s.Truth) != s.Len() {
		t.Fatal("truth length mismatch")
	}
	for i, l := range s.Labels {
		switch {
		case l.IsAnomaly():
			if s.Values[i] == s.Truth[i] {
				t.Errorf("anomaly at %d identical to truth", i)
			}
		case l == series.Normal:
			if s.Values[i] != s.Truth[i] {
				t.Errorf("normal point at %d differs from truth", i)
			}
		}
	}
	// A change point must shift the truth level persistently.
	cps := s.ChangePointIndices()
	if len(cps) == 0 {
		t.Fatal("no change points generated")
	}
	c := cps[0]
	if c < 10 || c > s.Len()-10 {
		t.Skip("change point too close to boundary for the level check")
	}
	before := stats.Mean(s.Truth[c-8 : c])
	after := stats.Mean(s.Truth[c+1 : c+9])
	if math.Abs(after-before) < 1.0 {
		t.Errorf("change point at %d shifts truth only by %v", c, after-before)
	}
}

func TestAnomaliesAreOutliers(t *testing.T) {
	cfg := Config{N: 4000, Seed: 5, SingleFrac: 0.01}
	s := Generate(cfg)
	sd := stats.Std(s.Truth)
	for _, i := range s.AnomalyIndices() {
		if math.Abs(s.Values[i]-s.Truth[i]) < 2*sd {
			t.Errorf("anomaly at %d deviates only %.2f sd", i,
				math.Abs(s.Values[i]-s.Truth[i])/sd)
		}
	}
}

func TestCollectiveAnomaliesAreSegments(t *testing.T) {
	cfg := Config{N: 5000, Seed: 11, CollectiveFrac: 0.04}
	s := Generate(cfg)
	// Every collective anomaly run must have length >= 3.
	run := 0
	for i := 0; i <= s.Len(); i++ {
		if i < s.Len() && s.Labels[i] == series.CollectiveAnomaly {
			run++
			continue
		}
		if run > 0 && run < 3 {
			t.Errorf("collective run of length %d ending at %d", run, i)
		}
		run = 0
	}
}

func TestIoTTank(t *testing.T) {
	s := IoTTank(1, 1550)
	if s.Len() != 1550 {
		t.Fatalf("length = %d", s.Len())
	}
	an := fracOf(s, series.Label.IsAnomaly)
	cp := fracOf(s, func(l series.Label) bool { return l == series.ChangePoint })
	if an < 0.003 || an > 0.02 {
		t.Errorf("IoT anomaly fraction = %v, want ~0.008", an)
	}
	if cp < 0.002 || cp > 0.03 {
		t.Errorf("IoT change fraction = %v, want ~0.01", cp)
	}
	// Refills must rise sharply in the truth.
	for _, c := range s.ChangePointIndices() {
		if c == 0 {
			continue
		}
		if s.Truth[c]-s.Truth[c-1] < 20 {
			t.Errorf("refill at %d rises only %v", c, s.Truth[c]-s.Truth[c-1])
		}
	}
}

func TestYahooLikeProfile(t *testing.T) {
	s := YahooLike(2, 1500)
	if s.Len() != 1500 {
		t.Fatalf("length = %d", s.Len())
	}
	if got := len(s.ChangePointIndices()); got != 0 {
		t.Errorf("yahoo-like has %d change points, want 0", got)
	}
	an := fracOf(s, series.Label.IsAnomaly)
	if an < 0.004 || an > 0.02 {
		t.Errorf("yahoo-like anomaly fraction = %v, want ~0.01", an)
	}
}

func TestKPILikeProfile(t *testing.T) {
	s := KPILike(3, 5000)
	if s.Len() != 5000 {
		t.Fatalf("length = %d", s.Len())
	}
	if got := len(s.ChangePointIndices()); got != 0 {
		t.Errorf("kpi-like has %d change points, want 0", got)
	}
	an := fracOf(s, series.Label.IsAnomaly)
	if an < 0.008 || an > 0.03 {
		t.Errorf("kpi-like anomaly fraction = %v, want ~0.018", an)
	}
}

func TestSuite(t *testing.T) {
	suite := Suite(800)
	if len(suite) != 25 {
		t.Fatalf("suite size = %d", len(suite))
	}
	// Abnormal fraction must ramp up across the suite.
	first := fracOf(suite[0], func(l series.Label) bool { return l != series.Normal })
	last := fracOf(suite[24], func(l series.Label) bool { return l != series.Normal })
	if first > 0.05 {
		t.Errorf("ds-1 abnormal fraction = %v, want ~0.01", first)
	}
	if last < 0.10 {
		t.Errorf("ds-25 abnormal fraction = %v, want ~0.20", last)
	}
	if suite[0].Name != "ds-1" || suite[24].Name != "ds-25" {
		t.Errorf("names = %q, %q", suite[0].Name, suite[24].Name)
	}
}
