package synth_test

import (
	"math"
	"testing"

	"cabd/internal/stats"
	"cabd/internal/synth"
)

// TestCarrierFamilies checks every family yields a finite, deterministic
// carrier with non-trivial variation.
func TestCarrierFamilies(t *testing.T) {
	for _, fam := range synth.Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			a := synth.Carrier(fam, 5, 800)
			b := synth.Carrier(fam, 5, 800)
			if len(a.Values) != 800 {
				t.Fatalf("len = %d, want 800", len(a.Values))
			}
			var spread float64
			for i, v := range a.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value at %d", i)
				}
				if v != b.Values[i] {
					t.Fatalf("same seed, different value at %d", i)
				}
				spread += math.Abs(v - a.Values[0])
			}
			if spread == 0 {
				t.Fatal("carrier is constant")
			}
			c := synth.Carrier(fam, 6, 800)
			same := true
			for i := range a.Values {
				if a.Values[i] != c.Values[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("different seeds produced identical carriers")
			}
		})
	}
}

// TestCorrelatedDims checks channel count, determinism and that the
// realized pairwise correlation lands near the requested rho.
func TestCorrelatedDims(t *testing.T) {
	dims := synth.CorrelatedDims(synth.FamilySeasonal, 11, 2000, 3, 0.8)
	if len(dims) != 3 || len(dims[0]) != 2000 {
		t.Fatalf("shape = %dx%d, want 3x2000", len(dims), len(dims[0]))
	}
	again := synth.CorrelatedDims(synth.FamilySeasonal, 11, 2000, 3, 0.8)
	for c := range dims {
		for i := range dims[c] {
			if dims[c][i] != again[c][i] {
				t.Fatalf("same seed, different value at dim %d idx %d", c, i)
			}
		}
	}
	for a := 0; a < len(dims); a++ {
		for b := a + 1; b < len(dims); b++ {
			r := stats.Correlation(dims[a], dims[b])
			if r < 0.6 {
				t.Errorf("corr(dim%d, dim%d) = %.3f, want >= 0.6 for rho=0.8", a, b, r)
			}
		}
	}
	// Low rho must actually decorrelate.
	lo := synth.CorrelatedDims(synth.FamilyFlat, 13, 2000, 2, 0.1)
	if r := stats.Correlation(lo[0], lo[1]); r > 0.5 {
		t.Errorf("rho=0.1 realized corr %.3f, want < 0.5", r)
	}
}
