// Package synth generates the evaluation datasets of Section V-B. The
// paper's real datasets (company IoT tank levels, Yahoo! S5, AIOps KPI)
// are gated behind private or competition access; these generators are the
// documented substitution: they reproduce the published length, error
// rate, seasonality and event structure of each source, which are the
// properties the detection algorithms key on. All generators are seeded
// and fully reproducible.
//
// Ground truth is recorded on the returned series: Labels marks single
// anomalies, collective anomalies and change points; Truth holds the clean
// values before error injection (events — change points — are part of the
// truth, errors are not), which drives the repair experiments (Fig. 14).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"cabd/internal/series"
)

// Config parameterizes the general synthetic generator (Fig. 4 datasets:
// trend + seasonality + AR(1) noise with injected anomalies and change
// points in chosen proportions).
type Config struct {
	N    int   // number of points (paper: 20k per relation)
	Seed int64 // RNG seed

	SingleFrac     float64 // fraction of points that are single anomalies
	CollectiveFrac float64 // fraction of points inside collective anomalies
	ChangeFrac     float64 // fraction of points that are change points

	TrendSlope   float64 // linear trend per step (default 0)
	SeasonPeriod int     // seasonality period (default 200)
	SeasonAmp    float64 // seasonal amplitude (default 2)
	NoiseStd     float64 // innovation std of the AR(1) noise (default 0.3)
	ARCoef       float64 // AR(1) coefficient (default 0.6)
	// Modulate adds slow amplitude modulation and phase drift to the
	// seasonal component, as real service metrics exhibit — a perfectly
	// periodic sine is unrealistically easy for seasonal-decomposition
	// detectors.
	Modulate bool

	MinGap int // minimum spacing between injected features (default 8)
}

func (c *Config) defaults() {
	if c.N <= 0 {
		c.N = 2000
	}
	if c.SeasonPeriod <= 0 {
		c.SeasonPeriod = 200
	}
	if c.SeasonAmp == 0 {
		c.SeasonAmp = 2
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.3
	}
	if c.ARCoef == 0 {
		c.ARCoef = 0.6
	}
	if c.MinGap <= 0 {
		c.MinGap = 8
	}
}

// Generate builds one synthetic series per cfg. The clean base is
// trend + seasonality + AR(1) noise; change points add persistent level
// shifts (part of the truth); single and collective anomalies perturb
// values away from the truth.
func Generate(cfg Config) *series.Series {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N

	// At high injection densities the spacing reservation must shrink or
	// placement becomes infeasible: labeled points plus 2*gap per feature
	// must fit in ~85% of the series.
	labeled := float64(n) * (cfg.SingleFrac + cfg.CollectiveFrac + cfg.ChangeFrac)
	features := float64(n)*(cfg.SingleFrac+cfg.ChangeFrac) +
		float64(n)*cfg.CollectiveFrac/7 + 1
	if maxGap := (0.85*float64(n) - labeled) / (2 * features); maxGap < float64(cfg.MinGap) {
		cfg.MinGap = int(maxGap)
		if cfg.MinGap < 1 {
			cfg.MinGap = 1
		}
	}

	// Clean base signal.
	base := make([]float64, n)
	ar := 0.0
	for i := 0; i < n; i++ {
		ar = cfg.ARCoef*ar + rng.NormFloat64()*cfg.NoiseStd
		x := float64(i)
		period := float64(cfg.SeasonPeriod)
		amp := cfg.SeasonAmp
		phase := 2 * math.Pi * x / period
		if cfg.Modulate {
			amp *= 1 + 0.4*math.Sin(2*math.Pi*x/(7.3*period))
			phase += 0.6 * math.Sin(2*math.Pi*x/(13.1*period))
		}
		base[i] = cfg.TrendSlope*x + amp*math.Sin(phase) + ar
	}
	sd := baseScale(base)

	s := series.New(fmt.Sprintf("synthetic-n%d-s%d", n, cfg.Seed), base)
	labels := s.EnsureLabels()
	occupied := make([]bool, n)
	reserve := func(lo, hi int) bool {
		lo -= cfg.MinGap
		hi += cfg.MinGap
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if occupied[i] {
				return false
			}
		}
		for i := lo; i < hi; i++ {
			occupied[i] = true
		}
		return true
	}

	// Change points: persistent level shifts, part of the truth.
	nCP := int(cfg.ChangeFrac * float64(n))
	shift := make([]float64, n)
	placed := 0
	for try := 0; placed < nCP && try < 50*nCP+100; try++ {
		pos := 1 + rng.Intn(n-2)
		if !reserve(pos, pos+1) {
			continue
		}
		delta := (3 + 3*rng.Float64()) * sd
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		for i := pos; i < n; i++ {
			shift[i] += delta
		}
		labels[pos] = series.ChangePoint
		placed++
	}
	for i := range base {
		base[i] += shift[i]
	}

	// Truth snapshot: clean signal including events.
	s.Truth = append([]float64(nil), base...)

	// Collective anomalies: segments of 3-12 points offset from truth.
	budget := int(cfg.CollectiveFrac * float64(n))
	for try := 0; budget > 2 && try < 50*budget+100; try++ {
		size := 3 + rng.Intn(10)
		if size > budget {
			size = budget
		}
		if size < 3 {
			break
		}
		pos := 1 + rng.Intn(n-size-2)
		if !reserve(pos, pos+size) {
			continue
		}
		delta := (4 + 4*rng.Float64()) * sd
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		for i := pos; i < pos+size; i++ {
			base[i] += delta * (0.9 + 0.2*rng.Float64())
			labels[i] = series.CollectiveAnomaly
		}
		budget -= size
	}

	// Single anomalies: isolated spikes.
	nSingle := int(cfg.SingleFrac * float64(n))
	placed = 0
	for try := 0; placed < nSingle && try < 50*nSingle+100; try++ {
		pos := 1 + rng.Intn(n-2)
		if !reserve(pos, pos+1) {
			continue
		}
		delta := (5 + 5*rng.Float64()) * sd
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		base[pos] += delta
		labels[pos] = series.SingleAnomaly
		placed++
	}
	return s
}

// baseScale returns a robust scale estimate of the clean signal used to
// size injected deviations.
func baseScale(xs []float64) float64 {
	var mean, m2 float64
	for i, v := range xs {
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	sd := math.Sqrt(m2 / float64(len(xs)))
	if sd == 0 {
		return 1
	}
	return sd
}

// IoTTank emulates the paper's ultrasonic tank-level dataset: hourly
// readings of a liquid level that drains slowly and is refilled in sudden
// jumps (the change points / "water filling events" of Fig. 1), with
// sporadic sensor errors — isolated misreads and short stuck-at bursts —
// at roughly the published 0.8% anomaly / 1.0% change-point rates.
// The paper's dataset has 3.1k measures across 2 sensors; call with
// n = 1550 per sensor for that scale.
func IoTTank(seed int64, n int) *series.Series {
	if n <= 0 {
		n = 1550
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	s := series.New(fmt.Sprintf("iot-tank-s%d", seed), vals)
	labels := s.EnsureLabels()

	level := 80.0
	drain := 0.65 // tank cycles roughly every 100-150 hourly readings
	for i := 0; i < n; i++ {
		level -= drain * (0.8 + 0.4*rng.Float64())
		if level < 15 && rng.Float64() < 0.3 {
			// Refill event: sudden rise — a change point to preserve.
			level += 55 + 15*rng.Float64()
			labels[i] = series.ChangePoint
		}
		vals[i] = level + 0.4*rng.NormFloat64()
	}
	s.Truth = append([]float64(nil), vals...)

	// Sensor errors: ~0.8% of points, mixing isolated ultrasonic
	// misreads (near-zero echoes or spikes) and short stuck bursts.
	nErr := int(0.008 * float64(n))
	if nErr < 3 {
		nErr = 3
	}
	placed := 0
	for try := 0; placed < nErr && try < 100*nErr; try++ {
		pos := 2 + rng.Intn(n-6)
		if labels[pos] != series.Normal || labels[pos-1] != series.Normal ||
			labels[pos+1] != series.Normal {
			continue
		}
		if rng.Float64() < 0.6 || nErr-placed < 3 {
			// Isolated misread.
			if rng.Intn(2) == 0 {
				vals[pos] = 1 + 2*rng.Float64() // lost echo
			} else {
				vals[pos] = 150 + 30*rng.Float64() // ghost echo
			}
			labels[pos] = series.SingleAnomaly
			placed++
		} else {
			// Short stuck burst (collective anomaly).
			size := 3
			ok := true
			for i := pos; i < pos+size; i++ {
				if labels[i] != series.Normal {
					ok = false
					break
				}
			}
			if !ok || placed+size > nErr+2 {
				continue
			}
			stuck := 140 + 10*rng.Float64()
			for i := pos; i < pos+size; i++ {
				vals[i] = stuck + 0.2*rng.NormFloat64()
				labels[i] = series.CollectiveAnomaly
			}
			placed += size
		}
	}
	return s
}

// YahooLike emulates one series of the Yahoo! Webscope S5 benchmark:
// real-traffic-shaped seasonality with isolated labeled anomalies at the
// published ~1% rate and no change points. The benchmark provides 50
// series of 1.5k-20k points; generate 50 seeds for the full suite.
func YahooLike(seed int64, n int) *series.Series {
	if n <= 0 {
		n = 1500
	}
	cfg := Config{
		N:              n,
		Seed:           seed,
		SingleFrac:     0.007,
		CollectiveFrac: 0.003,
		ChangeFrac:     0,
		SeasonPeriod:   24,
		SeasonAmp:      3,
		NoiseStd:       0.35,
		ARCoef:         0.5,
		Modulate:       true,
	}
	s := Generate(cfg)
	s.Name = fmt.Sprintf("yahoo-like-s%d", seed)
	return s
}

// KPILike emulates one AIOps-challenge KPI series: long 1-minute-interval
// seasonal service metrics with ~1.8% labeled anomalies and no change
// points. The real datasets are ~100k points; n scales that down while
// preserving the anomaly rate and the period-to-length ratio.
func KPILike(seed int64, n int) *series.Series {
	if n <= 0 {
		n = 10000
	}
	cfg := Config{
		N:              n,
		Seed:           seed,
		SingleFrac:     0.010,
		CollectiveFrac: 0.008,
		ChangeFrac:     0,
		SeasonPeriod:   1440 * n / 10000, // one "day" scaled to n
		SeasonAmp:      2.5,
		NoiseStd:       0.4,
		ARCoef:         0.7,
		Modulate:       true,
	}
	if cfg.SeasonPeriod < 16 {
		cfg.SeasonPeriod = 16
	}
	s := Generate(cfg)
	s.Name = fmt.Sprintf("kpi-like-s%d", seed)
	return s
}

// Suite returns the 25 synthetic relations of the paper's evaluation with
// anomaly + change-point percentages ramping from 1% to 20% of the data
// size (Figs. 5, 6, 14). n is the per-relation length (paper: 20k).
func Suite(n int) []*series.Series {
	out := make([]*series.Series, 0, 25)
	for i := 0; i < 25; i++ {
		frac := 0.01 + (0.20-0.01)*float64(i)/24
		cfg := Config{
			N:              n,
			Seed:           1000 + int64(i),
			SingleFrac:     frac * 0.25,
			CollectiveFrac: frac * 0.45,
			ChangeFrac:     frac * 0.30,
			// The paper fits its synthetic data to a production series
			// "to preserve the trend and seasonality"; the trend is what
			// separates CABD from piecewise-constant segmentation
			// baselines in Fig. 9 (total drift of a few base sd).
			TrendSlope: 8.0 / float64(n),
		}
		s := Generate(cfg)
		s.Name = fmt.Sprintf("ds-%d", i+1)
		out = append(out, s)
	}
	return out
}
