// Series families and correlated multivariate carriers for the scenario
// subsystem: the taxonomy grid crosses fault kinds with carrier shapes
// (flat, trending, seasonal, strongly autocorrelated), so a detector's
// per-kind quality can be read per carrier, and with channel counts, so
// the multivariate path is exercised with controlled cross-channel
// correlation. Carriers are clean — the scenario layer injects the
// faults and owns the ground truth.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"cabd/internal/series"
)

// Family names one clean carrier shape.
type Family string

// Carrier families. Flat is the easiest case (any deviation stands
// out), Trend breaks piecewise-constant assumptions, Seasonal feeds the
// decomposition-style baselines their favorite structure, and AR has
// long memory that makes slow faults (drift, levelshift) blend in.
const (
	FamilyFlat     Family = "flat"
	FamilyTrend    Family = "trend"
	FamilySeasonal Family = "seasonal"
	FamilyAR       Family = "ar"
)

// Families lists every carrier family.
func Families() []Family {
	return []Family{FamilyFlat, FamilyTrend, FamilySeasonal, FamilyAR}
}

// Carrier builds one clean n-point series of the named family,
// deterministically from seed. Unknown families fall back to flat.
func Carrier(fam Family, seed int64, n int) *series.Series {
	if n <= 0 {
		n = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	vals := carrierValues(fam, rng, n)
	s := series.New(fmt.Sprintf("%s-s%d", fam, seed), vals)
	s.Truth = append([]float64(nil), vals...)
	return s
}

func carrierValues(fam Family, rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	ar := 0.0
	for i := 0; i < n; i++ {
		x := float64(i)
		switch fam {
		case FamilyTrend:
			ar = 0.6*ar + 0.3*rng.NormFloat64()
			vals[i] = 10 + 8*x/float64(n) + ar
		case FamilySeasonal:
			ar = 0.6*ar + 0.3*rng.NormFloat64()
			amp := 2.5 * (1 + 0.3*math.Sin(2*math.Pi*x/(7.3*64)))
			vals[i] = 10 + amp*math.Sin(2*math.Pi*x/64) + ar
		case FamilyAR:
			// Long-memory random walk flavor: high AR coefficient, so
			// level changes are "natural" and slow faults must be told
			// apart from the carrier's own wandering.
			ar = 0.95*ar + 0.3*rng.NormFloat64()
			vals[i] = 10 + ar
		default: // FamilyFlat
			ar = 0.6*ar + 0.3*rng.NormFloat64()
			vals[i] = 10 + ar
		}
	}
	return vals
}

// CorrelatedDims builds d channels sharing one latent family carrier
// plus independent per-channel noise sized so the pairwise
// cross-channel correlation is about rho (clamped to [0.05, 0.99]).
// Channels differ in gain and offset, as co-located sensors of the same
// physical process do. Deterministic from seed. The multivar subpackage
// wraps the dims in a multi.Series (synth itself cannot import
// internal/multi without a test-only import cycle through core).
func CorrelatedDims(fam Family, seed int64, n, d int, rho float64) [][]float64 {
	if d < 1 {
		d = 1
	}
	if rho < 0.05 {
		rho = 0.05
	}
	if rho > 0.99 {
		rho = 0.99
	}
	latent := Carrier(fam, seed, n)
	sd := baseScale(latent.Values)
	// corr(channel_a, channel_b) = var(shared)/(var(shared)+var(noise))
	// when the noise is independent across channels, so the noise std
	// that yields correlation rho is sd*sqrt(1/rho - 1).
	noiseStd := sd * math.Sqrt(1/rho-1)
	rng := rand.New(rand.NewSource(seed + 1))
	dims := make([][]float64, d)
	for c := 0; c < d; c++ {
		gain := 1 + 0.25*float64(c)
		offset := 3 * float64(c)
		ch := make([]float64, len(latent.Values))
		for i, v := range latent.Values {
			ch[i] = gain*(v+noiseStd*rng.NormFloat64()) + offset
		}
		dims[c] = ch
	}
	return dims
}
