// Package multivar wraps synth's correlated channel generators into
// multi.Series values. It exists as a subpackage because internal/synth
// is imported by internal/core's own tests: synth importing
// internal/multi (which imports core) would close a test-only import
// cycle.
package multivar

import (
	"fmt"

	"cabd/internal/multi"
	"cabd/internal/synth"
)

// Correlated builds a d-channel multi.Series of family fam with
// pairwise cross-channel correlation about rho, deterministically from
// seed. See synth.CorrelatedDims for the construction.
func Correlated(fam synth.Family, seed int64, n, d int, rho float64) *multi.Series {
	dims := synth.CorrelatedDims(fam, seed, n, d, rho)
	return multi.NewSeries(fmt.Sprintf("%s-d%d-s%d", fam, d, seed), dims)
}
