// Package repair implements the two time-series cleaning algorithms the
// paper positions against (Section VI) and integrates with (Section V-G):
//
//   - IMR, Iterative Minimum Repairing (Zhang et al. [42]): an AR error
//     model is fitted on labeled (trusted) points; the most confident
//     repair is applied, the model re-estimated, and so on. Figure 14
//     shows IMR's repair RMS improving ~4x when CABD's active learning
//     chooses which points get labeled.
//   - SCREEN (Song et al. [34]): speed-constraint-based cleaning — each
//     point is minimally moved into the feasible band implied by maximum
//     rise/fall speeds.
package repair

import (
	"math"

	"cabd/internal/stats"
)

// IMRConfig parameterizes IMR.
type IMRConfig struct {
	Order   int     // AR order of the error model (default 3)
	MaxIter int     // repair iterations cap (default 10x dirty points)
	Tol     float64 // minimum predicted error worth repairing (default 1e-4)
}

func (c *IMRConfig) defaults() {
	if c.Order <= 0 {
		c.Order = 3
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
}

// IMR repairs values: known maps indices to their trusted true values
// (the user's labels); dirty lists the indices suspected erroneous (from
// a detector, or all unlabeled points for the label-only protocol). The
// repaired copy of values is returned; values itself is not modified.
//
// Each iteration fits an AR model of the signal on the currently trusted
// context (labels plus points not flagged dirty), predicts every pending
// dirty point from its trusted lags on both sides, and commits the single
// most confident repair — the minimum-repairing principle of [42]: one
// change at a time, so subsequent estimates benefit from it. Confidence
// is the agreement between the forward and backward predictions. (The
// original IMR models the error process, which is informative when errors
// form dirty segments with AR structure; for the impulsive sensor errors
// of this paper's datasets the equivalent signal-side formulation is used
// — see DESIGN.md.)
func IMR(values []float64, known map[int]float64, dirty []int, cfg IMRConfig) []float64 {
	cfg.defaults()
	n := len(values)
	out := append([]float64(nil), values...)
	if n == 0 {
		return out
	}
	trusted := make([]bool, n)
	for i := range trusted {
		trusted[i] = true
	}
	pending := make(map[int]bool, len(dirty))
	for _, i := range dirty {
		if i >= 0 && i < n {
			pending[i] = true
			trusted[i] = false
		}
	}
	for i, v := range known {
		if i < 0 || i >= n {
			continue
		}
		out[i] = v
		trusted[i] = true
		delete(pending, i)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * (len(pending) + 1)
	}
	for iter := 0; iter < maxIter && len(pending) > 0; iter++ {
		phi, mu := fitAR(out, trusted, cfg.Order)
		bestI, bestConf := -1, math.Inf(-1)
		var bestPred float64
		for i := range pending {
			fwd, okF := lagPredict(out, trusted, phi, mu, i, -1)
			bwd, okB := lagPredict(out, trusted, phi, mu, i, +1)
			// Single-sided predictions rank below every two-sided one
			// (finite penalty: -Inf would never win the argmax and
			// collective segments would stay unrepaired).
			const oneSided = -1e9
			var pred, conf float64
			switch {
			case okF && okB:
				pred = (fwd + bwd) / 2
				conf = -math.Abs(fwd - bwd)
			case okF:
				pred, conf = fwd, oneSided
			case okB:
				pred, conf = bwd, oneSided
			default:
				continue
			}
			if conf > bestConf {
				bestConf, bestI, bestPred = conf, i, pred
			}
		}
		if bestI < 0 {
			break
		}
		if math.Abs(bestPred-out[bestI]) > cfg.Tol {
			out[bestI] = bestPred
		}
		trusted[bestI] = true
		delete(pending, bestI)
	}
	return out
}

// fitAR estimates demeaned AR coefficients of the signal by least squares
// over positions whose full lag context is trusted. Falls back to a
// persistence model when the system is underdetermined. Returns the
// coefficients and the mean the model operates around.
func fitAR(xs []float64, trusted []bool, p int) ([]float64, float64) {
	n := len(xs)
	var sum float64
	var cnt int
	for i, v := range xs {
		if trusted[i] {
			sum += v
			cnt++
		}
	}
	mu := 0.0
	if cnt > 0 {
		mu = sum / float64(cnt)
	}
	var rows [][]float64
	var ys []float64
	for t := p; t < n; t++ {
		if !trusted[t] {
			continue
		}
		ok := true
		for j := 1; j <= p; j++ {
			if !trusted[t-j] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make([]float64, p)
		for j := 1; j <= p; j++ {
			row[j-1] = xs[t-j] - mu
		}
		rows = append(rows, row)
		ys = append(ys, xs[t]-mu)
	}
	if len(rows) < p+1 {
		phi := make([]float64, p)
		if p > 0 {
			phi[0] = 1
		}
		return phi, mu
	}
	return olsSolve(rows, ys, p), mu
}

// olsSolve solves the normal equations (X^T X + ridge) phi = X^T y by
// Gaussian elimination with a small ridge for stability.
func olsSolve(X [][]float64, y []float64, p int) []float64 {
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p+1)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			var s float64
			for r := range X {
				s += X[r][i] * X[r][j]
			}
			if i == j {
				s += 1e-8
			}
			a[i][j] = s
		}
		var s float64
		for r := range X {
			s += X[r][i] * y[r]
		}
		a[i][p] = s
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < p; col++ {
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			continue
		}
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= p; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	phi := make([]float64, p)
	for i := 0; i < p; i++ {
		if math.Abs(a[i][i]) > 1e-12 {
			phi[i] = a[i][p] / a[i][i]
		}
	}
	return phi
}

// lagPredict predicts the value at position i from its p trusted lags in
// direction dir (-1 = from the left, +1 = from the right). ok is false
// when any lag is untrusted or out of range.
func lagPredict(xs []float64, trusted []bool, phi []float64, mu float64, i, dir int) (float64, bool) {
	var pred float64
	for j := 1; j <= len(phi); j++ {
		k := i + dir*j
		if k < 0 || k >= len(xs) || !trusted[k] {
			return 0, false
		}
		pred += phi[j-1] * (xs[k] - mu)
	}
	return pred + mu, true
}

// ScreenConfig parameterizes SCREEN.
type ScreenConfig struct {
	SMax   float64 // maximum allowed rise per step (> 0)
	SMin   float64 // maximum allowed fall per step (< 0)
	Window int     // look-ahead window (default 10)
}

// Screen repairs values under the speed constraint [SMin, SMax] per unit
// step, following SCREEN's median-based minimum repair: each point is
// moved to the median of its own value and the bounds implied by the
// look-ahead window, guaranteeing the repaired sequence satisfies the
// constraint while minimizing total change.
func Screen(values []float64, cfg ScreenConfig) []float64 {
	n := len(values)
	out := append([]float64(nil), values...)
	if n < 2 || cfg.SMax <= 0 || cfg.SMin >= 0 {
		return out
	}
	w := cfg.Window
	if w <= 0 {
		w = 10
	}
	for i := 1; i < n; i++ {
		lo := out[i-1] + cfg.SMin
		hi := out[i-1] + cfg.SMax
		// Candidate from the look-ahead: the median of the projections
		// of future points back onto position i.
		var cand []float64
		cand = append(cand, out[i])
		for j := i + 1; j < n && j <= i+w; j++ {
			dt := float64(j - i)
			cand = append(cand, values[j]-cfg.SMin*dt, values[j]-cfg.SMax*dt)
		}
		x := stats.Median(cand)
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		// Minimum repair: keep the original when feasible.
		if out[i] >= lo && out[i] <= hi {
			continue
		}
		out[i] = x
	}
	return out
}
