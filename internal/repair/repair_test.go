package repair

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/stats"
)

// corrupted builds a smooth truth series plus spike errors.
func corrupted(seed int64, n int, errAt []int) (obs, truth []float64) {
	rng := rand.New(rand.NewSource(seed))
	truth = make([]float64, n)
	ar := 0.0
	for i := range truth {
		ar = 0.8*ar + rng.NormFloat64()*0.1
		truth[i] = ar + math.Sin(2*math.Pi*float64(i)/80)
	}
	obs = append([]float64(nil), truth...)
	for _, p := range errAt {
		obs[p] += 8
	}
	return obs, truth
}

func TestIMRRepairsLabeledNeighborhood(t *testing.T) {
	errAt := []int{100, 200, 300}
	obs, truth := corrupted(1, 500, errAt)
	// Label a few trusted points around each error plus the errors'
	// true values at 2 of them; repair the third from the model.
	known := map[int]float64{}
	for _, p := range []int{95, 96, 97, 98, 99, 101, 102, 103,
		195, 196, 197, 198, 199, 201, 202, 203,
		295, 296, 297, 298, 299, 301, 302, 303} {
		known[p] = truth[p]
	}
	known[100] = truth[100]
	known[200] = truth[200]
	repaired := IMR(obs, known, errAt, IMRConfig{})
	before := stats.RMS(obs, truth)
	after := stats.RMS(repaired, truth)
	if after >= before {
		t.Errorf("IMR did not improve RMS: %v -> %v", before, after)
	}
	// The unlabeled error must move toward the truth.
	if math.Abs(repaired[300]-truth[300]) >= math.Abs(obs[300]-truth[300]) {
		t.Errorf("unlabeled error not repaired: obs=%v repaired=%v truth=%v",
			obs[300], repaired[300], truth[300])
	}
}

func TestIMRGuidedBeatsRandomLabels(t *testing.T) {
	// The Figure 14 mechanism: with an equal label budget, labels placed
	// on detected anomalies repair far better than random placement.
	rng := rand.New(rand.NewSource(2))
	errAt := []int{80, 160, 240, 320, 400}
	obs, truth := corrupted(2, 500, errAt)

	// Guided: label the errors themselves plus local context.
	guided := map[int]float64{}
	for _, p := range errAt {
		for off := -2; off <= 2; off++ {
			guided[p+off] = truth[p+off]
		}
	}
	guidedOut := IMR(obs, guided, errAt, IMRConfig{})

	// Random: the same number of labels placed uniformly; all points are
	// repair candidates.
	random := map[int]float64{}
	for len(random) < len(guided) {
		i := rng.Intn(500)
		random[i] = truth[i]
	}
	var allIdx []int
	for i := 0; i < 500; i++ {
		allIdx = append(allIdx, i)
	}
	randomOut := IMR(obs, random, allIdx, IMRConfig{})

	g := stats.RMS(guidedOut, truth)
	r := stats.RMS(randomOut, truth)
	if g >= r {
		t.Errorf("guided IMR RMS %v not better than random %v", g, r)
	}
}

func TestIMRNoDirtyNoChange(t *testing.T) {
	obs, truth := corrupted(3, 200, nil)
	repaired := IMR(obs, map[int]float64{50: truth[50]}, nil, IMRConfig{})
	for i := range obs {
		if i != 50 && repaired[i] != obs[i] {
			t.Errorf("IMR modified clean point %d", i)
		}
	}
}

func TestIMRInputUntouched(t *testing.T) {
	obs, truth := corrupted(4, 100, []int{50})
	orig := append([]float64(nil), obs...)
	IMR(obs, map[int]float64{49: truth[49], 51: truth[51]}, []int{50}, IMRConfig{})
	for i := range obs {
		if obs[i] != orig[i] {
			t.Fatal("IMR mutated its input")
		}
	}
}

func TestScreenEnforcesSpeedConstraint(t *testing.T) {
	obs := []float64{0, 0.1, 5, 0.3, 0.4, 0.5} // spike violating speed 1
	out := Screen(obs, ScreenConfig{SMax: 1, SMin: -1})
	for i := 1; i < len(out); i++ {
		d := out[i] - out[i-1]
		if d > 1+1e-9 || d < -1-1e-9 {
			t.Errorf("speed constraint violated at %d: %v", i, d)
		}
	}
	// The spike must be pulled toward its neighbors.
	if math.Abs(out[2]-0.2) > 1.2 {
		t.Errorf("spike not repaired: %v", out[2])
	}
}

func TestScreenKeepsFeasibleSeries(t *testing.T) {
	obs := []float64{0, 0.5, 1.0, 1.4, 1.8}
	out := Screen(obs, ScreenConfig{SMax: 1, SMin: -1})
	for i := range obs {
		if out[i] != obs[i] {
			t.Errorf("feasible point %d changed: %v -> %v", i, obs[i], out[i])
		}
	}
}

func TestScreenDegenerate(t *testing.T) {
	if out := Screen(nil, ScreenConfig{SMax: 1, SMin: -1}); len(out) != 0 {
		t.Error("nil input")
	}
	// Invalid speed config returns a copy unchanged.
	obs := []float64{1, 9, 1}
	out := Screen(obs, ScreenConfig{})
	for i := range obs {
		if out[i] != obs[i] {
			t.Error("invalid config should not modify")
		}
	}
}
