// Package scenario is the declarative taxonomy grid of the robustness
// evaluation: fault kind × series family × channel count × severity.
// Each cell expands into labeled scenario corpora generated
// deterministically from a seed — a clean family carrier (correlated
// across channels for d >= 2), corrupted by one fault family at the
// cell's severity, with ground truth recorded as fault-onset indices.
// The scenarios experiment (cabd-bench -exp scenarios) drives CABD and
// every baseline across the grid and scores them against these onsets.
//
// Faults are injected with the same RNG seed in every channel, so a
// d-channel scenario carries the same fault footprint in all channels —
// the correlated-failure shape (a shared upstream outage) that the
// multivariate detector's cross-channel machinery is built for. All
// injector position draws are value-independent, which is what makes
// the per-channel footprints line up.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"cabd/internal/faultgen"
	"cabd/internal/multi"
	"cabd/internal/synth"
)

// Severity names an injection intensity: Rounds is how many times the
// fault family's Inject pass is applied (each pass corrupts ~2% of
// points, so severities compound).
type Severity struct {
	Name   string
	Rounds int
}

// The two standard severities of the grid.
var (
	Mild   = Severity{Name: "mild", Rounds: 1}
	Severe = Severity{Name: "severe", Rounds: 3}
)

// Cell is one point of the taxonomy grid.
type Cell struct {
	Kind     faultgen.Kind
	Family   synth.Family
	Channels int
	Severity Severity
}

// Name returns the canonical cell identifier used in benchmark output.
func (c Cell) Name() string {
	return fmt.Sprintf("%s/%s/d%d/%s", c.Kind, c.Family, c.Channels, c.Severity.Name)
}

// Scenario is one generated instance of a cell: the corrupted channels,
// the clean carrier they started from, and the fault-onset ground
// truth (indices in Dims coordinates).
type Scenario struct {
	Name  string
	Cell  Cell
	Dims  [][]float64
	Clean [][]float64
	Truth []int
}

// Series wraps the corrupted channels as a multi.Series.
func (s *Scenario) Series() *multi.Series {
	return multi.NewSeries(s.Name, s.Dims)
}

// Grid declares the taxonomy to expand. Zero-value fields take the
// standard sweep via defaults().
type Grid struct {
	Kinds      []faultgen.Kind
	Families   []synth.Family
	Channels   []int
	Severities []Severity

	N    int   // points per scenario (default 1200)
	Reps int   // scenarios per cell (default 1)
	Seed int64 // base seed; every scenario derives its own from it
	Rho  float64
}

func (g Grid) defaults() Grid {
	if len(g.Kinds) == 0 {
		// The benchmark's required taxonomy: every fault family except
		// nan (subsumed by gap at scenario scale) and dropout (shortens
		// the series, which the per-cell truth protocol handles but the
		// univariate baselines' index bookkeeping does not need).
		g.Kinds = []faultgen.Kind{faultgen.KindDrift, faultgen.KindGap,
			faultgen.KindFlatline, faultgen.KindLevelShift,
			faultgen.KindSeasonalSwing, faultgen.KindExtreme}
	}
	if len(g.Families) == 0 {
		g.Families = synth.Families()
	}
	if len(g.Channels) == 0 {
		g.Channels = []int{1, 3}
	}
	if len(g.Severities) == 0 {
		g.Severities = []Severity{Mild, Severe}
	}
	if g.N <= 0 {
		g.N = 1200
	}
	if g.Reps <= 0 {
		g.Reps = 1
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.Rho <= 0 || g.Rho >= 1 {
		g.Rho = 0.8
	}
	return g
}

// Cells expands the grid in deterministic order (kind-major, then
// family, channels, severity).
func (g Grid) Cells() []Cell {
	g = g.defaults()
	var out []Cell
	for _, k := range g.Kinds {
		for _, f := range g.Families {
			for _, d := range g.Channels {
				for _, sev := range g.Severities {
					out = append(out, Cell{Kind: k, Family: f, Channels: d, Severity: sev})
				}
			}
		}
	}
	return out
}

// Generate expands every cell into Reps scenarios. The result is fully
// determined by the grid: scenario i of cell j always sees the same
// derived seed.
func (g Grid) Generate() []*Scenario {
	g = g.defaults()
	cells := g.Cells()
	out := make([]*Scenario, 0, len(cells)*g.Reps)
	for ci, cell := range cells {
		for rep := 0; rep < g.Reps; rep++ {
			seed := g.Seed + int64(ci)*1009 + int64(rep)*104729
			out = append(out, GenerateScenario(cell, seed, g.N, g.Rho))
		}
	}
	return out
}

// GenerateScenario builds one labeled scenario: a correlated carrier
// corrupted by the cell's fault at its severity, with onset truth.
func GenerateScenario(cell Cell, seed int64, n int, rho float64) *Scenario {
	if cell.Channels < 1 {
		cell.Channels = 1
	}
	if cell.Severity.Rounds < 1 {
		cell.Severity.Rounds = 1
	}
	clean := synth.CorrelatedDims(cell.Family, seed, n, cell.Channels, rho)
	dims := make([][]float64, len(clean))
	for k := range clean {
		dims[k] = append([]float64(nil), clean[k]...)
	}

	var truth []int
	for round := 0; round < cell.Severity.Rounds; round++ {
		// One fault seed per round, shared by every channel: identical
		// RNG draws put the fault footprint at the same positions in
		// all channels.
		faultSeed := seed*31 + int64(round)*7919 + 17
		var rep faultgen.Report
		before := len(dims[0])
		for k := range dims {
			rng := rand.New(rand.NewSource(faultSeed))
			dims[k], rep = faultgen.Inject(rng, dims[k], cell.Kind)
		}
		if len(dims[0]) != before {
			// A shortening fault (dropout): remap the already-collected
			// onsets through the removal before adding this round's.
			truth = remapThroughRemoval(truth, rep.Indices)
			truth = append(truth, onsetsAfterRemoval(rep.Indices)...)
		} else {
			truth = append(truth, Onsets(rep.Indices)...)
		}
	}
	// A removed tail segment maps one past the shortened end; clamp
	// every onset into the final coordinate range.
	if last := len(dims[0]) - 1; last >= 0 {
		for i, t := range truth {
			if t > last {
				truth[i] = last
			}
		}
	}
	sort.Ints(truth)
	truth = dedup(truth)
	return &Scenario{
		Name:  fmt.Sprintf("%s/s%d", cell.Name(), seed),
		Cell:  cell,
		Dims:  dims,
		Clean: clean,
		Truth: truth,
	}
}

// Onsets collapses a report's corrupted positions into segment starts:
// one truth index per contiguous stretch. Detectors are scored on
// finding each fault, not on covering its every point.
func Onsets(indices []int) []int {
	if len(indices) == 0 {
		return nil
	}
	sorted := append([]int(nil), indices...)
	sort.Ints(sorted)
	out := []int{sorted[0]}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] > sorted[i-1]+1 {
			out = append(out, sorted[i])
		}
	}
	return out
}

// remapThroughRemoval shifts truth indices (in pre-removal coordinates)
// into post-removal coordinates: each index drops by the number of
// removed positions before it.
func remapThroughRemoval(truth, removed []int) []int {
	if len(truth) == 0 || len(removed) == 0 {
		return truth
	}
	sortedRm := append([]int(nil), removed...)
	sort.Ints(sortedRm)
	out := make([]int, 0, len(truth))
	for _, t := range truth {
		shift := sort.SearchInts(sortedRm, t)
		nt := t - shift
		if nt < 0 {
			nt = 0
		}
		out = append(out, nt)
	}
	return out
}

// onsetsAfterRemoval maps each removed segment's start to its position
// in the shortened series (the index where the gap now sits).
func onsetsAfterRemoval(removed []int) []int {
	starts := Onsets(removed)
	return remapThroughRemoval(starts, removed)
}

func dedup(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, v := range xs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
