package scenario_test

import (
	"math"
	"testing"

	"cabd/internal/faultgen"
	"cabd/internal/scenario"
	"cabd/internal/synth"
)

// TestGridExpansion checks the cross product and its deterministic
// order.
func TestGridExpansion(t *testing.T) {
	g := scenario.Grid{}
	cells := g.Cells()
	want := 6 * len(synth.Families()) * 2 * 2
	if len(cells) != want {
		t.Fatalf("default grid has %d cells, want %d", len(cells), want)
	}
	again := g.Cells()
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatalf("cell order not deterministic at %d: %v vs %v", i, cells[i], again[i])
		}
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Name()] {
			t.Fatalf("duplicate cell %s", c.Name())
		}
		seen[c.Name()] = true
	}
}

// TestGenerateDeterministic: the same grid generates bit-identical
// corpora.
func TestGenerateDeterministic(t *testing.T) {
	g := scenario.Grid{
		Kinds:    []faultgen.Kind{faultgen.KindDrift, faultgen.KindGap},
		Families: []synth.Family{synth.FamilyFlat},
		N:        400, Seed: 9,
	}
	a, b := g.Generate(), g.Generate()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("corpus sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("scenario %d name %q vs %q", i, a[i].Name, b[i].Name)
		}
		for k := range a[i].Dims {
			for j := range a[i].Dims[k] {
				av, bv := a[i].Dims[k][j], b[i].Dims[k][j]
				if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
					t.Fatalf("scenario %d dim %d idx %d: %v vs %v", i, k, j, av, bv)
				}
			}
		}
		for j := range a[i].Truth {
			if a[i].Truth[j] != b[i].Truth[j] {
				t.Fatalf("scenario %d truth differs", i)
			}
		}
	}
}

// TestScenarioShapeAndTruth checks every generated scenario carries
// equal-length channels, in-range sorted truth onsets, and actual
// corruption relative to the clean carrier.
func TestScenarioShapeAndTruth(t *testing.T) {
	g := scenario.Grid{N: 600, Seed: 3}
	for _, sc := range g.Generate() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if len(sc.Dims) != sc.Cell.Channels {
				t.Fatalf("channels = %d, want %d", len(sc.Dims), sc.Cell.Channels)
			}
			n := len(sc.Dims[0])
			for k := range sc.Dims {
				if len(sc.Dims[k]) != n {
					t.Fatalf("ragged channels")
				}
			}
			if len(sc.Truth) == 0 {
				t.Fatal("no truth onsets")
			}
			prev := -1
			for _, idx := range sc.Truth {
				if idx < 0 || idx >= n {
					t.Fatalf("truth onset %d out of range [0,%d)", idx, n)
				}
				if idx <= prev {
					t.Fatalf("truth not strictly sorted: %v", sc.Truth)
				}
				prev = idx
			}
			// Corruption really happened in every channel.
			for k := range sc.Dims {
				changed := false
				for i := range sc.Dims[k] {
					if sc.Dims[k][i] != sc.Clean[k][i] &&
						!(math.IsNaN(sc.Dims[k][i]) && math.IsNaN(sc.Clean[k][i])) {
						changed = true
						break
					}
				}
				if !changed {
					t.Fatalf("channel %d is uncorrupted", k)
				}
			}
		})
	}
}

// TestCorrelatedFaultFootprint: for a d-channel gap scenario the NaN
// positions must coincide across channels (same fault seed per
// channel).
func TestCorrelatedFaultFootprint(t *testing.T) {
	cell := scenario.Cell{
		Kind: faultgen.KindGap, Family: synth.FamilySeasonal,
		Channels: 3, Severity: scenario.Mild,
	}
	sc := scenario.GenerateScenario(cell, 77, 800, 0.8)
	for i := range sc.Dims[0] {
		nan0 := math.IsNaN(sc.Dims[0][i])
		for k := 1; k < len(sc.Dims); k++ {
			if math.IsNaN(sc.Dims[k][i]) != nan0 {
				t.Fatalf("gap footprint diverges across channels at %d", i)
			}
		}
	}
}

// TestSevereOutweighsMild: the severe severity corrupts at least as
// many points as mild on the same cell and seed.
func TestSevereOutweighsMild(t *testing.T) {
	base := scenario.Cell{Kind: faultgen.KindExtreme, Family: synth.FamilyFlat, Channels: 1}
	mild, severe := base, base
	mild.Severity, severe.Severity = scenario.Mild, scenario.Severe
	count := func(sc *scenario.Scenario) int {
		n := 0
		for i := range sc.Dims[0] {
			if sc.Dims[0][i] != sc.Clean[0][i] &&
				!(math.IsNaN(sc.Dims[0][i]) && math.IsNaN(sc.Clean[0][i])) {
				n++
			}
		}
		return n
	}
	m := count(scenario.GenerateScenario(mild, 5, 1000, 0.8))
	s := count(scenario.GenerateScenario(severe, 5, 1000, 0.8))
	if s <= m {
		t.Errorf("severe corrupted %d points, mild %d — want severe > mild", s, m)
	}
}

// TestOnsets pins the segment-collapsing rule.
func TestOnsets(t *testing.T) {
	got := scenario.Onsets([]int{5, 6, 7, 12, 20, 21, 3})
	want := []int{3, 5, 12, 20}
	if len(got) != len(want) {
		t.Fatalf("Onsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Onsets = %v, want %v", got, want)
		}
	}
	if scenario.Onsets(nil) != nil {
		t.Error("Onsets(nil) != nil")
	}
}

// TestDropoutTruthRemap: a dropout scenario's truth must stay in range
// of the shortened series.
func TestDropoutTruthRemap(t *testing.T) {
	cell := scenario.Cell{
		Kind: faultgen.KindDropout, Family: synth.FamilyTrend,
		Channels: 2, Severity: scenario.Severe,
	}
	sc := scenario.GenerateScenario(cell, 13, 900, 0.8)
	n := len(sc.Dims[0])
	if n >= 900 {
		t.Fatalf("dropout did not shorten the series (n=%d)", n)
	}
	for k := range sc.Dims {
		if len(sc.Dims[k]) != n {
			t.Fatal("ragged channels after dropout")
		}
	}
	if len(sc.Truth) == 0 {
		t.Fatal("no truth")
	}
	for _, idx := range sc.Truth {
		if idx < 0 || idx >= n {
			t.Fatalf("truth onset %d out of shortened range [0,%d)", idx, n)
		}
	}
}
