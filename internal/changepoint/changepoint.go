// Package changepoint implements the three offline change-point detection
// baselines of Figure 9, re-implementing the subset of the ruptures
// library [36] the paper invoked: PELT (Pruned Exact Linear Time, Killick
// et al. [19]), Binary Segmentation [13] and Bottom-Up segmentation [12],
// all with the L2 (piecewise-constant mean) cost and a penalty parameter —
// the "penalty value" the paper brute-forces from 0 to 100.
package changepoint

import (
	"math"
	"sort"
)

// costL2 returns the L2 segment cost of xs[lo:hi) given prefix sums:
// sum (x - mean)^2 over the segment.
type prefix struct {
	s  []float64 // prefix sums
	s2 []float64 // prefix sums of squares
}

func newPrefix(xs []float64) prefix {
	n := len(xs)
	p := prefix{s: make([]float64, n+1), s2: make([]float64, n+1)}
	for i, v := range xs {
		p.s[i+1] = p.s[i] + v
		p.s2[i+1] = p.s2[i] + v*v
	}
	return p
}

// cost is the L2 cost of the half-open segment [lo, hi).
func (p prefix) cost(lo, hi int) float64 {
	n := float64(hi - lo)
	if n <= 0 {
		return 0
	}
	sum := p.s[hi] - p.s[lo]
	sum2 := p.s2[hi] - p.s2[lo]
	return sum2 - sum*sum/n
}

// PELT returns the optimal change points of xs under penalty pen with the
// L2 cost, using the pruned exact linear time dynamic program. Change
// points are reported as the first index of each new segment, sorted.
func PELT(xs []float64, pen float64) []int {
	n := len(xs)
	if n < 2 {
		return nil
	}
	p := newPrefix(xs)
	// f[t] = optimal cost of xs[0:t]; cp[t] = last change before t.
	f := make([]float64, n+1)
	cp := make([]int, n+1)
	f[0] = -pen
	candidates := []int{0}
	for t := 1; t <= n; t++ {
		bestCost := math.Inf(1)
		bestTau := 0
		for _, tau := range candidates {
			c := f[tau] + p.cost(tau, t) + pen
			if c < bestCost {
				bestCost, bestTau = c, tau
			}
		}
		f[t] = bestCost
		cp[t] = bestTau
		// Prune: keep tau with f[tau] + cost(tau,t) <= f[t].
		kept := candidates[:0]
		for _, tau := range candidates {
			if f[tau]+p.cost(tau, t) <= f[t] {
				kept = append(kept, tau)
			}
		}
		candidates = append(kept, t)
	}
	// Backtrack.
	var out []int
	t := n
	for t > 0 {
		tau := cp[t]
		if tau > 0 {
			out = append(out, tau)
		}
		t = tau
	}
	sort.Ints(out)
	return out
}

// BinSeg returns change points found by greedy binary segmentation: the
// split with the largest cost gain is applied recursively while the gain
// exceeds the penalty. minSize guards degenerate segments (default 2 when
// <= 0).
func BinSeg(xs []float64, pen float64, minSize int) []int {
	n := len(xs)
	if minSize <= 0 {
		minSize = 2
	}
	if n < 2*minSize {
		return nil
	}
	p := newPrefix(xs)
	var out []int
	var recurse func(lo, hi int)
	recurse = func(lo, hi int) {
		if hi-lo < 2*minSize {
			return
		}
		base := p.cost(lo, hi)
		bestGain, bestK := 0.0, -1
		for k := lo + minSize; k <= hi-minSize; k++ {
			gain := base - p.cost(lo, k) - p.cost(k, hi)
			if gain > bestGain {
				bestGain, bestK = gain, k
			}
		}
		if bestK < 0 || bestGain <= pen {
			return
		}
		out = append(out, bestK)
		recurse(lo, bestK)
		recurse(bestK, hi)
	}
	recurse(0, n)
	sort.Ints(out)
	return out
}

// BottomUp returns change points found by bottom-up segmentation: the
// series starts fully segmented at a fine grid and adjacent segments are
// merged greedily by smallest merge cost until every remaining merge
// would cost more than the penalty.
func BottomUp(xs []float64, pen float64, grid int) []int {
	n := len(xs)
	if grid <= 0 {
		grid = 2
	}
	if n < 2*grid {
		return nil
	}
	p := newPrefix(xs)
	// Initial boundaries at every grid-th point.
	var bounds []int // segment starts (excluding 0)
	for k := grid; k < n; k += grid {
		bounds = append(bounds, k)
	}
	starts := func() []int {
		out := append([]int{0}, bounds...)
		return out
	}
	for len(bounds) > 0 {
		st := starts()
		// Merge cost of removing boundary i (between segment i and i+1).
		bestCost, bestI := math.Inf(1), -1
		for i := 0; i < len(bounds); i++ {
			lo := st[i]
			mid := bounds[i]
			hi := n
			if i+1 < len(bounds) {
				hi = bounds[i+1]
			}
			mc := p.cost(lo, hi) - p.cost(lo, mid) - p.cost(mid, hi)
			if mc < bestCost {
				bestCost, bestI = mc, i
			}
		}
		if bestI < 0 || bestCost > pen {
			break
		}
		bounds = append(bounds[:bestI], bounds[bestI+1:]...)
	}
	return bounds
}

// BestPenalty brute-forces the penalty from lo to hi in steps (the
// paper's protocol: "the best penalty value is found by a brute-force
// search from 0 to 100") and returns the penalty maximizing the supplied
// quality functional together with its detections.
func BestPenalty(detect func(pen float64) []int, quality func([]int) float64,
	lo, hi, step float64) (bestPen float64, bestCps []int, bestQ float64) {
	bestQ = math.Inf(-1)
	for pen := lo; pen <= hi; pen += step {
		cps := detect(pen)
		q := quality(cps)
		if q > bestQ {
			bestQ, bestPen, bestCps = q, pen, cps
		}
	}
	return bestPen, bestCps, bestQ
}
