package changepoint

import (
	"math/rand"
	"testing"

	"cabd/internal/eval"
)

// steppy builds a piecewise-constant series with noise.
func steppy(rng *rand.Rand, segLens []int, levels []float64, noise float64) ([]float64, []int) {
	var xs []float64
	var cps []int
	pos := 0
	for i, l := range segLens {
		for j := 0; j < l; j++ {
			xs = append(xs, levels[i]+rng.NormFloat64()*noise)
		}
		pos += l
		if i < len(segLens)-1 {
			cps = append(cps, pos)
		}
	}
	return xs, cps
}

func TestPELTExactSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, truth := steppy(rng, []int{100, 120, 80, 100}, []float64{0, 5, -3, 2}, 0.3)
	got := PELT(xs, 10)
	m := eval.Match(got, truth, 2)
	if m.F1 < 0.99 {
		t.Errorf("PELT F = %v (got %v, want %v)", m.F1, got, truth)
	}
}

func TestBinSegSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, truth := steppy(rng, []int{100, 120, 80, 100}, []float64{0, 5, -3, 2}, 0.3)
	got := BinSeg(xs, 10, 2)
	m := eval.Match(got, truth, 2)
	if m.F1 < 0.99 {
		t.Errorf("BinSeg F = %v (got %v, want %v)", m.F1, got, truth)
	}
}

func TestBottomUpSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, truth := steppy(rng, []int{100, 120, 80, 100}, []float64{0, 5, -3, 2}, 0.3)
	got := BottomUp(xs, 10, 2)
	m := eval.Match(got, truth, 2)
	if m.F1 < 0.99 {
		t.Errorf("BottomUp F = %v (got %v, want %v)", m.F1, got, truth)
	}
}

func TestNoChangeNoDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for name, got := range map[string][]int{
		"PELT":     PELT(xs, 20),
		"BinSeg":   BinSeg(xs, 20, 2),
		"BottomUp": BottomUp(xs, 20, 2),
	} {
		if len(got) > 2 {
			t.Errorf("%s flagged %d changes in stationary noise", name, len(got))
		}
	}
}

func TestPenaltyMonotone(t *testing.T) {
	// More penalty, fewer (or equal) change points.
	rng := rand.New(rand.NewSource(5))
	xs, _ := steppy(rng, []int{60, 60, 60, 60, 60}, []float64{0, 3, -1, 4, 0}, 0.5)
	prev := len(PELT(xs, 0.5))
	for _, pen := range []float64{2, 10, 50, 200} {
		cur := len(PELT(xs, pen))
		if cur > prev {
			t.Errorf("PELT count increased with penalty: %d -> %d at pen=%v", prev, cur, pen)
		}
		prev = cur
	}
}

func TestPELTMatchesBruteForceOPT(t *testing.T) {
	// Differential: PELT must match exhaustive optimal partitioning on
	// small inputs.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			if i > n/2 {
				xs[i] += 4
			}
		}
		pen := 2.0
		want := optBrute(xs, pen)
		got := PELT(xs, pen)
		if len(got) != len(want) {
			t.Fatalf("trial %d: PELT %v vs brute %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: PELT %v vs brute %v", trial, got, want)
			}
		}
	}
}

// optBrute is the O(n^2) unpruned optimal-partitioning reference.
func optBrute(xs []float64, pen float64) []int {
	n := len(xs)
	p := newPrefix(xs)
	f := make([]float64, n+1)
	cp := make([]int, n+1)
	f[0] = -pen
	for t := 1; t <= n; t++ {
		best, bi := f[0]+p.cost(0, t)+pen, 0
		for tau := 1; tau < t; tau++ {
			if c := f[tau] + p.cost(tau, t) + pen; c < best {
				best, bi = c, tau
			}
		}
		f[t], cp[t] = best, bi
	}
	var out []int
	for t := n; t > 0; t = cp[t] {
		if cp[t] > 0 {
			out = append(out, cp[t])
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func TestBestPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, truth := steppy(rng, []int{80, 80, 80}, []float64{0, 4, -2}, 0.4)
	_, cps, q := BestPenalty(
		func(pen float64) []int { return PELT(xs, pen) },
		func(cps []int) float64 { return eval.Match(cps, truth, 2).F1 },
		0.5, 100, 2)
	if q < 0.99 {
		t.Errorf("brute-forced penalty F = %v (cps %v)", q, cps)
	}
}

func TestDegenerate(t *testing.T) {
	if PELT(nil, 1) != nil || PELT([]float64{1}, 1) != nil {
		t.Error("tiny inputs should yield nil")
	}
	if BinSeg([]float64{1, 2}, 1, 2) != nil {
		t.Error("too-short BinSeg should yield nil")
	}
	if BottomUp([]float64{1, 2, 3}, 1, 2) != nil {
		t.Error("too-short BottomUp should yield nil")
	}
}

func BenchmarkPELT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs, _ := steppy(rng, []int{500, 500, 500, 500}, []float64{0, 3, -2, 1}, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PELT(xs, 10)
	}
}
