package sax

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPAAExactDivision(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3}
	got := PAA(xs, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PAA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPAAUnevenDivision(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := PAA(xs, 2)
	// floor(j*2/5): j=0,1,2 -> seg0; j=3,4 -> seg1.
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-4.5) > 1e-12 {
		t.Errorf("PAA = %v", got)
	}
}

func TestPAADegenerate(t *testing.T) {
	if PAA(nil, 3) != nil {
		t.Error("nil input should give nil")
	}
	if PAA([]float64{1}, 0) != nil {
		t.Error("m=0 should give nil")
	}
	xs := []float64{1, 2}
	got := PAA(xs, 5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("m>n PAA = %v", got)
	}
	// m>n must copy, not alias.
	got[0] = 99
	if xs[0] == 99 {
		t.Error("PAA aliased its input")
	}
}

func TestBreakpoints(t *testing.T) {
	bp := Breakpoints(4)
	if len(bp) != 3 {
		t.Fatalf("len = %d", len(bp))
	}
	// Known SAX breakpoints for a=4: -0.6745, 0, 0.6745.
	want := []float64{-0.6745, 0, 0.6745}
	for i := range want {
		if math.Abs(bp[i]-want[i]) > 1e-3 {
			t.Errorf("bp[%d] = %v, want %v", i, bp[i], want[i])
		}
	}
	if Breakpoints(1) != nil {
		t.Error("a=1 should give nil")
	}
}

func TestSymbolize(t *testing.T) {
	// With a=4 breakpoints at -0.67, 0, 0.67.
	got := Symbolize([]float64{-2, -0.3, 0.3, 2}, 4)
	if got != "abcd" {
		t.Errorf("Symbolize = %q, want abcd", got)
	}
}

func TestWordBasic(t *testing.T) {
	// A ramp standardizes monotonically: symbols must be nondecreasing.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	w := Word(xs, 4, 4)
	if len(w) != 4 {
		t.Fatalf("word length = %d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1] {
			t.Errorf("ramp word not monotone: %q", w)
		}
	}
	if Word(nil, 4, 4) != "" {
		t.Error("empty input should give empty word")
	}
}

func TestWordShapeInvariance(t *testing.T) {
	// SAX words are invariant to affine transformation of the input
	// because of the internal standardization.
	xs := []float64{1, 5, 2, 8, 3, 9, 1, 4}
	ys := make([]float64, len(xs))
	for i, v := range xs {
		ys[i] = v*12.5 + 100
	}
	if Word(xs, 4, 4) != Word(ys, 4, 4) {
		t.Errorf("affine invariance violated: %q vs %q", Word(xs, 4, 4), Word(ys, 4, 4))
	}
}

func TestSlidingWords(t *testing.T) {
	xs := []float64{0, 1, 0, 1, 0, 1, 0, 1}
	words := SlidingWords(xs, 4, 4, 3)
	if len(words) != 5 {
		t.Fatalf("expected 5 windows, got %d", len(words))
	}
	// The alternating series has only two distinct windows (0101, 1010),
	// which standardize to mirror-image words.
	uniq := map[string]bool{}
	for _, w := range words {
		uniq[w] = true
	}
	if len(uniq) != 2 {
		t.Errorf("expected 2 distinct words, got %v", uniq)
	}
	if SlidingWords(xs, 20, 2, 3) != nil {
		t.Error("w>n should give nil")
	}
}

func TestFrequency(t *testing.T) {
	words := []string{"ab", "cd", "ab", "ab"}
	if got := Frequency(words, "ab"); got != 0.75 {
		t.Errorf("Frequency = %v", got)
	}
	if got := Frequency(nil, "ab"); got != 0 {
		t.Errorf("empty Frequency = %v", got)
	}
	if got := Frequency(words, "zz"); got != 0 {
		t.Errorf("absent Frequency = %v", got)
	}
}

func TestMinDist(t *testing.T) {
	// Adjacent symbols have zero distance.
	if got := MinDist("ab", "ba", 4); got != 0 {
		t.Errorf("adjacent MinDist = %v", got)
	}
	if got := MinDist("aa", "cc", 4); got <= 0 {
		t.Errorf("far MinDist = %v, want > 0", got)
	}
	if got := MinDist("a", "ab", 4); got != -1 {
		t.Errorf("length mismatch = %v", got)
	}
	if got := MinDist("ad", "ad", 4); got != 0 {
		t.Errorf("identical MinDist = %v", got)
	}
}

// Property: words always have length min(m, len(xs)) and draw only from
// the first a letters.
func TestWordProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		m := 1 + rng.Intn(20)
		a := 2 + rng.Intn(8)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		w := Word(xs, m, a)
		wantLen := m
		if n < m {
			wantLen = n
		}
		if len(w) != wantLen {
			return false
		}
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] >= byte('a'+a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MinDist is symmetric and zero on identical words.
func TestMinDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := "abcd"
	randWord := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(4)])
		}
		return b.String()
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		w1, w2 := randWord(n), randWord(n)
		d12, d21 := MinDist(w1, w2, 4), MinDist(w2, w1, 4)
		if d12 != d21 {
			t.Fatalf("asymmetric: %q %q -> %v vs %v", w1, w2, d12, d21)
		}
		if MinDist(w1, w1, 4) != 0 {
			t.Fatalf("self distance nonzero for %q", w1)
		}
		if d12 < 0 {
			t.Fatalf("negative distance for %q %q", w1, w2)
		}
	}
}

func BenchmarkSlidingWords(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SlidingWords(xs, 16, 4, 4)
	}
}
