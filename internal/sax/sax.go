// Package sax implements Piecewise Aggregate Approximation (PAA,
// Definition 6) and Symbolic Aggregate approXimation (SAX, Definition 7)
// following Lin et al. [26]. CABD's correlation score represents a
// candidate's INN window as a SAX word and counts how often that word
// occurs across the whole series; the Luminol baseline uses SAX bitmaps.
package sax

import (
	"strings"

	"cabd/internal/stats"
)

// DefaultAlphabet is the alphabet size used by the correlation score.
// Lin et al. recommend 3-10 symbols; 4 keeps words discriminative on the
// short windows CABD produces.
const DefaultAlphabet = 4

// PAA reduces xs to m segment means (Definition 6). When m >= len(xs) the
// input is returned copied (each point is its own segment). Segment
// boundaries use the fractional scheme so uneven divisions distribute
// points fairly.
func PAA(xs []float64, m int) []float64 {
	n := len(xs)
	if n == 0 || m <= 0 {
		return nil
	}
	if m >= n {
		out := make([]float64, n)
		copy(out, xs)
		return out
	}
	out := make([]float64, m)
	// Fractional PAA: point j contributes to segment floor(j*m/n).
	counts := make([]float64, m)
	for j, v := range xs {
		seg := j * m / n
		out[seg] += v
		counts[seg]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= counts[i]
		}
	}
	return out
}

// Breakpoints returns the a-1 standard normal quantiles that split the
// real line into a equiprobable regions, the canonical SAX breakpoints.
func Breakpoints(a int) []float64 {
	if a < 2 {
		return nil
	}
	bp := make([]float64, a-1)
	for i := 1; i < a; i++ {
		bp[i-1] = stats.NormalQuantile(float64(i) / float64(a))
	}
	return bp
}

// Symbolize maps already-normalized values to letters 'a', 'b', ... using
// the equiprobable Gaussian breakpoints for alphabet size a.
func Symbolize(xs []float64, a int) string {
	bp := Breakpoints(a)
	var b strings.Builder
	b.Grow(len(xs))
	for _, v := range xs {
		idx := 0
		for idx < len(bp) && v > bp[idx] {
			idx++
		}
		b.WriteByte(byte('a' + idx))
	}
	return b.String()
}

// Word converts xs to a SAX word: standardize, PAA to m segments,
// symbolize with alphabet size a. An empty input yields "".
func Word(xs []float64, m, a int) string {
	if len(xs) == 0 {
		return ""
	}
	z := stats.Standardize(xs)
	return Symbolize(PAA(z, m), a)
}

// SlidingWords converts every length-w window of xs (stride 1) into a SAX
// word of m segments over alphabet a. Each window is standardized
// independently, following the standard SAX subsequence pipeline. Returns
// nil when w > len(xs) or parameters are degenerate.
func SlidingWords(xs []float64, w, m, a int) []string {
	n := len(xs)
	if w <= 0 || w > n || m <= 0 || a < 2 {
		return nil
	}
	words := make([]string, 0, n-w+1)
	for i := 0; i+w <= n; i++ {
		words = append(words, Word(xs[i:i+w], m, a))
	}
	return words
}

// Frequency returns the fraction of words equal to target. An empty word
// list returns 0.
func Frequency(words []string, target string) float64 {
	if len(words) == 0 {
		return 0
	}
	count := 0
	for _, w := range words {
		if w == target {
			count++
		}
	}
	return float64(count) / float64(len(words))
}

// MinDist is the SAX lower-bounding distance between two equal-length
// words under alphabet size a, per Lin et al. Symbols one step apart have
// distance 0; farther symbols use the breakpoint gap. Unequal lengths
// return -1.
func MinDist(w1, w2 string, a int) float64 {
	if len(w1) != len(w2) {
		return -1
	}
	bp := Breakpoints(a)
	var sum float64
	for i := 0; i < len(w1); i++ {
		r := int(w1[i] - 'a')
		c := int(w2[i] - 'a')
		if r > c {
			r, c = c, r
		}
		if c-r <= 1 {
			continue
		}
		d := bp[c-1] - bp[r]
		sum += d * d
	}
	return sum
}
