package obs

import (
	"context"
	"testing"
	"time"
)

func TestWallClockMovesForward(t *testing.T) {
	a := Wall.Now()
	b := Wall.Now()
	if b.Before(a) {
		t.Fatalf("Wall.Now went backwards: %v then %v", a, b)
	}
}

func TestSleep(t *testing.T) {
	ctx := context.Background()

	if err := Sleep(ctx, 0); err != nil {
		t.Fatalf("Sleep(ctx, 0) = %v, want nil", err)
	}
	if err := Sleep(ctx, -time.Second); err != nil {
		t.Fatalf("Sleep(ctx, -1s) = %v, want nil", err)
	}

	if err := Sleep(ctx, time.Microsecond); err != nil {
		t.Fatalf("Sleep(ctx, 1us) = %v, want nil", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := Sleep(cancelled, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep(cancelled, 1h) = %v, want context.Canceled", err)
	}
	if err := Sleep(cancelled, 0); err != context.Canceled {
		t.Fatalf("Sleep(cancelled, 0) = %v, want context.Canceled", err)
	}
}
