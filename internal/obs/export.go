package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// BucketCount is one cumulative histogram bucket of a stage snapshot.
type BucketCount struct {
	// LESeconds is the bucket's inclusive upper bound in seconds
	// (math.Inf(1) serialized as the string "+Inf" in the exposition;
	// the snapshot keeps the last bucket's bound at 0 with Inf=true).
	LESeconds float64 `json:"le_seconds"`
	Inf       bool    `json:"inf,omitempty"`
	Count     int64   `json:"count"`
}

// StageSnapshot is one stage's histogram at snapshot time.
type StageSnapshot struct {
	Stage        string        `json:"stage"`
	Count        int64         `json:"count"`
	TotalSeconds float64       `json:"total_seconds"`
	MaxSeconds   float64       `json:"max_seconds"`
	Buckets      []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time JSON-able view of a Recorder — the shape
// merged into BENCH_runtime.json and served through expvar.
type Snapshot struct {
	Counters       map[string]int64 `json:"counters"`
	Gauges         map[string]int64 `json:"gauges,omitempty"`
	DegradeReasons map[string]int64 `json:"degrade_reasons,omitempty"`
	Stages         []StageSnapshot  `json:"stages,omitempty"`
}

// Snapshot captures the recorder's current state. A nil recorder yields
// the zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	snap.Counters = make(map[string]int64, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		snap.Counters[c.String()] = r.counters[c].Load()
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if v := r.gauges[g].Load(); v != 0 {
			if snap.Gauges == nil {
				snap.Gauges = make(map[string]int64)
			}
			snap.Gauges[g.String()] = v
		}
	}
	snap.DegradeReasons = r.DegradeReasons()
	for s := Stage(0); s < NumStages; s++ {
		st := &r.stages[s]
		n := st.count.Load()
		if n == 0 {
			continue
		}
		ss := StageSnapshot{
			Stage:        s.String(),
			Count:        n,
			TotalSeconds: time.Duration(st.sumNS.Load()).Seconds(),
			MaxSeconds:   time.Duration(st.maxNS.Load()).Seconds(),
		}
		cum := int64(0)
		for b := 0; b < numBuckets; b++ {
			cum += st.buckets[b].Load()
			bc := BucketCount{Count: cum}
			if b < len(bucketBoundsNS) {
				bc.LESeconds = time.Duration(bucketBoundsNS[b]).Seconds()
			} else {
				bc.Inf = true
			}
			ss.Buckets = append(ss.Buckets, bc)
		}
		snap.Stages = append(snap.Stages, ss)
	}
	return snap
}

// WritePrometheus writes the recorder's state in the Prometheus text
// exposition format (version 0.0.4), metric names prefixed cabd_. Stage
// histograms appear as cabd_stage_duration_seconds{stage=...}; only
// stages with observations are emitted. A nil recorder writes nothing.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for c := Counter(0); c < NumCounters; c++ {
		if _, err := fmt.Fprintf(w, "# TYPE cabd_%s counter\ncabd_%s %d\n",
			c, c, r.counters[c].Load()); err != nil {
			return err
		}
	}
	if reasons := r.DegradeReasons(); len(reasons) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE cabd_degrade_reason_total counter\n"); err != nil {
			return err
		}
		keys := make([]string, 0, len(reasons))
		for k := range reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "cabd_degrade_reason_total{reason=%q} %d\n",
				k, reasons[k]); err != nil {
				return err
			}
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if _, err := fmt.Fprintf(w, "# TYPE cabd_%s gauge\ncabd_%s %d\n",
			g, g, r.gauges[g].Load()); err != nil {
			return err
		}
	}
	wroteType := false
	for s := Stage(0); s < NumStages; s++ {
		st := &r.stages[s]
		n := st.count.Load()
		if n == 0 {
			continue
		}
		if !wroteType {
			if _, err := fmt.Fprintf(w, "# TYPE cabd_stage_duration_seconds histogram\n"); err != nil {
				return err
			}
			wroteType = true
		}
		cum := int64(0)
		for b := 0; b < numBuckets; b++ {
			cum += st.buckets[b].Load()
			le := "+Inf"
			if b < len(bucketBoundsNS) {
				le = formatSeconds(bucketBoundsNS[b])
			}
			if _, err := fmt.Fprintf(w,
				"cabd_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n",
				s, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"cabd_stage_duration_seconds_sum{stage=%q} %s\ncabd_stage_duration_seconds_count{stage=%q} %d\n",
			s, strconv.FormatFloat(time.Duration(st.sumNS.Load()).Seconds(), 'g', -1, 64),
			s, n); err != nil {
			return err
		}
	}
	return nil
}

// formatSeconds renders a nanosecond bound as a minimal decimal-seconds
// string ("1e-05" style is avoided for readability: 10µs -> "0.00001").
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(time.Duration(ns).Seconds(), 'f', -1, 64)
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar registers the recorder under name in the process-wide
// expvar registry (served at /debug/vars when expvar's HTTP handler is
// installed); the published value is the live Snapshot. Publishing the
// same name twice — which expvar.Publish turns into a panic — returns an
// error instead.
func (r *Recorder) PublishExpvar(name string) error {
	if r == nil {
		return fmt.Errorf("obs: cannot publish a nil recorder")
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] || expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	expvarPublished[name] = true
	return nil
}
