package obs

import (
	"context"
	"sync"
	"time"
)

// SleepFunc waits for a duration or until the context is cancelled.
// Library code that must pause (backoff between retries, poll loops)
// takes one of these instead of calling time.Sleep, so tests substitute
// a recorder that asserts the exact schedule without sleeping. Sleep is
// the production implementation.
type SleepFunc func(ctx context.Context, d time.Duration) error

// Sleep waits d on the process wall clock, returning early with
// ctx.Err() on cancellation. It lives here — the one package allowed to
// touch real time — so clock-disciplined packages need no timer imports.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Clock abstracts time for span measurement so tests can assert exact
// stage timings instead of sleeping. Production recorders use Wall.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall is the real-time clock.
var Wall Clock = wallClock{}

// FakeClock is a deterministic Clock for tests: time moves only when the
// test says so. With a non-zero step, every Now call auto-advances the
// clock afterwards, so a span measured by two Now calls has a duration of
// exactly one step — no sleeps, no flakiness. Safe for concurrent use.
type FakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

// NewFakeClock returns a FakeClock starting at start (the Unix epoch when
// start is the zero time).
func NewFakeClock(start time.Time) *FakeClock {
	if start.IsZero() {
		start = time.Unix(0, 0).UTC()
	}
	return &FakeClock{t: start}
}

// Now returns the current fake time, then auto-advances by the configured
// step (if any).
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// SetStep makes every subsequent Now call auto-advance the clock by d
// after returning (0 disables auto-advance).
func (c *FakeClock) SetStep(d time.Duration) {
	c.mu.Lock()
	c.step = d
	c.mu.Unlock()
}
