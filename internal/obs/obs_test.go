package obs

import (
	"sync"
	"testing"
	"time"
)

func TestFakeClockAdvanceAndStep(t *testing.T) {
	c := NewFakeClock(time.Time{})
	t0 := c.Now()
	if got := c.Now(); !got.Equal(t0) {
		t.Fatalf("clock moved without Advance: %v vs %v", got, t0)
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("Advance(3s) moved %v", got)
	}
	c.SetStep(time.Millisecond)
	a := c.Now()
	b := c.Now()
	if d := b.Sub(a); d != time.Millisecond {
		t.Fatalf("auto-step delta = %v, want 1ms", d)
	}
}

func TestSpanExactTiming(t *testing.T) {
	clock := NewFakeClock(time.Time{})
	r := NewWithClock(clock)
	sp := r.StartStage(StageINNScore)
	clock.Advance(5 * time.Millisecond)
	if d := sp.End(); d != 5*time.Millisecond {
		t.Fatalf("span duration = %v, want 5ms", d)
	}
	if n := r.StageCount(StageINNScore); n != 1 {
		t.Fatalf("stage count = %d, want 1", n)
	}
	if tot := r.StageTotal(StageINNScore); tot != 5*time.Millisecond {
		t.Fatalf("stage total = %v, want 5ms", tot)
	}
	// 5 ms falls in the (1ms, 10ms] bucket: cumulative counts must be 0
	// through the 1ms bound and 1 from the 10ms bound on.
	snap := r.Snapshot()
	if len(snap.Stages) != 1 || snap.Stages[0].Stage != "inn_score" {
		t.Fatalf("snapshot stages = %+v", snap.Stages)
	}
	for _, b := range snap.Stages[0].Buckets {
		want := int64(1)
		if !b.Inf && b.LESeconds < 0.005 {
			want = 0
		}
		if b.Count != want {
			t.Fatalf("bucket le=%v inf=%v count=%d, want %d", b.LESeconds, b.Inf, b.Count, want)
		}
	}
	if snap.Stages[0].MaxSeconds != 0.005 {
		t.Fatalf("max = %v, want 0.005", snap.Stages[0].MaxSeconds)
	}
}

func TestTraceAccumulatesExactTimings(t *testing.T) {
	clock := NewFakeClock(time.Time{})
	clock.SetStep(2 * time.Millisecond) // every Now() call advances 2ms
	r := NewWithClock(clock)
	tr := r.NewTrace()

	// Each span performs exactly two Now calls (start + end), so each
	// records exactly one step.
	tr.Do(StageCandidates, func() {})
	tr.Do(StageINNScore, func() {})
	sp := tr.Start(StageALRound)
	sp.End()
	sp = tr.Start(StageALRound)
	sp.End()

	tm := tr.Timings()
	if d := tm.Get(StageCandidates); d != 2*time.Millisecond {
		t.Fatalf("candidates = %v, want 2ms", d)
	}
	if d := tm.Get(StageINNScore); d != 2*time.Millisecond {
		t.Fatalf("inn_score = %v, want 2ms", d)
	}
	if d := tm.Get(StageALRound); d != 4*time.Millisecond {
		t.Fatalf("al_round = %v, want 4ms (two rounds)", d)
	}
	if tot := tm.Total(); tot != 8*time.Millisecond {
		t.Fatalf("total = %v, want 8ms", tot)
	}
	if n := r.StageCount(StageALRound); n != 2 {
		t.Fatalf("recorder al_round count = %d, want 2", n)
	}
	secs := tm.Seconds()
	if len(secs) != 3 || secs["al_round"] != 0.004 {
		t.Fatalf("Seconds() = %v", secs)
	}
}

func TestStageTimingsMergeAndBatchExclusion(t *testing.T) {
	var a, b StageTimings
	a[StageSanitize] = time.Second
	b[StageSanitize] = time.Second
	b[StageAssemble] = 2 * time.Second
	b[StageBatchSeries] = 10 * time.Second
	a.Merge(b)
	if a.Get(StageSanitize) != 2*time.Second || a.Get(StageAssemble) != 2*time.Second {
		t.Fatalf("merge = %v", a)
	}
	// Total excludes the batch wrapper span, which overlaps whole runs.
	if tot := a.Total(); tot != 4*time.Second {
		t.Fatalf("total = %v, want 4s", tot)
	}
}

func TestCountersGaugesReasons(t *testing.T) {
	r := New()
	r.Add(CounterCandidates, 7)
	r.Add(CounterCandidates, 3)
	r.Add(CounterOracleQueries, 2)
	if got := r.Count(CounterCandidates); got != 10 {
		t.Fatalf("candidates = %d", got)
	}
	r.AddGauge(GaugeBatchInFlight, 2)
	r.AddGauge(GaugeBatchInFlight, -1)
	if got := r.GaugeValue(GaugeBatchInFlight); got != 1 {
		t.Fatalf("gauge = %d", got)
	}
	r.SetGauge(GaugeStreamWindow, 512)
	if got := r.GaugeValue(GaugeStreamWindow); got != 512 {
		t.Fatalf("gauge set = %d", got)
	}
	r.Degraded("candidate explosion")
	r.Degraded("candidate explosion")
	r.Degraded("deadline")
	if got := r.Count(CounterDegradations); got != 3 {
		t.Fatalf("degradations = %d", got)
	}
	reasons := r.DegradeReasons()
	if reasons["candidate explosion"] != 2 || reasons["deadline"] != 1 {
		t.Fatalf("reasons = %v", reasons)
	}
	// The returned map is a copy.
	reasons["deadline"] = 99
	if r.DegradeReasons()["deadline"] != 1 {
		t.Fatal("DegradeReasons leaked internal state")
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Add(CounterCandidates, 1)
	r.AddGauge(GaugeBatchInFlight, 1)
	r.SetGauge(GaugeStreamWindow, 1)
	r.Degraded("x")
	r.Observe(StageSanitize, time.Second)
	sp := r.StartStage(StageSanitize)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if r.Count(CounterCandidates) != 0 || r.StageCount(StageSanitize) != 0 {
		t.Fatal("nil recorder recorded something")
	}
	if tr := r.NewTrace(); tr != nil {
		t.Fatal("nil recorder produced a trace")
	}
	var tr *Trace
	tr.Do(StageAssemble, func() {})
	tr.Add(CounterCandidates, 1)
	if sp := tr.Start(StageAssemble); sp.End() != 0 {
		t.Fatal("nil trace span measured time")
	}
	if tm := tr.Timings(); tm != (StageTimings{}) {
		t.Fatalf("nil trace timings = %v", tm)
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Stages != nil {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if r.Clock() != Wall {
		t.Fatal("nil recorder clock != Wall")
	}
}

func TestStringers(t *testing.T) {
	if StageSanitize.String() != "sanitize" || StageBatchSeries.String() != "batch_series" {
		t.Fatal("stage names")
	}
	if CounterRankMemoHits.String() != "rank_memo_hits_total" {
		t.Fatal("counter names")
	}
	if GaugeStreamWindow.String() != "stream_window" {
		t.Fatal("gauge names")
	}
	if Stage(-1).String() != "unknown" || Counter(99).String() != "unknown" || Gauge(99).String() != "unknown" {
		t.Fatal("out-of-range stringers")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(CounterCandidates, 1)
				r.Observe(Stage(i%int(NumStages)), time.Duration(i))
				r.Degraded("load")
				r.AddGauge(GaugeBatchInFlight, 1)
				r.AddGauge(GaugeBatchInFlight, -1)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Count(CounterCandidates); got != 4000 {
		t.Fatalf("candidates = %d, want 4000", got)
	}
	if got := r.Count(CounterDegradations); got != 4000 {
		t.Fatalf("degradations = %d, want 4000", got)
	}
	if got := r.GaugeValue(GaugeBatchInFlight); got != 0 {
		t.Fatalf("in-flight = %d, want 0", got)
	}
	var total int64
	for s := Stage(0); s < NumStages; s++ {
		total += r.StageCount(s)
	}
	if total != 4000 {
		t.Fatalf("observations = %d, want 4000", total)
	}
}
