// Package obs is the stdlib-only observability layer of the detection
// pipeline: stage spans (sanitize, candidate generation, INN scoring,
// bootstrap, classification, active-learning rounds, assembly), atomic
// counters and gauges, and duration histograms, exported as Prometheus
// text exposition and expvar JSON.
//
// A nil *Recorder is the zero-overhead off switch: every method on a nil
// receiver is a no-op that touches no clock and allocates nothing, so the
// pipeline threads one pointer unconditionally and production code has a
// single code path. Recorders are safe for concurrent use and cheap to
// share across batch workers and streaming detectors.
package obs

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage span.
type Stage int

// Pipeline stages, in execution order. StageBatchSeries is the
// per-series wall time of a batch run (it wraps the whole per-series
// pipeline, so it is not part of a single run's stage sum).
const (
	StageSanitize Stage = iota
	StageCandidates
	StageINNScore
	StageBootstrap
	StageClassify
	StageALRound
	StageAssemble
	StageBatchSeries
	// StageHTTPRequest is the whole-request wall time of one served HTTP
	// request (internal/server); like StageBatchSeries it wraps entire
	// runs and is not part of a single run's stage sum.
	StageHTTPRequest
	NumStages
)

var stageNames = [NumStages]string{
	"sanitize", "candidates", "inn_score", "bootstrap",
	"classify", "al_round", "assemble", "batch_series", "http_request",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Counter identifies one monotonic counter.
type Counter int

// Pipeline counters.
const (
	// CounterCandidates counts candidate points selected by candidate
	// estimation across runs.
	CounterCandidates Counter = iota
	// CounterOracleQueries counts labels requested from the labeler.
	CounterOracleQueries
	// CounterDegradations counts FixedKNN downgrades (see DegradeReason
	// labels in the exposition).
	CounterDegradations
	// CounterPanicsContained counts pipeline panics recovered by the
	// facade or a batch worker instead of crashing the process.
	CounterPanicsContained
	// CounterBadStreamValues counts NaN/Inf/out-of-range observations
	// intercepted by StreamDetector.Push.
	CounterBadStreamValues
	// CounterRankMemoHits / CounterRankMemoMisses count rank-probe memo
	// lookups inside the INN engine.
	CounterRankMemoHits
	CounterRankMemoMisses
	// CounterBatchSeries counts series processed by batch entry points;
	// CounterBatchFailures counts the ones that returned an error.
	CounterBatchSeries
	CounterBatchFailures
	// CounterHTTPRequests counts HTTP requests served by internal/server;
	// CounterHTTPShed counts the ones rejected with 429 because the
	// worker-pool queue (or a session/stream cap) was full.
	CounterHTTPRequests
	CounterHTTPShed
	// CounterIdleEvictions counts streaming detectors and labeling
	// sessions reclaimed by the server's idle janitor.
	CounterIdleEvictions
	// CounterIngestAccepted / CounterIngestDuplicates count forwarded
	// detections accepted by the ingest endpoint and at-least-once
	// redeliveries deduplicated by idempotency key.
	CounterIngestAccepted
	CounterIngestDuplicates
	// CounterAgentForwarded / CounterAgentSpilled / CounterAgentReplayed
	// / CounterAgentSpillDropped / CounterAgentRetries instrument the
	// collector agent's forwarder: detections delivered upstream,
	// detections parked in the disk spill buffer on disconnect, spilled
	// detections replayed after reconnect, spilled detections dropped at
	// the buffer's byte cap, and send attempts that failed and backed
	// off.
	CounterAgentForwarded
	CounterAgentSpilled
	CounterAgentReplayed
	CounterAgentSpillDropped
	CounterAgentRetries
	// CounterSessionLabels counts labels posted into interactive
	// server-side labeling sessions.
	CounterSessionLabels
	// CounterStreamHopTimeouts counts streaming analyses abandoned
	// because the per-hop deadline expired before the detector finished
	// (the degraded-but-completed analyses count under
	// CounterDegradations instead).
	CounterStreamHopTimeouts
	NumCounters
)

var counterNames = [NumCounters]string{
	"candidates_total", "oracle_queries_total", "degradations_total",
	"panics_contained_total", "bad_stream_values_total",
	"rank_memo_hits_total", "rank_memo_misses_total",
	"batch_series_total", "batch_failures_total",
	"http_requests_total", "http_shed_total",
	"idle_evictions_total",
	"ingest_accepted_total", "ingest_duplicates_total",
	"agent_forwarded_total", "agent_spilled_total", "agent_replayed_total",
	"agent_spill_dropped_total", "agent_retries_total",
	"session_labels_total",
	"stream_hop_timeouts_total",
}

// String implements fmt.Stringer.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Gauge identifies one instantaneous value.
type Gauge int

// Pipeline gauges.
const (
	// GaugeBatchInFlight is the number of series currently being
	// detected by batch workers.
	GaugeBatchInFlight Gauge = iota
	// GaugeStreamWindow is the current fill of the streaming analysis
	// window.
	GaugeStreamWindow
	// GaugeQueueDepth is the number of requests parked in the serving
	// worker-pool queue.
	GaugeQueueDepth
	// GaugeSessionsActive / GaugeStreamsActive count live labeling
	// sessions and streaming detectors held by the server.
	GaugeSessionsActive
	GaugeStreamsActive
	NumGauges
)

var gaugeNames = [NumGauges]string{
	"batch_in_flight", "stream_window",
	"queue_depth", "sessions_active", "streams_active",
}

// String implements fmt.Stringer.
func (g Gauge) String() string {
	if g < 0 || g >= NumGauges {
		return "unknown"
	}
	return gaugeNames[g]
}

// bucketBoundsNS are the histogram upper bounds in nanoseconds
// (10µs .. 10s, decade steps), plus an implicit +Inf bucket.
var bucketBoundsNS = [...]int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// numBuckets includes the +Inf overflow bucket.
const numBuckets = len(bucketBoundsNS) + 1

// stageStats is one stage's atomic histogram: observation count, summed
// and maximum duration, and cumulative-style bucket counts.
type stageStats struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func (st *stageStats) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	st.count.Add(1)
	st.sumNS.Add(ns)
	for {
		cur := st.maxNS.Load()
		if ns <= cur || st.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	b := numBuckets - 1
	for i, bound := range bucketBoundsNS {
		if ns <= bound {
			b = i
			break
		}
	}
	st.buckets[b].Add(1)
}

// Recorder aggregates pipeline metrics. All methods are safe on a nil
// receiver (no-ops) and for concurrent use on a non-nil one.
type Recorder struct {
	clock    Clock
	counters [NumCounters]atomic.Int64
	gauges   [NumGauges]atomic.Int64
	stages   [NumStages]stageStats

	mu      sync.Mutex
	reasons map[string]int64 // degradation reason -> count
}

// New returns a Recorder on the wall clock.
func New() *Recorder { return NewWithClock(Wall) }

// NewWithClock returns a Recorder measuring spans with c (tests inject a
// FakeClock to assert exact timings).
func NewWithClock(c Clock) *Recorder {
	if c == nil {
		c = Wall
	}
	return &Recorder{clock: c, reasons: map[string]int64{}}
}

// Clock returns the recorder's span clock (Wall for a nil recorder).
func (r *Recorder) Clock() Clock {
	if r == nil {
		return Wall
	}
	return r.clock
}

// Add increments counter c by delta.
func (r *Recorder) Add(c Counter, delta int64) {
	if r == nil || c < 0 || c >= NumCounters {
		return
	}
	r.counters[c].Add(delta)
}

// Count returns the current value of counter c (0 on a nil recorder).
func (r *Recorder) Count(c Counter) int64 {
	if r == nil || c < 0 || c >= NumCounters {
		return 0
	}
	return r.counters[c].Load()
}

// AddGauge moves gauge g by delta (use +1/-1 for in-flight tracking).
func (r *Recorder) AddGauge(g Gauge, delta int64) {
	if r == nil || g < 0 || g >= NumGauges {
		return
	}
	r.gauges[g].Add(delta)
}

// SetGauge sets gauge g to v.
func (r *Recorder) SetGauge(g Gauge, v int64) {
	if r == nil || g < 0 || g >= NumGauges {
		return
	}
	r.gauges[g].Store(v)
}

// GaugeValue returns the current value of gauge g.
func (r *Recorder) GaugeValue(g Gauge) int64 {
	if r == nil || g < 0 || g >= NumGauges {
		return 0
	}
	return r.gauges[g].Load()
}

// Degraded records one FixedKNN downgrade with its reason label.
func (r *Recorder) Degraded(reason string) {
	if r == nil {
		return
	}
	r.counters[CounterDegradations].Add(1)
	r.mu.Lock()
	r.reasons[reason]++
	r.mu.Unlock()
}

// DegradeReasons returns a copy of the per-reason downgrade counts.
func (r *Recorder) DegradeReasons() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.reasons) == 0 {
		return nil
	}
	out := make(map[string]int64, len(r.reasons))
	for k, v := range r.reasons {
		out[k] = v
	}
	return out
}

// Observe records one duration into stage s's histogram.
func (r *Recorder) Observe(s Stage, d time.Duration) {
	if r == nil || s < 0 || s >= NumStages {
		return
	}
	r.stages[s].observe(d)
}

// StageCount returns the number of observations recorded for stage s.
func (r *Recorder) StageCount(s Stage) int64 {
	if r == nil || s < 0 || s >= NumStages {
		return 0
	}
	return r.stages[s].count.Load()
}

// StageTotal returns the summed duration recorded for stage s.
func (r *Recorder) StageTotal(s Stage) time.Duration {
	if r == nil || s < 0 || s >= NumStages {
		return 0
	}
	return time.Duration(r.stages[s].sumNS.Load())
}

// Span is one in-flight stage measurement on the shared recorder.
type Span struct {
	r     *Recorder
	stage Stage
	start time.Time
}

// StartStage opens a span for stage s; End records it. On a nil recorder
// the span is inert and End is free.
func (r *Recorder) StartStage(s Stage) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, stage: s, start: r.clock.Now()}
}

// End closes the span and returns its duration (0 for an inert span).
func (sp Span) End() time.Duration {
	if sp.r == nil {
		return 0
	}
	d := sp.r.clock.Now().Sub(sp.start)
	sp.r.Observe(sp.stage, d)
	return d
}

// StageTimings is one run's per-stage wall time, attached to detection
// results when a recorder is installed.
type StageTimings [NumStages]time.Duration

// Get returns the recorded duration of stage s.
func (st StageTimings) Get(s Stage) time.Duration {
	if s < 0 || s >= NumStages {
		return 0
	}
	return st[s]
}

// Total returns the summed duration of the run's own stages
// (StageBatchSeries and StageHTTPRequest wrap whole runs and are
// excluded).
func (st StageTimings) Total() time.Duration {
	var t time.Duration
	for s, d := range st {
		if Stage(s) == StageBatchSeries || Stage(s) == StageHTTPRequest {
			continue
		}
		t += d
	}
	return t
}

// Merge adds other's durations stage by stage.
func (st *StageTimings) Merge(other StageTimings) {
	for s, d := range other {
		st[s] += d
	}
}

// Seconds returns the non-zero stages as a name -> seconds map (nil when
// nothing was recorded).
func (st StageTimings) Seconds() map[string]float64 {
	var out map[string]float64
	for s, d := range st {
		if d <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[Stage(s).String()] = d.Seconds()
	}
	return out
}

// Trace accumulates one run's stage timings locally and forwards each
// span to the shared recorder. A nil *Trace (from a nil recorder) is the
// no-op fast path. Spans of one trace must not overlap across goroutines
// (the pipeline opens them sequentially); the underlying recorder is
// concurrency-safe.
type Trace struct {
	rec     *Recorder
	timings StageTimings
}

// NewTrace returns a run-scoped trace, or nil on a nil recorder.
func (r *Recorder) NewTrace() *Trace {
	if r == nil {
		return nil
	}
	return &Trace{rec: r}
}

// TraceSpan is one in-flight stage measurement on a trace.
type TraceSpan struct {
	t     *Trace
	stage Stage
	start time.Time
}

// Start opens a span for stage s; End records it into both the trace's
// timings and the shared recorder.
func (t *Trace) Start(s Stage) TraceSpan {
	if t == nil {
		return TraceSpan{}
	}
	return TraceSpan{t: t, stage: s, start: t.rec.clock.Now()}
}

// End closes the span and returns its duration.
func (sp TraceSpan) End() time.Duration {
	if sp.t == nil {
		return 0
	}
	d := sp.t.rec.clock.Now().Sub(sp.start)
	if d < 0 {
		d = 0
	}
	if sp.stage >= 0 && sp.stage < NumStages {
		sp.t.timings[sp.stage] += d
	}
	sp.t.rec.Observe(sp.stage, d)
	return d
}

// Do runs f as stage s: a span wraps it and the goroutine carries a
// cabd_stage pprof label for the duration (inherited by any worker
// goroutines f spawns), so CPU profiles break down by pipeline stage. On
// a nil trace f runs directly with no labeling and no clock reads.
func (t *Trace) Do(s Stage, f func()) {
	if t == nil {
		f()
		return
	}
	sp := t.Start(s)
	pprof.Do(context.Background(), pprof.Labels("cabd_stage", s.String()),
		func(context.Context) { f() })
	sp.End()
}

// Timings returns the trace's accumulated per-stage durations.
func (t *Trace) Timings() StageTimings {
	if t == nil {
		return StageTimings{}
	}
	return t.timings
}

// Add forwards to the underlying recorder (nil-safe).
func (t *Trace) Add(c Counter, delta int64) {
	if t == nil {
		return
	}
	t.rec.Add(c, delta)
}
