package obs

import (
	"encoding/json"
	"expvar"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fixtureRecorder builds a deterministic recorder on a fake clock.
func fixtureRecorder() *Recorder {
	clock := NewFakeClock(time.Time{})
	r := NewWithClock(clock)
	r.Add(CounterCandidates, 12)
	r.Add(CounterOracleQueries, 4)
	r.Degraded("candidate count 9000 exceeds bound 4096")
	r.SetGauge(GaugeStreamWindow, 256)
	sp := r.StartStage(StageINNScore)
	clock.Advance(5 * time.Millisecond)
	sp.End()
	sp = r.StartStage(StageINNScore)
	clock.Advance(20 * time.Millisecond)
	sp.End()
	sp = r.StartStage(StageSanitize)
	clock.Advance(3 * time.Microsecond)
	sp.End()
	return r
}

func TestPrometheusExposition(t *testing.T) {
	var b strings.Builder
	if err := fixtureRecorder().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cabd_candidates_total counter",
		"cabd_candidates_total 12",
		"cabd_oracle_queries_total 4",
		"cabd_degradations_total 1",
		`cabd_degrade_reason_total{reason="candidate count 9000 exceeds bound 4096"} 1`,
		"# TYPE cabd_stream_window gauge",
		"cabd_stream_window 256",
		"# TYPE cabd_stage_duration_seconds histogram",
		// 5ms and 20ms: cumulative bucket at le=0.01 holds only the 5ms span.
		`cabd_stage_duration_seconds_bucket{stage="inn_score",le="0.01"} 1`,
		`cabd_stage_duration_seconds_bucket{stage="inn_score",le="+Inf"} 2`,
		`cabd_stage_duration_seconds_sum{stage="inn_score"} 0.025`,
		`cabd_stage_duration_seconds_count{stage="inn_score"} 2`,
		// 3µs lands in the first (10µs) bucket.
		`cabd_stage_duration_seconds_bucket{stage="sanitize",le="0.00001"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Stages without observations must not appear.
	if strings.Contains(out, `stage="assemble"`) {
		t.Error("unobserved stage emitted")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap := fixtureRecorder().Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", snap, back)
	}
	if back.Counters["candidates_total"] != 12 {
		t.Fatalf("counters = %v", back.Counters)
	}
	if len(back.Stages) != 2 {
		t.Fatalf("stages = %+v", back.Stages)
	}
	// Stages appear in enum order: sanitize before inn_score.
	if back.Stages[0].Stage != "sanitize" || back.Stages[1].Stage != "inn_score" {
		t.Fatalf("stage order = %s, %s", back.Stages[0].Stage, back.Stages[1].Stage)
	}
	if back.Stages[1].TotalSeconds != 0.025 || back.Stages[1].Count != 2 {
		t.Fatalf("inn_score snapshot = %+v", back.Stages[1])
	}
}

func TestPublishExpvar(t *testing.T) {
	r := fixtureRecorder()
	const name = "cabd_test_recorder"
	if err := r.PublishExpvar(name); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishExpvar(name); err == nil {
		t.Fatal("duplicate publish did not error")
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar not registered")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not snapshot JSON: %v", err)
	}
	if snap.Counters["oracle_queries_total"] != 4 {
		t.Fatalf("expvar snapshot = %+v", snap)
	}
	var nilRec *Recorder
	if err := nilRec.PublishExpvar("cabd_nil"); err == nil {
		t.Fatal("nil publish did not error")
	}
}
