package gmm

import (
	"math"
	"math/rand"
	"testing"
)

func sample(rng *rand.Rand, mu []float64, sd float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, len(mu))
		for j := range row {
			row[j] = mu[j] + rng.NormFloat64()*sd
		}
		out[i] = row
	}
	return out
}

func TestFitTwoComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := append(sample(rng, []float64{0, 0}, 0.5, 100),
		sample(rng, []float64{8, 8}, 0.5, 100)...)
	m := Fit(data, Config{K: 2, Restarts: 3}, rng)
	if m == nil {
		t.Fatal("fit returned nil")
	}
	// One mean near (0,0), the other near (8,8).
	near := func(mu []float64, tx, ty float64) bool {
		return math.Abs(mu[0]-tx) < 1 && math.Abs(mu[1]-ty) < 1
	}
	ok := (near(m.Means[0], 0, 0) && near(m.Means[1], 8, 8)) ||
		(near(m.Means[1], 0, 0) && near(m.Means[0], 8, 8))
	if !ok {
		t.Errorf("means = %v", m.Means)
	}
	// Weights roughly balanced and summing to 1.
	if math.Abs(m.Weights[0]+m.Weights[1]-1) > 1e-9 {
		t.Errorf("weights don't sum to 1: %v", m.Weights)
	}
	if m.Weights[0] < 0.3 || m.Weights[0] > 0.7 {
		t.Errorf("weights unbalanced: %v", m.Weights)
	}
}

func TestAssignSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := sample(rng, []float64{-5}, 0.4, 80)
	b := sample(rng, []float64{5}, 0.4, 80)
	m := Fit(append(a, b...), Config{K: 2}, rng)
	ca := m.Assign(a[0])
	for _, x := range a {
		if m.Assign(x) != ca {
			t.Fatal("cluster A split")
		}
	}
	for _, x := range b {
		if m.Assign(x) == ca {
			t.Fatal("clusters merged")
		}
	}
}

func TestResponsibilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := append(sample(rng, []float64{0, 0, 0}, 1, 60),
		sample(rng, []float64{4, 4, 4}, 1, 60)...)
	m := Fit(data, Config{K: 3}, rng)
	for _, x := range data[:10] {
		r := m.Responsibilities(x)
		var s float64
		for _, v := range r {
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("responsibility out of range: %v", r)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("responsibilities sum to %v", s)
		}
	}
}

func TestLogLikelihoodImprovesOverBadModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := append(sample(rng, []float64{0}, 0.3, 100),
		sample(rng, []float64{10}, 0.3, 100)...)
	good := Fit(data, Config{K: 2, Restarts: 3}, rng)
	single := Fit(data, Config{K: 1}, rng)
	if good.LogLikelihood(data) <= single.LogLikelihood(data) {
		t.Errorf("2-component LL %v not better than 1-component %v",
			good.LogLikelihood(data), single.LogLikelihood(data))
	}
}

func TestDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if m := Fit(nil, Config{K: 2}, rng); m != nil {
		t.Error("nil data should yield nil model")
	}
	// Constant data must not blow up (covariance regularization).
	data := make([][]float64, 20)
	for i := range data {
		data[i] = []float64{1, 1}
	}
	m := Fit(data, Config{K: 2}, rng)
	if m == nil {
		t.Fatal("constant data fit failed")
	}
	r := m.Responsibilities([]float64{1, 1})
	var s float64
	for _, v := range r {
		s += v
	}
	if math.Abs(s-1) > 1e-6 {
		t.Errorf("constant-data responsibilities sum to %v", s)
	}
}

func TestKShrinksToN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := [][]float64{{0}, {5}}
	m := Fit(data, Config{K: 4}, rng)
	if m == nil || m.K() != 2 {
		t.Fatalf("expected K=2, got %v", m)
	}
}

func TestLogSumExpStability(t *testing.T) {
	// Large negative logs must not underflow to -Inf incorrectly.
	got := logSumExp([]float64{-1000, -1000})
	want := -1000 + math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("logSumExp = %v, want %v", got, want)
	}
	if v := logSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(v, -1) {
		t.Errorf("all -Inf logSumExp = %v", v)
	}
}

func TestBICSelectsTrueComponentCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := append(sample(rng, []float64{-6}, 0.5, 120),
		sample(rng, []float64{6}, 0.5, 120)...)
	_, k := FitBestK(data, 5, Config{Restarts: 2}, rng)
	if k != 2 {
		t.Errorf("BIC selected K=%d, want 2", k)
	}
}

func TestBICPenalizesOverfit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := sample(rng, []float64{0, 0}, 1, 150)
	m1 := Fit(data, Config{K: 1}, rng)
	m5 := Fit(data, Config{K: 5}, rng)
	if m1.BIC(data) >= m5.BIC(data) {
		t.Errorf("single-component BIC %v not below 5-component %v",
			m1.BIC(data), m5.BIC(data))
	}
}

// TestBetterBICTieBreak pins FitBestK's model-selection rule at its
// edges: an exact BIC tie keeps the incumbent (K ascends, so ties
// resolve to the fewest components — the parsimony choice a strict <
// encodes), a NaN BIC from a degenerate likelihood never wins (not even
// against the +Inf sentinel), and anything finite beats the sentinel.
func TestBetterBICTieBreak(t *testing.T) {
	cases := []struct {
		name            string
		candidate, best float64
		want            bool
	}{
		{"strictly lower wins", 10, 11, true},
		{"strictly higher loses", 11, 10, false},
		{"exact tie keeps incumbent (smaller K)", 10, 10, false},
		{"finite beats the +Inf sentinel", 1e300, math.Inf(1), true},
		{"NaN never wins", math.NaN(), math.Inf(1), false},
		// A NaN incumbent is unreachable (NaN never wins above), and the
		// comparison stays false-safe if one ever appeared.
		{"NaN incumbent: comparison stays false", 10, math.NaN(), false},
	}
	for _, tc := range cases {
		if got := betterBIC(tc.candidate, tc.best); got != tc.want {
			t.Errorf("%s: betterBIC(%v, %v) = %v, want %v",
				tc.name, tc.candidate, tc.best, got, tc.want)
		}
	}
}
