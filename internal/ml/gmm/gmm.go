// Package gmm implements a Gaussian Mixture Model fit with
// Expectation-Maximization. CABD's unsupervised bootstrap clusters
// candidate score vectors into four groups with a GMM (Section IV: "we use
// the unsupervised Gaussian Mixture clustering algorithm because it works
// nicely with clusters that are not round shaped") and assigns the labels
// {single anomaly, collective anomaly, change point, normal} to the groups
// from their observed characteristics (Figure 3).
package gmm

import (
	"math"
	"math/rand"

	"cabd/internal/ml/kmeans"
	"cabd/internal/ml/linalg"
)

// Model is a fitted mixture of k multivariate Gaussians over d dimensions.
type Model struct {
	Weights []float64     // mixing proportions, sum to 1
	Means   [][]float64   // k x d
	chol    [][][]float64 // Cholesky factors of the k covariances
	dim     int
}

// Config controls the EM fit.
type Config struct {
	K        int     // number of components (CABD uses 4)
	MaxIter  int     // EM iterations cap (default 100)
	Tol      float64 // log-likelihood convergence tolerance (default 1e-6)
	RegEps   float64 // covariance ridge (default 1e-6)
	Restarts int     // k-means++ restarts (default 1)
}

func (c *Config) defaults() {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.RegEps <= 0 {
		c.RegEps = 1e-6
	}
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
}

// Fit estimates a GMM over data (rows are observations) by EM initialized
// from k-means++. It returns the model with the best final log-likelihood
// across cfg.Restarts runs. rng makes runs reproducible.
func Fit(data [][]float64, cfg Config, rng *rand.Rand) *Model {
	cfg.defaults()
	n := len(data)
	if n == 0 || cfg.K <= 0 {
		return nil
	}
	if cfg.K > n {
		cfg.K = n
	}
	var best *Model
	bestLL := math.Inf(-1)
	for r := 0; r < cfg.Restarts; r++ {
		m, ll := fitOnce(data, cfg, rng)
		if m != nil && ll > bestLL {
			best, bestLL = m, ll
		}
	}
	return best
}

func fitOnce(data [][]float64, cfg Config, rng *rand.Rand) (*Model, float64) {
	n, d := len(data), len(data[0])
	k := cfg.K
	km := kmeans.Run(data, k, 50, rng)
	// Initialize parameters from the k-means partition.
	weights := make([]float64, k)
	means := make([][]float64, k)
	covs := make([][][]float64, k)
	groups := make([][][]float64, k)
	for i, row := range data {
		c := km.Assignment[i]
		groups[c] = append(groups[c], row)
	}
	for c := 0; c < k; c++ {
		if len(groups[c]) == 0 {
			groups[c] = [][]float64{data[rng.Intn(n)]}
		}
		weights[c] = float64(len(groups[c])) / float64(n)
		means[c] = linalg.MeanVec(groups[c])
		covs[c] = linalg.Regularize(linalg.Covariance(groups[c], means[c]), cfg.RegEps)
	}
	resp := linalg.Zeros(n, k)
	logComp := make([]float64, k)
	prevLL := math.Inf(-1)
	var chols [][][]float64
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Factor covariances, regularizing harder on failure.
		chols = make([][][]float64, k)
		for c := 0; c < k; c++ {
			l, err := linalg.Cholesky(covs[c])
			for tries := 0; err != nil && tries < 8; tries++ {
				covs[c] = linalg.Regularize(covs[c], math.Pow(10, float64(tries))*1e-5)
				l, err = linalg.Cholesky(covs[c])
			}
			if err != nil {
				return nil, math.Inf(-1)
			}
			chols[c] = l
		}
		// E-step.
		var ll float64
		for i, row := range data {
			for c := 0; c < k; c++ {
				logComp[c] = math.Log(weights[c]+1e-300) +
					linalg.GaussianLogPDF(row, means[c], chols[c])
			}
			lse := logSumExp(logComp)
			ll += lse
			for c := 0; c < k; c++ {
				resp[i][c] = math.Exp(logComp[c] - lse)
			}
		}
		// M-step.
		for c := 0; c < k; c++ {
			var nc float64
			for i := 0; i < n; i++ {
				nc += resp[i][c]
			}
			if nc < 1e-10 {
				// Collapse guard: re-seed on a random point.
				means[c] = append([]float64(nil), data[rng.Intn(n)]...)
				covs[c] = linalg.Regularize(linalg.Eye(d), 0)
				weights[c] = 1.0 / float64(n)
				continue
			}
			weights[c] = nc / float64(n)
			mu := make([]float64, d)
			for i, row := range data {
				for j, v := range row {
					mu[j] += resp[i][c] * v
				}
			}
			for j := range mu {
				mu[j] /= nc
			}
			means[c] = mu
			cov := linalg.Zeros(d, d)
			for i, row := range data {
				w := resp[i][c]
				for a := 0; a < d; a++ {
					da := row[a] - mu[a]
					for b := a; b < d; b++ {
						cov[a][b] += w * da * (row[b] - mu[b])
					}
				}
			}
			for a := 0; a < d; a++ {
				for b := a; b < d; b++ {
					cov[a][b] /= nc
					cov[b][a] = cov[a][b]
				}
			}
			covs[c] = linalg.Regularize(cov, cfg.RegEps)
		}
		if math.Abs(ll-prevLL) < cfg.Tol*(1+math.Abs(ll)) {
			prevLL = ll
			break
		}
		prevLL = ll
	}
	return &Model{Weights: weights, Means: means, chol: chols, dim: d}, prevLL
}

// K returns the number of mixture components.
func (m *Model) K() int { return len(m.Weights) }

// Responsibilities returns P(component | x) for each component.
func (m *Model) Responsibilities(x []float64) []float64 {
	k := m.K()
	lc := make([]float64, k)
	for c := 0; c < k; c++ {
		lc[c] = math.Log(m.Weights[c]+1e-300) +
			linalg.GaussianLogPDF(x, m.Means[c], m.chol[c])
	}
	lse := logSumExp(lc)
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		out[c] = math.Exp(lc[c] - lse)
	}
	return out
}

// Assign returns the most responsible component for x.
func (m *Model) Assign(x []float64) int {
	r := m.Responsibilities(x)
	best, bi := -1.0, 0
	for c, v := range r {
		if v > best {
			best, bi = v, c
		}
	}
	return bi
}

// LogLikelihood returns the total data log-likelihood under the model.
func (m *Model) LogLikelihood(data [][]float64) float64 {
	var ll float64
	lc := make([]float64, m.K())
	for _, row := range data {
		for c := 0; c < m.K(); c++ {
			lc[c] = math.Log(m.Weights[c]+1e-300) +
				linalg.GaussianLogPDF(row, m.Means[c], m.chol[c])
		}
		ll += logSumExp(lc)
	}
	return ll
}

func logSumExp(xs []float64) float64 {
	mx := math.Inf(-1)
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - mx)
	}
	return mx + math.Log(s)
}

// BIC returns the Bayesian Information Criterion of the model on data
// (lower is better): -2 log L + p log n, with p the free-parameter count
// of a full-covariance mixture.
func (m *Model) BIC(data [][]float64) float64 {
	n := float64(len(data))
	if n == 0 {
		return math.Inf(1)
	}
	d := float64(m.dim)
	k := float64(m.K())
	params := k*(d+d*(d+1)/2) + (k - 1)
	return -2*m.LogLikelihood(data) + params*math.Log(n)
}

// FitBestK fits mixtures with 1..maxK components and returns the one with
// the lowest BIC together with its component count. The paper fixes K=4
// for the score-space bootstrap; this helper supports exploratory use of
// the clustering substrate on other data.
func FitBestK(data [][]float64, maxK int, cfg Config, rng *rand.Rand) (*Model, int) {
	var best *Model
	bestK := 0
	bestBIC := math.Inf(1)
	for k := 1; k <= maxK; k++ {
		cfg.K = k
		m := Fit(data, cfg, rng)
		if m == nil {
			continue
		}
		if bic := m.BIC(data); betterBIC(bic, bestBIC) {
			best, bestK, bestBIC = m, k, bic
		}
	}
	return best, bestK
}

// betterBIC is FitBestK's model-selection rule: candidate wins only on a
// strictly lower BIC. K ascends through the search, so an exact tie
// keeps the incumbent — the model with fewer components — matching
// BIC's own parsimony preference. NaN (a degenerate likelihood) never
// wins, not even against +Inf.
func betterBIC(candidate, best float64) bool {
	return candidate < best
}
