// Package fft provides an iterative radix-2 complex FFT. It is the
// substrate for the Spectral Residual baseline (the SR half of SR-CNN
// [32]), which transforms a window to the frequency domain, removes the
// average log-spectrum and transforms back to obtain a saliency map.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNotPow2 reports a transform length that is not a power of two. Use
// errors.Is against the unwrapped error of TransformChecked /
// InverseChecked.
var ErrNotPow2 = fmt.Errorf("fft: length is not a power of two")

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place iterative radix-2 FFT of x. len(x) must be a
// power of two; FFT panics otherwise (callers pad with PadPow2).
func FFT(x []complex128) {
	transform(x, false)
}

// IFFT computes the inverse FFT of x in place (including the 1/n scale).
// len(x) must be a power of two.
func IFFT(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// TransformChecked computes the in-place FFT of x, returning ErrNotPow2
// (instead of panicking, as FFT does) when len(x) is not a power of two.
// Prefer it whenever the length derives from runtime input.
func TransformChecked(x []complex128) error {
	if err := checkLen(len(x)); err != nil {
		return err
	}
	transform(x, false)
	return nil
}

// InverseChecked computes the in-place inverse FFT of x (including the
// 1/n scale), returning ErrNotPow2 when len(x) is not a power of two.
func InverseChecked(x []complex128) error {
	if err := checkLen(len(x)); err != nil {
		return err
	}
	IFFT(x)
	return nil
}

func checkLen(n int) error {
	if n != 0 && n&(n-1) != 0 {
		return fmt.Errorf("%w (len %d)", ErrNotPow2, n)
	}
	return nil
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("fft: length is not a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson-Lanczos butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// PadPow2 copies xs into a complex slice zero-padded to the next power of
// two.
func PadPow2(xs []float64) []complex128 {
	n := NextPow2(len(xs))
	out := make([]complex128, n)
	for i, v := range xs {
		out[i] = complex(v, 0)
	}
	return out
}

// Abs returns the element-wise magnitudes of x.
func Abs(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}
