package fft

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference for differential testing.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			out[k] += x[t] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-6*float64(n) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestImpulseHasFlatSpectrum(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum bin %d = %v", i, v)
		}
	}
}

func TestSineConcentratesEnergy(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*4*float64(i)/float64(n)), 0)
	}
	FFT(x)
	mag := Abs(x)
	// Energy must sit in bins 4 and n-4.
	for i, m := range mag {
		if i == 4 || i == n-4 {
			if m < float64(n)/4 {
				t.Errorf("expected peak at bin %d, got %v", i, m)
			}
		} else if m > 1e-6 {
			t.Errorf("leakage at bin %d: %v", i, m)
		}
	}
}

func TestNextPow2AndPad(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
	p := PadPow2([]float64{1, 2, 3})
	if len(p) != 4 || p[0] != 1 || p[3] != 0 {
		t.Errorf("PadPow2 = %v", p)
	}
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two input")
		}
	}()
	FFT(make([]complex128, 3))
}

// Property: Parseval's theorem — energy preserved up to the 1/n convention.
func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (1 + rng.Intn(8))
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeE += real(x[i] * cmplx.Conj(x[i]))
		}
		FFT(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v * cmplx.Conj(v))
		}
		if math.Abs(freqE/float64(n)-timeE) > 1e-6*timeE {
			t.Fatalf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
		}
	}
}

func TestCheckedVariantsRejectNonPow2(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 100, 1000} {
		x := make([]complex128, n)
		if err := TransformChecked(x); !errors.Is(err, ErrNotPow2) {
			t.Errorf("TransformChecked(len %d) = %v, want ErrNotPow2", n, err)
		}
		if err := InverseChecked(x); !errors.Is(err, ErrNotPow2) {
			t.Errorf("InverseChecked(len %d) = %v, want ErrNotPow2", n, err)
		}
	}
}

func TestCheckedVariantsMatchUnchecked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 8, 64} {
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := append([]complex128(nil), a...)
		FFT(a)
		if err := TransformChecked(b); err != nil {
			t.Fatalf("TransformChecked(len %d): %v", n, err)
		}
		for i := range a {
			if cmplx.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("len %d: checked transform diverges at %d", n, i)
			}
		}
		IFFT(a)
		if err := InverseChecked(b); err != nil {
			t.Fatalf("InverseChecked(len %d): %v", n, err)
		}
		for i := range a {
			if cmplx.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("len %d: checked inverse diverges at %d", n, i)
			}
		}
	}
}

func BenchmarkFFT4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]complex128(nil), x...)
		FFT(cp)
	}
}
