// Package kmeans implements Lloyd's algorithm with k-means++ seeding. It
// initializes the Gaussian Mixture Model used by CABD's unsupervised
// hypothesis bootstrap (Section IV, "Score Evaluation").
package kmeans

import (
	"math"
	"math/rand"
)

// Result holds a clustering: one centroid per cluster and the cluster
// assignment of every input row.
type Result struct {
	Centroids  [][]float64
	Assignment []int
	Inertia    float64 // sum of squared distances to assigned centroids
}

// Run clusters data (rows are observations) into k clusters using
// k-means++ seeding and at most maxIter Lloyd iterations. rng drives the
// seeding so results are reproducible. If len(data) < k, every row becomes
// its own cluster (k shrinks).
func Run(data [][]float64, k, maxIter int, rng *rand.Rand) Result {
	n := len(data)
	if n == 0 || k <= 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	cents := seedPlusPlus(data, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, row := range data {
			best := nearest(row, cents)
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, len(cents))
		sums := make([][]float64, len(cents))
		for c := range sums {
			sums[c] = make([]float64, len(data[0]))
		}
		for i, row := range data {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				cents[c] = append([]float64(nil), data[farthest(data, cents)]...)
				continue
			}
			for j := range cents[c] {
				cents[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Final assignment + inertia.
	var inertia float64
	for i, row := range data {
		assign[i] = nearest(row, cents)
		inertia += dist2(row, cents[assign[i]])
	}
	return Result{Centroids: cents, Assignment: assign, Inertia: inertia}
}

// seedPlusPlus picks k initial centroids with the k-means++ scheme:
// first uniform, then proportional to squared distance from the chosen set.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	cents := make([][]float64, 0, k)
	first := rng.Intn(n)
	cents = append(cents, append([]float64(nil), data[first]...))
	d2 := make([]float64, n)
	for len(cents) < k {
		var total float64
		for i, row := range data {
			d2[i] = dist2(row, cents[nearest(row, cents)])
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate.
			cents = append(cents, append([]float64(nil), data[rng.Intn(n)]...))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, v := range d2 {
			acc += v
			if acc >= target {
				pick = i
				break
			}
		}
		cents = append(cents, append([]float64(nil), data[pick]...))
	}
	return cents
}

func nearest(row []float64, cents [][]float64) int {
	best, bd := 0, math.Inf(1)
	for c, cent := range cents {
		if d := dist2(row, cent); d < bd {
			bd, best = d, c
		}
	}
	return best
}

func farthest(data [][]float64, cents [][]float64) int {
	best, bd := 0, -1.0
	for i, row := range data {
		if d := dist2(row, cents[nearest(row, cents)]); d > bd {
			bd, best = d, i
		}
	}
	return best
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
