package kmeans

import (
	"math/rand"
	"testing"
)

func twoBlobs(rng *rand.Rand, n int) ([][]float64, []int) {
	data := make([][]float64, 0, 2*n)
	truth := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		data = append(data, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
		truth = append(truth, 0)
	}
	for i := 0; i < n; i++ {
		data = append(data, []float64{10 + rng.NormFloat64()*0.5, 10 + rng.NormFloat64()*0.5})
		truth = append(truth, 1)
	}
	return data, truth
}

func TestTwoBlobsSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, truth := twoBlobs(rng, 50)
	res := Run(data, 2, 100, rng)
	// All points of a blob must share one assignment, different per blob.
	a0 := res.Assignment[0]
	for i, c := range res.Assignment {
		if truth[i] == 0 && c != a0 {
			t.Fatalf("blob 0 split at %d", i)
		}
		if truth[i] == 1 && c == a0 {
			t.Fatalf("blobs merged at %d", i)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, _ := twoBlobs(rng, 40)
	r1 := Run(data, 1, 100, rand.New(rand.NewSource(3)))
	r2 := Run(data, 2, 100, rand.New(rand.NewSource(3)))
	if r2.Inertia >= r1.Inertia {
		t.Errorf("inertia did not decrease: k1=%v k2=%v", r1.Inertia, r2.Inertia)
	}
}

func TestKGreaterThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := [][]float64{{0, 0}, {1, 1}}
	res := Run(data, 10, 50, rng)
	if len(res.Centroids) != 2 {
		t.Errorf("k should shrink to n, got %d centroids", len(res.Centroids))
	}
}

func TestEmptyInput(t *testing.T) {
	res := Run(nil, 3, 10, rand.New(rand.NewSource(1)))
	if res.Centroids != nil || res.Assignment != nil {
		t.Error("empty input should yield zero result")
	}
}

func TestIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([][]float64, 10)
	for i := range data {
		data[i] = []float64{3, 3}
	}
	res := Run(data, 3, 50, rng)
	if res.Inertia != 0 {
		t.Errorf("identical points inertia = %v", res.Inertia)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	data, _ := twoBlobs(rand.New(rand.NewSource(6)), 30)
	r1 := Run(data, 2, 100, rand.New(rand.NewSource(7)))
	r2 := Run(data, 2, 100, rand.New(rand.NewSource(7)))
	for i := range r1.Assignment {
		if r1.Assignment[i] != r2.Assignment[i] {
			t.Fatal("same seed produced different clustering")
		}
	}
}
