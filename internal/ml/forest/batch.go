package forest

// PredictProbaBatch computes the class distribution of every row of m in
// tree-major order: each tree's flat node array streams through all rows
// while it is hot in cache, instead of every row re-walking every tree.
// The result is one flat slice of m.N blocks of NumClasses probabilities
// (row i occupies [i*k, (i+1)*k)); dst is reused when it has capacity.
// Accumulation visits trees in index order per element, so every row is
// bit-identical to PredictProba on that row.
//
//cabd:hotpath
func (f *Forest) PredictProbaBatch(m Matrix, dst []float64) []float64 {
	k := f.numClasses
	need := m.N * k
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	for i := range dst {
		dst[i] = 0
	}
	if len(f.trees) == 0 || m.N == 0 {
		return dst
	}
	for _, t := range f.trees {
		nodes := t.nodes
		for i := 0; i < m.N; i++ {
			at := 0
			for nodes[at].Probs == nil {
				nd := &nodes[at]
				if m.Cols[nd.Feature][i] <= nd.Threshold {
					at = nd.Left
				} else {
					at = nd.Right
				}
			}
			out := dst[i*k : i*k+k]
			for c, p := range nodes[at].Probs {
				out[c] += p
			}
		}
	}
	inv := float64(len(f.trees))
	for i := range dst {
		dst[i] /= inv
	}
	return dst
}

// PredictProbaOOBBatch computes the out-of-bag distribution of every
// training row of m (which must be the matrix the forest was trained on:
// row i's votes come from the trees whose bootstrap excluded row i).
// Rows that every tree saw fall back to the full-ensemble distribution,
// exactly as PredictProbaOOB does per row. Layout and reuse semantics
// match PredictProbaBatch.
func (f *Forest) PredictProbaOOBBatch(m Matrix, dst []float64) []float64 {
	k := f.numClasses
	need := m.N * k
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	for i := range dst {
		dst[i] = 0
	}
	if len(f.trees) == 0 || m.N == 0 {
		return dst
	}
	voters := make([]int, m.N)
	for ti, t := range f.trees {
		bag := f.inBag[ti]
		nodes := t.nodes
		for i := 0; i < m.N; i++ {
			if bag[i] {
				continue
			}
			at := 0
			for nodes[at].Probs == nil {
				nd := &nodes[at]
				if m.Cols[nd.Feature][i] <= nd.Threshold {
					at = nd.Left
				} else {
					at = nd.Right
				}
			}
			out := dst[i*k : i*k+k]
			for c, p := range nodes[at].Probs {
				out[c] += p
			}
			voters[i]++
		}
	}
	var row []float64
	for i := 0; i < m.N; i++ {
		out := dst[i*k : i*k+k]
		if voters[i] == 0 {
			row = m.Row(row, i)
			copy(out, f.PredictProba(row))
			continue
		}
		inv := float64(voters[i])
		for c := range out {
			out[c] /= inv
		}
	}
	return dst
}
