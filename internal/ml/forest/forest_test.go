package forest

import (
	"math"
	"math/rand"
	"testing"
)

// xorData is not linearly separable; trees must carve it correctly.
func xorData(rng *rand.Rand, n int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func TestXORAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 400)
	f := Train(X, y, Config{Trees: 60, NumClasses: 2}, rng)
	Xt, yt := xorData(rng, 200)
	correct := 0
	for i, x := range Xt {
		if f.Predict(x) == yt[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(Xt))
	if acc < 0.9 {
		t.Errorf("XOR accuracy = %v, want >= 0.9", acc)
	}
}

func TestThreeClassSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []int
	centers := [][]float64{{0, 0}, {5, 0}, {0, 5}}
	for c, ctr := range centers {
		for i := 0; i < 60; i++ {
			X = append(X, []float64{ctr[0] + rng.NormFloat64()*0.4,
				ctr[1] + rng.NormFloat64()*0.4})
			y = append(y, c)
		}
	}
	f := Train(X, y, Config{Trees: 40, NumClasses: 3}, rng)
	for c, ctr := range centers {
		if got := f.Predict(ctr); got != c {
			t.Errorf("center %d predicted as %d", c, got)
		}
		p := f.PredictProba(ctr)
		if p[c] < 0.8 {
			t.Errorf("center %d probability = %v", c, p[c])
		}
	}
}

func TestProbaSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := xorData(rng, 100)
	f := Train(X, y, Config{Trees: 20, NumClasses: 2}, rng)
	for trial := 0; trial < 50; trial++ {
		p := f.PredictProba([]float64{rng.Float64(), rng.Float64()})
		var s float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", p)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", s)
		}
	}
}

func TestTinyTrainingSet(t *testing.T) {
	// Active learning starts with a handful of points; the forest must
	// cope with n = 2.
	rng := rand.New(rand.NewSource(4))
	X := [][]float64{{0, 0, 0}, {1, 1, 1}}
	y := []int{0, 2}
	f := Train(X, y, Config{Trees: 30, NumClasses: 3}, rng)
	if f == nil {
		t.Fatal("tiny training set returned nil")
	}
	if f.Predict([]float64{0.05, 0, 0}) != 0 {
		t.Error("near-origin point misclassified")
	}
	if f.Predict([]float64{0.95, 1, 1}) != 2 {
		t.Error("near-ones point misclassified")
	}
}

func TestSingleClassTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X := [][]float64{{0}, {1}, {2}}
	y := []int{1, 1, 1}
	f := Train(X, y, Config{Trees: 10, NumClasses: 3}, rng)
	p := f.PredictProba([]float64{5})
	if p[1] != 1 {
		t.Errorf("single-class proba = %v", p)
	}
}

func TestEmptyAndInvalidInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if f := Train(nil, nil, Config{NumClasses: 2}, rng); f != nil {
		t.Error("empty training should return nil")
	}
	if f := Train([][]float64{{1}}, []int{0, 1}, Config{NumClasses: 2}, rng); f != nil {
		t.Error("mismatched lengths should return nil")
	}
	if f := Train([][]float64{{1}}, []int{0}, Config{}, rng); f != nil {
		t.Error("zero classes should return nil")
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	X, y := xorData(rand.New(rand.NewSource(7)), 100)
	f1 := Train(X, y, Config{Trees: 15, NumClasses: 2}, rand.New(rand.NewSource(8)))
	f2 := Train(X, y, Config{Trees: 15, NumClasses: 2}, rand.New(rand.NewSource(8)))
	probe := []float64{0.3, 0.8}
	p1, p2 := f1.PredictProba(probe), f2.PredictProba(probe)
	if p1[0] != p2[0] || p1[1] != p2[1] {
		t.Errorf("same seed diverged: %v vs %v", p1, p2)
	}
}

func TestConstantFeatures(t *testing.T) {
	// No valid split exists; the forest must fall back to leaves.
	rng := rand.New(rand.NewSource(9))
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	f := Train(X, y, Config{Trees: 10, NumClasses: 2}, rng)
	p := f.PredictProba([]float64{1, 1})
	if math.Abs(p[0]+p[1]-1) > 1e-9 {
		t.Errorf("constant-feature proba = %v", p)
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(X, y, Config{Trees: 50, NumClasses: 2}, rand.New(rand.NewSource(2)))
	}
}

func BenchmarkPredictProba(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 500)
	f := Train(X, y, Config{Trees: 50, NumClasses: 2}, rng)
	probe := []float64{0.4, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(probe)
	}
}

func TestOOBDiffersFromInBag(t *testing.T) {
	// A singleton class member must look confident in-bag but weak OOB:
	// the trees that never saw it cannot reproduce its label.
	rng := rand.New(rand.NewSource(11))
	X := make([][]float64, 41)
	y := make([]int, 41)
	for i := 0; i < 40; i++ {
		X[i] = []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}
		y[i] = 0
	}
	X[40] = []float64{0.05, -0.02} // inside the class-0 cloud
	y[40] = 1                      // but labeled differently
	f := TrainWeighted(X, y, nil, Config{Trees: 60, NumClasses: 2}, rng)
	full := f.PredictProba(X[40])
	oob := f.PredictProbaOOB(40, X[40])
	if oob[1] >= full[1] {
		t.Errorf("OOB support (%v) not below in-bag (%v) for the singleton", oob[1], full[1])
	}
	if oob[1] > 0.3 {
		t.Errorf("OOB probability of the unsupported label = %v, want near 0", oob[1])
	}
}

func TestWeightedSamplingBiasesBootstrap(t *testing.T) {
	// Giving one class heavy weight must raise its predicted probability.
	X := [][]float64{{0}, {0.01}, {0.02}, {1}, {1.01}}
	y := []int{0, 0, 0, 1, 1}
	flat := Train(X, y, Config{Trees: 40, NumClasses: 2}, rand.New(rand.NewSource(13)))
	heavy := TrainWeighted(X, y, []float64{1, 1, 1, 20, 20},
		Config{Trees: 40, NumClasses: 2}, rand.New(rand.NewSource(13)))
	probe := []float64{0.5}
	if heavy.PredictProba(probe)[1] <= flat.PredictProba(probe)[1] {
		t.Errorf("weighting class 1 did not raise its boundary probability: %v vs %v",
			heavy.PredictProba(probe), flat.PredictProba(probe))
	}
}
