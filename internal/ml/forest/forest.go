// Package forest implements a random forest classifier (bagged CART trees
// with per-split random feature subsets and Gini impurity), the default
// probabilistic classification algorithm of CABD [25]. Class probabilities
// are averaged leaf distributions across trees; CABD uses them directly as
// the confidence weights of Section IV and their complement as the
// uncertainty driving active learning (Equation 13).
package forest

import (
	"math"
	"math/rand"
	"sort"
)

// Config controls forest training.
type Config struct {
	Trees      int // number of trees (default 100)
	MaxDepth   int // depth cap per tree (default 12)
	MinLeaf    int // minimum samples per leaf (default 1)
	MTry       int // features considered per split (default ceil(sqrt(d)))
	NumClasses int // required: size of the label space
}

func (c *Config) defaults(d int) {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.MTry <= 0 {
		c.MTry = int(math.Ceil(math.Sqrt(float64(d))))
	}
	if c.MTry > d {
		c.MTry = d
	}
}

// Forest is a trained ensemble.
type Forest struct {
	trees      []*node
	inBag      [][]bool // per tree: was training row i in the bootstrap sample
	numClasses int
}

type node struct {
	feature     int
	threshold   float64
	left, right *node
	probs       []float64 // leaf class distribution (nil for internal)
}

// Train fits a forest on X (rows are feature vectors) and y (class ids in
// [0, cfg.NumClasses)). rng drives bootstrap and feature sampling; pass a
// seeded source for reproducibility. Returns nil when the input is empty.
func Train(X [][]float64, y []int, cfg Config, rng *rand.Rand) *Forest {
	return TrainWeighted(X, y, nil, cfg, rng)
}

// TrainWeighted is Train with per-row sampling weights: each bootstrap
// draw picks row i with probability weights[i]/sum(weights). nil weights
// are uniform. Rows with higher weight steer the ensemble the way
// replicating them would, while keeping one row per example so out-of-bag
// estimates stay meaningful.
func TrainWeighted(X [][]float64, y []int, weights []float64, cfg Config, rng *rand.Rand) *Forest {
	n := len(X)
	if n == 0 || len(y) != n || cfg.NumClasses <= 0 {
		return nil
	}
	if weights != nil && len(weights) != n {
		return nil
	}
	d := len(X[0])
	cfg.defaults(d)
	f := &Forest{numClasses: cfg.NumClasses}
	// Cumulative weights for sampling.
	var cum []float64
	if weights != nil {
		cum = make([]float64, n)
		var total float64
		for i, w := range weights {
			if w < 0 {
				w = 0
			}
			total += w
			cum[i] = total
		}
		if total <= 0 {
			cum = nil
		}
	}
	idx := make([]int, n)
	for t := 0; t < cfg.Trees; t++ {
		bag := make([]bool, n)
		for i := range idx {
			var pick int
			if cum != nil {
				pick = searchCum(cum, rng.Float64()*cum[n-1])
			} else {
				pick = rng.Intn(n)
			}
			idx[i] = pick
			bag[pick] = true
		}
		boot := append([]int(nil), idx...)
		f.trees = append(f.trees, buildTree(X, y, boot, cfg, rng, 0))
		f.inBag = append(f.inBag, bag)
	}
	return f
}

// searchCum returns the first index whose cumulative weight exceeds v.
func searchCum(cum []float64, v float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func buildTree(X [][]float64, y []int, idx []int, cfg Config, rng *rand.Rand, depth int) *node {
	if depth >= cfg.MaxDepth || len(idx) <= cfg.MinLeaf || pure(y, idx) {
		return leaf(y, idx, cfg.NumClasses)
	}
	feat, thr, ok := bestSplit(X, y, idx, cfg, rng)
	if !ok {
		return leaf(y, idx, cfg.NumClasses)
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return leaf(y, idx, cfg.NumClasses)
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      buildTree(X, y, li, cfg, rng, depth+1),
		right:     buildTree(X, y, ri, cfg, rng, depth+1),
	}
}

func pure(y []int, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

func leaf(y []int, idx []int, k int) *node {
	probs := make([]float64, k)
	if len(idx) == 0 {
		for c := range probs {
			probs[c] = 1 / float64(k)
		}
		return &node{probs: probs}
	}
	for _, i := range idx {
		probs[y[i]]++
	}
	for c := range probs {
		probs[c] /= float64(len(idx))
	}
	return &node{probs: probs}
}

// bestSplit searches cfg.MTry random features for the Gini-optimal
// threshold over the candidate midpoints.
func bestSplit(X [][]float64, y []int, idx []int, cfg Config, rng *rand.Rand) (int, float64, bool) {
	d := len(X[0])
	feats := rng.Perm(d)[:cfg.MTry]
	bestGini := math.Inf(1)
	bestFeat, bestThr, found := 0, 0.0, false
	vals := make([]float64, 0, len(idx))
	for _, feat := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][feat])
		}
		sort.Float64s(vals)
		for v := 1; v < len(vals); v++ {
			//cabd:lint-ignore floateq adjacent sorted feature values: only bit-identical ones admit no threshold between them
			if vals[v] == vals[v-1] {
				continue
			}
			thr := (vals[v] + vals[v-1]) / 2
			g := splitGini(X, y, idx, feat, thr, cfg.NumClasses)
			if g < bestGini {
				bestGini, bestFeat, bestThr, found = g, feat, thr, true
			}
		}
	}
	return bestFeat, bestThr, found
}

func splitGini(X [][]float64, y []int, idx []int, feat int, thr float64, k int) float64 {
	lc := make([]int, k)
	rc := make([]int, k)
	var ln, rn int
	for _, i := range idx {
		if X[i][feat] <= thr {
			lc[y[i]]++
			ln++
		} else {
			rc[y[i]]++
			rn++
		}
	}
	return weightedGini(lc, ln) + weightedGini(rc, rn)
}

func weightedGini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	var s float64
	for _, c := range counts {
		p := float64(c) / float64(n)
		s += p * p
	}
	return float64(n) * (1 - s)
}

// PredictProba returns the class probability distribution for x, averaged
// over all trees.
func (f *Forest) PredictProba(x []float64) []float64 {
	probs := make([]float64, f.numClasses)
	if len(f.trees) == 0 {
		return probs
	}
	for _, t := range f.trees {
		n := t
		for n.probs == nil {
			if x[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		for c, p := range n.probs {
			probs[c] += p
		}
	}
	for c := range probs {
		probs[c] /= float64(len(f.trees))
	}
	return probs
}

// PredictProbaOOB returns the out-of-bag class distribution of training
// row i with features x: only trees whose bootstrap sample excluded row i
// vote, so the estimate is not self-fulfilling. When every tree saw the
// row (possible for heavily weighted rows), it falls back to the full
// ensemble.
func (f *Forest) PredictProbaOOB(i int, x []float64) []float64 {
	probs := make([]float64, f.numClasses)
	voters := 0
	for t, tree := range f.trees {
		if f.inBag[t][i] {
			continue
		}
		n := tree
		for n.probs == nil {
			if x[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		for c, p := range n.probs {
			probs[c] += p
		}
		voters++
	}
	if voters == 0 {
		return f.PredictProba(x)
	}
	for c := range probs {
		probs[c] /= float64(voters)
	}
	return probs
}

// Predict returns the most probable class for x.
func (f *Forest) Predict(x []float64) int {
	probs := f.PredictProba(x)
	best, bi := -1.0, 0
	for c, p := range probs {
		if p > best {
			best, bi = p, c
		}
	}
	return bi
}

// NumClasses returns the size of the label space the forest was trained on.
func (f *Forest) NumClasses() int { return f.numClasses }
