// Package forest implements a random forest classifier (bagged CART trees
// with per-split random feature subsets and Gini impurity), the default
// probabilistic classification algorithm of CABD [25]. Class probabilities
// are averaged leaf distributions across trees; CABD uses them directly as
// the confidence weights of Section IV and their complement as the
// uncertainty driving active learning (Equation 13).
//
// Trees are stored as flat preorder node arrays — the same layout the
// Snapshot wire form uses — so inference walks contiguous memory instead
// of chasing heap pointers, and PredictProbaBatch streams each tree
// through all rows of a column-major Matrix (tree-major order: the hot
// node array stays cached while rows advance). Training fans the trees
// out over per-tree goroutines; every tree draws from its own rand.Rand
// seeded from the caller's stream before the fan-out, so the ensemble is
// bit-identical at any worker count (Workers: 1 is the sequential
// differential oracle).
package forest

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Config controls forest training.
type Config struct {
	Trees      int // number of trees (default 100)
	MaxDepth   int // depth cap per tree (default 12)
	MinLeaf    int // minimum samples per leaf (default 1)
	MTry       int // features considered per split (default ceil(sqrt(d)))
	NumClasses int // required: size of the label space

	// Workers bounds the tree-building goroutines: 0 uses GOMAXPROCS,
	// 1 is the sequential oracle. The trained ensemble is bit-identical
	// at every setting — each tree owns a rand.Rand split off the
	// caller's stream before any tree building starts.
	Workers int
}

func (c *Config) defaults(d int) {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.MTry <= 0 {
		c.MTry = int(math.Ceil(math.Sqrt(float64(d))))
	}
	if c.MTry > d {
		c.MTry = d
	}
}

// Forest is a trained ensemble.
type Forest struct {
	trees      []tree
	inBag      [][]bool // per tree: was training row i in the bootstrap sample
	numClasses int
}

// tree is one CART tree as a flat preorder node array: nodes[0] is the
// root, children sit strictly after their parent.
type tree struct {
	nodes []FlatNode
}

// leafFor walks x down to its leaf distribution.
func (t tree) leafFor(x []float64) []float64 {
	at := 0
	for t.nodes[at].Probs == nil {
		n := &t.nodes[at]
		if x[n.Feature] <= n.Threshold {
			at = n.Left
		} else {
			at = n.Right
		}
	}
	return t.nodes[at].Probs
}

// Train fits a forest on X (rows are feature vectors) and y (class ids in
// [0, cfg.NumClasses)). rng drives bootstrap and feature sampling; pass a
// seeded source for reproducibility. Returns nil when the input is empty.
func Train(X [][]float64, y []int, cfg Config, rng *rand.Rand) *Forest {
	return TrainWeighted(X, y, nil, cfg, rng)
}

// TrainWeighted is Train with per-row sampling weights: each bootstrap
// draw picks row i with probability weights[i]/sum(weights). nil weights
// are uniform. Rows with higher weight steer the ensemble the way
// replicating them would, while keeping one row per example so out-of-bag
// estimates stay meaningful.
func TrainWeighted(X [][]float64, y []int, weights []float64, cfg Config, rng *rand.Rand) *Forest {
	if len(X) == 0 {
		return nil
	}
	return TrainMatrixWeighted(RowMajor(X), y, weights, cfg, rng)
}

// TrainMatrixWeighted is TrainWeighted over a column-major feature
// matrix — the native form of the scoring hot path, which fills one
// index-aligned column per feature. Training reads each split's
// candidate feature as one contiguous column. Returns nil on empty or
// inconsistent input.
func TrainMatrixWeighted(m Matrix, y []int, weights []float64, cfg Config, rng *rand.Rand) *Forest {
	n := m.N
	if n == 0 || len(y) != n || cfg.NumClasses <= 0 || !m.valid() {
		return nil
	}
	if weights != nil && len(weights) != n {
		return nil
	}
	d := len(m.Cols)
	cfg.defaults(d)
	// Cumulative weights for sampling (shared, read-only across trees).
	var cum []float64
	if weights != nil {
		cum = make([]float64, n)
		var total float64
		for i, w := range weights {
			if w < 0 {
				w = 0
			}
			total += w
			cum[i] = total
		}
		if total <= 0 {
			cum = nil
		}
	}
	// Split one deterministic rand stream per tree off the caller's rng
	// BEFORE any tree building: tree t's draws depend only on seeds[t],
	// never on scheduling, so parallel training is bit-identical to the
	// sequential oracle at any GOMAXPROCS.
	seeds := make([]int64, cfg.Trees)
	for t := range seeds {
		seeds[t] = rng.Int63()
	}
	f := &Forest{
		numClasses: cfg.NumClasses,
		trees:      make([]tree, cfg.Trees),
		inBag:      make([][]bool, cfg.Trees),
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	if workers <= 1 {
		b := newBuilder(m, y, cfg)
		for t := 0; t < cfg.Trees; t++ {
			f.trees[t], f.inBag[t] = b.train(cum, rand.New(rand.NewSource(seeds[t])))
		}
		return f
	}
	ch := make(chan int, cfg.Trees)
	for t := 0; t < cfg.Trees; t++ {
		ch <- t
	}
	close(ch)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := newBuilder(m, y, cfg)
			for t := range ch {
				// Each slot is written by exactly one goroutine; the
				// deterministic merge is the tree index itself.
				f.trees[t], f.inBag[t] = b.train(cum, rand.New(rand.NewSource(seeds[t])))
			}
		}()
	}
	wg.Wait()
	return f
}

// searchCum returns the first index whose cumulative weight exceeds v.
func searchCum(cum []float64, v float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitPair is one (feature value, class) pair of the sorted split sweep.
type splitPair struct {
	v float64
	y int32
}

// builder holds the per-goroutine scratch of tree construction so the
// training loop allocates only the nodes and leaf distributions that
// outlive it.
type builder struct {
	m   Matrix
	y   []int
	cfg Config

	nodes []FlatNode  // current tree under construction (preorder)
	boot  []int       // bootstrap row indices
	part  []int       // stable-partition spill buffer
	pairs []splitPair // per-feature sorted (value, class) sweep
	lc    []int       // left class counts of the sweep
	tc    []int       // total class counts of the node under split
}

func newBuilder(m Matrix, y []int, cfg Config) *builder {
	return &builder{
		m: m, y: y, cfg: cfg,
		lc: make([]int, cfg.NumClasses),
		tc: make([]int, cfg.NumClasses),
	}
}

// train grows one tree: bootstrap-sample the rows with rng, then build
// the preorder node array. The returned tree owns its nodes.
func (b *builder) train(cum []float64, rng *rand.Rand) (tree, []bool) {
	n := b.m.N
	bag := make([]bool, n)
	if cap(b.boot) < n {
		b.boot = make([]int, n)
	}
	idx := b.boot[:n]
	for i := range idx {
		var pick int
		if cum != nil {
			pick = searchCum(cum, rng.Float64()*cum[n-1])
		} else {
			pick = rng.Intn(n)
		}
		idx[i] = pick
		bag[pick] = true
	}
	b.nodes = make([]FlatNode, 0, 64)
	b.build(idx, rng, 0)
	return tree{nodes: b.nodes}, bag
}

// build appends the subtree over idx to b.nodes in preorder and returns
// its root index. idx is partitioned in place down the recursion.
func (b *builder) build(idx []int, rng *rand.Rand, depth int) int {
	at := len(b.nodes)
	if depth >= b.cfg.MaxDepth || len(idx) <= b.cfg.MinLeaf || b.pure(idx) {
		b.nodes = append(b.nodes, b.leaf(idx))
		return at
	}
	feat, thr, ok := b.bestSplit(idx, rng)
	if !ok {
		b.nodes = append(b.nodes, b.leaf(idx))
		return at
	}
	li, ri := b.partition(idx, feat, thr)
	if len(li) == 0 || len(ri) == 0 {
		b.nodes = append(b.nodes, b.leaf(idx))
		return at
	}
	b.nodes = append(b.nodes, FlatNode{Left: -1, Right: -1})
	l := b.build(li, rng, depth+1)
	r := b.build(ri, rng, depth+1)
	nd := &b.nodes[at]
	nd.Feature, nd.Threshold, nd.Left, nd.Right = feat, thr, l, r
	return at
}

func (b *builder) pure(idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := b.y[idx[0]]
	for _, i := range idx[1:] {
		if b.y[i] != first {
			return false
		}
	}
	return true
}

func (b *builder) leaf(idx []int) FlatNode {
	probs := make([]float64, b.cfg.NumClasses)
	if len(idx) == 0 {
		for c := range probs {
			probs[c] = 1 / float64(b.cfg.NumClasses)
		}
		return FlatNode{Left: -1, Right: -1, Probs: probs}
	}
	for _, i := range idx {
		probs[b.y[i]]++
	}
	for c := range probs {
		probs[c] /= float64(len(idx))
	}
	return FlatNode{Left: -1, Right: -1, Probs: probs}
}

// partition splits idx in place into (<= thr, > thr) halves, preserving
// relative order on both sides (a stable partition keeps the build
// deterministic and independent of the spill buffer's capacity).
func (b *builder) partition(idx []int, feat int, thr float64) (li, ri []int) {
	col := b.m.Cols[feat]
	spill := b.part[:0]
	k := 0
	for _, i := range idx {
		if col[i] <= thr {
			idx[k] = i
			k++
		} else {
			spill = append(spill, i)
		}
	}
	copy(idx[k:], spill)
	b.part = spill[:0]
	return idx[:k], idx[k:]
}

// bestSplit searches cfg.MTry random features for the Gini-optimal
// threshold. Per feature it sorts the node's (value, class) pairs once
// and sweeps the class counts across the boundaries between distinct
// values — O(k log k) per feature instead of the naive O(k^2) recount —
// computing the exact same Gini (integer counts, identical float
// expressions) and therefore selecting the exact same split as the
// quadratic scan it replaces.
func (b *builder) bestSplit(idx []int, rng *rand.Rand) (int, float64, bool) {
	d := len(b.m.Cols)
	feats := rng.Perm(d)[:b.cfg.MTry]
	bestGini := math.Inf(1)
	bestFeat, bestThr, found := 0, 0.0, false
	for c := range b.tc {
		b.tc[c] = 0
	}
	for _, i := range idx {
		b.tc[b.y[i]]++
	}
	if cap(b.pairs) < len(idx) {
		b.pairs = make([]splitPair, len(idx))
	}
	pairs := b.pairs[:len(idx)]
	for _, feat := range feats {
		col := b.m.Cols[feat]
		for p, i := range idx {
			pairs[p] = splitPair{v: col[i], y: int32(b.y[i])}
		}
		sort.Slice(pairs, func(a, c int) bool { return pairs[a].v < pairs[c].v })
		for c := range b.lc {
			b.lc[c] = 0
		}
		ln := 0
		for v := 1; v < len(pairs); v++ {
			b.lc[pairs[v-1].y]++
			ln++
			//cabd:lint-ignore floateq adjacent sorted feature values: only bit-identical ones admit no threshold between them
			if pairs[v].v == pairs[v-1].v {
				continue
			}
			thr := (pairs[v].v + pairs[v-1].v) / 2
			g := weightedGini(b.lc, ln) + weightedGiniRest(b.tc, b.lc, len(pairs)-ln)
			if g < bestGini {
				bestGini, bestFeat, bestThr, found = g, feat, thr, true
			}
		}
	}
	return bestFeat, bestThr, found
}

func weightedGini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	var s float64
	for _, c := range counts {
		p := float64(c) / float64(n)
		s += p * p
	}
	return float64(n) * (1 - s)
}

// weightedGiniRest is weightedGini over the complement counts
// (total[c] - left[c]) without materializing them.
func weightedGiniRest(total, left []int, n int) float64 {
	if n == 0 {
		return 0
	}
	var s float64
	for c := range total {
		p := float64(total[c]-left[c]) / float64(n)
		s += p * p
	}
	return float64(n) * (1 - s)
}

// PredictProba returns the class probability distribution for x, averaged
// over all trees. It is the per-row differential oracle for
// PredictProbaBatch.
func (f *Forest) PredictProba(x []float64) []float64 {
	probs := make([]float64, f.numClasses)
	if len(f.trees) == 0 {
		return probs
	}
	for _, t := range f.trees {
		leaf := t.leafFor(x)
		for c, p := range leaf {
			probs[c] += p
		}
	}
	for c := range probs {
		probs[c] /= float64(len(f.trees))
	}
	return probs
}

// PredictProbaOOB returns the out-of-bag class distribution of training
// row i with features x: only trees whose bootstrap sample excluded row i
// vote, so the estimate is not self-fulfilling. When every tree saw the
// row (possible for heavily weighted rows), it falls back to the full
// ensemble. It is the per-row differential oracle for
// PredictProbaOOBBatch.
func (f *Forest) PredictProbaOOB(i int, x []float64) []float64 {
	probs := make([]float64, f.numClasses)
	voters := 0
	for t, tr := range f.trees {
		if f.inBag[t][i] {
			continue
		}
		leaf := tr.leafFor(x)
		for c, p := range leaf {
			probs[c] += p
		}
		voters++
	}
	if voters == 0 {
		return f.PredictProba(x)
	}
	for c := range probs {
		probs[c] /= float64(voters)
	}
	return probs
}

// Predict returns the most probable class for x.
func (f *Forest) Predict(x []float64) int {
	probs := f.PredictProba(x)
	best, bi := -1.0, 0
	for c, p := range probs {
		if p > best {
			best, bi = p, c
		}
	}
	return bi
}

// NumClasses returns the size of the label space the forest was trained on.
func (f *Forest) NumClasses() int { return f.numClasses }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
