package forest

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// trainFixture builds a small deterministic forest over two noisy
// clusters.
func trainFixture(t *testing.T) ([][]float64, *Forest) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var X [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		cls := i % 3
		X = append(X, []float64{
			float64(cls) + 0.3*rng.Float64(),
			float64(cls)*2 + 0.3*rng.Float64(),
		})
		y = append(y, cls)
	}
	f := Train(X, y, Config{Trees: 25, NumClasses: 3}, rng)
	if f == nil {
		t.Fatal("Train returned nil")
	}
	return X, f
}

// TestSnapshotRoundTrip: a forest restored from its JSON-encoded
// snapshot predicts bit-identically — full ensemble and out-of-bag.
func TestSnapshotRoundTrip(t *testing.T) {
	X, f := trainFixture(t)

	buf, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	g, err := FromSnapshot(&snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if g.NumClasses() != f.NumClasses() {
		t.Fatalf("num classes %d != %d", g.NumClasses(), f.NumClasses())
	}
	for i, x := range X {
		want, got := f.PredictProba(x), g.PredictProba(x)
		for c := range want {
			//cabd:lint-ignore floateq round-trip must be bit-identical: both ensembles average the same leaf distributions
			if want[c] != got[c] {
				t.Fatalf("row %d class %d: proba %v != %v", i, c, got[c], want[c])
			}
		}
		wantOOB, gotOOB := f.PredictProbaOOB(i, x), g.PredictProbaOOB(i, x)
		for c := range wantOOB {
			//cabd:lint-ignore floateq round-trip must be bit-identical: in-bag membership is preserved verbatim
			if wantOOB[c] != gotOOB[c] {
				t.Fatalf("row %d class %d: OOB proba %v != %v", i, c, gotOOB[c], wantOOB[c])
			}
		}
	}
}

// TestSnapshotNil: nil forests and snapshots round-trip to nil.
func TestSnapshotNil(t *testing.T) {
	var f *Forest
	if s := f.Snapshot(); s != nil {
		t.Fatalf("nil forest snapshot = %+v", s)
	}
	g, err := FromSnapshot(nil)
	if err != nil || g != nil {
		t.Fatalf("FromSnapshot(nil) = %v, %v", g, err)
	}
}

// TestSnapshotValidation: corrupted checkpoints fail loudly.
func TestSnapshotValidation(t *testing.T) {
	leaf := FlatNode{Left: -1, Right: -1, Probs: []float64{1, 0}}
	cases := map[string]*Snapshot{
		"bad classes": {NumClasses: 0},
		"in-bag mismatch": {NumClasses: 2,
			Trees: []TreeSnapshot{{Nodes: []FlatNode{leaf}}},
			InBag: [][]bool{{true}, {false}}},
		"child out of range": {NumClasses: 2,
			Trees: []TreeSnapshot{{Nodes: []FlatNode{{Feature: 0, Left: 1, Right: 5}, leaf}}}},
		"child before parent (cycle)": {NumClasses: 2,
			Trees: []TreeSnapshot{{Nodes: []FlatNode{{Left: -1, Right: -1}, {Feature: 0, Left: 0, Right: 0}}}}},
		"leaf prob size": {NumClasses: 3,
			Trees: []TreeSnapshot{{Nodes: []FlatNode{leaf}}}},
		"empty tree": {NumClasses: 2,
			Trees: []TreeSnapshot{{}}},
	}
	for name, snap := range cases {
		if _, err := FromSnapshot(snap); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// TestSnapshotPreordersRoot: node 0 is the root; a single-leaf tree is
// legal.
func TestSnapshotPreordersRoot(t *testing.T) {
	snap := &Snapshot{NumClasses: 2, Trees: []TreeSnapshot{
		{Nodes: []FlatNode{{Left: -1, Right: -1, Probs: []float64{0.25, 0.75}}}},
	}}
	f, err := FromSnapshot(snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	p := f.PredictProba([]float64{math.Pi})
	if p[1] <= p[0] {
		t.Fatalf("leaf distribution lost: %v", p)
	}
}
