package forest

import "fmt"

// FlatNode is one serialized tree node. Internal nodes carry the split
// (Feature, Threshold) and the indices of their children inside the
// tree's node array; leaves carry the class distribution and children
// of -1. The flat layout keeps the wire form free of recursion so a
// hostile checkpoint cannot stack-overflow the decoder.
type FlatNode struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t"`
	Left      int       `json:"l"`
	Right     int       `json:"r"`
	Probs     []float64 `json:"p,omitempty"`
}

// TreeSnapshot is one serialized tree: Nodes[0] is the root.
type TreeSnapshot struct {
	Nodes []FlatNode `json:"nodes"`
}

// Snapshot is the serializable form of a trained Forest — the model
// checkpoint written by the serving layer so a restarted process can
// reload the exact ensemble instead of retraining. InBag preserves the
// bootstrap membership so out-of-bag estimates survive the round trip.
type Snapshot struct {
	NumClasses int            `json:"num_classes"`
	Trees      []TreeSnapshot `json:"trees"`
	InBag      [][]bool       `json:"in_bag,omitempty"`
}

// Snapshot flattens the forest into its serializable form. Nil forests
// snapshot to nil.
func (f *Forest) Snapshot() *Snapshot {
	if f == nil {
		return nil
	}
	s := &Snapshot{NumClasses: f.numClasses, Trees: make([]TreeSnapshot, len(f.trees))}
	for i, root := range f.trees {
		var nodes []FlatNode
		flatten(root, &nodes)
		s.Trees[i] = TreeSnapshot{Nodes: nodes}
	}
	for _, bag := range f.inBag {
		s.InBag = append(s.InBag, append([]bool(nil), bag...))
	}
	return s
}

// flatten appends n's subtree to nodes in preorder and returns n's
// index.
func flatten(n *node, nodes *[]FlatNode) int {
	at := len(*nodes)
	*nodes = append(*nodes, FlatNode{Left: -1, Right: -1})
	if n.probs != nil {
		(*nodes)[at].Probs = append([]float64(nil), n.probs...)
		return at
	}
	(*nodes)[at].Feature = n.feature
	(*nodes)[at].Threshold = n.threshold
	l := flatten(n.left, nodes)
	r := flatten(n.right, nodes)
	(*nodes)[at].Left = l
	(*nodes)[at].Right = r
	return at
}

// FromSnapshot rebuilds a Forest from its serialized form, validating
// the node graph (indices in range, acyclic by forward reference, leaf
// distributions sized to NumClasses) so a corrupted checkpoint fails
// loudly instead of predicting garbage. A nil snapshot returns nil.
func FromSnapshot(s *Snapshot) (*Forest, error) {
	if s == nil {
		return nil, nil
	}
	if s.NumClasses <= 0 {
		return nil, fmt.Errorf("forest snapshot: num_classes %d", s.NumClasses)
	}
	if len(s.InBag) != 0 && len(s.InBag) != len(s.Trees) {
		return nil, fmt.Errorf("forest snapshot: %d in-bag rows for %d trees", len(s.InBag), len(s.Trees))
	}
	f := &Forest{numClasses: s.NumClasses}
	for ti, ts := range s.Trees {
		root, err := unflatten(ts.Nodes, 0, s.NumClasses)
		if err != nil {
			return nil, fmt.Errorf("forest snapshot: tree %d: %w", ti, err)
		}
		f.trees = append(f.trees, root)
	}
	for _, bag := range s.InBag {
		f.inBag = append(f.inBag, append([]bool(nil), bag...))
	}
	return f, nil
}

// unflatten rebuilds the subtree rooted at index at. Children must sit
// strictly after their parent (the preorder invariant), which rules out
// cycles without a visited set.
func unflatten(nodes []FlatNode, at, numClasses int) (*node, error) {
	if at < 0 || at >= len(nodes) {
		return nil, fmt.Errorf("node index %d out of range [0, %d)", at, len(nodes))
	}
	fn := nodes[at]
	if fn.Probs != nil {
		if len(fn.Probs) != numClasses {
			return nil, fmt.Errorf("leaf %d has %d probs, want %d", at, len(fn.Probs), numClasses)
		}
		return &node{probs: append([]float64(nil), fn.Probs...)}, nil
	}
	if fn.Left <= at || fn.Right <= at {
		return nil, fmt.Errorf("node %d children (%d, %d) not strictly after parent", at, fn.Left, fn.Right)
	}
	left, err := unflatten(nodes, fn.Left, numClasses)
	if err != nil {
		return nil, err
	}
	right, err := unflatten(nodes, fn.Right, numClasses)
	if err != nil {
		return nil, err
	}
	return &node{feature: fn.Feature, threshold: fn.Threshold, left: left, right: right}, nil
}
