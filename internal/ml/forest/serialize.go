package forest

import "fmt"

// FlatNode is one tree node, in the layout shared by the in-memory
// forest and the wire form. Internal nodes carry the split (Feature,
// Threshold) and the indices of their children inside the tree's node
// array; leaves carry the class distribution and children of -1. The
// flat layout keeps the wire form free of recursion so a hostile
// checkpoint cannot stack-overflow the decoder, and lets inference walk
// a contiguous array instead of chasing heap pointers.
type FlatNode struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t"`
	Left      int       `json:"l"`
	Right     int       `json:"r"`
	Probs     []float64 `json:"p,omitempty"`
}

// TreeSnapshot is one serialized tree: Nodes[0] is the root.
type TreeSnapshot struct {
	Nodes []FlatNode `json:"nodes"`
}

// Snapshot is the serializable form of a trained Forest — the model
// checkpoint written by the serving layer so a restarted process can
// reload the exact ensemble instead of retraining. InBag preserves the
// bootstrap membership so out-of-bag estimates survive the round trip.
type Snapshot struct {
	NumClasses int            `json:"num_classes"`
	Trees      []TreeSnapshot `json:"trees"`
	InBag      [][]bool       `json:"in_bag,omitempty"`
}

// Snapshot copies the forest into its serializable form. The in-memory
// trees already hold the preorder flat arrays, so this is a deep copy,
// not a traversal. Nil forests snapshot to nil.
func (f *Forest) Snapshot() *Snapshot {
	if f == nil {
		return nil
	}
	s := &Snapshot{NumClasses: f.numClasses, Trees: make([]TreeSnapshot, len(f.trees))}
	for i, t := range f.trees {
		nodes := make([]FlatNode, len(t.nodes))
		copy(nodes, t.nodes)
		for j := range nodes {
			if nodes[j].Probs != nil {
				nodes[j].Probs = append([]float64(nil), nodes[j].Probs...)
			}
		}
		s.Trees[i] = TreeSnapshot{Nodes: nodes}
	}
	for _, bag := range f.inBag {
		s.InBag = append(s.InBag, append([]bool(nil), bag...))
	}
	return s
}

// FromSnapshot rebuilds a Forest from its serialized form, validating
// the node graph (indices in range, acyclic by forward reference, leaf
// distributions sized to NumClasses) so a corrupted checkpoint fails
// loudly instead of predicting garbage. Only nodes reachable from the
// root are kept, re-packed in preorder, so a round trip through
// Snapshot is byte-stable. A nil snapshot returns nil.
func FromSnapshot(s *Snapshot) (*Forest, error) {
	if s == nil {
		return nil, nil
	}
	if s.NumClasses <= 0 {
		return nil, fmt.Errorf("forest snapshot: num_classes %d", s.NumClasses)
	}
	if len(s.InBag) != 0 && len(s.InBag) != len(s.Trees) {
		return nil, fmt.Errorf("forest snapshot: %d in-bag rows for %d trees", len(s.InBag), len(s.Trees))
	}
	f := &Forest{numClasses: s.NumClasses}
	for ti, ts := range s.Trees {
		nodes := make([]FlatNode, 0, len(ts.Nodes))
		if _, err := unflatten(ts.Nodes, 0, s.NumClasses, &nodes); err != nil {
			return nil, fmt.Errorf("forest snapshot: tree %d: %w", ti, err)
		}
		f.trees = append(f.trees, tree{nodes: nodes})
	}
	for _, bag := range s.InBag {
		f.inBag = append(f.inBag, append([]bool(nil), bag...))
	}
	return f, nil
}

// unflatten validates and copies the subtree rooted at src index at into
// dst (preorder), returning its dst index. Children must sit strictly
// after their parent in src (the preorder invariant), which rules out
// cycles without a visited set.
func unflatten(src []FlatNode, at, numClasses int, dst *[]FlatNode) (int, error) {
	if at < 0 || at >= len(src) {
		return 0, fmt.Errorf("node index %d out of range [0, %d)", at, len(src))
	}
	fn := src[at]
	out := len(*dst)
	if fn.Probs != nil {
		if len(fn.Probs) != numClasses {
			return 0, fmt.Errorf("leaf %d has %d probs, want %d", at, len(fn.Probs), numClasses)
		}
		*dst = append(*dst, FlatNode{Left: -1, Right: -1,
			Probs: append([]float64(nil), fn.Probs...)})
		return out, nil
	}
	if fn.Left <= at || fn.Right <= at {
		return 0, fmt.Errorf("node %d children (%d, %d) not strictly after parent", at, fn.Left, fn.Right)
	}
	*dst = append(*dst, FlatNode{Feature: fn.Feature, Threshold: fn.Threshold, Left: -1, Right: -1})
	l, err := unflatten(src, fn.Left, numClasses, dst)
	if err != nil {
		return 0, err
	}
	r, err := unflatten(src, fn.Right, numClasses, dst)
	if err != nil {
		return 0, err
	}
	(*dst)[out].Left = l
	(*dst)[out].Right = r
	return out, nil
}
