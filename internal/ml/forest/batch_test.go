package forest

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// gaussData builds an n-row, d-feature training set with k interleaved
// class clusters — enough structure that trees actually split.
func gaussData(rng *rand.Rand, n, d, k int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		y[i] = i % k
		row := make([]float64, d)
		for f := range row {
			row[f] = float64(y[i]) + rng.NormFloat64()*0.6
		}
		X[i] = row
	}
	return X, y
}

// TestTrainWorkersBitIdentical is the parallel-training contract: the
// same seed must produce byte-identical ensembles (trees and bootstrap
// membership both) at every worker count, because each tree's rand
// stream is split off the caller's rng before the fan-out.
func TestTrainWorkersBitIdentical(t *testing.T) {
	X, y := gaussData(rand.New(rand.NewSource(3)), 240, 5, 3)
	w := make([]float64, len(X))
	for i := range w {
		w[i] = 1 + float64(i%7)
	}
	for _, weights := range [][]float64{nil, w} {
		var want []byte
		for _, workers := range []int{1, 2, 8} {
			cfg := Config{Trees: 40, NumClasses: 3, Workers: workers}
			f := TrainWeighted(X, y, weights, cfg, rand.New(rand.NewSource(17)))
			if f == nil {
				t.Fatal("nil forest")
			}
			got, err := json.Marshal(f.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("workers=%d (weighted=%v): ensemble differs from sequential oracle",
					workers, weights != nil)
			}
		}
	}
}

// TestTrainMatrixMatchesRowMajor: the column-major entry point and the
// row-major wrapper must train identical ensembles from the same data.
func TestTrainMatrixMatchesRowMajor(t *testing.T) {
	X, y := gaussData(rand.New(rand.NewSource(5)), 150, 4, 2)
	cfg := Config{Trees: 25, NumClasses: 2, Workers: 1}
	a := TrainWeighted(X, y, nil, cfg, rand.New(rand.NewSource(9)))
	b := TrainMatrixWeighted(RowMajor(X), y, nil, cfg, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("row-major and column-major training disagree")
	}
}

// TestPredictProbaBatchMatchesPerRow sweeps the tree-major batch pass
// against the per-row oracle, including rows the forest never saw and
// rows holding NaN/Inf (NaN <= thr is false, so NaN rows deterministically
// fall right at every split — both paths must agree on that too).
func TestPredictProbaBatchMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := gaussData(rng, 200, 4, 3)
	f := TrainWeighted(X, y, nil, Config{Trees: 30, NumClasses: 3}, rand.New(rand.NewSource(2)))

	probe := make([][]float64, 0, 64)
	probe = append(probe, X[:40]...)
	probe = append(probe,
		[]float64{math.NaN(), 0, 1, 2},
		[]float64{math.Inf(1), math.Inf(-1), 0, math.NaN()},
		[]float64{1e308, -1e308, 1e-308, 0},
	)
	for i := 0; i < 20; i++ {
		probe = append(probe, []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10,
			rng.NormFloat64() * 10, rng.NormFloat64() * 10})
	}
	m := RowMajor(probe)
	batch := f.PredictProbaBatch(m, nil)
	if len(batch) != m.N*f.NumClasses() {
		t.Fatalf("batch length %d, want %d", len(batch), m.N*f.NumClasses())
	}
	for i, row := range probe {
		want := f.PredictProba(row)
		got := batch[i*3 : i*3+3]
		//cabd:lint-ignore floateq the batch contract is bit-identity with the per-row oracle
		if got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
			t.Fatalf("row %d: batch %v, per-row %v", i, got, want)
		}
	}
	// Buffer reuse must not leak previous contents.
	again := f.PredictProbaBatch(m, batch)
	if &again[0] != &batch[0] {
		t.Fatal("batch buffer was reallocated despite sufficient capacity")
	}
}

// TestPredictProbaOOBBatchMatchesPerRow covers the out-of-bag batch pass
// including the voters==0 full-ensemble fallback, forced by weighting
// one row so heavily that every bootstrap sample contains it.
func TestPredictProbaOOBBatchMatchesPerRow(t *testing.T) {
	X, y := gaussData(rand.New(rand.NewSource(11)), 120, 4, 2)
	w := make([]float64, len(X))
	for i := range w {
		w[i] = 1
	}
	w[0] = 1e9 // row 0 is in (essentially) every bag -> OOB fallback path
	f := TrainWeighted(X, y, w, Config{Trees: 20, NumClasses: 2}, rand.New(rand.NewSource(4)))

	m := RowMajor(X)
	batch := f.PredictProbaOOBBatch(m, nil)
	sawFallback := false
	for i, row := range X {
		voters := 0
		for ti := range f.inBag {
			if !f.inBag[ti][i] {
				voters++
			}
		}
		if voters == 0 {
			sawFallback = true
		}
		want := f.PredictProbaOOB(i, row)
		got := batch[i*2 : i*2+2]
		//cabd:lint-ignore floateq the batch contract is bit-identity with the per-row oracle
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("row %d (voters=%d): batch %v, per-row %v", i, voters, got, want)
		}
	}
	if !sawFallback {
		t.Fatal("fixture never exercised the voters==0 fallback; raise the weight")
	}
}

// TestPredictProbaBatchEmpty pins the degenerate shapes: zero rows and a
// nil destination must not panic, and a snapshot-restored forest without
// in-bag info must still batch-predict.
func TestPredictProbaBatchEmpty(t *testing.T) {
	X, y := gaussData(rand.New(rand.NewSource(13)), 60, 3, 2)
	f := TrainWeighted(X, y, nil, Config{Trees: 5, NumClasses: 2}, rand.New(rand.NewSource(1)))
	empty := Matrix{Cols: [][]float64{{}, {}, {}}, N: 0}
	if got := f.PredictProbaBatch(empty, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d values", len(got))
	}
	if got := f.PredictProbaOOBBatch(empty, nil); len(got) != 0 {
		t.Fatalf("empty OOB batch returned %d values", len(got))
	}
}

// FuzzPredictBatch feeds arbitrary (including non-finite) feature values
// through the tree-major batch pass and demands bit-identity with the
// per-row oracle on every row.
func FuzzPredictBatch(f *testing.F) {
	X, y := gaussData(rand.New(rand.NewSource(21)), 150, 4, 3)
	fr := TrainWeighted(X, y, nil, Config{Trees: 15, NumClasses: 3}, rand.New(rand.NewSource(6)))
	f.Add(0.0, 1.0, -2.5, 3.75)
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), 0.0)
	f.Add(1e308, -1e308, 5e-324, -0.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		rows := [][]float64{
			{a, b, c, d},
			{d, c, b, a},
			{a, a, a, a},
		}
		m := RowMajor(rows)
		batch := fr.PredictProbaBatch(m, nil)
		for i, row := range rows {
			want := fr.PredictProba(row)
			got := batch[i*3 : i*3+3]
			for k := range want {
				same := got[k] == want[k] || (math.IsNaN(got[k]) && math.IsNaN(want[k])) //cabd:lint-ignore floateq the batch contract is bit-identity with the per-row oracle
				if !same {
					t.Fatalf("row %v class %d: batch %v, per-row %v", row, k, got, want)
				}
			}
		}
	})
}
