package forest

// Matrix is a column-major (structure-of-arrays) feature matrix:
// Cols[f][i] is feature f of row i. The scoring hot path fills one
// index-aligned column per feature, so training and tree-major batch
// inference stream through contiguous memory instead of chasing
// per-row slice headers. N is the row count; every column must have
// length N.
type Matrix struct {
	Cols [][]float64
	N    int
}

// RowMajor converts a row-major feature matrix (rows are feature
// vectors) into the column-major form. It is the bridge for callers
// that naturally produce rows; the detector's scoring pass fills
// columns directly.
func RowMajor(X [][]float64) Matrix {
	if len(X) == 0 {
		return Matrix{}
	}
	d := len(X[0])
	cols := make([][]float64, d)
	flat := make([]float64, d*len(X))
	for f := range cols {
		cols[f] = flat[f*len(X) : (f+1)*len(X)]
		for i, row := range X {
			cols[f][i] = row[f]
		}
	}
	return Matrix{Cols: cols, N: len(X)}
}

// NumFeatures returns the feature count (the number of columns).
func (m Matrix) NumFeatures() int { return len(m.Cols) }

// Row materializes row i into dst (grown as needed) and returns it —
// the row-major view used by the per-row differential oracle paths.
func (m Matrix) Row(dst []float64, i int) []float64 {
	if cap(dst) < len(m.Cols) {
		dst = make([]float64, len(m.Cols))
	}
	dst = dst[:len(m.Cols)]
	for f, col := range m.Cols {
		dst[f] = col[i]
	}
	return dst
}

// valid reports whether the matrix is rectangular with N rows.
func (m Matrix) valid() bool {
	for _, col := range m.Cols {
		if len(col) != m.N {
			return false
		}
	}
	return true
}
