// Package nn implements the small variational autoencoder that backs the
// DONUT baseline [40]: a one-hidden-layer Gaussian encoder/decoder over
// sliding windows, trained with Adam on the evidence lower bound. DONUT
// proper adds modified ELBO terms for missing data; this reproduction uses
// the plain VAE with a learned global output variance, which preserves the
// behaviour the paper's comparison exercises (reconstruction-probability
// anomaly scores over windows).
//
// Gradients are hand-derived and verified against numerical
// differentiation in the tests.
package nn

import (
	"math"
	"math/rand"
)

// VAE is a Gaussian variational autoencoder: window -> hidden(tanh) ->
// (mu_z, logvar_z); z -> hidden(tanh) -> mu_x with a learned per-dimension
// output log-variance.
type VAE struct {
	In, Hidden, Latent int

	// Encoder.
	w1, b1   []float64 // Hidden x In, Hidden
	w2m, b2m []float64 // Latent x Hidden, Latent
	w2l, b2l []float64 // Latent x Hidden, Latent
	// Decoder.
	w3, b3 []float64 // Hidden x Latent, Hidden
	w4, b4 []float64 // In x Hidden, In
	lvx    []float64 // In: global output log-variance

	params []*adamParam
}

type adamParam struct {
	v, g, m1, m2 []float64
}

// NewVAE allocates a VAE with Xavier-style initialization.
func NewVAE(in, hidden, latent int, rng *rand.Rand) *VAE {
	v := &VAE{In: in, Hidden: hidden, Latent: latent}
	init := func(rows, cols int) []float64 {
		w := make([]float64, rows*cols)
		scale := math.Sqrt(2.0 / float64(rows+cols))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		return w
	}
	v.w1, v.b1 = init(hidden, in), make([]float64, hidden)
	v.w2m, v.b2m = init(latent, hidden), make([]float64, latent)
	v.w2l, v.b2l = init(latent, hidden), make([]float64, latent)
	v.w3, v.b3 = init(hidden, latent), make([]float64, hidden)
	v.w4, v.b4 = init(in, hidden), make([]float64, in)
	v.lvx = make([]float64, in)
	for _, p := range [][]float64{v.w1, v.b1, v.w2m, v.b2m, v.w2l, v.b2l,
		v.w3, v.b3, v.w4, v.b4, v.lvx} {
		v.params = append(v.params, &adamParam{
			v: p, g: make([]float64, len(p)),
			m1: make([]float64, len(p)), m2: make([]float64, len(p)),
		})
	}
	return v
}

// matVec computes y = W x + b for a rows x cols matrix stored row-major.
func matVec(w []float64, x, b []float64, rows, cols int) []float64 {
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		s := b[r]
		row := w[r*cols : (r+1)*cols]
		for c, xv := range x {
			s += row[c] * xv
		}
		y[r] = s
	}
	return y
}

// matTVec computes y = W^T g for a rows x cols matrix.
func matTVec(w []float64, g []float64, rows, cols int) []float64 {
	y := make([]float64, cols)
	for r := 0; r < rows; r++ {
		row := w[r*cols : (r+1)*cols]
		gv := g[r]
		for c := range y {
			y[c] += row[c] * gv
		}
	}
	return y
}

func tanhVec(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// forward runs the network for input x with noise eps (len Latent) and
// returns every intermediate needed by backward.
type forwardPass struct {
	x, eps             []float64
	h1, muz, lvz, z    []float64
	h2, mux            []float64
	recon, kl, elboNeg float64
}

func (v *VAE) forward(x, eps []float64) *forwardPass {
	f := &forwardPass{x: x, eps: eps}
	f.h1 = tanhVec(matVec(v.w1, x, v.b1, v.Hidden, v.In))
	f.muz = matVec(v.w2m, f.h1, v.b2m, v.Latent, v.Hidden)
	f.lvz = matVec(v.w2l, f.h1, v.b2l, v.Latent, v.Hidden)
	f.z = make([]float64, v.Latent)
	for j := range f.z {
		f.z[j] = f.muz[j] + eps[j]*math.Exp(0.5*f.lvz[j])
	}
	f.h2 = tanhVec(matVec(v.w3, f.z, v.b3, v.Hidden, v.Latent))
	f.mux = matVec(v.w4, f.h2, v.b4, v.In, v.Hidden)
	for d := 0; d < v.In; d++ {
		diff := x[d] - f.mux[d]
		f.recon += 0.5*math.Log(2*math.Pi) + 0.5*v.lvx[d] +
			0.5*diff*diff*math.Exp(-v.lvx[d])
	}
	for j := 0; j < v.Latent; j++ {
		f.kl += -0.5 * (1 + f.lvz[j] - f.muz[j]*f.muz[j] - math.Exp(f.lvz[j]))
	}
	f.elboNeg = f.recon + f.kl
	return f
}

// backward accumulates parameter gradients of the negative ELBO into the
// Adam buffers for one forward pass.
func (v *VAE) backward(f *forwardPass) {
	gmux := make([]float64, v.In)
	for d := 0; d < v.In; d++ {
		diff := f.x[d] - f.mux[d]
		inv := math.Exp(-v.lvx[d])
		gmux[d] = -diff * inv
		// d recon / d lvx.
		v.grad(v.lvx)[d] += 0.5 - 0.5*diff*diff*inv
	}
	// Decoder output layer.
	v.accOuter(v.w4, gmux, f.h2)
	v.accVec(v.b4, gmux)
	dh2 := matTVec(v.w4, gmux, v.In, v.Hidden)
	da2 := make([]float64, v.Hidden)
	for i := range da2 {
		da2[i] = dh2[i] * (1 - f.h2[i]*f.h2[i])
	}
	v.accOuter(v.w3, da2, f.z)
	v.accVec(v.b3, da2)
	dz := matTVec(v.w3, da2, v.Hidden, v.Latent)
	// Through the reparameterization + KL.
	gmuz := make([]float64, v.Latent)
	glvz := make([]float64, v.Latent)
	for j := 0; j < v.Latent; j++ {
		gmuz[j] = dz[j] + f.muz[j]
		glvz[j] = dz[j]*f.eps[j]*0.5*math.Exp(0.5*f.lvz[j]) +
			0.5*(math.Exp(f.lvz[j])-1)
	}
	v.accOuter(v.w2m, gmuz, f.h1)
	v.accVec(v.b2m, gmuz)
	v.accOuter(v.w2l, glvz, f.h1)
	v.accVec(v.b2l, glvz)
	dh1 := matTVec(v.w2m, gmuz, v.Latent, v.Hidden)
	dh1b := matTVec(v.w2l, glvz, v.Latent, v.Hidden)
	da1 := make([]float64, v.Hidden)
	for i := range da1 {
		da1[i] = (dh1[i] + dh1b[i]) * (1 - f.h1[i]*f.h1[i])
	}
	v.accOuter(v.w1, da1, f.x)
	v.accVec(v.b1, da1)
}

// grad returns the gradient buffer registered for parameter slice p.
func (v *VAE) grad(p []float64) []float64 {
	for _, ap := range v.params {
		if &ap.v[0] == &p[0] {
			return ap.g
		}
	}
	panic("nn: unregistered parameter")
}

func (v *VAE) accOuter(w []float64, g, x []float64) {
	gw := v.grad(w)
	cols := len(x)
	for r, gv := range g {
		row := gw[r*cols : (r+1)*cols]
		for c, xv := range x {
			row[c] += gv * xv
		}
	}
}

func (v *VAE) accVec(b []float64, g []float64) {
	gb := v.grad(b)
	for i, gv := range g {
		gb[i] += gv
	}
}

func (v *VAE) zeroGrad() {
	for _, p := range v.params {
		for i := range p.g {
			p.g[i] = 0
		}
	}
}

// adamStep applies one Adam update with the accumulated gradients divided
// by batchSize.
func (v *VAE) adamStep(lr float64, t int, batchSize int) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(b1, float64(t))
	c2 := 1 - math.Pow(b2, float64(t))
	inv := 1 / float64(batchSize)
	for _, p := range v.params {
		for i := range p.v {
			g := p.g[i] * inv
			p.m1[i] = b1*p.m1[i] + (1-b1)*g
			p.m2[i] = b2*p.m2[i] + (1-b2)*g*g
			p.v[i] -= lr * (p.m1[i] / c1) / (math.Sqrt(p.m2[i]/c2) + eps)
		}
	}
}

// TrainConfig controls VAE training.
type TrainConfig struct {
	Epochs    int     // default 30
	BatchSize int     // default 32
	LR        float64 // default 1e-3
}

// Train fits the VAE on windows (rows of length In) by minimizing the
// negative ELBO with Adam. Returns the mean negative ELBO of the final
// epoch.
func (v *VAE) Train(windows [][]float64, cfg TrainConfig, rng *rand.Rand) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	n := len(windows)
	if n == 0 {
		return 0
	}
	step := 0
	var lastEpochLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := rng.Perm(n)
		var epochLoss float64
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			v.zeroGrad()
			for _, pi := range perm[start:end] {
				eps := make([]float64, v.Latent)
				for j := range eps {
					eps[j] = rng.NormFloat64()
				}
				f := v.forward(windows[pi], eps)
				epochLoss += f.elboNeg
				v.backward(f)
			}
			step++
			v.adamStep(cfg.LR, step, end-start)
		}
		lastEpochLoss = epochLoss / float64(n)
	}
	return lastEpochLoss
}

// ReconstructionNLL returns the Monte-Carlo estimate (nSamples draws) of
// the negative reconstruction log-likelihood of x — DONUT's anomaly score
// (higher = more anomalous).
func (v *VAE) ReconstructionNLL(x []float64, nSamples int, rng *rand.Rand) float64 {
	if nSamples <= 0 {
		nSamples = 8
	}
	var total float64
	for s := 0; s < nSamples; s++ {
		eps := make([]float64, v.Latent)
		for j := range eps {
			eps[j] = rng.NormFloat64()
		}
		f := v.forward(x, eps)
		total += f.recon
	}
	return total / float64(nSamples)
}

// NegELBO returns the single-sample negative ELBO of x with the supplied
// noise, exposed for gradient checking.
func (v *VAE) NegELBO(x, eps []float64) float64 {
	return v.forward(x, eps).elboNeg
}

// Params returns the flat parameter slices (exposed for gradient checks).
func (v *VAE) Params() [][]float64 {
	out := make([][]float64, len(v.params))
	for i, p := range v.params {
		out[i] = p.v
	}
	return out
}

// Grads returns the flat gradient slices parallel to Params.
func (v *VAE) Grads() [][]float64 {
	out := make([][]float64, len(v.params))
	for i, p := range v.params {
		out[i] = p.g
	}
	return out
}

// AccumulateGrad runs one forward/backward pass for (x, eps) on zeroed
// gradients (exposed for gradient checks).
func (v *VAE) AccumulateGrad(x, eps []float64) {
	v.zeroGrad()
	v.backward(v.forward(x, eps))
}
