package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestGradientCheck verifies every analytic gradient against central
// finite differences on a small network.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewVAE(4, 5, 2, rng)
	x := []float64{0.3, -0.7, 1.1, 0.2}
	eps := []float64{0.5, -1.2}

	v.AccumulateGrad(x, eps)
	analytic := make([][]float64, len(v.Grads()))
	for i, g := range v.Grads() {
		analytic[i] = append([]float64(nil), g...)
	}

	const h = 1e-5
	for pi, p := range v.Params() {
		for i := range p {
			orig := p[i]
			p[i] = orig + h
			lp := v.NegELBO(x, eps)
			p[i] = orig - h
			lm := v.NegELBO(x, eps)
			p[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-analytic[pi][i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v",
					pi, i, analytic[pi][i], num)
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Windows drawn from a simple 1-factor structure.
	windows := make([][]float64, 200)
	for i := range windows {
		base := rng.NormFloat64()
		w := make([]float64, 8)
		for j := range w {
			w[j] = base + 0.1*rng.NormFloat64()
		}
		windows[i] = w
	}
	v := NewVAE(8, 12, 3, rng)
	first := v.Train(windows, TrainConfig{Epochs: 1, LR: 1e-3}, rng)
	last := v.Train(windows, TrainConfig{Epochs: 25, LR: 1e-3}, rng)
	if last >= first {
		t.Errorf("training did not reduce loss: first %v, last %v", first, last)
	}
}

func TestAnomalousWindowScoresHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	windows := make([][]float64, 300)
	for i := range windows {
		w := make([]float64, 8)
		phase := rng.Float64() * 2 * math.Pi
		for j := range w {
			w[j] = math.Sin(phase+float64(j)*0.7) + 0.05*rng.NormFloat64()
		}
		windows[i] = w
	}
	v := NewVAE(8, 16, 3, rng)
	v.Train(windows, TrainConfig{Epochs: 40, LR: 2e-3}, rng)

	normal := windows[0]
	anomalous := make([]float64, 8)
	for j := range anomalous {
		anomalous[j] = 10 // far outside the training distribution
	}
	sn := v.ReconstructionNLL(normal, 16, rng)
	sa := v.ReconstructionNLL(anomalous, 16, rng)
	if sa <= sn {
		t.Errorf("anomalous NLL %v not above normal %v", sa, sn)
	}
}

func TestTrainEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := NewVAE(4, 4, 2, rng)
	if got := v.Train(nil, TrainConfig{}, rng); got != 0 {
		t.Errorf("empty training loss = %v", got)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	mk := func() float64 {
		rng := rand.New(rand.NewSource(5))
		v := NewVAE(4, 6, 2, rng)
		windows := [][]float64{{1, 2, 3, 4}, {2, 3, 4, 5}, {0, 1, 2, 3}}
		return v.Train(windows, TrainConfig{Epochs: 5}, rng)
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}
