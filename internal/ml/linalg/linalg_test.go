package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestZerosEye(t *testing.T) {
	z := Zeros(2, 3)
	if len(z) != 2 || len(z[0]) != 3 || z[1][2] != 0 {
		t.Errorf("Zeros = %v", z)
	}
	e := Eye(3)
	if e[0][0] != 1 || e[1][1] != 1 || e[0][1] != 0 {
		t.Errorf("Eye = %v", e)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := Clone(a)
	b[0][0] = 99
	if a[0][0] == 99 {
		t.Error("Clone aliased storage")
	}
}

func TestMeanVecAndCovariance(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	mu := MeanVec(data)
	if !almostEq(mu[0], 3, 1e-12) || !almostEq(mu[1], 4, 1e-12) {
		t.Errorf("MeanVec = %v", mu)
	}
	cov := Covariance(data, nil)
	// Column variance = ((2)^2+(0)^2+(2)^2)/3 = 8/3; perfect covariance.
	if !almostEq(cov[0][0], 8.0/3, 1e-12) || !almostEq(cov[0][1], 8.0/3, 1e-12) {
		t.Errorf("Covariance = %v", cov)
	}
	if cov[0][1] != cov[1][0] {
		t.Error("covariance not symmetric")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	a := [][]float64{{4, 2, 0.6}, {2, 3, 0.4}, {0.6, 0.4, 2}}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct L L^T and compare.
	n := len(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += l[i][k] * l[j][k]
			}
			if !almostEq(s, a[i][j], 1e-9) {
				t.Errorf("LL^T[%d][%d] = %v, want %v", i, j, s, a[i][j])
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 1}} // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPD {
		t.Errorf("expected ErrNotPD, got %v", err)
	}
}

func TestCholeskyDet(t *testing.T) {
	a := [][]float64{{4, 0}, {0, 9}}
	l, _ := Cholesky(a)
	if got := CholeskyDet(l); !almostEq(got, 36, 1e-9) {
		t.Errorf("det = %v, want 36", got)
	}
}

func TestSolveCholesky(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	l, _ := Cholesky(a)
	x := SolveCholesky(l, []float64{10, 8})
	// Verify A x = b.
	if !almostEq(4*x[0]+2*x[1], 10, 1e-9) || !almostEq(2*x[0]+3*x[1], 8, 1e-9) {
		t.Errorf("solution = %v", x)
	}
}

func TestMahalanobis2Identity(t *testing.T) {
	l, _ := Cholesky(Eye(2))
	got := Mahalanobis2([]float64{3, 4}, []float64{0, 0}, l)
	if !almostEq(got, 25, 1e-9) {
		t.Errorf("identity Mahalanobis^2 = %v, want 25", got)
	}
}

func TestGaussianLogPDFStandard(t *testing.T) {
	l, _ := Cholesky(Eye(1))
	got := GaussianLogPDF([]float64{0}, []float64{0}, l)
	want := math.Log(1 / math.Sqrt(2*math.Pi))
	if !almostEq(got, want, 1e-9) {
		t.Errorf("logpdf = %v, want %v", got, want)
	}
}

func TestGaussianLogPDFIntegratesToOne(t *testing.T) {
	// 1-D numeric integration over a wide grid.
	l, _ := Cholesky([][]float64{{2.25}})
	var sum float64
	dx := 0.01
	for x := -15.0; x <= 15.0; x += dx {
		sum += math.Exp(GaussianLogPDF([]float64{x}, []float64{1}, l)) * dx
	}
	if !almostEq(sum, 1, 1e-3) {
		t.Errorf("density mass = %v", sum)
	}
}

func TestRegularize(t *testing.T) {
	a := Zeros(2, 2)
	Regularize(a, 0.5)
	if a[0][0] != 0.5 || a[1][1] != 0.5 || a[0][1] != 0 {
		t.Errorf("Regularize = %v", a)
	}
}

// Property: for random SPD matrices (A = B B^T + eps I), Cholesky succeeds
// and solve satisfies the system.
func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		b := Zeros(n, n)
		for i := range b {
			for j := range b[i] {
				b[i][j] = rng.NormFloat64()
			}
		}
		a := Zeros(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					a[i][j] += b[i][k] * b[j][k]
				}
			}
			a[i][i] += 0.1
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("SPD matrix rejected: %v", err)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := SolveCholesky(l, rhs)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			if !almostEq(s, rhs[i], 1e-6) {
				t.Fatalf("trial %d: Ax[%d] = %v, want %v", trial, i, s, rhs[i])
			}
		}
	}
}
