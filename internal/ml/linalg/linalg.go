// Package linalg provides the small dense linear-algebra kernels the ML
// substrate needs: covariance estimation, Cholesky factorization,
// symmetric positive-definite inversion and determinants for the low
// dimensionalities (2-8) used by the GMM bootstrap and the MCD baseline.
// Matrices are [][]float64 in row-major order.
package linalg

import (
	"errors"
	"math"
)

// ErrNotPD is returned when a Cholesky factorization meets a non
// positive-definite matrix.
var ErrNotPD = errors.New("linalg: matrix not positive definite")

// Zeros returns an r x c zero matrix.
func Zeros(r, c int) [][]float64 {
	m := make([][]float64, r)
	buf := make([]float64, r*c)
	for i := range m {
		m[i], buf = buf[:c], buf[c:]
	}
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) [][]float64 {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// Clone deep-copies a matrix.
func Clone(a [][]float64) [][]float64 {
	out := Zeros(len(a), len(a[0]))
	for i := range a {
		copy(out[i], a[i])
	}
	return out
}

// MeanVec returns the column means of data (rows are observations).
func MeanVec(data [][]float64) []float64 {
	if len(data) == 0 {
		return nil
	}
	d := len(data[0])
	mu := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(len(data))
	}
	return mu
}

// Covariance returns the d x d covariance matrix of data around mu
// (population normalization). When mu is nil the column means are used.
func Covariance(data [][]float64, mu []float64) [][]float64 {
	n := len(data)
	if n == 0 {
		return nil
	}
	d := len(data[0])
	if mu == nil {
		mu = MeanVec(data)
	}
	cov := Zeros(d, d)
	for _, row := range data {
		for i := 0; i < d; i++ {
			di := row[i] - mu[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - mu[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n)
			cov[j][i] = cov[i][j]
		}
	}
	return cov
}

// Cholesky returns the lower-triangular L with A = L L^T, or ErrNotPD.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPD
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// CholeskyDet returns the determinant of A from its Cholesky factor L:
// det(A) = prod(L_ii)^2.
func CholeskyDet(l [][]float64) float64 {
	det := 1.0
	for i := range l {
		det *= l[i][i]
	}
	return det * det
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, by
// forward then backward substitution.
func SolveCholesky(l [][]float64, b []float64) []float64 {
	n := len(l)
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	// Backward: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
	return x
}

// Regularize adds eps to the diagonal of a (in place) and returns it,
// the standard fix for near-singular covariance estimates.
func Regularize(a [][]float64, eps float64) [][]float64 {
	for i := range a {
		a[i][i] += eps
	}
	return a
}

// Mahalanobis2 returns the squared Mahalanobis distance of x from mu under
// covariance factor L (the Cholesky factor of the covariance):
// (x-mu)^T Sigma^-1 (x-mu).
func Mahalanobis2(x, mu []float64, l [][]float64) float64 {
	d := make([]float64, len(x))
	for i := range x {
		d[i] = x[i] - mu[i]
	}
	// Solve L z = d; distance is ||z||^2.
	n := len(l)
	z := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		s := d[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * z[k]
		}
		z[i] = s / l[i][i]
		sum += z[i] * z[i]
	}
	return sum
}

// GaussianLogPDF evaluates the log density of a multivariate normal with
// mean mu and Cholesky factor l of its covariance at x.
func GaussianLogPDF(x, mu []float64, l [][]float64) float64 {
	d := float64(len(x))
	m2 := Mahalanobis2(x, mu, l)
	logDet := 0.0
	for i := range l {
		logDet += math.Log(l[i][i])
	}
	return -0.5*m2 - logDet - 0.5*d*math.Log(2*math.Pi)
}
