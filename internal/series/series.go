// Package series defines the time-series model of the paper (Definition 1):
// equally spaced observations, optionally carrying ground-truth labels for
// anomalies and change points. It provides standardization (Equation 2),
// the 2-D point embedding over which Euclidean distances are computed
// (Definition 2, matching Example 2 of the paper), and the first/second
// difference operators of the candidate-estimation step (Definitions 3-4).
package series

import (
	"fmt"
	"math"

	"cabd/internal/stats"
)

// Label classifies a single data point of a series.
type Label uint8

// Point labels. Normal is the zero value so an unlabeled series is all
// normal. SingleAnomaly and CollectiveAnomaly are both errors in the
// paper's sense; ChangePoint is a notable event that must be preserved.
const (
	Normal Label = iota
	SingleAnomaly
	CollectiveAnomaly
	ChangePoint
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case Normal:
		return "normal"
	case SingleAnomaly:
		return "single-anomaly"
	case CollectiveAnomaly:
		return "collective-anomaly"
	case ChangePoint:
		return "change-point"
	default:
		return fmt.Sprintf("label(%d)", uint8(l))
	}
}

// IsAnomaly reports whether the label denotes a data error.
func (l Label) IsAnomaly() bool { return l == SingleAnomaly || l == CollectiveAnomaly }

// Series is a univariate, equally spaced time series. Values holds the raw
// observations. Labels, when non-nil, has the same length and records the
// ground truth used by the simulated oracle and the evaluation metrics.
// Truth, when non-nil, carries the clean values before error injection and
// drives the RMS repair experiments.
type Series struct {
	Name   string
	Values []float64
	Labels []Label
	Truth  []float64
}

// New returns an unlabeled series over values. The slice is used directly,
// not copied.
func New(name string, values []float64) *Series {
	return &Series{Name: name, Values: values}
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Values) }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	c := &Series{Name: s.Name}
	c.Values = append([]float64(nil), s.Values...)
	if s.Labels != nil {
		c.Labels = append([]Label(nil), s.Labels...)
	}
	if s.Truth != nil {
		c.Truth = append([]float64(nil), s.Truth...)
	}
	return c
}

// EnsureLabels allocates the label slice if missing and returns it.
func (s *Series) EnsureLabels() []Label {
	if s.Labels == nil {
		s.Labels = make([]Label, len(s.Values))
	}
	return s.Labels
}

// LabelAt returns the ground-truth label of index i, Normal when the
// series is unlabeled or i is out of range.
func (s *Series) LabelAt(i int) Label {
	if s.Labels == nil || i < 0 || i >= len(s.Labels) {
		return Normal
	}
	return s.Labels[i]
}

// AnomalyIndices returns the indices labeled as single or collective
// anomalies, in order.
func (s *Series) AnomalyIndices() []int {
	var out []int
	for i, l := range s.Labels {
		if l.IsAnomaly() {
			out = append(out, i)
		}
	}
	return out
}

// ChangePointIndices returns the indices labeled as change points, in order.
func (s *Series) ChangePointIndices() []int {
	var out []int
	for i, l := range s.Labels {
		if l == ChangePoint {
			out = append(out, i)
		}
	}
	return out
}

// Standardized returns a copy of the series whose values have zero mean and
// unit standard deviation (Equation 2). Labels and Truth are shared with
// the receiver, values are fresh.
func (s *Series) Standardized() *Series {
	return &Series{
		Name:   s.Name,
		Values: stats.Standardize(s.Values),
		Labels: s.Labels,
		Truth:  s.Truth,
	}
}

// Points embeds the series into 2-D Euclidean space as
// (standardized index, standardized value) pairs — the space over which
// INN distances are computed. Standardizing both coordinates lets the
// index and value dimensions mix, as Section II prescribes.
func (s *Series) Points() [][2]float64 {
	n := len(s.Values)
	pts := make([][2]float64, n)
	idx := make([]float64, n)
	for i := range idx {
		idx[i] = float64(i)
	}
	si := stats.Standardize(idx)
	sv := stats.Standardize(s.Values)
	for i := 0; i < n; i++ {
		pts[i] = [2]float64{si[i], sv[i]}
	}
	return pts
}

// Dist returns the Euclidean distance between two 2-D points
// (Definition 2).
func Dist(p, q [2]float64) float64 {
	dx := p[0] - q[0]
	dy := p[1] - q[1]
	return math.Sqrt(dx*dx + dy*dy)
}

// FirstDiff returns the absolute first difference |x_i - x_{i-1}|
// (Definition 5 numbering in the paper text; Equation 5). Element 0 is 0.
func FirstDiff(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i := 1; i < len(xs); i++ {
		out[i] = math.Abs(xs[i] - xs[i-1])
	}
	return out
}

// SecondDiff returns the absolute second difference |Δx_i - Δx_{i-1}|
// (Equation 4), the paper's per-point "anomaly score" ∂ (Equation 6) used
// for candidate estimation. Elements 0 and 1 are 0.
func SecondDiff(xs []float64) []float64 {
	d := FirstDiff(xs)
	out := make([]float64, len(xs))
	for i := 2; i < len(xs); i++ {
		out[i] = math.Abs(d[i] - d[i-1])
	}
	return out
}

// Window returns the half-open slice of values clamped to the series
// bounds: values[max(0,lo):min(n,hi)].
func (s *Series) Window(lo, hi int) []float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if lo >= hi {
		return nil
	}
	return s.Values[lo:hi]
}
