package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cabd/internal/stats"
)

func TestLabelString(t *testing.T) {
	cases := map[Label]string{
		Normal:            "normal",
		SingleAnomaly:     "single-anomaly",
		CollectiveAnomaly: "collective-anomaly",
		ChangePoint:       "change-point",
		Label(9):          "label(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Label(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestIsAnomaly(t *testing.T) {
	if !SingleAnomaly.IsAnomaly() || !CollectiveAnomaly.IsAnomaly() {
		t.Error("anomaly labels not recognized")
	}
	if Normal.IsAnomaly() || ChangePoint.IsAnomaly() {
		t.Error("non-anomaly labels misclassified")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New("x", []float64{1, 2, 3})
	s.EnsureLabels()[1] = SingleAnomaly
	s.Truth = []float64{1, 2, 3}
	c := s.Clone()
	c.Values[0] = 99
	c.Labels[0] = ChangePoint
	c.Truth[2] = 99
	if s.Values[0] == 99 || s.Labels[0] == ChangePoint || s.Truth[2] == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestLabelAt(t *testing.T) {
	s := New("x", []float64{1, 2, 3})
	if s.LabelAt(1) != Normal {
		t.Error("unlabeled series should report Normal")
	}
	s.EnsureLabels()[2] = ChangePoint
	if s.LabelAt(2) != ChangePoint {
		t.Error("label not returned")
	}
	if s.LabelAt(-1) != Normal || s.LabelAt(10) != Normal {
		t.Error("out-of-range should be Normal")
	}
}

func TestIndexAccessors(t *testing.T) {
	s := New("x", make([]float64, 6))
	l := s.EnsureLabels()
	l[1] = SingleAnomaly
	l[2] = CollectiveAnomaly
	l[4] = ChangePoint
	an := s.AnomalyIndices()
	if len(an) != 2 || an[0] != 1 || an[1] != 2 {
		t.Errorf("AnomalyIndices = %v", an)
	}
	cp := s.ChangePointIndices()
	if len(cp) != 1 || cp[0] != 4 {
		t.Errorf("ChangePointIndices = %v", cp)
	}
}

func TestStandardized(t *testing.T) {
	s := New("x", []float64{10, 20, 30, 40})
	z := s.Standardized()
	if !almostEq(stats.Mean(z.Values), 0, 1e-12) || !almostEq(stats.Std(z.Values), 1, 1e-12) {
		t.Errorf("standardized moments wrong: %v", z.Values)
	}
	if s.Values[0] != 10 {
		t.Error("Standardized mutated the original")
	}
}

func TestPointsEmbedding(t *testing.T) {
	s := New("x", []float64{1, 2, 3, 4, 5})
	pts := s.Points()
	if len(pts) != 5 {
		t.Fatalf("len(pts) = %d", len(pts))
	}
	// For a linear ramp both standardized coordinates coincide.
	for _, p := range pts {
		if !almostEq(p[0], p[1], 1e-12) {
			t.Errorf("ramp embedding mismatch: %v", p)
		}
	}
}

func TestDist(t *testing.T) {
	if got := Dist([2]float64{0, 0}, [2]float64{3, 4}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist([2]float64{1, 1}, [2]float64{1, 1}); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestDiffs(t *testing.T) {
	xs := []float64{1, 3, 2, 2, 10}
	d1 := FirstDiff(xs)
	want1 := []float64{0, 2, 1, 0, 8}
	for i := range want1 {
		if d1[i] != want1[i] {
			t.Errorf("FirstDiff[%d] = %v, want %v", i, d1[i], want1[i])
		}
	}
	d2 := SecondDiff(xs)
	want2 := []float64{0, 0, 1, 1, 8}
	for i := range want2 {
		if d2[i] != want2[i] {
			t.Errorf("SecondDiff[%d] = %v, want %v", i, d2[i], want2[i])
		}
	}
}

func TestSecondDiffSpikeResponse(t *testing.T) {
	// A single spike in an otherwise constant series creates a strong
	// second-difference response around it.
	xs := make([]float64, 20)
	xs[10] = 100
	// With the paper's absolute first difference (Eq. 5), a symmetric
	// spike produces |Δ|=100 on both flanks, so Δ″ peaks at the spike
	// index and the index after the descent, and is 0 in between.
	d2 := SecondDiff(xs)
	if d2[10] != 100 || d2[11] != 0 || d2[12] != 100 {
		t.Errorf("spike response = %v %v %v", d2[10], d2[11], d2[12])
	}
	if d2[5] != 0 {
		t.Error("flat region should have zero second diff")
	}
}

func TestWindowClamping(t *testing.T) {
	s := New("x", []float64{0, 1, 2, 3, 4})
	if w := s.Window(-3, 2); len(w) != 2 || w[0] != 0 {
		t.Errorf("Window(-3,2) = %v", w)
	}
	if w := s.Window(3, 99); len(w) != 2 || w[1] != 4 {
		t.Errorf("Window(3,99) = %v", w)
	}
	if w := s.Window(4, 2); w != nil {
		t.Errorf("inverted window = %v", w)
	}
}

// Property: Dist is a metric (symmetry, identity, triangle inequality).
func TestDistMetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := [2]float64{clamp(ax), clamp(ay)}
		b := [2]float64{clamp(bx), clamp(by)}
		c := [2]float64{clamp(cx), clamp(cy)}
		dab, dba := Dist(a, b), Dist(b, a)
		if dab != dba {
			return false
		}
		if Dist(a, a) != 0 {
			return false
		}
		return Dist(a, c) <= dab+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: second difference of any affine sequence is identically zero.
func TestSecondDiffAffineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.NormFloat64()*10, rng.NormFloat64()*5
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = a + b*float64(i)
		}
		for i, v := range SecondDiff(xs) {
			if !almostEq(v, 0, 1e-9) {
				t.Fatalf("affine second diff [%d] = %v (a=%v b=%v)", i, v, a, b)
			}
		}
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
