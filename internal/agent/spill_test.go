package agent

import (
	"errors"
	"fmt"
	"testing"

	"cabd/httpapi"
)

func dets(stream string, from, n int) []httpapi.ForwardedDetection {
	out := make([]httpapi.ForwardedDetection, n)
	for i := range out {
		out[i] = httpapi.ForwardedDetection{
			Key:    fmt.Sprintf("a/%s/%d", stream, from+i),
			Stream: stream, Index: from + i, Subtype: "single-anomaly", Confidence: 0.9,
		}
	}
	return out
}

// TestSpillOrderAndReopen: segments replay strictly in write order,
// including segments inherited from a previous process.
func TestSpillOrderAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpill(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.add(dets("cpu", 0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.add(dets("cpu", 3, 2)); err != nil {
		t.Fatal(err)
	}

	// A new process inherits both segments in order.
	s2, err := openSpill(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.pending(); got != 5 {
		t.Fatalf("pending after reopen = %d, want 5", got)
	}
	var replayed []string
	n, err := s2.replay(func(batch []httpapi.ForwardedDetection) error {
		for _, d := range batch {
			replayed = append(replayed, d.Key)
		}
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("replay = %d, %v; want 5, nil", n, err)
	}
	for i, k := range replayed {
		if want := fmt.Sprintf("a/cpu/%d", i); k != want {
			t.Fatalf("replay order broken at %d: %q != %q", i, k, want)
		}
	}
	if s2.pending() != 0 || s2.bytes() != 0 {
		t.Fatalf("drained spill still reports %d dets / %d bytes", s2.pending(), s2.bytes())
	}
}

// TestSpillReplayStopsOnFailure: a failed send leaves the segment (and
// everything after it) intact for the next attempt.
func TestSpillReplayStopsOnFailure(t *testing.T) {
	s, err := openSpill(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.add(dets("cpu", 0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.add(dets("cpu", 2, 2)); err != nil {
		t.Fatal(err)
	}
	calls := 0
	n, err := s.replay(func([]httpapi.ForwardedDetection) error {
		calls++
		if calls == 2 {
			return errors.New("server gone")
		}
		return nil
	})
	if err == nil || n != 2 {
		t.Fatalf("replay = %d, %v; want 2 then the error", n, err)
	}
	if s.pending() != 2 {
		t.Fatalf("pending after partial replay = %d, want 2", s.pending())
	}
}

// TestSpillCapDropsOldest: past the byte cap the OLDEST segments go,
// and the just-written one always survives.
func TestSpillCapDropsOldest(t *testing.T) {
	s, err := openSpill(t.TempDir(), 1) // absurdly small: every add evicts predecessors
	if err != nil {
		t.Fatal(err)
	}
	if dropped, err := s.add(dets("cpu", 0, 3)); err != nil || dropped != 0 {
		t.Fatalf("first add: dropped %d, %v", dropped, err)
	}
	dropped, err := s.add(dets("cpu", 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want the 3 oldest", dropped)
	}
	var keys []string
	if _, err := s.replay(func(batch []httpapi.ForwardedDetection) error {
		for _, d := range batch {
			keys = append(keys, d.Key)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a/cpu/3" {
		t.Fatalf("survivors = %v, want the newest segment only", keys)
	}
}
