package agent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cabd/httpapi"
)

// spill is the bounded disk-backed buffer detections fall into when the
// server is unreachable: each failed flush becomes one NDJSON segment
// file, segments replay strictly in write order once the server is
// back, and the total on-disk size is capped — past the cap the OLDEST
// segments are dropped (and counted), because the newest detections are
// the ones an operator still cares about after a long outage.
type spill struct {
	dir string
	max int64

	seq  int64
	segs []spillSegment
}

type spillSegment struct {
	path  string
	bytes int64
	count int
}

// openSpill prepares dir and reloads any segments a previous process
// left behind, in order.
func openSpill(dir string, max int64) (*spill, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "spill-*.ndjson"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	s := &spill{dir: dir, max: max}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		n, err := countLines(p)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, spillSegment{path: p, bytes: info.Size(), count: n})
		base := strings.TrimSuffix(filepath.Base(p), ".ndjson")
		if seq, err := strconv.ParseInt(strings.TrimPrefix(base, "spill-"), 10, 64); err == nil && seq >= s.seq {
			s.seq = seq + 1
		}
	}
	return s, nil
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n, sc.Err()
}

// add writes dets as one new segment and enforces the byte cap,
// dropping oldest segments as needed. It returns how many detections
// the cap discarded.
func (s *spill) add(dets []httpapi.ForwardedDetection) (dropped int, err error) {
	if len(dets) == 0 {
		return 0, nil
	}
	var buf []byte
	for _, d := range dets {
		line, merr := json.Marshal(d)
		if merr != nil {
			return 0, merr
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	path := filepath.Join(s.dir, fmt.Sprintf("spill-%012d.ndjson", s.seq))
	if err := atomicWriteFile(path, buf); err != nil {
		return 0, err
	}
	s.seq++
	s.segs = append(s.segs, spillSegment{path: path, bytes: int64(len(buf)), count: len(dets)})
	// Enforce the cap, never dropping the segment just written: a
	// single oversized batch still survives until its replay attempt.
	for len(s.segs) > 1 && s.bytes() > s.max {
		old := s.segs[0]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			return dropped, err
		}
		s.segs = s.segs[1:]
		dropped += old.count
	}
	return dropped, nil
}

// replay feeds spilled segments to send in write order, deleting each
// segment once its batch is acknowledged. It stops at the first send
// failure — order preservation matters more than drain speed — and
// returns how many detections were replayed.
func (s *spill) replay(send func([]httpapi.ForwardedDetection) error) (replayed int, err error) {
	for len(s.segs) > 0 {
		seg := s.segs[0]
		dets, err := readSegment(seg.path)
		if err != nil {
			return replayed, err
		}
		if len(dets) > 0 {
			if err := send(dets); err != nil {
				return replayed, err
			}
		}
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return replayed, err
		}
		s.segs = s.segs[1:]
		replayed += len(dets)
	}
	return replayed, nil
}

func readSegment(path string) ([]httpapi.ForwardedDetection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var out []httpapi.ForwardedDetection
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d httpapi.ForwardedDetection
		if err := json.Unmarshal(line, &d); err != nil {
			// Segments are written atomically, so a torn line cannot
			// happen; a malformed one means external corruption. Skip it
			// rather than wedge the replay queue forever.
			continue
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

// pending reports how many detections sit in the buffer.
func (s *spill) pending() int {
	n := 0
	for _, seg := range s.segs {
		n += seg.count
	}
	return n
}

// bytes reports the buffer's on-disk size.
func (s *spill) bytes() int64 {
	var b int64
	for _, seg := range s.segs {
		b += seg.bytes
	}
	return b
}
