package agent

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cabd"
	"cabd/client"
	"cabd/httpapi"
	"cabd/internal/obs"
)

// Agent is one collector instance. All methods including Run are
// single-threaded by design (guarded by mu so a SIGHUP Reload from the
// signal goroutine is the only concurrency); the progress invariant is
// that a detection is always in exactly one of three places — acked by
// the server, in the spill buffer, or re-derivable from the checkpoint.
type Agent struct {
	mu    sync.Mutex
	cfg   Config
	cl    *client.Client
	rec   *obs.Recorder
	sleep obs.SleepFunc

	streams map[string]*cabd.StreamDetector
	offsets map[string]int64
	queue   []httpapi.ForwardedDetection
	spill   *spill // nil when StateDir is empty
}

// checkpoint is the agent's durable state (agent.json in StateDir):
// how far into each source it has read and each stream detector's
// snapshot. It is written only AFTER the poll's detections were either
// acknowledged or spilled, so a crash between detection and checkpoint
// re-reads the same bytes, re-derives the same detections with the
// same idempotency keys, and the server's dedup absorbs the replay —
// at-least-once without a write-ahead log.
type checkpoint struct {
	Offsets map[string]int64           `json:"offsets"`
	Streams map[string]cabd.StreamState `json:"streams"`
}

// New builds an Agent, restoring its checkpoint and spill buffer from
// StateDir when present.
func New(cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:     cfg,
		rec:     cfg.Recorder,
		sleep:   cfg.Sleep,
		streams: map[string]*cabd.StreamDetector{},
		offsets: map[string]int64{},
	}
	if a.rec == nil {
		a.rec = obs.New()
	}
	if a.sleep == nil {
		a.sleep = obs.Sleep
	}
	// Every retry pause inside the client is one counted retry; routing
	// the policy's sleep through the agent keeps the whole process on
	// the injectable clock.
	retrySleep := func(ctx context.Context, d time.Duration) error {
		a.rec.Add(obs.CounterAgentRetries, 1)
		return a.sleep(ctx, d)
	}
	a.cl = client.New(cfg.Server, client.WithRetry(client.RetryPolicy{
		Backoff:     cfg.Backoff,
		MaxAttempts: cfg.MaxAttempts,
		Sleep:       retrySleep,
	}))
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("state dir: %w", err)
		}
		sp, err := openSpill(filepath.Join(cfg.StateDir, "spill"), cfg.SpillMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("open spill: %w", err)
		}
		a.spill = sp
		if err := a.loadCheckpoint(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Recorder exposes the agent's metrics recorder.
func (a *Agent) Recorder() *obs.Recorder { return a.rec }

// streamConfig builds the per-stream detector configuration.
func (a *Agent) streamConfig() cabd.StreamConfig {
	return cabd.StreamConfig{
		Window:  a.cfg.Window,
		Hop:     a.cfg.Hop,
		Margin:  a.cfg.Margin,
		Options: cabd.Options{Seed: a.cfg.Seed},
	}
}

func (a *Agent) checkpointPath() string {
	return filepath.Join(a.cfg.StateDir, "agent.json")
}

// loadCheckpoint restores offsets and stream detectors.
func (a *Agent) loadCheckpoint() error {
	data, err := os.ReadFile(a.checkpointPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("load checkpoint: %w", err)
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("load checkpoint %s: %w", a.checkpointPath(), err)
	}
	if cp.Offsets != nil {
		a.offsets = cp.Offsets
	}
	for name, st := range cp.Streams {
		a.streams[name] = cabd.ResumeStream(a.streamConfig(), st)
	}
	return nil
}

// saveCheckpoint persists offsets + stream snapshots atomically.
func (a *Agent) saveCheckpoint() error {
	if a.cfg.StateDir == "" {
		return nil
	}
	cp := checkpoint{Offsets: a.offsets, Streams: map[string]cabd.StreamState{}}
	for name, det := range a.streams {
		cp.Streams[name] = det.State()
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	return atomicWriteFile(a.checkpointPath(), data)
}

// atomicWriteFile writes data via temp-file-plus-rename in the target's
// directory, so a crash mid-write never leaves a torn file.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// PollOnce runs one full collect→forward→checkpoint cycle: tail every
// source past its offset, push new values through the per-stream
// detectors, enqueue confirmed detections, flush (replaying any spill
// first), then checkpoint. Exported so tests and the load experiment
// drive cycles deterministically without the Run loop's pacing.
func (a *Agent) PollOnce(ctx context.Context) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pollLocked(ctx)
}

func (a *Agent) pollLocked(ctx context.Context) error {
	if err := a.collectLocked(); err != nil {
		return err
	}
	safe := a.flushLocked(ctx)
	if !safe {
		// Detections are sitting only in memory (spill unavailable or
		// failed): checkpointing offsets now would strand them across a
		// crash. Skip; next cycle re-reads nothing new but retries the
		// flush, and the checkpoint resumes once the data is safe.
		return nil
	}
	if err := a.saveCheckpoint(); err != nil {
		a.logf("cabd-agent: checkpoint: %v", err)
	}
	return nil
}

// collectLocked tails the sources and turns new values into queued
// detections.
func (a *Agent) collectLocked() error {
	paths, err := scanSources(a.cfg.SourceDir)
	if err != nil {
		return fmt.Errorf("scan sources: %w", err)
	}
	for _, path := range paths {
		name := streamName(path)
		vals, newOff, err := readNewValues(path, a.offsets[path])
		if err != nil {
			a.logf("cabd-agent: tail %s: %v", path, err)
			continue
		}
		if len(vals) == 0 {
			a.offsets[path] = newOff
			continue
		}
		det := a.streams[name]
		if det == nil {
			det = cabd.NewStream(a.streamConfig())
			a.streams[name] = det
		}
		for _, v := range vals {
			for _, d := range det.Push(v) {
				a.queue = append(a.queue, httpapi.ForwardedDetection{
					Key:        detectionKey(a.cfg.Name, name, d.Index),
					Stream:     name,
					Index:      d.Index,
					Subtype:    d.Subtype.String(),
					Confidence: d.Confidence,
				})
			}
		}
		a.offsets[path] = newOff
	}
	return nil
}

// flushLocked moves every pending detection toward the server: spilled
// segments replay first (order preservation), then the in-memory queue
// goes out in batches. Any failure spills the remaining queue to disk.
// It reports whether all detections ended up safe (acked or on disk) —
// false means some are only in memory and the checkpoint must wait.
func (a *Agent) flushLocked(ctx context.Context) (safe bool) {
	send := func(dets []httpapi.ForwardedDetection) error {
		resp, err := a.cl.Ingest(ctx, httpapi.IngestRequest{Agent: a.cfg.Name, Detections: dets})
		if err != nil {
			return err
		}
		a.rec.Add(obs.CounterAgentForwarded, int64(resp.Accepted))
		return nil
	}

	if a.spill != nil && a.spill.pending() > 0 {
		replayed, err := a.spill.replay(send)
		if replayed > 0 {
			a.rec.Add(obs.CounterAgentReplayed, int64(replayed))
		}
		if err != nil {
			a.logf("cabd-agent: spill replay stopped: %v", err)
			return a.spillQueueLocked()
		}
	}
	for len(a.queue) > 0 {
		n := a.cfg.BatchSize
		if n > len(a.queue) {
			n = len(a.queue)
		}
		if err := send(a.queue[:n]); err != nil {
			a.logf("cabd-agent: forward %d detections: %v", n, err)
			return a.spillQueueLocked()
		}
		a.queue = a.queue[n:]
	}
	return true
}

// spillQueueLocked pushes the whole in-memory queue into the spill
// buffer, reporting whether the detections are now safe on disk.
func (a *Agent) spillQueueLocked() bool {
	if len(a.queue) == 0 {
		return true
	}
	if a.spill == nil {
		return false // no StateDir: queue can only wait in memory
	}
	dropped, err := a.spill.add(a.queue)
	if err != nil {
		a.logf("cabd-agent: spill %d detections: %v", len(a.queue), err)
		return false
	}
	a.rec.Add(obs.CounterAgentSpilled, int64(len(a.queue)))
	if dropped > 0 {
		a.rec.Add(obs.CounterAgentSpillDropped, int64(dropped))
		a.logf("cabd-agent: spill cap exceeded, dropped %d oldest detections", dropped)
	}
	a.queue = nil
	return true
}

// Run polls until ctx is cancelled, then performs a final offline
// drain: whatever is still pending spills to disk and the checkpoint is
// written, so a SIGTERM loses nothing — the next boot replays the
// spill. The error is ctx's cause only when the drain also failed to
// make the data safe.
func (a *Agent) Run(ctx context.Context) error {
	for {
		if err := a.PollOnce(ctx); err != nil {
			a.logf("cabd-agent: poll: %v", err)
		}
		if err := a.sleep(ctx, a.pollEvery()); err != nil {
			break
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Offline drain: no network (the context is dead), just disk.
	if !a.spillQueueLocked() && len(a.queue) > 0 {
		return fmt.Errorf("shutdown with %d detections stranded in memory", len(a.queue))
	}
	if err := a.saveCheckpoint(); err != nil {
		return fmt.Errorf("final checkpoint: %w", err)
	}
	return nil
}

// Reload applies a hot configuration update (SIGHUP): pacing, batching,
// spill cap and retry shape change in place; identity fields — name,
// server, directories, detector shape — are ignored with a log line,
// because changing them safely means restarting (they anchor
// idempotency keys, checkpoints and on-disk state).
func (a *Agent) Reload(cfg Config) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, ig := range []struct{ field, old, new string }{
		{"name", a.cfg.Name, cfg.Name},
		{"server", a.cfg.Server, cfg.Server},
		{"source-dir", a.cfg.SourceDir, cfg.SourceDir},
		{"state-dir", a.cfg.StateDir, cfg.StateDir},
	} {
		if ig.old != ig.new {
			a.logf("cabd-agent: reload: %s change (%q -> %q) ignored; restart to apply", ig.field, ig.old, ig.new)
		}
	}
	if cfg.Window != a.cfg.Window || cfg.Hop != a.cfg.Hop || cfg.Margin != a.cfg.Margin || cfg.Seed != a.cfg.Seed {
		a.logf("cabd-agent: reload: detector shape change ignored; restart to apply")
	}
	a.cfg.PollEvery = cfg.PollEvery
	a.cfg.BatchSize = cfg.BatchSize
	a.cfg.SpillMaxBytes = cfg.SpillMaxBytes
	if a.spill != nil {
		a.spill.max = cfg.SpillMaxBytes
	}
	if cfg.Backoff != a.cfg.Backoff || cfg.MaxAttempts != a.cfg.MaxAttempts {
		a.cfg.Backoff = cfg.Backoff
		a.cfg.MaxAttempts = cfg.MaxAttempts
		retrySleep := func(ctx context.Context, d time.Duration) error {
			a.rec.Add(obs.CounterAgentRetries, 1)
			return a.sleep(ctx, d)
		}
		a.cl = client.New(a.cfg.Server, client.WithRetry(client.RetryPolicy{
			Backoff:     a.cfg.Backoff,
			MaxAttempts: a.cfg.MaxAttempts,
			Sleep:       retrySleep,
		}))
	}
	a.logf("cabd-agent: reload applied (poll-every %v, batch-size %d, spill cap %d bytes)",
		a.cfg.PollEvery, a.cfg.BatchSize, a.cfg.SpillMaxBytes)
}

// Pending reports the detections not yet acknowledged by the server:
// the in-memory queue plus the spill buffer.
func (a *Agent) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.queue)
	if a.spill != nil {
		n += a.spill.pending()
	}
	return n
}

func (a *Agent) pollEvery() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.PollEvery
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}
