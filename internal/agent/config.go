// Package agent implements the cabd collector (cmd/cabd-agent): it
// tails time-series sources from a directory, runs local streaming
// detection, and forwards confirmed detections to a cabd-serve instance
// with an at-least-once, crash-safe transport — capped exponential
// backoff with seeded jitter, a bounded disk-backed spill buffer for
// disconnects, and idempotency keys so the server deduplicates
// redeliveries.
//
// The agent is deliberately single-threaded: one Run loop polls
// sources, flushes detections and checkpoints its state (source
// offsets + stream-detector snapshots) in a fixed order, so every unit
// of progress is either durably acknowledged by the server, sitting in
// the spill buffer, or re-derivable from the checkpoint. All waiting
// goes through an injectable sleep and all time through an injectable
// clock, so tests pin the exact retry schedule with a FakeClock.
package agent

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cabd/client"
	"cabd/internal/obs"
)

// Config parameterizes an Agent. Layering is Default ← ApplyFile ←
// ApplyEnv ← flags (register flags after the first three layers so the
// current values become the flag defaults); cmd/cabd-agent re-runs the
// same layering on SIGHUP and hands the result to Reload.
type Config struct {
	// Name identifies this collector; it prefixes every idempotency key,
	// so two agents tailing the same source never collide.
	Name string
	// Server is the cabd-serve base URL detections are forwarded to.
	Server string
	// SourceDir is the directory tailed for *.csv / *.ndjson sources;
	// each file is one stream named after its base name.
	SourceDir string
	// StateDir holds the agent's durable state: the checkpoint
	// (agent.json) and the spill buffer (spill/). Empty disables
	// persistence — the agent is then only as reliable as its process.
	StateDir string

	// PollEvery is the source-scan cadence (default 2s). FlushEvery is
	// accepted for config compatibility but flushing happens every poll.
	PollEvery time.Duration
	// BatchSize caps detections per forward request (default 64).
	BatchSize int
	// SpillMaxBytes bounds the on-disk spill buffer; when a new segment
	// would exceed it the oldest segments are dropped and counted
	// (default 32 MiB).
	SpillMaxBytes int64

	// Backoff shapes the forwarder's retry delays; MaxAttempts is the
	// per-flush try count including the first (default 4).
	Backoff     client.Backoff
	MaxAttempts int

	// Window, Hop, Margin configure the per-stream detectors (defaults
	// from cabd.StreamConfig); Seed fixes the detection pipeline's
	// stochastic components.
	Window int
	Hop    int
	Margin int
	Seed   int64

	// Runtime dependencies — never part of the file/env/flag layers.
	// Recorder receives the agent's counters (nil: a fresh wall-clock
	// recorder). Sleep is how the agent and its retries wait (nil:
	// obs.Sleep). Logf receives operational lines (nil: silent).
	Recorder *obs.Recorder
	Sleep    obs.SleepFunc
	Logf     func(format string, args ...any)
}

// Default is the base layer of the configuration.
func Default() Config {
	return Config{
		Name:          "agent",
		PollEvery:     2 * time.Second,
		BatchSize:     64,
		SpillMaxBytes: 32 << 20,
		MaxAttempts:   4,
	}
}

// fileConfig is the JSON shape of a config file: every field optional
// (absent fields keep the previous layer), durations as strings
// ("250ms", "5s").
type fileConfig struct {
	Name          *string  `json:"name"`
	Server        *string  `json:"server"`
	SourceDir     *string  `json:"source_dir"`
	StateDir      *string  `json:"state_dir"`
	PollEvery     *string  `json:"poll_every"`
	BatchSize     *int     `json:"batch_size"`
	SpillMaxBytes *int64   `json:"spill_max_bytes"`
	BackoffBase   *string  `json:"backoff_base"`
	BackoffMax    *string  `json:"backoff_max"`
	BackoffFactor *float64 `json:"backoff_factor"`
	BackoffJitter *float64 `json:"backoff_jitter"`
	BackoffSeed   *int64   `json:"backoff_seed"`
	MaxAttempts   *int     `json:"max_attempts"`
	Window        *int     `json:"window"`
	Hop           *int     `json:"hop"`
	Margin        *int     `json:"margin"`
	Seed          *int64   `json:"seed"`
}

// ApplyFile overlays the JSON config at path onto c. A missing path is
// an error — a misspelled -config must not silently run on defaults.
func (c *Config) ApplyFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("config file: %w", err)
	}
	var f fileConfig
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("config file %s: %w", path, err)
	}
	setStr := func(dst *string, src *string) {
		if src != nil {
			*dst = *src
		}
	}
	setStr(&c.Name, f.Name)
	setStr(&c.Server, f.Server)
	setStr(&c.SourceDir, f.SourceDir)
	setStr(&c.StateDir, f.StateDir)
	if err := setDur(&c.PollEvery, f.PollEvery); err != nil {
		return fmt.Errorf("config file %s: poll_every: %w", path, err)
	}
	if f.BatchSize != nil {
		c.BatchSize = *f.BatchSize
	}
	if f.SpillMaxBytes != nil {
		c.SpillMaxBytes = *f.SpillMaxBytes
	}
	if err := setDur(&c.Backoff.Base, f.BackoffBase); err != nil {
		return fmt.Errorf("config file %s: backoff_base: %w", path, err)
	}
	if err := setDur(&c.Backoff.Max, f.BackoffMax); err != nil {
		return fmt.Errorf("config file %s: backoff_max: %w", path, err)
	}
	if f.BackoffFactor != nil {
		c.Backoff.Factor = *f.BackoffFactor
	}
	if f.BackoffJitter != nil {
		c.Backoff.Jitter = *f.BackoffJitter
	}
	if f.BackoffSeed != nil {
		c.Backoff.Seed = *f.BackoffSeed
	}
	if f.MaxAttempts != nil {
		c.MaxAttempts = *f.MaxAttempts
	}
	if f.Window != nil {
		c.Window = *f.Window
	}
	if f.Hop != nil {
		c.Hop = *f.Hop
	}
	if f.Margin != nil {
		c.Margin = *f.Margin
	}
	if f.Seed != nil {
		c.Seed = *f.Seed
	}
	return nil
}

func setDur(dst *time.Duration, src *string) error {
	if src == nil {
		return nil
	}
	d, err := time.ParseDuration(*src)
	if err != nil {
		return err
	}
	*dst = d
	return nil
}

// ApplyEnv overlays CABD_AGENT_* variables onto c. lookup is
// os.LookupEnv in production, a map closure in tests.
func (c *Config) ApplyEnv(lookup func(string) (string, bool)) error {
	str := func(key string, dst *string) {
		if v, ok := lookup(key); ok {
			*dst = v
		}
	}
	str("CABD_AGENT_NAME", &c.Name)
	str("CABD_AGENT_SERVER", &c.Server)
	str("CABD_AGENT_SOURCE_DIR", &c.SourceDir)
	str("CABD_AGENT_STATE_DIR", &c.StateDir)
	if v, ok := lookup("CABD_AGENT_POLL_EVERY"); ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("CABD_AGENT_POLL_EVERY: %w", err)
		}
		c.PollEvery = d
	}
	if v, ok := lookup("CABD_AGENT_BATCH_SIZE"); ok {
		if _, err := fmt.Sscanf(v, "%d", &c.BatchSize); err != nil {
			return fmt.Errorf("CABD_AGENT_BATCH_SIZE: %w", err)
		}
	}
	if v, ok := lookup("CABD_AGENT_SPILL_MAX_BYTES"); ok {
		if _, err := fmt.Sscanf(v, "%d", &c.SpillMaxBytes); err != nil {
			return fmt.Errorf("CABD_AGENT_SPILL_MAX_BYTES: %w", err)
		}
	}
	if v, ok := lookup("CABD_AGENT_SEED"); ok {
		if _, err := fmt.Sscanf(v, "%d", &c.Seed); err != nil {
			return fmt.Errorf("CABD_AGENT_SEED: %w", err)
		}
	}
	return nil
}

// RegisterFlags binds the command-line layer onto c. Call it after
// ApplyFile/ApplyEnv so the already-layered values are the flag
// defaults and only flags the user actually passed change anything.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Name, "name", c.Name, "agent name (prefixes idempotency keys)")
	fs.StringVar(&c.Server, "server", c.Server, "cabd-serve base URL")
	fs.StringVar(&c.SourceDir, "source-dir", c.SourceDir, "directory tailed for *.csv / *.ndjson sources")
	fs.StringVar(&c.StateDir, "state-dir", c.StateDir, "directory for checkpoint and spill buffer (empty disables persistence)")
	fs.DurationVar(&c.PollEvery, "poll-every", c.PollEvery, "source scan cadence")
	fs.IntVar(&c.BatchSize, "batch-size", c.BatchSize, "max detections per forward request")
	fs.Int64Var(&c.SpillMaxBytes, "spill-max-bytes", c.SpillMaxBytes, "spill buffer byte cap (oldest segments dropped beyond it)")
	fs.DurationVar(&c.Backoff.Base, "backoff-base", c.Backoff.Base, "first retry delay (0 keeps the client default)")
	fs.DurationVar(&c.Backoff.Max, "backoff-max", c.Backoff.Max, "retry delay cap (0 keeps the client default)")
	fs.Float64Var(&c.Backoff.Jitter, "backoff-jitter", c.Backoff.Jitter, "fractional retry jitter (0 default, negative disables)")
	fs.Int64Var(&c.Backoff.Seed, "backoff-seed", c.Backoff.Seed, "jitter rng seed")
	fs.IntVar(&c.MaxAttempts, "max-attempts", c.MaxAttempts, "tries per forward request including the first")
	fs.IntVar(&c.Window, "window", c.Window, "stream analysis window (0 keeps the library default)")
	fs.IntVar(&c.Hop, "hop", c.Hop, "stream re-analysis hop (0 keeps the library default)")
	fs.IntVar(&c.Margin, "margin", c.Margin, "stream trailing uncertainty margin (0 keeps the library default)")
	fs.Int64Var(&c.Seed, "seed", c.Seed, "detection pipeline seed")
}

// Validate rejects configurations the agent cannot run on.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("agent name must not be empty")
	}
	if c.Server == "" {
		return fmt.Errorf("server URL must not be empty")
	}
	if c.SourceDir == "" {
		return fmt.Errorf("source directory must not be empty")
	}
	if c.PollEvery <= 0 {
		return fmt.Errorf("poll-every must be positive, got %v", c.PollEvery)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("batch-size must be positive, got %d", c.BatchSize)
	}
	if c.MaxAttempts <= 0 {
		return fmt.Errorf("max-attempts must be positive, got %d", c.MaxAttempts)
	}
	return nil
}

// LoadConfig runs the full layering for cmd/cabd-agent: defaults, then
// the optional config file, then environment, then flags. It is re-run
// verbatim on SIGHUP so a hot reload sees exactly what a restart would.
func LoadConfig(file string, lookup func(string) (string, bool), args []string) (Config, error) {
	cfg := Default()
	if file != "" {
		if err := cfg.ApplyFile(file); err != nil {
			return cfg, err
		}
	}
	if err := cfg.ApplyEnv(lookup); err != nil {
		return cfg, err
	}
	fs := flag.NewFlagSet("cabd-agent", flag.ContinueOnError)
	fs.String("config", file, "path to JSON config file") // consumed by main; re-registered for reparse
	cfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}
