package faultproxy

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cabd/httpapi"
)

func newRig(t *testing.T) (*Proxy, *httptest.Server) {
	t.Helper()
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	t.Cleanup(upstream.Close)
	p, err := New(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body)
}

func TestParseMode(t *testing.T) {
	for _, s := range []string{"pass", "reset", "error", "hang", "slow"} {
		if _, err := ParseMode(s); err != nil {
			t.Errorf("ParseMode(%q): %v", s, err)
		}
	}
	if _, err := ParseMode("explode"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestErrorModeShape: the injected 503 looks exactly like a saturated
// cabd-serve — Retry-After header plus the JSON hint the client parses.
func TestErrorModeShape(t *testing.T) {
	p, front := newRig(t)
	p.Set(ModeError, 0)
	resp, body := get(t, front.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	var er httpapi.ErrorResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatalf("body is not the JSON error shape: %v (%s)", err, body)
	}
	if er.RetryAfterSeconds != 1 || er.Error == "" {
		t.Fatalf("error body = %+v, want retry_after_seconds 1 with a message", er)
	}
}

// TestResetMode: the client sees a transport-level failure, not an HTTP
// status — the shape a crashed server produces.
func TestResetMode(t *testing.T) {
	p, front := newRig(t)
	p.Set(ModeReset, 0)
	if _, err := http.Get(front.URL); err == nil {
		t.Fatal("reset mode produced a successful response")
	}
}

// TestBurstAutoReverts: n=2 injects exactly two faults and the third
// request passes through to the upstream.
func TestBurstAutoReverts(t *testing.T) {
	p, front := newRig(t)
	p.Set(ModeError, 2)
	for i := 0; i < 2; i++ {
		if resp, _ := get(t, front.URL); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want injected 503", i, resp.StatusCode)
		}
	}
	if p.Mode() != ModePass {
		t.Fatalf("mode after burst = %s, want pass", p.Mode())
	}
	resp, body := get(t, front.URL)
	if resp.StatusCode != http.StatusOK || body != "ok" {
		t.Fatalf("post-burst request: %d %q, want upstream's 200 ok", resp.StatusCode, body)
	}
	if p.Faults() != 2 {
		t.Fatalf("faults = %d, want 2", p.Faults())
	}
}

// TestHangAndSlowRespectClientPatience: both modes hold the request only
// until the client's context gives up — the proxy itself has no timer.
func TestHangAndSlowRespectClientPatience(t *testing.T) {
	for _, mode := range []Mode{ModeHang, ModeSlow} {
		t.Run(string(mode), func(t *testing.T) {
			p, front := newRig(t)
			p.Set(mode, 0)
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, front.URL, nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				// Slow mode writes headers before stalling, so Do may
				// succeed; the body read must then hit the deadline.
				_, err = io.ReadAll(resp.Body)
				resp.Body.Close()
			}
			if err == nil {
				t.Fatalf("%s mode answered within the client deadline", mode)
			}
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(ctx.Err(), context.DeadlineExceeded) {
				t.Fatalf("unexpected error shape: %v", err)
			}
		})
	}
}
