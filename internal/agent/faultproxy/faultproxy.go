// Package faultproxy is a fault-injecting HTTP reverse proxy for
// exercising the agent's resilient transport (and any other cabd
// client) against realistic network failure: connection resets, 5xx
// bursts, request blackholes and slow-loris responses. It sits between
// a client and a cabd-serve instance; tests and the smoke script flip
// its mode at runtime to carve failure windows into otherwise healthy
// traffic.
package faultproxy

import (
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync"
)

// Mode selects the injected fault.
type Mode string

const (
	// ModePass forwards requests untouched.
	ModePass Mode = "pass"
	// ModeReset hijacks the connection and closes it mid-request — the
	// client sees a connection reset / unexpected EOF.
	ModeReset Mode = "reset"
	// ModeError answers 503 with a Retry-After hint without touching
	// the upstream — a saturated or crashed backend.
	ModeError Mode = "error"
	// ModeHang accepts the request and never answers until the client
	// gives up (its context or timeout fires) — a blackhole.
	ModeHang Mode = "hang"
	// ModeSlow writes the response status and a single body byte, then
	// stalls — a slow-loris server keeping the client on the hook.
	ModeSlow Mode = "slow"
)

// ParseMode validates a wire/flag mode string.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModePass, ModeReset, ModeError, ModeHang, ModeSlow:
		return Mode(s), nil
	}
	return "", fmt.Errorf("unknown fault mode %q (want pass|reset|error|hang|slow)", s)
}

// Proxy is the fault-injecting reverse proxy. Safe for concurrent use.
type Proxy struct {
	rp *httputil.ReverseProxy

	mu        sync.Mutex
	mode      Mode
	remaining int // >0: faults left before auto-reverting to pass; 0: until changed
	faults    int // total injected, for assertions
}

// New returns a proxy forwarding to target (a base URL).
func New(target string) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("faultproxy target: %w", err)
	}
	return &Proxy{rp: httputil.NewSingleHostReverseProxy(u), mode: ModePass}, nil
}

// Set switches the fault mode. n > 0 injects the fault into exactly the
// next n requests and then reverts to pass; n <= 0 keeps the mode until
// the next Set.
func (p *Proxy) Set(mode Mode, n int) {
	p.mu.Lock()
	p.mode = mode
	p.remaining = n
	p.mu.Unlock()
}

// Mode reports the current mode.
func (p *Proxy) Mode() Mode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode
}

// Faults reports how many requests had a fault injected.
func (p *Proxy) Faults() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// take claims one fault slot for this request, handling burst expiry.
func (p *Proxy) take() Mode {
	p.mu.Lock()
	defer p.mu.Unlock()
	mode := p.mode
	if mode == ModePass {
		return ModePass
	}
	p.faults++
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			p.mode = ModePass
		}
	}
	return mode
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch p.take() {
	case ModePass:
		p.rp.ServeHTTP(w, r)
	case ModeReset:
		hj, ok := w.(http.Hijacker)
		if !ok {
			// Listener without hijack support: the closest lie is an
			// empty 500.
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			return
		}
		_ = conn.Close() // no response bytes at all: reset/EOF at the client
	case ModeError:
		w.Header().Set("Retry-After", strconv.Itoa(1))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"injected fault: upstream unavailable","retry_after_seconds":1}`))
	case ModeHang:
		// Hold the request until the client abandons it; no timer of our
		// own — the victim's patience is the fault's duration.
		<-r.Context().Done()
	case ModeSlow:
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("{"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
	}
}
