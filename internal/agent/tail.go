package agent

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// tailing: sources are append-only files in SourceDir — one stream per
// file, named after the base name without extension. The agent reads
// only complete lines past its checkpointed byte offset, so a producer
// crash mid-line (or the agent racing a partial write) never corrupts a
// value: the torn tail is simply re-read next poll once the newline
// lands.

// sourceExts are the recognized source formats.
var sourceExts = map[string]bool{".csv": true, ".ndjson": true}

// scanSources lists the source files under dir in sorted order.
func scanSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !sourceExts[strings.ToLower(filepath.Ext(e.Name()))] {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// streamName maps a source path to its stream name.
func streamName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// readNewValues reads the complete lines of path past offset off and
// parses them as observations, returning the values and the new offset
// (which stops before any trailing partial line). A file shorter than
// the checkpointed offset was rotated or truncated: the offset resets
// and the file is re-read from the top — redelivered detections
// deduplicate server-side, which is exactly what the idempotency keys
// are for.
func readNewValues(path string, off int64) (vals []float64, newOff int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, off, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, off, err
	}
	if info.Size() < off {
		off = 0 // rotation/truncation: start over
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, off, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, off, err
	}
	csv := strings.EqualFold(filepath.Ext(path), ".csv")
	newOff = off
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // partial tail: wait for the newline
		}
		line := strings.TrimSpace(string(data[:nl]))
		data = data[nl+1:]
		newOff += int64(nl) + 1
		if line == "" {
			continue
		}
		v, ok := parseSourceLine(line, csv)
		if !ok {
			continue // header or comment line
		}
		vals = append(vals, v)
	}
	return vals, newOff, nil
}

// parseSourceLine extracts one observation. CSV lines yield their last
// field (timestamp,value layouts and single-column files both work);
// NDJSON lines are a bare number or {"v": number}. Lines that parse as
// neither — headers, comments — are skipped rather than fatal: a
// collector that dies on the first header row collects nothing.
func parseSourceLine(line string, csv bool) (float64, bool) {
	if csv {
		fields := strings.Split(line, ",")
		last := strings.TrimSpace(fields[len(fields)-1])
		v, err := strconv.ParseFloat(last, 64)
		return v, err == nil
	}
	var v float64
	if err := json.Unmarshal([]byte(line), &v); err == nil {
		return v, true
	}
	var obj struct {
		V *float64 `json:"v"`
	}
	if err := json.Unmarshal([]byte(line), &obj); err == nil && obj.V != nil {
		return *obj.V, true
	}
	return 0, false
}

// detectionKey builds the idempotency key for one detection: the same
// agent re-deriving the same detection after a crash produces the same
// key, so the server counts it once.
func detectionKey(agent, stream string, index int) string {
	return fmt.Sprintf("%s/%s/%d", agent, stream, index)
}
