package agent

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestConfigLayering pins the precedence chain: defaults < file < env <
// flags, with absent fields at every layer keeping the previous value.
func TestConfigLayering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "agent.json")
	file := `{
		"name": "from-file",
		"server": "http://file:1",
		"source_dir": "/src",
		"poll_every": "5s",
		"backoff_base": "250ms",
		"backoff_jitter": -1,
		"seed": 9
	}`
	if err := os.WriteFile(path, []byte(file), 0o644); err != nil {
		t.Fatal(err)
	}
	env := map[string]string{
		"CABD_AGENT_NAME":       "from-env",
		"CABD_AGENT_POLL_EVERY": "3s",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }

	cfg, err := LoadConfig(path, lookup, []string{"-name", "from-flag", "-batch-size", "7"})
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}
	if cfg.Name != "from-flag" {
		t.Errorf("name = %q, want flag layer to win", cfg.Name)
	}
	if cfg.PollEvery != 3*time.Second {
		t.Errorf("poll_every = %v, want env layer 3s over file 5s", cfg.PollEvery)
	}
	if cfg.Server != "http://file:1" || cfg.SourceDir != "/src" {
		t.Errorf("file layer lost: server %q source %q", cfg.Server, cfg.SourceDir)
	}
	if cfg.BatchSize != 7 {
		t.Errorf("batch_size = %d, want flag 7", cfg.BatchSize)
	}
	if cfg.SpillMaxBytes != Default().SpillMaxBytes {
		t.Errorf("spill_max_bytes = %d, want untouched default", cfg.SpillMaxBytes)
	}
	if cfg.Backoff.Base != 250*time.Millisecond || cfg.Backoff.Jitter != -1 {
		t.Errorf("backoff from file lost: %+v", cfg.Backoff)
	}
	if cfg.Seed != 9 {
		t.Errorf("seed = %d, want file 9", cfg.Seed)
	}
}

// TestConfigErrors: bad durations and missing required fields reject
// the whole load instead of silently running on defaults.
func TestConfigErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"poll_every": "soon"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	none := func(string) (string, bool) { return "", false }
	if _, err := LoadConfig(bad, none, nil); err == nil {
		t.Error("bad duration accepted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json"), none, nil); err == nil {
		t.Error("missing config file accepted")
	}
	// No server anywhere in the layers: validation must fail.
	if _, err := LoadConfig("", none, []string{"-source-dir", "/src"}); err == nil {
		t.Error("config without a server URL accepted")
	}
	if _, err := LoadConfig("", func(k string) (string, bool) {
		if k == "CABD_AGENT_POLL_EVERY" {
			return "nope", true
		}
		return "", false
	}, nil); err == nil {
		t.Error("bad env duration accepted")
	}
}
