package agent

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReadNewValuesCSV: header rows skip, the last field is the value,
// a partial trailing line is left for the next poll.
func TestReadNewValuesCSV(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "cpu.csv")
	writeFile(t, p, "ts,value\n1,10.5\n2,11\n3,12.5")

	vals, off, err := readNewValues(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []float64{10.5, 11}) {
		t.Fatalf("vals = %v, want [10.5 11] (torn tail unread)", vals)
	}

	// Complete the torn line and append another: reading resumes at off.
	f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n4,13\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	vals, _, err = readNewValues(p, off)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []float64{12.5, 13}) {
		t.Fatalf("resumed vals = %v, want [12.5 13]", vals)
	}
}

// TestReadNewValuesNDJSON: bare numbers and {"v": n} both parse;
// non-numeric lines skip.
func TestReadNewValuesNDJSON(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "mem.ndjson")
	writeFile(t, p, "1.5\n{\"v\": 2.5}\n{\"note\": \"skip me\"}\n3\n")
	vals, _, err := readNewValues(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []float64{1.5, 2.5, 3}) {
		t.Fatalf("vals = %v", vals)
	}
}

// TestReadNewValuesRotation: a file shorter than the checkpointed
// offset was rotated — reading restarts from the top.
func TestReadNewValuesRotation(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "cpu.csv")
	writeFile(t, p, "5\n6\n")
	vals, _, err := readNewValues(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []float64{5, 6}) {
		t.Fatalf("rotated vals = %v, want re-read from the top", vals)
	}
}

// TestScanSources: only recognized extensions, sorted, subdirectories
// ignored.
func TestScanSources(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "b.csv"), "")
	writeFile(t, filepath.Join(dir, "a.ndjson"), "")
	writeFile(t, filepath.Join(dir, "notes.txt"), "")
	if err := os.Mkdir(filepath.Join(dir, "sub.csv"), 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := scanSources(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.csv")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sources = %v, want %v", got, want)
	}
	if streamName(want[0]) != "a" || streamName(want[1]) != "b" {
		t.Fatalf("stream names wrong: %q %q", streamName(want[0]), streamName(want[1]))
	}
}
