package agent

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cabd"
	"cabd/client"
	"cabd/httpapi"
	"cabd/internal/agent/faultproxy"
	"cabd/internal/obs"
	"cabd/internal/server"
	"cabd/internal/synth"
)

// noSleep satisfies the agent's pacing without waiting: tests drive
// PollOnce directly, so real delays only slow the suite down.
func noSleep(ctx context.Context, d time.Duration) error {
	return ctx.Err()
}

// baseConfig returns a runnable config over fresh temp dirs.
func baseConfig(t *testing.T, serverURL string) Config {
	t.Helper()
	cfg := Default()
	cfg.Name = "a1"
	cfg.Server = serverURL
	cfg.SourceDir = t.TempDir()
	cfg.StateDir = t.TempDir()
	cfg.Backoff = client.Backoff{Base: time.Millisecond, Jitter: -1, Seed: 1}
	cfg.MaxAttempts = 2
	cfg.Window = 64
	cfg.Hop = 8
	cfg.Margin = 4
	cfg.Seed = 5
	cfg.Sleep = noSleep
	return cfg
}

// ingestSink is a minimal in-test ingest endpoint recording the keys it
// acknowledged. failWith toggles fault injection.
type ingestSink struct {
	mu       sync.Mutex
	keys     []string
	failBody string // non-empty: answer 503 with this JSON body
}

func (s *ingestSink) setFail(body string) {
	s.mu.Lock()
	s.failBody = body
	s.mu.Unlock()
}

func (s *ingestSink) acked() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.keys...)
}

func (s *ingestSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fail := s.failBody
	s.mu.Unlock()
	if fail != "" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(fail))
		return
	}
	var req httpapi.IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	for _, d := range req.Detections {
		s.keys = append(s.keys, d.Key)
	}
	n := len(req.Detections)
	s.mu.Unlock()
	_ = json.NewEncoder(w).Encode(httpapi.IngestResponse{Accepted: n})
}

// TestBackoffScheduleExact pins the retry delays the agent's transport
// produces — no sleeping, a recording Sleep sees the exact schedule.
func TestBackoffScheduleExact(t *testing.T) {
	cases := []struct {
		name     string
		failBody string
		want     []time.Duration
	}{
		{
			// Pure exponential: Base 100ms, Factor 2, no jitter.
			name:     "exponential",
			failBody: `{"error":"injected"}`,
			want: []time.Duration{
				100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
			},
		},
		{
			// The server's Retry-After hint exceeds every computed delay,
			// so it wins each time.
			name:     "retry-after wins",
			failBody: `{"error":"injected","retry_after_seconds":2}`,
			want: []time.Duration{
				2 * time.Second, 2 * time.Second, 2 * time.Second,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &ingestSink{}
			sink.setFail(tc.failBody)
			ts := httptest.NewServer(sink)
			defer ts.Close()

			var slept []time.Duration
			cfg := baseConfig(t, ts.URL)
			cfg.Backoff = client.Backoff{
				Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1, Seed: 1,
			}
			cfg.MaxAttempts = 4
			cfg.Sleep = func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			}
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a.queue = dets("cpu", 0, 1)

			if err := a.PollOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(slept, tc.want) {
				t.Fatalf("sleep schedule = %v, want %v", slept, tc.want)
			}
			if got := a.rec.Count(obs.CounterAgentRetries); got != int64(len(tc.want)) {
				t.Fatalf("retries counter = %d, want %d", got, len(tc.want))
			}
			// The detection survived the outage on disk, not in memory.
			if a.rec.Count(obs.CounterAgentSpilled) != 1 || a.Pending() != 1 {
				t.Fatalf("spilled = %d pending = %d, want 1/1",
					a.rec.Count(obs.CounterAgentSpilled), a.Pending())
			}

			// Recovery: the next poll replays the spill in order.
			sink.setFail("")
			if err := a.PollOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
			if a.Pending() != 0 {
				t.Fatalf("pending after recovery = %d, want 0", a.Pending())
			}
			if a.rec.Count(obs.CounterAgentReplayed) != 1 {
				t.Fatalf("replayed counter = %d, want 1", a.rec.Count(obs.CounterAgentReplayed))
			}
			if got := sink.acked(); len(got) != 1 || got[0] != "a/cpu/0" {
				t.Fatalf("server acked %v, want the spilled key", got)
			}
		})
	}
}

// appendCSV appends values to a source file, one per line.
func appendCSV(t *testing.T, path string, vals []float64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, v := range vals {
		if _, err := fmt.Fprintf(f, "%g\n", v); err != nil {
			t.Fatal(err)
		}
	}
}

// referenceDetections runs the same values through one offline detector
// with the agent's configuration — the ground truth for loss accounting.
func referenceDetections(cfg Config, vals []float64) int {
	det := cabd.NewStream(cabd.StreamConfig{
		Window: cfg.Window, Hop: cfg.Hop, Margin: cfg.Margin,
		Options: cabd.Options{Seed: cfg.Seed},
	})
	n := 0
	for _, v := range vals {
		n += len(det.Push(v))
	}
	return n
}

// TestZeroLossAcrossRestarts is the headline crash-safety test: the
// server is killed mid-run and restarted from its checkpoint dir, the
// agent is "crashed" (rebuilt from its state dir) while detections sit
// in the spill buffer — and the server's final unique count still equals
// an offline reference detector run over the same values.
func TestZeroLossAcrossRestarts(t *testing.T) {
	vals := synth.YahooLike(9, 900).Values
	ckptDir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	start := func(ln net.Listener) (*server.Server, *http.Server) {
		srv, err := server.New(server.Config{CheckpointDir: ckptDir, JanitorEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return srv, hs
	}
	srv, hs := start(ln)

	cfg := baseConfig(t, "http://"+addr)
	csvPath := filepath.Join(cfg.SourceDir, "cpu.csv")
	ctx := context.Background()

	// Phase 1: healthy forwarding.
	appendCSV(t, csvPath, vals[:300])
	a1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 2: server dies; the next poll's detections spill to disk.
	_ = hs.Close()
	srv.Close()
	appendCSV(t, csvPath, vals[300:600])
	if err := a1.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if a1.rec.Count(obs.CounterAgentSpilled) == 0 {
		t.Fatal("outage poll spilled nothing; the phase boundaries produced no detections — grow the series")
	}

	// Phase 3: the agent crashes too. A new process inherits the
	// checkpoint (offsets + detector snapshots) and the spill buffer.
	a2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 4: server restarts on the same address from its checkpoint.
	var ln2 net.Listener
	for range 50 {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2, hs2 := start(ln2)
	defer func() { _ = hs2.Close(); srv2.Close() }()

	// Phase 5: the rest of the stream; the poll replays the spill first.
	appendCSV(t, csvPath, vals[600:])
	if err := a2.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if a2.Pending() != 0 {
		t.Fatalf("pending after recovery = %d, want 0", a2.Pending())
	}

	want := referenceDetections(cfg, vals)
	if want == 0 {
		t.Fatal("reference run found no detections; the test proves nothing")
	}
	stats, err := client.New(cfg.Server).IngestStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != int64(want) {
		t.Fatalf("server holds %d unique detections, reference run produced %d — detections were lost or double counted",
			stats.Total, want)
	}
	if stats.ByAgent["a1"] != int64(want) || stats.ByStream["cpu"] != int64(want) {
		t.Fatalf("per-agent/per-stream accounting off: %+v", stats)
	}
}

// TestAgentThroughFaultProxy drives the agent against a real server
// through the fault proxy: 503 bursts and connection resets carve
// failure windows, and once the proxy passes again every detection
// arrives exactly once.
func TestAgentThroughFaultProxy(t *testing.T) {
	vals := synth.YahooLike(9, 900).Values

	srv, err := server.New(server.Config{JanitorEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	upstream := httptest.NewServer(srv.Handler())
	defer upstream.Close()

	p, err := faultproxy.New(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	cfg := baseConfig(t, front.URL)
	csvPath := filepath.Join(cfg.SourceDir, "cpu.csv")
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	appendCSV(t, csvPath, vals[:300])
	if err := a.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// 503 window, then a reset window: both polls end with the new
	// detections safe on disk, not lost.
	p.Set(faultproxy.ModeError, 0)
	appendCSV(t, csvPath, vals[300:600])
	if err := a.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	p.Set(faultproxy.ModeReset, 0)
	appendCSV(t, csvPath, vals[600:])
	if err := a.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if a.rec.Count(obs.CounterAgentSpilled) == 0 {
		t.Fatal("fault windows spilled nothing; the series produced no detections there")
	}

	p.Set(faultproxy.ModePass, 0)
	if err := a.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if a.Pending() != 0 {
		t.Fatalf("pending after faults cleared = %d, want 0", a.Pending())
	}
	if p.Faults() == 0 {
		t.Fatal("proxy injected no faults")
	}

	want := referenceDetections(cfg, vals)
	if want == 0 {
		t.Fatal("reference run found no detections")
	}
	stats, err := client.New(upstream.URL).IngestStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != int64(want) {
		t.Fatalf("server holds %d detections, reference produced %d", stats.Total, want)
	}
}

// TestReloadSafeVsIdentity: SIGHUP-style reload applies pacing/batching/
// spill-cap/retry changes live and refuses identity changes with a log.
func TestReloadSafeVsIdentity(t *testing.T) {
	var logs []string
	cfg := baseConfig(t, "http://127.0.0.1:1")
	cfg.Logf = func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldClient := a.cl

	next := cfg
	next.Name = "other"           // identity: ignored
	next.Window = 256             // detector shape: ignored
	next.PollEvery = 5 * time.Second
	next.BatchSize = 99
	next.SpillMaxBytes = 123
	next.MaxAttempts = 7 // retry shape: rebuilds the client
	a.Reload(next)

	if a.cfg.Name != "a1" || a.cfg.Window != 64 {
		t.Fatalf("identity fields changed on reload: name %q window %d", a.cfg.Name, a.cfg.Window)
	}
	if a.cfg.PollEvery != 5*time.Second || a.cfg.BatchSize != 99 || a.cfg.SpillMaxBytes != 123 {
		t.Fatalf("safe fields not applied: %+v", a.cfg)
	}
	if a.spill.max != 123 {
		t.Fatalf("spill cap not propagated: %d", a.spill.max)
	}
	if a.cl == oldClient {
		t.Fatal("retry-shape change did not rebuild the client")
	}
	joined := strings.Join(logs, "\n")
	for _, want := range []string{"name change", "detector shape change", "reload applied"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("reload log missing %q in:\n%s", want, joined)
		}
	}
}

// TestDrainSpillsQueue: Run's shutdown path parks unsent detections on
// disk and checkpoints, so nothing is stranded in memory.
func TestDrainSpillsQueue(t *testing.T) {
	cfg := baseConfig(t, "http://127.0.0.1:1") // nothing listens: sends fail
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.queue = dets("cpu", 0, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drain immediately after the first poll
	if err := a.Run(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := a.spill.pending(); got != 3 {
		t.Fatalf("spill holds %d after drain, want 3", got)
	}
	if _, err := os.Stat(filepath.Join(cfg.StateDir, "agent.json")); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
}
