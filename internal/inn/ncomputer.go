package inn

import (
	"os"
	"sort"

	"cabd/internal/kdtree"
)

// NComputer is the d-dimensional counterpart of Computer, backing the
// multivariate extension (the paper's future-work direction). Points are
// (standardized index, standardized value_1, ..., standardized value_d)
// rows; the neighborhood semantics — per-offset mutual rank bound, 5%
// search-range prune, contiguous runs — are identical to the univariate
// case, and so is the probe engine: rank queries by default, the naive
// k-NN-membership oracle behind CABD_INN_ENGINE=legacy.
type NComputer struct {
	pts    [][]float64
	tree   *kdtree.ND
	legacy bool
	memo   *rankMemo
}

// NewNComputer indexes pts (rows are points of equal dimension).
func NewNComputer(pts [][]float64) *NComputer {
	return &NComputer{
		pts:    pts,
		tree:   kdtree.NewND(pts),
		legacy: os.Getenv(LegacyEngineEnv) == "legacy",
	}
}

// WithLegacyProbes returns a copy of c using the naive probe path — the
// differential-testing hook (see Computer.WithLegacyProbes).
func (c *NComputer) WithLegacyProbes(on bool) *NComputer {
	cc := *c
	cc.legacy = on
	if on {
		cc.memo = nil
	}
	return &cc
}

// WithRankMemo returns a copy of c with a bounded shared rank-probe memo
// (see Computer.WithRankMemo).
func (c *NComputer) WithRankMemo(capacity int) *NComputer {
	cc := *c
	if !cc.legacy {
		cc.memo = newRankMemo(capacity)
	}
	return &cc
}

// MemoStats returns the rank memo's cumulative probe hit/miss counts
// (zeros when no memo is attached).
func (c *NComputer) MemoStats() (hits, misses int64) {
	if c.memo == nil {
		return 0, 0
	}
	return c.memo.stats()
}

// Len returns the number of indexed points.
func (c *NComputer) Len() int { return len(c.pts) }

// RangeLimit returns the pruned search range: ceil(frac*n) clamped to
// [1, n-1]. frac <= 0 selects DefaultRangeFrac.
func (c *NComputer) RangeLimit(frac float64) int {
	if frac <= 0 {
		frac = DefaultRangeFrac
	}
	n := len(c.pts)
	t := int(frac * float64(n))
	if float64(t) < frac*float64(n) {
		t++
	}
	if t < 1 {
		t = 1
	}
	if t > n-1 {
		t = n - 1
	}
	return t
}

// KNN returns the indices of the k nearest neighbors of point i
// (excluding i), ordered by increasing distance.
func (c *NComputer) KNN(i, k int) []int {
	var scratch [64]kdtree.Neighbor
	var nbs []kdtree.Neighbor
	if k <= len(scratch) {
		nbs = c.tree.KNNInto(c.pts[i], k, i, scratch[:0])
	} else {
		nbs = c.tree.KNN(c.pts[i], k, i)
	}
	out := make([]int, len(nbs))
	for j, nb := range nbs {
		out[j] = nb.Index
	}
	return out
}

// Rank returns the number of points ordering strictly ahead of x_j in the
// (distance, index)-sorted neighbor list of x_i (see Computer.Rank).
func (c *NComputer) Rank(i, j int) int {
	if c.memo != nil {
		key := uint64(i)*uint64(len(c.pts)) + uint64(j)
		if r, ok := c.memo.get(key); ok {
			return r
		}
		r := c.tree.Rank(c.pts[i], kdtree.DistN(c.pts[i], c.pts[j]), j, i)
		c.memo.put(key, r)
		return r
	}
	return c.tree.Rank(c.pts[i], kdtree.DistN(c.pts[i], c.pts[j]), j, i)
}

// InTopK reports whether point j is among the k nearest neighbors of i.
func (c *NComputer) InTopK(i, j, k int) bool {
	n := len(c.pts)
	if i == j || i < 0 || j < 0 || i >= n || j >= n {
		return false
	}
	if c.legacy {
		for _, idx := range c.KNN(i, k) {
			if idx == j {
				return true
			}
		}
		return false
	}
	if k >= n {
		return c.Rank(i, j) < k
	}
	// Bounded probe: abort the rank walk at k (see Computer.InTopK).
	if c.memo != nil {
		key := uint64(i)*uint64(n) + uint64(j)
		if r, ok := c.memo.get(key); ok {
			return r < k
		}
		r := c.tree.RankAtMost(c.pts[i], kdtree.DistN(c.pts[i], c.pts[j]), j, i, k)
		if r < k {
			c.memo.put(key, r)
		}
		return r < k
	}
	return c.tree.RankAtMost(c.pts[i], kdtree.DistN(c.pts[i], c.pts[j]), j, i, k) < k
}

func (c *NComputer) mutualAt(i, dir, o, t int) bool {
	j := i + dir*o
	b := offsetBound(o, t)
	return c.InTopK(i, j, b) && c.InTopK(j, i, b)
}

// Minimal returns the contiguous INN of point i at threshold t (linear
// per-side scan). Members sorted ascending, excluding i.
func (c *NComputer) Minimal(i, t int) []int {
	n := len(c.pts)
	if n < 2 {
		return nil
	}
	if t <= 0 || t > n-1 {
		t = n - 1
	}
	left := c.scanSide(i, -1, t)
	right := c.scanSide(i, +1, t)
	return collect(i, left, right)
}

// Binary returns the contiguous INN of point i at threshold t via the
// galloping binary search of Algorithm 5.
func (c *NComputer) Binary(i, t int) []int {
	n := len(c.pts)
	if n < 2 {
		return nil
	}
	if t <= 0 || t > n-1 {
		t = n - 1
	}
	left := c.binarySide(i, -1, t)
	right := c.binarySide(i, +1, t)
	return collect(i, left, right)
}

// MutualSet returns every j with mutual top-t membership with i (the
// unconstrained set version), sorted ascending.
func (c *NComputer) MutualSet(i, t int) []int {
	n := len(c.pts)
	if n < 2 {
		return nil
	}
	if t <= 0 || t > n-1 {
		t = n - 1
	}
	var out []int
	for _, j := range c.KNN(i, t) {
		if c.InTopK(j, i, t) {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

func (c *NComputer) scanSide(i, dir, t int) int {
	n := len(c.pts)
	ext := 0
	for o := 1; o <= t; o++ {
		j := i + dir*o
		if j < 0 || j >= n {
			break
		}
		if !c.mutualAt(i, dir, o, t) {
			break
		}
		ext = o
	}
	return ext
}

func (c *NComputer) binarySide(i, dir, t int) int {
	n := len(c.pts)
	maxOff := t
	if dir > 0 && i+maxOff > n-1 {
		maxOff = n - 1 - i
	}
	if dir < 0 && i-maxOff < 0 {
		maxOff = i
	}
	if maxOff < 1 || !c.mutualAt(i, dir, 1, t) {
		return 0
	}
	pass := 1
	probe := 2
	for probe <= maxOff && c.mutualAt(i, dir, probe, t) {
		pass = probe
		probe *= 2
	}
	hi := probe - 1
	if hi > maxOff {
		hi = maxOff
	}
	lo, best := pass+1, pass
	for lo <= hi {
		m := (lo + hi) / 2
		if c.mutualAt(i, dir, m, t) {
			best = m
			lo = m + 1
		} else {
			hi = m - 1
		}
	}
	return best
}
