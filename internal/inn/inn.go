// Package inn implements the paper's Inverse Nearest Neighbor concept
// (Section III). A point x_m belongs to INN_r(x_i) iff x_m is among the r
// nearest neighbors of x_i AND x_i is among the r nearest neighbors of x_m
// (Equation 3). The minimal INN of a point is grown until no new members
// join (Algorithm 1); no per-dataset k needs choosing.
//
// # Interpretation
//
// The paper's Algorithm 1 walkthrough (Example 2) and its printed distance
// table disagree: the literal "grow r, stop at the first barren round"
// rule stops at r = 2 with INN(x4) = {x5}, while the walkthrough admits
// {x5..x9} and justifies all admissions with a single rank check at the
// final radius. The formulation implemented here is the one that both
// reproduces Example 2 exactly and preserves the stated worst-case
// behaviour ("the INN of a point is the whole dataset" for a flat series,
// fixed by the 5% search-range prune of Section IV):
//
//	x_{i±o} ∈ INN(x_i)  iff  x_{i±o} ∈ NN_b(x_i) ∧ x_i ∈ NN_b(x_{i±o}),
//	b = min(3o+9, t)
//
// — Algorithm 5's literal per-offset rank bound ("x_m ∈ NN_m(x_i) and
// x_m ∈ RNN_m(x_i)", with affine slack because a contiguous group's members
// interleave with both sides in rank order), capped by the search-range
// bound t. The *minimal* INN used by CABD is the contiguous run of such
// mutual neighbors around x_i (Algorithm 5 explicitly assumes "INN(x) is
// not segmented"). With the paper's prune, t = 5% of the dataset; with
// t = n-1 and flat data the rank bound is always met and the neighborhood
// degenerates to (nearly) the whole dataset, exactly as Section III warns.
// The non-contiguous MutualSet reference uses the flat bound t.
//
// Three computation strategies mirror the paper's cost discussion:
//
//   - MutualSet: the unconstrained set version of Algorithm 1 (no
//     contiguity), O(t) rank probes — the "unoptimized" reference;
//   - Minimal: contiguous linear per-side scan, O(extent) probes;
//   - Binary: Algorithm 5, per-side binary search, O(log t) probes.
//
// A fixed-k KNN neighborhood is also exposed for the CABD-KNN ablation
// (Figure 12).
package inn

import (
	"os"
	"sort"
	"sync"

	"cabd/internal/kdtree"
	"cabd/internal/series"
)

// DefaultRangeFrac is the pruning bound of the optimized INN search: an
// anomalous pattern should not exceed 5% of the dataset (Section IV).
const DefaultRangeFrac = 0.05

// LegacyEngineEnv selects the naive probe engine when set to "legacy":
// every mutual-membership probe answered by materializing a full k-NN
// list and scanning it. Kept as the differential-test oracle for the
// rank-query engine; see Computer.WithLegacyProbes.
const LegacyEngineEnv = "CABD_INN_ENGINE"

// Index answers the two primitive queries every INN strategy reduces to,
// over the point set identified by indices 0..Len()-1 and the documented
// (distance, index) neighbor order.
//
// The static implementation wraps a KD-tree over a fixed point slice; the
// streaming engine supplies a sliding-window tree whose coordinates are
// standardized on the fly through the current window frame. Both must
// answer identically for the same logical point set — rank counting and
// k-NN sets are functions of the points and the metric, not of the index
// structure, which is what makes the engines differentially testable.
type Index interface {
	// Len returns the number of indexed points.
	Len() int
	// RankAtMost returns min(rank, limit), where rank is the number of
	// points ordering strictly ahead of point j in the (distance, index)
	// neighbor order of point i (excluding i and j themselves). A result
	// below limit is the exact rank.
	RankAtMost(i, j, limit int) int
	// KNNInto returns the k nearest neighbors of point i (excluding i),
	// ascending by (distance, index), reusing buf when it suffices.
	KNNInto(i, k int, buf []kdtree.Neighbor) []kdtree.Neighbor
}

// staticIndex is the batch-path Index: a KD-tree built once over the full
// embedding.
type staticIndex struct {
	pts  [][2]float64
	tree *kdtree.KD
}

func (s *staticIndex) Len() int { return len(s.pts) }

func (s *staticIndex) RankAtMost(i, j, limit int) int {
	return s.tree.RankAtMost(s.pts[i], kdtree.Dist(s.pts[i], s.pts[j]), j, i, limit)
}

func (s *staticIndex) KNNInto(i, k int, buf []kdtree.Neighbor) []kdtree.Neighbor {
	return s.tree.KNNInto(s.pts[i], k, i, buf)
}

// Computer computes neighborhoods over an indexed set of 2-D points
// (typically series.Points() of a standardized series). It is safe for
// concurrent use after construction.
//
// Membership probes ("is x_j among the k nearest neighbors of x_i?") are
// answered by a rank query: one allocation-free index walk counting the
// points that order ahead of x_j under the (distance, index) tie-break,
// so InTopK(i, j, k) is rank(i, j) < k with cost O(log n + |ball|)
// instead of a full allocating k-NN query per probe. An optional bounded
// memo caches ranks per (i, j) pair — the rank is independent of k, so
// one cached walk answers every radius the gallop + binary search of
// Algorithm 5 probes for that pair.
type Computer struct {
	idx    Index
	n      int       // cached idx.Len()
	legacy bool      // answer probes via full k-NN lists (test oracle)
	memo   *rankMemo // optional shared (i,j) -> rank cache
}

// NewComputer indexes pts (built once, queried many times). The probe
// engine defaults to rank queries; setting CABD_INN_ENGINE=legacy in the
// environment selects the naive k-NN-membership oracle instead.
func NewComputer(pts [][2]float64) *Computer {
	return NewComputerOver(&staticIndex{pts: pts, tree: kdtree.New(pts)})
}

// NewComputerOver wraps a caller-supplied Index — the hook through which
// the streaming engine runs the unmodified Algorithm 5 neighborhood logic
// over its sliding-window tree. The same CABD_INN_ENGINE=legacy escape
// hatch applies.
func NewComputerOver(idx Index) *Computer {
	return &Computer{
		idx:    idx,
		n:      idx.Len(),
		legacy: os.Getenv(LegacyEngineEnv) == "legacy",
	}
}

// WithLegacyProbes returns a copy of c whose mutual-membership probes use
// the naive full-k-NN-scan path (on=true) or the rank-query engine
// (on=false). The copy shares the index; the legacy path takes no memo.
// This is the differential-testing and old-vs-new benchmarking hook.
func (c *Computer) WithLegacyProbes(on bool) *Computer {
	cc := *c
	cc.legacy = on
	if on {
		cc.memo = nil
	}
	return &cc
}

// WithRankMemo returns a copy of c that caches rank probes in a bounded
// sharded memo. capacity <= 0 selects the default (~64k entries). The
// memo is shared by every neighborhood call on the returned Computer, so
// concurrent scorer workers reuse each other's probe walks; it is safe
// for concurrent use and never exceeds its bound (full shards reset).
func (c *Computer) WithRankMemo(capacity int) *Computer {
	cc := *c
	if !cc.legacy {
		cc.memo = newRankMemo(capacity)
	}
	return &cc
}

// MemoStats returns the rank memo's cumulative probe hit/miss counts
// (zeros when no memo is attached) — the observability feed for the
// rank_memo_hits/misses counters.
func (c *Computer) MemoStats() (hits, misses int64) {
	if c.memo == nil {
		return 0, 0
	}
	return c.memo.stats()
}

// FromSeries builds a Computer over the (standardized index, standardized
// value) embedding of s.
func FromSeries(s *series.Series) *Computer {
	return NewComputer(s.Points())
}

// Len returns the number of indexed points.
func (c *Computer) Len() int { return c.n }

// RangeLimit returns the pruned search range for this dataset:
// ceil(frac*n) clamped to [1, n-1]. frac <= 0 selects DefaultRangeFrac.
func (c *Computer) RangeLimit(frac float64) int {
	if frac <= 0 {
		frac = DefaultRangeFrac
	}
	n := c.n
	t := int(frac * float64(n))
	if float64(t) < frac*float64(n) {
		t++
	}
	if t < 1 {
		t = 1
	}
	if t > n-1 {
		t = n - 1
	}
	return t
}

// KNN returns the indices of the k nearest neighbors of point i (excluding
// i itself), ordered by increasing distance with index tie-break.
func (c *Computer) KNN(i, k int) []int {
	// Small queries run over a stack scratch buffer so only the returned
	// index slice allocates.
	var scratch [64]kdtree.Neighbor
	var nbs []kdtree.Neighbor
	if k <= len(scratch) {
		nbs = c.idx.KNNInto(i, k, scratch[:0])
	} else {
		nbs = c.idx.KNNInto(i, k, nil)
	}
	out := make([]int, len(nbs))
	for j, nb := range nbs {
		out[j] = nb.Index
	}
	return out
}

// Rank returns the number of points that order strictly ahead of x_j in
// the (distance, index)-sorted neighbor list of x_i — the quantity one
// probe needs: x_j ∈ NN_k(x_i) iff Rank(i, j) < k. One allocation-free
// tree walk, memoized when the Computer carries a rank memo.
func (c *Computer) Rank(i, j int) int {
	if c.memo != nil {
		key := uint64(i)*uint64(c.n) + uint64(j)
		if r, ok := c.memo.get(key); ok {
			return r
		}
		r := c.idx.RankAtMost(i, j, c.n)
		c.memo.put(key, r)
		return r
	}
	return c.idx.RankAtMost(i, j, c.n)
}

// InTopK reports whether point j is among the k nearest neighbors of
// point i, i.e. x_j ∈ NN_k(x_i).
func (c *Computer) InTopK(i, j, k int) bool {
	n := c.n
	if i == j || i < 0 || j < 0 || i >= n || j >= n {
		return false
	}
	if c.legacy {
		return c.legacyInTopK(i, j, k)
	}
	if k >= n {
		return c.Rank(i, j) < k
	}
	// The probe only needs rank < k, so the walk may abort once k closer
	// points are seen — a failing probe costs O(k) visits instead of the
	// full ball of radius d(i, j). A memo hit still answers any k; a
	// bounded result is cached only when it completed (exact rank).
	if c.memo != nil {
		key := uint64(i)*uint64(n) + uint64(j)
		if r, ok := c.memo.get(key); ok {
			return r < k
		}
		r := c.idx.RankAtMost(i, j, k)
		if r < k {
			c.memo.put(key, r)
		}
		return r < k
	}
	return c.idx.RankAtMost(i, j, k) < k
}

// legacyInTopK is the pre-rank-engine probe: materialize NN_k(x_i) and
// scan it for j. O(t log n) with a fresh neighbor list and index slice
// per probe; retained as the differential-test oracle.
func (c *Computer) legacyInTopK(i, j, k int) bool {
	for _, idx := range c.KNN(i, k) {
		if idx == j {
			return true
		}
	}
	return false
}

// Mutual reports whether points i and j are mutually within each other's
// top-t neighbors (Equation 3 at radius t).
func (c *Computer) Mutual(i, j, t int) bool {
	return c.InTopK(i, j, t) && c.InTopK(j, i, t)
}

// MutualSet returns every j with mutual top-t membership with i — the
// unconstrained (non-contiguous) INN of Algorithm 1. Sorted ascending,
// excluding i. Cost: one k-NN query of size t plus up to t reverse probes.
func (c *Computer) MutualSet(i, t int) []int {
	n := c.n
	if n < 2 {
		return nil
	}
	if t <= 0 || t > n-1 {
		t = n - 1
	}
	var out []int
	for _, j := range c.KNN(i, t) {
		if c.InTopK(j, i, t) {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// Minimal returns the contiguous INN of point i at threshold t: the
// maximal runs of offsets o >= 1 on each side such that every point up to
// i±o is mutually within top-t neighbors of i. The scan on each side is
// linear and stops at the first failure (contiguity assumption of
// Section IV). Members are sorted ascending, excluding i.
func (c *Computer) Minimal(i, t int) []int {
	n := c.n
	if n < 2 {
		return nil
	}
	if t <= 0 || t > n-1 {
		t = n - 1
	}
	left := c.scanSide(i, -1, t)
	right := c.scanSide(i, +1, t)
	return collect(i, left, right)
}

// Binary returns the contiguous INN of point i at threshold t computed
// with Algorithm 5's per-side binary search: the largest offset o on each
// side whose point passes the mutual test is found in O(log t) probes,
// assuming the INN is not segmented. Members are sorted ascending,
// excluding i.
func (c *Computer) Binary(i, t int) []int {
	n := c.n
	if n < 2 {
		return nil
	}
	if t <= 0 || t > n-1 {
		t = n - 1
	}
	left := c.binarySide(i, -1, t)
	right := c.binarySide(i, +1, t)
	return collect(i, left, right)
}

// BinaryPruned is Binary with the paper's default 5% search-range prune.
func (c *Computer) BinaryPruned(i int) []int {
	return c.Binary(i, c.RangeLimit(0))
}

// MinimalPruned is Minimal with the paper's default 5% search-range prune.
func (c *Computer) MinimalPruned(i int) []int {
	return c.Minimal(i, c.RangeLimit(0))
}

// offsetBound is Algorithm 5's per-offset rank bound: min(3o+9, t). The
// slope-3, intercept-9 slack admits a contiguous group whose members interleave in rank
// order (within a tight group the o-th temporal neighbor can rank behind
// every other member on both sides plus noise), while still rejecting the
// far-away next value cluster the way the paper's Example 2 rejects x3 at
// r = 6.
func offsetBound(o, t int) int {
	b := 3*o + 9
	if b > t {
		b = t
	}
	return b
}

// mutualAt checks the mutual membership of i and the point at offset o in
// direction dir under the per-offset rank bound.
func (c *Computer) mutualAt(i, dir, o, t int) bool {
	j := i + dir*o
	b := offsetBound(o, t)
	return c.InTopK(i, j, b) && c.InTopK(j, i, b)
}

// scanSide walks offsets 1, 2, ... in direction dir until the mutual test
// fails or the series boundary / range limit t is reached; returns the
// extent (number of admitted offsets).
func (c *Computer) scanSide(i, dir, t int) int {
	n := c.n
	ext := 0
	for o := 1; o <= t; o++ {
		j := i + dir*o
		if j < 0 || j >= n {
			break
		}
		if !c.mutualAt(i, dir, o, t) {
			break
		}
		ext = o
	}
	return ext
}

// binarySide finds the extent of the contiguous mutual run on one side in
// O(log extent) probes: a galloping phase doubles the offset until the
// first failure, then a binary search brackets the boundary. Plain binary
// search over [1, t] (Algorithm 5 as printed) can jump across a failing
// interior point and report a segmented neighborhood as one span; probing
// the power-of-two offsets anchors the search to the actual run, so the
// result matches the linear scan except in the rare case of a gap strictly
// between consecutive probe points.
func (c *Computer) binarySide(i, dir, t int) int {
	n := c.n
	maxOff := t
	if dir > 0 && i+maxOff > n-1 {
		maxOff = n - 1 - i
	}
	if dir < 0 && i-maxOff < 0 {
		maxOff = i
	}
	if maxOff < 1 || !c.mutualAt(i, dir, 1, t) {
		return 0
	}
	// Gallop: largest passing power-of-two offset.
	pass := 1
	probe := 2
	for probe <= maxOff && c.mutualAt(i, dir, probe, t) {
		pass = probe
		probe *= 2
	}
	hi := probe - 1
	if hi > maxOff {
		hi = maxOff
	}
	// Binary search the boundary in (pass, hi].
	lo, best := pass+1, pass
	for lo <= hi {
		m := (lo + hi) / 2
		if c.mutualAt(i, dir, m, t) {
			best = m
			lo = m + 1
		} else {
			hi = m - 1
		}
	}
	return best
}

// rankMemo is a bounded, sharded (query, target) -> rank cache. Probes
// for the same pair recur across the offsetBound radii of the gallop +
// binary search and across overlapping candidate neighborhoods (the
// reverse probe of pair (i, j) is the forward probe of pair (j, i) when
// both ends are candidates), and the rank itself is radius-independent,
// so hit rates are high. Sharding keeps scorer workers from serializing
// on one lock; a shard that reaches its bound is reset rather than
// evicted entry-by-entry, so memory stays bounded with O(1) bookkeeping.
type rankMemo struct {
	shardCap int
	shards   [memoShards]rankShard
}

const memoShards = 64

type rankShard struct {
	mu sync.Mutex
	m  map[uint64]int32
	// hits / misses are observability counters, mutated under mu so the
	// hot path pays no extra atomics; Stats sums across shards.
	hits   int64
	misses int64
}

func newRankMemo(capacity int) *rankMemo {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	sc := (capacity + memoShards - 1) / memoShards
	if sc < 8 {
		sc = 8
	}
	return &rankMemo{shardCap: sc}
}

func (rm *rankMemo) get(key uint64) (int, bool) {
	s := &rm.shards[key&(memoShards-1)]
	s.mu.Lock()
	v, ok := s.m[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return int(v), ok
}

// stats returns the cumulative probe hit/miss counts across shards.
func (rm *rankMemo) stats() (hits, misses int64) {
	for i := range rm.shards {
		s := &rm.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

func (rm *rankMemo) put(key uint64, r int) {
	s := &rm.shards[key&(memoShards-1)]
	s.mu.Lock()
	if s.m == nil || len(s.m) >= rm.shardCap {
		s.m = make(map[uint64]int32, rm.shardCap)
	}
	s.m[key] = int32(r)
	s.mu.Unlock()
}

// collect materializes the sorted member list for extents (left, right)
// around i.
func collect(i, left, right int) []int {
	if left == 0 && right == 0 {
		return nil
	}
	out := make([]int, 0, left+right)
	for o := left; o >= 1; o-- {
		out = append(out, i-o)
	}
	for o := 1; o <= right; o++ {
		out = append(out, i+o)
	}
	return out
}
