package inn

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cabd/internal/series"
)

// testSeriesSet returns value slices covering the probe engine's hard
// cases: generic noise, noise with collective anomalies and level shifts,
// flat lines (every embedded point duplicated in value), and coarse
// quantized series (dense exact distance ties).
func testSeriesSet(rng *rand.Rand) [][]float64 {
	var out [][]float64

	noise := make([]float64, 160)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	out = append(out, noise)

	structured := make([]float64, 200)
	for i := range structured {
		structured[i] = 0.2 * rng.NormFloat64()
	}
	for i := 60; i < 66; i++ {
		structured[i] += 30
	}
	for i := 140; i < 200; i++ {
		structured[i] += 8
	}
	out = append(out, structured)

	flat := make([]float64, 120)
	for i := range flat {
		flat[i] = 7
	}
	out = append(out, flat)

	quantized := make([]float64, 150)
	for i := range quantized {
		quantized[i] = float64(rng.Intn(3))
	}
	out = append(out, quantized)

	return out
}

// TestInTopKRankMatchesLegacy is the probe-level differential test: the
// rank-query engine must answer every membership probe exactly like the
// legacy full-k-NN-scan oracle, ties and duplicate points included.
func TestInTopKRankMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for si, vals := range testSeriesSet(rng) {
		c := FromSeries(series.New("diff", vals))
		rank := c.WithLegacyProbes(false)
		memo := rank.WithRankMemo(0)
		legacy := c.WithLegacyProbes(true)
		n := c.Len()
		for probe := 0; probe < 3000; probe++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			k := 1 + rng.Intn(n)
			want := legacy.InTopK(i, j, k)
			if got := rank.InTopK(i, j, k); got != want {
				t.Fatalf("series %d: InTopK(%d,%d,%d) rank=%v legacy=%v",
					si, i, j, k, got, want)
			}
			if got := memo.InTopK(i, j, k); got != want {
				t.Fatalf("series %d: memoized InTopK(%d,%d,%d)=%v, legacy=%v",
					si, i, j, k, got, want)
			}
		}
	}
}

// TestNeighborhoodsEngineIdentical asserts Minimal/Binary/MutualSet are
// bit-identical across the legacy oracle, the rank engine, and the rank
// engine with a shared memo — the engine swap must not move a single
// member.
func TestNeighborhoodsEngineIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for si, vals := range testSeriesSet(rng) {
		c := FromSeries(series.New("diff", vals))
		engines := map[string]*Computer{
			"rank":      c.WithLegacyProbes(false),
			"rank+memo": c.WithLegacyProbes(false).WithRankMemo(0),
		}
		legacy := c.WithLegacyProbes(true)
		n := c.Len()
		for _, tlim := range []int{1, 3, c.RangeLimit(0), c.RangeLimit(0.2), n - 1} {
			for i := 0; i < n; i += 1 + n/40 {
				wantMin := legacy.Minimal(i, tlim)
				wantBin := legacy.Binary(i, tlim)
				wantSet := legacy.MutualSet(i, tlim)
				for name, eng := range engines {
					if got := eng.Minimal(i, tlim); !reflect.DeepEqual(got, wantMin) {
						t.Fatalf("series %d %s: Minimal(%d,%d)=%v, legacy %v",
							si, name, i, tlim, got, wantMin)
					}
					if got := eng.Binary(i, tlim); !reflect.DeepEqual(got, wantBin) {
						t.Fatalf("series %d %s: Binary(%d,%d)=%v, legacy %v",
							si, name, i, tlim, got, wantBin)
					}
					if got := eng.MutualSet(i, tlim); !reflect.DeepEqual(got, wantSet) {
						t.Fatalf("series %d %s: MutualSet(%d,%d)=%v, legacy %v",
							si, name, i, tlim, got, wantSet)
					}
				}
			}
		}
	}
}

// TestRankMemoConcurrent hammers one shared memo from many goroutines
// (run under -race by make check) and checks results against a serial
// memo-less engine.
func TestRankMemoConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for i := 100; i < 107; i++ {
		vals[i] += 25
	}
	c := FromSeries(series.New("conc", vals))
	shared := c.WithRankMemo(512) // tiny bound: forces shard resets
	tlim := c.RangeLimit(0)
	want := make([][]int, c.Len())
	for i := range want {
		want[i] = c.Binary(i, tlim)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(seed)))
			for probe := 0; probe < 400; probe++ {
				i := r.Intn(c.Len())
				if got := shared.Binary(i, tlim); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent Binary(%d)=%v, want %v", i, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestNComputerEngineIdentical is the multivariate counterpart of the
// engine-identity test.
func TestNComputerEngineIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, dim := 120, 3
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		row[0] = float64(i)
		for j := 1; j < dim; j++ {
			row[j] = float64(rng.Intn(3)) // quantized: exact ties
		}
		pts[i] = row
	}
	c := NewNComputer(pts)
	rank := c.WithLegacyProbes(false).WithRankMemo(0)
	legacy := c.WithLegacyProbes(true)
	tlim := c.RangeLimit(0)
	for i := 0; i < n; i++ {
		if got, want := rank.Minimal(i, tlim), legacy.Minimal(i, tlim); !reflect.DeepEqual(got, want) {
			t.Fatalf("ND Minimal(%d)=%v, legacy %v", i, got, want)
		}
		if got, want := rank.Binary(i, tlim), legacy.Binary(i, tlim); !reflect.DeepEqual(got, want) {
			t.Fatalf("ND Binary(%d)=%v, legacy %v", i, got, want)
		}
		if got, want := rank.MutualSet(i, tlim), legacy.MutualSet(i, tlim); !reflect.DeepEqual(got, want) {
			t.Fatalf("ND MutualSet(%d)=%v, legacy %v", i, got, want)
		}
	}
}

// TestLegacyEnvGate checks the environment switch that keeps the naive
// engine reachable without code changes.
func TestLegacyEnvGate(t *testing.T) {
	t.Setenv(LegacyEngineEnv, "legacy")
	c := NewComputer([][2]float64{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	if !c.legacy {
		t.Fatal("CABD_INN_ENGINE=legacy did not select the legacy engine")
	}
	if !c.InTopK(0, 1, 1) || c.InTopK(0, 3, 2) {
		t.Fatal("legacy engine gives wrong answers")
	}
	nc := NewNComputer([][]float64{{0, 0}, {1, 0}})
	if !nc.legacy {
		t.Fatal("ND computer ignored the engine env")
	}
}
