package inn

import (
	"math/rand"
	"reflect"
	"testing"

	"cabd/internal/series"
)

// example2Points returns the 13-point series of the paper's Example 2 in
// the raw (index, value) embedding the example computes distances over.
func example2Points() [][2]float64 {
	vals := []float64{26.9, 26.8, 27.4, 26.7, 64.5, 65.1, 62.1, 64.4,
		62.2, 62.7, 27.1, 25.2, 25.4}
	pts := make([][2]float64, len(vals))
	for i, v := range vals {
		pts[i] = [2]float64{float64(i), v}
	}
	return pts
}

// TestExample2 reproduces the paper's Example 2: the INN of x4 (the first
// point of the collective anomaly spanning x4..x9) is exactly {x5..x9};
// the search examines and rejects x3/x2 and stops.
func TestExample2(t *testing.T) {
	c := NewComputer(example2Points())
	want := []int{5, 6, 7, 8, 9}
	if got := c.Minimal(4, 6); !reflect.DeepEqual(got, want) {
		t.Errorf("Minimal INN(x4) = %v, want %v", got, want)
	}
	if got := c.Binary(4, 6); !reflect.DeepEqual(got, want) {
		t.Errorf("Binary INN(x4) = %v, want %v", got, want)
	}
	if got := c.MutualSet(4, 6); !reflect.DeepEqual(got, want) {
		t.Errorf("MutualSet INN(x4) = %v, want %v", got, want)
	}
}

// TestExample2MiddleMember checks a point in the middle of the collective
// anomaly: its INN is the rest of the group on both sides.
func TestExample2MiddleMember(t *testing.T) {
	c := NewComputer(example2Points())
	want := []int{4, 5, 6, 8, 9}
	if got := c.Minimal(7, 6); !reflect.DeepEqual(got, want) {
		t.Errorf("Minimal INN(x7) = %v, want %v", got, want)
	}
	if got := c.Binary(7, 6); !reflect.DeepEqual(got, want) {
		t.Errorf("Binary INN(x7) = %v, want %v", got, want)
	}
}

// TestExample2NormalPoint checks that a normal point's INN is its own
// (large) normal cluster, never the anomaly group.
func TestExample2NormalPoint(t *testing.T) {
	c := NewComputer(example2Points())
	got := c.Minimal(1, 6)
	if len(got) == 0 {
		t.Fatal("normal point INN should not be empty")
	}
	for _, j := range got {
		if j >= 4 && j <= 9 {
			t.Errorf("normal point INN contains anomaly member %d", j)
		}
	}
}

func TestSingleAnomalyEmptyINN(t *testing.T) {
	// A lone spike in flat-ish data has an empty (or near-empty) INN at
	// the pruned range: no neighbor reciprocates.
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 10 + 0.01*float64(i%7)
	}
	vals[30] = 500
	c := FromSeries(series.New("spike", vals))
	got := c.Minimal(30, c.RangeLimit(0))
	if len(got) != 0 {
		t.Errorf("spike INN = %v, want empty", got)
	}
}

func TestCollectiveAnomalyINN(t *testing.T) {
	// A 5-point offset group: the middle member's INN is the other four.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i % 3)
	}
	for i := 40; i < 45; i++ {
		vals[i] = 80
	}
	c := FromSeries(series.New("group", vals))
	got := c.Minimal(42, c.RangeLimit(0))
	want := []int{40, 41, 43, 44}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("group INN = %v, want %v", got, want)
	}
}

func TestWorstCaseFlatLine(t *testing.T) {
	// Section III: for a flat series the unpruned INN of a point can be
	// (nearly) the whole dataset; the 5% prune bounds it.
	vals := make([]float64, 50)
	c := FromSeries(series.New("flat", vals))
	unpruned := c.Minimal(25, 0) // t=0 -> unconstrained (n-1)
	if len(unpruned) < 20 {
		t.Errorf("unpruned flat-line INN size = %d, want large", len(unpruned))
	}
	pruned := c.MinimalPruned(25)
	limit := c.RangeLimit(0)
	if len(pruned) > 2*limit {
		t.Errorf("pruned INN size = %d exceeds 2*limit %d", len(pruned), limit)
	}
}

func TestRangeLimit(t *testing.T) {
	c := NewComputer(make([][2]float64, 100))
	if got := c.RangeLimit(0); got != 5 {
		t.Errorf("RangeLimit(default) = %d, want 5", got)
	}
	if got := c.RangeLimit(0.10); got != 10 {
		t.Errorf("RangeLimit(0.10) = %d, want 10", got)
	}
	small := NewComputer(make([][2]float64, 5))
	if got := small.RangeLimit(0); got != 1 {
		t.Errorf("RangeLimit small = %d, want 1", got)
	}
}

func TestKNNOrderingAndExclusion(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	c := NewComputer(pts)
	nn := c.KNN(1, 2)
	if !reflect.DeepEqual(nn, []int{0, 2}) {
		t.Errorf("KNN(1,2) = %v", nn)
	}
	for _, j := range c.KNN(1, 3) {
		if j == 1 {
			t.Error("KNN returned the query point itself")
		}
	}
}

func TestInTopK(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {5, 0}, {6, 0}}
	c := NewComputer(pts)
	if !c.InTopK(0, 1, 1) {
		t.Error("nearest neighbor not in top-1")
	}
	if c.InTopK(0, 3, 2) {
		t.Error("farthest point should not be in top-2")
	}
}

func TestMutualSymmetry(t *testing.T) {
	c := NewComputer(example2Points())
	for i := 0; i < c.Len(); i++ {
		for j := 0; j < c.Len(); j++ {
			if i == j {
				continue
			}
			if c.Mutual(i, j, 6) != c.Mutual(j, i, 6) {
				t.Fatalf("Mutual not symmetric for (%d,%d)", i, j)
			}
		}
	}
}

// Property: Minimal is always a subset of MutualSet (same admission
// condition, contiguity-restricted), and Binary's extent is at least
// Minimal's under the contiguity assumption.
func TestMinimalSubsetOfMutualSet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		// Inject one collective anomaly.
		start := 10 + rng.Intn(n-25)
		for i := start; i < start+5; i++ {
			vals[i] += 30
		}
		c := FromSeries(series.New("p", vals))
		tlim := c.RangeLimit(0)
		for probe := 0; probe < 10; probe++ {
			i := rng.Intn(n)
			min := c.Minimal(i, tlim)
			set := map[int]bool{}
			for _, j := range c.MutualSet(i, tlim) {
				set[j] = true
			}
			for _, j := range min {
				if !set[j] {
					t.Fatalf("Minimal member %d of point %d not in MutualSet", j, i)
				}
			}
			bin := c.Binary(i, tlim)
			if len(bin) < len(min) {
				t.Fatalf("Binary extent %d smaller than Minimal %d at point %d",
					len(bin), len(min), i)
			}
		}
	}
}

// Differential: on clean collective-anomaly patterns the binary extent
// covers at least the linear extent per side (binary search returns the
// largest passing offset, the linear scan the first-failure prefix), and
// both cover the whole group from its middle member.
func TestBinaryMatchesMinimalOnGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 200
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 0.1 * rng.NormFloat64()
		}
		gl := 3 + rng.Intn(6)
		start := 20 + rng.Intn(n-40-gl)
		for i := start; i < start+gl; i++ {
			vals[i] += 50
		}
		c := FromSeries(series.New("p", vals))
		tlim := c.RangeLimit(0)
		for i := start; i < start+gl; i++ {
			min := c.Minimal(i, tlim)
			bin := c.Binary(i, tlim)
			set := map[int]bool{}
			for _, j := range bin {
				set[j] = true
			}
			for _, j := range min {
				if !set[j] {
					t.Fatalf("trial %d point %d: Minimal member %d missing from Binary %v",
						trial, i, j, bin)
				}
			}
		}
		// The middle member's Minimal INN covers the whole group.
		mid := start + gl/2
		members := map[int]bool{}
		for _, j := range c.Minimal(mid, tlim) {
			members[j] = true
		}
		for i := start; i < start+gl; i++ {
			if i != mid && !members[i] {
				t.Fatalf("trial %d: group member %d missing from INN(%d)", trial, i, mid)
			}
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if got := NewComputer(nil).Minimal(0, 5); got != nil {
		t.Errorf("empty computer INN = %v", got)
	}
	one := NewComputer([][2]float64{{0, 0}})
	if got := one.Minimal(0, 5); got != nil {
		t.Errorf("singleton INN = %v", got)
	}
	two := NewComputer([][2]float64{{0, 0}, {1, 1}})
	got := two.Minimal(0, 1)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("pair INN = %v, want [1]", got)
	}
}

func BenchmarkMinimalINN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	c := FromSeries(series.New("bench", vals))
	tlim := c.RangeLimit(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Minimal(i%2000, tlim)
	}
}

func BenchmarkBinaryINN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	c := FromSeries(series.New("bench", vals))
	tlim := c.RangeLimit(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Binary(i%2000, tlim)
	}
}
