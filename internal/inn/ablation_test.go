package inn

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/series"
)

// The benchmarks below quantify the design choices DESIGN.md documents:
// the galloping binary search versus the linear scan versus the
// unconstrained mutual set (the paper's optimized/unoptimized split), and
// the cost of the per-offset rank bound at different pattern sizes.

func ablationSeries(n int) *series.Series {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, n)
	ar := 0.0
	for i := range vals {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/200) + ar
	}
	// A few collective anomalies so extents are non-trivial.
	for g := 0; g < n/400; g++ {
		start := 100 + g*397
		for i := start; i < start+8 && i < n; i++ {
			vals[i] += 20
		}
	}
	return series.New("ablation", vals)
}

func benchStrategy(b *testing.B, n int, f func(c *Computer, i, t int) []int) {
	c := FromSeries(ablationSeries(n))
	t := c.RangeLimit(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(c, i%n, t)
	}
}

func BenchmarkAblation_GallopBinary2k(b *testing.B) {
	benchStrategy(b, 2000, func(c *Computer, i, t int) []int { return c.Binary(i, t) })
}

func BenchmarkAblation_LinearScan2k(b *testing.B) {
	benchStrategy(b, 2000, func(c *Computer, i, t int) []int { return c.Minimal(i, t) })
}

func BenchmarkAblation_MutualSet2k(b *testing.B) {
	benchStrategy(b, 2000, func(c *Computer, i, t int) []int { return c.MutualSet(i, t) })
}

func BenchmarkAblation_GallopBinary20k(b *testing.B) {
	benchStrategy(b, 20000, func(c *Computer, i, t int) []int { return c.Binary(i, t) })
}

func BenchmarkAblation_MutualSet20k(b *testing.B) {
	benchStrategy(b, 20000, func(c *Computer, i, t int) []int { return c.MutualSet(i, t) })
}

// TestGallopAgreesWithLinearScan quantifies where the galloping binary
// search diverges from the exact linear scan — the residual risk of
// Algorithm 5's contiguity assumption. On normal points with long,
// gap-riddled mutual runs the two legitimately disagree (and neither
// answer affects detection); on the anomaly-pattern members whose INN
// feeds the scores, they must agree.
func TestGallopAgreesWithLinearScan(t *testing.T) {
	s := ablationSeries(4000)
	c := FromSeries(s)
	tlim := c.RangeLimit(0)
	diverged, probes := 0, 0
	for i := 0; i < 4000; i += 3 {
		probes++
		if len(c.Minimal(i, tlim)) != len(c.Binary(i, tlim)) {
			diverged++
		}
	}
	t.Logf("global gallop/linear divergence: %.1f%% of %d probes",
		100*float64(diverged)/float64(probes), probes)
	// Exactness where it matters: the injected collective-anomaly
	// members (see ablationSeries).
	for g := 0; g < 4000/400; g++ {
		start := 100 + g*397
		for i := start; i < start+8 && i < 4000; i++ {
			lin := c.Minimal(i, tlim)
			bin := c.Binary(i, tlim)
			if len(lin) != len(bin) {
				t.Errorf("group member %d: linear %d vs gallop %d members",
					i, len(lin), len(bin))
			}
		}
	}
}
