package inn

import (
	"math/rand"
	"reflect"
	"testing"

	"cabd/internal/series"
)

// nFromSeries builds equivalent 1-D-value NComputer and Computer over the
// same series for differential testing.
func nFromSeries(s *series.Series) (*NComputer, *Computer) {
	pts2 := s.Points()
	ptsN := make([][]float64, len(pts2))
	for i, p := range pts2 {
		ptsN[i] = []float64{p[0], p[1]}
	}
	return NewNComputer(ptsN), NewComputer(pts2)
}

func TestNComputerMatches2DComputer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for i := 200; i < 206; i++ {
		vals[i] += 25
	}
	s := series.New("diff", vals)
	nc, c := nFromSeries(s)
	tlim := c.RangeLimit(0)
	if nc.RangeLimit(0) != tlim {
		t.Fatalf("range limits differ: %d vs %d", nc.RangeLimit(0), tlim)
	}
	for i := 0; i < 400; i += 7 {
		if !reflect.DeepEqual(nc.Binary(i, tlim), c.Binary(i, tlim)) {
			t.Fatalf("Binary INN differs at %d: %v vs %v",
				i, nc.Binary(i, tlim), c.Binary(i, tlim))
		}
		if !reflect.DeepEqual(nc.Minimal(i, tlim), c.Minimal(i, tlim)) {
			t.Fatalf("Minimal INN differs at %d", i)
		}
		if !reflect.DeepEqual(nc.MutualSet(i, tlim), c.MutualSet(i, tlim)) {
			t.Fatalf("MutualSet differs at %d", i)
		}
	}
}

func TestNComputerHigherDimensions(t *testing.T) {
	// A 3-D group: mutual neighborhoods must find the group in the
	// joint space even though each single dimension is ambiguous.
	rng := rand.New(rand.NewSource(2))
	n := 300
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i) * 0.01, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	for i := 150; i < 156; i++ {
		pts[i][1] += 12
		pts[i][2] += 12
		pts[i][3] += 12
	}
	c := NewNComputer(pts)
	got := c.Binary(152, c.RangeLimit(0))
	want := map[int]bool{150: true, 151: true, 153: true, 154: true, 155: true}
	for _, j := range got {
		if !want[j] {
			t.Errorf("non-member %d in 3-D group INN %v", j, got)
		}
	}
	if len(got) < 4 {
		t.Errorf("3-D group INN too small: %v", got)
	}
}

func TestNComputerDegenerate(t *testing.T) {
	empty := NewNComputer(nil)
	if empty.Len() != 0 || empty.Minimal(0, 5) != nil {
		t.Error("empty NComputer misbehaves")
	}
	one := NewNComputer([][]float64{{0, 0}})
	if one.Binary(0, 3) != nil {
		t.Error("singleton INN should be nil")
	}
}
