// Package stream wraps the CABD detector for online use — the deployment
// mode of the paper's production prototype (IoT gateways see readings one
// at a time, not as files). Observations are pushed one by one; every hop
// the detector re-analyzes a sliding window and emits the detections that
// have left the window's trailing uncertainty zone, with global indices
// and cross-window deduplication.
//
// Two analysis engines are available. The default incremental engine
// maintains the pipeline's per-window substrates (Δ″ order statistics,
// KD-tree, SAX corpus) across slides, so a hop costs O(touched) instead
// of O(window) rebuild work; the full engine reruns the batch pipeline
// per hop. Both emit bit-identical detections — the full path is kept as
// the differential oracle for the incremental one.
package stream

import (
	"context"
	"sort"
	"time"

	"cabd/internal/core"
	"cabd/internal/obs"
	"cabd/internal/sanitize"
	"cabd/internal/series"
	"cabd/internal/stream/incremental"
)

// EngineMode selects the per-hop analysis engine.
type EngineMode int

const (
	// EngineIncremental (the default) maintains rolling pipeline state
	// across window slides and recomputes only around arrived/evicted
	// points each hop.
	EngineIncremental EngineMode = iota
	// EngineFull reruns the batch pipeline over the whole window every
	// hop. Slower, but zero extra state — and the differential oracle
	// the incremental engine is tested against.
	EngineFull
)

// Config parameterizes the streaming wrapper.
type Config struct {
	// Window is the analysis window length (default 1024). Larger
	// windows give the INN more context; smaller windows bound latency
	// and memory.
	Window int
	// Hop is how many new observations trigger a re-analysis (default
	// Window/8, floored at 1). Detection latency is at most Hop + Margin
	// points.
	Hop int
	// Margin is the number of trailing points considered unstable (a
	// fresh level shift looks like an anomaly until its segment grows;
	// default 16, clamped strictly below Window/2 so detections can
	// always leave the unstable zone).
	Margin int
	// BadValue selects how Push treats NaN, ±Inf and out-of-range
	// observations: sanitize.Interpolate (default) imputes the last good
	// value so the window is never corrupted; sanitize.Drop (and Reject,
	// which cannot signal an error from Push) discards the observation
	// entirely — indices then refer to the accepted substream. Bad()
	// reports how many observations were intercepted either way.
	BadValue sanitize.Policy
	// Engine selects the analysis engine (default EngineIncremental).
	Engine EngineMode
	// HopTimeout bounds one analysis. Zero means no bound. The deadline
	// arms the detector's graceful degradation (FixedKNN scoring when
	// headroom runs short — the emitted detections carry Degraded); an
	// analysis that still overruns is abandoned for this hop, counted
	// under obs.CounterStreamHopTimeouts, and retried at the next hop
	// over the slid window. Deadlines are measured on Options.Obs's
	// injected clock.
	HopTimeout time.Duration
	// Detector options.
	Options core.Options
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.Hop <= 0 {
		c.Hop = c.Window / 8
		if c.Hop < 1 {
			// Window < 8 used to leave Hop = 0: Push then triggered an
			// analysis on every observation once the window was half
			// full, and a configured Hop of 0 meant "analyze never
			// advances sinceRun past the threshold" — analyze every push.
			// Floor at one observation per hop.
			c.Hop = 1
		}
	}
	if c.Margin <= 0 {
		c.Margin = 16
	}
	if c.Margin >= c.Window/2 {
		// Strictly below half the window — assigning Window/2 itself
		// (the old behavior) kept the value the guard was rejecting, and
		// with Hop ≥ len(buf)-cut every detection could sit in the
		// unstable zone forever on tiny windows.
		c.Margin = c.Window/2 - 1
		if c.Margin < 0 {
			c.Margin = 0
		}
	}
}

// Detection is one streamed detection with its global index.
type Detection struct {
	Index      int // global position in the stream
	Class      core.Class
	Subtype    series.Label
	Confidence float64
	// Degraded is set when the analysis that confirmed this detection
	// ran under graceful degradation (FixedKNN fallback on candidate
	// floods or deadline pressure) — the detection is real but its
	// scores came from the cheaper neighborhood strategy.
	Degraded bool
}

// Detector is the streaming wrapper. Not safe for concurrent use.
type Detector struct {
	cfg      Config
	det      *core.Detector
	eng      *incremental.Engine // nil under EngineFull
	buf      []float64           // sliding window
	start    int                 // global index of buf[0]
	total    int                 // observations seen
	sinceRun int                 // observations since the last analysis
	emitted  map[int]bool
	clk      obs.Clock

	lastGood float64 // most recent finite observation
	hasGood  bool
	bad      int // bad observations intercepted
}

// New returns a streaming detector.
func New(cfg Config) *Detector {
	cfg.defaults()
	d := &Detector{
		cfg:     cfg,
		det:     core.NewDetector(cfg.Options),
		emitted: map[int]bool{},
	}
	d.clk = cfg.Options.Obs.Clock()
	if cfg.Engine == EngineIncremental {
		d.eng = incremental.New(incremental.FromOptions(d.det.Options()))
	}
	return d
}

// State is the serializable snapshot of a streaming detector — the
// agent checkpoint format. It captures everything Push accumulates, so
// a Resume'd detector continues the stream bit-identically: same window
// contents, same global indices, same emitted-detection dedup set.
type State struct {
	// Window is the sliding-buffer contents; Start is the global index
	// of Window[0].
	Window []float64 `json:"window,omitempty"`
	Start  int       `json:"start"`
	// Total / SinceRun / Bad mirror the stream's lifetime counters.
	Total    int `json:"total"`
	SinceRun int `json:"since_run"`
	Bad      int `json:"bad"`
	// Emitted lists the already-reported global detection indices still
	// inside the window, sorted for a canonical wire form.
	Emitted []int `json:"emitted,omitempty"`
	// LastGood / HasGood restore the bad-value imputation state.
	LastGood float64 `json:"last_good"`
	HasGood  bool    `json:"has_good"`
}

// State snapshots the detector for checkpointing.
func (d *Detector) State() State {
	st := State{
		Window:   append([]float64(nil), d.buf...),
		Start:    d.start,
		Total:    d.total,
		SinceRun: d.sinceRun,
		Bad:      d.bad,
		LastGood: d.lastGood,
		HasGood:  d.hasGood,
	}
	for idx := range d.emitted {
		// Eviction of stale indices is deferred to hop boundaries, so
		// filter here: the canonical wire form carries only indices
		// still inside the window.
		if idx >= d.start {
			st.Emitted = append(st.Emitted, idx)
		}
	}
	sort.Ints(st.Emitted)
	return st
}

// Resume rebuilds a detector from a checkpointed State under cfg. The
// configuration is not part of the state — a resumed agent applies its
// (possibly reloaded) config to the restored stream position. The
// incremental engine's rolling state is rebuilt by replaying the window,
// which reproduces the continuously-run state exactly (every substrate
// is a function of the live window alone).
func Resume(cfg Config, st State) *Detector {
	d := New(cfg)
	d.buf = append(d.buf, st.Window...)
	d.start = st.Start
	d.total = st.Total
	d.sinceRun = st.SinceRun
	d.bad = st.Bad
	d.lastGood = st.LastGood
	d.hasGood = st.HasGood
	if d.eng != nil {
		for i, v := range st.Window {
			d.eng.Observe(st.Start+i, v)
		}
	}
	for _, idx := range st.Emitted {
		d.emitted[idx] = true
	}
	return d
}

// Push appends one observation and returns any newly confirmed
// detections (often none; at most once per hop). A NaN, ±Inf or
// out-of-range observation never reaches the window: it is imputed with
// the last good value (default) or discarded, per Config.BadValue.
func (d *Detector) Push(v float64) []Detection {
	if !sanitize.Finite(v, sanitize.DefaultMaxAbs) {
		d.bad++
		d.cfg.Options.Obs.Add(obs.CounterBadStreamValues, 1)
		if d.cfg.BadValue != sanitize.Interpolate || !d.hasGood {
			// Drop/Reject policy, or no good value yet to impute with:
			// the observation is discarded entirely.
			return nil
		}
		v = d.lastGood
	} else {
		d.lastGood, d.hasGood = v, true
	}
	d.buf = append(d.buf, v)
	if d.eng != nil {
		d.eng.Observe(d.start+len(d.buf)-1, v)
	}
	if len(d.buf) > d.cfg.Window {
		drop := len(d.buf) - d.cfg.Window
		d.buf = d.buf[drop:]
		d.start += drop
		if d.eng != nil {
			d.eng.SlideTo(d.start)
		}
	}
	d.total++
	d.sinceRun++
	d.cfg.Options.Obs.SetGauge(obs.GaugeStreamWindow, int64(len(d.buf)))
	if d.sinceRun < d.cfg.Hop || len(d.buf) < d.cfg.Window/2 {
		return nil
	}
	d.sinceRun = 0
	return d.analyze()
}

// Flush analyzes the current window one final time with no trailing
// margin (end of stream: the margin has nothing more to wait for).
func (d *Detector) Flush() []Detection {
	return d.analyzeWithMargin(0)
}

// Total returns the number of observations accepted into the stream
// (imputed observations count; discarded bad ones do not).
func (d *Detector) Total() int { return d.total }

// Bad returns the number of bad (NaN/Inf/out-of-range) observations
// intercepted by Push, whether imputed or discarded.
func (d *Detector) Bad() int { return d.bad }

func (d *Detector) analyze() []Detection {
	return d.analyzeWithMargin(d.cfg.Margin)
}

func (d *Detector) analyzeWithMargin(margin int) []Detection {
	if len(d.buf) < 8 {
		return nil
	}
	// Forget emitted indices that fell out of the window. Deferred from
	// Push to the analysis boundary: scanning the map per observation
	// made the steady-state Push O(|emitted|) per point; here the scan
	// amortizes over the hop.
	for idx := range d.emitted {
		if idx < d.start {
			delete(d.emitted, idx)
		}
	}
	ctx := context.Background()
	if d.cfg.HopTimeout > 0 {
		// The deadline is computed on the injected clock so tests drive
		// it deterministically; the detector's degradation pilot reads
		// the same clock. A pathological window used to stall Push
		// forever here (plain Detect has no way out); now the analysis
		// degrades, and past the deadline is abandoned until next hop.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, d.clk.Now().Add(d.cfg.HopTimeout))
		defer cancel()
	}
	s := series.New("stream", d.buf)
	var res *core.Result
	var err error
	if d.eng != nil {
		res, err = d.det.DetectEnvCtx(ctx, s, d.eng.BuildEnv(d.buf, d.start))
	} else {
		res, err = d.det.DetectCtx(ctx, s)
	}
	if err != nil {
		d.cfg.Options.Obs.Add(obs.CounterStreamHopTimeouts, 1)
		return nil
	}
	cut := len(d.buf) - margin
	var out []Detection
	report := func(dets []core.Detection) {
		for _, det := range dets {
			if det.Index >= cut {
				continue // still inside the unstable margin
			}
			g := d.start + det.Index
			if d.emitted[g] {
				continue
			}
			d.emitted[g] = true
			out = append(out, Detection{
				Index: g, Class: det.Class,
				Subtype: det.Subtype, Confidence: det.Confidence,
				Degraded: res.Degraded,
			})
		}
	}
	report(res.Anomalies)
	report(res.ChangePoints)
	return out
}
