package stream

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cabd/internal/core"
	"cabd/internal/faultgen"
	"cabd/internal/obs"
	"cabd/internal/sanitize"
	"cabd/internal/synth"
)

// TestTinyWindowDefaults pins the defaults() fixes: Hop used to resolve
// to Window/8 = 0 for Window < 8 (analysis every push, and a divide-free
// stall risk downstream), and the Margin clamp used to assign the exact
// value its own guard rejects (Window/2), leaving every detection inside
// the unstable zone on tiny windows.
func TestTinyWindowDefaults(t *testing.T) {
	cases := []struct {
		name        string
		in          Config
		hop, margin int
	}{
		{"window 1", Config{Window: 1}, 1, 0},
		{"window 2", Config{Window: 2}, 1, 0},
		{"window 4", Config{Window: 4}, 1, 1},
		{"window 7", Config{Window: 7}, 1, 2},
		{"window 8", Config{Window: 8}, 1, 3},
		{"window 16", Config{Window: 16}, 2, 7},
		{"window 100 margin huge", Config{Window: 100, Margin: 500}, 12, 49},
		{"explicit hop kept", Config{Window: 4, Hop: 3}, 3, 1},
		{"margin below clamp kept", Config{Window: 100, Margin: 10}, 12, 10},
		{"default window", Config{}, 128, 16},
	}
	for _, tc := range cases {
		cfg := tc.in
		cfg.defaults()
		if cfg.Hop != tc.hop || cfg.Margin != tc.margin {
			t.Errorf("%s: hop=%d margin=%d, want hop=%d margin=%d",
				tc.name, cfg.Hop, cfg.Margin, tc.hop, tc.margin)
		}
		if cfg.Hop < 1 {
			t.Errorf("%s: hop %d can never trigger an analysis", tc.name, cfg.Hop)
		}
		if cfg.Window >= 2 && cfg.Margin >= cfg.Window/2 && cfg.Margin > 0 {
			t.Errorf("%s: margin %d not strictly below window/2", tc.name, cfg.Margin)
		}
	}
}

// TestTinyWindowStreamProgresses is the end-to-end regression: a tiny
// window must still produce analyses and let detections leave the
// margin, instead of dividing into a Hop=0 / Margin=Window/2 stall.
func TestTinyWindowStreamProgresses(t *testing.T) {
	for _, w := range []int{2, 4, 7} {
		d := New(Config{Window: w})
		for i := 0; i < 200; i++ {
			d.Push(float64(i % 3))
		}
		if d.Total() != 200 {
			t.Errorf("window %d: Total=%d", w, d.Total())
		}
	}
}

// TestStaleEmittedEvictedAtHop pins the deferred-eviction contract:
// stale emitted indices survive between analyses (Push no longer scans
// the map per observation), never appear in State(), and are purged by
// the next analysis.
func TestStaleEmittedEvictedAtHop(t *testing.T) {
	d := New(Config{Window: 64, Hop: 16, Options: core.Options{Seed: 3}})
	d.emitted[1] = true // will go stale once the window slides past it
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 70; i++ { // fill past the window so start > 1, but stop before a hop lands
		d.Push(rng.NormFloat64())
		if i == 68 && !d.emitted[1] {
			t.Fatal("stale emitted index evicted outside an analysis boundary")
		}
	}
	if d.start <= 1 {
		t.Fatalf("window never slid (start=%d); test setup wrong", d.start)
	}
	for _, idx := range d.State().Emitted {
		if idx < d.start {
			t.Fatalf("State leaked stale emitted index %d (start %d)", idx, d.start)
		}
	}
	for i := 0; i < 16; i++ { // land an analysis: the hop boundary purges
		d.Push(rng.NormFloat64())
	}
	if d.emitted[1] {
		t.Fatal("analysis boundary did not evict the stale emitted index")
	}
}

// BenchmarkPushSteadyState guards the Push hot path: a full window with
// a populated emitted set must not pay a per-observation map scan.
func BenchmarkPushSteadyState(b *testing.B) {
	d := New(Config{Window: 4096, Hop: 1 << 30}) // hop never fires: isolate Push itself
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		d.Push(rng.NormFloat64())
	}
	for i := 0; i < 512; i++ {
		d.emitted[i] = true // mostly-stale dedup set of a long-running stream
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(float64(i&127) * 0.01)
	}
}

// TestHopTimeoutAbandonsAnalysis: with an already-expired deadline the
// analysis is abandoned — counted, no detections, and Push keeps
// accepting observations instead of stalling.
func TestHopTimeoutAbandonsAnalysis(t *testing.T) {
	rec := obs.NewWithClock(obs.NewFakeClock(time.Time{})) // epoch clock: every deadline is long past
	d := New(Config{
		Window: 64, Hop: 16, HopTimeout: time.Nanosecond,
		Options: core.Options{Seed: 3, Obs: rec},
	})
	vals := signal(12, 400, []int{200})
	var got []Detection
	for _, v := range vals {
		got = append(got, d.Push(v)...)
	}
	if len(got) != 0 {
		t.Fatalf("abandoned analyses still emitted %d detections", len(got))
	}
	if n := rec.Count(obs.CounterStreamHopTimeouts); n == 0 {
		t.Fatal("hop timeouts not counted")
	}
	if d.Total() != 400 {
		t.Fatalf("Total=%d: Push stalled", d.Total())
	}
}

// TestDegradedSurfacesOnDetections: an analysis that degrades (candidate
// flood over a tiny DegradeCandidates bound) still emits its detections,
// and they carry the Degraded flag.
func TestDegradedSurfacesOnDetections(t *testing.T) {
	vals := signal(13, 1200, []int{300, 600, 900})
	d := New(Config{
		Window: 400, Hop: 60,
		Options: core.Options{Seed: 3, DegradeCandidates: 1},
	})
	got := runStream(d, vals)
	if len(got) == 0 {
		t.Fatal("degraded stream emitted nothing")
	}
	for _, det := range got {
		if !det.Degraded {
			t.Fatalf("detection %+v not flagged Degraded under forced degradation", det)
		}
	}
}

// TestIncrementalMatchesFullStream is the stream-level differential
// oracle over faultgen-corrupted synthetic streams: the incremental and
// full engines must emit identical detections at every push, under both
// bad-value policies.
func TestIncrementalMatchesFullStream(t *testing.T) {
	for _, policy := range []sanitize.Policy{sanitize.Interpolate, sanitize.Drop} {
		s := synth.Generate(synth.Config{N: 1200, Seed: 21, SingleFrac: 0.02, ChangeFrac: 0.01})
		rng := rand.New(rand.NewSource(31))
		vals, _ := faultgen.Chaos(rng, s.Values)

		cfg := func(m EngineMode) Config {
			return Config{
				Window: 256, Hop: 32, Margin: 12, BadValue: policy,
				Engine: m, Options: core.Options{Seed: 5},
			}
		}
		di := New(cfg(EngineIncremental))
		df := New(cfg(EngineFull))
		for i, v := range vals {
			gi := di.Push(v)
			gf := df.Push(v)
			if !reflect.DeepEqual(gi, gf) {
				t.Fatalf("policy %v push %d: incremental %v full %v", policy, i, gi, gf)
			}
		}
		if !reflect.DeepEqual(di.Flush(), df.Flush()) {
			t.Fatalf("policy %v: Flush diverged", policy)
		}
	}
}

// TestStateResumeDropPolicy is the satellite-4 round trip: checkpoint
// mid-stream while the Drop policy is discarding faultgen-injected bad
// values, resume (incremental engine state rebuilds by replay), and the
// tail must match the uninterrupted run detection-for-detection.
func TestStateResumeDropPolicy(t *testing.T) {
	s := synth.Generate(synth.Config{N: 900, Seed: 17, SingleFrac: 0.02, ChangeFrac: 0.01})
	rng := rand.New(rand.NewSource(23))
	vals, _ := faultgen.Chaos(rng, s.Values) // NaN runs + extremes land mid-stream

	cfg := Config{Window: 128, Hop: 16, Margin: 8, BadValue: sanitize.Drop,
		Options: core.Options{Seed: 5}}
	full := New(cfg)
	cut := len(vals) / 2
	var wantTail []Detection
	for i, v := range vals {
		dets := full.Push(v)
		if i >= cut {
			wantTail = append(wantTail, dets...)
		}
	}
	wantTail = append(wantTail, full.Flush()...)

	half := New(cfg)
	for _, v := range vals[:cut] {
		half.Push(v)
	}
	buf, err := json.Marshal(half.State())
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var st State
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	resumed := Resume(cfg, st)

	var gotTail []Detection
	for _, v := range vals[cut:] {
		gotTail = append(gotTail, resumed.Push(v)...)
	}
	gotTail = append(gotTail, resumed.Flush()...)
	if !reflect.DeepEqual(gotTail, wantTail) {
		t.Fatalf("resumed tail diverged:\ngot  %v\nwant %v", gotTail, wantTail)
	}
	if resumed.Total() != full.Total() || resumed.Bad() != full.Bad() {
		t.Fatalf("counters diverged: total %d/%d bad %d/%d",
			resumed.Total(), full.Total(), resumed.Bad(), full.Bad())
	}
}
