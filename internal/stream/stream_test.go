package stream

import (
	"math"
	"math/rand"
	"testing"

	"cabd/internal/core"
	"cabd/internal/sanitize"
)

func signal(seed int64, n int, spikes []int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	ar := 0.0
	for i := range vals {
		ar = 0.7*ar + rng.NormFloat64()*0.1
		vals[i] = 2*math.Sin(2*math.Pi*float64(i)/120) + ar
	}
	for _, p := range spikes {
		vals[p] += 15
	}
	return vals
}

func runStream(d *Detector, vals []float64) []Detection {
	var all []Detection
	for _, v := range vals {
		all = append(all, d.Push(v)...)
	}
	all = append(all, d.Flush()...)
	return all
}

func TestStreamFindsSpikes(t *testing.T) {
	spikes := []int{300, 900, 1500, 2100}
	vals := signal(1, 2600, spikes)
	d := New(Config{Window: 600, Hop: 100})
	got := runStream(d, vals)
	found := map[int]bool{}
	for _, det := range got {
		if det.Class == core.ClassAnomaly {
			found[det.Index] = true
		}
	}
	for _, p := range spikes {
		if !found[p] {
			t.Errorf("spike at %d not streamed", p)
		}
	}
}

func TestNoDuplicateEmissions(t *testing.T) {
	vals := signal(2, 2000, []int{500, 1000})
	d := New(Config{Window: 600, Hop: 50})
	seen := map[int]int{}
	for _, det := range runStream(d, vals) {
		seen[det.Index]++
	}
	for idx, count := range seen {
		if count > 1 {
			t.Errorf("index %d emitted %d times", idx, count)
		}
	}
}

func TestGlobalIndicesInRange(t *testing.T) {
	vals := signal(3, 1500, []int{700})
	d := New(Config{Window: 400, Hop: 80})
	for _, det := range runStream(d, vals) {
		if det.Index < 0 || det.Index >= 1500 {
			t.Errorf("global index out of range: %d", det.Index)
		}
	}
	if d.Total() != 1500 {
		t.Errorf("Total = %d", d.Total())
	}
}

func TestLatencyBound(t *testing.T) {
	// A spike must be reported within Hop + Margin observations of its
	// arrival, not at the end of the stream.
	vals := signal(4, 1600, nil)
	spike := 800
	vals[spike] += 15
	d := New(Config{Window: 500, Hop: 60, Margin: 16})
	reportedAt := -1
	for i, v := range vals {
		for _, det := range d.Push(v) {
			if det.Index == spike {
				reportedAt = i
			}
		}
	}
	if reportedAt < 0 {
		t.Fatal("spike never reported before end of stream")
	}
	if lag := reportedAt - spike; lag > 60+16 {
		t.Errorf("detection lag = %d, want <= hop+margin", lag)
	}
}

func TestFlushEmitsTail(t *testing.T) {
	vals := signal(5, 1000, nil)
	vals[995] += 15 // inside the final margin
	d := New(Config{Window: 400, Hop: 80, Margin: 30})
	var streamed []Detection
	for _, v := range vals {
		streamed = append(streamed, d.Push(v)...)
	}
	for _, det := range streamed {
		if det.Index == 995 {
			t.Fatal("margin detection leaked before Flush")
		}
	}
	found := false
	for _, det := range d.Flush() {
		if det.Index == 995 {
			found = true
		}
	}
	if !found {
		t.Error("Flush did not emit the tail spike")
	}
}

func TestPushImputesBadValues(t *testing.T) {
	// A NaN/Inf observation must not corrupt the window: with the default
	// policy it is imputed with the last good value, so the detections
	// must match a stream where the caller did that replacement by hand.
	vals := signal(6, 1400, []int{400, 1000})
	dirty := append([]float64(nil), vals...)
	clean := append([]float64(nil), vals...)
	for _, i := range []int{200, 201, 202, 650, 1200} {
		dirty[i] = math.NaN()
		clean[i] = clean[i-1]
	}
	dirty[700] = math.Inf(1)
	clean[700] = clean[699]
	dirty[701] = 1e300 // finite but hostile: squares to +Inf
	clean[701] = clean[700]

	dDirty := New(Config{Window: 500, Hop: 60})
	dClean := New(Config{Window: 500, Hop: 60})
	gotDirty := runStream(dDirty, dirty)
	gotClean := runStream(dClean, clean)
	if len(gotDirty) != len(gotClean) {
		t.Fatalf("detections differ: dirty %d vs clean %d", len(gotDirty), len(gotClean))
	}
	for i := range gotDirty {
		if gotDirty[i] != gotClean[i] {
			t.Errorf("detection %d differs: %+v vs %+v", i, gotDirty[i], gotClean[i])
		}
	}
	if dDirty.Bad() != 7 {
		t.Errorf("Bad() = %d, want 7", dDirty.Bad())
	}
	if dDirty.Total() != 1400 {
		t.Errorf("Total() = %d, want 1400 (imputed observations count)", dDirty.Total())
	}
}

func TestPushDropPolicy(t *testing.T) {
	d := New(Config{Window: 200, Hop: 20, BadValue: sanitize.Drop})
	d.Push(math.NaN()) // leading bad value with nothing to impute from
	for i := 0; i < 50; i++ {
		d.Push(float64(i))
		d.Push(math.Inf(-1))
	}
	if d.Total() != 50 {
		t.Errorf("Total = %d, want 50 accepted", d.Total())
	}
	if d.Bad() != 51 {
		t.Errorf("Bad = %d, want 51", d.Bad())
	}
	if len(d.buf) != 50 {
		t.Errorf("window holds %d points, want 50", len(d.buf))
	}
	for _, v := range d.buf {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("bad value leaked into the window")
		}
	}
}

func TestShortStreamQuiet(t *testing.T) {
	d := New(Config{Window: 200, Hop: 20})
	var got []Detection
	for i := 0; i < 30; i++ {
		got = append(got, d.Push(1)...)
	}
	if len(got) != 0 {
		t.Errorf("short constant stream produced %d detections", len(got))
	}
}
