package stream

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"cabd/internal/core"
	"cabd/internal/synth"
)

// streamCfg is a small, fast configuration shared by the state tests.
func streamCfg() Config {
	return Config{
		Window:  128,
		Hop:     16,
		Margin:  8,
		Options: core.Options{Seed: 5},
	}
}

// TestStateResumeEquivalence is the checkpoint contract: push half a
// series, snapshot through a JSON round trip, resume, push the rest —
// and every downstream detection (and every counter) must match the
// uninterrupted run exactly.
func TestStateResumeEquivalence(t *testing.T) {
	s := synth.Generate(synth.Config{N: 600, Seed: 9, SingleFrac: 0.02, ChangeFrac: 0.01})
	vals := s.Values
	vals[100] = math.NaN() // exercise the imputation state too
	cut := len(vals) / 2

	full := New(streamCfg())
	var wantTail []Detection
	for i, v := range vals {
		dets := full.Push(v)
		if i >= cut {
			wantTail = append(wantTail, dets...)
		}
	}
	wantTail = append(wantTail, full.Flush()...)

	half := New(streamCfg())
	for _, v := range vals[:cut] {
		half.Push(v)
	}
	buf, err := json.Marshal(half.State())
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var st State
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	resumed := Resume(streamCfg(), st)

	var gotTail []Detection
	for _, v := range vals[cut:] {
		gotTail = append(gotTail, resumed.Push(v)...)
	}
	gotTail = append(gotTail, resumed.Flush()...)

	if !reflect.DeepEqual(gotTail, wantTail) {
		t.Fatalf("resumed tail detections diverged:\ngot  %v\nwant %v", gotTail, wantTail)
	}
	if resumed.Total() != full.Total() || resumed.Bad() != full.Bad() {
		t.Fatalf("counters diverged: total %d/%d bad %d/%d",
			resumed.Total(), full.Total(), resumed.Bad(), full.Bad())
	}
}

// TestStateCanonical: Emitted is sorted and the snapshot is
// insensitive to map iteration order.
func TestStateCanonical(t *testing.T) {
	d := New(streamCfg())
	d.emitted[42] = true
	d.emitted[7] = true
	d.emitted[99] = true
	st := d.State()
	if !reflect.DeepEqual(st.Emitted, []int{7, 42, 99}) {
		t.Fatalf("emitted not canonical: %v", st.Emitted)
	}
}

// TestStateEmptyRoundTrip: a fresh detector's state resumes to a
// working fresh detector.
func TestStateEmptyRoundTrip(t *testing.T) {
	d := Resume(streamCfg(), New(streamCfg()).State())
	if d.Total() != 0 || d.Bad() != 0 {
		t.Fatalf("fresh resume has counters: total %d bad %d", d.Total(), d.Bad())
	}
	if out := d.Push(1.0); out != nil {
		t.Fatalf("first push emitted %v", out)
	}
}
