// Package incremental maintains the CABD pipeline's per-window state
// across stream slides, so each hop's analysis costs O(touched) instead
// of rebuilding every stage from the full window.
//
// The batch pipeline recomputes four substrates per window: the Δ″ order
// statistics behind candidate estimation, the KD-tree behind INN rank
// probes, the sliding SAX word corpus behind the correlation score, and
// the per-candidate feature scores. The engine maintains the first three
// incrementally — an order-statistic treap over Δ″ (O(log w) per point),
// a bucketed sliding KD-tree (O(log w) amortized per point, queried
// through the current window's standardization frame), and a rolling
// word corpus (O(hop) words per analysis) — and hands them to the shared
// detector core through core.Env. Scoring and classification then run
// the unmodified batch code over them.
//
// # Exactness
//
// The engine is not approximately right — it emits bit-identical results
// to a full rerun, by construction:
//
//   - Candidate estimation is affine-invariant, so the batch path runs it
//     on raw values (see core.candidateIndices); raw Δ″ values never
//     change once computed, and the treap reproduces stats.Median /
//     stats.MAD / stats.RobustZ selection exactly.
//   - SAX words standardize per word window, so a word depends only on
//     its own raw span; the rolling corpus stores the identical words.
//   - Rank counts and k-NN sets are functions of the point set and the
//     metric, not the tree shape; the sliding tree transforms raw points
//     through the exact stats.Standardize expression, so every probe
//     answers as a fresh tree over the standardized window would.
//
// Only the per-hop (μ, σ) embedding frame genuinely changes with the
// window — which is why neighborhoods and rank memos are scoped to one
// analysis (as in the batch path) rather than carried across hops.
package incremental

import (
	"sync"

	"cabd/internal/core"
	"cabd/internal/inn"
	"cabd/internal/kdtree"
	"cabd/internal/stats"
)

// Config parameterizes an engine. Values must match the resolved
// detector options of the stream the engine serves (core.Detector.Options
// after defaults), or the substrates will answer for a different
// pipeline than the one consuming them.
type Config struct {
	// CandidateZ is the robust z threshold of candidate estimation.
	CandidateZ float64
	// SAXSegments / SAXAlphabet parameterize correlation-score words.
	SAXSegments int
	SAXAlphabet int
	// Seed drives the treap priorities (tree shape only; results are
	// shape-independent).
	Seed int64
}

// FromOptions derives the engine config from resolved detector options.
func FromOptions(o core.Options) Config {
	return Config{
		CandidateZ:  o.CandidateZ,
		SAXSegments: o.SAXSegments,
		SAXAlphabet: o.SAXAlphabet,
		Seed:        o.Seed,
	}
}

// Engine is the incremental pipeline state of one stream. Not safe for
// concurrent use, except that the Env hooks returned by BuildEnv may be
// called from concurrent scorer workers (the engine serializes corpus
// mutation internally; the treap and tree are read-only during an
// analysis).
type Engine struct {
	cfg Config

	tree *kdtree.Sliding
	d2   *orderTreap

	// d2vals holds the true Δ″ value of each global index in
	// [d2Head, end), head-indexed — Remove needs the exact stored value
	// when an index expires.
	d2vals  []float64
	d2Head  int
	d2First int // global index d2vals[d2Head] refers to

	corpus   map[int]*lenCorpus
	corpusMu sync.Mutex
	analyses int
	segments int
	alphabet int

	start int // window start (global index of the first live value)
	end   int // one past the newest observed global index
	seen  int // observations fed so far (2 needed before Δ″ exists)

	prevVal float64 // newest value
	prevD1  float64 // newest first difference |x_g - x_{g-1}|

	idxCache []float64 // cached 0..n-1 slice for the position frame
}

// New returns an empty engine.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:      cfg,
		tree:     kdtree.NewSliding(),
		d2:       newOrderTreap(cfg.Seed ^ 0x5eed),
		corpus:   make(map[int]*lenCorpus),
		segments: cfg.SAXSegments,
		alphabet: cfg.SAXAlphabet,
	}
}

// Observe feeds the accepted observation with global index g (indices
// must be consecutive; the stream wrapper assigns one per accepted
// observation).
func (e *Engine) Observe(g int, v float64) {
	e.tree.Push(int64(g), v)
	switch e.seen {
	case 0:
		e.start = g
		// SecondDiff forces the window's first two elements to zero; the
		// two sentinel entries track the current window start (SlideTo
		// moves them).
		e.d2.Insert(0, int64(g))
	case 1:
		e.d2.Insert(0, int64(g))
		e.prevD1 = absDiff(v, e.prevVal)
	default:
		d1 := absDiff(v, e.prevVal)
		d2 := absDiff(d1, e.prevD1)
		e.d2.Insert(d2, int64(g))
		if len(e.d2vals) == e.d2Head {
			e.d2First = g
		}
		e.d2vals = append(e.d2vals, d2)
		e.prevD1 = d1
	}
	e.prevVal = v
	e.seen++
	e.end = g + 1
}

// absDiff mirrors the exact expression of series.FirstDiff/SecondDiff.
func absDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}

// SlideTo advances the window start: values with global index < start
// have been evicted by the stream buffer. The two zero sentinels move to
// the new start, and the true Δ″ entries of indices entering the
// sentinel zone leave the multiset — exactly the SecondDiff of the new
// window.
//
//cabd:hotpath
func (e *Engine) SlideTo(start int) {
	if start <= e.start {
		return
	}
	for s := e.start; s < start; s++ {
		e.d2.Remove(0, int64(s))
		e.d2.Insert(0, int64(s+2))
		// The index s+2 just became a forced zero; retire its true Δ″.
		if e.d2First+(len(e.d2vals)-e.d2Head) > s+2 && e.d2First <= s+2 {
			off := e.d2Head + (s + 2 - e.d2First)
			e.d2.Remove(e.d2vals[off], int64(s+2))
		}
	}
	// Drop the value backing store for expired sentinel-zone indices.
	for e.d2Head < len(e.d2vals) && e.d2First < start+2 {
		e.d2Head++
		e.d2First++
	}
	if e.d2Head > 0 && e.d2Head >= len(e.d2vals)/2 {
		e.d2vals = append(e.d2vals[:0], e.d2vals[e.d2Head:]...)
		e.d2Head = 0
	}
	e.start = start
	e.tree.EvictBefore(int64(start))
}

// BuildEnv assembles the core.Env for one analysis over the live window.
// buf must be the window values (global indices [start, start+len(buf)))
// and must stay unmodified until the analysis completes — the hooks
// capture it. The caller runs Detector.DetectEnvCtx with the result.
func (e *Engine) BuildEnv(buf []float64, start int) *core.Env {
	n := len(buf)
	if start != e.start || start+n != e.end {
		panic("incremental: BuildEnv window out of sync with engine state")
	}
	if got := e.d2.Len(); got != n {
		panic("incremental: Δ″ multiset out of sync with window")
	}
	e.analyses++
	e.tree.Flush()
	e.sweepCorpus()

	// The standardization frame of this analysis: positions 0..n-1 and
	// the window values, via the same stats helpers Standardize uses, so
	// the sliding tree's on-the-fly transform lands on identical bits.
	idx := e.idxSlice(n)
	f := kdtree.Frame{
		Start:   int64(start),
		MeanPos: stats.Mean(idx), StdPos: stats.Std(idx),
		MeanVal: stats.Mean(buf), StdVal: stats.Std(buf),
	}
	si := stats.Standardize(idx)
	sv := stats.Standardize(buf)
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{si[i], sv[i]}
	}
	comp := inn.NewComputerOver(&slidingIndex{
		tree: e.tree, f: f, pts: pts, start: int64(start),
	})
	return &core.Env{
		Candidates: func() ([]int, []float64) { return e.candidates(start, n) },
		Computer:   comp,
		Frequency: func(wlen int, word string) float64 {
			return e.frequency(buf, start, wlen, word)
		},
	}
}

func (e *Engine) idxSlice(n int) []float64 {
	if len(e.idxCache) != n {
		e.idxCache = make([]float64, n)
		for i := range e.idxCache {
			e.idxCache[i] = float64(i)
		}
	}
	return e.idxCache
}

// slidingIndex adapts the sliding tree + frame to inn.Index. Query
// coordinates come from the precomputed standardized embedding (the
// identical bits the batch path would feed kdtree.New), tie and skip
// identities travel as global indices.
type slidingIndex struct {
	tree  *kdtree.Sliding
	f     kdtree.Frame
	pts   [][2]float64
	start int64
}

func (s *slidingIndex) Len() int { return len(s.pts) }

func (s *slidingIndex) RankAtMost(i, j, limit int) int {
	d := kdtree.Dist(s.pts[i], s.pts[j])
	return s.tree.RankAtMost(s.f, s.pts[i], d, s.start+int64(j), s.start+int64(i), limit)
}

func (s *slidingIndex) KNNInto(i, k int, buf []kdtree.Neighbor) []kdtree.Neighbor {
	return s.tree.KNNInto(s.f, s.pts[i], k, s.start+int64(i), buf)
}
