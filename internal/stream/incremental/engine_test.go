package incremental

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cabd/internal/core"
	"cabd/internal/series"
	"cabd/internal/stats"
)

// TestTreapMatchesStats slides a window of seeded values (with heavy
// duplicates and a flat stretch) and checks the treap's median and MAD
// against the brute-force stats helpers at every step.
func TestTreapMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newOrderTreap(3)
	const window = 57 // odd and even sizes both exercised during ramp-up
	var buf []float64
	var gs []int64
	for g := int64(0); g < 600; g++ {
		var v float64
		switch {
		case g > 200 && g < 260: // flat stretch: MAD collapses to 0
			v = 4
		case g%5 == 0: // duplicates: exact value ties
			v = float64(int(g) % 7)
		default:
			v = rng.NormFloat64() * 10
		}
		tr.Insert(v, g)
		buf = append(buf, v)
		gs = append(gs, g)
		if len(buf) > window {
			tr.Remove(buf[0], gs[0])
			buf, gs = buf[1:], gs[1:]
		}
		if tr.Len() != len(buf) {
			t.Fatalf("g=%d: treap Len=%d buf=%d", g, tr.Len(), len(buf))
		}
		wantMed := stats.Median(buf)
		gotMed := tr.Median()
		if gotMed != wantMed { //cabd:lint-ignore floateq the treap contract is bit-identity with stats.Median
			t.Fatalf("g=%d: median treap=%v stats=%v", g, gotMed, wantMed)
		}
		wantMAD := stats.MAD(buf)
		gotMAD := tr.MAD(gotMed)
		if gotMAD != wantMAD { //cabd:lint-ignore floateq the treap contract is bit-identity with stats.MAD
			t.Fatalf("g=%d: MAD treap=%v stats=%v", g, gotMAD, wantMAD)
		}
	}
}

// TestTreapDescendOrder checks that descending-rank traversal yields
// (value descending, index ascending) — the topDeviations selection
// order — under exact value ties.
func TestTreapDescendOrder(t *testing.T) {
	tr := newOrderTreap(5)
	vals := []float64{3, 1, 3, 2, 3, 1, 2}
	for g, v := range vals {
		tr.Insert(v, int64(g))
	}
	var got [][2]int64
	tr.DescendRanks(func(v float64, g int64) bool {
		got = append(got, [2]int64{int64(v), g})
		return true
	})
	want := [][2]int64{{3, 0}, {3, 2}, {3, 4}, {2, 3}, {2, 6}, {1, 1}, {1, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("descend order:\n got %v\nwant %v", got, want)
	}
}

// streamSignal is the seeded test stream: sinusoid + noise with spikes,
// a level shift, a flat (MAD-collapsing) stretch, and near-duplicate
// ties — every regime the candidate and neighborhood stages branch on.
func streamSignal(rng *rand.Rand, i int) float64 {
	switch {
	case i > 150 && i < 190: // flat stretch
		return 2.5
	case i%83 == 0: // spikes
		return 30 + rng.NormFloat64()
	case i%47 == 0: // near-duplicates
		return rng.NormFloat64() * 1e-9
	default:
		base := math.Sin(float64(i) / 11)
		if i > 260 {
			base += 8 // level shift
		}
		return base + rng.NormFloat64()*0.4
	}
}

// TestIncrementalMatchesFull is the differential oracle: at every hop of
// a seeded stream, the incremental engine's DetectEnvCtx result must be
// bit-identical — detections, candidates, scores, query counts — to a
// full DetectCtx rerun over the same window.
func TestIncrementalMatchesFull(t *testing.T) {
	const window, hop, total = 64, 7, 400
	opts := core.Options{Seed: 42}
	full := core.NewDetector(opts)
	inc := core.NewDetector(opts)
	eng := New(FromOptions(inc.Options()))

	rng := rand.New(rand.NewSource(99))
	var buf []float64
	start := 0
	analyses := 0
	for i := 0; i < total; i++ {
		v := streamSignal(rng, i)
		eng.Observe(i, v)
		buf = append(buf, v)
		if len(buf) > window {
			drop := len(buf) - window
			buf = buf[drop:]
			start += drop
			eng.SlideTo(start)
		}
		if i%hop != hop-1 || len(buf) < 8 {
			continue
		}
		analyses++
		s := series.New("stream", buf)
		want, err := full.DetectCtx(context.Background(), s)
		if err != nil {
			t.Fatalf("start=%d: full detect: %v", start, err)
		}
		env := eng.BuildEnv(buf, start)
		got, err := inc.DetectEnvCtx(context.Background(), s, env)
		if err != nil {
			t.Fatalf("start=%d: incremental detect: %v", start, err)
		}
		compareResults(t, start, got, want)
	}
	if analyses < 40 {
		t.Fatalf("only %d analyses ran; stream setup is wrong", analyses)
	}
}

func compareResults(t *testing.T, start int, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Anomalies, want.Anomalies) {
		t.Fatalf("start=%d: anomalies\n inc %+v\nfull %+v", start, got.Anomalies, want.Anomalies)
	}
	if !reflect.DeepEqual(got.ChangePoints, want.ChangePoints) {
		t.Fatalf("start=%d: change points\n inc %+v\nfull %+v", start, got.ChangePoints, want.ChangePoints)
	}
	if got.Queries != want.Queries {
		t.Fatalf("start=%d: queries inc=%d full=%d", start, got.Queries, want.Queries)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("start=%d: candidate count inc=%d full=%d", start, len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		if !reflect.DeepEqual(got.Candidates[i], want.Candidates[i]) {
			t.Fatalf("start=%d: candidate %d\n inc %+v\nfull %+v", start, i, got.Candidates[i], want.Candidates[i])
		}
	}
}
