// rollstats.go maintains the rolling order statistics of the candidate
// estimation stage: a treap over the window's Δ″ (absolute second
// difference) multiset, keyed (value, global index), supporting insert
// and remove in O(log w) and rank/selection queries that reproduce the
// batch stats.Median / stats.MAD / stats.RobustZ computations bit for
// bit. The batch path sorts the window's Δ″ slice from scratch on every
// hop; the treap pays O(log w) per arriving and per expiring point
// instead, which is the "recompute only around touched points" half of
// the rolling MAD pipeline.
package incremental

import (
	"math"
	"math/rand"
)

// otNode is one treap node. The heap priority comes from the engine's
// seeded generator, so the tree shape — though never observable in
// results — is deterministic per stream.
type otNode struct {
	v    float64
	g    int64
	pri  int64
	l, r int32
	sz   int32
}

// orderTreap is an order-statistic treap over (value, global index)
// pairs, ordered by value ascending with global index DESCENDING as the
// tie-break. That orientation makes a descending-rank traversal yield
// (value descending, index ascending) — exactly the deterministic
// selection order of core's topDeviations flood fallback.
type orderTreap struct {
	rng   *rand.Rand
	nodes []otNode
	free  []int32
	root  int32
}

func newOrderTreap(seed int64) *orderTreap {
	return &orderTreap{rng: rand.New(rand.NewSource(seed)), root: -1}
}

// keyLess orders (v1, g1) before (v2, g2): value ascending, index
// descending on ties.
func keyLess(v1 float64, g1 int64, v2 float64, g2 int64) bool {
	//cabd:lint-ignore floateq order-statistic keys need exact value ties to fall through to the index
	if v1 != v2 {
		return v1 < v2
	}
	return g1 > g2
}

func (t *orderTreap) size(id int32) int32 {
	if id < 0 {
		return 0
	}
	return t.nodes[id].sz
}

func (t *orderTreap) pull(id int32) {
	t.nodes[id].sz = 1 + t.size(t.nodes[id].l) + t.size(t.nodes[id].r)
}

// Len returns the number of stored entries.
func (t *orderTreap) Len() int { return int(t.size(t.root)) }

func (t *orderTreap) alloc(v float64, g int64) int32 {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		t.nodes[id] = otNode{v: v, g: g, pri: t.rng.Int63(), l: -1, r: -1, sz: 1}
		return id
	}
	t.nodes = append(t.nodes, otNode{v: v, g: g, pri: t.rng.Int63(), l: -1, r: -1, sz: 1})
	return int32(len(t.nodes) - 1)
}

// splitLT splits by key: left holds entries ordering strictly before
// (v, g), right the rest.
func (t *orderTreap) splitLT(id int32, v float64, g int64) (int32, int32) {
	if id < 0 {
		return -1, -1
	}
	nd := &t.nodes[id]
	if keyLess(nd.v, nd.g, v, g) {
		l, r := t.splitLT(nd.r, v, g)
		nd.r = l
		t.pull(id)
		return id, r
	}
	l, r := t.splitLT(nd.l, v, g)
	nd.l = r
	t.pull(id)
	return l, id
}

func (t *orderTreap) merge(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if t.nodes[a].pri > t.nodes[b].pri {
		t.nodes[a].r = t.merge(t.nodes[a].r, b)
		t.pull(a)
		return a
	}
	t.nodes[b].l = t.merge(a, t.nodes[b].l)
	t.pull(b)
	return b
}

// Insert adds the entry (v, g). Global indices are unique, so keys are.
//
//cabd:hotpath
func (t *orderTreap) Insert(v float64, g int64) {
	id := t.alloc(v, g)
	l, r := t.splitLT(t.root, v, g)
	t.root = t.merge(t.merge(l, id), r)
}

// Remove deletes the entry with exact key (v, g); it must exist.
func (t *orderTreap) Remove(v float64, g int64) {
	l, rest := t.splitLT(t.root, v, g)
	// The target is now the leftmost entry of rest.
	var detach func(id int32) int32
	detach = func(id int32) int32 {
		nd := &t.nodes[id]
		if nd.l < 0 {
			if nd.g != g {
				panic("incremental: Remove of absent treap key")
			}
			r := nd.r
			t.free = append(t.free, id)
			return r
		}
		nd.l = detach(nd.l)
		t.pull(id)
		return id
	}
	if rest < 0 {
		panic("incremental: Remove from empty treap side")
	}
	rest = detach(rest)
	t.root = t.merge(l, rest)
}

// Kth returns the entry with ascending rank k (0-based).
//
//cabd:hotpath
func (t *orderTreap) Kth(k int) (v float64, g int64) {
	id := t.root
	for id >= 0 {
		ls := int(t.size(t.nodes[id].l))
		switch {
		case k < ls:
			id = t.nodes[id].l
		case k == ls:
			return t.nodes[id].v, t.nodes[id].g
		default:
			k -= ls + 1
			id = t.nodes[id].r
		}
	}
	panic("incremental: Kth rank out of range")
}

// KthVal returns just the value at ascending rank k.
//
//cabd:hotpath
func (t *orderTreap) KthVal(k int) float64 {
	v, _ := t.Kth(k)
	return v
}

// CountLEValue returns how many entries have value <= x (any index).
//
//cabd:hotpath
func (t *orderTreap) CountLEValue(x float64) int {
	count := 0
	id := t.root
	for id >= 0 {
		if t.nodes[id].v <= x {
			count += int(t.size(t.nodes[id].l)) + 1
			id = t.nodes[id].r
		} else {
			id = t.nodes[id].l
		}
	}
	return count
}

// Median reproduces stats.Median over the stored multiset: the middle
// value for odd sizes, the midpoint of the two central values for even
// sizes.
//
//cabd:hotpath
func (t *orderTreap) Median() float64 {
	n := t.Len()
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return t.KthVal(n / 2)
	}
	return (t.KthVal(n/2-1) + t.KthVal(n/2)) / 2
}

// MAD reproduces stats.MAD over the stored multiset: the median of the
// absolute deviations |v - med|. The deviations are not materialized —
// sorted by value, the entries below and above the median form two
// deviation-sorted runs, and the k-th smallest deviation comes from the
// classic two-sorted-sequences selection with O(log w) random access per
// probe: O(log² w) total instead of the batch path's O(w log w) sort.
//
//cabd:hotpath
func (t *orderTreap) MAD(med float64) float64 {
	n := t.Len()
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return t.kthDeviation(med, n/2)
	}
	return (t.kthDeviation(med, n/2-1) + t.kthDeviation(med, n/2)) / 2
}

// kthDeviation returns the 0-based k-th smallest |v - med| over the
// stored entries.
func (t *orderTreap) kthDeviation(med float64, k int) float64 {
	cntLE := t.CountLEValue(med)
	n := t.Len()
	// Deviation run A: entries at ranks cntLE-1 .. 0 (values <= med,
	// walking away from the median) — nondecreasing deviations. Run B:
	// ranks cntLE .. n-1 (values > med) — also nondecreasing.
	lenA, lenB := cntLE, n-cntLE
	a := func(i int) float64 { return math.Abs(t.KthVal(cntLE-1-i) - med) }
	b := func(i int) float64 { return math.Abs(t.KthVal(cntLE+i) - med) }
	// Partition search: take ta elements from A and k+1-ta from B as the
	// k+1 smallest; the k-th deviation is the max of the last taken from
	// each side. Sentinels make the boundary conditions uniform.
	aAt := func(i int) float64 {
		if i < 0 {
			return math.Inf(-1)
		}
		if i >= lenA {
			return math.Inf(1)
		}
		return a(i)
	}
	bAt := func(i int) float64 {
		if i < 0 {
			return math.Inf(-1)
		}
		if i >= lenB {
			return math.Inf(1)
		}
		return b(i)
	}
	lo := k + 1 - lenB
	if lo < 0 {
		lo = 0
	}
	hi := k + 1
	if hi > lenA {
		hi = lenA
	}
	for lo < hi {
		ta := (lo + hi) / 2
		if aAt(ta) < bAt(k-ta) {
			lo = ta + 1
		} else {
			hi = ta
		}
	}
	ta := lo
	av, bv := aAt(ta-1), bAt(k-ta)
	if av > bv {
		return av
	}
	return bv
}

// DescendRanks calls fn for entries at descending ranks n-1, n-2, ...
// until fn returns false — the (value descending, index ascending)
// iteration order of the flood fallback.
func (t *orderTreap) DescendRanks(fn func(v float64, g int64) bool) {
	n := t.Len()
	for k := n - 1; k >= 0; k-- {
		v, g := t.Kth(k)
		if !fn(v, g) {
			return
		}
	}
}
