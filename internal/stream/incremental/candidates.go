// candidates.go reproduces core's candidate estimation from the rolling
// Δ″ treap: median and MAD by order-statistic selection, threshold
// selection by binary search over the two deviation-sorted runs, and the
// flood fallback by descending-rank traversal. Every float expression
// mirrors the batch path (stats.RobustZ, core.topDeviations) exactly, so
// the selected set and the parallel z-scores are bit-identical to a full
// recomputation over the window — at O(log² w + k log w) cost instead of
// O(w log w).
package incremental

import (
	"math"
	"sort"
)

// candidates returns the candidate window indices and their robust
// z-scores for the live window [start, start+n).
func (e *Engine) candidates(start, n int) (idx []int, zscores []float64) {
	if n == 0 {
		return nil, nil
	}
	t := e.d2
	med := t.Median()
	mad := t.MAD(med)

	// rzOf mirrors the stats.RobustZ per-element expression. It is
	// monotone nondecreasing in |v - med| (division by a positive
	// constant, and the mad==0 step function), which is what licenses the
	// binary searches below.
	rzOf := func(v float64) float64 {
		d := math.Abs(v - med)
		switch {
		case mad > 0:
			return d / mad
		case d == 0:
			return 0
		default:
			return math.Inf(1)
		}
	}
	z := e.cfg.CandidateZ

	// Sorted by value, the entries below-or-at the median (walking away
	// from it) and above it form two runs of nondecreasing deviation; the
	// candidates are a suffix of each run.
	cntLE := t.CountLEValue(med)
	lenA, lenB := cntLE, n-cntLE
	firstA := sort.Search(lenA, func(i int) bool {
		return rzOf(t.KthVal(cntLE-1-i)) > z
	})
	firstB := sort.Search(lenB, func(i int) bool {
		return rzOf(t.KthVal(cntLE+i)) > z
	})
	count := (lenA - firstA) + (lenB - firstB)
	if count == 0 {
		return nil, nil
	}

	type sel struct {
		wi int
		v  float64
	}
	var picks []sel
	if count > n/4 {
		// Flood fallback (MAD collapse): the top n/4 Δ″ by (value
		// descending, index ascending) — the treap's descending-rank
		// order — exactly core.topDeviations' selection.
		k := n / 4
		if k < 1 {
			k = 1
		}
		picks = make([]sel, 0, k)
		t.DescendRanks(func(v float64, g int64) bool {
			picks = append(picks, sel{int(g) - start, v})
			return len(picks) < k
		})
	} else {
		picks = make([]sel, 0, count)
		for r := 0; r < cntLE-firstA; r++ {
			v, g := t.Kth(r)
			picks = append(picks, sel{int(g) - start, v})
		}
		for r := cntLE + firstB; r < n; r++ {
			v, g := t.Kth(r)
			picks = append(picks, sel{int(g) - start, v})
		}
	}
	sort.Slice(picks, func(a, b int) bool { return picks[a].wi < picks[b].wi })
	idx = make([]int, len(picks))
	zscores = make([]float64, len(picks))
	for i, p := range picks {
		idx[i] = p.wi
		zscores[i] = rzOf(p.v)
	}
	return idx, zscores
}
