// corpus.go maintains the rolling SAX word corpus: for every window
// length the correlation score has asked about, the words of all sliding
// windows of that length over the live values, with occurrence counts.
// A word depends only on the raw values of its own span (sax.Word
// standardizes per window), so words never need recomputation — the
// corpus evicts the words whose spans slid out and appends the words
// whose spans completed, touching O(hop) words per analysis where the
// batch path rebuilds all O(window · length) of them.
package incremental

import (
	"sort"

	"cabd/internal/sax"
)

// lenCorpus is the rolling corpus for one window length.
type lenCorpus struct {
	wlen    int
	startG  int      // global start index of words[head]
	head    int      // live words are words[head:]
	words   []string // word i covers values [startG+i-head, +wlen)
	counts  map[string]int
	lastUse int // engine analysis counter, for retention
}

// frequency returns the fraction of length-wlen value windows whose SAX
// word equals word — sax.Frequency over the batch SlidingWords corpus,
// answered from rolling counts. buf/start describe the live window; the
// engine's mutex serializes corpus mutation (scoreAll workers call this
// concurrently).
func (e *Engine) frequency(buf []float64, start, wlen int, word string) float64 {
	n := len(buf)
	total := n - wlen + 1
	if wlen <= 0 || total <= 0 {
		return 0
	}
	e.corpusMu.Lock()
	defer e.corpusMu.Unlock()
	lc := e.corpus[wlen]
	if lc == nil {
		lc = &lenCorpus{wlen: wlen, startG: start, counts: make(map[string]int)}
		e.corpus[wlen] = lc
	}
	lc.lastUse = e.analyses
	e.syncCorpus(lc, buf, start)
	return float64(lc.counts[word]) / float64(total)
}

// syncCorpus rolls lc forward to cover exactly the word spans inside
// [start, start+len(buf)).
func (e *Engine) syncCorpus(lc *lenCorpus, buf []float64, start int) {
	n := len(buf)
	lastStart := start + n - lc.wlen // last valid word start (inclusive)
	if lc.startG+len(lc.words)-lc.head <= start || lc.startG > lastStart+1 {
		// Fully stale (retained but unused across a long slide): reset.
		lc.head = 0
		lc.words = lc.words[:0]
		lc.startG = start
		clear(lc.counts)
	}
	// Evict words whose span lost its first value.
	for lc.startG < start && lc.head < len(lc.words) {
		w := lc.words[lc.head]
		lc.head++
		lc.startG++
		if c := lc.counts[w]; c <= 1 {
			delete(lc.counts, w)
		} else {
			lc.counts[w] = c - 1
		}
	}
	// Periodically compact the spent prefix so the slice stays O(window).
	if lc.head > 0 && lc.head >= len(lc.words)/2 {
		lc.words = append(lc.words[:0], lc.words[lc.head:]...)
		lc.head = 0
	}
	// Append words whose span completed.
	for g := lc.startG + (len(lc.words) - lc.head); g <= lastStart; g++ {
		w := sax.Word(buf[g-start:g-start+lc.wlen], e.segments, e.alphabet)
		lc.words = append(lc.words, w)
		lc.counts[w]++
	}
}

// sweepCorpus drops window lengths the scorer has not asked about for
// corpusRetention analyses (pattern sizes drift as the stream evolves;
// abandoned lengths must not accumulate).
func (e *Engine) sweepCorpus() {
	e.corpusMu.Lock()
	defer e.corpusMu.Unlock()
	var stale []int
	for wlen, lc := range e.corpus {
		if e.analyses-lc.lastUse > corpusRetention {
			stale = append(stale, wlen)
		}
	}
	sort.Ints(stale)
	for _, wlen := range stale {
		delete(e.corpus, wlen)
	}
}

const corpusRetention = 8
