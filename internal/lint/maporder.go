package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var analyzerMaporder = &Analyzer{
	Name: "maporder",
	Doc: "a `for range` over a map that appends to a slice visible outside " +
		"the loop must be followed by a sort of that slice (or a " +
		"sorting/deduplicating helper call on it) — Go randomizes map " +
		"iteration order, so an unsorted accumulation leaks nondeterminism " +
		"into Results",
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			fnBody := functionBody(n)
			if fnBody == nil {
				return true
			}
			ast.Inspect(fnBody, func(m ast.Node) bool {
				// Nested function literals are visited as their own
				// functionBody root; skip them here so each loop is
				// checked against the body it can actually sort in.
				if _, ok := m.(*ast.FuncLit); ok && m != n {
					return false
				}
				rng, ok := m.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				for _, target := range appendTargets(rng.Body) {
					if !sortedAfter(p, fnBody, rng, target) {
						p.Reportf(rng.For, "map iteration appends to %s in nondeterministic order; sort it after the loop (or collect sorted keys first)", target)
					}
				}
				return true
			})
			return true
		})
	},
}

// functionBody returns n's body when n declares a function, else nil.
func functionBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// appendTargets collects the printed form of every expression the loop
// body grows via `x = append(x, ...)`.
func appendTargets(body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		lhs := exprString(as.Lhs[0])
		if lhs == "" || lhs != exprString(call.Args[0]) {
			return true // not the grow-in-place pattern
		}
		if !seen[lhs] {
			seen[lhs] = true
			out = append(out, lhs)
		}
		return true
	})
	return out
}

// sortedAfter reports whether, somewhere after the range loop in the same
// function body, target is passed to a sort.* / slices.Sort* call or to a
// helper whose name mentions sorting or deduplication.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !sortingCallee(p, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if exprString(arg) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortingCallee reports whether fun names a sorting operation: anything
// in package sort or slices, or any function/method whose name contains
// "sort" or "dedup" (covering repo helpers like dedupInts and sortInts).
func sortingCallee(p *Pass, fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			if pn, ok := p.useOf(id).(*types.PkgName); ok {
				path := pn.Imported().Path()
				if path == "sort" || path == "slices" {
					return true
				}
			}
		}
		return nameMentionsSort(f.Sel.Name)
	case *ast.Ident:
		return nameMentionsSort(f.Name)
	}
	return false
}

func nameMentionsSort(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "sort") || strings.Contains(lower, "dedup")
}

// exprString renders simple expressions (identifiers and selector chains)
// for target matching; anything more complex yields "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}
