// Package lint is cabd's in-tree static-analysis engine: a stdlib-only
// loader (go/parser + go/types with a source importer — no
// golang.org/x/tools) plus a registry of repo-specific analyzers that
// enforce the pipeline invariants the compiler cannot check: clock
// injection (wallclock), fixed-seed determinism (maporder, seededrand,
// floateq), panic isolation (recoverwrap) and context discipline
// (ctxdiscipline).
//
// Suppression: a `//cabd:lint-ignore <rule> <reason>` comment silences
// that rule's diagnostics on its own line and the next one. The reason is
// mandatory — an ignore without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Name       string // package clause name ("main" for binaries)
	Files      []*ast.File
	Fset       *token.FileSet
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader parses and type-checks the packages of one module. Imports of
// module-internal paths are resolved against the module root; everything
// else (the standard library) is type-checked from GOROOT source via the
// stdlib "source" importer. Not safe for concurrent use.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	buildCtx   build.Context
	std        types.ImporterFrom
	pkgs       map[string]*Package // import path -> loaded package
	loading    map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod (the module path is read from it).
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %v", moduleRoot, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleRoot)
	}
	return NewLoaderAt(moduleRoot, modPath), nil
}

// NewLoaderAt returns a loader treating root as the source tree of the
// module named modulePath, without requiring a go.mod (the fixture
// harness loads testdata trees this way).
func NewLoaderAt(root, modulePath string) *Loader {
	if abs, err := filepath.Abs(root); err == nil {
		root = abs // keep FileSet positions absolute and Rel-able
	}
	fset := token.NewFileSet()
	ctx := build.Default
	// Pure-Go view of every package: the repo is cgo-free and the source
	// importer must not trip over cgo-only files in transitive stdlib.
	ctx.CgoEnabled = false
	return &Loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: modulePath,
		buildCtx:   ctx,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path the loader resolves against.
func (l *Loader) ModulePath() string { return l.modulePath }

// inModule reports whether path names a package of the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// dirOf maps a module-internal import path to its directory.
func (l *Loader) dirOf(path string) string {
	if path == l.modulePath {
		return l.moduleRoot
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// recursively through this loader, everything else goes to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !l.inModule(path) {
		return l.std.ImportFrom(path, dir, mode)
	}
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	if len(p.TypeErrors) > 0 {
		return p.Types, fmt.Errorf("package %s has type errors: %v", path, p.TypeErrors[0])
	}
	return p.Types, nil
}

// Load parses and type-checks the module package named by importPath
// (cached). Test files (_test.go) are excluded: every lint rule exempts
// them, and loading only library code keeps the analysis cycle-free and
// fast.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if !l.inModule(importPath) {
		return nil, fmt.Errorf("lint: %s is not inside module %s", importPath, l.modulePath)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	p, err := l.loadDir(l.dirOf(importPath), importPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// loadDir does the actual parse + type-check of one directory.
func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	bp, err := l.buildCtx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", importPath, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", importPath, err)
		}
		files = append(files, f)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Name:       bp.Name,
		Files:      files,
		Fset:       l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	p.Types, _ = conf.Check(importPath, l.fset, files, p.Info)
	return p, nil
}

// Expand resolves package patterns relative to the module root into a
// sorted list of import paths. Supported forms: "./..." (whole module),
// "./dir/..." (subtree), "./dir" or "dir" (single package), and a full
// import path inside the module. Directories named testdata or vendor,
// and those starting with "." or "_", are skipped by the recursive forms.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case l.inModule(pat):
			add(pat)
		case strings.HasSuffix(pat, "..."):
			sub := strings.TrimSuffix(pat, "...")
			sub = strings.TrimSuffix(sub, "/")
			sub = strings.TrimPrefix(sub, "./")
			root := filepath.Join(l.moduleRoot, filepath.FromSlash(sub))
			paths, err := l.walk(root)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			rel := strings.TrimPrefix(pat, "./")
			if rel == "" || rel == "." {
				add(l.modulePath)
				continue
			}
			add(l.modulePath + "/" + filepath.ToSlash(rel))
		}
	}
	sort.Strings(out)
	return out, nil
}

// walk collects the import paths of every buildable package under root.
func (l *Loader) walk(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.buildCtx.ImportDir(path, 0); err != nil {
			return nil // no buildable Go files here; keep walking
		}
		rel, err := filepath.Rel(l.moduleRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.modulePath)
		} else {
			out = append(out, l.modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}
