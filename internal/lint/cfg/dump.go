package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders the graph in the golden-test text form, one block per
// line:
//
//	b2 for.head: {i < n} -> b3 b1
//
// Node text is the printed source with whitespace collapsed, so the
// dumps double as human-readable documentation of the lowering.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Kind)
		if len(b.Nodes) > 0 {
			sb.WriteString(" {")
			for i, n := range b.Nodes {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(nodeText(fset, n))
			}
			sb.WriteString("}")
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeText prints one AST node as a single collapsed line.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf strings.Builder
	cfgPrint := printer.Config{Mode: printer.RawFormat}
	if err := cfgPrint.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
