package cfg

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden CFG dumps")

// dumpFile parses one fixture file and renders the CFG dump of every
// top-level function, in source order.
func dumpFile(t *testing.T, path string) string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	var sb strings.Builder
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		g := Build(fn.Body)
		sb.WriteString("func " + fn.Name.Name + "\n")
		sb.WriteString(g.Dump(fset))
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestGoldenDumps locks the lowering of every fixture to a checked-in
// block-graph dump. Regenerate with `go test ./internal/lint/cfg -update`
// after an intentional builder change — and read the diff.
func TestGoldenDumps(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	sort.Strings(matches)
	for _, path := range matches {
		name := strings.TrimSuffix(filepath.Base(path), ".go")
		t.Run(name, func(t *testing.T) {
			got := dumpFile(t, path)
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("CFG dump mismatch for %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// build compiles a snippet's single function into a graph.
func build(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse snippet: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return Build(fn.Body), fset
}

// TestStructuralInvariants: every graph has entry first, exit second,
// and only terminator-created blocks may lack predecessors.
func TestStructuralInvariants(t *testing.T) {
	snippets := []string{
		"x := 1\n_ = x",
		"for i := 0; i < 3; i++ {\n if i == 1 { continue }\n if i == 2 { break }\n}",
		"switch {\ncase true:\n return\n}",
		"ch := make(chan int)\nselect {\ncase <-ch:\ndefault:\n}",
		"panic(1)",
		"return\nx := 1\n_ = x", // unreachable tail
	}
	for _, src := range snippets {
		g, _ := build(t, src)
		if g.Blocks[0] != g.Entry || g.Blocks[1] != g.Exit {
			t.Fatalf("entry/exit not at indices 0/1 for %q", src)
		}
		for i, b := range g.Blocks {
			if b.Index != i {
				t.Fatalf("block index mismatch at %d for %q", i, src)
			}
			for _, s := range b.Succs {
				if s.Index < 0 || s.Index >= len(g.Blocks) {
					t.Fatalf("edge to out-of-range block for %q", src)
				}
			}
		}
		preds := g.Preds()
		if len(preds[g.Exit.Index]) == 0 {
			t.Errorf("exit unreachable for %q", src)
		}
	}
}

// TestDeferCollection: defers land both in their block and in Defers.
func TestDeferCollection(t *testing.T) {
	g, _ := build(t, "defer f()\nfor i := 0; i < 2; i++ {\n defer f()\n}")
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
	inBlocks := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				inBlocks++
			}
		}
	}
	if inBlocks != 2 {
		t.Fatalf("defer nodes in blocks = %d, want 2", inBlocks)
	}
}

// TestPanicEdgesToExit: a panic call terminates its block into exit.
func TestPanicEdgesToExit(t *testing.T) {
	g, _ := build(t, "if true {\n panic(\"x\")\n}\n_ = 1")
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
					if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
						t.Fatalf("panic block succs = %v, want exit only", b.Succs)
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no panic block found")
	}
}

// TestGotoResolution: backward goto creates a loop edge.
func TestGotoResolution(t *testing.T) {
	g, _ := build(t, "i := 0\nretry:\n i++\n if i < 3 { goto retry }")
	var labelBlock *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.retry" {
			labelBlock = b
		}
	}
	if labelBlock == nil {
		t.Fatal("no label block")
	}
	preds := g.Preds()
	if len(preds[labelBlock.Index]) < 2 {
		t.Fatalf("label block preds = %d, want >= 2 (fallthrough + goto)", len(preds[labelBlock.Index]))
	}
}
