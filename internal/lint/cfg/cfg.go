// Package cfg builds intraprocedural control-flow graphs over Go
// function bodies for the path-sensitive lint rules (lockbalance,
// ctxcancel). The graph is a list of basic blocks connected by successor
// edges; every structured-control construct — if/else, the three for
// forms, range, (type) switch with fallthrough, select, labeled
// break/continue, goto — lowers to plain edges, so a forward dataflow
// pass (internal/lint/dataflow) never needs to know Go syntax.
//
// Termination: `return` and a call to the builtin `panic` edge to the
// single Exit block. `defer` statements stay in their block as ordinary
// nodes (their position matters for facts like "the lock is held from
// here on") and are additionally collected in Graph.Defers, because
// deferred calls run at every function exit regardless of path.
//
// Statements after a terminator land in fresh blocks with no
// predecessors; dataflow passes see them with the bottom fact and stay
// silent about them, which matches the compiler's own unreachable-code
// tolerance.
//
// Block indices and successor edges are assigned in source order, so the
// graph — and everything derived from it, dumps and fixed-point sweeps
// alike — is deterministic for a given file.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of nodes with a single entry
// and single exit. Nodes holds statements and, for blocks that end in a
// branch, the controlling expression (an if/for condition, a switch tag)
// as its last entry — dataflow transfer functions walk Nodes in order.
type Block struct {
	Index int
	Kind  string // construction-site label ("entry", "for.head", ...)
	Nodes []ast.Node
	Succs []*Block
}

// addSucc appends an edge b -> s once.
func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // index order; Blocks[0] = Entry, Blocks[1] = Exit
	Defers []*ast.DeferStmt
}

// Preds returns the predecessor lists, index-aligned with Blocks.
func (g *Graph) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}

// branchTarget is one enclosing construct a break or continue can reach.
type branchTarget struct {
	label string // "" for unlabeled constructs
	block *Block
}

// pendingGoto is a goto awaiting its label block (labels may be defined
// after the jump).
type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block
	breaks []branchTarget
	conts  []branchTarget
	labels map[string]*Block
	gotos  []pendingGoto
	// nextLabel carries the label of a LabeledStmt into the loop/switch
	// /select it names, so `break L` / `continue L` resolve.
	nextLabel string
}

// Build constructs the CFG of one function body.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	first := b.newBlock("body")
	g.Entry.addSucc(first)
	b.cur = first
	b.stmtList(body.List)
	// Fall off the end of the body: implicit return.
	if b.cur != nil {
		b.cur.addSucc(g.Exit)
	}
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			pg.from.addSucc(target)
		}
	}
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock finishes cur with an edge to next and makes next current.
func (b *builder) startBlock(next *Block) {
	if b.cur != nil {
		b.cur.addSucc(next)
	}
	b.cur = next
}

// add appends a node to the current block (creating an unreachable block
// when flow was terminated — code after return/panic/goto).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a labeled construct.
func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

// pushLoop registers a loop's break/continue targets (label included).
func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{"", brk})
	b.conts = append(b.conts, branchTarget{"", cont})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label, brk})
		b.conts = append(b.conts, branchTarget{label, cont})
	}
}

func (b *builder) popLoop(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
	b.conts = b.conts[:len(b.conts)-n]
}

// pushBreakable registers a switch/select break target.
func (b *builder) pushBreakable(label string, brk *Block) {
	b.breaks = append(b.breaks, branchTarget{"", brk})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label, brk})
	}
}

func (b *builder) popBreakable(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
}

func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isPanicCall reports whether s is a call to the builtin panic.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.ReturnStmt:
		b.add(st)
		b.cur.addSucc(b.g.Exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.add(st)
		b.g.Defers = append(b.g.Defers, st)

	case *ast.BranchStmt:
		b.branch(st)

	case *ast.LabeledStmt:
		// The label starts a fresh block so goto can target it.
		target := b.newBlock("label." + st.Label.Name)
		b.labels[st.Label.Name] = target
		b.startBlock(target)
		b.nextLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.nextLabel = ""

	case *ast.IfStmt:
		b.ifStmt(st)

	case *ast.ForStmt:
		b.forStmt(st)

	case *ast.RangeStmt:
		b.rangeStmt(st)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.add(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchBody(label, st.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Assign)
		b.switchBody(label, st.Body, nil)

	case *ast.SelectStmt:
		b.selectStmt(st)

	default:
		if isPanicCall(s) {
			b.add(s)
			b.cur.addSucc(b.g.Exit)
			b.cur = nil
			return
		}
		// Straight-line statements: assignments, declarations, calls,
		// channel sends, inc/dec, go, empty.
		b.add(s)
	}
}

func (b *builder) branch(st *ast.BranchStmt) {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		b.add(st)
		if t := findTarget(b.breaks, label); t != nil && b.cur != nil {
			b.cur.addSucc(t)
		}
		b.cur = nil
	case token.CONTINUE:
		b.add(st)
		if t := findTarget(b.conts, label); t != nil && b.cur != nil {
			b.cur.addSucc(t)
		}
		b.cur = nil
	case token.GOTO:
		b.add(st)
		if b.cur != nil {
			b.gotos = append(b.gotos, pendingGoto{b.cur, label})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled structurally by switchBody; as a plain statement it
		// just ends the block (switchBody wires the edge).
		b.add(st)
	}
}

func (b *builder) ifStmt(st *ast.IfStmt) {
	b.takeLabel() // labels on if only matter for goto, already wired
	if st.Init != nil {
		b.add(st.Init)
	}
	b.add(st.Cond)
	head := b.cur
	done := b.newBlock("if.done")

	then := b.newBlock("if.then")
	head.addSucc(then)
	b.cur = then
	b.stmtList(st.Body.List)
	if b.cur != nil {
		b.cur.addSucc(done)
	}

	if st.Else != nil {
		els := b.newBlock("if.else")
		head.addSucc(els)
		b.cur = els
		b.stmt(st.Else)
		if b.cur != nil {
			b.cur.addSucc(done)
		}
	} else {
		head.addSucc(done)
	}
	b.cur = done
}

func (b *builder) forStmt(st *ast.ForStmt) {
	label := b.takeLabel()
	if st.Init != nil {
		b.add(st.Init)
	}
	head := b.newBlock("for.head")
	b.startBlock(head)
	if st.Cond != nil {
		b.add(st.Cond)
	}
	done := b.newBlock("for.done")
	body := b.newBlock("for.body")
	head.addSucc(body)
	if st.Cond != nil {
		head.addSucc(done)
	}
	// continue goes to the post statement when there is one.
	cont := head
	var post *Block
	if st.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, st.Post)
		post.addSucc(head)
		cont = post
	}
	b.pushLoop(label, done, cont)
	b.cur = body
	b.stmtList(st.Body.List)
	if b.cur != nil {
		b.cur.addSucc(cont)
	}
	b.popLoop(label)
	b.cur = done
}

func (b *builder) rangeStmt(st *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.startBlock(head)
	b.add(st.X)
	done := b.newBlock("range.done")
	body := b.newBlock("range.body")
	head.addSucc(body)
	head.addSucc(done)
	b.pushLoop(label, done, head)
	b.cur = body
	b.stmtList(st.Body.List)
	if b.cur != nil {
		b.cur.addSucc(head)
	}
	b.popLoop(label)
	b.cur = done
}

// switchBody lowers the case clauses of a switch or type switch. The
// head (current) block edges to every case block; an implicit "no case
// matched" edge to done exists unless a default clause is present.
// fallthrough edges connect a case body's end to the next case body.
func (b *builder) switchBody(label string, body *ast.BlockStmt, _ []ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("switch.done")
	b.pushBreakable(label, done)

	var caseBlocks []*Block
	hasDefault := false
	for _, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		kind := "case"
		if clause.List == nil {
			kind = "case.default"
			hasDefault = true
		}
		cb := b.newBlock(kind)
		head.addSucc(cb)
		caseBlocks = append(caseBlocks, cb)
	}
	if !hasDefault {
		head.addSucc(done)
	}
	for i, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		for _, e := range clause.List {
			b.add(e)
		}
		fellThrough := false
		for _, cs := range clause.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(caseBlocks) && b.cur != nil {
					b.cur.addSucc(caseBlocks[i+1])
				}
				b.cur = nil
				fellThrough = true
				break
			}
			b.stmt(cs)
		}
		if !fellThrough && b.cur != nil {
			b.cur.addSucc(done)
		}
	}
	b.popBreakable(label)
	b.cur = done
}

func (b *builder) selectStmt(st *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("select.done")
	b.pushBreakable(label, done)
	for _, cc := range st.Body.List {
		clause := cc.(*ast.CommClause)
		kind := "select.case"
		if clause.Comm == nil {
			kind = "select.default"
		}
		cb := b.newBlock(kind)
		head.addSucc(cb)
		b.cur = cb
		if clause.Comm != nil {
			b.stmt(clause.Comm)
		}
		b.stmtList(clause.Body)
		if b.cur != nil {
			b.cur.addSucc(done)
		}
	}
	// A select with no cases blocks forever; the done block simply has
	// no predecessor then.
	b.popBreakable(label)
	b.cur = done
}
