// labeled.go: labeled break and continue escaping nested loops.
package fixtures

func labeledBreak(xs [][]int) int {
	total := 0
outer:
	for i := 0; i < len(xs); i++ {
		for _, v := range xs[i] {
			if v < 0 {
				break outer
			}
			total += v
		}
	}
	return total
}

func labeledContinue(xs [][]int) int {
	total := 0
rows:
	for i := 0; i < len(xs); i++ {
		for _, v := range xs[i] {
			if v == 0 {
				continue rows
			}
			total += v
		}
		total++
	}
	return total
}

func labeledSwitchBreak(mode int) int {
	r := 0
pick:
	switch mode {
	case 0:
		r = 1
	case 1:
		if r == 0 {
			break pick
		}
		r = 2
	default:
		r = 3
	}
	return r
}
