// defers.go: defer in straight-line code, defer inside a loop, and
// panic/recover exits.
package fixtures

func deferSimple(mu interface{ Lock() }, unlock func()) {
	mu.Lock()
	defer unlock()
	work()
}

func deferInLoop(files []string, open func(string) func()) {
	for _, f := range files {
		closeFn := open(f)
		defer closeFn()
	}
}

func panicExit(v int) int {
	if v < 0 {
		panic("negative")
	}
	return v
}

func recoverExit(run func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = wrap(r)
		}
	}()
	run()
	return nil
}

func work()            {}
func wrap(r any) error { return nil }
