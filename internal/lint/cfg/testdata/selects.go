// selects.go: select with and without a default clause, and a
// switch with fallthrough.
package fixtures

func selectDefault(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func selectBlocking(ch chan int, stop chan struct{}) int {
	for {
		select {
		case v := <-ch:
			if v > 0 {
				return v
			}
		case <-stop:
			return -1
		}
	}
}

func switchFallthrough(n int) int {
	r := 0
	switch n {
	case 0:
		r++
		fallthrough
	case 1:
		r += 2
	case 2:
		r += 4
	}
	return r
}
