// gotos.go: forward and backward goto, including a retry loop.
package fixtures

func forwardGoto(ok bool) int {
	x := 1
	if !ok {
		goto fail
	}
	x = 2
	return x
fail:
	return -1
}

func backwardGoto(n int) int {
	tries := 0
retry:
	tries++
	if tries < n {
		goto retry
	}
	return tries
}
