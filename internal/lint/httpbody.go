package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isNetHTTPType reports whether t is the named type net/http.<name>,
// unwrapping one pointer level (for *http.Request).
func isNetHTTPType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// handlerParams returns the (w, r) parameter idents when ft is
// handler-shaped — exactly (http.ResponseWriter, *http.Request) — and
// ok reports the shape match.
func handlerParams(p *Pass, ft *ast.FuncType) (req *ast.Ident, ok bool) {
	if ft.Params == nil {
		return nil, false
	}
	var kinds []string
	var names []*ast.Ident
	for _, f := range ft.Params.List {
		t := p.Info.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies one slot
		}
		for i := 0; i < n; i++ {
			switch {
			case isNetHTTPType(t, "ResponseWriter"):
				kinds = append(kinds, "w")
				names = append(names, nil)
			case isNetHTTPType(t, "Request"):
				kinds = append(kinds, "r")
				if len(f.Names) > i {
					names = append(names, f.Names[i])
				} else {
					names = append(names, nil)
				}
			default:
				return nil, false
			}
		}
	}
	if len(kinds) != 2 || kinds[0] != "w" || kinds[1] != "r" {
		return nil, false
	}
	return names[1], true
}

var analyzerHttpbody = &Analyzer{
	Name: "httpbody",
	Doc: "an HTTP handler that reads its request body must cap it with " +
		"http.MaxBytesReader first — an uncapped decode lets a single " +
		"request buffer unbounded input into memory",
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			reqIdent, ok := handlerParams(p, ft)
			if !ok || reqIdent == nil || reqIdent.Name == "_" {
				return true
			}
			reqObj := p.Info.Defs[reqIdent]
			if reqObj == nil {
				return true
			}
			bodyUse, capped := scanHandlerBody(p, body, reqObj)
			if bodyUse.IsValid() && !capped {
				p.Reportf(bodyUse, "handler reads the request body without http.MaxBytesReader; cap it so one request cannot buffer unbounded input")
			}
			return true
		})
	},
}

// scanHandlerBody walks one handler body reporting the first use of the
// request parameter's Body field and whether the handler calls
// http.MaxBytesReader anywhere (nested closures included).
func scanHandlerBody(p *Pass, body *ast.BlockStmt, reqObj types.Object) (bodyUse token.Pos, capped bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := p.useOf(sel.Sel).(*types.Func); ok &&
			fn.Name() == "MaxBytesReader" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
			capped = true
		}
		if sel.Sel.Name == "Body" && !bodyUse.IsValid() {
			if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == reqObj {
				bodyUse = sel.Pos()
			}
		}
		return true
	})
	return bodyUse, capped
}
