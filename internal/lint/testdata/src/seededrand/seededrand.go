// Package seededrand is a lint fixture: draws from the math/rand global
// source versus explicitly seeded generators.
package seededrand

import "math/rand"

func bad() int {
	return rand.Intn(10) // want seededrand "rand.Intn uses the package-global source"
}

func badFloat() float64 {
	return rand.Float64() // want seededrand "rand.Float64 uses the package-global source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want seededrand "rand.Shuffle uses the package-global source"
}

func goodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func goodMethod(r *rand.Rand) float64 {
	return r.Float64()
}

func okIgnored() float64 {
	//cabd:lint-ignore seededrand fixture exercises the escape hatch
	return rand.NormFloat64()
}
