// Package ctxcancel is a lint fixture: cancel funcs from the context
// constructors must run on every path.
package ctxcancel

import (
	"context"
	"time"
)

// okDefer: the canonical shape.
func okDefer(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	return work(ctx)
}

// okDeferredLiteral: deferred closure calling cancel.
func okDeferredLiteral(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer func() {
		cancel()
	}()
	return work(ctx)
}

// okAllPaths: explicitly cancelled before each return.
func okAllPaths(parent context.Context, fast bool) error {
	ctx, cancel := context.WithCancel(parent)
	if fast {
		err := work(ctx)
		cancel()
		return err
	}
	err := work(ctx)
	cancel()
	return err
}

// okHandedOff: passing the cancel on transfers ownership.
func okHandedOff(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	park(cancel)
	return work(ctx)
}

// okCapturedByGoroutine: a goroutine literal owns the call now.
func okCapturedByGoroutine(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	done := make(chan struct{}, 1)
	go func() {
		<-done
		cancel()
	}()
	return work(ctx)
}

type job struct {
	ctx    context.Context
	cancel context.CancelFunc
}

// okStoredInStruct: the literal that keeps the cancel owns the call now
// (the server's session table stores its cancel this way).
func okStoredInStruct(parent context.Context) *job {
	ctx, cancel := context.WithCancel(parent)
	return &job{ctx: ctx, cancel: cancel}
}

// badDiscarded: the cancel func is dropped at birth.
func badDiscarded(parent context.Context) error {
	ctx, _ := context.WithTimeout(parent, time.Second) // want ctxcancel "cancel func from context.WithTimeout is discarded"
	return work(ctx)
}

// badEarlyReturn: the error path skips the cancel.
func badEarlyReturn(parent context.Context, pre func() error) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want ctxcancel "cancel func from context.WithTimeout is not called on every path"
	if err := pre(); err != nil {
		return err
	}
	err := work(ctx)
	cancel()
	return err
}

// badNeverCalled: no path calls cancel at all.
func badNeverCalled(parent context.Context) error {
	ctx, cancel := context.WithDeadline(parent, time.Unix(0, 0)) // want ctxcancel "cancel func from context.WithDeadline is not called on every path"
	_ = cancel
	return work(ctx)
}

func work(ctx context.Context) error { return ctx.Err() }
func park(fn context.CancelFunc)     { fn() }
