// Package httpbody exercises the MaxBytesReader guard rule: every
// handler-shaped function that reads its request body must cap it.
package httpbody

import (
	"encoding/json"
	"io"
	"net/http"
)

// capped decodes behind a MaxBytesReader: clean.
func capped(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var v map[string]any
	_ = json.NewDecoder(body).Decode(&v)
}

// uncapped decodes the raw request body.
func uncapped(w http.ResponseWriter, r *http.Request) {
	var v map[string]any
	_ = json.NewDecoder(r.Body).Decode(&v) // want httpbody "without http.MaxBytesReader"
}

// rawRead drains the body with no cap at all.
func rawRead(w http.ResponseWriter, r *http.Request) {
	b, _ := io.ReadAll(r.Body) // want httpbody "without http.MaxBytesReader"
	_ = b
}

// viaClosure reads the body inside a nested closure; still the
// handler's responsibility.
func viaClosure(w http.ResponseWriter, r *http.Request) {
	f := func() { _, _ = io.ReadAll(r.Body) } // want httpbody "without http.MaxBytesReader"
	f()
}

// cappedElsewhere caps in one statement and decodes the capped reader
// later: clean (the rule requires the call, not a specific dataflow).
func cappedElsewhere(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 4096)
	var v map[string]any
	_ = json.NewDecoder(r.Body).Decode(&v)
}

// literal handlers are checked like declared ones.
var _ = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	_, _ = io.ReadAll(r.Body) // want httpbody "without http.MaxBytesReader"
})

// notHandler has the wrong shape; reading the body here is some other
// layer's concern (a helper the handler hands a capped reader to).
func notHandler(r *http.Request) []byte {
	b, _ := io.ReadAll(r.Body)
	return b
}

// threeParams is not handler-shaped either.
func threeParams(w http.ResponseWriter, r *http.Request, limit int64) {
	_, _ = io.ReadAll(r.Body)
}

// noBody never touches the request body: clean.
func noBody(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

// use keeps the declared handlers referenced.
var use = []http.HandlerFunc{capped, uncapped, rawRead, viaClosure, cappedElsewhere, noBody}
