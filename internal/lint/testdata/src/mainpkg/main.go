// Command mainpkg is a lint fixture: binaries own their process, so the
// wallclock and seededrand rules exempt package main.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	fmt.Println(time.Now(), rand.Float64())
}
