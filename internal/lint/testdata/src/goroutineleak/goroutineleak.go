// Package goroutineleak is a lint fixture: goroutines blocked on
// locally-created unbuffered channels with no escape route.
package goroutineleak

import "context"

// badBareSend: nobody may ever receive; the goroutine leaks.
func badBareSend(compute func() int) {
	results := make(chan int)
	go func() {
		results <- compute() // want goroutineleak "goroutine sends on unbuffered channel results"
	}()
}

// badBareRecv: the receive parks forever if the peer is gone.
func badBareRecv(stop func()) {
	ready := make(chan struct{})
	go func() {
		<-ready // want goroutineleak "goroutine receives on unbuffered channel ready"
		stop()
	}()
}

// badRangeUnbuffered: ranging an unbuffered channel with no escape.
func badRangeUnbuffered(handle func(int)) {
	jobs := make(chan int, 0)
	go func() {
		for j := range jobs { // want goroutineleak "goroutine ranges on unbuffered channel jobs"
			handle(j)
		}
	}()
}

// okSelectCtx: the ctx.Done case releases the goroutine.
func okSelectCtx(ctx context.Context, compute func() int) {
	results := make(chan int)
	go func() {
		select {
		case results <- compute():
		case <-ctx.Done():
		}
	}()
}

// okSelectDefault: the default clause makes the send non-blocking.
func okSelectDefault(compute func() int) {
	results := make(chan int)
	go func() {
		select {
		case results <- compute():
		default:
		}
	}()
}

// okBuffered: capacity decouples the send from the receiver.
func okBuffered(compute func() int) {
	results := make(chan int, 1)
	go func() {
		results <- compute()
	}()
}

// okWorkerPool: the worker-pool shape — jobs channel with capacity,
// workers range it, the pool closes it.
func okWorkerPool(n int, handle func(int)) {
	jobs := make(chan int, n)
	for w := 0; w < 4; w++ {
		go func() {
			for j := range jobs {
				handle(j)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
}

// okStartGate: workers park on an unbuffered gate that the creator
// unconditionally closes — the close releases every receiver at once.
func okStartGate(n int, work func()) {
	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			<-gate
			work()
		}()
	}
	close(gate)
}

// mailboxCall mirrors the server's shard-mailbox shape: a bounded
// (buffered) mailbox plus a stop channel, drained in a two-case select.
type mailboxCall struct {
	fn   func()
	done chan struct{}
}

// okShardMailbox: the registry's per-shard goroutine must pass — its
// mailbox is buffered and the stop case releases the loop. The inner
// receive on c.done happens on a channel the rule does not track
// (created per call, closed by the shard), and the submit side uses a
// shedding select-with-default.
func okShardMailbox(depth int) (submit func(func()) bool, stop func()) {
	mailbox := make(chan mailboxCall, depth)
	stopCh := make(chan struct{})
	go func() {
		for {
			select {
			case c := <-mailbox:
				c.fn()
				close(c.done)
			case <-stopCh:
				return
			}
		}
	}()
	submit = func(fn func()) bool {
		c := mailboxCall{fn: fn, done: make(chan struct{})}
		select {
		case mailbox <- c:
		default:
			return false // full mailbox sheds instead of blocking
		}
		<-c.done
		return true
	}
	stop = func() { close(stopCh) }
	return submit, stop
}

// badLeakyMailbox: the leaky variant — an unbuffered mailbox whose
// drain loop has no stop case can never be released once submitters
// stop arriving, and the bare send blocks producers forever.
func badLeakyMailbox() func(func()) {
	mailbox := make(chan func())
	go func() {
		for {
			job := <-mailbox // want goroutineleak "goroutine receives on unbuffered channel mailbox"
			job()
		}
	}()
	return func(fn func()) {
		mailbox <- fn // outside a goroutine: the caller blocks, not a leaked goroutine
	}
}
