// Package hotalloc is a lint fixture: //cabd:hotpath functions must not
// allocate.
package hotalloc

import "sync"

type scratch struct {
	buf []float64
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// okPooledFill draws scratch from the pool, grows it only under a cap
// guard, writes by index, and compacts with the append(x[:0], ...)
// reuse idiom — every exemption the rule grants, in one function.
//
//cabd:hotpath
func okPooledFill(dst *scratch, src []float64, n int) {
	if cap(dst.buf) < n {
		dst.buf = make([]float64, n) // growth-guarded: cold by contract
	}
	dst.buf = dst.buf[:n]
	for i := 0; i < n && i < len(src); i++ {
		dst.buf[i] = 2 * src[i]
	}
	dst.buf = append(dst.buf[:0], dst.buf...)
}

// okPoolDraw: sync.Pool Get/Put are the sanctioned scratch source —
// Put's interface parameter is exempt from the boxing check.
//
//cabd:hotpath
func okPoolDraw(src []float64) float64 {
	s := pool.Get().(*scratch)
	total := 0.0
	for _, v := range src {
		total += v
	}
	pool.Put(s)
	return total
}

// unannotated functions may allocate freely.
func okUnannotated(n int) []float64 {
	out := make([]float64, n)
	return append(out, 1)
}

//cabd:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want hotalloc "make in hot path badMake allocates"
}

//cabd:hotpath
func badAppend(xs []float64, v float64) []float64 {
	return append(xs, v) // want hotalloc "append in hot path badAppend may grow"
}

//cabd:hotpath
func badClosure(xs []float64) func() float64 {
	return func() float64 { // want hotalloc "closure literal in hot path badClosure allocates"
		return xs[0]
	}
}

//cabd:hotpath
func badNew() *scratch {
	return new(scratch) // want hotalloc "new in hot path badNew allocates"
}

//cabd:hotpath
func badSliceLit() []float64 {
	return []float64{1, 2, 3} // want hotalloc "composite literal in hot path badSliceLit allocates"
}

//cabd:hotpath
func badGo(fn func()) {
	go fn() // want hotalloc "goroutine spawn in hot path badGo"
}

func sink(v any) {}

//cabd:hotpath
func badBoxing(x float64) {
	sink(x) // want hotalloc "boxes a float64 into an interface parameter in hot path badBoxing"
}

//cabd:hotpath
func badStringConv(bs []byte) string {
	return string(bs) // want hotalloc "conversion in hot path badStringConv copies"
}

//cabd:hotpath
func okIgnored(n int) []float64 {
	//cabd:lint-ignore hotalloc fixture proves the escape hatch applies here
	return make([]float64, n)
}
