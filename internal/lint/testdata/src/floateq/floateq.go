// Package floateq is a lint fixture: exact floating-point comparisons.
package floateq

import "math"

func bad(a, b float64) bool {
	return a == b // want floateq "== on float operands is rounding-sensitive"
}

func badNeq(a, b float32) bool {
	return a != b // want floateq "!= on float operands is rounding-sensitive"
}

func badConst(a float64) bool {
	return a == 1.5 // want floateq "== on float operands is rounding-sensitive"
}

func badExpr(a, b, c float64) bool {
	return a+b == c // want floateq "== on float operands is rounding-sensitive"
}

// Exact-zero guards are well-defined and stay legal.
func okZeroGuard(sd float64) bool {
	return sd == 0
}

func okZeroLeft(sd float64) bool {
	return 0.0 != sd
}

func okInts(a, b int) bool {
	return a == b
}

func okTolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

func okIgnored(a, b float64) bool {
	return a == b //cabd:lint-ignore floateq fixture: bit-identity is the contract here
}
