// Package wallclock is a lint fixture: direct wall-clock reads in
// library code.
package wallclock

import (
	tm "time"
	"time"
)

func bad() time.Time {
	return time.Now() // want wallclock "direct time.Now call"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock "direct time.Since call"
}

func badUntil(deadline time.Time) time.Duration {
	return time.Until(deadline) // want wallclock "direct time.Until call"
}

func badAliased() tm.Time {
	return tm.Now() // want wallclock "direct time.Now call"
}

// Duration arithmetic never reads the clock and stays legal.
func okDurations(d time.Duration) time.Duration {
	return 2*d + time.Second
}

func okIgnoredSameLine(t0 time.Time) time.Duration {
	return time.Since(t0) //cabd:lint-ignore wallclock fixture proves same-line suppression
}

func okIgnoredLineAbove(t0 time.Time) time.Duration {
	//cabd:lint-ignore wallclock fixture proves line-above suppression
	return time.Since(t0)
}

// The shard-mailbox shape of the server's stream registry: goroutines
// paced entirely by channels, with every timestamp injected by the
// caller. Nothing here reads the clock, so nothing may be flagged —
// select statements, bounded-channel admission, time.Time fields and
// time.Duration comparisons are all clock-free.
type mailboxCall struct {
	fn   func()
	done chan struct{}
}

type mailboxShard struct {
	mailbox chan mailboxCall
	stop    chan struct{}
	last    time.Time
}

func (sh *mailboxShard) loop() {
	for {
		select {
		case c := <-sh.mailbox:
			c.fn()
			close(c.done)
		case <-sh.stop:
			return
		}
	}
}

func (sh *mailboxShard) okSubmit(fn func(), now time.Time) bool {
	c := mailboxCall{fn: fn, done: make(chan struct{})}
	select {
	case sh.mailbox <- c:
	default:
		return false // full mailbox sheds; no timer-based retry
	}
	<-c.done
	sh.last = now // injected timestamp, never read here
	return true
}

func (sh *mailboxShard) okIdle(now time.Time, ttl time.Duration) bool {
	return now.Sub(sh.last) > ttl // Time.Sub is arithmetic, not a clock read
}
