// Package wallclock is a lint fixture: direct wall-clock reads in
// library code.
package wallclock

import (
	tm "time"
	"time"
)

func bad() time.Time {
	return time.Now() // want wallclock "direct time.Now call"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock "direct time.Since call"
}

func badUntil(deadline time.Time) time.Duration {
	return time.Until(deadline) // want wallclock "direct time.Until call"
}

func badAliased() tm.Time {
	return tm.Now() // want wallclock "direct time.Now call"
}

// Duration arithmetic never reads the clock and stays legal.
func okDurations(d time.Duration) time.Duration {
	return 2*d + time.Second
}

func okIgnoredSameLine(t0 time.Time) time.Duration {
	return time.Since(t0) //cabd:lint-ignore wallclock fixture proves same-line suppression
}

func okIgnoredLineAbove(t0 time.Time) time.Duration {
	//cabd:lint-ignore wallclock fixture proves line-above suppression
	return time.Since(t0)
}
