// Package maporder is a lint fixture: nondeterministic accumulation from
// map iteration.
package maporder

import "sort"

func badKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder "appends to keys in nondeterministic order"
		keys = append(keys, k)
	}
	return keys
}

func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type result struct{ Anomalies []int }

func badField(m map[int]bool) result {
	var res result
	for k := range m { // want maporder "appends to res.Anomalies in nondeterministic order"
		res.Anomalies = append(res.Anomalies, k)
	}
	return res
}

func goodFieldSorted(m map[int]bool) result {
	var res result
	for k := range m {
		res.Anomalies = append(res.Anomalies, k)
	}
	sort.Ints(res.Anomalies)
	return res
}

// A helper whose name announces sorting/deduplication counts as the fix.
func goodHelper(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return dedupInts(out)
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	return xs
}

func badNested(m map[int]int) func() []int {
	return func() []int {
		var out []int
		for k := range m { // want maporder "appends to out in nondeterministic order"
			out = append(out, k)
		}
		return out
	}
}

// Aggregation without appends is order-insensitive.
func okSum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Ranging over a slice is deterministic; no sort required.
func okSliceRange(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}

func okIgnored(m map[string]int) []string {
	var keys []string
	//cabd:lint-ignore maporder fixture: caller treats the result as a set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
