// Package recoverwrap is a lint fixture: recovered panics must flow into
// a *PanicError.
package recoverwrap

// PanicError mirrors the repo's panic wrapper.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string { return "panic" }

func good() (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p}
		}
	}()
	return nil
}

func goodValueLit() (err error) {
	defer func() {
		if p := recover(); p != nil {
			e := PanicError{Value: p}
			err = &e
		}
	}()
	return nil
}

func bad() {
	defer func() {
		if p := recover(); p != nil { // want recoverwrap "must flow the recovered value"
			_ = p
		}
	}()
}

func badDirect() bool {
	return recover() != nil // want recoverwrap "must flow the recovered value"
}

func okIgnored() {
	defer func() {
		//cabd:lint-ignore recoverwrap fixture: the harness only records that a panic happened
		recover()
	}()
}
