// Package lockbalance is a lint fixture: mutexes must be released on
// every exit path and critical sections must not park or run unbounded
// work.
package lockbalance

import (
	"context"
	"sync"
)

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
	ch    chan int
}

// okStraightLine: balanced lock/unlock.
func (s *store) okStraightLine(k string, v int) {
	s.mu.Lock()
	s.items[k] = v
	s.mu.Unlock()
}

// okDefer: the deferred unlock covers every path, including the early
// return.
func (s *store) okDefer(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.items[k]
	if !ok {
		return 0, false
	}
	return v, true
}

// okDeferredLiteral: the unlock may live in a deferred closure.
func (s *store) okDeferredLiteral(k string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.items[k]
}

// okBothBranches: released on the then and the else path.
func (s *store) okBothBranches(k string, cond bool) int {
	s.mu.Lock()
	if cond {
		v := s.items[k]
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// okReadLock: balanced RLock/RUnlock.
func (s *store) okReadLock(k string) int {
	s.rw.RLock()
	v := s.items[k]
	s.rw.RUnlock()
	return v
}

// badEarlyReturn: the error path returns with the mutex still held.
func (s *store) badEarlyReturn(k string) (int, bool) {
	s.mu.Lock() // want lockbalance "s.mu.Lock is not released on every path"
	v, ok := s.items[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// badReadLeak: the RLock leaks on the found path.
func (s *store) badReadLeak(k string) int {
	s.rw.RLock() // want lockbalance "s.rw.RLock is not released on every path"
	if v, ok := s.items[k]; ok {
		return v
	}
	s.rw.RUnlock()
	return 0
}

// badSendWhileLocked: a blocking send inside the critical section.
func (s *store) badSendWhileLocked(v int) {
	s.mu.Lock()
	s.ch <- v // want lockbalance "channel send while s.mu is held"
	s.mu.Unlock()
}

// badRecvWhileLocked: a blocking receive inside the critical section.
func (s *store) badRecvWhileLocked() int {
	s.mu.Lock()
	v := <-s.ch // want lockbalance "channel receive while s.mu is held"
	s.mu.Unlock()
	return v
}

// okSelectDefault: a non-blocking send (select with default) may run
// under the lock.
func (s *store) okSelectDefault(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// badDetectWhileLocked: unbounded ...Ctx work inside the critical
// section.
func (s *store) badDetectWhileLocked(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detectCtx(ctx) // want lockbalance "call to detectCtx while s.mu is held"
}

// okDetectOutsideLock: the ...Ctx call runs after the release.
func (s *store) okDetectOutsideLock(ctx context.Context) error {
	s.mu.Lock()
	s.items["pending"]++
	s.mu.Unlock()
	return s.detectCtx(ctx)
}

func (s *store) detectCtx(ctx context.Context) error {
	return ctx.Err()
}
