// Package directives is a lint fixture: malformed ignore directives are
// themselves diagnostics, and they suppress nothing.
package directives

import "time"

func malformedNoRule(t0 time.Time) time.Duration {
	//cabd:lint-ignore
	return time.Since(t0)
}

func unknownRule(t0 time.Time) time.Duration {
	//cabd:lint-ignore nosuchrule because reasons
	return time.Since(t0)
}

func missingReason(t0 time.Time) time.Duration {
	//cabd:lint-ignore wallclock
	return time.Since(t0)
}
