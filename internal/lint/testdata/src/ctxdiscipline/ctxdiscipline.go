// Package ctxdiscipline is a lint fixture: ...Ctx naming promises a
// consulted context.Context first parameter.
package ctxdiscipline

import "context"

func GoodCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func GoodPassCtx(ctx context.Context) error {
	return helperCtx(ctx)
}

func helperCtx(ctx context.Context) error {
	return ctx.Err()
}

type runner struct{}

func (r *runner) RunCtx(ctx context.Context) error {
	return ctx.Err()
}

func BadNoParamCtx() {} // want ctxdiscipline "takes no context.Context"

func BadOrderCtx(n int, ctx context.Context) {} // want ctxdiscipline "must take context.Context as its first parameter"

func BadUnusedCtx(ctx context.Context) {} // want ctxdiscipline "never consults its context"

func BadBlankCtx(_ context.Context) {} // want ctxdiscipline "discards its context parameter"

// Not a Ctx-suffixed name: out of the rule's scope.
func PlainDetect(n int) int { return n }
