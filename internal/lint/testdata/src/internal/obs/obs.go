// Package obs is a lint fixture standing in for the real internal/obs:
// the Clock's home package is exempt from the wallclock rule.
package obs

import "time"

// Wall reads the process clock — legal only here.
func Wall() time.Time { return time.Now() }
