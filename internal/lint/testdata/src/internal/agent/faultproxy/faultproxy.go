// Package faultproxy is a lint fixture: the fault proxy is exempt from
// the agent sleep/timer ban (its faults are context-bounded by design,
// but the exemption keeps the rule honest about its scope).
package faultproxy

import "time"

func okSleep() {
	time.Sleep(time.Millisecond)
}

func okAfter() <-chan time.Time {
	return time.After(time.Millisecond)
}

func badReadStillApplies() time.Time {
	return time.Now() // want wallclock "direct time.Now call"
}
