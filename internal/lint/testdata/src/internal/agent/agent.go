// Package agent is a lint fixture: collector packages may not pace
// themselves off the wall clock — neither reads nor sleeps/timers.
package agent

import "time"

func badRead() time.Time {
	return time.Now() // want wallclock "direct time.Now call"
}

func badSleep() {
	time.Sleep(time.Second) // want wallclock "time.Sleep paces agent code"
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want wallclock "time.After paces agent code"
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want wallclock "time.NewTimer paces agent code"
}

func badTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want wallclock "time.NewTicker paces agent code"
}

// Duration arithmetic never touches the clock and stays legal.
func okDurations(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}
