module parmod

go 1.22
