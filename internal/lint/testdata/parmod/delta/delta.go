// Package delta leaks a mutex on one path, exercising a CFG-backed rule
// through the parallel driver.
package delta

import "sync"

// Counter is a lock-guarded tally.
type Counter struct {
	mu sync.Mutex
	n  int
}

// BumpIf leaks c.mu on the early-return path.
func (c *Counter) BumpIf(ok bool) int {
	c.mu.Lock()
	if !ok {
		return 0
	}
	c.n++
	v := c.n
	c.mu.Unlock()
	return v
}
