// Package alpha carries one wallclock violation for the parallel-driver
// determinism test.
package alpha

import "time"

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now()
}
