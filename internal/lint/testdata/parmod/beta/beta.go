// Package beta is clean: the parallel driver must not invent findings.
package beta

// Double is allocation- and violation-free.
func Double(xs []float64) {
	for i := range xs {
		xs[i] *= 2
	}
}
