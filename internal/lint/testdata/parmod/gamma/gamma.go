// Package gamma carries two violations so the merge preserves intra-
// package diagnostic order too.
package gamma

import "math/rand"

// Roll draws from the global source.
func Roll() float64 {
	return rand.Float64()
}

// Same compares floats exactly.
func Same(a, b float64) bool {
	return a == b
}
