// Package cleanmod is the cabd-lint driver's all-clear fixture.
package cleanmod

import "sort"

// Keys returns m's keys in deterministic order.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
