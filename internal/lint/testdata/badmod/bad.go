// Package badmod is the cabd-lint driver's end-to-end fixture: one
// violation per determinism rule, at stable line numbers.
package badmod

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock directly.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Jitter draws from the global source.
func Jitter() float64 {
	return rand.Float64()
}

// Same compares floats exactly.
func Same(a, b float64) bool {
	return a == b
}
