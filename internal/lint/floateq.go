package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a compile-time constant equal to zero.
// Exact-zero guards (`sd == 0` before a division) are well-defined float
// comparisons and stay legal.
func isExactZero(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	return v.Kind() == constant.Float && constant.Sign(v) == 0
}

var analyzerFloateq = &Analyzer{
	Name: "floateq",
	Doc: "no == / != between floating-point operands in library code " +
		"(rounding makes them order- and optimization-sensitive); compare " +
		"through the stats tolerance helpers (stats.ApproxEq) instead. " +
		"Comparisons against an exact constant zero are allowed as " +
		"degenerate-value guards",
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
			if xt == nil || yt == nil || !isFloat(xt) || !isFloat(yt) {
				return true
			}
			if isExactZero(p, be.X) || isExactZero(p, be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "%s on float operands is rounding-sensitive; use stats.ApproxEq (or an explicit tolerance), or annotate why exact equality is the contract", be.Op)
			return true
		})
	},
}
