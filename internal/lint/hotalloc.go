package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathMarker annotates a function whose body must not allocate: the
// scoring workers, the SoA matrix fill, tree-major forest inference and
// the incremental stream engine's per-point path (see DESIGN.md).
const hotpathMarker = "cabd:hotpath"

var analyzerHotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "a function annotated //cabd:hotpath may not allocate: no make/new, " +
		"no growing append, no closure literals, no goroutine spawns, no " +
		"slice/map composite literals, no interface boxing of non-pointer " +
		"values, no string<->[]byte conversions. Exempt: sync.Pool draws, " +
		"make under a cap()/len() growth guard, and append into x[:0] " +
		"(the reset-reuse idiom)",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !isHotpath(fn) {
					continue
				}
				checkHotalloc(p, fn)
			}
		}
	},
}

// isHotpath reports whether the declaration carries the annotation.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

// growthGuards collects the body ranges of if-statements whose condition
// consults cap() or len() — the grow-once pattern of pooled buffers
// (`if cap(buf) < n { buf = make(...) }`) is a cold path by contract.
func growthGuards(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(k ast.Node) bool {
			if call, ok := k.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					guarded = true
				}
			}
			return true
		})
		if guarded {
			out = append(out, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

// isResetReuseAppend reports the append(x[:0], ...) compaction idiom,
// which writes into the existing backing array.
func isResetReuseAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := call.Args[0].(*ast.SliceExpr)
	if !ok || sl.Slice3 {
		return false
	}
	if sl.High == nil {
		return false
	}
	lit, ok := sl.High.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// isSyncPoolCall reports whether call is a method call on sync.Pool
// (Get/Put) — the sanctioned scratch-memory source on hot paths.
func isSyncPoolCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.useOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// pointerShaped reports whether values of t fit in an interface word
// without a heap allocation: pointers, channels, maps, funcs and unsafe
// pointers. Slices, strings, structs and scalars all box.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// checkBoxing flags call arguments whose static type is a non-pointer
// concrete value passed into an interface parameter — each such call
// boxes the value onto the heap.
func checkBoxing(p *Pass, call *ast.CallExpr) []string {
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	var hits []string
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
			if call.Ellipsis.IsValid() {
				pt = params.At(np - 1).Type() // s... passes the slice itself
			}
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || pointerShaped(at) {
			continue
		}
		if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil {
			continue // untyped constants often stay out of the heap; let them pass
		}
		hits = append(hits, at.String())
	}
	return hits
}

func checkHotalloc(p *Pass, fn *ast.FuncDecl) {
	guards := growthGuards(fn.Body)
	guarded := func(pos token.Pos) bool {
		for _, r := range guards {
			if r.contains(pos) {
				return true
			}
		}
		return false
	}
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.FuncLit:
			p.Reportf(m.Pos(), "closure literal in hot path %s allocates (captures escape to the heap); hoist the state into the receiver or pass it as arguments", name)
			return false
		case *ast.GoStmt:
			p.Reportf(m.Pos(), "goroutine spawn in hot path %s allocates a stack; fan out once outside the annotated function", name)
			return false
		case *ast.CompositeLit:
			t := p.Info.TypeOf(m)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				if !guarded(m.Pos()) {
					p.Reportf(m.Pos(), "%s composite literal in hot path %s allocates; reuse a pooled buffer", t.String(), name)
				}
			}
		case *ast.CallExpr:
			if isSyncPoolCall(p, m) {
				return false // the sanctioned draw; Put's any-boxing included
			}
			if id, ok := m.Fun.(*ast.Ident); ok {
				_, isBuiltin := p.useOf(id).(*types.Builtin)
				switch {
				case !isBuiltin:
				case id.Name == "make":
					if !guarded(m.Pos()) {
						p.Reportf(m.Pos(), "make in hot path %s allocates; draw from a sync.Pool or grow under a cap() guard", name)
					}
					return true
				case id.Name == "new":
					p.Reportf(m.Pos(), "new in hot path %s allocates; reuse scratch state", name)
					return true
				case id.Name == "append":
					if !isResetReuseAppend(m) && !guarded(m.Pos()) {
						p.Reportf(m.Pos(), "append in hot path %s may grow its backing array; preallocate and write by index (or append into x[:0])", name)
					}
					return true
				}
			}
			// Conversions: string <-> []byte/[]rune copy; conversions to
			// interface types box.
			if tv, ok := p.Info.Types[m.Fun]; ok && tv.IsType() && len(m.Args) == 1 {
				to := tv.Type
				from := p.Info.TypeOf(m.Args[0])
				if from != nil {
					if isStringByteConv(to, from) {
						p.Reportf(m.Pos(), "%s(%s) conversion in hot path %s copies; keep one representation", to.String(), from.String(), name)
					}
					if _, isIface := to.Underlying().(*types.Interface); isIface && !pointerShaped(from) {
						p.Reportf(m.Pos(), "conversion of %s to %s in hot path %s boxes onto the heap", from.String(), to.String(), name)
					}
				}
				return true
			}
			for _, boxed := range checkBoxing(p, m) {
				p.Reportf(m.Pos(), "call boxes a %s into an interface parameter in hot path %s; use a concrete-typed helper (sync.Pool Get/Put is exempt)", boxed, name)
			}
		}
		return true
	})
}

// isStringByteConv reports a string <-> []byte/[]rune conversion.
func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}
