package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

var analyzerCtxdiscipline = &Analyzer{
	Name: "ctxdiscipline",
	Doc: "a function named ...Ctx promises cancellation: it must take a " +
		"context.Context as its first parameter and actually consult it " +
		"(read it or pass it on) somewhere in its body",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				name := fn.Name.Name
				if !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
					continue
				}
				params := fn.Type.Params
				if params == nil || len(params.List) == 0 {
					p.Reportf(fn.Name.Pos(), "%s is named ...Ctx but takes no context.Context", name)
					continue
				}
				first := params.List[0]
				t := p.Info.TypeOf(first.Type)
				if t == nil || !isContextType(t) {
					p.Reportf(first.Pos(), "%s must take context.Context as its first parameter", name)
					continue
				}
				if len(first.Names) == 0 || first.Names[0].Name == "_" {
					p.Reportf(first.Pos(), "%s discards its context parameter; name it and consult it", name)
					continue
				}
				ctxObj := p.Info.Defs[first.Names[0]]
				used := false
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == ctxObj {
						used = true
						return false
					}
					return !used
				})
				if !used {
					p.Reportf(first.Names[0].Pos(), "%s never consults its context; check ctx.Err() at loop/stage boundaries or pass it on", name)
				}
			}
		}
	},
}
