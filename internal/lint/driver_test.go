package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// runMain drives the whole cabd-lint binary in-process.
func runMain(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

var badmodWant = []string{
	"bad.go:12: [wallclock] direct time.Since call reads the wall clock; thread obs.Clock (obs.Wall in production, FakeClock in tests)",
	"bad.go:17: [seededrand] rand.Float64 uses the package-global source; draw from a rand.Rand seeded via Options.Seed",
	"bad.go:22: [floateq] == on float operands is rounding-sensitive; use stats.ApproxEq (or an explicit tolerance), or annotate why exact equality is the contract",
}

// TestDriverBadModule: exact diagnostics and exit code over the
// synthetic bad package.
func TestDriverBadModule(t *testing.T) {
	code, stdout, stderr := runMain("-C", filepath.Join("testdata", "badmod"))
	if code != ExitDiags {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitDiags, stderr)
	}
	got := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(got) != len(badmodWant) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(badmodWant), stdout)
	}
	for i := range badmodWant {
		if got[i] != badmodWant[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i, got[i], badmodWant[i])
		}
	}
	if !strings.Contains(stderr, "3 finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
}

func TestDriverCleanModule(t *testing.T) {
	code, stdout, stderr := runMain("-C", filepath.Join("testdata", "cleanmod"))
	if code != ExitClean || stdout != "" {
		t.Fatalf("exit = %d, stdout %q, stderr %q; want clean exit and no output", code, stdout, stderr)
	}
}

func TestDriverJSON(t *testing.T) {
	code, stdout, _ := runMain("-C", filepath.Join("testdata", "badmod"), "-json")
	if code != ExitDiags {
		t.Fatalf("exit = %d, want %d", code, ExitDiags)
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout)
	}
	if len(diags) != 3 {
		t.Fatalf("JSON diagnostics = %d, want 3", len(diags))
	}
	first := diags[0]
	if first.Path != "bad.go" || first.Line != 12 || first.Rule != "wallclock" || first.Col == 0 {
		t.Fatalf("first JSON diagnostic = %+v", first)
	}
	// A clean run still emits a valid (empty) JSON array.
	code, stdout, _ = runMain("-C", filepath.Join("testdata", "cleanmod"), "-json")
	if code != ExitClean {
		t.Fatalf("clean JSON exit = %d", code)
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil || len(diags) != 0 {
		t.Fatalf("clean JSON = %q (err %v)", stdout, err)
	}
}

func TestDriverRulesFilter(t *testing.T) {
	code, stdout, _ := runMain("-C", filepath.Join("testdata", "badmod"), "-rules", "wallclock")
	if code != ExitDiags {
		t.Fatalf("exit = %d, want %d", code, ExitDiags)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 1 || lines[0] != badmodWant[0] {
		t.Fatalf("-rules wallclock output:\n%s", stdout)
	}
	code, stdout, _ = runMain("-C", filepath.Join("testdata", "badmod"), "-rules", "seededrand,floateq")
	lines = strings.Split(strings.TrimSpace(stdout), "\n")
	if code != ExitDiags || len(lines) != 2 {
		t.Fatalf("-rules seededrand,floateq: exit %d, output:\n%s", code, stdout)
	}
}

func TestDriverErrors(t *testing.T) {
	if code, _, stderr := runMain("-C", filepath.Join("testdata", "badmod"), "-rules", "nope"); code != ExitError || !strings.Contains(stderr, "unknown rule") {
		t.Errorf("unknown rule: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runMain("-C", "/nonexistent-module-root"); code != ExitError {
		t.Errorf("bad -C dir: exit %d, want %d", code, ExitError)
	}
	if code, _, _ := runMain("-C", filepath.Join("testdata", "badmod"), "./nosuchdir"); code != ExitError {
		t.Errorf("bad pattern: exit %d, want %d", code, ExitError)
	}
	if code, _, _ := runMain("-badflag"); code != ExitError {
		t.Errorf("bad flag: exit %d, want %d", code, ExitError)
	}
}

func TestDriverList(t *testing.T) {
	code, stdout, _ := runMain("-list")
	if code != ExitClean {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range Names() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

// TestDriverParallelDeterministic: the parallel driver must emit
// byte-identical stdout and stderr to the sequential one, at every
// width, over a module whose packages mix clean, single-finding and
// multi-finding shapes.
func TestDriverParallelDeterministic(t *testing.T) {
	base := []string{"-C", filepath.Join("testdata", "parmod")}
	refCode, refOut, refErr := runMain(append(base, "-parallel", "1")...)
	if refCode != ExitDiags {
		t.Fatalf("sequential exit = %d, want %d (stderr: %s)", refCode, ExitDiags, refErr)
	}
	// Findings from alpha, delta and gamma, merged in package-path order
	// with intra-package order intact.
	wantOrder := []string{
		"alpha/alpha.go:9: [wallclock]",
		"delta/delta.go:15: [lockbalance]",
		"gamma/gamma.go:9: [seededrand]",
		"gamma/gamma.go:14: [floateq]",
	}
	lines := strings.Split(strings.TrimSpace(refOut), "\n")
	if len(lines) != len(wantOrder) {
		t.Fatalf("sequential output has %d lines, want %d:\n%s", len(lines), len(wantOrder), refOut)
	}
	for i, prefix := range wantOrder {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	for _, width := range []int{2, 4, 8} {
		code, out, errs := runMain(append(base, "-parallel", fmt.Sprint(width))...)
		if code != refCode || out != refOut || errs != refErr {
			t.Errorf("-parallel %d diverged: exit %d vs %d\nstdout:\n%s\nvs\n%s\nstderr:\n%q vs %q",
				width, code, refCode, out, refOut, errs, refErr)
		}
	}
	// JSON mode must be deterministic too.
	_, refJSON, _ := runMain(append(base, "-json", "-parallel", "1")...)
	if _, gotJSON, _ := runMain(append(base, "-json", "-parallel", "8")...); gotJSON != refJSON {
		t.Errorf("-json -parallel 8 diverged:\n%s\nvs\n%s", gotJSON, refJSON)
	}
}

// TestDriverSelfClean is the gate the Makefile relies on: the repo's own
// tree must stay lint-clean.
func TestDriverSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	code, stdout, stderr := runMain("-C", filepath.Join("..", ".."))
	if code != ExitClean {
		t.Fatalf("cabd-lint over the repo: exit %d\n%s%s", code, stdout, stderr)
	}
}
