package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Path    string `json:"file"` // file path as recorded in the FileSet
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the driver's text form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Path, d.Line, d.Rule, d.Message)
}

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// SkipMain exempts package main: binaries own their process (wall
	// clock, global rand), the library must not.
	SkipMain bool
	Run      func(*Pass)
}

// Pass carries one (analyzer, package) run and collects its reports.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	Info  *types.Info
	rule  string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Path:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the package in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// useOf resolves id to its object (nil when the checker recorded none).
func (p *Pass) useOf(id *ast.Ident) types.Object { return p.Info.Uses[id] }

// ignoreDirective is the escape hatch: `//cabd:lint-ignore rule reason`.
const ignorePrefix = "cabd:lint-ignore"

// directiveRule is the pseudo-rule malformed ignore comments are reported
// under; it cannot itself be ignored.
const directiveRule = "directive"

// ignoreKey identifies the suppression scope of one directive.
type ignoreKey struct {
	file string
	rule string
	line int
}

// collectIgnores parses the package's ignore directives. A well-formed
// directive suppresses its rule on the directive's own line and the line
// below (covering both `stmt // ignore` and a comment line above the
// statement). Malformed directives — missing rule, unknown rule, or no
// reason — are reported as `directive` diagnostics.
func collectIgnores(pkg *Package, known map[string]bool, diags *[]Diagnostic) map[ignoreKey]bool {
	ignores := map[ignoreKey]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		position := pkg.Fset.Position(pos)
		*diags = append(*diags, Diagnostic{
			Path: position.Filename, Line: position.Line, Col: position.Column,
			Rule: directiveRule, Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(c.Pos(), "ignore directive is missing a rule name")
					continue
				}
				rule := fields[1]
				if !known[rule] {
					report(c.Pos(), "ignore directive names unknown rule %q", rule)
					continue
				}
				if len(fields) < 3 {
					report(c.Pos(), "ignore directive for %q has no reason; state why the rule does not apply", rule)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ignores[ignoreKey{pos.Filename, rule, pos.Line}] = true
				ignores[ignoreKey{pos.Filename, rule, pos.Line + 1}] = true
			}
		}
	}
	return ignores
}

// RunPackage applies analyzers to one loaded package and returns its
// diagnostics sorted by (file, line, column, rule). Ignore directives are
// honored; their own defects are reported under the `directive` rule.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	ignores := collectIgnores(pkg, known, &diags)
	var raw []Diagnostic
	for _, a := range analyzers {
		if a.SkipMain && pkg.Name == "main" {
			continue
		}
		pass := &Pass{Fset: pkg.Fset, Pkg: pkg, Info: pkg.Info, rule: a.Name, diags: &raw}
		a.Run(pass)
	}
	for _, d := range raw {
		if ignores[ignoreKey{d.Path, d.Rule, d.Line}] {
			continue
		}
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// Select returns the analyzers named in the comma-separated rules list
// (all of them for an empty list), or an error naming the first unknown
// rule.
func Select(rules string) ([]*Analyzer, error) {
	all := All()
	if strings.TrimSpace(rules) == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// All returns every registered analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerWallclock,
		analyzerMaporder,
		analyzerSeededrand,
		analyzerFloateq,
		analyzerRecoverwrap,
		analyzerCtxdiscipline,
		analyzerHttpbody,
		analyzerLockbalance,
		analyzerCtxcancel,
		analyzerGoroutineleak,
		analyzerHotalloc,
	}
}

// Names returns the registered rule names in stable order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}
