// Package dataflow is a small forward dataflow framework over the CFGs
// of internal/lint/cfg: an analyzer supplies a join-semilattice of facts
// and a per-block transfer function (its gen/kill logic), and Forward
// iterates to a fixed point. Blocks are swept in index order — the
// deterministic construction order of the builder — so two runs over the
// same file always converge through identical intermediate states and
// diagnostics derived from the results are stable.
package dataflow

import (
	"fmt"
	"sort"

	"cabd/internal/lint/cfg"
)

// Lattice describes the fact domain of one analysis.
type Lattice[F any] interface {
	// Bottom is the identity of Join: the fact of an unreachable path.
	Bottom() F
	// Join merges the facts of two incoming paths.
	Join(a, b F) F
	// Equal reports fact equality (fixed-point detection).
	Equal(a, b F) bool
}

// Transfer applies one block's gen/kill effects to its incoming fact and
// returns the outgoing fact. It must not mutate in.
type Transfer[F any] func(b *cfg.Block, in F) F

// Result holds the fixed-point facts, index-aligned with g.Blocks.
type Result[F any] struct {
	In  []F
	Out []F
}

// Forward runs the analysis to a fixed point and returns the per-block
// facts. entry seeds the In fact of the entry block; every other block
// starts at Bottom. The sweep is round-robin over blocks in index order
// and stops when a full round changes nothing; for a monotone transfer
// over a finite lattice this terminates, and a generous round budget
// turns a non-monotone bug into a loud failure instead of a hang.
func Forward[F any](g *cfg.Graph, lat Lattice[F], entry F, tr Transfer[F]) Result[F] {
	n := len(g.Blocks)
	res := Result[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		res.In[i] = lat.Bottom()
		res.Out[i] = lat.Bottom()
	}
	res.In[g.Entry.Index] = entry
	preds := g.Preds()

	// Unreachable blocks (code after a terminator) keep Bottom facts: a
	// fall-off-the-end edge from dead code must not feed the exit block.
	reachable := make([]bool, n)
	var mark func(b *cfg.Block)
	mark = func(b *cfg.Block) {
		if reachable[b.Index] {
			return
		}
		reachable[b.Index] = true
		for _, s := range b.Succs {
			mark(s)
		}
	}
	mark(g.Entry)

	maxRounds := 2*n + 4
	for round := 0; ; round++ {
		if round > maxRounds {
			panic(fmt.Sprintf("dataflow: no fixed point after %d rounds over %d blocks (non-monotone transfer?)", round, n))
		}
		changed := false
		for i := 0; i < n; i++ {
			if !reachable[i] {
				continue
			}
			b := g.Blocks[i]
			in := res.In[i]
			if i != g.Entry.Index {
				in = lat.Bottom()
				for _, p := range preds[i] {
					in = lat.Join(in, res.Out[p.Index])
				}
			}
			out := tr(b, in)
			if !lat.Equal(in, res.In[i]) || !lat.Equal(out, res.Out[i]) {
				changed = true
			}
			res.In[i] = in
			res.Out[i] = out
		}
		if !changed {
			return res
		}
	}
}

// Bits is the shared concrete fact domain of the lint analyzers: a
// string-keyed map of bit sets (one key per tracked object — a lock
// expression, a cancel variable), where Join is the per-key union. The
// nil map is Bottom. Bits values are treated as immutable; transfer
// functions copy before writing (see With).
type Bits map[string]uint8

// BitsLattice is the Lattice instance for Bits facts.
type BitsLattice struct{}

// Bottom returns the unreachable fact (nil map).
func (BitsLattice) Bottom() Bits { return nil }

// Join unions the two fact maps per key.
func (BitsLattice) Join(a, b Bits) Bits {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(Bits, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] |= v
	}
	return out
}

// Equal reports per-key equality of the two fact maps.
func (BitsLattice) Equal(a, b Bits) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// With returns a copy of f with key's bits replaced by set — the
// copy-on-write helper transfer functions use to stay non-mutating. A
// zero set deletes the key.
func (f Bits) With(key string, set uint8) Bits {
	out := make(Bits, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	if set == 0 {
		delete(out, key)
	} else {
		out[key] = set
	}
	return out
}

// Keys returns the tracked keys in sorted order — diagnostics that
// enumerate facts must not leak map iteration order.
func (f Bits) Keys() []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
