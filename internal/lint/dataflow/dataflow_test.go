package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"cabd/internal/lint/cfg"
)

func buildSnippet(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.Build(f.Decls[0].(*ast.FuncDecl).Body)
}

const (
	bitHeld uint8 = 1 << iota
	bitFree
)

// lockTransfer is a toy lock tracker: lk() sets held, un() sets free,
// modeling the lockbalance analyzer's core.
func lockTransfer(b *cfg.Block, in Bits) Bits {
	out := in
	for _, n := range b.Nodes {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "lk":
				out = out.With("mu", bitHeld)
			case "un":
				out = out.With("mu", bitFree)
			}
			return true
		})
	}
	return out
}

// TestForwardBranchJoin: a lock released on only one branch joins to
// held|free at the merge point.
func TestForwardBranchJoin(t *testing.T) {
	g := buildSnippet(t, `
lk()
if cond() {
	un()
}
done()`)
	res := Forward[Bits](g, BitsLattice{}, Bits{}, lockTransfer)
	exitIn := res.In[g.Exit.Index]
	if exitIn["mu"] != bitHeld|bitFree {
		t.Fatalf("exit fact = %b, want held|free", exitIn["mu"])
	}
}

// TestForwardAllPathsReleased: releasing on both branches resolves the
// fact cleanly.
func TestForwardAllPathsReleased(t *testing.T) {
	g := buildSnippet(t, `
lk()
if cond() {
	un()
} else {
	un()
}`)
	res := Forward[Bits](g, BitsLattice{}, Bits{}, lockTransfer)
	if got := res.In[g.Exit.Index]["mu"]; got != bitFree {
		t.Fatalf("exit fact = %b, want free", got)
	}
}

// TestForwardLoopFixedPoint: a lock/unlock cycle inside a loop converges
// and does not poison the loop exit.
func TestForwardLoopFixedPoint(t *testing.T) {
	g := buildSnippet(t, `
for i := 0; i < 3; i++ {
	lk()
	un()
}
done()`)
	res := Forward[Bits](g, BitsLattice{}, Bits{}, lockTransfer)
	if got := res.In[g.Exit.Index]["mu"]; got&bitHeld != 0 {
		t.Fatalf("exit fact = %b; loop-balanced lock must not be held at exit", got)
	}
}

// TestForwardEarlyReturn: the held state of a return-while-locked path
// reaches the exit block.
func TestForwardEarlyReturn(t *testing.T) {
	g := buildSnippet(t, `
lk()
if cond() {
	return
}
un()`)
	res := Forward[Bits](g, BitsLattice{}, Bits{}, lockTransfer)
	if got := res.In[g.Exit.Index]["mu"]; got&bitHeld == 0 {
		t.Fatalf("exit fact = %b, want held bit (early return holds the lock)", got)
	}
}

// TestForwardUnreachable: code after return stays at Bottom and cannot
// contribute facts.
func TestForwardUnreachable(t *testing.T) {
	g := buildSnippet(t, `
return
lk()`)
	res := Forward[Bits](g, BitsLattice{}, Bits{}, lockTransfer)
	for i, b := range g.Blocks {
		if b.Kind == "unreachable" {
			if res.In[i] != nil {
				t.Fatalf("unreachable block In = %v, want nil (bottom)", res.In[i])
			}
		}
	}
	if got := res.In[g.Exit.Index]["mu"]; got != 0 {
		t.Fatalf("exit fact = %b, want empty (lk() unreachable)", got)
	}
}

func TestBitsHelpers(t *testing.T) {
	lat := BitsLattice{}
	a := Bits{"x": 1}
	b := Bits{"x": 2, "y": 4}
	j := lat.Join(a, b)
	if j["x"] != 3 || j["y"] != 4 {
		t.Fatalf("join = %v", j)
	}
	if a["x"] != 1 {
		t.Fatal("join mutated input")
	}
	if lat.Join(nil, a)["x"] != 1 || lat.Join(a, nil)["x"] != 1 {
		t.Fatal("bottom is not the join identity")
	}
	if !lat.Equal(a, Bits{"x": 1}) || lat.Equal(a, b) {
		t.Fatal("equality broken")
	}
	c := a.With("z", 8)
	if c["z"] != 8 || len(a) != 1 {
		t.Fatal("With broken or mutating")
	}
	if d := c.With("z", 0); len(d) != 1 {
		t.Fatalf("With zero must delete: %v", d)
	}
	keys := strings.Join(Bits{"b": 1, "a": 1, "c": 1}.Keys(), ",")
	if keys != "a,b,c" {
		t.Fatalf("Keys = %s", keys)
	}
}
