package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureLoader loads packages from the testdata/src tree under the
// synthetic module path "fixture".
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	return NewLoaderAt(filepath.Join("testdata", "src"), "fixture")
}

func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	l := fixtureLoader(t)
	pkg, err := l.Load("fixture/" + rel)
	if err != nil {
		t.Fatalf("load fixture %s: %v", rel, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", rel, pkg.TypeErrors)
	}
	return pkg
}

// want is one expected diagnostic, parsed from a fixture comment of the
// form `// want <rule> "<message substring>"`.
type want struct {
	file string
	line int
	rule string
	sub  string
}

var wantRE = regexp.MustCompile(`want ([a-z]+) "([^"]*)"`)

// collectWants scans a fixture package's comments for want annotations.
func collectWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					out = append(out, want{pos.Filename, pos.Line, m[1], m[2]})
				}
			}
		}
	}
	return out
}

// runFixture checks one analyzer against one fixture package: every want
// comment must be hit, and no diagnostic may lack a want.
func runFixture(t *testing.T, rel string, ruleNames ...string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	analyzers, err := Select(strings.Join(ruleNames, ","))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, analyzers)
	wants := collectWants(t, pkg)

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Path != w.file || d.Line != w.line || d.Rule != w.rule {
				continue
			}
			if !strings.Contains(d.Message, w.sub) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: expected %s diagnostic containing %q, got none", w.file, w.line, w.rule, w.sub)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestWallclockFixture(t *testing.T)     { runFixture(t, "wallclock", "wallclock") }
func TestMaporderFixture(t *testing.T)      { runFixture(t, "maporder", "maporder") }
func TestSeededrandFixture(t *testing.T)    { runFixture(t, "seededrand", "seededrand") }
func TestFloateqFixture(t *testing.T)       { runFixture(t, "floateq", "floateq") }
func TestRecoverwrapFixture(t *testing.T)   { runFixture(t, "recoverwrap", "recoverwrap") }
func TestCtxdisciplineFixture(t *testing.T) { runFixture(t, "ctxdiscipline", "ctxdiscipline") }
func TestHttpbodyFixture(t *testing.T)      { runFixture(t, "httpbody", "httpbody") }
func TestLockbalanceFixture(t *testing.T)   { runFixture(t, "lockbalance", "lockbalance") }
func TestCtxcancelFixture(t *testing.T)     { runFixture(t, "ctxcancel", "ctxcancel") }
func TestGoroutineleakFixture(t *testing.T) { runFixture(t, "goroutineleak", "goroutineleak") }
func TestHotallocFixture(t *testing.T)      { runFixture(t, "hotalloc", "hotalloc") }

// TestObsPackageExempt: the Clock's home package may read time.Now.
func TestObsPackageExempt(t *testing.T) { runFixture(t, "internal/obs", "wallclock") }

// TestAgentSleepBan: collector packages may not call the time package's
// sleep/timer primitives — pacing goes through obs.SleepFunc.
func TestAgentSleepBan(t *testing.T) { runFixture(t, "internal/agent", "wallclock") }

// TestFaultproxySleepExempt: the fault proxy subpackage keeps only the
// base wall-clock-read ban.
func TestFaultproxySleepExempt(t *testing.T) {
	runFixture(t, "internal/agent/faultproxy", "wallclock")
}

// TestMainPackageExempt: binaries own their wall clock and global rand.
func TestMainPackageExempt(t *testing.T) {
	runFixture(t, "mainpkg", "wallclock", "seededrand")
}

// TestDirectives: malformed ignore directives are reported and suppress
// nothing.
func TestDirectives(t *testing.T) {
	pkg := loadFixture(t, "directives")
	diags := RunPackage(pkg, All())
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Line, d.Rule))
	}
	// Three malformed directives, each followed by an unsuppressed
	// wallclock violation on the next line.
	wantSeq := []string{
		"8:directive", "9:wallclock",
		"13:directive", "14:wallclock",
		"18:directive", "19:wallclock",
	}
	if strings.Join(got, " ") != strings.Join(wantSeq, " ") {
		t.Fatalf("directives diagnostics = %v, want %v", got, wantSeq)
	}
	for _, d := range diags {
		if d.Rule != directiveRule {
			continue
		}
		switch d.Line {
		case 8:
			if !strings.Contains(d.Message, "missing a rule name") {
				t.Errorf("line 8: %s", d.Message)
			}
		case 13:
			if !strings.Contains(d.Message, "unknown rule") {
				t.Errorf("line 13: %s", d.Message)
			}
		case 18:
			if !strings.Contains(d.Message, "no reason") {
				t.Errorf("line 18: %s", d.Message)
			}
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := Select("wallclock, floateq")
	if err != nil || len(two) != 2 || two[0].Name != "wallclock" || two[1].Name != "floateq" {
		t.Fatalf("Select subset = %v, err %v", two, err)
	}
	if _, err := Select("nosuchrule"); err == nil {
		t.Fatal("Select of unknown rule succeeded")
	}
}

func TestNamesStable(t *testing.T) {
	names := Names()
	wantNames := []string{
		"wallclock", "maporder", "seededrand", "floateq", "recoverwrap",
		"ctxdiscipline", "httpbody", "lockbalance", "ctxcancel",
		"goroutineleak", "hotalloc",
	}
	if strings.Join(names, ",") != strings.Join(wantNames, ",") {
		t.Fatalf("Names() = %v, want %v", names, wantNames)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Path: "a/b.go", Line: 7, Col: 3, Rule: "wallclock", Message: "m"}
	if got := d.String(); got != "a/b.go:7: [wallclock] m" {
		t.Fatalf("String() = %q", got)
	}
}

// TestLoaderExpand exercises the pattern forms against the fixture tree.
func TestLoaderExpand(t *testing.T) {
	l := fixtureLoader(t)
	all, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, p := range all {
		set[p] = true
	}
	for _, p := range []string{"fixture/wallclock", "fixture/maporder", "fixture/internal/obs", "fixture/mainpkg"} {
		if !set[p] {
			t.Errorf("Expand ./... missing %s (got %v)", p, all)
		}
	}
	if !sortedStrings(all) {
		t.Errorf("Expand output not sorted: %v", all)
	}
	single, err := l.Expand([]string{"./maporder"})
	if err != nil || len(single) != 1 || single[0] != "fixture/maporder" {
		t.Fatalf("Expand ./maporder = %v, err %v", single, err)
	}
	sub, err := l.Expand([]string{"./internal/..."})
	wantSub := []string{"fixture/internal/agent", "fixture/internal/agent/faultproxy", "fixture/internal/obs"}
	if err != nil || strings.Join(sub, ",") != strings.Join(wantSub, ",") {
		t.Fatalf("Expand ./internal/... = %v, err %v, want %v", sub, err, wantSub)
	}
	byPath, err := l.Expand([]string{"fixture/floateq"})
	if err != nil || len(byPath) != 1 || byPath[0] != "fixture/floateq" {
		t.Fatalf("Expand fixture/floateq = %v, err %v", byPath, err)
	}
}

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

func TestLoaderErrors(t *testing.T) {
	l := fixtureLoader(t)
	if _, err := l.Load("fixture/nosuchpkg"); err == nil {
		t.Error("loading a missing package succeeded")
	}
	if _, err := l.Load("outside/module"); err == nil {
		t.Error("loading a path outside the module succeeded")
	}
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Error("NewLoader without go.mod succeeded")
	}
	empty := filepath.Join(t.TempDir(), "m")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(empty, "go.mod"), []byte("// no module line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoader(empty); err == nil {
		t.Error("NewLoader with module-less go.mod succeeded")
	}
}

// TestLoaderRealModule type-checks a real package of this repo through
// the production loader path (go.mod discovery plus the stdlib source
// importer).
func TestLoaderRealModule(t *testing.T) {
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "cabd" {
		t.Fatalf("module path = %q, want cabd", l.ModulePath())
	}
	pkg, err := l.Load("cabd/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "stats" || len(pkg.TypeErrors) > 0 {
		t.Fatalf("stats load: name %q, type errors %v", pkg.Name, pkg.TypeErrors)
	}
	// Loads are cached: the same pointer comes back.
	again, err := l.Load("cabd/internal/stats")
	if err != nil || again != pkg {
		t.Fatalf("second load: %p vs %p, err %v", again, pkg, err)
	}
}
